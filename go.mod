module ahbpower

go 1.22
