package ahbpower

import (
	"context"

	"ahbpower/internal/core"
	"ahbpower/internal/engine"
	"ahbpower/internal/metrics"
	"ahbpower/internal/power"
)

// Streaming observability layer. A Trace subscribes to the analyzer's
// per-cycle sample stream (attach it with WithTrace or
// AnalyzerConfig.Trace) and produces windowed power waveforms with
// online mean/peak/RMS, per-sub-block and per-instruction energy time
// series, and CSV / JSON-lines / analog-VCD exports. RunMetrics and
// BatchMetrics are the engine-level performance figures: per-scenario
// latency and throughput, and batch-level worker utilization.
type (
	// Trace is a streaming per-cycle power/energy recorder.
	Trace = metrics.Trace
	// TraceConfig parameterizes a Trace (window duration, per-block and
	// per-instruction series).
	TraceConfig = metrics.TraceConfig
	// TraceStats summarizes a trace: cycles, windows, total energy and
	// the online mean/peak/RMS power.
	TraceStats = metrics.TraceStats
	// PowerWindow is one finished waveform window of a Trace.
	PowerWindow = metrics.Window
	// Sample is one settled bus cycle's energy decomposition as
	// published on the analyzer's sample stream.
	Sample = metrics.Sample
	// RunMetrics are one scenario's engine-level performance figures.
	RunMetrics = metrics.RunMetrics
	// BatchMetrics aggregate run metrics across a scenario batch.
	BatchMetrics = metrics.BatchMetrics
	// Block identifies an AHB sub-block in per-block trace accessors.
	Block = power.Block
	// DPMConfig enables the dynamic-power-management estimator.
	DPMConfig = core.DPMConfig
	// DPMEstimate is the dynamic-power-management savings estimate.
	DPMEstimate = core.DPMEstimate
)

// The AHB sub-blocks, usable with Trace.BlockPowerSeries.
const (
	BlockM2S = power.BlockM2S
	BlockDEC = power.BlockDEC
	BlockARB = power.BlockARB
	BlockS2M = power.BlockS2M
)

// NewTrace builds a streaming power-trace recorder; attach it with
// WithTrace (or AnalyzerConfig.Trace) before the run starts.
func NewTrace(cfg TraceConfig) (*Trace, error) { return metrics.NewTrace(cfg) }

// RunScenariosMetered executes a batch with a machine-sized worker pool
// and returns the results together with aggregated batch metrics.
func RunScenariosMetered(ctx context.Context, scenarios []Scenario) ([]Result, BatchMetrics) {
	return engine.DefaultRunner().RunMetered(ctx, scenarios)
}
