// Powertrace: record a streaming power trace of the paper's AHB
// testbench — the time-resolved waveform behind the paper's Fig. 3 —
// and export it as a CSV waveform and an analog VCD for waveform
// viewers. Demonstrates the trace recorder, the options-style Attach,
// cancellable RunContext, and the exact energy-conservation property:
// the trace's total energy equals the analyzer report's bit for bit.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"ahbpower"
)

func main() {
	sys, err := ahbpower.NewSystem(ahbpower.PaperSystem())
	if err != nil {
		log.Fatal(err)
	}

	const cycles = 5000 // 50 us at 100 MHz, as in the paper
	if err := sys.LoadPaperWorkload(cycles); err != nil {
		log.Fatal(err)
	}

	// A trace recorder with 100 ns windows (10 bus cycles each),
	// decomposed per sub-block and per instruction.
	tr, err := ahbpower.NewTrace(ahbpower.TraceConfig{
		Window:         100e-9,
		PerBlock:       true,
		PerInstruction: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	an, err := ahbpower.Attach(sys,
		ahbpower.WithStyle(ahbpower.StyleGlobal),
		ahbpower.WithTrace(tr),
	)
	if err != nil {
		log.Fatal(err)
	}

	// RunContext stops mid-simulation on Ctrl-C; the trace keeps
	// everything recorded up to that point.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := sys.RunContext(ctx, cycles); err != nil {
		log.Fatal(err)
	}

	// Export the waveform: CSV for plotting, analog VCD for viewers.
	for name, write := range map[string]func(*os.File) error{
		"power_trace.csv": func(f *os.File) error { return tr.WriteCSV(f) },
		"power_trace.vcd": func(f *os.File) error { return tr.WriteVCD(f) },
	} {
		f, err := os.Create(name)
		if err != nil {
			log.Fatal(err)
		}
		if err := write(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", name)
	}

	st := tr.Stats()
	fmt.Println("\ntrace:", st.Format())
	fmt.Println("\nper-instruction window totals:")
	fmt.Print(tr.FormatInstructionTotals())

	// Conservation: the trace accumulates the identical per-cycle energy
	// stream the report totals, in the same order — exact equality.
	r := an.Report()
	fmt.Printf("\nreport total: %.17g J\ntrace  total: %.17g J\nexactly equal: %v\n",
		r.TotalEnergy, tr.Energy(), r.TotalEnergy == tr.Energy())
}
