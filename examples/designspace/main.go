// Design-space exploration: the use case the paper's introduction
// motivates — "to evaluate hundreds of different configurations and
// architectures in order to reach the desired trade-offs in terms of
// speed, throughput and power consumption". Sweeps slave count, data
// width, arbitration policy and slave wait states, reporting energy,
// average power and completion time for each architecture.
package main

import (
	"fmt"
	"log"

	"ahbpower"
)

type point struct {
	slaves    int
	width     int
	policy    string
	waits     int
	energy    float64
	power     float64
	arbPct    float64
	beats     uint64
	pjPerBeat float64
}

func main() {
	const cycles = 4000
	var results []point
	for _, slaves := range []int{2, 3, 8} {
		for _, width := range []int{16, 32} {
			for _, waits := range []int{0, 1} {
				cfg := ahbpower.PaperSystem()
				cfg.NumSlaves = slaves
				cfg.DataWidth = width
				cfg.SlaveWaits = waits
				sys, err := ahbpower.NewSystem(cfg)
				if err != nil {
					log.Fatal(err)
				}
				if err := sys.LoadPaperWorkload(cycles); err != nil {
					log.Fatal(err)
				}
				an, err := ahbpower.Attach(sys, ahbpower.AnalyzerConfig{Style: ahbpower.StyleGlobal})
				if err != nil {
					log.Fatal(err)
				}
				if err := sys.Run(cycles); err != nil {
					log.Fatal(err)
				}
				r := an.Report()
				var beats uint64
				for _, m := range sys.Masters {
					beats += m.Stats().Beats
				}
				p := point{
					slaves: slaves, width: width, waits: waits, policy: "sticky",
					energy: r.TotalEnergy, power: r.AvgPower,
					arbPct: 100 * r.ArbitrationShare, beats: beats,
				}
				if beats > 0 {
					p.pjPerBeat = r.TotalEnergy / float64(beats) * 1e12
				}
				results = append(results, p)
			}
		}
	}

	fmt.Println("Architecture exploration under the paper's workload:")
	fmt.Printf("%-7s %-6s %-6s %-10s %-12s %-8s %-8s %-10s\n",
		"slaves", "width", "waits", "energy", "avg power", "arb %", "beats", "pJ/beat")
	for _, p := range results {
		fmt.Printf("%-7d %-6d %-6d %-10s %-12s %-8.2f %-8d %-10.1f\n",
			p.slaves, p.width, p.waits,
			fmtE(p.energy), fmtP(p.power), p.arbPct, p.beats, p.pjPerBeat)
	}

	fmt.Println("\nObservations:")
	fmt.Println(" - narrower datapaths cut mux energy (the dominant block);")
	fmt.Println(" - wait states lower throughput, so energy per beat moved rises;")
	fmt.Println(" - more slaves grow the decoder but it stays a minor contributor.")
}

func fmtE(j float64) string { return fmt.Sprintf("%.1f nJ", j*1e9) }
func fmtP(w float64) string { return fmt.Sprintf("%.1f uW", w*1e6) }
