// Design-space exploration: the use case the paper's introduction
// motivates — "to evaluate hundreds of different configurations and
// architectures in order to reach the desired trade-offs in terms of
// speed, throughput and power consumption". Sweeps slave count, data
// width and slave wait states through the batch engine, running the grid
// points in parallel while keeping the report order deterministic.
package main

import (
	"context"
	"fmt"
	"log"

	"ahbpower"
)

func main() {
	const cycles = 4000
	grid := ahbpower.Grid{
		Base:     ahbpower.PaperSystem(),
		Analyzer: ahbpower.AnalyzerConfig{Style: ahbpower.StyleGlobal},
		Cycles:   cycles,
		Slaves:   []int{2, 3, 8},
		Widths:   []int{16, 32},
		Waits:    []int{0, 1},
	}
	results := ahbpower.DefaultRunner().Run(context.Background(), grid.Scenarios())
	if err := ahbpower.FirstError(results); err != nil {
		log.Fatal(err)
	}
	if err := ahbpower.FirstViolation(results); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Architecture exploration under the paper's workload:")
	fmt.Printf("%-7s %-6s %-6s %-10s %-12s %-8s %-8s %-10s\n",
		"slaves", "width", "waits", "energy", "avg power", "arb %", "beats", "pJ/beat")
	for _, res := range results {
		cfg, r := res.Scenario.System, res.Report
		fmt.Printf("%-7d %-6d %-6d %-10s %-12s %-8.2f %-8d %-10.1f\n",
			cfg.NumSlaves, cfg.DataWidth, cfg.SlaveWaits,
			fmtE(r.TotalEnergy), fmtP(r.AvgPower),
			100*r.ArbitrationShare, res.Beats, res.PJPerBeat())
	}

	fmt.Println("\nObservations:")
	fmt.Println(" - narrower datapaths cut mux energy (the dominant block);")
	fmt.Println(" - wait states lower throughput, so energy per beat moved rises;")
	fmt.Println(" - more slaves grow the decoder but it stays a minor contributor.")
}

func fmtE(j float64) string { return fmt.Sprintf("%.1f nJ", j*1e9) }
func fmtP(w float64) string { return fmt.Sprintf("%.1f uW", w*1e6) }
