// Characterize: the full IP-characterization loop of the paper's §3 —
// synthesize the AHB sub-blocks at gate level, fit their macromodel
// coefficients, save the model set to disk (the reusable "power model of
// the IP"), reload it, and compare a bus power analysis under fitted
// versus structural-default models.
package main

import (
	"fmt"
	"log"
	"os"

	"ahbpower"
)

func main() {
	tech := ahbpower.DefaultTech()

	// 1. Characterize: gate-level netlists, controlled-activity vectors,
	//    least-squares fits.
	fmt.Println("characterizing sub-blocks at gate level ...")
	models, err := ahbpower.Characterize(ahbpower.CharacterizationConfig{
		NumMasters: 3,
		NumSlaves:  3,
		DataWidth:  32,
		Vectors:    3000,
		Seed:       42,
		Tech:       tech,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  decoder: CHD=%.3g F  CEvent=%.3g F\n", models.Dec.CHD, models.Dec.CEvent)
	fmt.Printf("  M2S mux: CIn=%.3g F  CSel=%.3g F  COut=%.3g F\n",
		models.M2S.CIn, models.M2S.CSel, models.M2S.COut)

	// 2. Save the model set — this file ships with the IP.
	path := "ahb_models.json"
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := ahbpower.SaveModels(f, models); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved %s\n", path)

	// 3. Reload (as an integrator would) and analyze with both model sets.
	rf, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	loaded, err := ahbpower.LoadModels(rf)
	rf.Close()
	if err != nil {
		log.Fatal(err)
	}

	run := func(m *ahbpower.Models) *ahbpower.Report {
		sys, err := ahbpower.NewSystem(ahbpower.PaperSystem())
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.LoadPaperWorkload(5000); err != nil {
			log.Fatal(err)
		}
		an, err := ahbpower.Attach(sys,
			ahbpower.WithStyle(ahbpower.StyleGlobal),
			ahbpower.WithModels(m),
		)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.Run(5000); err != nil {
			log.Fatal(err)
		}
		return an.Report()
	}

	def := run(nil) // structural defaults
	fit := run(loaded)
	fmt.Println("\nanalysis with structural-default models:")
	fmt.Printf("  total %s, M2S share %.1f%%\n", energy(def.TotalEnergy), 100*def.BlockShare["M2S"])
	fmt.Println("analysis with characterized (gate-fitted) models:")
	fmt.Printf("  total %s, M2S share %.1f%%\n", energy(fit.TotalEnergy), 100*fit.BlockShare["M2S"])
	fmt.Printf("\nfitted/default energy ratio: %.2f\n", fit.TotalEnergy/def.TotalEnergy)
	fmt.Println("(the gap between structural guesses and gate-fitted coefficients is")
	fmt.Println(" exactly what the paper's characterization stage exists to close)")
}

func energy(j float64) string { return fmt.Sprintf("%.1f nJ", j*1e9) }
