// APB bridge: a small SoC in the shape the paper's §5 describes — a
// high-performance AHB carrying the CPU-like master and on-chip memory,
// plus a bridge to a low-bandwidth APB hosting peripherals (a register
// block and a timer). Shows how the power-analysis flow extends across
// both bus tiers.
package main

import (
	"fmt"
	"log"

	"ahbpower"
)

func main() {
	k := ahbpower.NewKernel()

	// AHB: one master, slave 0 = 4 KB memory, slave 1 = APB bridge.
	bus, err := ahbpower.NewBus(k, ahbpower.BusConfig{
		NumMasters: 1,
		NumSlaves:  2,
		Regions: []ahbpower.Region{
			{Start: 0x0000_0000, Size: 0x1000, Slave: 0},
			{Start: 0x0001_0000, Size: 0x1000, Slave: 1},
		},
		ClockPeriod: 10 * ahbpower.Nanosecond, // 100 MHz
		DataWidth:   32,
	})
	if err != nil {
		log.Fatal(err)
	}
	mon := ahbpower.NewMonitor(bus)

	mem, err := ahbpower.NewMemorySlave(bus, 0, 0)
	if err != nil {
		log.Fatal(err)
	}

	// APB behind the bridge: a control register block and a timer.
	apbBus, err := ahbpower.NewAPBBus(k, ahbpower.APBConfig{
		NumSel: 2,
		Regions: []ahbpower.APBRegion{
			{Start: 0x0001_0000, Size: 0x100, Sel: 0},
			{Start: 0x0001_0100, Size: 0x100, Sel: 1},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	bridge, err := ahbpower.NewBridge(bus, 1, apbBus)
	if err != nil {
		log.Fatal(err)
	}
	ctrl, err := ahbpower.NewRegisterBlock(apbBus, 0, 0x0001_0000, 16)
	if err != nil {
		log.Fatal(err)
	}
	ctrl.AttachClock(bus.Clk)
	timer, err := ahbpower.NewTimer(apbBus, 1, 0x0001_0100, bus.Clk)
	if err != nil {
		log.Fatal(err)
	}

	// The master: configure peripherals over APB, move a data buffer in
	// AHB memory, then poll the timer.
	m, err := ahbpower.NewMaster(bus, 0)
	if err != nil {
		log.Fatal(err)
	}
	m.KeepResults(true)
	var ops []ahbpower.Op
	for i := 0; i < 8; i++ {
		ops = append(ops, ahbpower.Op{Kind: ahbpower.OpWrite,
			Addr: uint32(0x0001_0000 + 4*i), Data: []uint32{uint32(0xC0DE0000 + i)}})
	}
	ops = append(ops,
		ahbpower.Op{Kind: ahbpower.OpWrite, Addr: 0x100, Data: []uint32{1, 2, 3, 4, 5, 6, 7, 8}},
		ahbpower.Op{Kind: ahbpower.OpRead, Addr: 0x100, Beats: 8},
		ahbpower.Op{Kind: ahbpower.OpRead, Addr: 0x0001_0100}, // timer
	)
	m.Enqueue(ahbpower.Sequence{Ops: ops})

	if err := k.RunCycles(bus.Clk, 400); err != nil {
		log.Fatal(err)
	}
	if errs := mon.Errors(); len(errs) > 0 {
		log.Fatalf("protocol violation: %v", errs[0])
	}
	if !m.Done() {
		log.Fatal("master did not finish")
	}

	res := m.Results()
	fmt.Printf("completed %d beats (%d AHB memory, %d APB)\n",
		len(res), 16, bridge.Accesses)
	fmt.Printf("ctrl reg[3] = %#x (wrote %#x)\n", ctrl.Peek(3), 0xC0DE0003)
	fmt.Printf("memory word 0x104 = %d\n", mem.Peek(0x104))
	fmt.Printf("timer now %d; master read %d a little earlier\n",
		timer.Count(), res[len(res)-1].Data)
	fmt.Printf("master stats: %+v\n", m.Stats())
}
