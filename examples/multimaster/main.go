// Multimaster: the paper's full testbench scenario with custom traffic —
// two masters with different data patterns contending for three slaves —
// demonstrating per-block power attribution (Fig. 6), power-versus-time
// traces (Figs. 3-5) and the protocol monitor.
package main

import (
	"fmt"
	"log"

	"ahbpower"
)

func main() {
	sys, err := ahbpower.NewSystem(ahbpower.PaperSystem())
	if err != nil {
		log.Fatal(err)
	}

	// Master 0 moves random (high-activity) data; master 1 streams
	// counter (low-activity) data. The energy difference between them is
	// exactly what the Hamming-distance macromodels capture.
	cfg0 := ahbpower.PaperWorkload(0, 90)
	cfg1 := ahbpower.PaperWorkload(1, 90)
	cfg1.Pattern = 2 // counter pattern
	w0, err := ahbpower.GenerateWorkload(cfg0)
	if err != nil {
		log.Fatal(err)
	}
	w1, err := ahbpower.GenerateWorkload(cfg1)
	if err != nil {
		log.Fatal(err)
	}
	sys.Masters[0].Enqueue(w0...)
	sys.Masters[1].Enqueue(w1...)

	an, err := ahbpower.Attach(sys, ahbpower.AnalyzerConfig{
		Style:       ahbpower.StyleGlobal,
		TraceWindow: 100e-9, // 100 ns power windows, as in Figs. 3-5
	})
	if err != nil {
		log.Fatal(err)
	}

	const cycles = 8000
	if err := sys.Run(cycles); err != nil {
		log.Fatal(err)
	}
	if errs := sys.Monitor.Errors(); len(errs) > 0 {
		log.Fatalf("protocol violations: %v", errs[0])
	}

	r := an.Report()
	fmt.Println("== Instruction energies ==")
	fmt.Print(r.FormatTable())
	fmt.Println("\n== Sub-block contribution (Fig. 6) ==")
	fmt.Print(r.FormatBreakdown())
	fmt.Println("\n== Power traces ==")
	fmt.Printf("total: mean %s, peak %s over %d windows\n",
		fmtPower(r.TraceTotal.MeanY()), fmtPower(r.TraceTotal.MaxY()), r.TraceTotal.Len())
	fmt.Printf("arbiter: mean %s (Fig. 4)  M2S mux: mean %s (Fig. 5)\n",
		fmtPower(r.TraceARB.MeanY()), fmtPower(r.TraceM2S.MeanY()))
	fmt.Println()
	fmt.Println(r.FormatSummary())
	fmt.Printf("\nbus events: %d transfers, %d handovers, %d wait cycles\n",
		sys.Monitor.Counts()["nonseq"]+sys.Monitor.Counts()["seq"],
		sys.Monitor.Counts()["handover"], sys.Monitor.Counts()["wait"])
}

func fmtPower(w float64) string {
	switch {
	case w >= 1e-3:
		return fmt.Sprintf("%.2f mW", w*1e3)
	default:
		return fmt.Sprintf("%.1f uW", w*1e6)
	}
}
