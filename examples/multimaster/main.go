// Multimaster: the paper's full testbench scenario with custom traffic —
// two masters with different data patterns contending for three slaves —
// demonstrating per-block power attribution (Fig. 6), power-versus-time
// traces (Figs. 3-5) and the protocol monitor, run through the batch
// engine as a single scenario.
package main

import (
	"context"
	"fmt"
	"log"

	"ahbpower"
)

func main() {
	// Master 0 moves random (high-activity) data; master 1 streams
	// counter (low-activity) data. The energy difference between them is
	// exactly what the Hamming-distance macromodels capture.
	cfg0 := ahbpower.PaperWorkload(0, 90)
	cfg1 := ahbpower.PaperWorkload(1, 90)
	cfg1.Pattern = 2 // counter pattern

	const cycles = 8000
	res := ahbpower.RunScenario(context.Background(), ahbpower.Scenario{
		Name:      "multimaster",
		System:    ahbpower.PaperSystem(),
		Workloads: []ahbpower.WorkloadConfig{cfg0, cfg1},
		Analyzer: ahbpower.AnalyzerConfig{
			Style:       ahbpower.StyleGlobal,
			TraceWindow: 100e-9, // 100 ns power windows, as in Figs. 3-5
		},
		Cycles: cycles,
	})
	if res.Err != nil {
		log.Fatal(res.Err)
	}
	if len(res.Violations) > 0 {
		log.Fatalf("protocol violations: %v", res.Violations[0])
	}

	r := res.Report
	fmt.Println("== Instruction energies ==")
	fmt.Print(r.FormatTable())
	fmt.Println("\n== Sub-block contribution (Fig. 6) ==")
	fmt.Print(r.FormatBreakdown())
	fmt.Println("\n== Power traces ==")
	fmt.Printf("total: mean %s, peak %s over %d windows\n",
		fmtPower(r.TraceTotal.MeanY()), fmtPower(r.TraceTotal.MaxY()), r.TraceTotal.Len())
	fmt.Printf("arbiter: mean %s (Fig. 4)  M2S mux: mean %s (Fig. 5)\n",
		fmtPower(r.TraceARB.MeanY()), fmtPower(r.TraceM2S.MeanY()))
	fmt.Println()
	fmt.Println(r.FormatSummary())
	fmt.Printf("\nbus events: %d transfers, %d handovers, %d wait cycles\n",
		res.Counts["nonseq"]+res.Counts["seq"],
		res.Counts["handover"], res.Counts["wait"])
}

func fmtPower(w float64) string {
	switch {
	case w >= 1e-3:
		return fmt.Sprintf("%.2f mW", w*1e3)
	default:
		return fmt.Sprintf("%.1f uW", w*1e6)
	}
}
