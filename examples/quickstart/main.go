// Quickstart: build the paper's AHB testbench, attach a power analyzer,
// run 50 µs of simulated time at 100 MHz and print the instruction energy
// table — the minimal end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"ahbpower"
)

func main() {
	// The paper's system: two masters, a simple default master, three
	// slaves, 100 MHz AHB.
	sys, err := ahbpower.NewSystem(ahbpower.PaperSystem())
	if err != nil {
		log.Fatal(err)
	}

	// Load the paper's testbench traffic: non-interruptible WRITE-READ
	// sequences separated by idle gaps.
	const cycles = 5000 // 50 us at 100 MHz, as in the paper
	if err := sys.LoadPaperWorkload(cycles); err != nil {
		log.Fatal(err)
	}

	// Attach the power analysis (the paper's POWERTEST switch): a global
	// analyzer module observing the shared bus signals.
	an, err := ahbpower.Attach(sys, ahbpower.WithStyle(ahbpower.StyleGlobal))
	if err != nil {
		log.Fatal(err)
	}

	if err := sys.Run(cycles); err != nil {
		log.Fatal(err)
	}

	r := an.Report()
	fmt.Println("Instruction energy analysis:")
	fmt.Print(r.FormatTable())
	fmt.Println()
	fmt.Println(r.FormatSummary())
}
