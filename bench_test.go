// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus the ablations and substrate micro-benchmarks. Run with:
//
//	go test -bench=. -benchmem
//
// Each paper artifact has one benchmark; custom metrics expose the
// quantities the paper reports (energies in pJ, percentage shares,
// instrumentation slowdown) so the reproduction can be read directly from
// the benchmark output.
package ahbpower_test

import (
	"context"
	"testing"

	"ahbpower"
	"ahbpower/internal/charact"
	"ahbpower/internal/core"
	"ahbpower/internal/experiments"
	"ahbpower/internal/gate"
	"ahbpower/internal/power"
	"ahbpower/internal/sim"
	"ahbpower/internal/synth"
)

const benchCycles = 20000 // 200 us at 100 MHz per iteration

// BenchmarkTable1Instructions regenerates the paper's Table 1 and reports
// the headline per-instruction averages and energy-class shares.
func BenchmarkTable1Instructions(b *testing.B) {
	var r *core.Report
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(benchCycles)
		if err != nil {
			b.Fatal(err)
		}
		r = res.Report
	}
	for _, row := range r.Table {
		switch row.Instruction {
		case "READ_WRITE", "WRITE_READ", "IDLE_HO_IDLE_HO":
			b.ReportMetric(row.AvgEnergy*1e12, "pJ/"+row.Instruction)
		}
	}
	b.ReportMetric(100*r.DataTransferShare, "%data-transfer")
	b.ReportMetric(100*r.ArbitrationShare, "%arbitration")
}

// benchFigure runs the Figures experiment once per iteration and reports
// the requested series' mean power.
func benchFigure(b *testing.B, pick func(*experiments.FiguresResult) float64, metric string) {
	b.Helper()
	var v float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figures(4000, 100e-9) // first ~40 us, 100 ns windows
		if err != nil {
			b.Fatal(err)
		}
		v = pick(res)
	}
	b.ReportMetric(v, metric)
}

// BenchmarkFig3TotalPower regenerates the total AHB power trace (Fig. 3).
func BenchmarkFig3TotalPower(b *testing.B) {
	benchFigure(b, func(r *experiments.FiguresResult) float64 { return r.Total.MeanY() * 1e3 }, "mW-mean-total")
}

// BenchmarkFig4ArbiterPower regenerates the arbiter power trace (Fig. 4).
func BenchmarkFig4ArbiterPower(b *testing.B) {
	benchFigure(b, func(r *experiments.FiguresResult) float64 { return r.ARB.MeanY() * 1e6 }, "uW-mean-arb")
}

// BenchmarkFig5M2SPower regenerates the M2S multiplexer power trace
// (Fig. 5).
func BenchmarkFig5M2SPower(b *testing.B) {
	benchFigure(b, func(r *experiments.FiguresResult) float64 { return r.M2S.MeanY() * 1e3 }, "mW-mean-m2s")
}

// BenchmarkFig6SubblockContribution regenerates the sub-block power
// contribution (Fig. 6).
func BenchmarkFig6SubblockContribution(b *testing.B) {
	var r *core.Report
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figures(4000, 100e-9)
		if err != nil {
			b.Fatal(err)
		}
		r = res.Report
	}
	for _, blk := range power.Blocks() {
		b.ReportMetric(100*r.BlockShare[blk.String()], "%"+blk.String())
	}
}

// runInstrumented builds and runs the paper system with or without power
// analysis; the ratio of the instrumented benchmarks to this baseline
// reproduces the paper's "doubling in the simulation time" claim (C2).
func runInstrumented(b *testing.B, attach bool, style core.Style) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		sys, err := ahbpower.NewSystem(ahbpower.PaperSystem())
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.LoadPaperWorkload(benchCycles); err != nil {
			b.Fatal(err)
		}
		if attach {
			if _, err := ahbpower.AttachConfig(sys, ahbpower.AnalyzerConfig{Style: style}); err != nil {
				b.Fatal(err)
			}
		}
		if err := sys.Run(benchCycles); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInstrumentationOverheadNone is the functional-only baseline.
func BenchmarkInstrumentationOverheadNone(b *testing.B) {
	runInstrumented(b, false, core.StyleGlobal)
}

// BenchmarkInstrumentationOverheadGlobal measures the global-style cost.
func BenchmarkInstrumentationOverheadGlobal(b *testing.B) {
	runInstrumented(b, true, core.StyleGlobal)
}

// BenchmarkInstrumentationOverheadLocal measures the local-style cost.
func BenchmarkInstrumentationOverheadLocal(b *testing.B) {
	runInstrumented(b, true, core.StyleLocal)
}

// BenchmarkInstrumentationOverheadPrivate measures the private-style cost.
func BenchmarkInstrumentationOverheadPrivate(b *testing.B) {
	runInstrumented(b, true, core.StylePrivate)
}

// benchTrace runs an analyzed simulation with or without a trace
// recorder subscribed to the analyzer's sample stream. Comparing
// BenchmarkTraceAttached to BenchmarkTraceDetached isolates the recorder
// cost: detached must be free (no samples are even constructed when the
// hub has no observers), attached must stay under ~10% of the analyzed
// run.
func benchTrace(b *testing.B, attach bool) {
	b.Helper()
	var tr *ahbpower.Trace
	for i := 0; i < b.N; i++ {
		sys, err := ahbpower.NewSystem(ahbpower.PaperSystem())
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.LoadPaperWorkload(benchCycles); err != nil {
			b.Fatal(err)
		}
		opts := []ahbpower.AttachOption{ahbpower.WithStyle(ahbpower.StyleGlobal)}
		if attach {
			tr, err = ahbpower.NewTrace(ahbpower.TraceConfig{
				Window: 100e-9, PerBlock: true, PerInstruction: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			opts = append(opts, ahbpower.WithTrace(tr))
		}
		an, err := ahbpower.Attach(sys, opts...)
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.Run(benchCycles); err != nil {
			b.Fatal(err)
		}
		if attach && tr.Energy() != an.Report().TotalEnergy {
			b.Fatal("trace diverged from report")
		}
	}
	if tr != nil {
		st := tr.Stats()
		b.ReportMetric(float64(st.Windows), "windows")
		b.ReportMetric(st.MeanPower*1e3, "mW-mean")
	}
}

// BenchmarkTraceDetached is the analyzed run without a recorder — the
// zero-overhead baseline for the streaming trace layer.
func BenchmarkTraceDetached(b *testing.B) { benchTrace(b, false) }

// BenchmarkTraceAttached is the same run with a full trace recorder
// (per-block and per-instruction) subscribed.
func BenchmarkTraceAttached(b *testing.B) { benchTrace(b, true) }

// BenchmarkMacromodelValidation reproduces the SIS-validation step (V1):
// gate-level characterization of the AHB-sized sub-blocks.
func BenchmarkMacromodelValidation(b *testing.B) {
	var res *experiments.ValidationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Validation(1000, 42)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Decoder.R2, "R2-decoder")
	b.ReportMetric(res.Mux.R2, "R2-mux")
	b.ReportMetric(res.Mux.ModelMAPE, "%MAPE-mux-model")
}

// BenchmarkGranularityAblation runs the §3 instruction-granularity
// ablation (A1).
func BenchmarkGranularityAblation(b *testing.B) {
	var res *experiments.GranularityResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Granularity(8000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.FinePct, "%err-fine")
	b.ReportMetric(res.CoarsePct, "%err-coarse")
}

// BenchmarkModelStyleAblation runs the Fig. 1 style ablation (A2).
func BenchmarkModelStyleAblation(b *testing.B) {
	var res *experiments.StyleResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.ModelStyles(4000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.EnergyJ["local"]/res.EnergyJ["global"], "local/global")
	b.ReportMetric(res.EnergyJ["private"]/res.EnergyJ["global"], "private/global")
}

// BenchmarkBurstAblation sweeps burst lengths and reports the per-beat M2S
// energy amortization.
func BenchmarkBurstAblation(b *testing.B) {
	var res *experiments.BurstResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.BurstAblation(6000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Rows[0].M2SPJPerBeat, "pJ/beat-single")
	b.ReportMetric(res.Rows[3].M2SPJPerBeat, "pJ/beat-burst16")
}

// BenchmarkPatternAblation compares data patterns.
func BenchmarkPatternAblation(b *testing.B) {
	var res *experiments.PatternResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.PatternAblation(6000)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res.Rows {
		b.ReportMetric(r.PJPerBeat, "pJ/beat-"+r.Pattern)
	}
}

// BenchmarkDPMSweep evaluates the run-time power-management extension.
func BenchmarkDPMSweep(b *testing.B) {
	var res *experiments.DPMResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.DPMSweep(8000, 5e-12)
		if err != nil {
			b.Fatal(err)
		}
	}
	best := 0.0
	for _, r := range res.Rows {
		if r.SavingsPct > best {
			best = r.SavingsPct
		}
	}
	b.ReportMetric(best, "%best-savings")
}

// BenchmarkCoSimDecoder replays real bus traffic through the gate-level
// decoder and reports how well the macromodels track it.
func BenchmarkCoSimDecoder(b *testing.B) {
	var res *experiments.CoSimResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.CoSimDecoder(5000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.PaperErrPct, "%err-paper-formula")
	b.ReportMetric(res.FittedErrPct, "%err-fitted")
}

// BenchmarkImplAblation measures implementation sensitivity of the
// decoder energy coefficient.
func BenchmarkImplAblation(b *testing.B) {
	var res *experiments.ImplResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.ImplAblation(8, 2000, 11)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Rows[1].PJPerHD/res.Rows[0].PJPerHD, "nand/notand")
}

// BenchmarkCompareBuses compares AHB and ASB energy per beat under the
// same traffic.
func BenchmarkCompareBuses(b *testing.B) {
	var res *experiments.BusCompareResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.CompareBuses(8000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Rows[0].PJPerBeat, "pJ/beat-AHB")
	b.ReportMetric(res.Rows[1].PJPerBeat, "pJ/beat-ASB")
}

// BenchmarkParametricSweep evaluates the parametric macromodels (A3).
func BenchmarkParametricSweep(b *testing.B) {
	var res *experiments.ParametricResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Parametric()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.DecoderPJ[16]/res.DecoderPJ[2], "dec16/dec2")
}

// BenchmarkSimKernelEvents measures raw kernel throughput.
func BenchmarkSimKernelEvents(b *testing.B) {
	k := sim.NewKernel()
	s := sim.NewSignal(k, "s", 0)
	n := 0
	k.Method("p", func() { n++ }, s.Changed())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Schedule(1, func() { s.Write(i) })
		if err := k.Run(k.Now() + 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAHBBusCycles measures bus-model simulation speed in
// cycles/sec (reported as ns/op per simulated cycle).
func BenchmarkAHBBusCycles(b *testing.B) {
	sys, err := ahbpower.NewSystem(ahbpower.PaperSystem())
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.LoadPaperWorkload(uint64(b.N) + 1000); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if err := sys.Run(uint64(b.N)); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkGateLevelDecoder measures the gate evaluator on the paper's
// decoder netlist.
func BenchmarkGateLevelDecoder(b *testing.B) {
	dec, err := synth.BuildDecoder(8)
	if err != nil {
		b.Fatal(err)
	}
	ev, err := gate.NewEval(dec.Netlist, gate.Tech{VDD: 1.8, CPD: 20e-15, COut: 50e-15})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.SetInputs(uint64(i % 8))
		ev.Settle()
	}
}

// BenchmarkCharacterizeMux measures the characterization harness itself.
func BenchmarkCharacterizeMux(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := charact.CharacterizeMux(8, 4, 500, 1, power.DefaultTech()); err != nil {
			b.Fatal(err)
		}
	}
}

// sweepScenarios is the batch both sweep benchmarks run: a 12-point
// design-space grid (the paper's §4 use case) at 2000 cycles per point.
func sweepScenarios() []ahbpower.Scenario {
	g := ahbpower.Grid{
		Base:     ahbpower.PaperSystem(),
		Analyzer: ahbpower.AnalyzerConfig{Style: ahbpower.StyleGlobal},
		Cycles:   2000,
		Slaves:   []int{2, 3, 8},
		Widths:   []int{16, 32},
		Waits:    []int{0, 1},
	}
	return g.Scenarios()
}

// benchSweep executes the reference grid with the given worker-pool size.
// Comparing BenchmarkSweepSerial to BenchmarkSweepParallel on a
// multi-core host shows the engine's sweep speedup (results stay
// byte-identical; see internal/engine's determinism test).
func benchSweep(b *testing.B, workers int) {
	b.Helper()
	scs := sweepScenarios()
	runner := ahbpower.NewRunner(workers)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := runner.Run(context.Background(), scs)
		if err := ahbpower.FirstError(results); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepSerial runs the sweep one scenario at a time.
func BenchmarkSweepSerial(b *testing.B) { benchSweep(b, 1) }

// BenchmarkSweepParallel runs the same sweep on four workers.
func BenchmarkSweepParallel(b *testing.B) { benchSweep(b, 4) }
