// Command ahbcharact runs the IP-characterization stage of the paper's
// methodology: it synthesizes gate-level netlists of the AHB sub-blocks,
// measures their switched-capacitance energies over controlled vector
// streams, fits the macromodel coefficients, and prints the validation
// report (the paper's "validated using the software SIS" step), plus the
// parametric model sweeps.
package main

import (
	"flag"
	"fmt"
	"os"

	"ahbpower/internal/charact"
	"ahbpower/internal/experiments"
	"ahbpower/internal/power"
)

func main() {
	vectors := flag.Int("vectors", 3000, "stimulus vectors per block")
	seed := flag.Int64("seed", 42, "stimulus seed")
	muxW := flag.Int("mux-width", 16, "mux width to characterize")
	muxN := flag.Int("mux-inputs", 3, "mux input count to characterize")
	flag.Parse()

	res, err := experiments.Validation(*vectors, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Print(res.Text)

	fit, fitted, err := charact.CharacterizeMux(*muxW, *muxN, *vectors, *seed+10, power.DefaultTech())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nFitted mux coefficients (w=%d, n=%d):\n", *muxW, *muxN)
	for i, f := range fit.Features {
		fmt.Printf("  %-8s %.4g J per unit\n", f, fit.Coef[i])
	}
	fmt.Printf("  => CIn=%.3g F  CSel=%.3g F  COut=%.3g F\n", fitted.CIn, fitted.CSel, fitted.COut)

	par, err := experiments.Parametric()
	if err != nil {
		fatal(err)
	}
	fmt.Println()
	fmt.Print(par.Text)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ahbcharact:", err)
	os.Exit(1)
}
