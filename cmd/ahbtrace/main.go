// Command ahbtrace regenerates the paper's power-versus-time figures
// (Figs. 3-5) and the sub-block contribution data behind Fig. 6, emitting
// CSV suitable for any plotting tool.
package main

import (
	"flag"
	"fmt"
	"os"

	"ahbpower/internal/experiments"
	"ahbpower/internal/stats"
)

func main() {
	fig := flag.Int("fig", 3, "figure to regenerate: 3 (total), 4 (arbiter), 5 (M2S mux), 6 (breakdown)")
	cycles := flag.Uint64("cycles", 4000, "bus cycles to simulate (paper analyzes the first 4 us = 400 cycles)")
	window := flag.Float64("window", 100e-9, "power averaging window in seconds")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	res, err := experiments.Figures(*cycles, *window)
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	var closeOut func() error
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		closeOut = f.Close
		w = f
	}
	// Close the output file explicitly: a deferred Close would drop the
	// error, and the kernel may only report a write failure at close time.
	closeAndExit := func() {
		if closeOut != nil {
			if err := closeOut(); err != nil {
				fatal(err)
			}
		}
	}

	var series *stats.Series
	switch *fig {
	case 3:
		series = res.Total
	case 4:
		series = res.ARB
	case 5:
		series = res.M2S
	case 6:
		if _, err := fmt.Fprintln(w, "block,energy_J,share"); err != nil {
			fatal(err)
		}
		for _, blk := range []string{"M2S", "DEC", "ARB", "S2M"} {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", blk, res.Report.BlockEnergy[blk], res.Report.BlockShare[blk]); err != nil {
				fatal(err)
			}
		}
		closeAndExit()
		return
	default:
		fatal(fmt.Errorf("unknown figure %d", *fig))
	}
	if err := series.WriteCSV(w); err != nil {
		fatal(err)
	}
	closeAndExit()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ahbtrace:", err)
	os.Exit(1)
}
