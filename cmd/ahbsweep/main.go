// Command ahbsweep runs a design-space sweep — the "hundreds of different
// configurations and architectures" evaluation the paper's §4 motivates —
// over slave count, data width, slave wait states and arbitration policy,
// and emits one CSV row per configuration with energy, power, per-beat
// energy and the energy-class split. Scenarios execute in parallel across
// a worker pool (see -workers); the output order and content are
// byte-identical to a serial run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"

	"ahbpower/internal/amba/ahb"
	"ahbpower/internal/core"
	"ahbpower/internal/engine"
	"ahbpower/internal/exec"
	"ahbpower/internal/fault"
	"ahbpower/internal/topo"
)

func main() {
	cycles := flag.Uint64("cycles", 4000, "bus cycles per configuration")
	slaves := flag.String("slaves", "2,3,8", "comma-separated slave counts")
	widths := flag.String("widths", "16,32", "comma-separated data widths")
	waits := flag.String("waits", "0,1,2", "comma-separated slave wait states")
	policies := flag.String("policies", "sticky,fixed,rr", "comma-separated arbitration policies")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallel scenario workers")
	faultsFile := flag.String("faults", "", "inject faults from this JSON plan file into every configuration (see internal/fault)")
	out := flag.String("o", "", "output file (default stdout)")
	showMetrics := flag.Bool("metrics", false, "print batch run metrics (throughput, utilization, latency) to stderr")
	backend := flag.String("backend", "", "execution backend for every configuration: event, compiled, lanes or auto (results are identical either way)")
	accuracy := flag.String("accuracy", "", "accuracy class for every configuration: cycle (exact, default) or transaction (calibrated transaction-level estimate, ~10x faster)")
	topoFile := flag.String("topology", "", "sweep from this declarative topology JSON file instead of the paper base (-widths/-waits/-policies still apply per point; -slaves does not: the address map fixes the slave count)")
	flag.Parse()

	if !exec.ValidName(*backend) {
		fatal(fmt.Errorf("unknown -backend %q (want event, compiled, lanes or auto)", *backend))
	}
	if !engine.ValidAccuracy(*accuracy) {
		fatal(fmt.Errorf("unknown -accuracy %q (want cycle or transaction)", *accuracy))
	}

	visited := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { visited[f.Name] = true })
	var baseTopo *topo.Topology
	if *topoFile != "" {
		if visited["slaves"] {
			fatal(errors.New("-slaves cannot be combined with -topology (the topology's address map fixes the slave count)"))
		}
		t, err := topo.LoadFile(*topoFile)
		if err != nil {
			fatal(err)
		}
		baseTopo = t
	}

	w := os.Stdout
	var closeOut func() error
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		closeOut = f.Close
		w = f
	}

	var pols []ahb.ArbPolicy
	for _, p := range strings.Split(*policies, ",") {
		pol, err := ahb.ParsePolicy(strings.TrimSpace(p))
		if err != nil {
			fatal(err)
		}
		pols = append(pols, pol)
	}

	grid := engine.Grid{
		Base:     core.PaperSystem(),
		BaseTopo: baseTopo,
		Analyzer: core.AnalyzerConfig{Style: core.StyleGlobal},
		Cycles:   *cycles,
		Widths:   ints(*widths),
		Waits:    ints(*waits),
		Policies: pols,
	}
	if baseTopo == nil {
		grid.Slaves = ints(*slaves)
	}

	var plan *fault.Plan
	if *faultsFile != "" {
		var err error
		if plan, err = fault.LoadFile(*faultsFile); err != nil {
			fatal(err)
		}
	}
	scens, err := grid.Expand()
	if err != nil {
		fatal(err)
	}
	for i := range scens {
		scens[i].Faults = plan
		scens[i].Backend = *backend
		scens[i].Accuracy = *accuracy
	}

	// Ctrl-C abandons queued scenarios; completed rows are still printed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	runner := engine.NewRunner(*workers)
	runner.Retry = engine.DefaultRetryPolicy()
	results, batch := runner.RunMetered(ctx, scens)
	if *showMetrics {
		fmt.Fprintln(os.Stderr, batch.Format())
	}

	if _, err := fmt.Fprintln(w, "slaves,width,waits,policy,cycles,beats,energy_J,avg_power_W,pJ_per_beat,data_transfer_pct,arbitration_pct"); err != nil {
		fatal(err)
	}
	for n, res := range results {
		if errors.Is(res.Err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "ahbsweep: interrupted after %d of %d configurations\n", n, len(results))
			os.Exit(1)
		}
		if res.Err != nil {
			fatal(res.Err)
		}
		if len(res.Violations) > 0 {
			// Injected faults are supposed to trip the protocol monitor;
			// only a fault-free sweep treats a violation as fatal.
			if plan.Active() {
				fmt.Fprintf(os.Stderr, "ahbsweep: %s: %d protocol violations under fault injection (first: %v)\n",
					res.Scenario.Name, len(res.Violations), res.Violations[0])
			} else {
				fatal(fmt.Errorf("protocol violation in %s: %v", res.Scenario.Name, res.Violations[0]))
			}
		}
		// Derive the row's shape columns from the scenario's canonical
		// topology — one code path for both the count-based grid and a
		// -topology sweep (waits is the per-slave maximum, which for a
		// uniform grid point is exactly the configured wait-state count).
		t, r := res.Scenario.Topology(), res.Report
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%s,%d,%d,%g,%g,%.3f,%.2f,%.2f\n",
			len(t.Slaves), t.DataWidth, t.MaxWaits(), t.Policy, r.Cycles, res.Beats,
			r.TotalEnergy, r.AvgPower, res.PJPerBeat(),
			100*r.DataTransferShare, 100*r.ArbitrationShare); err != nil {
			fatal(err)
		}
	}
	// Close the output file explicitly: a deferred Close would drop the
	// error, and the kernel may only report a write failure at close time.
	if closeOut != nil {
		if err := closeOut(); err != nil {
			fatal(err)
		}
	}
}

func ints(csv string) []int {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n := 0
		for _, r := range f {
			if r < '0' || r > '9' {
				fatal(fmt.Errorf("bad integer %q", f))
			}
			n = n*10 + int(r-'0')
		}
		out = append(out, n)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ahbsweep:", err)
	os.Exit(1)
}
