// Command ahbsweep runs a design-space sweep — the "hundreds of different
// configurations and architectures" evaluation the paper's §4 motivates —
// over slave count, data width, slave wait states and arbitration policy,
// and emits one CSV row per configuration with energy, power, per-beat
// energy and the energy-class split.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ahbpower/internal/amba/ahb"
	"ahbpower/internal/core"
)

func main() {
	cycles := flag.Uint64("cycles", 4000, "bus cycles per configuration")
	slaves := flag.String("slaves", "2,3,8", "comma-separated slave counts")
	widths := flag.String("widths", "16,32", "comma-separated data widths")
	waits := flag.String("waits", "0,1,2", "comma-separated slave wait states")
	policies := flag.String("policies", "sticky,fixed,rr", "comma-separated arbitration policies")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	fmt.Fprintln(w, "slaves,width,waits,policy,cycles,beats,energy_J,avg_power_W,pJ_per_beat,data_transfer_pct,arbitration_pct")
	for _, ns := range ints(*slaves) {
		for _, dw := range ints(*widths) {
			for _, ws := range ints(*waits) {
				for _, pol := range strings.Split(*policies, ",") {
					if err := runOne(w, *cycles, ns, dw, ws, strings.TrimSpace(pol)); err != nil {
						fatal(err)
					}
				}
			}
		}
	}
}

func runOne(w *os.File, cycles uint64, slaves, width, waits int, policy string) error {
	cfg := core.PaperSystem()
	cfg.NumSlaves = slaves
	cfg.DataWidth = width
	cfg.SlaveWaits = waits
	switch policy {
	case "sticky":
		cfg.Policy = ahb.PolicySticky
	case "fixed":
		cfg.Policy = ahb.PolicyFixed
	case "rr":
		cfg.Policy = ahb.PolicyRoundRobin
	default:
		return fmt.Errorf("unknown policy %q", policy)
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return err
	}
	if err := sys.LoadPaperWorkload(cycles); err != nil {
		return err
	}
	an, err := core.Attach(sys, core.AnalyzerConfig{Style: core.StyleGlobal})
	if err != nil {
		return err
	}
	if err := sys.Run(cycles); err != nil {
		return err
	}
	if errs := sys.Monitor.Errors(); len(errs) > 0 {
		return fmt.Errorf("protocol violation in %d/%d/%d/%s: %v", slaves, width, waits, policy, errs[0])
	}
	r := an.Report()
	var beats uint64
	for _, m := range sys.Masters {
		beats += m.Stats().Beats
	}
	perBeat := 0.0
	if beats > 0 {
		perBeat = r.TotalEnergy / float64(beats) * 1e12
	}
	_, err = fmt.Fprintf(w, "%d,%d,%d,%s,%d,%d,%g,%g,%.3f,%.2f,%.2f\n",
		slaves, width, waits, policy, r.Cycles, beats,
		r.TotalEnergy, r.AvgPower, perBeat,
		100*r.DataTransferShare, 100*r.ArbitrationShare)
	return err
}

func ints(csv string) []int {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n := 0
		for _, r := range f {
			if r < '0' || r > '9' {
				fatal(fmt.Errorf("bad integer %q", f))
			}
			n = n*10 + int(r-'0')
		}
		out = append(out, n)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ahbsweep:", err)
	os.Exit(1)
}
