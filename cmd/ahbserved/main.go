// Command ahbserved is the scenario-serving daemon: a long-lived HTTP
// service that runs power-analysis scenario batches on the parallel
// engine. It adds what a run-to-completion CLI never needs — admission
// control with backpressure, per-request deadlines, a content-addressed
// result cache (deterministic runs make cached and fresh responses
// byte-identical) and a graceful SIGTERM drain that finishes or cancels
// in-flight batches without dropping completed results. With -state-dir
// the daemon is additionally crash-safe: async jobs are journaled,
// results gain a disk cache tier, long scenarios checkpoint as they run,
// and a restart on the same directory recovers every interrupted job —
// resumed, byte-identical, under its original job id.
//
// API:
//
//	POST /v1/run        {"scenarios":[{"cycles":4000}, ...]}      run a batch
//	POST /v1/run        {"async":true, ...}                       -> 202 + job id
//	GET  /v1/jobs/{id}  poll an async job
//	GET  /healthz       readiness (503 while draining)
//	GET  /metrics       serving counters (expvar JSON)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"ahbpower/internal/engine"
	"ahbpower/internal/exec"
	"ahbpower/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8097", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "engine workers per batch (default: effective CPU quota)")
	concurrent := flag.Int("concurrent", 2, "batches executing at once")
	queue := flag.Int("queue", 256, "admitted requests waiting for a batch slot before 503")
	cacheEntries := flag.Int("cache", 4096, "result-cache entries (negative disables)")
	maxScenarios := flag.Int("max-scenarios", 1024, "scenarios per request")
	maxCycles := flag.Uint64("max-cycles", 50_000_000, "cycles per scenario")
	timeout := flag.Duration("timeout", 60*time.Second, "default per-request deadline")
	maxTimeout := flag.Duration("max-timeout", 10*time.Minute, "maximum per-request deadline")
	drainGrace := flag.Duration("drain-grace", 15*time.Second, "time in-flight batches may finish after SIGTERM before cancellation")
	degradeAt := flag.Float64("degrade-at", 0.75, "queue-pressure fraction that enters degraded mode (negative disables)")
	retries := flag.Int("retries", 2, "execution attempts per scenario for transient failures (1 disables retry)")
	backend := flag.String("backend", "", "default execution backend for requests that don't pick one: event, compiled, lanes or auto")
	accuracy := flag.String("accuracy", "", "default accuracy class for requests that don't pick one: cycle (exact) or transaction (calibrated estimate; part of the cache key)")
	degradeEstimate := flag.Bool("degrade-estimate", false, "under queue pressure, downgrade eligible cycle-accuracy scenarios to the transaction-level estimate instead of just shedding options (approximate answers; opt-in)")
	stateDir := flag.String("state-dir", "", "directory for the durable job journal, disk result cache and scenario checkpoints; a daemon restarted on the same directory recovers interrupted jobs (empty: in-memory only)")
	checkpointEvery := flag.Uint64("checkpoint-every", 250_000, "minimum cycles between persisted scenario checkpoints when -state-dir is set (0 disables checkpointing)")
	flag.Parse()

	logger := log.New(os.Stderr, "ahbserved: ", log.LstdFlags)
	if !exec.ValidName(*backend) {
		logger.Fatalf("unknown -backend %q (want event, compiled, lanes or auto)", *backend)
	}
	if !engine.ValidAccuracy(*accuracy) {
		logger.Fatalf("unknown -accuracy %q (want cycle or transaction)", *accuracy)
	}
	srv, err := serve.Open(serve.Config{
		Workers:         *workers,
		MaxConcurrent:   *concurrent,
		MaxQueue:        *queue,
		CacheEntries:    *cacheEntries,
		MaxScenarios:    *maxScenarios,
		MaxCycles:       *maxCycles,
		DefaultTimeout:  *timeout,
		MaxTimeout:      *maxTimeout,
		DegradeAt:       *degradeAt,
		Retry:           engine.RetryPolicy{MaxAttempts: *retries},
		DefaultBackend:  *backend,
		DefaultAccuracy: *accuracy,
		DegradeEstimate: *degradeEstimate,
		StateDir:        *stateDir,
		CheckpointEvery: *checkpointEvery,
	})
	if err != nil {
		logger.Fatalf("opening state: %v", err)
	}
	if *stateDir != "" {
		logger.Printf("durable state in %s (checkpoint every %d cycles)", *stateDir, *checkpointEvery)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Printf("listening on %s (workers=%d concurrent=%d queue=%d)", *addr, *workers, *concurrent, *queue)

	select {
	case err := <-errc:
		logger.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	// Graceful drain: stop admitting, let in-flight batches finish for
	// the grace period, cancel stragglers, then close the listener and
	// flush the final metrics snapshot.
	logger.Printf("signal received; draining (grace %s)", *drainGrace)
	srv.Drain(*drainGrace)
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("shutdown: %v", err)
	}
	<-errc // ListenAndServe has returned ErrServerClosed
	logger.Printf("drained; final metrics: %s", srv.MetricsJSON())
	fmt.Fprintln(os.Stderr, "ahbserved: bye")
}
