// Command ahbsim runs the paper's AMBA AHB testbench — two masters, a
// simple default master and three slaves at 100 MHz — with system-level
// power analysis attached, and prints the per-instruction energy table
// (the paper's Table 1) and the sub-block power contribution (Fig. 6).
// With -trace it additionally records a streaming power-trace and writes
// it as CSV, JSON lines or analog VCD (chosen by file extension). Ctrl-C
// cancels the run mid-simulation.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"

	"ahbpower/internal/core"
	"ahbpower/internal/engine"
	"ahbpower/internal/exec"
	"ahbpower/internal/experiments"
	"ahbpower/internal/fault"
	"ahbpower/internal/metrics"
	"ahbpower/internal/power"
	"ahbpower/internal/topo"
)

func main() {
	cycles := flag.Uint64("cycles", 5000, "bus cycles to simulate (paper: 5000 = 50 us at 100 MHz)")
	style := flag.String("style", "global", "power model style: global, local or private")
	masters := flag.Int("masters", 2, "number of active masters")
	slaves := flag.Int("slaves", 3, "number of slaves")
	waits := flag.Int("waits", 0, "slave wait states")
	modelFile := flag.String("models", "", "load characterized macromodels from a JSON file (see examples/characterize)")
	traceFile := flag.String("trace", "", "record a power trace to this file (.csv, .jsonl or .vcd by extension)")
	window := flag.Float64("window", 100e-9, "power-trace window duration in seconds")
	faultsFile := flag.String("faults", "", "inject faults from this JSON plan file (see internal/fault)")
	exp := flag.String("exp", "", "run a named experiment instead: table1, figures, overhead, validation, granularity, styles, parametric, burst, pattern, dpm, cosim, impl, buses, topology, all")
	backend := flag.String("backend", "", "execution backend: event, compiled, lanes or auto (default: engine chooses; results are identical either way)")
	accuracy := flag.String("accuracy", "", "accuracy class: cycle (exact, default) or transaction (calibrated transaction-level estimate, ~10x faster; falls back to cycle for features the estimator cannot honor)")
	topoFile := flag.String("topology", "", "build the system from this declarative topology JSON file (see examples/topologies; overrides -masters/-slaves/-waits)")
	validateOnly := flag.Bool("validate-only", false, "with -topology: run the ERC compliance pass, print the findings and exit without simulating")
	flag.Parse()

	if !exec.ValidName(*backend) {
		fatal(fmt.Errorf("unknown -backend %q (want event, compiled, lanes or auto)", *backend))
	}
	if !engine.ValidAccuracy(*accuracy) {
		fatal(fmt.Errorf("unknown -accuracy %q (want cycle or transaction)", *accuracy))
	}

	var topol *topo.Topology
	if *topoFile != "" {
		t, err := topo.LoadFile(*topoFile)
		if err != nil {
			fatal(err)
		}
		topol = t
	}
	if *validateOnly {
		if topol == nil {
			fatal(errors.New("-validate-only requires -topology"))
		}
		errs, warns := topo.Validate(*topol)
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "error   %-26s %s: %s\n", e.Code, e.Path, e.Detail)
		}
		for _, wn := range warns {
			fmt.Fprintf(os.Stderr, "warning %-26s %s: %s\n", wn.Code, wn.Path, wn.Detail)
		}
		if len(errs) > 0 {
			fmt.Fprintf(os.Stderr, "ahbsim: %s: %d ERC errors\n", *topoFile, len(errs))
			os.Exit(1)
		}
		fmt.Printf("ahbsim: %s: ERC clean (%d warnings)\n", *topoFile, len(warns))
		return
	}

	if *exp != "" {
		if err := runExperiments(*exp, *cycles); err != nil {
			fatal(err)
		}
		return
	}

	st := core.StyleGlobal
	switch *style {
	case "global":
	case "local":
		st = core.StyleLocal
	case "private":
		st = core.StylePrivate
	default:
		fmt.Fprintf(os.Stderr, "unknown style %q\n", *style)
		os.Exit(2)
	}

	cfg := core.PaperSystem()
	cfg.NumActiveMasters = *masters
	cfg.NumSlaves = *slaves
	cfg.SlaveWaits = *waits
	acfg := core.AnalyzerConfig{Style: st}
	if *modelFile != "" {
		f, err := os.Open(*modelFile)
		if err != nil {
			fatal(err)
		}
		models, err := power.LoadModels(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		acfg.Models = models
	}
	var trace *metrics.Trace
	if *traceFile != "" {
		var err error
		trace, err = metrics.NewTrace(metrics.TraceConfig{
			Window:         *window,
			PerBlock:       true,
			PerInstruction: true,
		})
		if err != nil {
			fatal(err)
		}
		acfg.Trace = trace
	}

	var plan *fault.Plan
	if *faultsFile != "" {
		var err error
		if plan, err = fault.LoadFile(*faultsFile); err != nil {
			fatal(err)
		}
	}

	// Ctrl-C cancels the run mid-simulation; the trace keeps what it saw.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// A one-worker runner (rather than RunOne) so fault plans with
	// fail_first get the engine's retry policy, as they would in a sweep.
	runner := engine.NewRunner(1)
	runner.Retry = engine.DefaultRetryPolicy()
	res := runner.Run(ctx, []engine.Scenario{{
		Name:     "ahbsim",
		System:   cfg,
		Topo:     topol,
		Analyzer: acfg,
		Cycles:   *cycles,
		Faults:   plan,
		Backend:  *backend,
		Accuracy: *accuracy,
	}})[0]
	if errors.Is(res.Err, context.Canceled) {
		// Interrupted mid-run: keep the partial trace, skip the report.
		fmt.Fprintln(os.Stderr, "ahbsim: interrupted")
		if trace != nil {
			if err := writeTrace(trace, *traceFile); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "trace (partial): %s -> %s\n", trace.Stats().Format(), *traceFile)
		}
		os.Exit(1)
	}
	if res.Err != nil {
		fatal(res.Err)
	}
	if res.BackendFallback != "" {
		fmt.Fprintf(os.Stderr, "backend: fell back: %s\n", res.BackendFallback)
	}
	if res.Accuracy == engine.AccuracyTransaction {
		fmt.Fprintln(os.Stderr, "accuracy: transaction-level estimate (calibrated; see tools/tlmcheck for the measured error budget)")
	}
	if len(res.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "protocol violations: %d (first: %v)\n", len(res.Violations), res.Violations[0])
	}
	if res.Faults != nil {
		fmt.Printf("injected faults: errors=%d retries=%d splits=%d wait_states=%d addr_flips=%d data_flips=%d\n",
			res.Faults.Errors, res.Faults.Retries, res.Faults.Splits,
			res.Faults.WaitStates, res.Faults.AddrFlips, res.Faults.DataFlips)
	}
	if res.Attempts > 1 {
		fmt.Printf("attempts: %d (transient failures retried)\n", res.Attempts)
	}

	r := res.Report
	fmt.Println("== Instruction energy analysis (paper Table 1) ==")
	fmt.Print(r.FormatTable())
	fmt.Println()
	fmt.Println("== AHB sub-block power contribution (paper Fig. 6) ==")
	fmt.Print(r.FormatBreakdown())
	fmt.Println()
	fmt.Println(r.FormatSummary())
	fmt.Println(res.Metrics.Format())

	if trace != nil {
		if err := writeTrace(trace, *traceFile); err != nil {
			fatal(err)
		}
		fmt.Printf("trace: %s -> %s\n", trace.Stats().Format(), *traceFile)
	}
}

// writeTrace exports the trace in the format implied by the file
// extension: .vcd analog VCD, .jsonl/.ndjson JSON lines, otherwise CSV.
func writeTrace(trace *metrics.Trace, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	switch filepath.Ext(path) {
	case ".vcd":
		err = trace.WriteVCD(f)
	case ".jsonl", ".ndjson":
		err = trace.WriteJSONL(f)
	default:
		err = trace.WriteCSV(f)
	}
	// Close exactly once, keeping the first error: a close failure after a
	// clean write still means the trace on disk may be incomplete.
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ahbsim:", err)
	os.Exit(1)
}

// runExperiments executes one named experiment (or all) and prints its
// paper-style text output.
func runExperiments(name string, cycles uint64) error {
	type runner struct {
		name string
		fn   func() (string, error)
	}
	runners := []runner{
		{"table1", func() (string, error) {
			r, err := experiments.Table1(cycles)
			if err != nil {
				return "", err
			}
			return r.Text, nil
		}},
		{"figures", func() (string, error) {
			r, err := experiments.Figures(cycles, 100e-9)
			if err != nil {
				return "", err
			}
			return r.Text, nil
		}},
		{"overhead", func() (string, error) {
			r, err := experiments.Overhead(cycles)
			if err != nil {
				return "", err
			}
			return r.Text, nil
		}},
		{"validation", func() (string, error) {
			r, err := experiments.Validation(3000, 42)
			if err != nil {
				return "", err
			}
			return r.Text, nil
		}},
		{"granularity", func() (string, error) {
			r, err := experiments.Granularity(cycles)
			if err != nil {
				return "", err
			}
			return r.Text, nil
		}},
		{"styles", func() (string, error) {
			r, err := experiments.ModelStyles(cycles)
			if err != nil {
				return "", err
			}
			return r.Text, nil
		}},
		{"parametric", func() (string, error) {
			r, err := experiments.Parametric()
			if err != nil {
				return "", err
			}
			return r.Text, nil
		}},
		{"burst", func() (string, error) {
			r, err := experiments.BurstAblation(cycles)
			if err != nil {
				return "", err
			}
			return r.Text, nil
		}},
		{"pattern", func() (string, error) {
			r, err := experiments.PatternAblation(cycles)
			if err != nil {
				return "", err
			}
			return r.Text, nil
		}},
		{"dpm", func() (string, error) {
			r, err := experiments.DPMSweep(cycles, 5e-12)
			if err != nil {
				return "", err
			}
			return r.Text, nil
		}},
		{"cosim", func() (string, error) {
			r, err := experiments.CoSimDecoder(cycles)
			if err != nil {
				return "", err
			}
			return r.Text, nil
		}},
		{"impl", func() (string, error) {
			r, err := experiments.ImplAblation(8, 3000, 11)
			if err != nil {
				return "", err
			}
			return r.Text, nil
		}},
		{"buses", func() (string, error) {
			r, err := experiments.CompareBuses(cycles)
			if err != nil {
				return "", err
			}
			return r.Text, nil
		}},
		{"topology", func() (string, error) {
			r, err := experiments.TopologyFamilies(cycles)
			if err != nil {
				return "", err
			}
			return r.Text, nil
		}},
	}
	ran := false
	for _, r := range runners {
		if name != "all" && name != r.name {
			continue
		}
		ran = true
		text, err := r.fn()
		if err != nil {
			return fmt.Errorf("%s: %w", r.name, err)
		}
		fmt.Printf("== %s ==\n%s\n", r.name, text)
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}
