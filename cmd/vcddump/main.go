// Command vcddump runs the paper's testbench for a configurable number of
// cycles and writes the main AHB signals to a VCD file for inspection in
// any waveform viewer. With -settled, only the final value of each signal
// per timestep is dumped (delta-cycle glitches are suppressed), matching
// what a settled-cycle observer sees.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"ahbpower/internal/core"
	"ahbpower/internal/vcd"
)

func main() {
	cycles := flag.Uint64("cycles", 500, "bus cycles to simulate")
	out := flag.String("o", "ahb.vcd", "output VCD file")
	settled := flag.Bool("settled", false, "dump only settled end-of-timestep values (suppress delta-cycle glitches)")
	flag.Parse()

	sys, err := core.NewSystem(core.PaperSystem())
	if err != nil {
		fatal(err)
	}
	if err := sys.LoadPaperWorkload(*cycles); err != nil {
		fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	bw := bufio.NewWriter(f)

	var w *vcd.Writer
	if *settled {
		w = vcd.NewSettledWriter(bw, sys.K)
	} else {
		w = vcd.NewWriter(bw, sys.K)
	}
	bus := sys.Bus
	w.AddBool("ahb.hclk", bus.Clk.Signal())
	w.AddU8("ahb.htrans", bus.HTrans, 2)
	w.AddU32("ahb.haddr", bus.HAddr, 32)
	w.AddBool("ahb.hwrite", bus.HWrite)
	w.AddU32("ahb.hwdata", bus.HWdata, 32)
	w.AddU32("ahb.hrdata", bus.HRdata, 32)
	w.AddBool("ahb.hready", bus.HReady)
	w.AddU8("ahb.hresp", bus.HResp, 2)
	w.AddU8("ahb.hmaster", bus.HMaster, 4)
	for m := range bus.M {
		w.AddBool(fmt.Sprintf("ahb.m%d.hbusreq", m), bus.M[m].BusReq)
		w.AddBool(fmt.Sprintf("ahb.m%d.hgrant", m), bus.Grant[m])
	}
	for s := range bus.Sel {
		w.AddBool(fmt.Sprintf("ahb.s%d.hsel", s), bus.Sel[s])
	}
	if err := w.Start(); err != nil {
		fatal(err)
	}
	if err := sys.Run(*cycles); err != nil {
		fatal(err)
	}
	// Flush the VCD writer (which drains the bufio layer) and close the
	// file, surfacing errors from either — a full disk must not exit 0.
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d cycles)\n", *out, *cycles)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vcddump:", err)
	os.Exit(1)
}
