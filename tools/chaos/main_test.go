package main

import (
	"io"
	"testing"
	"time"

	"ahbpower/internal/engine"
	"ahbpower/internal/fault"
)

// TestSoakSmallSweepClean runs a compressed soak — fewer seeds, shorter
// runs — and demands a perfectly clean report: every invariant the full
// CI soak checks must already hold at this scale.
func TestSoakSmallSweepClean(t *testing.T) {
	cfg := config{seeds: 6, seed: 100, cycles: 600, timeout: 30 * time.Second}
	rep := runSoak(cfg, io.Discard)
	if len(rep.Violations) != 0 {
		t.Fatalf("soak violations: %v", rep.Violations)
	}
	if !rep.ReplayOK || !rep.BackendsOK || !rep.LanesOK || !rep.ControlsOK {
		t.Errorf("replay_ok=%v backends_ok=%v lanes_ok=%v controls_ok=%v, want all true",
			rep.ReplayOK, rep.BackendsOK, rep.LanesOK, rep.ControlsOK)
	}
	if rep.Scenarios != 6 {
		t.Errorf("scenarios=%d, want 6", rep.Scenarios)
	}
}

// TestFingerprintDiscriminates guards the replay check itself: the
// fingerprint must be order-stable yet change when an outcome changes.
func TestFingerprintDiscriminates(t *testing.T) {
	res := []engine.Result{{Scenario: engine.Scenario{Name: "a"}, Beats: 10, Attempts: 1}}
	base := string(fingerprint(res))
	if base != string(fingerprint(res)) {
		t.Fatal("fingerprint not deterministic")
	}
	res[0].Beats = 11
	if base == string(fingerprint(res)) {
		t.Error("fingerprint blind to a beat-count change")
	}
}

// TestCheckResultFlagsFailures exercises the violation paths directly.
func TestCheckResultFlagsFailures(t *testing.T) {
	plan := &fault.Plan{Seed: 1}
	res := &engine.Result{Scenario: engine.Scenario{Name: "x"},
		Err: &engine.ScenarioError{Name: "x", Class: engine.ClassPermanent, Attempts: 1,
			Err: io.ErrUnexpectedEOF}}
	if v := checkResult(res, plan); len(v) != 1 {
		t.Errorf("failed scenario must yield one violation, got %v", v)
	}
	res = &engine.Result{Scenario: engine.Scenario{Name: "x"}, Attempts: 1}
	if v := checkResult(res, plan); len(v) == 0 {
		t.Error("successful result with no report must flag missing conservation evidence")
	}
}
