package main

// The kill-recovery phase: the harness boots a real ahbserved binary on
// a durable state dir, SIGKILLs it in the middle of an async batch —
// after at least one scenario checkpoint hit the disk — restarts it on
// the same dir, and asserts that the batch completes under its original
// job id with result bytes identical to an uninterrupted control daemon.
// That is the end-to-end claim of the durability layer: a hard crash
// loses no accepted job and never changes a single result byte.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"syscall"
	"time"

	"ahbpower/internal/fault"
)

// crashPhase runs the control daemon to completion, then the kill →
// restart → recover sequence, and compares the two outcomes.
func crashPhase(cfg config, logw io.Writer) []string {
	var v []string
	base := "http://" + cfg.crashAddr
	root, err := os.MkdirTemp("", "chaos-crash-*")
	if err != nil {
		return []string{fmt.Sprintf("crash: temp dir: %v", err)}
	}
	defer os.RemoveAll(root)
	client := &http.Client{Timeout: 30 * time.Second}
	body := crashBatchBody(cfg)

	// Control: the same batch on an undisturbed daemon.
	ctl, err := startDaemon(cfg, filepath.Join(root, "control"), logw)
	if err != nil {
		return []string{fmt.Sprintf("crash: control daemon: %v", err)}
	}
	ctlID, err := postAsync(client, base, body)
	if err != nil {
		stopDaemon(ctl)
		return []string{fmt.Sprintf("crash: control submit: %v", err)}
	}
	ctlStatus, ctlResults, err := pollDaemonJob(client, base, ctlID, 5*time.Minute)
	stopDaemon(ctl)
	if err != nil || ctlStatus != "done" {
		return []string{fmt.Sprintf("crash: control job %s ended %q (err=%v)", ctlID, ctlStatus, err)}
	}

	// Victim: same batch, killed mid-run once a checkpoint is on disk.
	stateDir := filepath.Join(root, "victim")
	victim, err := startDaemon(cfg, stateDir, logw)
	if err != nil {
		return []string{fmt.Sprintf("crash: victim daemon: %v", err)}
	}
	jobID, err := postAsync(client, base, body)
	if err != nil {
		stopDaemon(victim)
		return []string{fmt.Sprintf("crash: victim submit: %v", err)}
	}
	deadline := time.Now().Add(time.Minute)
	for {
		saved, err := metricValue(client, base, "checkpoints_saved")
		if err == nil && saved >= 1 {
			break
		}
		if time.Now().After(deadline) {
			stopDaemon(victim)
			return []string{fmt.Sprintf("crash: no checkpoint persisted within a minute (last err=%v)", err)}
		}
		time.Sleep(20 * time.Millisecond)
	}
	victim.Process.Kill() // SIGKILL: no drain, no journal retirement, no goodbye
	victim.Wait()
	fmt.Fprintf(logw, "chaos: SIGKILLed daemon mid-batch (job %s), restarting on %s\n", jobID, stateDir)

	// Recovery: a restart on the same state dir must finish the job under
	// its original id, byte-identical to the control run.
	revived, err := startDaemon(cfg, stateDir, logw)
	if err != nil {
		return []string{fmt.Sprintf("crash: restart daemon: %v", err)}
	}
	defer stopDaemon(revived)
	if rec, err := metricValue(client, base, "jobs_recovered"); err != nil || rec < 1 {
		v = append(v, fmt.Sprintf("crash: restarted daemon recovered %v jobs, want >=1 (err=%v)", rec, err))
	}
	status, results, err := pollDaemonJob(client, base, jobID, 10*time.Minute)
	if err != nil {
		return append(v, fmt.Sprintf("crash: recovered job %s lost: %v", jobID, err))
	}
	if status != "done" {
		return append(v, fmt.Sprintf("crash: recovered job %s ended %q, want done", jobID, status))
	}
	if !sameResults(ctlResults, results) {
		v = append(v, "crash: recovered batch differs from the uninterrupted control run")
	}
	resumed, _ := metricValue(client, base, "scenarios_resumed")
	fmt.Fprintf(logw, "chaos: job %s recovered (%0.f scenarios resumed from checkpoints)\n", jobID, resumed)
	return v
}

// crashBatchBody builds the kill-recovery batch: a few long faulted
// scenarios, async so the job id survives the crash.
func crashBatchBody(cfg config) []byte {
	var scens []map[string]any
	for i := 0; i < 3; i++ {
		seed := cfg.seed + int64(i)
		scens = append(scens, map[string]any{
			"name":   fmt.Sprintf("crash-%d", seed),
			"cycles": cfg.crashCycles,
			"faults": fault.RandomPlan(seed),
		})
	}
	b, _ := json.Marshal(map[string]any{"scenarios": scens, "async": true, "timeout_ms": 600_000})
	return b
}

// startDaemon boots one ahbserved on the given state dir and waits for
// /healthz.
func startDaemon(cfg config, stateDir string, logw io.Writer) (*exec.Cmd, error) {
	cmd := exec.Command(cfg.crashBin,
		"-addr", cfg.crashAddr,
		"-state-dir", stateDir,
		"-checkpoint-every", strconv.FormatUint(cfg.crashEvery, 10),
		"-drain-grace", "5s")
	cmd.Stdout = logw
	cmd.Stderr = logw
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get("http://" + cfg.crashAddr + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd, nil
			}
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			return nil, fmt.Errorf("daemon on %s not healthy within 15s (last err=%v)", cfg.crashAddr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// stopDaemon shuts a daemon down the polite way, escalating to SIGKILL.
func stopDaemon(cmd *exec.Cmd) {
	cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		<-done
	}
}

// postAsync submits an async batch and returns the job id, retrying 503s
// and restart-window connection errors like postWithRetry.
func postAsync(client *http.Client, base string, body []byte) (string, error) {
	raw, err := postWithRetry(client, base+"/v1/run", body, 5, 2*time.Second)
	if err != nil {
		return "", err
	}
	var acc struct {
		JobID string `json:"job_id"`
	}
	if err := json.Unmarshal(raw, &acc); err != nil || acc.JobID == "" {
		return "", fmt.Errorf("no job id in %.200s", raw)
	}
	return acc.JobID, nil
}

// pollDaemonJob polls one async job to a terminal state, riding out the
// restart window (connection errors and 404-free gaps do not abort the
// poll — only the deadline does).
func pollDaemonJob(client *http.Client, base, id string, wait time.Duration) (string, []json.RawMessage, error) {
	deadline := time.Now().Add(wait)
	var lastErr error
	for {
		if time.Now().After(deadline) {
			return "", nil, fmt.Errorf("job %s not terminal within %s (last err=%v)", id, wait, lastErr)
		}
		time.Sleep(100 * time.Millisecond)
		resp, err := client.Get(base + "/v1/jobs/" + id)
		if err != nil {
			lastErr = err
			continue
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			lastErr = fmt.Errorf("status %d (err=%v)", resp.StatusCode, err)
			continue
		}
		var st struct {
			Status   string `json:"status"`
			Response *struct {
				Results []json.RawMessage `json:"results"`
			} `json:"response"`
		}
		if err := json.Unmarshal(raw, &st); err != nil {
			lastErr = err
			continue
		}
		if st.Status == "done" || st.Status == "cancelled" {
			var results []json.RawMessage
			if st.Response != nil {
				results = st.Response.Results
			}
			return st.Status, results, nil
		}
	}
}

// metricValue reads one numeric counter from /metrics.
func metricValue(client *http.Client, base, name string) (float64, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var m map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return 0, err
	}
	raw, ok := m[name]
	if !ok {
		return 0, fmt.Errorf("metric %q not exported", name)
	}
	var v float64
	if err := json.Unmarshal(raw, &v); err != nil {
		return 0, err
	}
	return v, nil
}
