// Command chaos is the fault-injection soak harness: it sweeps many
// randomized-but-seeded fault plans (fault.RandomPlan) through the batch
// engine, asserting on every run the invariants that must survive any
// injected fault — energy conservation, no deadline hangs, byte-identical
// replay — plus control scenarios proving the engine's failure taxonomy:
// a permanent failure surfaces as a typed per-scenario error without
// poisoning its batch, and a transient injected failure succeeds after a
// retry. With -addr it additionally soaks a live ahbserved daemon over
// HTTP and asserts the same replay identity through the wire format.
// With -crash-bin it runs the kill-recovery phase: boot an ahbserved on
// a durable state dir, SIGKILL it mid-batch, restart it on the same dir
// and assert every job completes byte-identical to an uninterrupted
// control daemon (see crash.go).
//
// Usage:
//
//	chaos -seeds 64 -seed 1 -cycles 1500 -timeout 30s \
//	      -addr http://localhost:8098 -o chaos_report.json
//	chaos -seeds 4 -crash-bin ./ahbserved -crash-addr 127.0.0.1:8099
//
// Exit status is 1 when any invariant was violated, 0 on a clean soak.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ahbpower/internal/amba/ahb"
	"ahbpower/internal/core"
	"ahbpower/internal/engine"
	"ahbpower/internal/fault"
)

type config struct {
	seeds   int
	seed    int64
	cycles  uint64
	workers int
	timeout time.Duration
	addr    string
	verbose bool

	// Crash-recovery phase (enabled by crashBin): the harness boots its
	// own ahbserved on a state dir, SIGKILLs it mid-batch, restarts it on
	// the same dir and asserts every job completes byte-identical to an
	// uninterrupted control daemon.
	crashBin    string
	crashAddr   string
	crashCycles uint64
	crashEvery  uint64
}

// soakReport is the machine-readable outcome written by -o.
type soakReport struct {
	Seeds       int      `json:"seeds"`
	Cycles      uint64   `json:"cycles"`
	Scenarios   int      `json:"scenarios"`
	Retried     int      `json:"retried"`
	FaultEvents uint64   `json:"fault_events"`
	ReplayOK    bool     `json:"replay_ok"`
	BackendsOK  bool     `json:"backends_ok"`
	LanesOK     bool     `json:"lanes_ok"`
	TLMOK       bool     `json:"tlm_ok"`
	ControlsOK  bool     `json:"controls_ok"`
	DaemonOK    bool     `json:"daemon_ok,omitempty"`
	CrashOK     bool     `json:"crash_ok,omitempty"`
	Violations  []string `json:"violations"`
	ElapsedMs   float64  `json:"elapsed_ms"`
}

func main() {
	var cfg config
	flag.IntVar(&cfg.seeds, "seeds", 64, "number of randomized fault plans to soak")
	flag.Int64Var(&cfg.seed, "seed", 1, "base seed; plan i uses seed+i")
	flag.Uint64Var(&cfg.cycles, "cycles", 1500, "bus cycles per scenario")
	flag.IntVar(&cfg.workers, "workers", 0, "worker pool size (0 = GOMAXPROCS)")
	flag.DurationVar(&cfg.timeout, "timeout", 30*time.Second, "per-scenario deadline; an expiry is a hang and a violation")
	flag.StringVar(&cfg.addr, "addr", "", "ahbserved base URL; when set, also soak the daemon over HTTP")
	flag.StringVar(&cfg.crashBin, "crash-bin", "", "path to an ahbserved binary; when set, run the kill-recovery phase (boot, SIGKILL mid-batch, restart, assert byte-identical completion)")
	flag.StringVar(&cfg.crashAddr, "crash-addr", "127.0.0.1:8099", "listen address the kill-recovery daemons bind")
	flag.Uint64Var(&cfg.crashCycles, "crash-cycles", 4_000_000, "cycles per scenario in the kill-recovery batch (long enough to die mid-run)")
	flag.Uint64Var(&cfg.crashEvery, "crash-every", 50_000, "checkpoint interval the kill-recovery daemons run with")
	flag.BoolVar(&cfg.verbose, "v", false, "log each scenario outcome")
	jsonOut := flag.String("o", "", "write the JSON report to this file")
	flag.Parse()

	rep := runSoak(cfg, os.Stdout)
	fmt.Printf("chaos: %d scenarios over %d seeds, %d retried, %d fault events, replay_ok=%v backends_ok=%v lanes_ok=%v tlm_ok=%v controls_ok=%v",
		rep.Scenarios, rep.Seeds, rep.Retried, rep.FaultEvents, rep.ReplayOK, rep.BackendsOK, rep.LanesOK, rep.TLMOK, rep.ControlsOK)
	if cfg.addr != "" {
		fmt.Printf(" daemon_ok=%v", rep.DaemonOK)
	}
	if cfg.crashBin != "" {
		fmt.Printf(" crash_ok=%v", rep.CrashOK)
	}
	fmt.Printf(" (%.1fs)\n", rep.ElapsedMs/1000)
	for _, v := range rep.Violations {
		fmt.Println("VIOLATION:", v)
	}
	if *jsonOut != "" {
		b, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(*jsonOut, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "chaos:", err)
			os.Exit(1)
		}
	}
	if len(rep.Violations) > 0 {
		fmt.Printf("chaos: FAILED with %d violations\n", len(rep.Violations))
		os.Exit(1)
	}
	fmt.Println("chaos: PASSED")
}

// runSoak executes the whole soak — randomized sweep, replay, control
// scenarios, optional daemon phase — and folds everything into a report.
func runSoak(cfg config, logw io.Writer) soakReport {
	if cfg.workers < 1 {
		cfg.workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	rep := soakReport{Seeds: cfg.seeds, Cycles: cfg.cycles, Violations: []string{}}

	scens, plans := buildScenarios(cfg)
	rep.Scenarios = len(scens)
	runner := engine.NewRunner(cfg.workers)
	runner.Retry = engine.DefaultRetryPolicy()
	results := runner.Run(context.Background(), scens)
	for i := range results {
		res := &results[i]
		rep.Violations = append(rep.Violations, checkResult(res, plans[i])...)
		if res.Err == nil && res.Attempts > 1 {
			rep.Retried++
		}
		if res.Faults != nil {
			rep.FaultEvents += res.Faults.Total()
		}
		if cfg.verbose {
			fmt.Fprintf(logw, "chaos: %s attempts=%d faults=%d err=%v\n",
				res.Scenario.Name, res.Attempts, faultTotal(res), res.Err)
		}
	}

	// Replay: the identical batch must reproduce byte-identical outcomes.
	replay := engine.NewRunner(cfg.workers)
	replay.Retry = engine.DefaultRetryPolicy()
	again := replay.Run(context.Background(), buildScenariosOnly(cfg))
	a, b := fingerprint(results), fingerprint(again)
	rep.ReplayOK = bytes.Equal(a, b)
	if !rep.ReplayOK {
		rep.Violations = append(rep.Violations, "replay fingerprint differs between identical batches")
	}

	// Backend mix: the same sweep with execution backends pinned per
	// scenario must be indistinguishable from the all-event baseline.
	mix := backendMixPhase(cfg, a)
	rep.BackendsOK = len(mix) == 0
	rep.Violations = append(rep.Violations, mix...)

	// Lane mix: a fault-free lane-eligible sweep packed into bit-parallel
	// lanes must be indistinguishable from the same sweep run all-event.
	lm := laneMixPhase(cfg)
	rep.LanesOK = len(lm) == 0
	rep.Violations = append(rep.Violations, lm...)

	// Transaction-level mix: estimates must be deterministic and
	// conservation-clean, and faulted scenarios requested at transaction
	// accuracy must conservatively fall back to the exact path.
	tm := tlmPhase(cfg, a)
	rep.TLMOK = len(tm) == 0
	rep.Violations = append(rep.Violations, tm...)

	ctl := controlChecks(cfg)
	rep.ControlsOK = len(ctl) == 0
	rep.Violations = append(rep.Violations, ctl...)

	if cfg.addr != "" {
		dm := daemonPhase(cfg)
		rep.DaemonOK = len(dm) == 0
		rep.Violations = append(rep.Violations, dm...)
	}
	if cfg.crashBin != "" {
		cr := crashPhase(cfg, logw)
		rep.CrashOK = len(cr) == 0
		rep.Violations = append(rep.Violations, cr...)
	}
	rep.ElapsedMs = float64(time.Since(start)) / float64(time.Millisecond)
	return rep
}

func faultTotal(res *engine.Result) uint64 {
	if res.Faults == nil {
		return 0
	}
	return res.Faults.Total()
}

// buildScenarios derives one scenario per seed: a seed-determined random
// fault plan on the paper system, with the arbitration policy varied by
// seed so all three arbiters face injected faults.
func buildScenarios(cfg config) ([]engine.Scenario, []*fault.Plan) {
	scens := make([]engine.Scenario, cfg.seeds)
	plans := make([]*fault.Plan, cfg.seeds)
	for i := range scens {
		seed := cfg.seed + int64(i)
		sys := core.PaperSystem()
		sys.Policy = policyFor(seed)
		plans[i] = fault.RandomPlan(seed)
		scens[i] = engine.Scenario{
			Name:    fmt.Sprintf("chaos-%d", seed),
			System:  sys,
			Cycles:  cfg.cycles,
			Faults:  plans[i],
			Timeout: cfg.timeout,
		}
	}
	return scens, plans
}

func buildScenariosOnly(cfg config) []engine.Scenario {
	s, _ := buildScenarios(cfg)
	return s
}

// policyFor rotates the arbitration policy across seeds.
func policyFor(seed int64) ahb.ArbPolicy {
	switch seed % 3 {
	case 1:
		return ahb.PolicyFixed
	case 2:
		return ahb.PolicyRoundRobin
	}
	return ahb.PolicySticky
}

// checkResult applies the per-run invariants: the scenario must complete
// (no hang, no unexpected failure), FailFirst plans must show exactly the
// expected attempt count, the protocol monitor must stay clean, and both
// energy decompositions must balance against the total.
func checkResult(res *engine.Result, plan *fault.Plan) []string {
	var v []string
	name := res.Scenario.Name
	if res.Err != nil {
		if engine.Classify(res.Err) == engine.ClassTimeout {
			v = append(v, fmt.Sprintf("%s: hang — per-scenario deadline expired: %v", name, res.Err))
		} else {
			v = append(v, fmt.Sprintf("%s: unexpected failure: %v", name, res.Err))
		}
		return v
	}
	want := 1 + plan.FailFirst
	if res.Attempts != want {
		v = append(v, fmt.Sprintf("%s: attempts=%d, want %d (fail_first=%d)", name, res.Attempts, want, plan.FailFirst))
	}
	// Injected faults (flipped addresses, forced responses) are supposed to
	// trip the protocol monitor — those show up in the replay fingerprint
	// instead. Violations are only a finding when nothing was injected.
	if !plan.Active() && len(res.Violations) > 0 {
		v = append(v, fmt.Sprintf("%s: %d protocol violations on a fault-free run (first: %v)",
			name, len(res.Violations), res.Violations[0]))
	}
	if plan.Active() && res.Faults == nil {
		v = append(v, fmt.Sprintf("%s: active plan produced no injector stats", name))
	}
	if err := conservation(res.Report); err != nil {
		v = append(v, fmt.Sprintf("%s: %v", name, err))
	}
	return v
}

// conservation checks both energy decompositions of a report against its
// total: per-instruction table rows and per-block shares.
func conservation(rep *core.Report) error {
	if rep == nil {
		return errors.New("no report")
	}
	tol := 1e-9*rep.TotalEnergy + 1e-12
	var sum float64
	for _, row := range rep.Table {
		sum += row.TotalEnergy
	}
	if math.Abs(sum-rep.TotalEnergy) > tol {
		return fmt.Errorf("instruction table sums to %g J, total is %g J", sum, rep.TotalEnergy)
	}
	var bsum float64
	for _, e := range rep.BlockEnergy {
		bsum += e
	}
	if math.Abs(bsum-rep.TotalEnergy) > tol {
		return fmt.Errorf("block energies sum to %g J, total is %g J", bsum, rep.TotalEnergy)
	}
	return nil
}

// fingerprint folds a batch's observable outcome into canonical bytes:
// bit-exact energies, beat and event counters, injector stats and attempt
// counts. Two runs of the same batch must produce identical fingerprints.
func fingerprint(results []engine.Result) []byte {
	type fp struct {
		Name     string            `json:"name"`
		Energy   uint64            `json:"energy_bits"`
		Blocks   map[string]uint64 `json:"block_bits"`
		Beats    uint64            `json:"beats"`
		Counts   map[string]uint64 `json:"counts"`
		Faults   *fault.Stats      `json:"faults,omitempty"`
		Attempts int               `json:"attempts"`
		Protocol int               `json:"protocol_violations"`
		Err      string            `json:"err,omitempty"`
	}
	fps := make([]fp, len(results))
	for i := range results {
		res := &results[i]
		f := fp{Name: res.Scenario.Name, Beats: res.Beats, Counts: res.Counts,
			Faults: res.Faults, Attempts: res.Attempts, Protocol: len(res.Violations)}
		if res.Err != nil {
			f.Err = res.Err.Error()
		}
		if res.Report != nil {
			f.Energy = math.Float64bits(res.Report.TotalEnergy)
			f.Blocks = make(map[string]uint64, len(res.Report.BlockEnergy))
			for k, e := range res.Report.BlockEnergy {
				f.Blocks[k] = math.Float64bits(e)
			}
		}
		fps[i] = f
	}
	b, _ := json.Marshal(fps) // map keys marshal sorted, so this is canonical
	return b
}

// backendMixPhase re-runs the randomized faulted sweep with the
// execution backend pinned per scenario — alternating compiled and event
// — and asserts the batch fingerprint matches the all-event baseline:
// which kernel advances the cycles must be invisible in every observable
// outcome, even with faults injected and retries in play. The soak
// scenarios use no Setup hooks, DPM or delta-level instrumentation, so a
// compiled pin must actually run compiled; any fallback is a violation.
func backendMixPhase(cfg config, baseline []byte) []string {
	var v []string
	scens := buildScenariosOnly(cfg)
	wantCompiled := 0
	for i := range scens {
		if i%2 == 0 {
			scens[i].Backend = "compiled"
			wantCompiled++
		} else {
			scens[i].Backend = "event"
		}
	}
	runner := engine.NewRunner(cfg.workers)
	runner.Retry = engine.DefaultRetryPolicy()
	results := runner.Run(context.Background(), scens)
	ranCompiled := 0
	for i := range results {
		res := &results[i]
		if res.Backend == "compiled" {
			ranCompiled++
		}
		if res.BackendFallback != "" {
			v = append(v, fmt.Sprintf("%s: compiled pin fell back to event: %s",
				res.Scenario.Name, res.BackendFallback))
		}
	}
	if ranCompiled != wantCompiled {
		v = append(v, fmt.Sprintf("backend mix: %d scenarios ran compiled, want %d", ranCompiled, wantCompiled))
	}
	if !bytes.Equal(fingerprint(results), baseline) {
		v = append(v, "backend mix: fingerprint differs from the all-event sweep")
	}
	return v
}

// buildLaneScenarios derives the lane-mix sweep: fault-free scenarios on
// the paper system with the policy rotated by seed (so packs form per
// structural key) and the run length varied per lane (so lanes retire at
// different cycles within one pack). No timeout and no fault plan — both
// would make the scenarios lane-ineligible, and this phase asserts that
// every pinned scenario actually packs.
func buildLaneScenarios(cfg config, backend string) []engine.Scenario {
	scens := make([]engine.Scenario, cfg.seeds)
	for i := range scens {
		seed := cfg.seed + int64(i)
		sys := core.PaperSystem()
		sys.Policy = policyFor(seed)
		scens[i] = engine.Scenario{
			Name:    fmt.Sprintf("lane-mix-%d", seed),
			System:  sys,
			Cycles:  cfg.cycles + uint64(i%5)*64,
			Backend: backend,
		}
	}
	return scens
}

// laneMixPhase runs the lane-mix sweep twice — all-event, then pinned to
// the bit-parallel lane backend — and asserts the batch fingerprints are
// byte-identical: packing 64 scenarios into the bits of shared words must
// be invisible in every observable outcome. The scenarios are constructed
// lane-eligible, so any fallback to a per-scenario run is a violation, as
// is a batch that never reaches an occupancy above one lane.
func laneMixPhase(cfg config) []string {
	var v []string
	baseRunner := engine.NewRunner(cfg.workers)
	baseline := baseRunner.Run(context.Background(), buildLaneScenarios(cfg, "event"))
	laneRunner := engine.NewRunner(cfg.workers)
	packed := laneRunner.Run(context.Background(), buildLaneScenarios(cfg, "lanes"))
	maxOcc := 0
	for i := range packed {
		res := &packed[i]
		if res.Err != nil {
			v = append(v, fmt.Sprintf("%s: lane run failed: %v", res.Scenario.Name, res.Err))
			continue
		}
		if res.BackendFallback != "" {
			v = append(v, fmt.Sprintf("%s: lanes pin fell back to %s: %s",
				res.Scenario.Name, res.Backend, res.BackendFallback))
		} else if res.Backend != "lanes" {
			v = append(v, fmt.Sprintf("%s: ran backend %q, want lanes", res.Scenario.Name, res.Backend))
		}
		if res.Lanes > maxOcc {
			maxOcc = res.Lanes
		}
	}
	if len(packed) >= 6 && maxOcc < 2 {
		v = append(v, fmt.Sprintf("lane mix: max pack occupancy %d, expected multi-lane packs", maxOcc))
	}
	if !bytes.Equal(fingerprint(packed), fingerprint(baseline)) {
		v = append(v, "lane mix: packed fingerprint differs from the all-event sweep")
	}
	return v
}

// tlmPhase soaks the transaction-level estimator. A fault-free sweep
// requested at transaction accuracy must actually ride the estimator,
// keep both energy decompositions conservation-clean (estimates are
// approximate, but they must still be internally consistent) and replay
// byte-identically — the estimator is deterministic by contract, that is
// what makes its results cacheable. Then the randomized *faulted* sweep
// re-requested at transaction accuracy must conservatively fall back to
// cycle accuracy scenario by scenario, with the reason surfaced in
// BackendFallback, and reproduce the cycle-accurate baseline fingerprint
// bit for bit: a fallback that silently changed the numbers would be an
// accuracy bug wearing a safety feature's clothes.
func tlmPhase(cfg config, baseline []byte) []string {
	var v []string
	build := func() []engine.Scenario {
		scens := make([]engine.Scenario, cfg.seeds)
		for i := range scens {
			seed := cfg.seed + int64(i)
			sys := core.PaperSystem()
			sys.Policy = policyFor(seed)
			scens[i] = engine.Scenario{
				Name:     fmt.Sprintf("tlm-mix-%d", seed),
				System:   sys,
				Cycles:   cfg.cycles + uint64(i%5)*64,
				Accuracy: engine.AccuracyTransaction,
			}
		}
		return scens
	}
	estRunner := engine.NewRunner(cfg.workers)
	est := estRunner.Run(context.Background(), build())
	for i := range est {
		res := &est[i]
		if res.Err != nil {
			v = append(v, fmt.Sprintf("%s: estimate failed: %v", res.Scenario.Name, res.Err))
			continue
		}
		if res.Backend != "tlm" {
			v = append(v, fmt.Sprintf("%s: ran backend %q, want tlm (fallback: %s)",
				res.Scenario.Name, res.Backend, res.BackendFallback))
		}
		if res.Accuracy != engine.AccuracyTransaction {
			v = append(v, fmt.Sprintf("%s: result accuracy %q, want transaction", res.Scenario.Name, res.Accuracy))
		}
		if err := conservation(res.Report); err != nil {
			v = append(v, fmt.Sprintf("%s: %v", res.Scenario.Name, err))
		}
	}
	againRunner := engine.NewRunner(cfg.workers)
	again := againRunner.Run(context.Background(), build())
	if !bytes.Equal(fingerprint(est), fingerprint(again)) {
		v = append(v, "tlm mix: estimate replay fingerprint differs between identical sweeps")
	}

	scens := buildScenariosOnly(cfg)
	for i := range scens {
		scens[i].Accuracy = engine.AccuracyTransaction
	}
	fbRunner := engine.NewRunner(cfg.workers)
	fbRunner.Retry = engine.DefaultRetryPolicy()
	faulted := fbRunner.Run(context.Background(), scens)
	for i := range faulted {
		res := &faulted[i]
		if res.Err != nil {
			continue // the baseline fingerprint comparison covers error parity
		}
		if res.Backend == "tlm" || res.Accuracy != engine.AccuracyCycle {
			v = append(v, fmt.Sprintf("%s: faulted scenario did not fall back (backend=%q accuracy=%q)",
				res.Scenario.Name, res.Backend, res.Accuracy))
		}
		if !strings.HasPrefix(res.BackendFallback, "transaction accuracy:") {
			v = append(v, fmt.Sprintf("%s: fallback reason %q lacks the transaction-accuracy prefix",
				res.Scenario.Name, res.BackendFallback))
		}
	}
	if !bytes.Equal(fingerprint(faulted), baseline) {
		v = append(v, "tlm mix: faulted transaction sweep differs from the cycle-accurate baseline")
	}
	return v
}

// controlChecks proves the failure taxonomy on known-bad scenarios: a
// permanent failure comes back as a typed, classified error while its
// batch neighbors complete, and a transient injected failure is retried
// to success.
func controlChecks(cfg config) []string {
	var v []string
	good := func(name string, seed int64) engine.Scenario {
		return engine.Scenario{Name: name, System: core.PaperSystem(), Cycles: cfg.cycles, Timeout: cfg.timeout,
			Faults: &fault.Plan{Seed: seed}}
	}
	broken := core.PaperSystem()
	broken.NumActiveMasters = 0 // rejected by core.NewSystem: deterministic, permanent
	scens := []engine.Scenario{
		good("ctl-neighbor-a", 1),
		{Name: "ctl-permanent", System: broken, Cycles: cfg.cycles, Timeout: cfg.timeout},
		good("ctl-neighbor-b", 2),
		{Name: "ctl-transient", System: core.PaperSystem(), Cycles: cfg.cycles, Timeout: cfg.timeout,
			Faults: &fault.Plan{Seed: 3, FailFirst: 1}},
	}
	runner := engine.NewRunner(cfg.workers)
	runner.Retry = engine.DefaultRetryPolicy()
	results := runner.Run(context.Background(), scens)

	var se *engine.ScenarioError
	perm := results[1]
	switch {
	case perm.Err == nil:
		v = append(v, "control: permanent scenario did not fail")
	case !errors.As(perm.Err, &se):
		v = append(v, fmt.Sprintf("control: permanent failure not typed: %v", perm.Err))
	default:
		if se.Class != engine.ClassPermanent {
			v = append(v, fmt.Sprintf("control: permanent failure classified %s", se.Class))
		}
		if se.Attempts != 1 {
			v = append(v, fmt.Sprintf("control: permanent failure attempted %d times", se.Attempts))
		}
		if se.Name != "ctl-permanent" || se.Index != 1 {
			v = append(v, fmt.Sprintf("control: typed error misattributed: name=%q index=%d", se.Name, se.Index))
		}
	}
	if results[0].Err != nil || results[2].Err != nil {
		v = append(v, fmt.Sprintf("control: batch poisoned by permanent failure: a=%v b=%v",
			results[0].Err, results[2].Err))
	}
	tr := results[3]
	if tr.Err != nil {
		v = append(v, fmt.Sprintf("control: transient scenario failed despite retry policy: %v", tr.Err))
	} else if tr.Attempts != 2 {
		v = append(v, fmt.Sprintf("control: transient scenario attempts=%d, want 2", tr.Attempts))
	}
	return v
}

// daemonPhase soaks a live ahbserved: the same faulted batch is posted
// fresh, from cache, and with no_cache recompute, and all three must
// return byte-identical result payloads. 503 admission rejections are
// retried honoring Retry-After.
func daemonPhase(cfg config) []string {
	var v []string
	client := &http.Client{Timeout: cfg.timeout + 30*time.Second}
	var scens []map[string]any
	for i := 0; i < 3; i++ {
		seed := cfg.seed + int64(i)
		scens = append(scens, map[string]any{
			"name":   fmt.Sprintf("chaos-wire-%d", seed),
			"cycles": cfg.cycles,
			"faults": fault.RandomPlan(seed),
		})
	}
	body, _ := json.Marshal(map[string]any{"scenarios": scens})
	recompute, _ := json.Marshal(map[string]any{"scenarios": scens, "no_cache": true})

	post := func(label string, b []byte) ([]json.RawMessage, bool) {
		raw, err := postWithRetry(client, cfg.addr+"/v1/run", b, 5, 2*time.Second)
		if err != nil {
			v = append(v, fmt.Sprintf("daemon: %s request failed: %v", label, err))
			return nil, false
		}
		var resp struct {
			Results []json.RawMessage `json:"results"`
		}
		if err := json.Unmarshal(raw, &resp); err != nil {
			v = append(v, fmt.Sprintf("daemon: %s response malformed: %v", label, err))
			return nil, false
		}
		for _, r := range resp.Results {
			var one struct {
				Name  string `json:"name"`
				Error string `json:"error"`
			}
			if json.Unmarshal(r, &one) == nil && one.Error != "" {
				v = append(v, fmt.Sprintf("daemon: %s scenario %q failed: %s", label, one.Name, one.Error))
				return nil, false
			}
		}
		return resp.Results, true
	}
	fresh, ok := post("fresh", body)
	if !ok {
		return v
	}
	cached, ok := post("cached", body)
	if ok && !sameResults(fresh, cached) {
		v = append(v, "daemon: cached replay differs from the fresh run")
	}
	recomputed, ok := post("no_cache", recompute)
	if ok && !sameResults(fresh, recomputed) {
		v = append(v, "daemon: no_cache recompute differs from the fresh run")
	}
	return v
}

func sameResults(a, b []json.RawMessage) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// postWithRetry POSTs JSON, retrying 503 admission rejections — and
// refused/reset connections, which is what the daemon's listen socket
// looks like during a crash-recovery restart window — with exponential
// backoff, honoring the daemon's Retry-After hint, each sleep capped at
// rcap.
func postWithRetry(client *http.Client, url string, body []byte, attempts int, rcap time.Duration) ([]byte, error) {
	backoff := 100 * time.Millisecond
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			if attempt >= attempts ||
				(!errors.Is(err, syscall.ECONNREFUSED) && !errors.Is(err, syscall.ECONNRESET)) {
				return nil, err
			}
			sleep := backoff
			if sleep > rcap {
				sleep = rcap
			}
			time.Sleep(sleep)
			backoff *= 2
			continue
		}
		raw, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		if resp.StatusCode/100 == 2 { // 200 sync, 202 async admission
			return raw, nil
		}
		if resp.StatusCode != http.StatusServiceUnavailable || attempt >= attempts {
			return nil, fmt.Errorf("status %d: %.200s", resp.StatusCode, raw)
		}
		sleep := backoff
		if s, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && s >= 0 {
			if ra := time.Duration(s) * time.Second; ra > sleep {
				sleep = ra
			}
		}
		if sleep > rcap {
			sleep = rcap
		}
		time.Sleep(sleep)
		backoff *= 2
	}
}
