// Command serveload drives an ahbserved daemon at a target request rate
// and reports latency percentiles and error rate — the serving
// equivalent of the benchmark suite, with the same role in CI:
// BENCH_serve.json is the checked-in baseline and -gate fails the run
// when p95 regresses beyond the threshold or any request misbehaves.
//
// Usage:
//
//	serveload -addr http://localhost:8097 -rps 100 -duration 5s \
//	          -gate BENCH_serve.json -threshold 100
//
// Requests are scenario batches; -distinct controls how many distinct
// canonical scenarios rotate through the run (1 = everything after the
// first request is a cache hit; large values measure fresh-run latency).
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"syscall"
	"time"
)

type result struct {
	latency    time.Duration
	status     int
	retries    int // 503 rounds absorbed before the final outcome
	reconnects int // connection-refused/reset rounds absorbed (daemon restart window)
	err        error
}

// retryPolicy bounds how oneRequest reacts to 503 admission rejections:
// up to max extra attempts, sleeping the larger of the doubling backoff
// and the server's Retry-After hint, each sleep capped at cap.
type retryPolicy struct {
	max int
	cap time.Duration
}

// report is the machine-readable summary; BENCH_serve.json stores the
// baseline in the same shape (only the gated fields are required).
type report struct {
	Requests     int     `json:"requests"`
	Errors       int     `json:"errors"`
	ErrorRate    float64 `json:"error_rate"`
	Retried      int     `json:"retried"`       // requests that succeeded after >=1 retry
	RetriesTotal int     `json:"retries_total"` // 503 rounds absorbed across all requests
	Reconnects   int     `json:"reconnects"`    // connection-refused/reset rounds absorbed (restart window)
	AchievedRPS  float64 `json:"achieved_rps"`
	P50Ms        float64 `json:"p50_ms"`
	P95Ms        float64 `json:"p95_ms"`
	P99Ms        float64 `json:"p99_ms"`
	MaxMs        float64 `json:"max_ms"`
	CacheableHit bool    `json:"-"`
}

func main() {
	addr := flag.String("addr", "http://localhost:8097", "daemon base URL")
	rps := flag.Float64("rps", 50, "target request rate per second")
	duration := flag.Duration("duration", 5*time.Second, "load duration")
	concurrency := flag.Int("concurrency", 256, "maximum outstanding requests")
	cycles := flag.Uint64("cycles", 2000, "cycles per scenario")
	perReq := flag.Int("scenarios", 1, "scenarios per request")
	distinct := flag.Int("distinct", 8, "distinct canonical scenarios rotated through the run")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request client timeout")
	wait := flag.Duration("wait", 15*time.Second, "how long to wait for /healthz before starting")
	gate := flag.String("gate", "", "baseline JSON (e.g. BENCH_serve.json); exit 1 on regression")
	threshold := flag.Float64("threshold", 100, "allowed p95 regression over the baseline, percent")
	retries := flag.Int("retries", 4, "extra attempts after a 503 admission rejection")
	retryCap := flag.Duration("retry-cap", 2*time.Second, "upper bound on a single retry sleep")
	jsonOut := flag.String("o", "", "write the JSON report to this file")
	flag.Parse()

	if err := waitReady(*addr, *wait); err != nil {
		fatal(err)
	}
	client := &http.Client{Timeout: *timeout}
	bodies := requestBodies(*distinct, *perReq, *cycles)

	var (
		mu      sync.Mutex
		results []result
		wg      sync.WaitGroup
	)
	sem := make(chan struct{}, *concurrency)
	interval := time.Duration(float64(time.Second) / *rps)
	start := time.Now()
	deadline := start.Add(*duration)
	for n := 0; ; n++ {
		now := time.Now()
		if now.After(deadline) {
			break
		}
		if next := start.Add(time.Duration(n) * interval); next.After(now) {
			time.Sleep(time.Until(next))
		}
		select {
		case sem <- struct{}{}:
		default:
			// Concurrency cap reached: the server is slower than the
			// target rate; count the dropped send as an error rather
			// than queueing unboundedly in the client.
			mu.Lock()
			results = append(results, result{err: fmt.Errorf("client concurrency cap %d reached", *concurrency)})
			mu.Unlock()
			continue
		}
		wg.Add(1)
		go func(body []byte) {
			defer wg.Done()
			defer func() { <-sem }()
			r := oneRequest(client, *addr+"/v1/run", body, retryPolicy{max: *retries, cap: *retryCap})
			mu.Lock()
			results = append(results, r)
			mu.Unlock()
		}(bodies[n%len(bodies)])
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := summarize(results, elapsed)
	fmt.Printf("serveload: %d requests in %s (%.1f rps achieved, target %.1f)\n",
		rep.Requests, elapsed.Round(time.Millisecond), rep.AchievedRPS, *rps)
	fmt.Printf("latency p50=%.1fms p95=%.1fms p99=%.1fms max=%.1fms\n",
		rep.P50Ms, rep.P95Ms, rep.P99Ms, rep.MaxMs)
	fmt.Printf("errors %d (%.2f%%), retried %d ok after %d 503 rounds, %d reconnects\n",
		rep.Errors, 100*rep.ErrorRate, rep.Retried, rep.RetriesTotal, rep.Reconnects)
	for _, r := range results {
		if r.err != nil {
			fmt.Printf("first error: %v\n", r.err)
			break
		}
	}
	if *jsonOut != "" {
		b, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(*jsonOut, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
	if *gate != "" {
		baseline, err := loadBaseline(*gate)
		if err != nil {
			fatal(err)
		}
		if err := gateCheck(rep, baseline, *threshold); err != nil {
			fmt.Fprintln(os.Stderr, "serveload: GATE FAILED:", err)
			os.Exit(1)
		}
		fmt.Printf("gate ok: p95 %.1fms within %.0f%% of baseline %.1fms, error rate %.2f%% <= %.2f%% (%d retried, not failed)\n",
			rep.P95Ms, *threshold, baseline.P95Ms, 100*rep.ErrorRate, 100*baseline.ErrorRate, rep.Retried)
	}
}

// waitReady polls /healthz until it answers 200.
func waitReady(addr string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		resp, err := http.Get(addr + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err == nil {
				return fmt.Errorf("daemon at %s not ready within %s", addr, wait)
			}
			return fmt.Errorf("daemon at %s not reachable within %s: %w", addr, wait, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// requestBodies pre-marshals the rotating request set. Distinct seeds
// produce distinct canonical scenarios (distinct cache keys).
func requestBodies(distinct, perReq int, cycles uint64) [][]byte {
	if distinct < 1 {
		distinct = 1
	}
	if perReq < 1 {
		perReq = 1
	}
	bodies := make([][]byte, distinct)
	for d := range bodies {
		var req struct {
			Scenarios []map[string]any `json:"scenarios"`
		}
		for k := 0; k < perReq; k++ {
			req.Scenarios = append(req.Scenarios, map[string]any{
				"name":   fmt.Sprintf("load-%d-%d", d, k),
				"cycles": cycles,
				"workloads": []map[string]any{{
					"seed":      d*1000 + k,
					"sequences": 4,
					"pairs_min": 4, "pairs_max": 12,
					"idle_min": 5, "idle_max": 20,
					"addr_size": 12288,
				}},
			})
		}
		bodies[d], _ = json.Marshal(req)
	}
	return bodies
}

// oneRequest performs one POST /v1/run and validates the response shape.
// A 503 is the daemon's admission control saying "later", not a broken
// request, so it is retried with exponential backoff, honoring the
// Retry-After hint when the server sends one; only exhausting the retry
// budget turns it into a hard error. A refused or reset connection gets
// the same treatment — during a crash-recovery restart the daemon's
// listener is briefly gone, and a load client that cannot ride that
// window out would misreport a recovering daemon as broken; those rounds
// are counted separately as reconnects. The reported latency spans the
// whole exchange, sleeps included — that is what a caller experiences.
func oneRequest(client *http.Client, url string, body []byte, rp retryPolicy) result {
	t0 := time.Now()
	backoff := 100 * time.Millisecond
	retries503, reconnects := 0, 0
	for attempt := 0; ; attempt++ {
		r, retryAfter := postOnce(client, url, body)
		r.retries = retries503
		r.reconnects = reconnects
		r.latency = time.Since(t0)
		connErr := retryableConnErr(r.err)
		if (r.status != http.StatusServiceUnavailable && !connErr) || attempt >= rp.max {
			return r
		}
		if connErr {
			reconnects++
		} else {
			retries503++
		}
		sleep := backoff
		if retryAfter > sleep {
			sleep = retryAfter
		}
		if rp.cap > 0 && sleep > rp.cap {
			sleep = rp.cap
		}
		time.Sleep(sleep)
		backoff *= 2
	}
}

// retryableConnErr reports whether the exchange died before reaching the
// daemon's admission control: a refused connection (nothing listening —
// the restart window) or a reset one (listener went away mid-exchange).
func retryableConnErr(err error) bool {
	return errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET)
}

// postOnce is a single POST exchange; oneRequest wraps it in the retry
// loop. retryAfter carries the parsed Retry-After header on a 503.
func postOnce(client *http.Client, url string, body []byte) (r result, retryAfter time.Duration) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		r.err = err
		return r, 0
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	r.status = resp.StatusCode
	if err != nil {
		r.err = err
		return r, 0
	}
	if resp.StatusCode != http.StatusOK {
		if s, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && s >= 0 {
			retryAfter = time.Duration(s) * time.Second
		}
		r.err = fmt.Errorf("status %d: %s", resp.StatusCode, truncate(raw, 200))
		return r, retryAfter
	}
	var parsed struct {
		Results []struct {
			Error string `json:"error"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &parsed); err != nil {
		r.err = fmt.Errorf("bad response body: %w", err)
		return r, 0
	}
	if len(parsed.Results) == 0 {
		r.err = fmt.Errorf("response has no results")
		return r, 0
	}
	for _, res := range parsed.Results {
		if res.Error != "" {
			r.err = fmt.Errorf("scenario error: %s", res.Error)
			return r, 0
		}
	}
	return r, 0
}

func truncate(b []byte, n int) string {
	if len(b) > n {
		return string(b[:n]) + "..."
	}
	return string(b)
}

// summarize folds the raw results into the report.
func summarize(results []result, elapsed time.Duration) report {
	rep := report{Requests: len(results)}
	if elapsed > 0 {
		rep.AchievedRPS = float64(len(results)) / elapsed.Seconds()
	}
	lats := make([]float64, 0, len(results))
	for _, r := range results {
		rep.RetriesTotal += r.retries
		rep.Reconnects += r.reconnects
		if r.err != nil {
			rep.Errors++
			continue
		}
		if r.retries > 0 || r.reconnects > 0 {
			rep.Retried++
		}
		lats = append(lats, float64(r.latency)/float64(time.Millisecond))
	}
	if rep.Requests > 0 {
		rep.ErrorRate = float64(rep.Errors) / float64(rep.Requests)
	}
	rep.P50Ms = percentile(lats, 50)
	rep.P95Ms = percentile(lats, 95)
	rep.P99Ms = percentile(lats, 99)
	if len(lats) > 0 {
		max := lats[0]
		for _, v := range lats {
			if v > max {
				max = v
			}
		}
		rep.MaxMs = max
	}
	return rep
}

// percentile returns the p-th percentile of vs (nearest-rank), or 0 for
// an empty slice.
func percentile(vs []float64, p float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	rank := int(math.Ceil(p / 100 * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}

// loadBaseline reads a baseline report (only gated fields required).
func loadBaseline(path string) (report, error) {
	var b report
	raw, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(raw, &b); err != nil {
		return b, fmt.Errorf("parsing %s: %w", path, err)
	}
	if b.P95Ms <= 0 {
		return b, fmt.Errorf("baseline %s has no positive p95_ms", path)
	}
	return b, nil
}

// gateCheck fails when head p95 exceeds the baseline by more than
// threshold percent, or when the error rate exceeds the baseline's
// allowance. Zero requests is always a failure — a gate that measured
// nothing must not pass.
func gateCheck(head, baseline report, threshold float64) error {
	if head.Requests == 0 {
		return fmt.Errorf("no requests were sent")
	}
	if head.ErrorRate > baseline.ErrorRate {
		return fmt.Errorf("error rate %.2f%% exceeds allowed %.2f%%",
			100*head.ErrorRate, 100*baseline.ErrorRate)
	}
	limit := baseline.P95Ms * (1 + threshold/100)
	if head.P95Ms > limit {
		return fmt.Errorf("p95 %.1fms exceeds limit %.1fms (baseline %.1fms + %.0f%%)",
			head.P95Ms, limit, baseline.P95Ms, threshold)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "serveload:", err)
	os.Exit(1)
}
