package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestPercentile(t *testing.T) {
	vs := []float64{5, 1, 4, 2, 3} // sorted: 1 2 3 4 5
	cases := []struct {
		p    float64
		want float64
	}{
		{50, 3}, {95, 5}, {99, 5}, {100, 5}, {1, 1}, {20, 1},
	}
	for _, c := range cases {
		if got := percentile(vs, c.p); got != c.want {
			t.Errorf("percentile(%v, %g) = %g, want %g", vs, c.p, got, c.want)
		}
	}
	if got := percentile(nil, 95); got != 0 {
		t.Errorf("percentile(nil) = %g, want 0", got)
	}
}

func TestSummarize(t *testing.T) {
	results := []result{
		{latency: 10 * time.Millisecond},
		{latency: 20 * time.Millisecond},
		{latency: 30 * time.Millisecond},
		{err: errFake},
	}
	rep := summarize(results, 2*time.Second)
	if rep.Requests != 4 || rep.Errors != 1 {
		t.Errorf("requests=%d errors=%d, want 4/1", rep.Requests, rep.Errors)
	}
	if rep.ErrorRate != 0.25 {
		t.Errorf("error rate %g, want 0.25", rep.ErrorRate)
	}
	if rep.AchievedRPS != 2 {
		t.Errorf("achieved rps %g, want 2", rep.AchievedRPS)
	}
	if rep.P50Ms != 20 || rep.MaxMs != 30 {
		t.Errorf("p50=%g max=%g, want 20/30", rep.P50Ms, rep.MaxMs)
	}
}

var errFake = &fakeErr{}

type fakeErr struct{}

func (*fakeErr) Error() string { return "fake" }

func TestGateCheck(t *testing.T) {
	baseline := report{P95Ms: 100, ErrorRate: 0}
	ok := report{Requests: 50, P95Ms: 120, ErrorRate: 0}
	if err := gateCheck(ok, baseline, 50); err != nil {
		t.Errorf("within threshold must pass: %v", err)
	}
	slow := report{Requests: 50, P95Ms: 151, ErrorRate: 0}
	if err := gateCheck(slow, baseline, 50); err == nil {
		t.Error("p95 beyond threshold must fail")
	}
	errs := report{Requests: 50, P95Ms: 50, Errors: 1, ErrorRate: 0.02}
	if err := gateCheck(errs, baseline, 50); err == nil {
		t.Error("nonzero error rate against a zero-error baseline must fail")
	}
	empty := report{}
	if err := gateCheck(empty, baseline, 50); err == nil {
		t.Error("zero requests must fail the gate")
	}
}

const okBody = `{"results":[{"name":"s","total_energy_j":1}],"batch":{"scenarios":1}}`

// flakyServer rejects the first n requests with 503 + Retry-After, then
// answers 200 — the shape ahbserved's admission control produces under
// transient overload.
func flakyServer(n int32, retryAfter string) (*httptest.Server, *int32) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) <= n {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			http.Error(w, `{"error":"queue full"}`, http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, okBody)
	}))
	return srv, &calls
}

func TestOneRequestRetriesOn503(t *testing.T) {
	srv, calls := flakyServer(2, "")
	defer srv.Close()
	client := &http.Client{Timeout: 5 * time.Second}

	r := oneRequest(client, srv.URL+"/v1/run", []byte(`{}`), retryPolicy{max: 4, cap: time.Second})
	if r.err != nil {
		t.Fatalf("request must succeed after retries: %v", r.err)
	}
	if r.retries != 2 {
		t.Errorf("retries=%d, want 2", r.retries)
	}
	if got := atomic.LoadInt32(calls); got != 3 {
		t.Errorf("server saw %d calls, want 3", got)
	}
}

func TestOneRequestHonorsRetryAfter(t *testing.T) {
	srv, _ := flakyServer(1, "1")
	defer srv.Close()
	client := &http.Client{Timeout: 5 * time.Second}

	// Retry-After: 1 (second) beats the 100ms starting backoff but is
	// clamped by the cap, so the stall sits in [cap, ~1s).
	capSleep := 300 * time.Millisecond
	t0 := time.Now()
	r := oneRequest(client, srv.URL+"/v1/run", []byte(`{}`), retryPolicy{max: 2, cap: capSleep})
	elapsed := time.Since(t0)
	if r.err != nil {
		t.Fatalf("request must succeed after retry: %v", r.err)
	}
	if elapsed < capSleep {
		t.Errorf("elapsed %v shorter than the capped Retry-After sleep %v", elapsed, capSleep)
	}
	if elapsed > 900*time.Millisecond {
		t.Errorf("elapsed %v suggests the cap was ignored (Retry-After was 1s)", elapsed)
	}
}

func TestOneRequestExhaustsRetryBudget(t *testing.T) {
	srv, calls := flakyServer(100, "")
	defer srv.Close()
	client := &http.Client{Timeout: 5 * time.Second}

	r := oneRequest(client, srv.URL+"/v1/run", []byte(`{}`), retryPolicy{max: 2, cap: 50 * time.Millisecond})
	if r.err == nil {
		t.Fatal("exhausted budget must surface as an error")
	}
	if r.status != http.StatusServiceUnavailable {
		t.Errorf("status=%d, want 503", r.status)
	}
	if r.retries != 2 {
		t.Errorf("retries=%d, want 2", r.retries)
	}
	if got := atomic.LoadInt32(calls); got != 3 {
		t.Errorf("server saw %d calls, want 3 (1 + 2 retries)", got)
	}
}

func TestOneRequestNoRetryOnHardError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"bad request"}`, http.StatusBadRequest)
	}))
	defer srv.Close()
	client := &http.Client{Timeout: 5 * time.Second}

	r := oneRequest(client, srv.URL+"/v1/run", []byte(`{}`), retryPolicy{max: 4, cap: time.Second})
	if r.err == nil || r.retries != 0 {
		t.Errorf("400 must fail immediately without retries: err=%v retries=%d", r.err, r.retries)
	}
}

func TestSummarizeSeparatesRetriedFromFailed(t *testing.T) {
	results := []result{
		{latency: 10 * time.Millisecond},
		{latency: 250 * time.Millisecond, retries: 2},
		{retries: 3, status: 503, err: errFake},
		{err: errFake},
	}
	rep := summarize(results, time.Second)
	if rep.Requests != 4 || rep.Errors != 2 {
		t.Errorf("requests=%d errors=%d, want 4/2", rep.Requests, rep.Errors)
	}
	if rep.Retried != 1 {
		t.Errorf("retried=%d, want 1 (only successes count as retried)", rep.Retried)
	}
	if rep.RetriesTotal != 5 {
		t.Errorf("retries_total=%d, want 5", rep.RetriesTotal)
	}
}
