package main

import (
	"testing"
	"time"
)

func TestPercentile(t *testing.T) {
	vs := []float64{5, 1, 4, 2, 3} // sorted: 1 2 3 4 5
	cases := []struct {
		p    float64
		want float64
	}{
		{50, 3}, {95, 5}, {99, 5}, {100, 5}, {1, 1}, {20, 1},
	}
	for _, c := range cases {
		if got := percentile(vs, c.p); got != c.want {
			t.Errorf("percentile(%v, %g) = %g, want %g", vs, c.p, got, c.want)
		}
	}
	if got := percentile(nil, 95); got != 0 {
		t.Errorf("percentile(nil) = %g, want 0", got)
	}
}

func TestSummarize(t *testing.T) {
	results := []result{
		{latency: 10 * time.Millisecond},
		{latency: 20 * time.Millisecond},
		{latency: 30 * time.Millisecond},
		{err: errFake},
	}
	rep := summarize(results, 2*time.Second)
	if rep.Requests != 4 || rep.Errors != 1 {
		t.Errorf("requests=%d errors=%d, want 4/1", rep.Requests, rep.Errors)
	}
	if rep.ErrorRate != 0.25 {
		t.Errorf("error rate %g, want 0.25", rep.ErrorRate)
	}
	if rep.AchievedRPS != 2 {
		t.Errorf("achieved rps %g, want 2", rep.AchievedRPS)
	}
	if rep.P50Ms != 20 || rep.MaxMs != 30 {
		t.Errorf("p50=%g max=%g, want 20/30", rep.P50Ms, rep.MaxMs)
	}
}

var errFake = &fakeErr{}

type fakeErr struct{}

func (*fakeErr) Error() string { return "fake" }

func TestGateCheck(t *testing.T) {
	baseline := report{P95Ms: 100, ErrorRate: 0}
	ok := report{Requests: 50, P95Ms: 120, ErrorRate: 0}
	if err := gateCheck(ok, baseline, 50); err != nil {
		t.Errorf("within threshold must pass: %v", err)
	}
	slow := report{Requests: 50, P95Ms: 151, ErrorRate: 0}
	if err := gateCheck(slow, baseline, 50); err == nil {
		t.Error("p95 beyond threshold must fail")
	}
	errs := report{Requests: 50, P95Ms: 50, Errors: 1, ErrorRate: 0.02}
	if err := gateCheck(errs, baseline, 50); err == nil {
		t.Error("nonzero error rate against a zero-error baseline must fail")
	}
	empty := report{}
	if err := gateCheck(empty, baseline, 50); err == nil {
		t.Error("zero requests must fail the gate")
	}
}
