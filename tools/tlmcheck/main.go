// Command tlmcheck is the paired cross-check harness for the
// transaction-level fast path (internal/tlm): it runs a matrix of
// scenarios — every arbitration policy crossed with the workload
// patterns, plus wait-state and burst-length variants — twice each, once
// cycle-accurate and once as the calibrated transaction-level estimate,
// and reports the per-scenario total-energy divergence and the measured
// wall-clock speedup.
//
// The divergence budget is a hard gate: the estimator's contract (see
// DESIGN.md §12) is a median divergence within -budget (default 5%)
// across the matrix, and tlmcheck exits 1 when the measured median
// exceeds it, or when any scenario expected to ride the estimator fell
// back to the exact path. CI runs it on every pull request so the
// calibrated error budget is a measured number, not a stale claim.
//
// Usage:
//
//	tlmcheck -cycles 24000 -budget 0.05 -o tlm_report.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"ahbpower/internal/amba/ahb"
	"ahbpower/internal/core"
	"ahbpower/internal/engine"
	"ahbpower/internal/tlm"
	"ahbpower/internal/workload"
)

// pairOutcome is one scenario's paired run.
type pairOutcome struct {
	Name string `json:"name"`
	// CycleEnergy and TLMEnergy are the paired total energies in joules.
	CycleEnergy float64 `json:"cycle_energy_J"`
	TLMEnergy   float64 `json:"tlm_energy_J"`
	// Divergence is |tlm-cycle| / cycle.
	Divergence float64 `json:"divergence"`
	// Speedup is cycle wall time / tlm wall time for this pair.
	Speedup float64 `json:"speedup"`
	// Fallback carries the estimator's conservative-fallback reason when
	// the transaction run did not actually ride the estimator.
	Fallback string `json:"fallback,omitempty"`
}

// report is the machine-readable outcome written by -o.
type report struct {
	Cycles           uint64        `json:"cycles"`
	Scenarios        int           `json:"scenarios"`
	Budget           float64       `json:"budget"`
	MedianDivergence float64       `json:"median_divergence"`
	P95Divergence    float64       `json:"p95_divergence"`
	MaxDivergence    float64       `json:"max_divergence"`
	MedianSpeedup    float64       `json:"median_speedup"`
	Pass             bool          `json:"pass"`
	Pairs            []pairOutcome `json:"pairs"`
	Failures         []string      `json:"failures,omitempty"`
}

func main() {
	cycles := flag.Uint64("cycles", 24000, "bus cycles per scenario")
	budget := flag.Float64("budget", 0.05, "median divergence gate (fraction; 0.05 = 5%)")
	maxBudget := flag.Float64("max-budget", 0.15, "per-scenario worst-case divergence gate")
	jsonOut := flag.String("o", "", "write the JSON report to this file")
	verbose := flag.Bool("v", false, "log each pair as it completes")
	flag.Parse()

	rep := run(*cycles, *budget, *maxBudget, *verbose)

	fmt.Printf("tlmcheck: %d pairs at %d cycles: divergence median %.2f%% p95 %.2f%% max %.2f%%, median speedup %.1fx\n",
		rep.Scenarios, rep.Cycles, 100*rep.MedianDivergence, 100*rep.P95Divergence,
		100*rep.MaxDivergence, rep.MedianSpeedup)
	for _, f := range rep.Failures {
		fmt.Fprintln(os.Stderr, "tlmcheck: FAIL:", f)
	}
	if *jsonOut != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonOut, append(b, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "tlmcheck:", err)
			os.Exit(2)
		}
	}
	if !rep.Pass {
		os.Exit(1)
	}
	fmt.Printf("tlmcheck: PASS (median budget %.0f%%)\n", 100*rep.Budget)
}

// matrix builds the cross-check scenarios: every arbitration policy
// against every workload pattern, then wait-state and burst-length
// variants on the sticky/random base. Names double as the report keys.
func matrix(cycles uint64) []engine.Scenario {
	base := func(name string, pol ahb.ArbPolicy, waits int, wl workload.Config) engine.Scenario {
		sys := core.PaperSystem()
		sys.Policy = pol
		sys.SlaveWaits = waits
		return engine.Scenario{
			Name:      name,
			System:    sys,
			Analyzer:  core.AnalyzerConfig{Style: core.StyleGlobal},
			Workloads: []workload.Config{wl},
			Cycles:    cycles,
		}
	}
	wl := func(pat workload.Pattern, burst int, seed int64) workload.Config {
		return workload.Config{
			Seed: seed,
			// Aggregate demand comfortably exceeds the horizon, so the
			// traffic mix stays stationary end to end — the estimator's
			// documented contract. The drain scenario below covers the
			// scripts-exhaust-early case separately.
			NumSequences: int(cycles/20) + 4,
			PairsMin:     2, PairsMax: 8,
			IdleMin: 1, IdleMax: 6,
			AddrSize:   3 * 0x1000, // span all three paper slave regions
			Pattern:    pat,
			BurstBeats: burst,
		}
	}

	var scs []engine.Scenario
	policies := []ahb.ArbPolicy{ahb.PolicySticky, ahb.PolicyFixed, ahb.PolicyRoundRobin}
	patterns := []struct {
		name string
		pat  workload.Pattern
	}{
		{"random", workload.PatternRandom},
		{"low-activity", workload.PatternLowActivity},
		{"counter", workload.PatternCounter},
	}
	for _, pol := range policies {
		for _, p := range patterns {
			scs = append(scs, base(fmt.Sprintf("%s/%s", pol, p.name), pol, 0, wl(p.pat, 0, 11)))
		}
	}
	for _, waits := range []int{1, 2} {
		scs = append(scs, base(fmt.Sprintf("sticky/random/waits=%d", waits),
			ahb.PolicySticky, waits, wl(workload.PatternRandom, 0, 23)))
	}
	for _, burst := range []int{4, 8} {
		scs = append(scs, base(fmt.Sprintf("sticky/random/burst=%d", burst),
			ahb.PolicySticky, 0, wl(workload.PatternRandom, burst, 37)))
	}
	// A deliberately tail-heavy run — the scripts drain a third of the way
	// into the horizon — pins the estimator's analytic dead-tail pricing,
	// the one regime the stationary scenarios above never enter.
	drain := wl(workload.PatternRandom, 0, 11)
	drain.NumSequences = int(cycles/100) + 2
	scs = append(scs, base("sticky/random/drain", ahb.PolicySticky, 0, drain))
	return scs
}

func run(cycles uint64, budget, maxBudget float64, verbose bool) report {
	rep := report{Cycles: cycles, Budget: budget, Pass: true}
	ctx := context.Background()

	for _, sc := range matrix(cycles) {
		cy := sc
		cy.Accuracy = engine.AccuracyCycle
		tr := sc
		tr.Accuracy = engine.AccuracyTransaction

		start := time.Now()
		rc := engine.RunOne(ctx, cy)
		cycleWall := time.Since(start)
		start = time.Now()
		rt := engine.RunOne(ctx, tr)
		tlmWall := time.Since(start)

		if rc.Err != nil || rt.Err != nil {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("%s: run error: cycle=%v tlm=%v", sc.Name, rc.Err, rt.Err))
			rep.Pass = false
			continue
		}
		p := pairOutcome{
			Name:        sc.Name,
			CycleEnergy: rc.Report.TotalEnergy,
			TLMEnergy:   rt.Report.TotalEnergy,
			Fallback:    rt.BackendFallback,
		}
		if p.CycleEnergy > 0 {
			p.Divergence = math.Abs(p.TLMEnergy-p.CycleEnergy) / p.CycleEnergy
		}
		if tlmWall > 0 {
			p.Speedup = float64(cycleWall) / float64(tlmWall)
		}
		if rt.Backend != tlm.Name {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("%s: transaction run fell back to %s: %s", sc.Name, rt.Backend, rt.BackendFallback))
			rep.Pass = false
		}
		if p.Divergence > maxBudget {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("%s: divergence %.2f%% exceeds the per-scenario gate %.0f%%",
					sc.Name, 100*p.Divergence, 100*maxBudget))
			rep.Pass = false
		}
		if verbose {
			fmt.Printf("  %-28s cycle %.4g J  tlm %.4g J  diff %5.2f%%  speedup %5.1fx\n",
				p.Name, p.CycleEnergy, p.TLMEnergy, 100*p.Divergence, p.Speedup)
		}
		rep.Pairs = append(rep.Pairs, p)
	}
	rep.Scenarios = len(rep.Pairs)

	divs := make([]float64, 0, len(rep.Pairs))
	speeds := make([]float64, 0, len(rep.Pairs))
	for _, p := range rep.Pairs {
		divs = append(divs, p.Divergence)
		speeds = append(speeds, p.Speedup)
	}
	rep.MedianDivergence = quantile(divs, 0.5)
	rep.P95Divergence = quantile(divs, 0.95)
	rep.MaxDivergence = quantile(divs, 1)
	rep.MedianSpeedup = quantile(speeds, 0.5)
	if rep.Scenarios == 0 {
		rep.Failures = append(rep.Failures, "no pairs ran")
		rep.Pass = false
	}
	if rep.MedianDivergence > budget {
		rep.Failures = append(rep.Failures,
			fmt.Sprintf("median divergence %.2f%% exceeds the budget %.0f%%",
				100*rep.MedianDivergence, 100*budget))
		rep.Pass = false
	}
	return rep
}

// quantile returns the q-quantile (nearest-rank) of values; 0 when empty.
func quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return 0
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	i := int(math.Ceil(q*float64(len(s)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}
