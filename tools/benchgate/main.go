// Command benchgate compares two Go benchmark output files (base and
// head, as produced by `go test -bench`) and exits nonzero when any
// benchmark present in both regressed by more than the threshold on
// ns/op. CI runs it after benchstat to turn the human-readable comparison
// into a hard gate: a >10% slowdown of the simulation-kernel benchmarks
// fails the pull request.
//
// Multiple -count repetitions of the same benchmark are reduced to their
// median, so a single noisy run cannot flip the verdict. Benchmarks that
// exist on only one side (newly added or deleted) are reported but never
// gate, otherwise the first PR introducing a benchmark could not merge —
// with one exception: a head file that carries test-failure markers
// (FAIL/panic) or that contains no benchmarks at all while the base has
// some means the head suite errored rather than that the benchmarks were
// removed, and that fails the gate instead of passing vacuously.
//
// -min-speedup adds absolute assertions on the head file alone: for
// "lanes:10x", every head benchmark with a path segment "lanes" must be
// at least 10 times faster (median ns/op) than each sibling benchmark
// that differs only in that segment (e.g. .../lanes/sweep versus
// .../compiled/sweep). This keeps a claimed backend win from silently
// eroding even when the base side has no baseline to diff against.
//
// Usage:
//
//	benchgate [-threshold 10] [-min-speedup label:Nx[,label:Nx...]] base.txt head.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	threshold := flag.Float64("threshold", 10, "maximum allowed ns/op regression, percent")
	var speedups speedupFlag
	flag.Var(&speedups, "min-speedup",
		"comma-separated label:Nx assertions, e.g. lanes:10x (head benchmarks with a\n"+
			"path segment equal to label must beat each sibling by the factor)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchgate [-threshold pct] [-min-speedup label:Nx] base.txt head.txt")
		os.Exit(2)
	}
	base, baseErrored, err := parseFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	head, headErrored, err := parseFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if baseErrored {
		// CI tolerates a failing base run (the base commit may predate a
		// benchmark package); its surviving samples still compare, but say
		// so in case a "gone" row below is really a base-side casualty.
		fmt.Println("note: base suite reported errors; comparing the samples it did produce")
	}
	report, failed := compare(base, head, *threshold)
	fmt.Print(report)
	if msg, errored := headSuiteError(base, head, headErrored); errored {
		fmt.Printf("FAIL: %s\n", msg)
		failed = true
	}
	if len(speedups) > 0 {
		sr, sf := checkSpeedups(head, speedups)
		fmt.Print(sr)
		failed = failed || sf
	}
	if failed {
		os.Exit(1)
	}
}

// headSuiteError decides whether the head file reflects a broken benchmark
// run — failure markers in the output, or no benchmark lines at all while
// the base has some — as opposed to benchmarks being legitimately removed.
func headSuiteError(base, head map[string][]float64, headErrored bool) (string, bool) {
	switch {
	case headErrored:
		return "head suite errored (FAIL/panic in output); not treating missing benchmarks as removed", true
	case len(head) == 0 && len(base) > 0:
		return "head produced no benchmarks while base has some; suite likely failed to run", true
	}
	return "", false
}

// parseFile reads one benchmark output file into name -> ns/op samples,
// also reporting whether the file carries test-failure markers.
func parseFile(path string) (map[string][]float64, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	return parse(f)
}

// parse extracts ns/op samples per benchmark name from `go test -bench`
// output. Lines that are not benchmark results are ignored, but FAIL and
// panic markers are noted so callers can tell an errored suite from one
// whose benchmarks were removed.
func parse(r io.Reader) (map[string][]float64, bool, error) {
	out := map[string][]float64{}
	errored := false
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fields := strings.Fields(line)
		if len(fields) > 0 && fields[0] == "FAIL" ||
			strings.HasPrefix(line, "--- FAIL") || strings.HasPrefix(line, "panic:") {
			errored = true
			continue
		}
		// Benchmark lines look like:
		//   BenchmarkName-8   12345   678.9 ns/op   [more unit pairs...]
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := trimCPUSuffix(fields[0])
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != "ns/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, errored, fmt.Errorf("bad ns/op value %q for %s", fields[i], name)
			}
			out[name] = append(out[name], v)
			break
		}
	}
	return out, errored, sc.Err()
}

// trimCPUSuffix drops the -<GOMAXPROCS> suffix go test appends, so runs
// on machines with different core counts still compare.
func trimCPUSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// median reduces repeated samples of one benchmark; it assumes vs is
// non-empty.
func median(vs []float64) float64 {
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// speedupReq is one parsed -min-speedup assertion.
type speedupReq struct {
	label  string  // benchmark path segment naming the fast variant
	factor float64 // required median-ns/op ratio sibling/labeled
}

// speedupFlag parses comma-separated label:Nx entries.
type speedupFlag []speedupReq

func (f *speedupFlag) String() string {
	parts := make([]string, len(*f))
	for i, r := range *f {
		parts[i] = fmt.Sprintf("%s:%gx", r.label, r.factor)
	}
	return strings.Join(parts, ",")
}

func (f *speedupFlag) Set(s string) error {
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		label, factorStr, ok := strings.Cut(part, ":")
		if !ok || label == "" || !strings.HasSuffix(factorStr, "x") {
			return fmt.Errorf("bad -min-speedup entry %q (want label:Nx)", part)
		}
		factor, err := strconv.ParseFloat(strings.TrimSuffix(factorStr, "x"), 64)
		if err != nil || factor <= 0 {
			return fmt.Errorf("bad -min-speedup factor in %q", part)
		}
		*f = append(*f, speedupReq{label: label, factor: factor})
	}
	return nil
}

// checkSpeedups verifies each -min-speedup assertion against the head
// samples: every head benchmark containing the label as a path segment is
// paired with each sibling differing only in that segment, and the
// sibling's median ns/op must be at least factor times the labeled one's.
// A label with no such pair fails — an absent benchmark must not satisfy
// a speedup claim vacuously.
func checkSpeedups(head map[string][]float64, reqs []speedupReq) (string, bool) {
	names := make([]string, 0, len(head))
	for name := range head {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	failed := false
	for _, req := range reqs {
		pairs := 0
		for _, name := range names {
			segs := strings.Split(name, "/")
			for i, seg := range segs {
				if seg != req.label {
					continue
				}
				for _, other := range names {
					if !siblingAt(segs, strings.Split(other, "/"), i) {
						continue
					}
					pairs++
					ratio := median(head[other]) / median(head[name])
					verdict := "ok"
					if ratio < req.factor {
						verdict = "FAIL"
						failed = true
					}
					fmt.Fprintf(&b, "min-speedup %s: %s vs %s: %.2fx (need %gx)  %s\n",
						req.label, name, other, ratio, req.factor, verdict)
				}
			}
		}
		if pairs == 0 {
			fmt.Fprintf(&b, "min-speedup %s: FAIL: no head benchmark pair differs only in segment %q\n",
				req.label, req.label)
			failed = true
		}
	}
	return b.String(), failed
}

// siblingAt reports whether two split benchmark names differ exactly at
// segment i (and bs is a genuine other variant there).
func siblingAt(as, bs []string, i int) bool {
	if len(as) != len(bs) || bs[i] == as[i] {
		return false
	}
	for j := range as {
		if j != i && as[j] != bs[j] {
			return false
		}
	}
	return true
}

// compare renders a per-benchmark delta table and reports whether any
// shared benchmark regressed beyond threshold percent.
func compare(base, head map[string][]float64, threshold float64) (string, bool) {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	failed := false
	shared := 0
	fmt.Fprintf(&b, "%-44s %14s %14s %9s\n", "benchmark", "base ns/op", "head ns/op", "delta")
	for _, name := range names {
		hv, ok := head[name]
		if !ok {
			fmt.Fprintf(&b, "%-44s %14.1f %14s %9s\n", name, median(base[name]), "-", "gone")
			continue
		}
		shared++
		bm, hm := median(base[name]), median(hv)
		deltaPct := 0.0
		if bm > 0 {
			deltaPct = (hm - bm) / bm * 100
		}
		verdict := ""
		if deltaPct > threshold {
			verdict = "  REGRESSION"
			failed = true
		}
		fmt.Fprintf(&b, "%-44s %14.1f %14.1f %+8.1f%%%s\n", name, bm, hm, deltaPct, verdict)
	}
	for name := range head {
		if _, ok := base[name]; !ok {
			fmt.Fprintf(&b, "%-44s %14s %14.1f %9s\n", name, "-", median(head[name]), "new")
		}
	}
	if shared == 0 {
		fmt.Fprintf(&b, "no shared benchmarks between base and head; nothing to gate\n")
	} else if failed {
		fmt.Fprintf(&b, "FAIL: at least one benchmark regressed more than %.0f%% on ns/op\n", threshold)
	} else {
		fmt.Fprintf(&b, "ok: no shared benchmark regressed more than %.0f%% on ns/op\n", threshold)
	}
	return b.String(), failed
}
