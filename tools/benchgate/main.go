// Command benchgate compares two Go benchmark output files (base and
// head, as produced by `go test -bench`) and exits nonzero when any
// benchmark present in both regressed by more than the threshold on
// ns/op. CI runs it after benchstat to turn the human-readable comparison
// into a hard gate: a >10% slowdown of the simulation-kernel benchmarks
// fails the pull request.
//
// Multiple -count repetitions of the same benchmark are reduced to their
// median, so a single noisy run cannot flip the verdict. Benchmarks that
// exist on only one side (newly added or deleted) are reported but never
// gate, otherwise the first PR introducing a benchmark could not merge.
//
// Usage:
//
//	benchgate [-threshold 10] base.txt head.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	threshold := flag.Float64("threshold", 10, "maximum allowed ns/op regression, percent")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchgate [-threshold pct] base.txt head.txt")
		os.Exit(2)
	}
	base, err := parseFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	head, err := parseFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	report, failed := compare(base, head, *threshold)
	fmt.Print(report)
	if failed {
		os.Exit(1)
	}
}

// parseFile reads one benchmark output file into name -> ns/op samples.
func parseFile(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parse(f)
}

// parse extracts ns/op samples per benchmark name from `go test -bench`
// output. Lines that are not benchmark results are ignored.
func parse(r io.Reader) (map[string][]float64, error) {
	out := map[string][]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// Benchmark lines look like:
		//   BenchmarkName-8   12345   678.9 ns/op   [more unit pairs...]
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := trimCPUSuffix(fields[0])
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != "ns/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad ns/op value %q for %s", fields[i], name)
			}
			out[name] = append(out[name], v)
			break
		}
	}
	return out, sc.Err()
}

// trimCPUSuffix drops the -<GOMAXPROCS> suffix go test appends, so runs
// on machines with different core counts still compare.
func trimCPUSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// median reduces repeated samples of one benchmark; it assumes vs is
// non-empty.
func median(vs []float64) float64 {
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// compare renders a per-benchmark delta table and reports whether any
// shared benchmark regressed beyond threshold percent.
func compare(base, head map[string][]float64, threshold float64) (string, bool) {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	failed := false
	shared := 0
	fmt.Fprintf(&b, "%-44s %14s %14s %9s\n", "benchmark", "base ns/op", "head ns/op", "delta")
	for _, name := range names {
		hv, ok := head[name]
		if !ok {
			fmt.Fprintf(&b, "%-44s %14.1f %14s %9s\n", name, median(base[name]), "-", "gone")
			continue
		}
		shared++
		bm, hm := median(base[name]), median(hv)
		deltaPct := 0.0
		if bm > 0 {
			deltaPct = (hm - bm) / bm * 100
		}
		verdict := ""
		if deltaPct > threshold {
			verdict = "  REGRESSION"
			failed = true
		}
		fmt.Fprintf(&b, "%-44s %14.1f %14.1f %+8.1f%%%s\n", name, bm, hm, deltaPct, verdict)
	}
	for name := range head {
		if _, ok := base[name]; !ok {
			fmt.Fprintf(&b, "%-44s %14s %14.1f %9s\n", name, "-", median(head[name]), "new")
		}
	}
	if shared == 0 {
		fmt.Fprintf(&b, "no shared benchmarks between base and head; nothing to gate\n")
	} else if failed {
		fmt.Fprintf(&b, "FAIL: at least one benchmark regressed more than %.0f%% on ns/op\n", threshold)
	} else {
		fmt.Fprintf(&b, "ok: no shared benchmark regressed more than %.0f%% on ns/op\n", threshold)
	}
	return b.String(), failed
}
