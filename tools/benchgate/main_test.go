package main

import (
	"strings"
	"testing"
)

const baseOut = `goos: linux
goarch: amd64
pkg: ahbpower/internal/sim
BenchmarkKernel/events-8         	 4000000	       291.0 ns/op	      24 B/op	       1 allocs/op
BenchmarkKernel/events-8         	 4100000	       289.0 ns/op	      24 B/op	       1 allocs/op
BenchmarkKernel/events-8         	 3900000	       295.0 ns/op	      24 B/op	       1 allocs/op
BenchmarkKernel/clock-fanout-16-8	 1000000	      1474 ns/op
BenchmarkOldOnly-8               	 1000000	      1000 ns/op
PASS
`

const headOut = `goos: linux
goarch: amd64
pkg: ahbpower/internal/sim
BenchmarkKernel/events-8         	17000000	        70.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkKernel/events-8         	17100000	        71.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkKernel/events-8         	16900000	        69.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkKernel/clock-fanout-16-8	 5000000	       247 ns/op
BenchmarkNewOnly-8               	 1000000	       500 ns/op
PASS
`

func mustParse(t *testing.T, s string) map[string][]float64 {
	t.Helper()
	m, errored, err := parse(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	if errored {
		t.Fatalf("fixture unexpectedly carries failure markers:\n%s", s)
	}
	return m
}

func TestParseCollectsSamplesPerName(t *testing.T) {
	m := mustParse(t, baseOut)
	if got := len(m["BenchmarkKernel/events"]); got != 3 {
		t.Errorf("events samples = %d, want 3 (repeated -count runs collected)", got)
	}
	if got := m["BenchmarkKernel/clock-fanout-16"]; len(got) != 1 || got[0] != 1474 {
		t.Errorf("clock-fanout sample = %v, want [1474]", got)
	}
	if _, ok := m["BenchmarkKernel/events-8"]; ok {
		t.Error("CPU suffix must be trimmed from benchmark names")
	}
}

func TestTrimCPUSuffix(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkKernel/events-8":      "BenchmarkKernel/events",
		"BenchmarkKernel/delta-chain-2": "BenchmarkKernel/delta-chain",
		"BenchmarkPlain":                "BenchmarkPlain",
		"BenchmarkKernel/fanout-abc":    "BenchmarkKernel/fanout-abc",
	} {
		if got := trimCPUSuffix(in); got != want {
			t.Errorf("trimCPUSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMedianResistsOutliers(t *testing.T) {
	if got := median([]float64{70, 71, 5000}); got != 71 {
		t.Errorf("median = %v, want 71 (one noisy run must not dominate)", got)
	}
	if got := median([]float64{10, 20}); got != 15 {
		t.Errorf("even median = %v, want 15", got)
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	report, failed := compare(mustParse(t, baseOut), mustParse(t, headOut), 10)
	if failed {
		t.Fatalf("improvement flagged as regression:\n%s", report)
	}
	for _, want := range []string{"new", "gone", "ok:"} {
		if !strings.Contains(report, want) {
			t.Errorf("report lacks %q:\n%s", want, report)
		}
	}
}

func TestCompareRegressionFails(t *testing.T) {
	// Head slower than base by far more than 10%: swap the fixtures.
	report, failed := compare(mustParse(t, headOut), mustParse(t, baseOut), 10)
	if !failed {
		t.Fatalf("4x slowdown not flagged:\n%s", report)
	}
	if !strings.Contains(report, "REGRESSION") {
		t.Errorf("report lacks REGRESSION marker:\n%s", report)
	}
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	base := map[string][]float64{"BenchmarkX": {100}}
	head := map[string][]float64{"BenchmarkX": {109}}
	if report, failed := compare(base, head, 10); failed {
		t.Fatalf("9%% slowdown must pass a 10%% gate:\n%s", report)
	}
	head["BenchmarkX"] = []float64{111}
	if report, failed := compare(base, head, 10); !failed {
		t.Fatalf("11%% slowdown must fail a 10%% gate:\n%s", report)
	}
}

func TestCompareNoSharedBenchmarksPasses(t *testing.T) {
	base := map[string][]float64{"BenchmarkOld": {100}}
	head := map[string][]float64{"BenchmarkNew": {100}}
	report, failed := compare(base, head, 10)
	if failed {
		t.Fatal("disjoint benchmark sets must not gate")
	}
	if !strings.Contains(report, "nothing to gate") {
		t.Errorf("report must say nothing was gated:\n%s", report)
	}
}

func TestParseDetectsSuiteFailure(t *testing.T) {
	for name, out := range map[string]string{
		"fail line": "BenchmarkKernel/events-8 100 70.0 ns/op\nFAIL\tahbpower/internal/sim\t1.2s\n",
		"test fail": "--- FAIL: TestSomething (0.00s)\nFAIL\n",
		"panic":     "panic: runtime error: index out of range\n",
	} {
		_, errored, err := parse(strings.NewReader(out))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !errored {
			t.Errorf("%s: failure marker not detected", name)
		}
	}
	if _, errored, _ := parse(strings.NewReader(headOut)); errored {
		t.Error("clean output flagged as errored")
	}
}

func TestHeadSuiteErrorDistinguishesRemovedFromErrored(t *testing.T) {
	base := map[string][]float64{"BenchmarkOld": {100}}
	// Benchmark removed, head otherwise healthy: informational only.
	if msg, errored := headSuiteError(base, map[string][]float64{"BenchmarkNew": {50}}, false); errored {
		t.Errorf("healthy head with a removed benchmark must not gate: %s", msg)
	}
	// Failure markers in the head output: gate.
	if _, errored := headSuiteError(base, map[string][]float64{"BenchmarkNew": {50}}, true); !errored {
		t.Error("head with FAIL markers must gate")
	}
	// Head produced nothing at all while base had benchmarks: gate.
	if _, errored := headSuiteError(base, map[string][]float64{}, false); !errored {
		t.Error("empty head against a non-empty base must gate")
	}
	// Both sides empty (base predates the suite): vacuous pass.
	if _, errored := headSuiteError(map[string][]float64{}, map[string][]float64{}, false); errored {
		t.Error("empty-vs-empty must not gate")
	}
}

func TestSpeedupFlagParsing(t *testing.T) {
	var f speedupFlag
	if err := f.Set("lanes:10x,compiled:1.5x"); err != nil {
		t.Fatal(err)
	}
	if len(f) != 2 || f[0] != (speedupReq{"lanes", 10}) || f[1] != (speedupReq{"compiled", 1.5}) {
		t.Errorf("parsed %+v", f)
	}
	for _, bad := range []string{"lanes", "lanes:10", ":10x", "lanes:0x", "lanes:-2x"} {
		var g speedupFlag
		if err := g.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
}

func TestCheckSpeedupsPairsSiblings(t *testing.T) {
	head := map[string][]float64{
		"BenchmarkLaneSweep/lanes/sweep":    {100, 110, 105},
		"BenchmarkLaneSweep/compiled/sweep": {300, 330, 315},
		"BenchmarkLaneBare/lanes/bare":      {80},
	}
	// 3x measured: a 2x requirement passes, a 10x requirement fails.
	report, failed := checkSpeedups(head, []speedupReq{{"lanes", 2}})
	if failed {
		t.Fatalf("3x speedup must satisfy a 2x floor:\n%s", report)
	}
	if !strings.Contains(report, "3.00x") {
		t.Errorf("report lacks measured ratio:\n%s", report)
	}
	report, failed = checkSpeedups(head, []speedupReq{{"lanes", 10}})
	if !failed || !strings.Contains(report, "FAIL") {
		t.Errorf("3x speedup must fail a 10x floor:\n%s", report)
	}
}

func TestCheckSpeedupsFailsWithoutPair(t *testing.T) {
	// No sibling differing only in the labeled segment: the assertion must
	// fail rather than pass vacuously.
	head := map[string][]float64{"BenchmarkLaneBare/lanes/bare": {80}}
	if report, failed := checkSpeedups(head, []speedupReq{{"lanes", 2}}); !failed {
		t.Fatalf("missing pair must fail the assertion:\n%s", report)
	}
	if report, failed := checkSpeedups(map[string][]float64{}, []speedupReq{{"lanes", 2}}); !failed {
		t.Fatalf("empty head must fail the assertion:\n%s", report)
	}
}
