package main

import (
	"strings"
	"testing"
)

const baseOut = `goos: linux
goarch: amd64
pkg: ahbpower/internal/sim
BenchmarkKernel/events-8         	 4000000	       291.0 ns/op	      24 B/op	       1 allocs/op
BenchmarkKernel/events-8         	 4100000	       289.0 ns/op	      24 B/op	       1 allocs/op
BenchmarkKernel/events-8         	 3900000	       295.0 ns/op	      24 B/op	       1 allocs/op
BenchmarkKernel/clock-fanout-16-8	 1000000	      1474 ns/op
BenchmarkOldOnly-8               	 1000000	      1000 ns/op
PASS
`

const headOut = `goos: linux
goarch: amd64
pkg: ahbpower/internal/sim
BenchmarkKernel/events-8         	17000000	        70.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkKernel/events-8         	17100000	        71.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkKernel/events-8         	16900000	        69.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkKernel/clock-fanout-16-8	 5000000	       247 ns/op
BenchmarkNewOnly-8               	 1000000	       500 ns/op
PASS
`

func mustParse(t *testing.T, s string) map[string][]float64 {
	t.Helper()
	m, err := parse(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParseCollectsSamplesPerName(t *testing.T) {
	m := mustParse(t, baseOut)
	if got := len(m["BenchmarkKernel/events"]); got != 3 {
		t.Errorf("events samples = %d, want 3 (repeated -count runs collected)", got)
	}
	if got := m["BenchmarkKernel/clock-fanout-16"]; len(got) != 1 || got[0] != 1474 {
		t.Errorf("clock-fanout sample = %v, want [1474]", got)
	}
	if _, ok := m["BenchmarkKernel/events-8"]; ok {
		t.Error("CPU suffix must be trimmed from benchmark names")
	}
}

func TestTrimCPUSuffix(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkKernel/events-8":      "BenchmarkKernel/events",
		"BenchmarkKernel/delta-chain-2": "BenchmarkKernel/delta-chain",
		"BenchmarkPlain":                "BenchmarkPlain",
		"BenchmarkKernel/fanout-abc":    "BenchmarkKernel/fanout-abc",
	} {
		if got := trimCPUSuffix(in); got != want {
			t.Errorf("trimCPUSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMedianResistsOutliers(t *testing.T) {
	if got := median([]float64{70, 71, 5000}); got != 71 {
		t.Errorf("median = %v, want 71 (one noisy run must not dominate)", got)
	}
	if got := median([]float64{10, 20}); got != 15 {
		t.Errorf("even median = %v, want 15", got)
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	report, failed := compare(mustParse(t, baseOut), mustParse(t, headOut), 10)
	if failed {
		t.Fatalf("improvement flagged as regression:\n%s", report)
	}
	for _, want := range []string{"new", "gone", "ok:"} {
		if !strings.Contains(report, want) {
			t.Errorf("report lacks %q:\n%s", want, report)
		}
	}
}

func TestCompareRegressionFails(t *testing.T) {
	// Head slower than base by far more than 10%: swap the fixtures.
	report, failed := compare(mustParse(t, headOut), mustParse(t, baseOut), 10)
	if !failed {
		t.Fatalf("4x slowdown not flagged:\n%s", report)
	}
	if !strings.Contains(report, "REGRESSION") {
		t.Errorf("report lacks REGRESSION marker:\n%s", report)
	}
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	base := map[string][]float64{"BenchmarkX": {100}}
	head := map[string][]float64{"BenchmarkX": {109}}
	if report, failed := compare(base, head, 10); failed {
		t.Fatalf("9%% slowdown must pass a 10%% gate:\n%s", report)
	}
	head["BenchmarkX"] = []float64{111}
	if report, failed := compare(base, head, 10); !failed {
		t.Fatalf("11%% slowdown must fail a 10%% gate:\n%s", report)
	}
}

func TestCompareNoSharedBenchmarksPasses(t *testing.T) {
	base := map[string][]float64{"BenchmarkOld": {100}}
	head := map[string][]float64{"BenchmarkNew": {100}}
	report, failed := compare(base, head, 10)
	if failed {
		t.Fatal("disjoint benchmark sets must not gate")
	}
	if !strings.Contains(report, "nothing to gate") {
		t.Errorf("report must say nothing was gated:\n%s", report)
	}
}
