package charact

import (
	"math"
	"strings"
	"testing"

	"ahbpower/internal/power"
)

func tech() power.Tech { return power.Tech{VDD: 1.8, CPD: 20e-15, CO: 50e-15} }

func TestCharacterizeDecoderFitsWell(t *testing.T) {
	fit, err := CharacterizeDecoder(8, 2000, 1, tech())
	if err != nil {
		t.Fatal(err)
	}
	if fit.Samples != 2000 {
		t.Errorf("samples=%d", fit.Samples)
	}
	if fit.R2 < 0.8 {
		t.Errorf("R2=%v, want a strongly linear relationship", fit.R2)
	}
	if len(fit.Coef) != 2 {
		t.Fatalf("coef=%v", fit.Coef)
	}
	if fit.Coef[0] <= 0 {
		t.Errorf("HD coefficient=%g, must be positive", fit.Coef[0])
	}
	// The fitted model must track gate level at least as well as the
	// a-priori formula.
	if fit.FitMAPE > fit.ModelMAPE+1e-9 {
		t.Errorf("fit MAPE %v worse than a-priori %v", fit.FitMAPE, fit.ModelMAPE)
	}
}

func TestCharacterizeDecoderPaperFormulaReasonable(t *testing.T) {
	// The paper's closed form must stay within a factor-level error of the
	// gate-level truth (it is an approximation, not an exact law).
	fit, err := CharacterizeDecoder(4, 1500, 2, tech())
	if err != nil {
		t.Fatal(err)
	}
	if fit.ModelMAPE > 400 {
		t.Errorf("a-priori decoder model MAPE=%v%%, implausibly bad", fit.ModelMAPE)
	}
}

func TestCharacterizeMux(t *testing.T) {
	fit, fitted, err := CharacterizeMux(8, 4, 3000, 3, tech())
	if err != nil {
		t.Fatal(err)
	}
	if fit.R2 < 0.7 {
		t.Errorf("R2=%v", fit.R2)
	}
	if len(fit.Coef) != 3 {
		t.Fatalf("coef=%v", fit.Coef)
	}
	for i, c := range fit.Coef {
		if c <= 0 {
			t.Errorf("coefficient %s=%g, must be positive", fit.Features[i], c)
		}
	}
	if fitted.CIn <= 0 || fitted.CSel <= 0 || fitted.COut <= 0 {
		t.Error("fitted capacitances must be positive")
	}
	// Select re-steer must be the most expensive per unit HD, as the
	// macromodel assumes.
	if fitted.CSel <= fitted.CIn {
		t.Errorf("CSel=%g must exceed CIn=%g", fitted.CSel, fitted.COut)
	}
}

func TestCharacterizeMuxFittedBeatsDefault(t *testing.T) {
	fit, _, err := CharacterizeMux(16, 3, 3000, 4, tech())
	if err != nil {
		t.Fatal(err)
	}
	if fit.FitMAPE > fit.ModelMAPE+1e-9 {
		t.Errorf("fitted MAPE %v must be <= default-model MAPE %v", fit.FitMAPE, fit.ModelMAPE)
	}
}

func TestCharacterizeArbiter(t *testing.T) {
	fit, err := CharacterizeArbiter(4, 2000, 5, tech())
	if err != nil {
		t.Fatal(err)
	}
	if fit.R2 < 0.5 {
		t.Errorf("R2=%v", fit.R2)
	}
	if len(fit.Coef) != 3 {
		t.Fatalf("coef=%v", fit.Coef)
	}
	// Grant changes move flops and outputs: coefficient must be positive.
	if fit.Coef[1] <= 0 {
		t.Errorf("HD_GRANT coefficient=%g", fit.Coef[1])
	}
}

func TestCharacterizeDeterministic(t *testing.T) {
	a, err := CharacterizeDecoder(4, 500, 7, tech())
	if err != nil {
		t.Fatal(err)
	}
	b, err := CharacterizeDecoder(4, 500, 7, tech())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Coef {
		if math.Abs(a.Coef[i]-b.Coef[i]) > 1e-21 {
			t.Error("same seed must give identical fits")
		}
	}
}

func TestCharacterizeErrors(t *testing.T) {
	if _, err := CharacterizeDecoder(1, 100, 1, tech()); err == nil {
		t.Error("bad decoder size must fail")
	}
	if _, _, err := CharacterizeMux(0, 4, 100, 1, tech()); err == nil {
		t.Error("bad mux size must fail")
	}
	if _, err := CharacterizeArbiter(1, 100, 1, tech()); err == nil {
		t.Error("bad arbiter size must fail")
	}
}

func TestFitString(t *testing.T) {
	fit, err := CharacterizeDecoder(4, 300, 9, tech())
	if err != nil {
		t.Fatal(err)
	}
	if s := fit.String(); len(s) == 0 {
		t.Error("empty summary")
	}
}

func TestFitBusModels(t *testing.T) {
	m, err := FitBusModels(3, 3, 32, 1500, 21, tech())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Dec.CHD <= 0 {
		t.Error("decoder must carry a fitted HD coefficient")
	}
	if m.M2S.CIn <= 0 || m.M2S.CSel <= 0 || m.M2S.COut <= 0 {
		t.Error("M2S must carry fitted coefficients")
	}
	if m.S2M.CIn <= 0 {
		t.Error("S2M must carry fitted coefficients")
	}
	if m.M2S.W != 72 {
		t.Errorf("M2S width=%d, want 72 (32 addr + 8 ctrl + 32 data)", m.M2S.W)
	}
	// The select coefficient was fitted at 16 bits and rescaled to the
	// full 72-bit width, so it must exceed the raw 16-bit fit.
	_, fitted16, err := CharacterizeMux(16, 3, 1500, 22, tech())
	if err != nil {
		t.Fatal(err)
	}
	if m.M2S.CSel <= fitted16.CSel {
		t.Errorf("CSel=%g must exceed the 16-bit fit %g after width scaling", m.M2S.CSel, fitted16.CSel)
	}
}

func TestFitBusModelsRoundTripThroughJSON(t *testing.T) {
	m, err := FitBusModels(2, 2, 32, 800, 5, tech())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := power.SaveModels(&sb, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := power.LoadModels(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Dec.Energy(1) != m.Dec.Energy(1) {
		t.Error("fitted decoder energy lost in serialization")
	}
}
