package charact

import (
	"testing"
)

// TestCharacterizeMatchesDeprecatedForm pins the API redesign: the
// config form and the deprecated positional form must produce identical
// model sets for the same parameters and seed.
func TestCharacterizeMatchesDeprecatedForm(t *testing.T) {
	cfg := Config{NumMasters: 2, NumSlaves: 2, DataWidth: 16, Vectors: 300, Seed: 7, Tech: tech()}
	a, err := Characterize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitBusModels(cfg.NumMasters, cfg.NumSlaves, cfg.DataWidth, cfg.Vectors, cfg.Seed, cfg.Tech)
	if err != nil {
		t.Fatal(err)
	}
	if *a.Dec != *b.Dec || *a.M2S != *b.M2S || *a.S2M != *b.S2M || *a.Arb != *b.Arb {
		t.Errorf("config form and positional form diverge:\n%+v\nvs\n%+v", a, b)
	}
}

func TestCharacterizeDefaults(t *testing.T) {
	// Zero DataWidth/Vectors/Tech take the documented defaults rather
	// than failing; only a degenerate bus shape is rejected.
	if _, err := Characterize(Config{NumSlaves: 1}); err == nil {
		t.Error("0 masters must be rejected")
	}
	if _, err := Characterize(Config{NumMasters: 1}); err == nil {
		t.Error("0 slaves must be rejected")
	}
	m, err := Characterize(Config{NumMasters: 1, NumSlaves: 1, Vectors: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.Dec == nil || m.M2S == nil || m.Arb == nil || m.S2M == nil {
		t.Errorf("incomplete model set: %+v", m)
	}
}

func TestCharacterizeDeterministicInSeed(t *testing.T) {
	cfg := Config{NumMasters: 2, NumSlaves: 3, DataWidth: 16, Vectors: 250, Seed: 11, Tech: tech()}
	a, err := Characterize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Characterize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *a.Dec != *b.Dec || *a.M2S != *b.M2S {
		t.Error("same seed must reproduce identical coefficients")
	}
	cfg.Seed = 12
	c, err := Characterize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *a.Dec == *c.Dec && *a.M2S == *c.M2S {
		t.Error("different seed produced identical fits — seed is ignored")
	}
}
