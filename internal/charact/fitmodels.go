package charact

import (
	"ahbpower/internal/power"
)

// FitBusModels characterizes all four sub-blocks of a bus configuration
// at gate level and returns a complete, serializable model set: the
// decoder and both multiplexers carry fitted coefficients, the arbiter
// keeps its structural FSM coefficients (its CActive term is behavioral,
// not structural — see power.ArbiterModel). This is the full
// IP-characterization deliverable of the paper's §3: run once per
// configuration, save with power.SaveModels, reuse everywhere.
//
// The mux netlists are characterized at a reduced width (16 bits) for
// tractability and the linear-in-w coefficients rescaled, exploiting the
// macromodel's linearity in the datapath width.
func FitBusModels(numMasters, numSlaves, dataWidth, vectors int, seed int64, tech power.Tech) (*power.Models, error) {
	models, err := power.DefaultModels(numMasters, numSlaves, dataWidth, tech)
	if err != nil {
		return nil, err
	}

	// Decoder: fit CHD / CEvent directly at full size.
	decFit, err := CharacterizeDecoder(models.Dec.NO, vectors, seed, tech)
	if err != nil {
		return nil, err
	}
	scale := tech.VDD * tech.VDD / 4
	models.Dec.CHD = decFit.Coef[0] / scale
	models.Dec.CEvent = decFit.Coef[1] / scale

	// Muxes: characterize a 16-bit-wide instance and scale the
	// width-proportional select coefficient; CIn and COut are per-bit and
	// carry over directly.
	const fitW = 16
	fitMux := func(target *power.MuxModel, muxSeed int64) error {
		_, fitted, err := CharacterizeMux(fitW, target.N, vectors, muxSeed, tech)
		if err != nil {
			return err
		}
		target.CIn = fitted.CIn
		target.COut = fitted.COut
		target.CSel = fitted.CSel * float64(target.W) / float64(fitW)
		return nil
	}
	if err := fitMux(models.M2S, seed+1); err != nil {
		return nil, err
	}
	if err := fitMux(models.S2M, seed+2); err != nil {
		return nil, err
	}
	return models, nil
}
