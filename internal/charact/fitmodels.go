package charact

import (
	"fmt"

	"ahbpower/internal/power"
)

// Config parameterizes a full gate-level bus characterization — the
// IP-characterization deliverable of the paper's §3, run once per bus
// shape and reused everywhere via power.SaveModels/LoadModels.
type Config struct {
	// NumMasters and NumSlaves describe the bus shape (required >= 1).
	NumMasters, NumSlaves int
	// DataWidth is the datapath width in bits (0 means 32).
	DataWidth int
	// Vectors is the number of random stimulus vectors per sub-block
	// (0 means 2000).
	Vectors int
	// Seed drives the stimulus generator; the same seed reproduces the
	// same fitted coefficients bit for bit.
	Seed int64
	// Tech supplies the technology constants (zero value means
	// power.DefaultTech).
	Tech power.Tech
}

// DefaultVectors is the stimulus count used when Config.Vectors is 0.
const DefaultVectors = 2000

// Characterize characterizes all four sub-blocks of a bus configuration
// at gate level and returns a complete, serializable model set: the
// decoder and both multiplexers carry fitted coefficients, the arbiter
// keeps its structural FSM coefficients (its CActive term is behavioral,
// not structural — see power.ArbiterModel).
//
// The mux netlists are characterized at a reduced width (16 bits) for
// tractability and the linear-in-w coefficients rescaled, exploiting the
// macromodel's linearity in the datapath width.
func Characterize(cfg Config) (*power.Models, error) {
	if cfg.NumMasters < 1 || cfg.NumSlaves < 1 {
		return nil, fmt.Errorf("charact: bus shape %dx%d, want at least 1x1", cfg.NumMasters, cfg.NumSlaves)
	}
	if cfg.DataWidth == 0 {
		cfg.DataWidth = 32
	}
	if cfg.Vectors == 0 {
		cfg.Vectors = DefaultVectors
	}
	if cfg.Tech.VDD == 0 {
		cfg.Tech = power.DefaultTech()
	}
	return fitBusModels(cfg.NumMasters, cfg.NumSlaves, cfg.DataWidth, cfg.Vectors, cfg.Seed, cfg.Tech)
}

// FitBusModels is the positional form of Characterize, retained for
// existing callers.
//
// Deprecated: use Characterize with a Config.
func FitBusModels(numMasters, numSlaves, dataWidth, vectors int, seed int64, tech power.Tech) (*power.Models, error) {
	return fitBusModels(numMasters, numSlaves, dataWidth, vectors, seed, tech)
}

func fitBusModels(numMasters, numSlaves, dataWidth, vectors int, seed int64, tech power.Tech) (*power.Models, error) {
	models, err := power.DefaultModels(numMasters, numSlaves, dataWidth, tech)
	if err != nil {
		return nil, err
	}

	// Decoder: fit CHD / CEvent directly at full size.
	decFit, err := CharacterizeDecoder(models.Dec.NO, vectors, seed, tech)
	if err != nil {
		return nil, err
	}
	scale := tech.VDD * tech.VDD / 4
	models.Dec.CHD = decFit.Coef[0] / scale
	models.Dec.CEvent = decFit.Coef[1] / scale

	// Muxes: characterize a 16-bit-wide instance and scale the
	// width-proportional select coefficient; CIn and COut are per-bit and
	// carry over directly.
	const fitW = 16
	fitMux := func(target *power.MuxModel, muxSeed int64) error {
		_, fitted, err := CharacterizeMux(fitW, target.N, vectors, muxSeed, tech)
		if err != nil {
			return err
		}
		target.CIn = fitted.CIn
		target.COut = fitted.COut
		target.CSel = fitted.CSel * float64(target.W) / float64(fitW)
		return nil
	}
	if err := fitMux(models.M2S, seed+1); err != nil {
		return nil, err
	}
	if err := fitMux(models.S2M, seed+2); err != nil {
		return nil, err
	}
	return models, nil
}
