// Package charact implements the IP-characterization stage of the paper's
// methodology (§3): it drives the gate-level netlists of the AHB
// sub-blocks (internal/synth) with controlled-activity vector streams,
// measures their switched-capacitance energy (internal/gate), fits the
// system-level macromodel coefficients by linear least squares, and
// reports how well the closed-form macromodels of internal/power track the
// gate-level reference — the role Berkeley SIS plays in the paper ("All
// these models were validated using the software SIS").
package charact

import (
	"fmt"
	"math/rand"

	"ahbpower/internal/gate"
	"ahbpower/internal/power"
	"ahbpower/internal/stats"
	"ahbpower/internal/synth"
)

// gateTech converts power-domain technology constants to the gate
// evaluator's.
func gateTech(t power.Tech) gate.Tech {
	return gate.Tech{VDD: t.VDD, CPD: t.CPD, COut: t.CO}
}

// Fit is the outcome of characterizing one block: fitted linear
// coefficients (joules per unit Hamming distance), goodness of fit, and
// the error of the a-priori macromodel against the gate-level reference.
type Fit struct {
	Block     string
	Features  []string
	Coef      []float64 // joules per unit of each feature
	R2        float64   // of the fitted linear model
	FitMAPE   float64   // mean abs % error of the fitted model
	ModelMAPE float64   // mean abs % error of the a-priori macromodel
	Samples   int
}

// String summarizes the fit.
func (f *Fit) String() string {
	return fmt.Sprintf("%s: R2=%.4f fitMAPE=%.1f%% modelMAPE=%.1f%% over %d samples",
		f.Block, f.R2, f.FitMAPE, f.ModelMAPE, f.Samples)
}

// sampleSet accumulates (features, energy) observations and fits them.
type sampleSet struct {
	x [][]float64
	y []float64
}

func (s *sampleSet) add(features []float64, energy float64) {
	s.x = append(s.x, features)
	s.y = append(s.y, energy)
}

func (s *sampleSet) fit() ([]float64, float64, float64, error) {
	beta, err := stats.LeastSquares(s.x, s.y)
	if err != nil {
		return nil, 0, 0, err
	}
	pred := make([]float64, len(s.y))
	for i, row := range s.x {
		for j, b := range beta {
			pred[i] += b * row[j]
		}
	}
	return beta, stats.RSquared(s.y, pred), stats.MeanAbsPctError(s.y, pred), nil
}

// CharacterizeDecoder fits the decoder macromodel against the gate-level
// one-hot decoder with nOut outputs over nVectors random input
// transitions.
func CharacterizeDecoder(nOut, nVectors int, seed int64, tech power.Tech) (*Fit, error) {
	dec, err := synth.BuildDecoder(nOut)
	if err != nil {
		return nil, err
	}
	ev, err := gate.NewEval(dec.Netlist, gateTech(tech))
	if err != nil {
		return nil, err
	}
	model, err := power.NewDecoderModel(nOut, tech)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	// A one-bit decoder input (n_O = 2) makes HD_IN and the change
	// indicator collinear, so the event feature is dropped there.
	twoFeatures := dec.NI > 1
	// Warm up to a defined state.
	ev.SetInputs(0)
	ev.Settle()
	prev := uint64(0)
	var set sampleSet
	var modelPred, truth []float64
	for v := 0; v < nVectors; v++ {
		in := uint64(rng.Intn(nOut))
		before := ev.Energy()
		ev.SetInputs(in)
		ev.Settle()
		e := ev.Energy() - before
		hd := stats.Hamming(prev, in)
		if twoFeatures {
			event := 0.0
			if hd > 0 {
				event = 1
			}
			set.add([]float64{float64(hd), event}, e)
		} else {
			set.add([]float64{float64(hd)}, e)
		}
		modelPred = append(modelPred, model.Energy(hd))
		truth = append(truth, e)
		prev = in
	}
	coef, r2, mape, err := set.fit()
	if err != nil {
		return nil, err
	}
	features := []string{"HD_IN", "changed"}
	if !twoFeatures {
		coef = append(coef, 0) // no separate event term
		features = []string{"HD_IN", "changed(zero)"}
	}
	return &Fit{
		Block:     fmt.Sprintf("decoder(nO=%d)", nOut),
		Features:  features,
		Coef:      coef,
		R2:        r2,
		FitMAPE:   mape,
		ModelMAPE: stats.MeanAbsPctError(truth, modelPred),
		Samples:   nVectors,
	}, nil
}

// CharacterizeMux fits the mux macromodel against the gate-level w-bit n:1
// AND-OR multiplexer. The stimulus mixes data-only steps, select-only
// steps and combined steps so all three coefficients are identifiable.
func CharacterizeMux(w, n, nVectors int, seed int64, tech power.Tech) (*Fit, *power.MuxModel, error) {
	mx, err := synth.BuildMux(w, n)
	if err != nil {
		return nil, nil, err
	}
	ev, err := gate.NewEval(mx.Netlist, gateTech(tech))
	if err != nil {
		return nil, nil, err
	}
	model, err := power.NewMuxModel(w, n, tech)
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	words := make([]uint64, n)
	sel := 0
	mask := stats.Mask(w)

	applyAll := func() {
		for i, word := range words {
			for b := 0; b < w; b++ {
				ev.SetInput(mx.Data[i][b], word&(1<<uint(b)) != 0)
			}
		}
		for b := range mx.Sel {
			ev.SetInput(mx.Sel[b], sel&(1<<uint(b)) != 0)
		}
		ev.Settle()
	}
	applyAll()
	prevOut := ev.OutputBits()

	var set sampleSet
	var modelPred, truth []float64
	for v := 0; v < nVectors; v++ {
		hdIn := 0
		hdSel := 0
		switch rng.Intn(3) {
		case 0: // data step: flip random bits of a random word
			i := rng.Intn(n)
			old := words[i]
			words[i] = rng.Uint64() & mask
			hdIn = stats.Hamming(old, words[i])
		case 1: // select step
			old := sel
			sel = rng.Intn(n)
			hdSel = stats.Hamming(uint64(old), uint64(sel))
		default: // combined
			i := rng.Intn(n)
			old := words[i]
			flip := uint64(1) << uint(rng.Intn(w))
			words[i] ^= flip
			hdIn = stats.Hamming(old, words[i])
			oldSel := sel
			sel = rng.Intn(n)
			hdSel = stats.Hamming(uint64(oldSel), uint64(sel))
		}
		before := ev.Energy()
		applyAll()
		e := ev.Energy() - before
		out := ev.OutputBits()
		hdOut := stats.Hamming(prevOut, out)
		prevOut = out
		set.add([]float64{float64(hdIn), float64(hdSel), float64(hdOut)}, e)
		modelPred = append(modelPred, model.Energy(hdIn, hdSel, hdOut))
		truth = append(truth, e)
	}
	coef, r2, mape, err := set.fit()
	if err != nil {
		return nil, nil, err
	}
	fitted := *model
	scale := tech.VDD * tech.VDD / 4
	fitted.CIn = coef[0] / scale
	fitted.CSel = coef[1] / scale
	fitted.COut = coef[2] / scale
	return &Fit{
		Block:     fmt.Sprintf("mux(w=%d,n=%d)", w, n),
		Features:  []string{"HD_IN", "HD_SEL", "HD_OUT"},
		Coef:      coef,
		R2:        r2,
		FitMAPE:   mape,
		ModelMAPE: stats.MeanAbsPctError(truth, modelPred),
		Samples:   nVectors,
	}, &fitted, nil
}

// CharacterizeArbiter fits a request/grant activity model against the
// gate-level priority-arbiter FSM.
func CharacterizeArbiter(n, nVectors int, seed int64, tech power.Tech) (*Fit, error) {
	arb, err := synth.BuildArbiter(n)
	if err != nil {
		return nil, err
	}
	ev, err := gate.NewEval(arb.Netlist, gateTech(tech))
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	req := uint64(0)
	ev.SetInputs(req)
	ev.Settle()
	ev.ClockTick()
	prevGrant := ev.OutputBits()

	var set sampleSet
	for v := 0; v < nVectors; v++ {
		old := req
		if rng.Intn(2) == 0 {
			req ^= 1 << uint(rng.Intn(n))
		} else {
			req = uint64(rng.Intn(1 << uint(n)))
		}
		hdReq := stats.Hamming(old, req)
		before := ev.Energy()
		ev.SetInputs(req)
		ev.Settle()
		ev.ClockTick()
		e := ev.Energy() - before
		grant := ev.OutputBits()
		// One-hot grants toggle in pairs, so HD_GRANT is 0 or 2 and would
		// be collinear with a handover indicator; keep only HD_GRANT.
		hdGrant := stats.Hamming(prevGrant, grant)
		prevGrant = grant
		set.add([]float64{float64(hdReq), float64(hdGrant), 1}, e)
	}
	coef, r2, mape, err := set.fit()
	if err != nil {
		return nil, err
	}
	return &Fit{
		Block:     fmt.Sprintf("arbiter(n=%d)", n),
		Features:  []string{"HD_REQ", "HD_GRANT", "base"},
		Coef:      coef,
		R2:        r2,
		FitMAPE:   mape,
		ModelMAPE: mape, // the fitted model IS the macromodel for the FSM
		Samples:   nVectors,
	}, nil
}
