package apb

import (
	"testing"

	"ahbpower/internal/amba/ahb"
	"ahbpower/internal/sim"
)

// apbSystem is an AHB with slave 0 = memory, slave 1 = APB bridge with a
// register block and a timer behind it.
type apbSystem struct {
	k      *sim.Kernel
	ahbBus *ahb.Bus
	apbBus *Bus
	m      *ahb.Master
	bridge *Bridge
	regs   *RegisterBlock
	timer  *Timer
	mon    *ahb.Monitor
}

func newAPBSystem(t *testing.T) *apbSystem {
	t.Helper()
	k := sim.NewKernel()
	ahbBus, err := ahb.New(k, ahb.Config{
		NumMasters: 1,
		NumSlaves:  2,
		Regions: []ahb.Region{
			{Start: 0x0000, Size: 0x1000, Slave: 0},
			{Start: 0x1000, Size: 0x1000, Slave: 1},
		},
		ClockPeriod: 10 * sim.Nanosecond,
		DataWidth:   32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ahb.NewMemorySlave(ahbBus, 0, 0); err != nil {
		t.Fatal(err)
	}
	apbBus, err := NewBus(k, Config{
		NumSel: 2,
		Regions: []Region{
			{Start: 0x1000, Size: 0x100, Sel: 0},
			{Start: 0x1100, Size: 0x100, Sel: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	bridge, err := NewBridge(ahbBus, 1, apbBus)
	if err != nil {
		t.Fatal(err)
	}
	regs, err := NewRegisterBlock(apbBus, 0, 0x1000, 8)
	if err != nil {
		t.Fatal(err)
	}
	regs.AttachClock(ahbBus.Clk)
	timer, err := NewTimer(apbBus, 1, 0x1100, ahbBus.Clk)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ahb.NewMaster(ahbBus, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.KeepResults(true)
	return &apbSystem{
		k: k, ahbBus: ahbBus, apbBus: apbBus, m: m,
		bridge: bridge, regs: regs, timer: timer,
		mon: ahb.NewMonitor(ahbBus),
	}
}

func (s *apbSystem) run(t *testing.T, cycles uint64) {
	t.Helper()
	if err := s.k.RunCycles(s.ahbBus.Clk, cycles); err != nil {
		t.Fatal(err)
	}
	for _, e := range s.mon.Errors() {
		t.Errorf("protocol violation: %v", e)
	}
}

func TestConfigValidation(t *testing.T) {
	k := sim.NewKernel()
	if _, err := NewBus(k, Config{NumSel: 0}); err == nil {
		t.Error("NumSel=0 must fail")
	}
	if _, err := NewBus(k, Config{NumSel: 2, Regions: []Region{{Start: 0, Size: 0, Sel: 0}}}); err == nil {
		t.Error("zero-size region must fail")
	}
	if _, err := NewBus(k, Config{NumSel: 2, Regions: []Region{{Start: 0, Size: 4, Sel: 5}}}); err == nil {
		t.Error("out-of-range sel must fail")
	}
}

func TestBridgeWriteReadRegister(t *testing.T) {
	s := newAPBSystem(t)
	s.m.Enqueue(ahb.Sequence{Ops: []ahb.Op{
		{Kind: ahb.OpWrite, Addr: 0x1008, Data: []uint32{0xABCD1234}},
		{Kind: ahb.OpRead, Addr: 0x1008},
	}})
	s.run(t, 60)
	if !s.m.Done() {
		t.Fatal("master must complete")
	}
	res := s.m.Results()
	if len(res) != 2 {
		t.Fatalf("results=%d, want 2", len(res))
	}
	if res[0].Resp != ahb.RespOkay || res[1].Resp != ahb.RespOkay {
		t.Fatalf("responses: %+v", res)
	}
	if s.regs.Peek(2) != 0xABCD1234 {
		t.Errorf("reg[2]=%#x, want 0xABCD1234", s.regs.Peek(2))
	}
	if res[1].Data != 0xABCD1234 {
		t.Errorf("read=%#x, want 0xABCD1234", res[1].Data)
	}
	if s.bridge.Accesses != 2 {
		t.Errorf("bridge accesses=%d, want 2", s.bridge.Accesses)
	}
	if s.apbBus.Transfers != 2 {
		t.Errorf("apb transfers=%d, want 2", s.apbBus.Transfers)
	}
}

func TestBridgeTakesTwoWaitStates(t *testing.T) {
	s := newAPBSystem(t)
	s.m.Enqueue(ahb.Sequence{Ops: []ahb.Op{
		{Kind: ahb.OpWrite, Addr: 0x1000, Data: []uint32{1}},
	}})
	s.run(t, 40)
	if s.m.Stats().WaitCycle < 2 {
		t.Errorf("wait cycles=%d, want >=2 (SETUP+ENABLE)", s.m.Stats().WaitCycle)
	}
}

func TestBridgeUnmappedAPBAddressErrors(t *testing.T) {
	s := newAPBSystem(t)
	// 0x1F00 is behind the bridge on AHB but outside both APB regions.
	s.m.Enqueue(ahb.Sequence{Ops: []ahb.Op{
		{Kind: ahb.OpWrite, Addr: 0x1F00, Data: []uint32{1}},
	}})
	s.run(t, 40)
	res := s.m.Results()
	if len(res) != 1 || res[0].Resp != ahb.RespError {
		t.Fatalf("results=%+v, want one ERROR", res)
	}
	if s.bridge.Errors != 1 {
		t.Errorf("bridge errors=%d, want 1", s.bridge.Errors)
	}
}

func TestMultipleRegisters(t *testing.T) {
	s := newAPBSystem(t)
	var ops []ahb.Op
	for i := 0; i < 4; i++ {
		ops = append(ops, ahb.Op{Kind: ahb.OpWrite, Addr: uint32(0x1000 + 4*i), Data: []uint32{uint32(0x100 + i)}})
	}
	for i := 0; i < 4; i++ {
		ops = append(ops, ahb.Op{Kind: ahb.OpRead, Addr: uint32(0x1000 + 4*i)})
	}
	s.m.Enqueue(ahb.Sequence{Ops: ops})
	s.run(t, 120)
	res := s.m.Results()
	if len(res) != 8 {
		t.Fatalf("results=%d, want 8", len(res))
	}
	for i := 0; i < 4; i++ {
		if s.regs.Peek(i) != uint32(0x100+i) {
			t.Errorf("reg[%d]=%#x", i, s.regs.Peek(i))
		}
		if res[4+i].Data != uint32(0x100+i) {
			t.Errorf("read[%d]=%#x, want %#x", i, res[4+i].Data, 0x100+i)
		}
	}
}

func TestTimerCounts(t *testing.T) {
	s := newAPBSystem(t)
	s.run(t, 50)
	if s.timer.Count() < 40 {
		t.Errorf("timer=%d, want ~50", s.timer.Count())
	}
	// Read the timer over the bus; it returns a recent (slightly stale)
	// count, which must be positive and below the current count.
	s.m.Enqueue(ahb.Sequence{Ops: []ahb.Op{{Kind: ahb.OpRead, Addr: 0x1100}}})
	s.run(t, 30)
	res := s.m.Results()
	if len(res) != 1 {
		t.Fatalf("results=%d", len(res))
	}
	if res[0].Data == 0 || res[0].Data > s.timer.Count() {
		t.Errorf("timer read=%d, current=%d", res[0].Data, s.timer.Count())
	}
}

func TestMixedAHBAndAPBTraffic(t *testing.T) {
	s := newAPBSystem(t)
	s.m.Enqueue(ahb.Sequence{Ops: []ahb.Op{
		{Kind: ahb.OpWrite, Addr: 0x0010, Data: []uint32{0xAA}}, // AHB memory
		{Kind: ahb.OpWrite, Addr: 0x1004, Data: []uint32{0xBB}}, // APB reg
		{Kind: ahb.OpRead, Addr: 0x0010},
		{Kind: ahb.OpRead, Addr: 0x1004},
	}})
	s.run(t, 80)
	res := s.m.Results()
	if len(res) != 4 {
		t.Fatalf("results=%d, want 4", len(res))
	}
	if res[2].Data != 0xAA {
		t.Errorf("AHB read=%#x", res[2].Data)
	}
	if res[3].Data != 0xBB {
		t.Errorf("APB read=%#x", res[3].Data)
	}
}

func TestBadBridgeAndPeripheralIndexes(t *testing.T) {
	s := newAPBSystem(t)
	if _, err := NewBridge(s.ahbBus, 9, s.apbBus); err == nil {
		t.Error("bad bridge index must fail")
	}
	if _, err := NewRegisterBlock(s.apbBus, 9, 0, 4); err == nil {
		t.Error("bad sel must fail")
	}
	if _, err := NewRegisterBlock(s.apbBus, 0, 0, 0); err == nil {
		t.Error("empty register block must fail")
	}
}
