// Package apb models the AMBA Advanced Peripheral Bus and the AHB-to-APB
// bridge. An AMBA-based architecture (paper §5) pairs the high-performance
// AHB with a low-bandwidth APB behind a bridge, where most peripherals
// live; this package provides that tier so full-SoC power exploration can
// span both busses.
//
// The APB protocol is the two-phase rev 2.0 scheme: a SETUP cycle (PSEL
// asserted, PENABLE low) followed by an ENABLE cycle (PENABLE high) in
// which writes commit and reads return data.
package apb

import (
	"fmt"

	"ahbpower/internal/amba/ahb"
	"ahbpower/internal/sim"
)

// Region maps an APB address range to a peripheral select index.
type Region struct {
	Start uint32
	Size  uint32
	Sel   int
}

// Config describes an APB segment behind a bridge.
type Config struct {
	Name    string
	NumSel  int
	Regions []Region
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.NumSel < 1 || c.NumSel > 16 {
		return fmt.Errorf("apb: NumSel=%d, want 1..16", c.NumSel)
	}
	for i, r := range c.Regions {
		if r.Sel < 0 || r.Sel >= c.NumSel {
			return fmt.Errorf("apb: region %d maps to sel %d, out of range", i, r.Sel)
		}
		if r.Size == 0 {
			return fmt.Errorf("apb: region %d has zero size", i)
		}
	}
	return nil
}

// Bus is the APB signal fabric plus the decode map.
type Bus struct {
	Cfg Config
	K   *sim.Kernel

	PSel    []*sim.Signal[bool]
	PEnable *sim.Signal[bool]
	PAddr   *sim.Signal[uint32]
	PWrite  *sim.Signal[bool]
	PWdata  *sim.Signal[uint32]
	// PRdata is driven by the selected peripheral.
	PRdata *sim.Signal[uint32]

	// Transfers counts completed APB accesses (for power accounting).
	Transfers uint64
}

// NewBus creates the APB signal fabric.
func NewBus(k *sim.Kernel, cfg Config) (*Bus, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Name == "" {
		cfg.Name = "apb"
	}
	b := &Bus{Cfg: cfg, K: k}
	n := cfg.Name
	for s := 0; s < cfg.NumSel; s++ {
		b.PSel = append(b.PSel, sim.NewBool(k, fmt.Sprintf("%s.psel%d", n, s), false))
	}
	b.PEnable = sim.NewBool(k, n+".penable", false)
	b.PAddr = sim.NewSignal[uint32](k, n+".paddr", 0)
	b.PWrite = sim.NewBool(k, n+".pwrite", false)
	b.PWdata = sim.NewSignal[uint32](k, n+".pwdata", 0)
	b.PRdata = sim.NewSignal[uint32](k, n+".prdata", 0)
	return b, nil
}

// decode returns the select index for an address, or -1.
func (b *Bus) decode(addr uint32) int {
	for _, r := range b.Cfg.Regions {
		if addr >= r.Start && addr-r.Start < r.Size {
			return r.Sel
		}
	}
	return -1
}

// bridgeState is the AHB-side FSM of the bridge.
type bridgeState uint8

const (
	brIdle bridgeState = iota
	brSetup
	brEnable
	brDone
)

// Bridge is an AHB slave that converts AHB transfers into APB accesses.
// Each AHB transfer to the bridge takes two wait states (SETUP + ENABLE).
// Accesses to addresses no APB region claims complete with an AHB ERROR.
type Bridge struct {
	ahbBus *ahb.Bus
	apbBus *Bus
	idx    int

	state bridgeState
	cur   struct {
		addr  uint32
		write bool
		sel   int
	}
	errCycle bool

	Accesses uint64
	Errors   uint64
}

// NewBridge attaches a bridge on AHB slave port idx, fronting the given
// APB bus.
func NewBridge(ahbBus *ahb.Bus, idx int, apbBus *Bus) (*Bridge, error) {
	if idx < 0 || idx >= ahbBus.Cfg.NumSlaves {
		return nil, fmt.Errorf("apb: AHB slave index %d out of range", idx)
	}
	br := &Bridge{ahbBus: ahbBus, apbBus: apbBus, idx: idx}
	ahbBus.K.MethodNoInit(fmt.Sprintf("%s.bridge%d", ahbBus.Cfg.Name, idx), br.tick, ahbBus.Clk.Posedge())
	return br, nil
}

func (br *Bridge) ports() (ready *sim.Signal[bool], resp *sim.Signal[uint8], rdata *sim.Signal[uint32]) {
	return br.ahbBus.S[br.idx].ReadyOut, br.ahbBus.S[br.idx].Resp, br.ahbBus.S[br.idx].Rdata
}

func (br *Bridge) tick() {
	ready, resp, rdata := br.ports()
	a := br.apbBus
	hready := br.ahbBus.HReady.Read()

	switch br.state {
	case brSetup:
		// SETUP cycle ran; drive ENABLE for the next cycle. HWDATA was
		// valid during the SETUP cycle (the AHB data phase), so sample it
		// here for the peripheral to commit at ENABLE.
		if br.cur.write {
			a.PWdata.Write(br.ahbBus.HWdata.Read())
		}
		a.PEnable.Write(true)
		br.state = brEnable
		return
	case brEnable:
		// ENABLE cycle ran: the access completes now. Reads: forward the
		// peripheral's combinational PRDATA to the AHB side.
		if !br.cur.write {
			rdata.Write(a.PRdata.Read())
		}
		a.PEnable.Write(false)
		a.PSel[br.cur.sel].Write(false)
		a.Transfers++
		br.Accesses++
		ready.Write(true)
		resp.Write(ahb.RespOkay)
		br.state = brDone
		return
	case brDone:
		br.state = brIdle
	}

	if !hready {
		if br.errCycle {
			ready.Write(true) // second ERROR cycle
			br.errCycle = false
		}
		return
	}

	t := br.ahbBus.HTrans.Read()
	if br.ahbBus.Sel[br.idx].Read() && (t == ahb.TransNonseq || t == ahb.TransSeq) {
		addr := br.ahbBus.HAddr.Read()
		sel := a.decode(addr)
		if sel < 0 {
			br.Errors++
			ready.Write(false)
			resp.Write(ahb.RespError)
			br.errCycle = true
			return
		}
		br.cur.addr = addr
		br.cur.write = br.ahbBus.HWrite.Read()
		br.cur.sel = sel
		// Drive the SETUP cycle.
		a.PAddr.Write(addr)
		a.PWrite.Write(br.cur.write)
		a.PSel[sel].Write(true)
		a.PEnable.Write(false)
		ready.Write(false)
		resp.Write(ahb.RespOkay)
		br.state = brSetup
	} else {
		ready.Write(true)
		resp.Write(ahb.RespOkay)
	}
}

// RegisterBlock is an APB peripheral exposing a bank of 32-bit registers.
type RegisterBlock struct {
	bus  *Bus
	sel  int
	base uint32
	regs []uint32

	Reads  uint64
	Writes uint64
}

// NewRegisterBlock attaches a register bank of n words at the given select
// index and base address.
func NewRegisterBlock(b *Bus, sel int, base uint32, n int) (*RegisterBlock, error) {
	if sel < 0 || sel >= b.Cfg.NumSel {
		return nil, fmt.Errorf("apb: sel %d out of range", sel)
	}
	if n < 1 {
		return nil, fmt.Errorf("apb: register block needs >=1 register")
	}
	rb := &RegisterBlock{bus: b, sel: sel, base: base, regs: make([]uint32, n)}
	// Combinational read path.
	b.K.Method(fmt.Sprintf("%s.regs%d.read", b.Cfg.Name, sel), func() {
		if b.PSel[sel].Read() && !b.PWrite.Read() {
			b.PRdata.Write(rb.regs[rb.regIndex()])
		}
	}, b.PSel[sel].Changed(), b.PAddr.Changed(), b.PWrite.Changed())
	return rb, nil
}

func (rb *RegisterBlock) regIndex() int {
	off := int(rb.bus.PAddr.Read()-rb.base) >> 2
	if off < 0 || off >= len(rb.regs) {
		return 0
	}
	return off
}

// clockWrite commits a write during ENABLE; called by the bridge's owner
// via an explicit clocked process.
func (rb *RegisterBlock) clockWrite() {
	b := rb.bus
	if b.PSel[rb.sel].Read() && b.PEnable.Read() {
		if b.PWrite.Read() {
			rb.regs[rb.regIndex()] = b.PWdata.Read()
			rb.Writes++
		} else {
			rb.Reads++
		}
	}
}

// AttachClock registers the peripheral's write-commit process on an AHB
// clock (APB uses the same clock domain here).
func (rb *RegisterBlock) AttachClock(clk *sim.Clock) {
	rb.bus.K.MethodNoInit(fmt.Sprintf("%s.regs%d.wr", rb.bus.Cfg.Name, rb.sel), rb.clockWrite, clk.Posedge())
}

// Peek reads a register directly (for tests).
func (rb *RegisterBlock) Peek(i int) uint32 {
	if i < 0 || i >= len(rb.regs) {
		return 0
	}
	return rb.regs[i]
}

// Timer is an APB peripheral: a free-running counter readable at offset 0,
// with a compare register at offset 4.
type Timer struct {
	rb    *RegisterBlock
	count uint32
}

// NewTimer attaches a timer at the given select index and base address.
func NewTimer(b *Bus, sel int, base uint32, clk *sim.Clock) (*Timer, error) {
	rb, err := NewRegisterBlock(b, sel, base, 2)
	if err != nil {
		return nil, err
	}
	rb.AttachClock(clk)
	t := &Timer{rb: rb}
	b.K.MethodNoInit(fmt.Sprintf("%s.timer%d", b.Cfg.Name, sel), func() {
		t.count++
		t.rb.regs[0] = t.count
	}, clk.Posedge())
	return t, nil
}

// Count returns the current timer value.
func (t *Timer) Count() uint32 { return t.count }
