package ahb

import (
	"testing"
	"testing/quick"
)

func TestNames(t *testing.T) {
	if TransName(TransIdle) != "IDLE" || TransName(TransNonseq) != "NONSEQ" ||
		TransName(TransBusy) != "BUSY" || TransName(TransSeq) != "SEQ" {
		t.Error("HTRANS names")
	}
	if TransName(9) == "" {
		t.Error("unknown HTRANS must format")
	}
	if BurstName(BurstWrap8) != "WRAP8" || BurstName(BurstIncr16) != "INCR16" {
		t.Error("HBURST names")
	}
	if RespName(RespSplit) != "SPLIT" || RespName(RespOkay) != "OKAY" {
		t.Error("HRESP names")
	}
	if BurstName(99) == "" || RespName(99) == "" {
		t.Error("unknown values must format")
	}
}

func TestBurstBeats(t *testing.T) {
	cases := []struct {
		b    uint8
		want int
	}{
		{BurstSingle, 1}, {BurstIncr, 0},
		{BurstWrap4, 4}, {BurstIncr4, 4},
		{BurstWrap8, 8}, {BurstIncr8, 8},
		{BurstWrap16, 16}, {BurstIncr16, 16},
	}
	for _, c := range cases {
		if got := BurstBeats(c.b); got != c.want {
			t.Errorf("BurstBeats(%s)=%d, want %d", BurstName(c.b), got, c.want)
		}
	}
}

func TestIsWrap(t *testing.T) {
	for _, b := range []uint8{BurstWrap4, BurstWrap8, BurstWrap16} {
		if !IsWrap(b) {
			t.Errorf("%s must be wrap", BurstName(b))
		}
	}
	for _, b := range []uint8{BurstSingle, BurstIncr, BurstIncr4, BurstIncr8, BurstIncr16} {
		if IsWrap(b) {
			t.Errorf("%s must not be wrap", BurstName(b))
		}
	}
}

func TestSizeBytes(t *testing.T) {
	if SizeBytes(Size8) != 1 || SizeBytes(Size16) != 2 || SizeBytes(Size32) != 4 || SizeBytes(Size64) != 8 {
		t.Error("SizeBytes wrong")
	}
}

func TestNextBurstAddrIncr(t *testing.T) {
	if got := NextBurstAddr(0x100, BurstIncr4, Size32); got != 0x104 {
		t.Errorf("INCR4 next=%#x, want 0x104", got)
	}
	if got := NextBurstAddr(0x100, BurstIncr, Size16); got != 0x102 {
		t.Errorf("INCR h16 next=%#x, want 0x102", got)
	}
}

func TestNextBurstAddrWrap(t *testing.T) {
	// WRAP4 of word transfers wraps at a 16-byte boundary.
	addr := uint32(0x38)
	seq := []uint32{addr}
	for i := 0; i < 3; i++ {
		addr = NextBurstAddr(addr, BurstWrap4, Size32)
		seq = append(seq, addr)
	}
	want := []uint32{0x38, 0x3C, 0x30, 0x34}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("WRAP4 sequence %#x, want %#x", seq, want)
		}
	}
}

func TestNextBurstAddrWrap8(t *testing.T) {
	// WRAP8 halfword: wraps at 16-byte boundary.
	addr := uint32(0x1E)
	var seq []uint32
	for i := 0; i < 8; i++ {
		seq = append(seq, addr)
		addr = NextBurstAddr(addr, BurstWrap8, Size16)
	}
	want := []uint32{0x1E, 0x10, 0x12, 0x14, 0x16, 0x18, 0x1A, 0x1C}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("WRAP8 sequence %#x, want %#x", seq, want)
		}
	}
}

func TestWrapBurstStaysInBlock(t *testing.T) {
	// Property: a wrapping burst never leaves its aligned block.
	f := func(start uint32, kind uint8) bool {
		burst := []uint8{BurstWrap4, BurstWrap8, BurstWrap16}[kind%3]
		size := Size32
		span := uint32(BurstBeats(burst)) * 4
		addr := (start &^ 3) % 0x10000
		base := addr &^ (span - 1)
		for i := 0; i < BurstBeats(burst); i++ {
			if addr < base || addr >= base+span {
				return false
			}
			addr = NextBurstAddr(addr, burst, size)
		}
		return addr == (start&^3)%0x10000 // full wrap returns to start
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIncrBurstVisitsDistinctAddresses(t *testing.T) {
	f := func(start uint32) bool {
		addr := (start &^ 3) % 0xFFFF000
		seen := map[uint32]bool{}
		for i := 0; i < 16; i++ {
			if seen[addr] {
				return false
			}
			seen[addr] = true
			addr = NextBurstAddr(addr, BurstIncr16, Size32)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCrossesKB(t *testing.T) {
	if CrossesKB(0x3F0, 4, Size32) {
		t.Error("0x3F0..0x3FC must not cross")
	}
	if !CrossesKB(0x3F8, 4, Size32) {
		t.Error("0x3F8..0x404 must cross")
	}
	if CrossesKB(0x3FC, 1, Size32) {
		t.Error("single beat never crosses")
	}
}

func TestBeatsUntilKB(t *testing.T) {
	if got := BeatsUntilKB(0x3F0, Size32); got != 4 {
		t.Errorf("BeatsUntilKB(0x3F0)=%d, want 4", got)
	}
	if got := BeatsUntilKB(0x0, Size32); got != 256 {
		t.Errorf("BeatsUntilKB(0)=%d, want 256", got)
	}
	if got := BeatsUntilKB(0x3FC, Size32); got != 1 {
		t.Errorf("BeatsUntilKB(0x3FC)=%d, want 1", got)
	}
}

func TestBeatsUntilKBNeverCrosses(t *testing.T) {
	f := func(addr uint32, sz uint8) bool {
		size := []uint8{Size8, Size16, Size32}[sz%3]
		a := addr &^ (uint32(SizeBytes(size)) - 1)
		n := BeatsUntilKB(a, size)
		return n >= 1 && !CrossesKB(a, n, size)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAligned(t *testing.T) {
	if !Aligned(0x100, Size32) || Aligned(0x102, Size32) {
		t.Error("word alignment")
	}
	if !Aligned(0x102, Size16) || Aligned(0x101, Size16) {
		t.Error("halfword alignment")
	}
	if !Aligned(0x101, Size8) {
		t.Error("bytes are always aligned")
	}
}

func TestRegionContains(t *testing.T) {
	r := Region{Start: 0x1000, Size: 0x100, Slave: 0}
	if !r.Contains(0x1000) || !r.Contains(0x10FF) {
		t.Error("boundaries must be inside")
	}
	if r.Contains(0xFFF) || r.Contains(0x1100) {
		t.Error("outside must be excluded")
	}
}
