package ahb

import "fmt"

// FifoSlave models a stream peripheral: bus writes push into a FIFO that a
// background consumer drains at a fixed rate (one element every DrainEvery
// cycles — think of a UART or a display stream); bus reads pop in FIFO
// order. A write to a full FIFO stalls the bus with wait states until the
// consumer frees a slot; a read from an empty FIFO responds with a
// two-cycle ERROR. The state-dependent wait behaviour produces the bursty
// stall patterns real peripherals impose on the bus power profile.
type FifoSlave struct {
	bus   *Bus
	idx   int
	ports *slavePorts

	Capacity   int
	DrainEvery int // consumer period in cycles; 0 disables draining

	fifo       []uint32
	drainCnt   int
	pendingWr  bool
	errCycle   bool
	stallWrite bool

	Pushes  uint64
	Pops    uint64
	Drained uint64
	Stalls  uint64
	Errors  uint64
}

// NewFifoSlave attaches a FIFO slave to bus port idx.
func NewFifoSlave(b *Bus, idx, capacity, drainEvery int) (*FifoSlave, error) {
	if idx < 0 || idx >= b.Cfg.NumSlaves {
		return nil, fmt.Errorf("ahb: slave index %d out of range", idx)
	}
	if capacity < 1 {
		return nil, fmt.Errorf("ahb: FIFO capacity must be >=1")
	}
	if drainEvery < 0 {
		return nil, fmt.Errorf("ahb: negative drain period")
	}
	s := &FifoSlave{bus: b, idx: idx, ports: &b.S[idx], Capacity: capacity, DrainEvery: drainEvery}
	b.K.MethodNoInit(fmt.Sprintf("%s.fifoslave%d", b.Cfg.Name, idx), s.tick, b.Clk.Posedge())
	return s, nil
}

// Depth returns the current number of buffered elements.
func (s *FifoSlave) Depth() int { return len(s.fifo) }

func (s *FifoSlave) tick() {
	// Background consumer.
	if s.DrainEvery > 0 && len(s.fifo) > 0 {
		s.drainCnt++
		if s.drainCnt >= s.DrainEvery {
			s.drainCnt = 0
			s.fifo = s.fifo[1:]
			s.Drained++
		}
	}

	hready := s.bus.HReady.Read()

	// A stalled write completes as soon as a slot frees up.
	if s.stallWrite {
		s.Stalls++
		if len(s.fifo) < s.Capacity {
			s.stallWrite = false
			s.pendingWr = true
			s.ports.ReadyOut.Write(true)
		}
		return
	}

	if !hready {
		if s.errCycle {
			s.ports.ReadyOut.Write(true) // second ERROR cycle
			s.errCycle = false
		}
		return
	}

	// Complete an accepted write: capture the data-phase word.
	if s.pendingWr {
		s.pendingWr = false
		s.fifo = append(s.fifo, s.bus.HWdata.Read())
		s.Pushes++
	}

	t := s.bus.HTrans.Read()
	if !s.bus.Sel[s.idx].Read() || (t != TransNonseq && t != TransSeq) {
		s.ports.ReadyOut.Write(true)
		s.ports.Resp.Write(RespOkay)
		return
	}
	if s.bus.HWrite.Read() {
		if len(s.fifo) >= s.Capacity {
			// Full: stall with wait states until the consumer drains.
			s.ports.ReadyOut.Write(false)
			s.ports.Resp.Write(RespOkay)
			s.stallWrite = true
			return
		}
		s.pendingWr = true
		s.ports.ReadyOut.Write(true)
		s.ports.Resp.Write(RespOkay)
		return
	}
	// Read: pop, or ERROR when empty.
	if len(s.fifo) == 0 {
		s.Errors++
		s.ports.ReadyOut.Write(false)
		s.ports.Resp.Write(RespError)
		s.errCycle = true
		return
	}
	v := s.fifo[0]
	s.fifo = s.fifo[1:]
	s.Pops++
	s.ports.Rdata.Write(v)
	s.ports.ReadyOut.Write(true)
	s.ports.Resp.Write(RespOkay)
}
