package ahb

import (
	"testing"

	"ahbpower/internal/sim"
)

// newFifoSystem builds a 1-master bus with a FIFO slave on port 0.
func newFifoSystem(t *testing.T, capacity, drainEvery int) (*sim.Kernel, *Bus, *Master, *FifoSlave, *Monitor) {
	t.Helper()
	k := sim.NewKernel()
	bus, err := New(k, Config{
		NumMasters:  1,
		NumSlaves:   1,
		Regions:     []Region{{Start: 0, Size: 0x1000, Slave: 0}},
		ClockPeriod: 10 * sim.Nanosecond,
		DataWidth:   32,
	})
	if err != nil {
		t.Fatal(err)
	}
	mon := NewMonitor(bus)
	m, err := NewMaster(bus, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.KeepResults(true)
	f, err := NewFifoSlave(bus, 0, capacity, drainEvery)
	if err != nil {
		t.Fatal(err)
	}
	return k, bus, m, f, mon
}

func TestFifoWriteReadOrder(t *testing.T) {
	k, bus, m, f, mon := newFifoSystem(t, 8, 0)
	m.Enqueue(Sequence{Ops: []Op{
		{Kind: OpWrite, Addr: 0x0, Data: []uint32{11}},
		{Kind: OpWrite, Addr: 0x0, Data: []uint32{22}},
		{Kind: OpWrite, Addr: 0x0, Data: []uint32{33}},
		{Kind: OpRead, Addr: 0x0},
		{Kind: OpRead, Addr: 0x0},
		{Kind: OpRead, Addr: 0x0},
	}})
	if err := k.RunCycles(bus.Clk, 50); err != nil {
		t.Fatal(err)
	}
	res := m.Results()
	if len(res) != 6 {
		t.Fatalf("results=%d, want 6", len(res))
	}
	want := []uint32{11, 22, 33}
	for i, w := range want {
		if res[3+i].Data != w {
			t.Errorf("pop %d = %d, want %d (FIFO order)", i, res[3+i].Data, w)
		}
	}
	if f.Pushes != 3 || f.Pops != 3 || f.Depth() != 0 {
		t.Errorf("fifo counters: %+v depth=%d", f, f.Depth())
	}
	for _, e := range mon.Errors() {
		t.Errorf("protocol violation: %v", e)
	}
}

func TestFifoBackpressureStallsWrites(t *testing.T) {
	// Capacity 2, drain every 4 cycles: a burst of 6 writes must stall
	// until the consumer frees slots, then all data must drain through.
	k, bus, m, f, mon := newFifoSystem(t, 2, 4)
	var ops []Op
	for i := 0; i < 6; i++ {
		ops = append(ops, Op{Kind: OpWrite, Addr: 0x0, Data: []uint32{uint32(100 + i)}})
	}
	m.Enqueue(Sequence{Ops: ops})
	if err := k.RunCycles(bus.Clk, 200); err != nil {
		t.Fatal(err)
	}
	if !m.Done() {
		t.Fatal("master must finish despite backpressure")
	}
	if f.Stalls == 0 {
		t.Error("full FIFO must stall the bus")
	}
	if m.Stats().WaitCycle == 0 {
		t.Error("master must see wait states")
	}
	if f.Pushes != 6 {
		t.Errorf("pushes=%d, want 6", f.Pushes)
	}
	// Everything eventually drains.
	if err := k.RunCycles(bus.Clk, 100); err != nil {
		t.Fatal(err)
	}
	if f.Depth() != 0 {
		t.Errorf("depth=%d, want 0 after draining", f.Depth())
	}
	if f.Drained != 6 {
		t.Errorf("drained=%d, want 6", f.Drained)
	}
	for _, e := range mon.Errors() {
		t.Errorf("protocol violation: %v", e)
	}
}

func TestFifoEmptyReadErrors(t *testing.T) {
	k, bus, m, f, mon := newFifoSystem(t, 4, 0)
	m.Enqueue(Sequence{Ops: []Op{{Kind: OpRead, Addr: 0x0}}})
	if err := k.RunCycles(bus.Clk, 30); err != nil {
		t.Fatal(err)
	}
	res := m.Results()
	if len(res) != 1 || res[0].Resp != RespError {
		t.Fatalf("results=%+v, want one ERROR", res)
	}
	if f.Errors != 1 {
		t.Errorf("fifo errors=%d", f.Errors)
	}
	for _, e := range mon.Errors() {
		t.Errorf("protocol violation: %v", e)
	}
}

func TestFifoDrainWithoutTraffic(t *testing.T) {
	k, bus, _, f, _ := newFifoSystem(t, 4, 2)
	// Preload without the bus.
	f.fifo = []uint32{1, 2, 3}
	if err := k.RunCycles(bus.Clk, 20); err != nil {
		t.Fatal(err)
	}
	if f.Depth() != 0 {
		t.Errorf("depth=%d, want 0", f.Depth())
	}
}

func TestFifoConstructorValidation(t *testing.T) {
	k := sim.NewKernel()
	bus, err := New(k, Config{
		NumMasters:  1,
		NumSlaves:   1,
		Regions:     []Region{{Start: 0, Size: 0x100, Slave: 0}},
		ClockPeriod: 10 * sim.Nanosecond,
		DataWidth:   32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFifoSlave(bus, 9, 4, 0); err == nil {
		t.Error("bad index must fail")
	}
	if _, err := NewFifoSlave(bus, 0, 0, 0); err == nil {
		t.Error("zero capacity must fail")
	}
	if _, err := NewFifoSlave(bus, 0, 4, -1); err == nil {
		t.Error("negative drain must fail")
	}
}
