package ahb

import (
	"testing"

	"ahbpower/internal/sim"
)

// testSystem bundles a bus with its kernel, masters and memory slaves.
type testSystem struct {
	k       *sim.Kernel
	bus     *Bus
	masters []*Master
	slaves  []*MemorySlave
	mon     *Monitor
}

// newTestSystem builds an AHB with the given master/slave counts; each
// slave owns a 4 KB region starting at s*0x1000 and has the given wait
// states.
func newTestSystem(t *testing.T, nMasters, nSlaves, waits int, pol ArbPolicy) *testSystem {
	t.Helper()
	k := sim.NewKernel()
	var regions []Region
	for s := 0; s < nSlaves; s++ {
		regions = append(regions, Region{Start: uint32(s) * 0x1000, Size: 0x1000, Slave: s})
	}
	bus, err := New(k, Config{
		NumMasters:  nMasters,
		NumSlaves:   nSlaves,
		Regions:     regions,
		ClockPeriod: 10 * sim.Nanosecond,
		DataWidth:   32,
		Policy:      pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := &testSystem{k: k, bus: bus, mon: NewMonitor(bus)}
	for m := 0; m < nMasters; m++ {
		mm, err := NewMaster(bus, m)
		if err != nil {
			t.Fatal(err)
		}
		mm.KeepResults(true)
		ts.masters = append(ts.masters, mm)
	}
	for s := 0; s < nSlaves; s++ {
		sl, err := NewMemorySlave(bus, s, waits)
		if err != nil {
			t.Fatal(err)
		}
		ts.slaves = append(ts.slaves, sl)
	}
	return ts
}

// run advances the simulation by n bus cycles and fails on kernel or
// protocol errors.
func (ts *testSystem) run(t *testing.T, n uint64) {
	t.Helper()
	if err := ts.k.RunCycles(ts.bus.Clk, n); err != nil {
		t.Fatal(err)
	}
}

// checkClean asserts the protocol monitor saw no violations.
func (ts *testSystem) checkClean(t *testing.T) {
	t.Helper()
	for _, e := range ts.mon.Errors() {
		t.Errorf("protocol violation: %v", e)
	}
}

func TestConfigValidate(t *testing.T) {
	base := Config{NumMasters: 2, NumSlaves: 2, ClockPeriod: 10 * sim.Nanosecond, DataWidth: 32}
	if err := base.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{NumMasters: 0, NumSlaves: 1, ClockPeriod: 1, DataWidth: 32},
		{NumMasters: 17, NumSlaves: 1, ClockPeriod: 1, DataWidth: 32},
		{NumMasters: 1, NumSlaves: 0, ClockPeriod: 1, DataWidth: 32},
		{NumMasters: 1, NumSlaves: 1, ClockPeriod: 1, DataWidth: 13},
		{NumMasters: 1, NumSlaves: 1, ClockPeriod: 0, DataWidth: 32},
		{NumMasters: 1, NumSlaves: 1, ClockPeriod: 1, DataWidth: 32, DefaultMaster: 5},
		{NumMasters: 1, NumSlaves: 1, ClockPeriod: 1, DataWidth: 32,
			Regions: []Region{{Start: 0, Size: 0x100, Slave: 3}}},
		{NumMasters: 1, NumSlaves: 1, ClockPeriod: 1, DataWidth: 32,
			Regions: []Region{{Start: 0, Size: 0, Slave: 0}}},
		{NumMasters: 1, NumSlaves: 2, ClockPeriod: 1, DataWidth: 32,
			Regions: []Region{{Start: 0, Size: 0x200, Slave: 0}, {Start: 0x100, Size: 0x100, Slave: 1}}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSingleWriteRead(t *testing.T) {
	ts := newTestSystem(t, 1, 1, 0, PolicySticky)
	ts.masters[0].Enqueue(Sequence{Ops: []Op{
		{Kind: OpWrite, Addr: 0x100, Data: []uint32{0xDEADBEEF}},
		{Kind: OpRead, Addr: 0x100},
	}})
	ts.run(t, 50)
	res := ts.masters[0].Results()
	if len(res) != 2 {
		t.Fatalf("results=%d, want 2 (%+v)", len(res), res)
	}
	if !res[0].Write || res[0].Addr != 0x100 || res[0].Resp != RespOkay {
		t.Errorf("write result %+v", res[0])
	}
	if res[1].Write || res[1].Data != 0xDEADBEEF || res[1].Resp != RespOkay {
		t.Errorf("read result %+v, want data 0xDEADBEEF", res[1])
	}
	if ts.slaves[0].Peek(0x100) != 0xDEADBEEF {
		t.Errorf("memory=%#x", ts.slaves[0].Peek(0x100))
	}
	if !ts.masters[0].Done() {
		t.Error("master must be done")
	}
	ts.checkClean(t)
}

func TestWriteReadWithWaitStates(t *testing.T) {
	for _, waits := range []int{1, 2, 5} {
		ts := newTestSystem(t, 1, 1, waits, PolicySticky)
		ts.masters[0].Enqueue(Sequence{Ops: []Op{
			{Kind: OpWrite, Addr: 0x40, Data: []uint32{0xCAFE0000}},
			{Kind: OpRead, Addr: 0x40},
		}})
		ts.run(t, 100)
		res := ts.masters[0].Results()
		if len(res) != 2 {
			t.Fatalf("waits=%d: results=%d, want 2", waits, len(res))
		}
		if res[1].Data != 0xCAFE0000 {
			t.Errorf("waits=%d: read=%#x", waits, res[1].Data)
		}
		if ts.masters[0].Stats().WaitCycle == 0 {
			t.Errorf("waits=%d: master saw no wait cycles", waits)
		}
		ts.checkClean(t)
	}
}

func TestIncr4BurstWrite(t *testing.T) {
	ts := newTestSystem(t, 1, 1, 0, PolicySticky)
	data := []uint32{0x11, 0x22, 0x33, 0x44}
	ts.masters[0].Enqueue(Sequence{Ops: []Op{
		{Kind: OpWrite, Addr: 0x200, Data: data},
		{Kind: OpRead, Addr: 0x200, Beats: 4},
	}})
	ts.run(t, 60)
	res := ts.masters[0].Results()
	if len(res) != 8 {
		t.Fatalf("results=%d, want 8", len(res))
	}
	for i, want := range data {
		if ts.slaves[0].Peek(0x200+uint32(i)*4) != want {
			t.Errorf("mem[%d]=%#x, want %#x", i, ts.slaves[0].Peek(0x200+uint32(i)*4), want)
		}
		if res[4+i].Data != want {
			t.Errorf("read beat %d=%#x, want %#x", i, res[4+i].Data, want)
		}
		if res[4+i].Addr != 0x200+uint32(i)*4 {
			t.Errorf("read beat %d addr=%#x", i, res[4+i].Addr)
		}
	}
	ts.checkClean(t)
}

func TestBurstBackToBackIsPipelined(t *testing.T) {
	// An INCR8 write to a zero-wait slave must take ~1 cycle per beat.
	ts := newTestSystem(t, 1, 1, 0, PolicySticky)
	data := make([]uint32, 8)
	for i := range data {
		data[i] = uint32(i)
	}
	ts.masters[0].Enqueue(Sequence{Ops: []Op{{Kind: OpWrite, Addr: 0, Data: data}}})
	start := ts.bus.Cycles()
	for i := 0; i < 40 && !ts.masters[0].Done(); i++ {
		ts.run(t, 1)
	}
	elapsed := ts.bus.Cycles() - start
	if elapsed > 14 {
		t.Errorf("8-beat burst took %d cycles, want <=14 (pipelined)", elapsed)
	}
	ts.checkClean(t)
}

func TestWrap4Burst(t *testing.T) {
	ts := newTestSystem(t, 1, 1, 0, PolicySticky)
	// WRAP4 starting at 0x38: addresses 0x38,0x3C,0x30,0x34.
	ts.masters[0].Enqueue(Sequence{Ops: []Op{
		{Kind: OpWrite, Addr: 0x38, Data: []uint32{1, 2, 3, 4}, Burst: BurstWrap4},
	}})
	ts.run(t, 40)
	want := map[uint32]uint32{0x38: 1, 0x3C: 2, 0x30: 3, 0x34: 4}
	for addr, v := range want {
		if got := ts.slaves[0].Peek(addr); got != v {
			t.Errorf("mem[%#x]=%d, want %d", addr, got, v)
		}
	}
	ts.checkClean(t)
}

func TestBusyInsertion(t *testing.T) {
	ts := newTestSystem(t, 1, 1, 0, PolicySticky)
	ts.masters[0].Enqueue(Sequence{Ops: []Op{
		{Kind: OpWrite, Addr: 0x10, Data: []uint32{7, 8, 9, 10},
			BusyBefore: map[int]int{2: 2}}, // two BUSY cycles before beat 2
	}})
	ts.run(t, 60)
	for i, want := range []uint32{7, 8, 9, 10} {
		if got := ts.slaves[0].Peek(0x10 + uint32(i)*4); got != want {
			t.Errorf("mem[%d]=%d, want %d", i, got, want)
		}
	}
	if ts.masters[0].Stats().BusyCycle != 2 {
		t.Errorf("BusyCycle=%d, want 2", ts.masters[0].Stats().BusyCycle)
	}
	if ts.mon.Counts()["busy"] != 2 {
		t.Errorf("monitor busy=%d, want 2", ts.mon.Counts()["busy"])
	}
	ts.checkClean(t)
}

func TestTwoMastersArbitration(t *testing.T) {
	ts := newTestSystem(t, 2, 2, 0, PolicySticky)
	ts.masters[0].Enqueue(Sequence{Ops: []Op{
		{Kind: OpWrite, Addr: 0x100, Data: []uint32{0xA0}},
		{Kind: OpRead, Addr: 0x100},
	}, IdleAfter: 4})
	ts.masters[1].Enqueue(Sequence{Ops: []Op{
		{Kind: OpWrite, Addr: 0x1100, Data: []uint32{0xB0}},
		{Kind: OpRead, Addr: 0x1100},
	}, IdleAfter: 4})
	ts.run(t, 200)
	if !ts.masters[0].Done() || !ts.masters[1].Done() {
		t.Fatal("both masters must complete")
	}
	r0 := ts.masters[0].Results()
	r1 := ts.masters[1].Results()
	if r0[1].Data != 0xA0 {
		t.Errorf("master0 read=%#x", r0[1].Data)
	}
	if r1[1].Data != 0xB0 {
		t.Errorf("master1 read=%#x", r1[1].Data)
	}
	if ts.mon.Counts()["handover"] == 0 {
		t.Error("expected at least one bus handover")
	}
	ts.checkClean(t)
}

func TestStickyArbitrationIsNonInterruptible(t *testing.T) {
	// Master 1 (lower priority) starts a long sequence; master 0 requests
	// mid-way. With the sticky policy master 1 must keep the bus until its
	// sequence ends (the paper's non-interruptible WRITE-READ sequences).
	ts := newTestSystem(t, 2, 1, 0, PolicySticky)
	var ops []Op
	for i := 0; i < 10; i++ {
		ops = append(ops,
			Op{Kind: OpWrite, Addr: uint32(0x400 + 4*i), Data: []uint32{uint32(i)}},
			Op{Kind: OpRead, Addr: uint32(0x400 + 4*i)})
	}
	ts.masters[1].Enqueue(Sequence{Ops: ops})
	ts.run(t, 5) // let master 1 get going
	ts.masters[0].Enqueue(Sequence{Ops: []Op{{Kind: OpWrite, Addr: 0x0, Data: []uint32{0xFF}}}})
	ts.run(t, 100)
	if !ts.masters[0].Done() || !ts.masters[1].Done() {
		t.Fatal("both masters must complete")
	}
	// Master 1's beats must be contiguous in time: its last beat cycle
	// minus first beat cycle equals beats-1 when never interrupted.
	r1 := ts.masters[1].Results()
	span := r1[len(r1)-1].Cycle - r1[0].Cycle
	if span != uint64(len(r1)-1) {
		t.Errorf("master1 beats span %d cycles for %d beats: sequence was interrupted", span, len(r1))
	}
	ts.checkClean(t)
}

func TestFixedPriorityPreempts(t *testing.T) {
	ts := newTestSystem(t, 2, 1, 0, PolicyFixed)
	var data []uint32
	for i := 0; i < 16; i++ {
		data = append(data, uint32(0x100+i))
	}
	ts.masters[1].Enqueue(Sequence{Ops: []Op{{Kind: OpWrite, Addr: 0x200, Data: data}}})
	ts.run(t, 4)
	ts.masters[0].Enqueue(Sequence{Ops: []Op{{Kind: OpWrite, Addr: 0x0, Data: []uint32{0xAA}}}})
	ts.run(t, 100)
	if !ts.masters[0].Done() || !ts.masters[1].Done() {
		t.Fatal("both masters must complete")
	}
	// All 16 beats must still land correctly despite preemption.
	for i, want := range data {
		if got := ts.slaves[0].Peek(0x200 + uint32(i)*4); got != want {
			t.Errorf("mem[%d]=%#x, want %#x", i, got, want)
		}
	}
	if got := ts.slaves[0].Peek(0); got != 0xAA {
		t.Errorf("master0 write=%#x", got)
	}
	ts.checkClean(t)
}

func TestRoundRobinFairness(t *testing.T) {
	ts := newTestSystem(t, 3, 1, 0, PolicyRoundRobin)
	for m := 0; m < 3; m++ {
		var seqs []Sequence
		for i := 0; i < 5; i++ {
			seqs = append(seqs, Sequence{Ops: []Op{
				{Kind: OpWrite, Addr: uint32(0x100*m + 4*i), Data: []uint32{uint32(m<<8 | i)}},
			}, IdleAfter: 1})
		}
		ts.masters[m].Enqueue(seqs...)
	}
	ts.run(t, 300)
	for m := 0; m < 3; m++ {
		if !ts.masters[m].Done() {
			t.Errorf("master %d starved", m)
		}
	}
	ts.checkClean(t)
}

func TestUnmappedAddressGetsError(t *testing.T) {
	ts := newTestSystem(t, 1, 1, 0, PolicySticky)
	ts.masters[0].Enqueue(Sequence{Ops: []Op{
		{Kind: OpWrite, Addr: 0xF0000000, Data: []uint32{1}}, // unmapped
		{Kind: OpWrite, Addr: 0x10, Data: []uint32{2}},       // mapped
	}})
	ts.run(t, 50)
	res := ts.masters[0].Results()
	if len(res) != 2 {
		t.Fatalf("results=%d, want 2", len(res))
	}
	if res[0].Resp != RespError {
		t.Errorf("unmapped write resp=%s, want ERROR", RespName(res[0].Resp))
	}
	if res[1].Resp != RespOkay || ts.slaves[0].Peek(0x10) != 2 {
		t.Error("mapped write after error must succeed")
	}
	if ts.masters[0].Stats().Errors != 1 {
		t.Errorf("Errors=%d, want 1", ts.masters[0].Stats().Errors)
	}
	ts.checkClean(t)
}

func TestErrorSlaveTwoCycleResponse(t *testing.T) {
	k := sim.NewKernel()
	bus, err := New(k, Config{
		NumMasters:  1,
		NumSlaves:   1,
		Regions:     []Region{{Start: 0, Size: 0x1000, Slave: 0}},
		ClockPeriod: 10 * sim.Nanosecond,
		DataWidth:   32,
	})
	if err != nil {
		t.Fatal(err)
	}
	mon := NewMonitor(bus)
	m, _ := NewMaster(bus, 0)
	m.KeepResults(true)
	es, _ := NewErrorSlave(bus, 0)
	m.Enqueue(Sequence{Ops: []Op{{Kind: OpRead, Addr: 0x0}}})
	if err := k.RunCycles(bus.Clk, 30); err != nil {
		t.Fatal(err)
	}
	res := m.Results()
	if len(res) != 1 || res[0].Resp != RespError {
		t.Fatalf("results=%+v, want one ERROR", res)
	}
	if es.Errors != 1 {
		t.Errorf("slave errors=%d", es.Errors)
	}
	for _, e := range mon.Errors() {
		t.Errorf("protocol violation: %v", e)
	}
}

func TestRetrySlaveEventuallyCompletes(t *testing.T) {
	k := sim.NewKernel()
	bus, err := New(k, Config{
		NumMasters:  1,
		NumSlaves:   1,
		Regions:     []Region{{Start: 0, Size: 0x1000, Slave: 0}},
		ClockPeriod: 10 * sim.Nanosecond,
		DataWidth:   32,
	})
	if err != nil {
		t.Fatal(err)
	}
	mon := NewMonitor(bus)
	m, _ := NewMaster(bus, 0)
	m.KeepResults(true)
	rs, _ := NewRetrySlave(bus, 0, 3)
	m.Enqueue(Sequence{Ops: []Op{
		{Kind: OpWrite, Addr: 0x20, Data: []uint32{0x77}},
		{Kind: OpRead, Addr: 0x20},
	}})
	if err := k.RunCycles(bus.Clk, 100); err != nil {
		t.Fatal(err)
	}
	res := m.Results()
	if len(res) != 2 {
		t.Fatalf("results=%d, want 2", len(res))
	}
	if res[1].Data != 0x77 {
		t.Errorf("read=%#x, want 0x77", res[1].Data)
	}
	if m.Stats().Retries != 6 {
		t.Errorf("retries=%d, want 6 (3 per transfer)", m.Stats().Retries)
	}
	if rs.Peek(0x20) != 0x77 {
		t.Errorf("mem=%#x", rs.Peek(0x20))
	}
	for _, e := range mon.Errors() {
		t.Errorf("protocol violation: %v", e)
	}
}

func TestSplitSlaveResume(t *testing.T) {
	k := sim.NewKernel()
	bus, err := New(k, Config{
		NumMasters: 2,
		NumSlaves:  2,
		Regions: []Region{
			{Start: 0, Size: 0x1000, Slave: 0},
			{Start: 0x1000, Size: 0x1000, Slave: 1},
		},
		ClockPeriod: 10 * sim.Nanosecond,
		DataWidth:   32,
	})
	if err != nil {
		t.Fatal(err)
	}
	m0, _ := NewMaster(bus, 0)
	m0.KeepResults(true)
	m1, _ := NewMaster(bus, 1)
	m1.KeepResults(true)
	ss, _ := NewSplitSlave(bus, 0, 5)
	if _, err := NewMemorySlave(bus, 1, 0); err != nil {
		t.Fatal(err)
	}
	// Master 0 hits the split slave; master 1 proceeds on slave 1 while
	// master 0 is split out.
	m0.Enqueue(Sequence{Ops: []Op{{Kind: OpWrite, Addr: 0x40, Data: []uint32{0x5511}}}})
	m1.Enqueue(Sequence{Ops: []Op{
		{Kind: OpWrite, Addr: 0x1040, Data: []uint32{0x99}},
		{Kind: OpRead, Addr: 0x1040},
	}})
	if err := k.RunCycles(bus.Clk, 100); err != nil {
		t.Fatal(err)
	}
	if !m0.Done() {
		t.Fatal("split master must eventually complete")
	}
	if ss.Peek(0x40) != 0x5511 {
		t.Errorf("split slave mem=%#x, want 0x5511", ss.Peek(0x40))
	}
	if m0.Stats().Splits != 1 {
		t.Errorf("splits=%d, want 1", m0.Stats().Splits)
	}
	if !m1.Done() {
		t.Error("master1 must complete while master0 is split")
	}
	if bus.SplitMask() != 0 {
		t.Errorf("split mask=%#x, want 0 after resume", bus.SplitMask())
	}
}

func TestDefaultMasterGrantedWhenIdle(t *testing.T) {
	ts := newTestSystem(t, 2, 1, 0, PolicySticky)
	ts.run(t, 10)
	if got := ts.bus.GrantIdx.Read(); got != 0 {
		t.Errorf("idle grant=%d, want default master 0", got)
	}
	if ts.bus.HTrans.Read() != TransIdle {
		t.Error("idle bus must show IDLE")
	}
	ts.checkClean(t)
}

func TestLockedSequenceHoldsBus(t *testing.T) {
	ts := newTestSystem(t, 2, 1, 0, PolicyFixed)
	// Master 1 runs a locked burst; master 0 (higher priority under
	// PolicyFixed) requests mid-way but must not preempt a locked master.
	var data []uint32
	for i := 0; i < 8; i++ {
		data = append(data, uint32(i+1))
	}
	ts.masters[1].Enqueue(Sequence{Ops: []Op{{Kind: OpWrite, Addr: 0x300, Data: data, Lock: true}}})
	ts.run(t, 4)
	ts.masters[0].Enqueue(Sequence{Ops: []Op{{Kind: OpWrite, Addr: 0x0, Data: []uint32{0xEE}}}})
	ts.run(t, 100)
	if !ts.masters[0].Done() || !ts.masters[1].Done() {
		t.Fatal("both masters must complete")
	}
	r1 := ts.masters[1].Results()
	span := r1[len(r1)-1].Cycle - r1[0].Cycle
	if span != uint64(len(r1)-1) {
		t.Errorf("locked burst interrupted: %d beats span %d cycles", len(r1), span)
	}
	ts.checkClean(t)
}

func TestDataWidthMasking(t *testing.T) {
	k := sim.NewKernel()
	bus, err := New(k, Config{
		NumMasters:  1,
		NumSlaves:   1,
		Regions:     []Region{{Start: 0, Size: 0x1000, Slave: 0}},
		ClockPeriod: 10 * sim.Nanosecond,
		DataWidth:   16,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := NewMaster(bus, 0)
	m.KeepResults(true)
	sl, _ := NewMemorySlave(bus, 0, 0)
	m.Enqueue(Sequence{Ops: []Op{
		{Kind: OpWrite, Addr: 0x10, Data: []uint32{0xFFFF1234}, Size: Size16},
		{Kind: OpRead, Addr: 0x10, Size: Size16},
	}})
	if err := k.RunCycles(bus.Clk, 30); err != nil {
		t.Fatal(err)
	}
	if got := sl.Peek(0x10); got != 0x1234 {
		t.Errorf("mem=%#x, want 0x1234 (masked to 16 bits)", got)
	}
	if got := m.Results()[1].Data; got != 0x1234 {
		t.Errorf("read=%#x, want 0x1234", got)
	}
}

func TestMasterWithEmptyScriptStaysIdle(t *testing.T) {
	ts := newTestSystem(t, 2, 1, 0, PolicySticky)
	// Master 1 never enqueues anything: the "simple default master" role.
	ts.masters[0].Enqueue(Sequence{Ops: []Op{{Kind: OpWrite, Addr: 0, Data: []uint32{1}}}})
	ts.run(t, 50)
	if got := ts.masters[1].Stats().Beats; got != 0 {
		t.Errorf("idle master performed %d beats", got)
	}
	if !ts.masters[0].Done() {
		t.Error("active master must complete")
	}
	ts.checkClean(t)
}

func TestBadPortIndexes(t *testing.T) {
	ts := newTestSystem(t, 1, 1, 0, PolicySticky)
	if _, err := NewMaster(ts.bus, 5); err == nil {
		t.Error("bad master index must fail")
	}
	if _, err := NewMemorySlave(ts.bus, 9, 0); err == nil {
		t.Error("bad slave index must fail")
	}
	if _, err := NewMemorySlave(ts.bus, 0, -1); err == nil {
		t.Error("negative waits must fail")
	}
	if _, err := NewErrorSlave(ts.bus, 9); err == nil {
		t.Error("bad error-slave index must fail")
	}
	if _, err := NewRetrySlave(ts.bus, 9, 1); err == nil {
		t.Error("bad retry-slave index must fail")
	}
	if _, err := NewSplitSlave(ts.bus, 9, 1); err == nil {
		t.Error("bad split-slave index must fail")
	}
}

func TestCycleInfoStream(t *testing.T) {
	ts := newTestSystem(t, 1, 1, 0, PolicySticky)
	var infos []CycleInfo
	ts.bus.OnCycle(func(ci CycleInfo) { infos = append(infos, ci) })
	ts.masters[0].Enqueue(Sequence{Ops: []Op{{Kind: OpWrite, Addr: 0x8, Data: []uint32{42}}}})
	ts.run(t, 20)
	if len(infos) < 15 {
		t.Fatalf("cycle infos=%d, want ~20", len(infos))
	}
	// Cycle numbers strictly increase.
	for i := 1; i < len(infos); i++ {
		if infos[i].Cycle != infos[i-1].Cycle+1 {
			t.Fatal("cycle numbering must be contiguous")
		}
	}
	// The write must appear on the bus exactly once as NONSEQ.
	nonseq := 0
	for _, ci := range infos {
		if ci.Trans == TransNonseq && ci.Write && ci.Addr == 0x8 {
			nonseq++
		}
	}
	if nonseq != 1 {
		t.Errorf("NONSEQ write observed %d times, want 1", nonseq)
	}
}

func TestMonitorFlagsKBBoundaryCrossing(t *testing.T) {
	ts := newTestSystem(t, 1, 1, 0, PolicySticky)
	// A 16-beat burst from 0x3F0 runs past 0x3FC into the next 1 KB block
	// at 0x400 — a protocol violation the monitor must flag (the workload
	// generator never emits such bursts; this script does so deliberately).
	data := make([]uint32, 16)
	ts.masters[0].Enqueue(Sequence{Ops: []Op{{Kind: OpWrite, Addr: 0x3F0, Data: data}}})
	ts.run(t, 60)
	found := false
	for _, e := range ts.mon.Errors() {
		if e.Rule == "kb-boundary" {
			found = true
		}
	}
	if !found {
		t.Error("monitor must flag a 1KB boundary crossing")
	}
}

func TestMonitorCleanOnWrapAtBlockEdge(t *testing.T) {
	ts := newTestSystem(t, 1, 1, 0, PolicySticky)
	// WRAP4 at the top of a 16-byte block wraps within it: legal.
	ts.masters[0].Enqueue(Sequence{Ops: []Op{
		{Kind: OpWrite, Addr: 0x3F8, Data: []uint32{1, 2, 3, 4}, Burst: BurstWrap4},
	}})
	ts.run(t, 40)
	ts.checkClean(t)
}
