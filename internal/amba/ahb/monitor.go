package ahb

import (
	"fmt"

	"ahbpower/internal/probe"
	"ahbpower/internal/sim"
)

// CycleInfo is a settled snapshot of the bus at the end of one clock
// cycle. It is the observation record consumed by power analyzers (the
// "bus event" the paper's get_activity function reacts to) and by
// protocol-checking monitors.
type CycleInfo struct {
	Cycle uint64
	Time  sim.Time

	// Address/control phase (muxed M2S outputs).
	Trans  uint8
	Addr   uint32
	Write  bool
	Size   uint8
	Burst  uint8
	Wdata  uint32
	Master uint8 // address-phase owner
	Lock   bool

	// Decode.
	SelIdx int // selected slave, -2 default slave, valid when Trans active

	// Data phase / response (muxed S2M outputs).
	Rdata      uint32
	Resp       uint8
	Ready      bool
	DataMaster uint8
	DataSlave  int

	// Arbitration.
	GrantIdx uint8
	Requests uint16 // bitmask of asserted HBUSREQx
	Handover bool   // HMASTER changed relative to the previous cycle
}

// buildCycleProbe registers the bus on the kernel's settled-timestep
// stream; the bus snapshots itself once per clock cycle (on the settled
// high phase of HCLK) and publishes the record through its hub.
func (b *Bus) buildCycleProbe() {
	b.K.Observe(b)
}

// EndOfTimestep implements sim.CycleObserver: on the settled high phase of
// HCLK it samples every shared bus signal into one CycleInfo record and
// publishes it to the attached observers.
func (b *Bus) EndOfTimestep(t sim.Time) {
	if !b.Clk.Signal().Read() {
		return
	}
	b.cycles++
	ci := CycleInfo{
		Cycle:      b.cycles,
		Time:       t,
		Trans:      b.HTrans.Read(),
		Addr:       b.HAddr.Read(),
		Write:      b.HWrite.Read(),
		Size:       b.HSize.Read(),
		Burst:      b.HBurst.Read(),
		Wdata:      b.HWdata.Read(),
		Master:     b.HMaster.Read(),
		Lock:       b.HMastlock.Read(),
		SelIdx:     b.SelIdx.Read(),
		Rdata:      b.HRdata.Read(),
		Resp:       b.HResp.Read(),
		Ready:      b.HReady.Read(),
		DataMaster: b.DataMaster.Read(),
		DataSlave:  b.DataSlave.Read(),
		GrantIdx:   b.GrantIdx.Read(),
	}
	for m := range b.M {
		if b.M[m].BusReq.Read() {
			ci.Requests |= 1 << uint(m)
		}
	}
	ci.Handover = ci.Master != b.lastMaster
	b.lastMaster = ci.Master
	b.hub.Publish(ci)
}

// Observe attaches a typed observer to the settled bus-cycle stream.
func (b *Bus) Observe(o probe.Observer[CycleInfo]) {
	b.hub.Attach(o)
}

// OnCycle registers a plain function invoked with every settled bus cycle;
// it is the convenience form of Observe.
func (b *Bus) OnCycle(fn func(CycleInfo)) {
	b.hub.AttachFunc(fn)
}

// Cycles returns the number of observed bus cycles.
func (b *Bus) Cycles() uint64 { return b.cycles }

// ProtocolError describes a violation detected by the Monitor.
type ProtocolError struct {
	Cycle uint64
	Rule  string
	Desc  string
}

func (e ProtocolError) Error() string {
	return fmt.Sprintf("cycle %d: %s: %s", e.Cycle, e.Rule, e.Desc)
}

// Monitor performs on-line AHB protocol checking over the cycle stream —
// the "complete set of testbenches to observe all the different activity
// states" needs a referee. Violations are collected, not fatal.
type Monitor struct {
	bus       *Bus
	errs      []ProtocolError
	prev      CycleInfo
	havePrev  bool
	counts    monitorCounts
	burstBase uint32
}

// monitorCounts holds the per-event counters as plain fields: the monitor
// bumps one or two of them every settled cycle, and a map increment on
// that path (hash + lookup per event) is measurable across a whole sweep.
// Counts materializes the map form.
type monitorCounts struct {
	idle, busy, nonseq, seq, handover, wait uint64
}

// NewMonitor attaches a protocol monitor to the bus-cycle stream.
func NewMonitor(b *Bus) *Monitor {
	m := &Monitor{bus: b}
	b.Observe(m)
	return m
}

// NewDetachedMonitor creates a protocol monitor that is not subscribed to
// any bus: the caller feeds it CycleInfo records directly via
// ObserveCycle. The checking rules only look at the cycle stream, so a
// detached monitor is interchangeable with an attached one — the lane
// backend uses this to referee each lane's reconstructed cycle stream.
func NewDetachedMonitor() *Monitor {
	return &Monitor{}
}

// Errors returns the violations detected so far.
func (m *Monitor) Errors() []ProtocolError { return m.errs }

// Counts returns per-event counters (transfers, waits, handovers, ...).
// Only events observed at least once appear, matching map-increment
// semantics.
func (m *Monitor) Counts() map[string]uint64 {
	out := map[string]uint64{}
	for _, c := range []struct {
		name string
		n    uint64
	}{
		{"idle", m.counts.idle},
		{"busy", m.counts.busy},
		{"nonseq", m.counts.nonseq},
		{"seq", m.counts.seq},
		{"handover", m.counts.handover},
		{"wait", m.counts.wait},
	} {
		if c.n > 0 {
			out[c.name] = c.n
		}
	}
	return out
}

func (m *Monitor) fail(c uint64, rule, format string, args ...any) {
	m.errs = append(m.errs, ProtocolError{Cycle: c, Rule: rule, Desc: fmt.Sprintf(format, args...)})
}

// ObserveCycle implements probe.Observer: it checks one settled bus cycle
// against the protocol rules.
func (m *Monitor) ObserveCycle(ci CycleInfo) {
	switch ci.Trans {
	case TransIdle:
		m.counts.idle++
	case TransBusy:
		m.counts.busy++
	case TransNonseq:
		m.counts.nonseq++
	case TransSeq:
		m.counts.seq++
	}
	if ci.Handover {
		m.counts.handover++
	}
	if !ci.Ready {
		m.counts.wait++
	}

	// Alignment rule: active transfers must be size-aligned.
	if ci.Trans == TransNonseq || ci.Trans == TransSeq {
		if !Aligned(ci.Addr, ci.Size) {
			m.fail(ci.Cycle, "alignment", "HADDR %#x not aligned to HSIZE %d", ci.Addr, ci.Size)
		}
	}

	if !m.havePrev {
		m.prev, m.havePrev = ci, true
		return
	}
	p := &m.prev

	// A response other than OKAY must be a two-cycle response: first
	// cycle with HREADY low.
	if ci.Resp != RespOkay && ci.Ready {
		if p.Resp != ci.Resp || p.Ready {
			m.fail(ci.Cycle, "two-cycle-response", "%s completed without a first low-HREADY cycle", RespName(ci.Resp))
		}
	}

	// During wait states the address phase must be frozen.
	if !p.Ready && p.Resp == RespOkay {
		if ci.Trans != p.Trans || (p.Trans != TransIdle && ci.Addr != p.Addr) {
			m.fail(ci.Cycle, "frozen-address", "address phase changed during wait state (%s %#x -> %s %#x)",
				TransName(p.Trans), p.Addr, TransName(ci.Trans), ci.Addr)
		}
	}

	// SEQ transfers continue a burst: same direction, address advanced by
	// the burst rule from the previous active beat.
	if ci.Trans == TransSeq && p.Ready {
		if p.Trans == TransNonseq || p.Trans == TransSeq {
			want := NextBurstAddr(p.Addr, p.Burst, p.Size)
			if ci.Addr != want {
				m.fail(ci.Cycle, "burst-address", "SEQ HADDR %#x, want %#x after %s", ci.Addr, want, BurstName(p.Burst))
			}
			if ci.Write != p.Write {
				m.fail(ci.Cycle, "burst-direction", "HWRITE changed mid-burst")
			}
		} else if p.Trans != TransBusy {
			m.fail(ci.Cycle, "seq-after-idle", "SEQ after %s", TransName(p.Trans))
		}
	}

	// BUSY is only legal inside a burst.
	if ci.Trans == TransBusy && p.Ready {
		if p.Trans != TransNonseq && p.Trans != TransSeq && p.Trans != TransBusy {
			m.fail(ci.Cycle, "busy-outside-burst", "BUSY after %s", TransName(p.Trans))
		}
	}

	// Bursts must not cross a 1 KB boundary: a SEQ beat must stay in the
	// 1 KB block of the burst's first (NONSEQ) beat.
	if ci.Trans == TransNonseq {
		m.burstBase = ci.Addr
	}
	if ci.Trans == TransSeq && ci.Addr>>10 != m.burstBase>>10 {
		m.fail(ci.Cycle, "kb-boundary", "burst from %#x reached %#x across a 1KB boundary", m.burstBase, ci.Addr)
	}

	// Ownership handover requires HREADY high in the previous cycle.
	if ci.Handover && !p.Ready {
		m.fail(ci.Cycle, "handover-wait", "HMASTER changed while HREADY low")
	}
	m.prev = ci
}
