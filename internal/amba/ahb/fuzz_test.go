package ahb

import (
	"math/rand"
	"testing"

	"ahbpower/internal/sim"
)

// TestRandomScriptsMatchReferenceMemory drives randomized write/read
// scripts through the full bus pipeline and checks every read result
// against a flat oracle memory updated in program order. Because each
// master's sequences are non-interruptible (sticky arbitration) and the
// masters touch disjoint address windows, program order per master is the
// bus commit order for its own data.
func TestRandomScriptsMatchReferenceMemory(t *testing.T) {
	for _, cfg := range []struct {
		name    string
		waits   int
		masters int
	}{
		{"zero-wait-single-master", 0, 1},
		{"two-waits-single-master", 2, 1},
		{"zero-wait-two-masters", 0, 2},
		{"one-wait-two-masters", 1, 2},
	} {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(cfg.name))*7 + int64(cfg.waits)))
			ts := newTestSystem(t, cfg.masters, 2, cfg.waits, PolicySticky)

			type expect struct {
				addr uint32
				val  uint32
			}
			oracle := map[uint32]uint32{} // word address -> value
			expected := make([][]expect, cfg.masters)

			for m := 0; m < cfg.masters; m++ {
				// Each master owns a disjoint 2 KB window.
				base := uint32(m) * 0x800
				written := map[uint32]uint32{}
				var ops []Op
				for i := 0; i < 60; i++ {
					addr := base + uint32(rng.Intn(0x200))&^3
					if rng.Intn(2) == 0 || len(written) == 0 {
						beats := []int{1, 1, 1, 4}[rng.Intn(4)]
						if BeatsUntilKB(addr, Size32) < beats {
							beats = 1
						}
						data := make([]uint32, beats)
						a := addr
						for b := range data {
							data[b] = rng.Uint32()
							written[a] = data[b]
							oracle[a>>2] = data[b]
							a += 4
						}
						ops = append(ops, Op{Kind: OpWrite, Addr: addr, Data: data})
					} else {
						// Read an address this master has written.
						keys := make([]uint32, 0, len(written))
						for k := range written {
							keys = append(keys, k)
						}
						addr = keys[rng.Intn(len(keys))]
						ops = append(ops, Op{Kind: OpRead, Addr: addr})
						expected[m] = append(expected[m], expect{addr, written[addr]})
					}
				}
				ts.masters[m].Enqueue(Sequence{Ops: ops})
			}

			ts.run(t, 3000)
			for m := 0; m < cfg.masters; m++ {
				if !ts.masters[m].Done() {
					t.Fatalf("master %d did not finish", m)
				}
			}
			ts.checkClean(t)

			// Check every read returned the oracle value.
			for m := 0; m < cfg.masters; m++ {
				exp := expected[m]
				i := 0
				for _, r := range ts.masters[m].Results() {
					if r.Write {
						continue
					}
					if i >= len(exp) {
						t.Fatalf("master %d produced extra read %+v", m, r)
					}
					if r.Addr != exp[i].addr || r.Data != exp[i].val {
						t.Fatalf("master %d read %d: got %#x@%#x, want %#x@%#x",
							m, i, r.Data, r.Addr, exp[i].val, exp[i].addr)
					}
					i++
				}
				if i != len(exp) {
					t.Fatalf("master %d completed %d/%d reads", m, i, len(exp))
				}
			}

			// Final memory state matches the oracle exactly.
			for wordAddr, want := range oracle {
				byteAddr := wordAddr << 2
				slave := ts.slaves[byteAddr>>12]
				if got := slave.Peek(byteAddr & 0xFFF); got != want {
					t.Errorf("mem[%#x]=%#x, want %#x", byteAddr, got, want)
				}
			}
		})
	}
}

// TestRandomRetryInjection interposes a retry slave and checks data
// integrity survives retry storms.
func TestRandomRetryInjection(t *testing.T) {
	for _, retries := range []int{1, 2, 5} {
		k := sim.NewKernel()
		bus, err := New(k, Config{
			NumMasters:  1,
			NumSlaves:   1,
			Regions:     []Region{{Start: 0, Size: 0x1000, Slave: 0}},
			ClockPeriod: 10 * sim.Nanosecond,
			DataWidth:   32,
		})
		if err != nil {
			t.Fatal(err)
		}
		mon := NewMonitor(bus)
		m, _ := NewMaster(bus, 0)
		m.KeepResults(true)
		rs, _ := NewRetrySlave(bus, 0, retries)
		rng := rand.New(rand.NewSource(int64(retries)))
		want := map[uint32]uint32{}
		var ops []Op
		for i := 0; i < 20; i++ {
			addr := uint32(rng.Intn(0x100)) &^ 3
			val := rng.Uint32()
			want[addr] = val
			ops = append(ops, Op{Kind: OpWrite, Addr: addr, Data: []uint32{val}})
		}
		for addr := range want {
			ops = append(ops, Op{Kind: OpRead, Addr: addr})
		}
		m.Enqueue(Sequence{Ops: ops})
		if err := k.RunCycles(bus.Clk, 2000); err != nil {
			t.Fatal(err)
		}
		if !m.Done() {
			t.Fatalf("retries=%d: master did not finish", retries)
		}
		for _, e := range mon.Errors() {
			t.Errorf("retries=%d: %v", retries, e)
		}
		for _, r := range m.Results() {
			if r.Write {
				continue
			}
			if r.Data != want[r.Addr] {
				t.Errorf("retries=%d: read %#x@%#x, want %#x", retries, r.Data, r.Addr, want[r.Addr])
			}
		}
		for addr, val := range want {
			if rs.Peek(addr) != val {
				t.Errorf("retries=%d: mem[%#x]=%#x, want %#x", retries, addr, rs.Peek(addr), val)
			}
		}
	}
}
