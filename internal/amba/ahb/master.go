package ahb

import "fmt"

// OpKind is the kind of a master operation.
type OpKind uint8

// Operation kinds.
const (
	OpWrite OpKind = iota
	OpRead
	OpIdle
)

// Op is one bus operation in a master script: a write burst, a read burst,
// or a number of idle cycles.
type Op struct {
	Kind OpKind
	Addr uint32
	// Data holds the write data beats; its length sets the burst length
	// for writes. For reads, Beats sets the length (default 1).
	Data  []uint32
	Beats int
	Size  uint8
	Burst uint8 // HBURST encoding; inferred from the beat count when 0 and beats>1
	Lock  bool
	// BusyBefore inserts a BUSY cycle before each beat index listed.
	BusyBefore map[int]int
	// IdleCycles applies to OpIdle.
	IdleCycles int
}

// beats returns the burst length of the op.
func (o *Op) beats() int {
	if o.Kind == OpWrite {
		if len(o.Data) == 0 {
			return 1
		}
		return len(o.Data)
	}
	if o.Beats <= 0 {
		return 1
	}
	return o.Beats
}

// burstCode returns the HBURST encoding, inferring INCRn from the beat
// count when unspecified.
func (o *Op) burstCode() uint8 {
	if o.Burst != 0 {
		return o.Burst
	}
	switch o.beats() {
	case 1:
		return BurstSingle
	case 4:
		return BurstIncr4
	case 8:
		return BurstIncr8
	case 16:
		return BurstIncr16
	default:
		return BurstIncr
	}
}

// Sequence is a run of operations the master performs back-to-back while
// holding its bus request (the paper's "non-interruptible" WRITE-READ
// sequences), followed by a number of idle cycles with the request
// released.
type Sequence struct {
	Ops       []Op
	IdleAfter int
}

// Result records the completion of one beat, for test verification.
type Result struct {
	Write bool
	Addr  uint32
	Data  uint32
	Resp  uint8
	Cycle uint64
}

// MasterStats counts master-side protocol events.
type MasterStats struct {
	Beats     uint64
	Errors    uint64
	Retries   uint64
	Splits    uint64
	WaitCycle uint64
	IdleCycle uint64
	BusyCycle uint64
}

// Master is a script-driven AHB bus master. With an empty script it acts
// as the paper's "simple default master": never requesting, driving IDLE
// whenever granted.
type Master struct {
	bus   *Bus
	idx   int
	ports *masterPorts

	script  []Sequence
	seqIdx  int
	opIdx   int
	beat    int
	idleCnt int

	// addrPhase / dataPhase describe in-flight beats.
	addrPhase *flight
	dataPhase *flight
	rewind    []*flight // beats to re-issue after RETRY/SPLIT/preemption
	// mustNonseq forces the next driven beat to NONSEQ (burst rebuilt
	// after losing the bus or after a canceled transfer).
	mustNonseq bool

	results   []Result
	keepRes   bool
	stats     MasterStats
	onResult  func(Result)
	onDrive   func(*BeatDrive)
	splitWait bool

	// spare recycles completed flights: one flight is consumed per data
	// beat, and allocating each one dominates the master's per-cycle cost
	// on long runs. Flights are returned after completeBeat, the only
	// point where a flight dies with no remaining reference.
	spare []*flight
}

// newFlight returns a zeroed flight, reusing a recycled one when
// available.
func (m *Master) newFlight() *flight {
	if n := len(m.spare); n > 0 {
		f := m.spare[n-1]
		m.spare = m.spare[:n-1]
		*f = flight{}
		return f
	}
	return new(flight)
}

// recycle returns a dead flight to the spare pool. The caller must hold
// the only reference.
func (m *Master) recycle(f *flight) {
	f.op = nil // release the script op while pooled
	m.spare = append(m.spare, f)
}

// BeatDrive is the mutable view of a beat the instant before its address
// phase goes on the bus. An OnDrive hook may rewrite Addr and (for writes)
// Data; the mutated values are what the master drives and what it re-issues
// on RETRY/SPLIT — the fault injector's bit-flip channel.
type BeatDrive struct {
	Trans uint8
	Beat  int // beat index within the op
	Write bool
	Addr  uint32
	Data  uint32
}

// flight is one beat in the bus pipeline.
type flight struct {
	op      *Op
	beatIdx int
	addr    uint32
	write   bool
	size    uint8
	burst   uint8
	trans   uint8
	data    uint32
}

// NewMaster attaches a master state machine to bus port idx.
func NewMaster(b *Bus, idx int) (*Master, error) {
	if idx < 0 || idx >= b.Cfg.NumMasters {
		return nil, fmt.Errorf("ahb: master index %d out of range", idx)
	}
	m := &Master{bus: b, idx: idx, ports: &b.M[idx]}
	b.K.MethodNoInit(fmt.Sprintf("%s.master%d", b.Cfg.Name, idx), m.tick, b.Clk.Posedge())
	return m, nil
}

// Index returns the master's port index.
func (m *Master) Index() int { return m.idx }

// Enqueue appends sequences to the master's script.
func (m *Master) Enqueue(seqs ...Sequence) {
	m.script = append(m.script, seqs...)
}

// KeepResults makes the master record every completed beat (for tests).
func (m *Master) KeepResults(keep bool) { m.keepRes = keep }

// OnResult registers a callback invoked at every completed beat.
func (m *Master) OnResult(fn func(Result)) { m.onResult = fn }

// OnDrive registers a callback invoked just before every NONSEQ/SEQ beat is
// driven onto the address bus, with a mutable BeatDrive. Mutations stick:
// the beat keeps the altered address/data through wait states and re-issue.
func (m *Master) OnDrive(fn func(*BeatDrive)) { m.onDrive = fn }

// Results returns the recorded beats (empty unless KeepResults(true)).
func (m *Master) Results() []Result { return m.results }

// Stats returns the master's protocol counters.
func (m *Master) Stats() MasterStats { return m.stats }

// Done reports whether the script is fully executed and no beat is in
// flight.
func (m *Master) Done() bool {
	return m.seqIdx >= len(m.script) && m.addrPhase == nil && m.dataPhase == nil && len(m.rewind) == 0
}

// tick advances the master by one clock edge.
func (m *Master) tick() {
	hready := m.bus.HReady.Read()
	resp := m.bus.HResp.Read()
	granted := m.bus.Grant[m.idx].Read()

	// 1. Data-phase completion / error handling.
	if m.dataPhase != nil {
		if !hready {
			switch resp {
			case RespRetry, RespSplit:
				// First cycle of a two-cycle RETRY/SPLIT: cancel the
				// address phase, drive IDLE, and queue both the failed
				// beat and the canceled address-phase beat for re-issue.
				if resp == RespRetry {
					m.stats.Retries++
				} else {
					m.stats.Splits++
					m.splitWait = true
				}
				m.rewind = append(m.rewind, m.dataPhase)
				if m.addrPhase != nil && (m.addrPhase.trans == TransNonseq || m.addrPhase.trans == TransSeq) {
					m.rewind = append(m.rewind, m.addrPhase)
				}
				m.dataPhase = nil
				m.addrPhase = nil
				m.mustNonseq = true
				m.driveIdle()
			case RespError:
				// First cycle of a two-cycle ERROR: transfer will be
				// abandoned at the second cycle.
				m.stats.WaitCycle++
			default:
				m.stats.WaitCycle++
			}
		} else {
			f := m.dataPhase
			m.dataPhase = nil
			switch resp {
			case RespOkay:
				m.completeBeat(f, RespOkay)
				m.recycle(f)
			case RespError:
				m.stats.Errors++
				m.completeBeat(f, RespError)
				m.recycle(f)
			default:
				// Second cycle of RETRY/SPLIT reached without the first
				// having been observed (cannot normally happen).
				m.rewind = append(m.rewind, f)
			}
		}
	}

	if !hready {
		// Address phase is frozen during wait states.
		return
	}

	// 2. The address phase just got sampled: promote it to data phase.
	if m.addrPhase != nil {
		if m.addrPhase.trans == TransNonseq || m.addrPhase.trans == TransSeq {
			m.dataPhase = m.addrPhase
			if m.dataPhase.write {
				m.ports.Wdata.Write(m.dataPhase.data)
			}
		}
		m.addrPhase = nil
	}

	// 3. Drive the next address phase.
	m.driveNext(granted)
}

// completeBeat finalizes one beat.
func (m *Master) completeBeat(f *flight, resp uint8) {
	m.stats.Beats++
	r := Result{
		Write: f.write,
		Addr:  f.addr,
		Resp:  resp,
		Cycle: m.bus.Clk.Cycles(),
	}
	if f.write {
		r.Data = f.data
	} else {
		r.Data = m.bus.HRdata.Read()
	}
	if m.keepRes {
		m.results = append(m.results, r)
	}
	if m.onResult != nil {
		m.onResult(r)
	}
}

// driveIdle parks the master's address outputs.
func (m *Master) driveIdle() {
	m.ports.Trans.Write(TransIdle)
	m.ports.Lock.Write(false)
}

// driveNext picks and drives the next beat, BUSY cycle or IDLE.
func (m *Master) driveNext(granted bool) {
	// Request logic: request while work remains in the current sequence
	// (including a beat to re-issue) and not waiting for a split resume.
	wantBus := m.hasWork()
	if m.splitWait {
		if m.bus.splitMask&(1<<uint(m.idx)) != 0 {
			wantBus = false
		} else {
			m.splitWait = false
		}
	}
	m.ports.BusReq.Write(wantBus)

	if !granted || !wantBus {
		m.driveIdle()
		if wantBus {
			// Lost or awaiting the bus mid-sequence: any burst in
			// progress must be rebuilt with NONSEQ when regained.
			m.mustNonseq = true
		} else {
			m.advanceIdle()
		}
		return
	}

	// Re-issue a RETRY/SPLIT/preempted beat: NONSEQ with INCR
	// (early-terminated burst semantics).
	if len(m.rewind) > 0 {
		f := m.rewind[0]
		m.rewind = m.rewind[1:]
		// Re-issue the same flight in place; nothing else references it
		// once it leaves the rewind queue.
		f.burst, f.trans = BurstIncr, TransNonseq
		m.driveFlight(f)
		return
	}

	op := m.currentOp()
	if op == nil || op.Kind == OpIdle {
		m.driveIdle()
		m.advanceIdle()
		return
	}

	// BUSY insertion before this beat.
	if op.BusyBefore != nil && m.beat > 0 {
		if left := op.BusyBefore[m.beat]; left > 0 {
			op.BusyBefore[m.beat] = left - 1
			m.stats.BusyCycle++
			m.ports.Trans.Write(TransBusy)
			return
		}
	}

	f := m.flightFor(op)
	m.driveFlight(f)
	m.beat++
	if m.beat >= op.beats() {
		m.beat = 0
		m.opIdx++
		if m.opIdx >= len(m.script[m.seqIdx].Ops) {
			m.opIdx = 0
			m.idleCnt = m.script[m.seqIdx].IdleAfter
			m.seqIdx++
		}
	}
}

// hasWork reports whether the master has a beat to issue now (rewind or a
// non-idle op at the current script position).
func (m *Master) hasWork() bool {
	if len(m.rewind) > 0 || m.addrPhase != nil {
		return true
	}
	if m.idleCnt > 0 {
		return false
	}
	op := m.currentOp()
	return op != nil && op.Kind != OpIdle
}

// currentOp returns the op at the script cursor, or nil when exhausted.
func (m *Master) currentOp() *Op {
	if m.seqIdx >= len(m.script) {
		return nil
	}
	seq := &m.script[m.seqIdx]
	if m.opIdx >= len(seq.Ops) {
		return nil
	}
	return &seq.Ops[m.opIdx]
}

// advanceIdle consumes one idle cycle if an idle gap or OpIdle is active.
func (m *Master) advanceIdle() {
	m.stats.IdleCycle++
	if m.idleCnt > 0 {
		m.idleCnt--
		return
	}
	op := m.currentOp()
	if op != nil && op.Kind == OpIdle {
		if m.beat == 0 {
			m.beat = op.IdleCycles
		}
		m.beat--
		if m.beat <= 0 {
			m.beat = 0
			m.opIdx++
			if m.opIdx >= len(m.script[m.seqIdx].Ops) {
				m.opIdx = 0
				m.idleCnt = m.script[m.seqIdx].IdleAfter
				m.seqIdx++
			}
		}
	}
}

// flightFor builds the flight for the current beat of op.
func (m *Master) flightFor(op *Op) *flight {
	f := m.newFlight()
	f.op, f.beatIdx, f.write, f.size = op, m.beat, op.Kind == OpWrite, op.Size
	if f.size == 0 && m.bus.Cfg.DataWidth == 32 {
		f.size = Size32
	}
	f.burst = op.burstCode()
	if m.beat == 0 {
		f.addr = op.Addr
		f.trans = TransNonseq
	} else if m.mustNonseq {
		// Burst rebuilt after losing the bus: restart as NONSEQ/INCR.
		f.trans = TransNonseq
		f.burst = BurstIncr
		f.addr = m.nextAddr(op)
	} else {
		f.trans = TransSeq
		f.addr = m.nextAddr(op)
	}
	m.mustNonseq = false
	if f.write && m.beat < len(op.Data) {
		f.data = op.Data[m.beat] & m.bus.DataMask()
	}
	return f
}

// nextAddr computes the address of beat m.beat of op.
func (m *Master) nextAddr(op *Op) uint32 {
	addr := op.Addr
	for i := 0; i < m.beat; i++ {
		addr = NextBurstAddr(addr, op.burstCode(), m.sizeOf(op))
	}
	return addr
}

func (m *Master) sizeOf(op *Op) uint8 {
	if op.Size == 0 && m.bus.Cfg.DataWidth == 32 {
		return Size32
	}
	return op.Size
}

// driveFlight puts a beat on the address bus.
func (m *Master) driveFlight(f *flight) {
	if m.onDrive != nil && (f.trans == TransNonseq || f.trans == TransSeq) {
		bd := BeatDrive{Trans: f.trans, Beat: f.beatIdx, Write: f.write, Addr: f.addr, Data: f.data}
		m.onDrive(&bd)
		f.addr = bd.Addr
		if f.write {
			f.data = bd.Data & m.bus.DataMask()
		}
	}
	m.addrPhase = f
	m.ports.Trans.Write(f.trans)
	m.ports.Addr.Write(f.addr)
	m.ports.Write.Write(f.write)
	m.ports.Size.Write(f.size)
	m.ports.Burst.Write(f.burst)
	m.ports.Lock.Write(f.op != nil && f.op.Lock)
}
