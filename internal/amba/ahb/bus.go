package ahb

import (
	"fmt"

	"ahbpower/internal/probe"
	"ahbpower/internal/sim"
)

// Region maps an address range to a slave index.
type Region struct {
	Start uint32
	Size  uint32
	Slave int
}

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr uint32) bool {
	return addr >= r.Start && addr-r.Start < r.Size
}

// ArbPolicy selects the arbitration scheme.
type ArbPolicy uint8

// Arbitration policies.
const (
	// PolicySticky keeps the current master while it requests (so
	// sequences are non-interruptible, as in the paper's testbench), then
	// grants the highest-priority requester, else the default master.
	PolicySticky ArbPolicy = iota
	// PolicyFixed always grants the highest-priority (lowest index)
	// requester; it preempts ongoing bursts.
	PolicyFixed
	// PolicyRoundRobin rotates priority starting after the current owner.
	PolicyRoundRobin
)

// String names the policy.
func (p ArbPolicy) String() string {
	switch p {
	case PolicySticky:
		return "sticky"
	case PolicyFixed:
		return "fixed"
	case PolicyRoundRobin:
		return "rr"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// ParsePolicy maps a policy name ("sticky", "fixed", "rr") to its value.
func ParsePolicy(s string) (ArbPolicy, error) {
	switch s {
	case "sticky":
		return PolicySticky, nil
	case "fixed":
		return PolicyFixed, nil
	case "rr":
		return PolicyRoundRobin, nil
	}
	return 0, fmt.Errorf("ahb: unknown arbitration policy %q", s)
}

// Config parameterizes a bus instance.
type Config struct {
	Name          string
	NumMasters    int
	NumSlaves     int
	Regions       []Region
	ClockPeriod   sim.Time
	DataWidth     int // 8, 16 or 32 bits
	DefaultMaster int // granted when nobody requests
	Policy        ArbPolicy
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.NumMasters < 1 || c.NumMasters > 16 {
		return fmt.Errorf("ahb: NumMasters=%d, want 1..16", c.NumMasters)
	}
	if c.NumSlaves < 1 || c.NumSlaves > 16 {
		return fmt.Errorf("ahb: NumSlaves=%d, want 1..16", c.NumSlaves)
	}
	if c.DataWidth != 8 && c.DataWidth != 16 && c.DataWidth != 32 {
		return fmt.Errorf("ahb: DataWidth=%d, want 8/16/32", c.DataWidth)
	}
	if c.DefaultMaster < 0 || c.DefaultMaster >= c.NumMasters {
		return fmt.Errorf("ahb: DefaultMaster=%d out of range", c.DefaultMaster)
	}
	if c.ClockPeriod <= 0 {
		return fmt.Errorf("ahb: ClockPeriod must be positive")
	}
	for i, r := range c.Regions {
		if r.Slave < 0 || r.Slave >= c.NumSlaves {
			return fmt.Errorf("ahb: region %d maps to slave %d, out of range", i, r.Slave)
		}
		if r.Size == 0 {
			return fmt.Errorf("ahb: region %d has zero size", i)
		}
		for j := 0; j < i; j++ {
			o := c.Regions[j]
			if r.Start < o.Start+o.Size && o.Start < r.Start+r.Size {
				return fmt.Errorf("ahb: regions %d and %d overlap", j, i)
			}
		}
	}
	return nil
}

// masterPorts bundles the output signals of one master.
type masterPorts struct {
	BusReq *sim.Signal[bool]
	Lock   *sim.Signal[bool]
	Trans  *sim.Signal[uint8]
	Addr   *sim.Signal[uint32]
	Write  *sim.Signal[bool]
	Size   *sim.Signal[uint8]
	Burst  *sim.Signal[uint8]
	Prot   *sim.Signal[uint8]
	Wdata  *sim.Signal[uint32]
}

// slavePorts bundles the output signals of one slave.
type slavePorts struct {
	ReadyOut *sim.Signal[bool]
	Resp     *sim.Signal[uint8]
	Rdata    *sim.Signal[uint32]
	SplitRes *sim.Signal[uint16] // split-resume mask (one bit per master)
}

// Bus is a complete AHB interconnect instance: arbiter, decoder, M2S and
// S2M multiplexers plus the signal fabric connecting masters and slaves.
type Bus struct {
	Cfg Config
	K   *sim.Kernel
	Clk *sim.Clock

	M []masterPorts
	S []slavePorts

	// Grant lines, one per master (registered, one-hot).
	Grant []*sim.Signal[bool]
	// GrantIdx mirrors the one-hot grant as an index.
	GrantIdx *sim.Signal[uint8]

	// Muxed address/control (M2S multiplexer output).
	HTrans *sim.Signal[uint8]
	HAddr  *sim.Signal[uint32]
	HWrite *sim.Signal[bool]
	HSize  *sim.Signal[uint8]
	HBurst *sim.Signal[uint8]
	HProt  *sim.Signal[uint8]
	HWdata *sim.Signal[uint32]

	// HMaster is the index of the master owning the address phase;
	// HMastlock is its lock status.
	HMaster   *sim.Signal[uint8]
	HMastlock *sim.Signal[bool]

	// Decoder outputs.
	Sel    []*sim.Signal[bool]
	SelIdx *sim.Signal[int] // selected slave index, -2 for default slave

	// Data-phase bookkeeping registers.
	DataMaster *sim.Signal[uint8] // owner of the data phase (selects HWDATA)
	DataSlave  *sim.Signal[int]   // slave in data phase, -1 none, -2 default

	// S2M multiplexer output.
	HRdata *sim.Signal[uint32]
	HResp  *sim.Signal[uint8]
	HReady *sim.Signal[bool]

	// Default-slave internal state (responds ERROR to unmapped accesses).
	defReady *sim.Signal[bool]
	defResp  *sim.Signal[uint8]

	splitMask uint16 // masters currently split-masked from arbitration

	// defErrCycle is the default slave's two-cycle-ERROR latch; a Bus
	// field (not a closure local) so snapshots can carry it.
	defErrCycle bool

	// combWaves holds the bus's combinational processes in topological
	// evaluation order (mux wave, then the decoder that reads the muxed
	// address), for straight-line execution by a flat stepper.
	combWaves [][]*sim.Process

	hub        probe.Hub[CycleInfo]
	cycles     uint64
	lastMaster uint8
}

// DataMask returns the valid-bit mask of the configured data width.
func (b *Bus) DataMask() uint32 {
	if b.Cfg.DataWidth >= 32 {
		return ^uint32(0)
	}
	return (uint32(1) << uint(b.Cfg.DataWidth)) - 1
}

// New creates a bus with the given configuration. Masters and slaves are
// attached afterwards with NewMaster / attach-slave helpers; unattached
// ports behave as permanently idle devices.
func New(k *sim.Kernel, cfg Config) (*Bus, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Name == "" {
		cfg.Name = "ahb"
	}
	b := &Bus{Cfg: cfg, K: k}
	n := cfg.Name
	b.Clk = sim.NewClock(k, n+".hclk", cfg.ClockPeriod)

	for m := 0; m < cfg.NumMasters; m++ {
		p := fmt.Sprintf("%s.m%d.", n, m)
		b.M = append(b.M, masterPorts{
			BusReq: sim.NewBool(k, p+"hbusreq", false),
			Lock:   sim.NewBool(k, p+"hlock", false),
			Trans:  sim.NewSignal[uint8](k, p+"htrans", TransIdle),
			Addr:   sim.NewSignal[uint32](k, p+"haddr", 0),
			Write:  sim.NewBool(k, p+"hwrite", false),
			Size:   sim.NewSignal[uint8](k, p+"hsize", Size32),
			Burst:  sim.NewSignal[uint8](k, p+"hburst", BurstSingle),
			Prot:   sim.NewSignal[uint8](k, p+"hprot", 0),
			Wdata:  sim.NewSignal[uint32](k, p+"hwdata", 0),
		})
		b.Grant = append(b.Grant, sim.NewBool(k, fmt.Sprintf("%s.hgrant%d", n, m), m == cfg.DefaultMaster))
	}
	for s := 0; s < cfg.NumSlaves; s++ {
		p := fmt.Sprintf("%s.s%d.", n, s)
		b.S = append(b.S, slavePorts{
			ReadyOut: sim.NewBool(k, p+"hreadyout", true),
			Resp:     sim.NewSignal[uint8](k, p+"hresp", RespOkay),
			Rdata:    sim.NewSignal[uint32](k, p+"hrdata", 0),
			SplitRes: sim.NewSignal[uint16](k, p+"hsplit", 0),
		})
		b.Sel = append(b.Sel, sim.NewBool(k, fmt.Sprintf("%s.hsel%d", n, s), false))
	}

	b.GrantIdx = sim.NewSignal[uint8](k, n+".grantidx", uint8(cfg.DefaultMaster))
	b.HTrans = sim.NewSignal[uint8](k, n+".htrans", TransIdle)
	b.HAddr = sim.NewSignal[uint32](k, n+".haddr", 0)
	b.HWrite = sim.NewBool(k, n+".hwrite", false)
	b.HSize = sim.NewSignal[uint8](k, n+".hsize", Size32)
	b.HBurst = sim.NewSignal[uint8](k, n+".hburst", BurstSingle)
	b.HProt = sim.NewSignal[uint8](k, n+".hprot", 0)
	b.HWdata = sim.NewSignal[uint32](k, n+".hwdata", 0)
	b.HMaster = sim.NewSignal[uint8](k, n+".hmaster", uint8(cfg.DefaultMaster))
	b.HMastlock = sim.NewBool(k, n+".hmastlock", false)
	b.SelIdx = sim.NewSignal[int](k, n+".selidx", -1)
	b.DataMaster = sim.NewSignal[uint8](k, n+".datamaster", uint8(cfg.DefaultMaster))
	b.DataSlave = sim.NewSignal[int](k, n+".dataslave", -1)
	b.HRdata = sim.NewSignal[uint32](k, n+".hrdata", 0)
	b.HResp = sim.NewSignal[uint8](k, n+".hresp", RespOkay)
	b.HReady = sim.NewBool(k, n+".hready", true)
	b.defReady = sim.NewBool(k, n+".defready", true)
	b.defResp = sim.NewSignal[uint8](k, n+".defresp", RespOkay)
	b.lastMaster = uint8(cfg.DefaultMaster)

	decoder := b.buildDecoder()
	m2sAddr, m2sWdata := b.buildM2S()
	s2m := b.buildS2M()
	b.buildArbiter()
	b.buildDefaultSlave()
	b.buildCycleProbe()
	// Topological order for flat execution: the muxes read only registered
	// (edge-written) signals, the decoder reads the muxed address/control.
	b.combWaves = [][]*sim.Process{{m2sAddr, m2sWdata, s2m}, {decoder}}
	return b, nil
}

// NewFlat returns a straight-line cycle stepper over the built bus: the
// compiled execution backend. It must be called after every master, slave
// and injector is attached (their processes join the posedge schedule) and
// before the simulation starts; the returned stepper then owns the kernel.
func (b *Bus) NewFlat() (*sim.Flat, error) {
	return sim.NewFlat(b.K, b.Clk, b.combWaves)
}

// buildDecoder creates the combinational address decoder: HSELx lines and
// the selected-slave index. Unmapped addresses select the internal default
// slave (-2).
func (b *Bus) buildDecoder() *sim.Process {
	sens := []sim.Trigger{b.HAddr.Changed(), b.HTrans.Changed()}
	return b.K.Method(b.Cfg.Name+".decoder", func() {
		addr := b.HAddr.Read()
		idx := -2
		for _, r := range b.Cfg.Regions {
			if r.Contains(addr) {
				idx = r.Slave
				break
			}
		}
		for s := range b.Sel {
			b.Sel[s].Write(idx == s)
		}
		b.SelIdx.Write(idx)
	}, sens...)
}

// buildM2S creates the masters-to-slaves multiplexer: address/control
// selected by HMASTER, write data selected by the data-phase owner.
func (b *Bus) buildM2S() (addrProc, wdataProc *sim.Process) {
	var sens []sim.Trigger
	for m := range b.M {
		p := &b.M[m]
		sens = append(sens, p.Trans.Changed(), p.Addr.Changed(), p.Write.Changed(),
			p.Size.Changed(), p.Burst.Changed(), p.Prot.Changed())
	}
	sens = append(sens, b.HMaster.Changed())
	addrProc = b.K.Method(b.Cfg.Name+".mux_m2s_addr", func() {
		m := int(b.HMaster.Read())
		if m >= len(b.M) {
			m = 0
		}
		p := &b.M[m]
		b.HTrans.Write(p.Trans.Read())
		b.HAddr.Write(p.Addr.Read())
		b.HWrite.Write(p.Write.Read())
		b.HSize.Write(p.Size.Read())
		b.HBurst.Write(p.Burst.Read())
		b.HProt.Write(p.Prot.Read())
	}, sens...)

	var dsens []sim.Trigger
	for m := range b.M {
		dsens = append(dsens, b.M[m].Wdata.Changed())
	}
	dsens = append(dsens, b.DataMaster.Changed())
	wdataProc = b.K.Method(b.Cfg.Name+".mux_m2s_wdata", func() {
		m := int(b.DataMaster.Read())
		if m >= len(b.M) {
			m = 0
		}
		b.HWdata.Write(b.M[m].Wdata.Read() & b.DataMask())
	}, dsens...)
	return addrProc, wdataProc
}

// buildS2M creates the slaves-to-masters multiplexer: read data, response
// and ready selected by the data-phase slave; idle bus reads ready/OKAY.
func (b *Bus) buildS2M() *sim.Process {
	var sens []sim.Trigger
	for s := range b.S {
		p := &b.S[s]
		sens = append(sens, p.ReadyOut.Changed(), p.Resp.Changed(), p.Rdata.Changed())
	}
	sens = append(sens, b.DataSlave.Changed(), b.defReady.Changed(), b.defResp.Changed())
	return b.K.Method(b.Cfg.Name+".mux_s2m", func() {
		ds := b.DataSlave.Read()
		switch {
		case ds >= 0 && ds < len(b.S):
			p := &b.S[ds]
			b.HRdata.Write(p.Rdata.Read() & b.DataMask())
			b.HResp.Write(p.Resp.Read())
			b.HReady.Write(p.ReadyOut.Read())
		case ds == -2:
			// Default slave: response lines only; the read-data bus parks
			// at its previous value (no driver turnaround churn).
			b.HResp.Write(b.defResp.Read())
			b.HReady.Write(b.defReady.Read())
		default:
			b.HResp.Write(RespOkay)
			b.HReady.Write(true)
		}
	}, sens...)
}

// buildArbiter creates the registered arbitration process: grants, the
// HMASTER address-phase owner and the data-phase bookkeeping registers all
// advance on clock edges where HREADY is high.
func (b *Bus) buildArbiter() {
	b.K.MethodNoInit(b.Cfg.Name+".arbiter", func() {
		if !b.HReady.Read() {
			return
		}
		cur := int(b.GrantIdx.Read())
		// Address-phase ownership follows the previous grant.
		b.HMaster.Write(uint8(cur))
		b.HMastlock.Write(b.M[cur].Lock.Read())
		// Data-phase registers follow the current address phase.
		b.DataMaster.Write(b.HMaster.Read())
		t := b.HTrans.Read()
		if t == TransNonseq || t == TransSeq {
			b.DataSlave.Write(b.SelIdx.Read())
		} else {
			b.DataSlave.Write(-1)
		}
		// Re-arbitrate.
		next := b.arbitrate(cur)
		if next != cur {
			for m := range b.Grant {
				b.Grant[m].Write(m == next)
			}
			b.GrantIdx.Write(uint8(next))
		}
	}, b.Clk.Posedge())
}

// arbitrate picks the next grant owner under the configured policy,
// honoring locks and split masking.
func (b *Bus) arbitrate(cur int) int {
	// A locked current master is never preempted.
	if b.M[cur].Lock.Read() && b.M[cur].BusReq.Read() {
		return cur
	}
	req := func(m int) bool {
		return b.M[m].BusReq.Read() && b.splitMask&(1<<uint(m)) == 0
	}
	switch b.Cfg.Policy {
	case PolicySticky:
		if req(cur) {
			return cur
		}
		for m := 0; m < b.Cfg.NumMasters; m++ {
			if req(m) {
				return m
			}
		}
	case PolicyFixed:
		for m := 0; m < b.Cfg.NumMasters; m++ {
			if req(m) {
				return m
			}
		}
	case PolicyRoundRobin:
		for i := 1; i <= b.Cfg.NumMasters; i++ {
			m := (cur + i) % b.Cfg.NumMasters
			if req(m) {
				return m
			}
		}
	}
	return b.Cfg.DefaultMaster
}

// buildDefaultSlave installs the internal default slave: accesses to
// unmapped addresses receive a two-cycle ERROR response, as required by
// the AHB spec for non-IDLE transfers to undecoded space.
func (b *Bus) buildDefaultSlave() {
	b.K.MethodNoInit(b.Cfg.Name+".defslave", func() {
		if !b.HReady.Read() {
			if b.defErrCycle {
				// Second cycle of the two-cycle ERROR.
				b.defReady.Write(true)
				b.defErrCycle = false
			}
			return
		}
		t := b.HTrans.Read()
		if b.SelIdx.Read() == -2 && (t == TransNonseq || t == TransSeq) {
			b.defReady.Write(false)
			b.defResp.Write(RespError)
			b.defErrCycle = true
		} else {
			b.defReady.Write(true)
			b.defResp.Write(RespOkay)
		}
	}, b.Clk.Posedge())
}

// SplitMask exposes the arbiter's split mask (for monitors and tests).
func (b *Bus) SplitMask() uint16 { return b.splitMask }

// MaskSplit records that master m received a SPLIT and must not be granted
// until resumed. Split-capable slaves (and the fault injector) call it on
// the cycle they issue the SPLIT response.
func (b *Bus) MaskSplit(m uint8) {
	b.splitMask |= 1 << uint(m)
}

// WatchSplitResume wires slave s's split-resume signal (HSPLITx) into the
// arbiter: any bit pulsed on SplitRes unmasks the corresponding master.
// Idempotent registration is the caller's concern; each call adds a
// watcher.
func (b *Bus) WatchSplitResume(s int) {
	b.S[s].SplitRes.Watch(func(_, now uint16) {
		b.splitMask &^= now
	})
}
