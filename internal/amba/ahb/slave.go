package ahb

import "fmt"

// latched is an address phase captured by a slave.
type latched struct {
	addr  uint32
	write bool
	size  uint8
}

// MemorySlave is a word-addressable memory responding OKAY with a
// configurable number of wait states per transfer.
type MemorySlave struct {
	bus   *Bus
	idx   int
	ports *slavePorts

	Waits int // wait states per data phase

	mem      map[uint32]uint32
	pending  *latched
	waitLeft int

	stats SlaveStats
}

// SlaveStats counts slave-side events.
type SlaveStats struct {
	Reads  uint64
	Writes uint64
	Waits  uint64
}

// NewMemorySlave attaches a memory slave to bus port idx.
func NewMemorySlave(b *Bus, idx, waitStates int) (*MemorySlave, error) {
	if idx < 0 || idx >= b.Cfg.NumSlaves {
		return nil, fmt.Errorf("ahb: slave index %d out of range", idx)
	}
	if waitStates < 0 {
		return nil, fmt.Errorf("ahb: negative wait states")
	}
	s := &MemorySlave{bus: b, idx: idx, ports: &b.S[idx], Waits: waitStates, mem: map[uint32]uint32{}}
	b.K.MethodNoInit(fmt.Sprintf("%s.memslave%d", b.Cfg.Name, idx), s.tick, b.Clk.Posedge())
	return s, nil
}

// Poke writes directly into the backing memory (for test setup).
func (s *MemorySlave) Poke(addr, val uint32) { s.mem[addr>>2] = val }

// Peek reads directly from the backing memory.
func (s *MemorySlave) Peek(addr uint32) uint32 { return s.mem[addr>>2] }

// Stats returns the slave's counters.
func (s *MemorySlave) Stats() SlaveStats { return s.stats }

func (s *MemorySlave) tick() {
	hready := s.bus.HReady.Read()

	// Progress an ongoing data phase.
	if s.pending != nil {
		if s.waitLeft > 0 {
			s.waitLeft--
			s.stats.Waits++
			if s.waitLeft == 0 {
				// The final data cycle begins now; completion happens at
				// the next edge once HREADY has been seen high.
				s.finishPhase()
			}
			return
		}
		if hready {
			// Data phase completed at this edge.
			if s.pending.write {
				s.mem[s.pending.addr>>2] = s.bus.HWdata.Read()
				s.stats.Writes++
			} else {
				s.stats.Reads++
			}
			s.pending = nil
		}
	}

	if !hready {
		return
	}

	// Latch a new address phase if selected with an active transfer.
	t := s.bus.HTrans.Read()
	if s.bus.Sel[s.idx].Read() && (t == TransNonseq || t == TransSeq) {
		s.pending = &latched{
			addr:  s.bus.HAddr.Read(),
			write: s.bus.HWrite.Read(),
			size:  s.bus.HSize.Read(),
		}
		s.ports.Resp.Write(RespOkay)
		if s.Waits > 0 {
			s.waitLeft = s.Waits
			s.ports.ReadyOut.Write(false)
		} else {
			s.finishPhase()
		}
	} else {
		s.ports.ReadyOut.Write(true)
		s.ports.Resp.Write(RespOkay)
	}
}

// finishPhase drives the final data cycle: ready high plus read data.
func (s *MemorySlave) finishPhase() {
	s.ports.ReadyOut.Write(true)
	if !s.pending.write {
		s.ports.Rdata.Write(s.mem[s.pending.addr>>2])
	}
}

// ErrorSlave responds with a two-cycle ERROR to every active transfer —
// useful for exercising master error paths.
type ErrorSlave struct {
	bus      *Bus
	idx      int
	ports    *slavePorts
	errCycle bool
	Errors   uint64
}

// NewErrorSlave attaches an always-erroring slave to bus port idx.
func NewErrorSlave(b *Bus, idx int) (*ErrorSlave, error) {
	if idx < 0 || idx >= b.Cfg.NumSlaves {
		return nil, fmt.Errorf("ahb: slave index %d out of range", idx)
	}
	s := &ErrorSlave{bus: b, idx: idx, ports: &b.S[idx]}
	b.K.MethodNoInit(fmt.Sprintf("%s.errslave%d", b.Cfg.Name, idx), s.tick, b.Clk.Posedge())
	return s, nil
}

func (s *ErrorSlave) tick() {
	if !s.bus.HReady.Read() {
		if s.errCycle {
			s.ports.ReadyOut.Write(true) // second ERROR cycle
			s.errCycle = false
		}
		return
	}
	t := s.bus.HTrans.Read()
	if s.bus.Sel[s.idx].Read() && (t == TransNonseq || t == TransSeq) {
		s.Errors++
		s.ports.ReadyOut.Write(false)
		s.ports.Resp.Write(RespError)
		s.errCycle = true
	} else {
		s.ports.ReadyOut.Write(true)
		s.ports.Resp.Write(RespOkay)
	}
}

// RetrySlave issues a configurable number of RETRY responses to each
// transfer before completing it OKAY against a backing memory.
type RetrySlave struct {
	bus     *Bus
	idx     int
	ports   *slavePorts
	Retries int // RETRYs issued per transfer before acceptance

	mem      map[uint32]uint32
	pending  *latched
	tryCount int
	twoCycle bool
	Issued   uint64
}

// NewRetrySlave attaches a retry-then-accept slave to bus port idx.
func NewRetrySlave(b *Bus, idx, retries int) (*RetrySlave, error) {
	if idx < 0 || idx >= b.Cfg.NumSlaves {
		return nil, fmt.Errorf("ahb: slave index %d out of range", idx)
	}
	s := &RetrySlave{bus: b, idx: idx, ports: &b.S[idx], Retries: retries, mem: map[uint32]uint32{}}
	b.K.MethodNoInit(fmt.Sprintf("%s.retryslave%d", b.Cfg.Name, idx), s.tick, b.Clk.Posedge())
	return s, nil
}

// Peek reads directly from the backing memory.
func (s *RetrySlave) Peek(addr uint32) uint32 { return s.mem[addr>>2] }

func (s *RetrySlave) tick() {
	if !s.bus.HReady.Read() {
		if s.twoCycle {
			s.ports.ReadyOut.Write(true) // second RETRY cycle
			s.twoCycle = false
		}
		return
	}
	// Complete an accepted data phase.
	if s.pending != nil && s.ports.Resp.Read() == RespOkay {
		if s.pending.write {
			s.mem[s.pending.addr>>2] = s.bus.HWdata.Read()
		}
		s.pending = nil
	}
	t := s.bus.HTrans.Read()
	if s.bus.Sel[s.idx].Read() && (t == TransNonseq || t == TransSeq) {
		if s.tryCount < s.Retries {
			s.tryCount++
			s.Issued++
			s.ports.ReadyOut.Write(false)
			s.ports.Resp.Write(RespRetry)
			s.twoCycle = true
			return
		}
		s.tryCount = 0
		s.pending = &latched{
			addr:  s.bus.HAddr.Read(),
			write: s.bus.HWrite.Read(),
		}
		s.ports.ReadyOut.Write(true)
		s.ports.Resp.Write(RespOkay)
		if !s.pending.write {
			s.ports.Rdata.Write(s.mem[s.pending.addr>>2])
		}
	} else {
		s.ports.ReadyOut.Write(true)
		s.ports.Resp.Write(RespOkay)
	}
}

// SplitSlave SPLITs the first attempt of each transfer, releases the
// master after HoldCycles, then completes the re-attempted transfer OKAY.
type SplitSlave struct {
	bus        *Bus
	idx        int
	ports      *slavePorts
	HoldCycles int

	mem      map[uint32]uint32
	pending  *latched
	twoCycle bool
	holding  int // countdown to split resume
	heldMask uint16
	primed   bool // next matching attempt completes
	Splits   uint64
}

// NewSplitSlave attaches a split-capable slave to bus port idx.
func NewSplitSlave(b *Bus, idx, holdCycles int) (*SplitSlave, error) {
	if idx < 0 || idx >= b.Cfg.NumSlaves {
		return nil, fmt.Errorf("ahb: slave index %d out of range", idx)
	}
	if holdCycles < 1 {
		holdCycles = 1
	}
	s := &SplitSlave{bus: b, idx: idx, ports: &b.S[idx], HoldCycles: holdCycles, mem: map[uint32]uint32{}}
	b.WatchSplitResume(idx)
	b.K.MethodNoInit(fmt.Sprintf("%s.splitslave%d", b.Cfg.Name, idx), s.tick, b.Clk.Posedge())
	return s, nil
}

// Peek reads directly from the backing memory.
func (s *SplitSlave) Peek(addr uint32) uint32 { return s.mem[addr>>2] }

func (s *SplitSlave) tick() {
	// Count down the split hold and raise the resume mask.
	if s.holding > 0 {
		s.holding--
		if s.holding == 0 {
			s.ports.SplitRes.Write(s.heldMask)
			s.primed = true
		}
	} else if s.ports.SplitRes.Read() != 0 {
		s.ports.SplitRes.Write(0)
	}

	if !s.bus.HReady.Read() {
		if s.twoCycle {
			s.ports.ReadyOut.Write(true) // second SPLIT cycle
			s.twoCycle = false
		}
		return
	}
	if s.pending != nil && s.ports.Resp.Read() == RespOkay {
		if s.pending.write {
			s.mem[s.pending.addr>>2] = s.bus.HWdata.Read()
		}
		s.pending = nil
	}
	t := s.bus.HTrans.Read()
	if s.bus.Sel[s.idx].Read() && (t == TransNonseq || t == TransSeq) {
		if !s.primed {
			s.Splits++
			s.ports.ReadyOut.Write(false)
			s.ports.Resp.Write(RespSplit)
			s.twoCycle = true
			s.holding = s.HoldCycles
			// The transfer being split is the one entering its data
			// phase now: the address-phase master of the sampled cycle.
			m := s.bus.HMaster.Read()
			s.heldMask = 1 << uint(m)
			s.bus.MaskSplit(m)
			return
		}
		s.primed = false
		s.pending = &latched{
			addr:  s.bus.HAddr.Read(),
			write: s.bus.HWrite.Read(),
		}
		s.ports.ReadyOut.Write(true)
		s.ports.Resp.Write(RespOkay)
		if !s.pending.write {
			s.ports.Rdata.Write(s.mem[s.pending.addr>>2])
		}
	} else {
		s.ports.ReadyOut.Write(true)
		s.ports.Resp.Write(RespOkay)
	}
}
