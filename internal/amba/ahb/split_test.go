package ahb

import (
	"testing"

	"ahbpower/internal/sim"
)

// TestSplitMaskBlocksGrant pins the arbiter half of the SPLIT protocol:
// from the cycle a master is split-masked until its resume pulse, the
// arbiter must never grant it again — even when its request line is
// asserted — while other masters keep progressing through the window.
func TestSplitMaskBlocksGrant(t *testing.T) {
	k := sim.NewKernel()
	bus, err := New(k, Config{
		NumMasters: 2,
		NumSlaves:  2,
		Regions: []Region{
			{Start: 0, Size: 0x1000, Slave: 0},
			{Start: 0x1000, Size: 0x1000, Slave: 1},
		},
		ClockPeriod: 10 * sim.Nanosecond,
		DataWidth:   32,
		// Keep the idle-bus fallback away from the masked master so the
		// test observes arbitration, not the default-grant path.
		DefaultMaster: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	mon := NewMonitor(bus)
	m0, _ := NewMaster(bus, 0)
	m0.KeepResults(true)
	m1, _ := NewMaster(bus, 1)
	m1.KeepResults(true)
	ss, err := NewSplitSlave(bus, 0, 12)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMemorySlave(bus, 1, 0); err != nil {
		t.Fatal(err)
	}
	// Master 0 hits the split slave; master 1 keeps the bus busy on slave 1
	// across the whole mask window. The leading idle keeps the boot-granted
	// default master quiet until the monitor has seen a full cycle.
	m0.Enqueue(Sequence{Ops: []Op{{Kind: OpWrite, Addr: 0x40, Data: []uint32{0xAB}}}})
	m1.Enqueue(Sequence{Ops: []Op{
		{Kind: OpIdle, IdleCycles: 3},
		{Kind: OpWrite, Addr: 0x1040, Data: []uint32{1, 2, 3, 4}},
		{Kind: OpRead, Addr: 0x1040, Beats: 4},
		{Kind: OpWrite, Addr: 0x1080, Data: []uint32{5, 6, 7, 8}},
	}})

	// The watcher runs after every component (registered last): it forces
	// the masked master's request line high — a rogue re-request the
	// arbiter must ignore — and records any re-grant inside the window.
	// The grant legitimately stays with (or returns to) the split master
	// through the two-cycle SPLIT response itself, so policing starts
	// three cycles into the mask window.
	var cyc, maskStart, maskedCycles, regrants int
	grantLeft := false
	k.MethodNoInit("split-watch", func() {
		cyc++
		if bus.SplitMask()&1 == 0 {
			return
		}
		if maskedCycles == 0 {
			maskStart = cyc
		}
		maskedCycles++
		bus.M[0].BusReq.Write(true)
		g0 := bus.Grant[0].Read()
		if cyc >= maskStart+3 {
			if grantLeft && g0 {
				regrants++
			}
			if !g0 {
				grantLeft = true
			}
		}
	}, bus.Clk.Posedge())

	if err := k.RunCycles(bus.Clk, 200); err != nil {
		t.Fatal(err)
	}
	if maskedCycles == 0 {
		t.Fatal("split mask window never opened")
	}
	if !grantLeft {
		t.Error("grant never left the split master during the mask window")
	}
	if regrants != 0 {
		t.Errorf("masked master re-granted %d times inside the mask window", regrants)
	}
	if !m0.Done() {
		t.Error("split master must complete after resume")
	}
	if !m1.Done() {
		t.Error("master 1 must complete across the mask window")
	}
	if m0.Stats().Splits != 1 {
		t.Errorf("splits=%d, want 1", m0.Stats().Splits)
	}
	if bus.SplitMask() != 0 {
		t.Errorf("split mask=%#x, want 0 after resume", bus.SplitMask())
	}
	if ss.Peek(0x40) != 0xAB {
		t.Errorf("split slave mem=%#x, want 0xAB", ss.Peek(0x40))
	}
	for _, e := range mon.Errors() {
		t.Errorf("protocol violation: %v", e)
	}
}

// TestSplitMaskRoundRobinSkips covers the same arbitration contract under
// the rotating policy, where the skip is a different code path than the
// sticky arbiter's.
func TestSplitMaskRoundRobinSkips(t *testing.T) {
	k := sim.NewKernel()
	bus, err := New(k, Config{
		NumMasters: 3,
		NumSlaves:  2,
		Regions: []Region{
			{Start: 0, Size: 0x1000, Slave: 0},
			{Start: 0x1000, Size: 0x1000, Slave: 1},
		},
		ClockPeriod:   10 * sim.Nanosecond,
		DataWidth:     32,
		Policy:        PolicyRoundRobin,
		DefaultMaster: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	mon := NewMonitor(bus)
	masters := make([]*Master, 3)
	for i := range masters {
		masters[i], err = NewMaster(bus, i)
		if err != nil {
			t.Fatal(err)
		}
		masters[i].KeepResults(true)
	}
	if _, err := NewSplitSlave(bus, 0, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := NewMemorySlave(bus, 1, 0); err != nil {
		t.Fatal(err)
	}
	masters[0].Enqueue(Sequence{Ops: []Op{{Kind: OpWrite, Addr: 0x20, Data: []uint32{0x111}}}})
	masters[1].Enqueue(Sequence{Ops: []Op{{Kind: OpWrite, Addr: 0x1020, Data: []uint32{0x222}}}})
	masters[2].Enqueue(Sequence{Ops: []Op{
		{Kind: OpIdle, IdleCycles: 3},
		{Kind: OpWrite, Addr: 0x1040, Data: []uint32{0x333}},
	}})

	// As above: the two-cycle SPLIT response may keep the grant with the
	// split master, so police re-grants from three cycles into the window.
	var cyc, maskStart, maskedCycles, regrants int
	grantLeft := false
	k.MethodNoInit("rr-split-watch", func() {
		cyc++
		if bus.SplitMask()&1 == 0 {
			return
		}
		if maskedCycles == 0 {
			maskStart = cyc
		}
		maskedCycles++
		g0 := bus.Grant[0].Read()
		if cyc >= maskStart+3 {
			if grantLeft && g0 {
				regrants++
			}
			if !g0 {
				grantLeft = true
			}
		}
	}, bus.Clk.Posedge())

	if err := k.RunCycles(bus.Clk, 200); err != nil {
		t.Fatal(err)
	}
	if regrants != 0 {
		t.Errorf("masked master re-granted %d times under round-robin", regrants)
	}
	for i, m := range masters {
		if !m.Done() {
			t.Errorf("master %d must complete", i)
		}
	}
	if bus.SplitMask() != 0 {
		t.Errorf("split mask=%#x, want 0 after resume", bus.SplitMask())
	}
	for _, e := range mon.Errors() {
		t.Errorf("protocol violation: %v", e)
	}
}
