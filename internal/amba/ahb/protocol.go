// Package ahb implements a cycle-accurate model of the AMBA AHB
// (Advanced High-performance Bus, AMBA specification rev 2.0) on top of the
// discrete-event kernel in internal/sim: a pipelined multi-master bus with
// arbiter, address decoder, masters-to-slaves and slaves-to-masters
// multiplexers, script-driven masters, and memory/error/retry-capable
// slaves.
//
// This is the executable bus model the paper instruments for power
// analysis; its structural decomposition (arbiter, decoder, M2S mux, S2M
// mux — the paper's Fig. 2) is mirrored one-to-one so that per-block
// energy attribution is direct.
package ahb

import "fmt"

// HTRANS transfer-type encoding.
const (
	TransIdle   uint8 = 0 // no transfer
	TransBusy   uint8 = 1 // burst continues, master not ready
	TransNonseq uint8 = 2 // first transfer of a burst / single
	TransSeq    uint8 = 3 // subsequent transfer of a burst
)

// TransName returns the AMBA mnemonic of an HTRANS value.
func TransName(t uint8) string {
	switch t {
	case TransIdle:
		return "IDLE"
	case TransBusy:
		return "BUSY"
	case TransNonseq:
		return "NONSEQ"
	case TransSeq:
		return "SEQ"
	}
	return fmt.Sprintf("HTRANS(%d)", t)
}

// HBURST burst encoding.
const (
	BurstSingle uint8 = 0
	BurstIncr   uint8 = 1 // undefined length
	BurstWrap4  uint8 = 2
	BurstIncr4  uint8 = 3
	BurstWrap8  uint8 = 4
	BurstIncr8  uint8 = 5
	BurstWrap16 uint8 = 6
	BurstIncr16 uint8 = 7
)

// BurstName returns the AMBA mnemonic of an HBURST value.
func BurstName(b uint8) string {
	names := []string{"SINGLE", "INCR", "WRAP4", "INCR4", "WRAP8", "INCR8", "WRAP16", "INCR16"}
	if int(b) < len(names) {
		return names[b]
	}
	return fmt.Sprintf("HBURST(%d)", b)
}

// BurstBeats returns the fixed beat count of a burst encoding, or 0 for
// INCR (undefined length).
func BurstBeats(b uint8) int {
	switch b {
	case BurstSingle:
		return 1
	case BurstIncr:
		return 0
	case BurstWrap4, BurstIncr4:
		return 4
	case BurstWrap8, BurstIncr8:
		return 8
	case BurstWrap16, BurstIncr16:
		return 16
	}
	return 1
}

// IsWrap reports whether the burst encoding is a wrapping burst.
func IsWrap(b uint8) bool {
	return b == BurstWrap4 || b == BurstWrap8 || b == BurstWrap16
}

// HRESP response encoding.
const (
	RespOkay  uint8 = 0
	RespError uint8 = 1
	RespRetry uint8 = 2
	RespSplit uint8 = 3
)

// RespName returns the AMBA mnemonic of an HRESP value.
func RespName(r uint8) string {
	names := []string{"OKAY", "ERROR", "RETRY", "SPLIT"}
	if int(r) < len(names) {
		return names[r]
	}
	return fmt.Sprintf("HRESP(%d)", r)
}

// HSIZE transfer-size encoding (bytes = 1 << HSIZE).
const (
	Size8   uint8 = 0
	Size16  uint8 = 1
	Size32  uint8 = 2
	Size64  uint8 = 3
	Size128 uint8 = 4
)

// SizeBytes returns the number of bytes moved per beat for an HSIZE value.
func SizeBytes(s uint8) int {
	return 1 << uint(s)
}

// NextBurstAddr computes the address of the next beat of a burst, honoring
// wrapping-burst boundaries: a WRAPn burst of the given transfer size wraps
// at an n·size boundary.
func NextBurstAddr(addr uint32, burst, size uint8) uint32 {
	step := uint32(SizeBytes(size))
	next := addr + step
	if IsWrap(burst) {
		span := uint32(BurstBeats(burst)) * step
		base := addr &^ (span - 1)
		if next >= base+span {
			next = base
		}
	}
	return next
}

// CrossesKB reports whether a fixed-length incrementing burst starting at
// addr would cross a 1 KB address boundary — forbidden by the AHB spec
// (slaves are guaranteed bursts stay within 1 KB so decoding cannot change
// mid-burst).
func CrossesKB(addr uint32, beats int, size uint8) bool {
	if beats <= 1 {
		return false
	}
	last := addr + uint32(beats-1)*uint32(SizeBytes(size))
	return addr>>10 != last>>10
}

// BeatsUntilKB returns the maximum number of beats an incrementing burst
// starting at addr can perform without crossing a 1 KB boundary.
func BeatsUntilKB(addr uint32, size uint8) int {
	step := uint32(SizeBytes(size))
	if step == 0 {
		return 1
	}
	room := 1024 - (addr & 1023)
	return int(room / step)
}

// Aligned reports whether addr is aligned to the transfer size, a
// requirement of the AHB spec.
func Aligned(addr uint32, size uint8) bool {
	return addr&(uint32(SizeBytes(size))-1) == 0
}
