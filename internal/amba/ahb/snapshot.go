package ahb

import (
	"fmt"
	"sort"
)

// Snapshot state for the bus components. Every struct here is plain
// serializable data (JSON-friendly, exported fields only): capture walks
// the component's private state into it, restore writes it back onto a
// freshly constructed, structurally identical component. Restores assume
// the kernel's signal values have already been restored (silently), so
// they only move component-resident state — cursors, latches, counters,
// masks — and never drive signals.

// BusState is the interconnect's dynamic state outside the signals: the
// arbiter's split mask, the settled-cycle counter, the handover latch
// and the default slave's two-cycle-ERROR latch.
type BusState struct {
	SplitMask   uint16 `json:"split_mask"`
	Cycles      uint64 `json:"cycles"`
	LastMaster  uint8  `json:"last_master"`
	DefErrCycle bool   `json:"def_err_cycle,omitempty"`
}

// CaptureState serializes the bus-level dynamic state.
func (b *Bus) CaptureState() BusState {
	return BusState{
		SplitMask:   b.splitMask,
		Cycles:      b.cycles,
		LastMaster:  b.lastMaster,
		DefErrCycle: b.defErrCycle,
	}
}

// RestoreState writes a captured bus state back.
func (b *Bus) RestoreState(st BusState) {
	b.splitMask = st.SplitMask
	b.cycles = st.Cycles
	b.lastMaster = st.LastMaster
	b.defErrCycle = st.DefErrCycle
}

// FlightState is the serialized form of one in-flight beat. The script
// op it references is stored as its (sequence, op) position — restore
// re-resolves the pointer into the deterministically rebuilt script.
type FlightState struct {
	SeqIdx  int    `json:"seq"`
	OpIdx   int    `json:"op"`
	BeatIdx int    `json:"beat"`
	Addr    uint32 `json:"addr"`
	Write   bool   `json:"write,omitempty"`
	Size    uint8  `json:"size"`
	Burst   uint8  `json:"burst"`
	Trans   uint8  `json:"trans"`
	Data    uint32 `json:"data,omitempty"`
}

// MasterState is a master state machine's dynamic state: script cursor,
// idle countdown, in-flight and rewound beats, the current op's
// remaining BUSY insertions (decremented in place as they are consumed)
// and the protocol counters.
type MasterState struct {
	SeqIdx     int         `json:"seq_idx"`
	OpIdx      int         `json:"op_idx"`
	Beat       int         `json:"beat"`
	IdleCnt    int         `json:"idle_cnt"`
	MustNonseq bool        `json:"must_nonseq,omitempty"`
	SplitWait  bool        `json:"split_wait,omitempty"`
	Stats      MasterStats `json:"stats"`

	AddrPhase *FlightState  `json:"addr_phase,omitempty"`
	DataPhase *FlightState  `json:"data_phase,omitempty"`
	Rewind    []FlightState `json:"rewind,omitempty"`

	// BusyLeft is the current op's partially consumed BusyBefore map;
	// nil when the op has none.
	BusyLeft map[int]int `json:"busy_left,omitempty"`
}

// opPosition locates op in the master's script by pointer identity.
func (m *Master) opPosition(op *Op) (int, int, error) {
	if op == nil {
		return -1, -1, nil
	}
	for si := range m.script {
		ops := m.script[si].Ops
		for oi := range ops {
			if &ops[oi] == op {
				return si, oi, nil
			}
		}
	}
	return 0, 0, fmt.Errorf("ahb: in-flight op not found in master %d script", m.idx)
}

func (m *Master) captureFlight(f *flight) (FlightState, error) {
	si, oi, err := m.opPosition(f.op)
	if err != nil {
		return FlightState{}, err
	}
	return FlightState{
		SeqIdx: si, OpIdx: oi,
		BeatIdx: f.beatIdx,
		Addr:    f.addr,
		Write:   f.write,
		Size:    f.size,
		Burst:   f.burst,
		Trans:   f.trans,
		Data:    f.data,
	}, nil
}

func (m *Master) restoreFlight(st FlightState) (*flight, error) {
	f := m.newFlight()
	if st.SeqIdx >= 0 {
		if st.SeqIdx >= len(m.script) || st.OpIdx >= len(m.script[st.SeqIdx].Ops) {
			return nil, fmt.Errorf("ahb: flight op position (%d,%d) outside master %d script", st.SeqIdx, st.OpIdx, m.idx)
		}
		f.op = &m.script[st.SeqIdx].Ops[st.OpIdx]
	}
	f.beatIdx = st.BeatIdx
	f.addr = st.Addr
	f.write = st.Write
	f.size = st.Size
	f.burst = st.Burst
	f.trans = st.Trans
	f.data = st.Data
	return f, nil
}

// CaptureState serializes the master's dynamic state.
func (m *Master) CaptureState() (MasterState, error) {
	st := MasterState{
		SeqIdx: m.seqIdx, OpIdx: m.opIdx,
		Beat: m.beat, IdleCnt: m.idleCnt,
		MustNonseq: m.mustNonseq, SplitWait: m.splitWait,
		Stats: m.stats,
	}
	var err error
	if m.addrPhase != nil {
		f, e := m.captureFlight(m.addrPhase)
		if e != nil {
			return st, e
		}
		st.AddrPhase = &f
	}
	if m.dataPhase != nil {
		f, e := m.captureFlight(m.dataPhase)
		if e != nil {
			return st, e
		}
		st.DataPhase = &f
	}
	for _, rf := range m.rewind {
		f, e := m.captureFlight(rf)
		if e != nil {
			return st, e
		}
		st.Rewind = append(st.Rewind, f)
	}
	if op := m.currentOp(); op != nil && op.BusyBefore != nil {
		st.BusyLeft = make(map[int]int, len(op.BusyBefore))
		for k, v := range op.BusyBefore {
			st.BusyLeft[k] = v
		}
	}
	return st, err
}

// RestoreState writes a captured master state back onto a master holding
// the identical script.
func (m *Master) RestoreState(st MasterState) error {
	m.seqIdx, m.opIdx = st.SeqIdx, st.OpIdx
	m.beat, m.idleCnt = st.Beat, st.IdleCnt
	m.mustNonseq, m.splitWait = st.MustNonseq, st.SplitWait
	m.stats = st.Stats
	m.addrPhase, m.dataPhase, m.rewind = nil, nil, nil
	if st.AddrPhase != nil {
		f, err := m.restoreFlight(*st.AddrPhase)
		if err != nil {
			return err
		}
		m.addrPhase = f
	}
	if st.DataPhase != nil {
		f, err := m.restoreFlight(*st.DataPhase)
		if err != nil {
			return err
		}
		m.dataPhase = f
	}
	for _, fs := range st.Rewind {
		f, err := m.restoreFlight(fs)
		if err != nil {
			return err
		}
		m.rewind = append(m.rewind, f)
	}
	if st.BusyLeft != nil {
		op := m.currentOp()
		if op == nil {
			return fmt.Errorf("ahb: BusyLeft captured with no current op on master %d", m.idx)
		}
		op.BusyBefore = make(map[int]int, len(st.BusyLeft))
		for k, v := range st.BusyLeft {
			op.BusyBefore[k] = v
		}
	}
	return nil
}

// MemCell is one occupied word of a memory slave's backing store.
type MemCell struct {
	Addr uint32 `json:"a"` // word address (byte address >> 2)
	Val  uint32 `json:"v"`
}

// LatchedState is a slave's captured address phase.
type LatchedState struct {
	Addr  uint32 `json:"addr"`
	Write bool   `json:"write,omitempty"`
	Size  uint8  `json:"size,omitempty"`
}

// MemorySlaveState is a memory slave's dynamic state: the backing store
// (sorted by word address for a canonical serialization), the latched
// address phase with its wait countdown, and the counters.
type MemorySlaveState struct {
	Mem      []MemCell     `json:"mem,omitempty"`
	Pending  *LatchedState `json:"pending,omitempty"`
	WaitLeft int           `json:"wait_left,omitempty"`
	Stats    SlaveStats    `json:"stats"`
}

// CaptureState serializes the slave's dynamic state.
func (s *MemorySlave) CaptureState() MemorySlaveState {
	st := MemorySlaveState{WaitLeft: s.waitLeft, Stats: s.stats}
	if len(s.mem) > 0 {
		st.Mem = make([]MemCell, 0, len(s.mem))
		for a, v := range s.mem {
			st.Mem = append(st.Mem, MemCell{Addr: a, Val: v})
		}
		sort.Slice(st.Mem, func(i, j int) bool { return st.Mem[i].Addr < st.Mem[j].Addr })
	}
	if s.pending != nil {
		st.Pending = &LatchedState{Addr: s.pending.addr, Write: s.pending.write, Size: s.pending.size}
	}
	return st
}

// RestoreState writes a captured slave state back.
func (s *MemorySlave) RestoreState(st MemorySlaveState) {
	s.mem = make(map[uint32]uint32, len(st.Mem))
	for _, c := range st.Mem {
		s.mem[c.Addr] = c.Val
	}
	s.pending = nil
	if st.Pending != nil {
		s.pending = &latched{addr: st.Pending.Addr, write: st.Pending.Write, size: st.Pending.Size}
	}
	s.waitLeft = st.WaitLeft
	s.stats = st.Stats
}

// MonitorCountsState is the serialized form of the monitor's per-event
// counters.
type MonitorCountsState struct {
	Idle     uint64 `json:"idle,omitempty"`
	Busy     uint64 `json:"busy,omitempty"`
	Nonseq   uint64 `json:"nonseq,omitempty"`
	Seq      uint64 `json:"seq,omitempty"`
	Handover uint64 `json:"handover,omitempty"`
	Wait     uint64 `json:"wait,omitempty"`
}

// MonitorState is the protocol monitor's dynamic state: recorded
// violations, the previous-cycle record its rules compare against, the
// counters and the burst-boundary latch.
type MonitorState struct {
	Errs      []ProtocolError    `json:"errs,omitempty"`
	Prev      CycleInfo          `json:"prev"`
	HavePrev  bool               `json:"have_prev,omitempty"`
	Counts    MonitorCountsState `json:"counts"`
	BurstBase uint32             `json:"burst_base,omitempty"`
}

// CaptureState serializes the monitor's dynamic state.
func (m *Monitor) CaptureState() MonitorState {
	return MonitorState{
		Errs:     append([]ProtocolError(nil), m.errs...),
		Prev:     m.prev,
		HavePrev: m.havePrev,
		Counts: MonitorCountsState{
			Idle: m.counts.idle, Busy: m.counts.busy,
			Nonseq: m.counts.nonseq, Seq: m.counts.seq,
			Handover: m.counts.handover, Wait: m.counts.wait,
		},
		BurstBase: m.burstBase,
	}
}

// RestoreState writes a captured monitor state back.
func (m *Monitor) RestoreState(st MonitorState) {
	m.errs = append([]ProtocolError(nil), st.Errs...)
	m.prev = st.Prev
	m.havePrev = st.HavePrev
	m.counts = monitorCounts{
		idle: st.Counts.Idle, busy: st.Counts.Busy,
		nonseq: st.Counts.Nonseq, seq: st.Counts.Seq,
		handover: st.Counts.Handover, wait: st.Counts.Wait,
	}
	m.burstBase = st.BurstBase
}
