// Package asb models the AMBA ASB (Advanced System Bus), the predecessor
// of the AHB and the third bus topology the paper's §5 enumerates ("the
// AHB, the Advanced System Bus (ASB) and the Advanced Peripheral Bus
// (APB)"). The model is cycle-accurate at the granularity the power
// methodology needs, with the defining architectural difference preserved:
// ASB uses a single shared (tri-state) data bus BD for both directions,
// where the AHB splits write and read data onto separate always-driven
// multiplexed paths.
//
// Simplifications relative to the full rev 2.0 ASB, documented here
// per DESIGN.md: the two-phase clocking is flattened to single-edge
// cycles, BLAST-initiated burst retraction is not modeled, and there is
// no SPLIT/RETRY (ASB has none — its only abnormal response is BERROR).
package asb

import (
	"fmt"

	"ahbpower/internal/probe"
	"ahbpower/internal/sim"
)

// BTRAN transaction-type encoding.
const (
	TranAddressOnly uint8 = 0 // no data movement
	TranNonSeq      uint8 = 2
	TranSeq         uint8 = 3
)

// Region maps an address range to a slave index.
type Region struct {
	Start uint32
	Size  uint32
	Slave int
}

// Config parameterizes an ASB instance.
type Config struct {
	Name        string
	NumMasters  int
	NumSlaves   int
	Regions     []Region
	ClockPeriod sim.Time
	DataWidth   int
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.NumMasters < 1 || c.NumMasters > 16 {
		return fmt.Errorf("asb: NumMasters=%d, want 1..16", c.NumMasters)
	}
	if c.NumSlaves < 1 || c.NumSlaves > 16 {
		return fmt.Errorf("asb: NumSlaves=%d, want 1..16", c.NumSlaves)
	}
	if c.DataWidth != 8 && c.DataWidth != 16 && c.DataWidth != 32 {
		return fmt.Errorf("asb: DataWidth=%d, want 8/16/32", c.DataWidth)
	}
	if c.ClockPeriod <= 0 {
		return fmt.Errorf("asb: ClockPeriod must be positive")
	}
	for i, r := range c.Regions {
		if r.Slave < 0 || r.Slave >= c.NumSlaves {
			return fmt.Errorf("asb: region %d maps to slave %d, out of range", i, r.Slave)
		}
		if r.Size == 0 {
			return fmt.Errorf("asb: region %d has zero size", i)
		}
	}
	return nil
}

// masterPorts bundles one master's outputs.
type masterPorts struct {
	AReq  *sim.Signal[bool]
	BTran *sim.Signal[uint8]
	BA    *sim.Signal[uint32]
	BWr   *sim.Signal[bool]
	BDOut *sim.Signal[uint32] // write-data drive value
}

// slavePorts bundles one slave's outputs.
type slavePorts struct {
	BWait  *sim.Signal[bool]
	BError *sim.Signal[bool]
	BDOut  *sim.Signal[uint32] // read-data drive value
}

// CycleInfo is a settled per-cycle ASB snapshot for power probes.
type CycleInfo struct {
	Cycle    uint64
	Time     sim.Time
	Tran     uint8
	Addr     uint32
	Write    bool
	BD       uint32 // the shared data bus value this cycle
	Wait     bool
	Error    bool
	Master   uint8
	SelIdx   int
	Requests uint16
	Handover bool
}

// Bus is the ASB interconnect: central arbiter, decoder, and the shared
// data bus resolution.
type Bus struct {
	Cfg Config
	K   *sim.Kernel
	Clk *sim.Clock

	M []masterPorts
	S []slavePorts

	AGnt    []*sim.Signal[bool]
	GntIdx  *sim.Signal[uint8]
	BTran   *sim.Signal[uint8]
	BA      *sim.Signal[uint32]
	BWrite  *sim.Signal[bool]
	BD      *sim.Signal[uint32] // shared data bus (tri-state modeled as a keeper)
	BWait   *sim.Signal[bool]
	BError  *sim.Signal[bool]
	Sel     []*sim.Signal[bool]
	SelIdx  *sim.Signal[int]
	BMaster *sim.Signal[uint8] // address-phase owner

	// Data-phase bookkeeping.
	DataSlave *sim.Signal[int]
	DataWrite *sim.Signal[bool]

	hub       probe.Hub[CycleInfo]
	cycles    uint64
	lastOwner uint8
}

// DataMask returns the data-width mask.
func (b *Bus) DataMask() uint32 {
	if b.Cfg.DataWidth >= 32 {
		return ^uint32(0)
	}
	return (uint32(1) << uint(b.Cfg.DataWidth)) - 1
}

// New creates an ASB.
func New(k *sim.Kernel, cfg Config) (*Bus, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Name == "" {
		cfg.Name = "asb"
	}
	b := &Bus{Cfg: cfg, K: k}
	n := cfg.Name
	b.Clk = sim.NewClock(k, n+".bclk", cfg.ClockPeriod)
	for m := 0; m < cfg.NumMasters; m++ {
		p := fmt.Sprintf("%s.m%d.", n, m)
		b.M = append(b.M, masterPorts{
			AReq:  sim.NewBool(k, p+"areq", false),
			BTran: sim.NewSignal[uint8](k, p+"btran", TranAddressOnly),
			BA:    sim.NewSignal[uint32](k, p+"ba", 0),
			BWr:   sim.NewBool(k, p+"bwrite", false),
			BDOut: sim.NewSignal[uint32](k, p+"bdout", 0),
		})
		b.AGnt = append(b.AGnt, sim.NewBool(k, fmt.Sprintf("%s.agnt%d", n, m), m == 0))
	}
	for s := 0; s < cfg.NumSlaves; s++ {
		p := fmt.Sprintf("%s.s%d.", n, s)
		b.S = append(b.S, slavePorts{
			BWait:  sim.NewBool(k, p+"bwait", false),
			BError: sim.NewBool(k, p+"berror", false),
			BDOut:  sim.NewSignal[uint32](k, p+"bdout", 0),
		})
		b.Sel = append(b.Sel, sim.NewBool(k, fmt.Sprintf("%s.dsel%d", n, s), false))
	}
	b.GntIdx = sim.NewSignal[uint8](k, n+".gntidx", 0)
	b.BTran = sim.NewSignal[uint8](k, n+".btran", TranAddressOnly)
	b.BA = sim.NewSignal[uint32](k, n+".ba", 0)
	b.BWrite = sim.NewBool(k, n+".bwrite", false)
	b.BD = sim.NewSignal[uint32](k, n+".bd", 0)
	b.BWait = sim.NewBool(k, n+".bwait", false)
	b.BError = sim.NewBool(k, n+".berror", false)
	b.SelIdx = sim.NewSignal[int](k, n+".selidx", -1)
	b.BMaster = sim.NewSignal[uint8](k, n+".bmaster", 0)
	b.DataSlave = sim.NewSignal[int](k, n+".dataslave", -1)
	b.DataWrite = sim.NewBool(k, n+".datawrite", false)

	b.buildDecoder()
	b.buildAddrMux()
	b.buildDataBus()
	b.buildResponse()
	b.buildArbiter()
	b.buildCycleProbe()
	return b, nil
}

func (b *Bus) buildDecoder() {
	b.K.Method(b.Cfg.Name+".decoder", func() {
		addr := b.BA.Read()
		idx := -2
		for _, r := range b.Cfg.Regions {
			if addr >= r.Start && addr-r.Start < r.Size {
				idx = r.Slave
				break
			}
		}
		for s := range b.Sel {
			b.Sel[s].Write(idx == s)
		}
		b.SelIdx.Write(idx)
	}, b.BA.Changed(), b.BTran.Changed())
}

// buildAddrMux steers the granted master's address/control onto the bus.
func (b *Bus) buildAddrMux() {
	var sens []sim.Trigger
	for m := range b.M {
		p := &b.M[m]
		sens = append(sens, p.BTran.Changed(), p.BA.Changed(), p.BWr.Changed())
	}
	sens = append(sens, b.BMaster.Changed())
	b.K.Method(b.Cfg.Name+".addrmux", func() {
		m := int(b.BMaster.Read())
		if m >= len(b.M) {
			m = 0
		}
		p := &b.M[m]
		b.BTran.Write(p.BTran.Read())
		b.BA.Write(p.BA.Read())
		b.BWrite.Write(p.BWr.Read())
	}, sens...)
}

// buildDataBus resolves the single shared data bus: during a write data
// phase the data-phase master drives it; during a read data phase the
// selected slave drives it; otherwise the keeper holds the last value
// (tri-state bus with bus keepers).
func (b *Bus) buildDataBus() {
	var sens []sim.Trigger
	for m := range b.M {
		sens = append(sens, b.M[m].BDOut.Changed())
	}
	for s := range b.S {
		sens = append(sens, b.S[s].BDOut.Changed())
	}
	sens = append(sens, b.DataSlave.Changed(), b.DataWrite.Changed(), b.BMaster.Changed())
	b.K.Method(b.Cfg.Name+".databus", func() {
		ds := b.DataSlave.Read()
		if ds < 0 {
			return // keeper holds the previous value
		}
		if b.DataWrite.Read() {
			m := int(b.BMaster.Read())
			if m < len(b.M) {
				b.BD.Write(b.M[m].BDOut.Read() & b.DataMask())
			}
		} else if ds < len(b.S) {
			b.BD.Write(b.S[ds].BDOut.Read() & b.DataMask())
		}
	}, sens...)
}

// buildResponse merges the slave wait/error lines.
func (b *Bus) buildResponse() {
	var sens []sim.Trigger
	for s := range b.S {
		sens = append(sens, b.S[s].BWait.Changed(), b.S[s].BError.Changed())
	}
	sens = append(sens, b.DataSlave.Changed())
	b.K.Method(b.Cfg.Name+".response", func() {
		ds := b.DataSlave.Read()
		if ds >= 0 && ds < len(b.S) {
			b.BWait.Write(b.S[ds].BWait.Read())
			b.BError.Write(b.S[ds].BError.Read())
		} else if ds == -2 {
			// Unmapped: immediate error.
			b.BWait.Write(false)
			b.BError.Write(true)
		} else {
			b.BWait.Write(false)
			b.BError.Write(false)
		}
	}, sens...)
}

// buildArbiter advances grants and data-phase bookkeeping on edges where
// the bus is not waited.
func (b *Bus) buildArbiter() {
	b.K.MethodNoInit(b.Cfg.Name+".arbiter", func() {
		if b.BWait.Read() {
			return
		}
		cur := int(b.GntIdx.Read())
		b.BMaster.Write(uint8(cur))
		t := b.BTran.Read()
		if t == TranNonSeq || t == TranSeq {
			b.DataSlave.Write(b.SelIdx.Read())
			b.DataWrite.Write(b.BWrite.Read())
		} else {
			b.DataSlave.Write(-1)
		}
		// Sticky arbitration: keep the owner while it requests.
		next := cur
		if !b.M[cur].AReq.Read() {
			next = 0
			for m := 0; m < b.Cfg.NumMasters; m++ {
				if b.M[m].AReq.Read() {
					next = m
					break
				}
			}
		}
		if next != cur {
			for m := range b.AGnt {
				b.AGnt[m].Write(m == next)
			}
			b.GntIdx.Write(uint8(next))
		}
	}, b.Clk.Posedge())
}

func (b *Bus) buildCycleProbe() {
	b.K.Observe(b)
}

// EndOfTimestep implements sim.CycleObserver: on the settled high phase of
// BCLK it samples the shared bus signals into one CycleInfo record and
// publishes it to the attached observers.
func (b *Bus) EndOfTimestep(t sim.Time) {
	if !b.Clk.Signal().Read() {
		return
	}
	b.cycles++
	ci := CycleInfo{
		Cycle:  b.cycles,
		Time:   t,
		Tran:   b.BTran.Read(),
		Addr:   b.BA.Read(),
		Write:  b.BWrite.Read(),
		BD:     b.BD.Read(),
		Wait:   b.BWait.Read(),
		Error:  b.BError.Read(),
		Master: b.BMaster.Read(),
		SelIdx: b.SelIdx.Read(),
	}
	for m := range b.M {
		if b.M[m].AReq.Read() {
			ci.Requests |= 1 << uint(m)
		}
	}
	ci.Handover = ci.Master != b.lastOwner
	b.lastOwner = ci.Master
	b.hub.Publish(ci)
}

// Observe attaches a typed observer to the settled bus-cycle stream.
func (b *Bus) Observe(o probe.Observer[CycleInfo]) {
	b.hub.Attach(o)
}

// OnCycle registers a plain per-cycle observer function.
func (b *Bus) OnCycle(fn func(CycleInfo)) {
	b.hub.AttachFunc(fn)
}

// Cycles returns the number of observed bus cycles.
func (b *Bus) Cycles() uint64 { return b.cycles }
