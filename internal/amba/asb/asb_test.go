package asb

import (
	"testing"

	"ahbpower/internal/sim"
)

type asbSystem struct {
	k      *sim.Kernel
	bus    *Bus
	m      []*Master
	slaves []*MemorySlave
}

func newASB(t *testing.T, nMasters, waits int) *asbSystem {
	t.Helper()
	k := sim.NewKernel()
	bus, err := New(k, Config{
		NumMasters: nMasters,
		NumSlaves:  2,
		Regions: []Region{
			{Start: 0, Size: 0x1000, Slave: 0},
			{Start: 0x1000, Size: 0x1000, Slave: 1},
		},
		ClockPeriod: 10 * sim.Nanosecond,
		DataWidth:   32,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := &asbSystem{k: k, bus: bus}
	for i := 0; i < nMasters; i++ {
		mm, err := NewMaster(bus, i)
		if err != nil {
			t.Fatal(err)
		}
		mm.KeepResults(true)
		s.m = append(s.m, mm)
	}
	for i := 0; i < 2; i++ {
		sl, err := NewMemorySlave(bus, i, waits)
		if err != nil {
			t.Fatal(err)
		}
		s.slaves = append(s.slaves, sl)
	}
	return s
}

func (s *asbSystem) run(t *testing.T, n uint64) {
	t.Helper()
	if err := s.k.RunCycles(s.bus.Clk, n); err != nil {
		t.Fatal(err)
	}
}

func TestASBConfigValidation(t *testing.T) {
	k := sim.NewKernel()
	bad := []Config{
		{NumMasters: 0, NumSlaves: 1, ClockPeriod: 1, DataWidth: 32},
		{NumMasters: 1, NumSlaves: 0, ClockPeriod: 1, DataWidth: 32},
		{NumMasters: 1, NumSlaves: 1, ClockPeriod: 1, DataWidth: 9},
		{NumMasters: 1, NumSlaves: 1, ClockPeriod: 0, DataWidth: 32},
		{NumMasters: 1, NumSlaves: 1, ClockPeriod: 1, DataWidth: 32,
			Regions: []Region{{Start: 0, Size: 0, Slave: 0}}},
		{NumMasters: 1, NumSlaves: 1, ClockPeriod: 1, DataWidth: 32,
			Regions: []Region{{Start: 0, Size: 4, Slave: 7}}},
	}
	for i, c := range bad {
		if _, err := New(k, c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestASBWriteRead(t *testing.T) {
	s := newASB(t, 1, 0)
	s.m[0].Enqueue(Sequence{Ops: []Op{
		{Kind: OpWrite, Addr: 0x40, Data: []uint32{0xFEED0001}},
		{Kind: OpRead, Addr: 0x40},
	}})
	s.run(t, 50)
	if !s.m[0].Done() {
		t.Fatal("master must finish")
	}
	res := s.m[0].Results()
	if len(res) != 2 {
		t.Fatalf("results=%d, want 2", len(res))
	}
	if res[1].Data != 0xFEED0001 || res[1].Error {
		t.Errorf("read %+v", res[1])
	}
	if s.slaves[0].Peek(0x40) != 0xFEED0001 {
		t.Errorf("mem=%#x", s.slaves[0].Peek(0x40))
	}
}

func TestASBBurst(t *testing.T) {
	s := newASB(t, 1, 0)
	data := []uint32{1, 2, 3, 4, 5, 6, 7, 8}
	s.m[0].Enqueue(Sequence{Ops: []Op{
		{Kind: OpWrite, Addr: 0x100, Data: data},
		{Kind: OpRead, Addr: 0x100, Beats: 8},
	}})
	s.run(t, 60)
	res := s.m[0].Results()
	if len(res) != 16 {
		t.Fatalf("results=%d, want 16", len(res))
	}
	for i, want := range data {
		if res[8+i].Data != want {
			t.Errorf("read beat %d = %d, want %d", i, res[8+i].Data, want)
		}
	}
}

func TestASBWaitStates(t *testing.T) {
	for _, waits := range []int{1, 3} {
		s := newASB(t, 1, waits)
		s.m[0].Enqueue(Sequence{Ops: []Op{
			{Kind: OpWrite, Addr: 0x20, Data: []uint32{0x77}},
			{Kind: OpRead, Addr: 0x20},
		}})
		s.run(t, 80)
		if !s.m[0].Done() {
			t.Fatalf("waits=%d: master stuck", waits)
		}
		res := s.m[0].Results()
		if res[1].Data != 0x77 {
			t.Errorf("waits=%d: read=%#x", waits, res[1].Data)
		}
	}
}

func TestASBTwoMasters(t *testing.T) {
	s := newASB(t, 2, 0)
	s.m[0].Enqueue(Sequence{Ops: []Op{
		{Kind: OpWrite, Addr: 0x10, Data: []uint32{0xA}},
		{Kind: OpRead, Addr: 0x10},
	}, IdleAfter: 3})
	s.m[1].Enqueue(Sequence{Ops: []Op{
		{Kind: OpWrite, Addr: 0x1010, Data: []uint32{0xB}},
		{Kind: OpRead, Addr: 0x1010},
	}, IdleAfter: 3})
	s.run(t, 200)
	if !s.m[0].Done() || !s.m[1].Done() {
		t.Fatal("both masters must finish")
	}
	if s.m[0].Results()[1].Data != 0xA {
		t.Errorf("m0 read=%#x", s.m[0].Results()[1].Data)
	}
	if s.m[1].Results()[1].Data != 0xB {
		t.Errorf("m1 read=%#x", s.m[1].Results()[1].Data)
	}
}

func TestASBUnmappedError(t *testing.T) {
	s := newASB(t, 1, 0)
	s.m[0].Enqueue(Sequence{Ops: []Op{
		{Kind: OpWrite, Addr: 0xF0000000, Data: []uint32{1}},
		{Kind: OpWrite, Addr: 0x10, Data: []uint32{2}},
	}})
	s.run(t, 50)
	res := s.m[0].Results()
	if len(res) != 2 {
		t.Fatalf("results=%d, want 2", len(res))
	}
	if !res[0].Error {
		t.Error("unmapped access must raise BERROR")
	}
	if res[1].Error || s.slaves[0].Peek(0x10) != 2 {
		t.Error("following access must succeed")
	}
}

func TestASBSharedBusCarriesBothDirections(t *testing.T) {
	// The defining ASB feature: write data and read data appear on the
	// same BD wires.
	s := newASB(t, 1, 0)
	var bdSeen []uint32
	s.bus.OnCycle(func(ci CycleInfo) { bdSeen = append(bdSeen, ci.BD) })
	s.slaves[0].Poke(0x80, 0x1234)
	s.m[0].Enqueue(Sequence{Ops: []Op{
		{Kind: OpWrite, Addr: 0x40, Data: []uint32{0xAAAA}},
		{Kind: OpRead, Addr: 0x80},
	}})
	s.run(t, 30)
	sawWrite, sawRead := false, false
	for _, v := range bdSeen {
		if v == 0xAAAA {
			sawWrite = true
		}
		if v == 0x1234 {
			sawRead = true
		}
	}
	if !sawWrite || !sawRead {
		t.Errorf("BD must carry both write (0xAAAA seen=%v) and read (0x1234 seen=%v) data", sawWrite, sawRead)
	}
}

func TestASBCycleProbe(t *testing.T) {
	s := newASB(t, 1, 0)
	var n uint64
	s.bus.OnCycle(func(ci CycleInfo) { n = ci.Cycle })
	s.run(t, 25)
	if n < 20 {
		t.Errorf("probe saw %d cycles, want ~25", n)
	}
	if s.bus.Cycles() != n {
		t.Errorf("Cycles()=%d, probe=%d", s.bus.Cycles(), n)
	}
}

func TestASBBadIndexes(t *testing.T) {
	s := newASB(t, 1, 0)
	if _, err := NewMaster(s.bus, 9); err == nil {
		t.Error("bad master index must fail")
	}
	if _, err := NewMemorySlave(s.bus, 9, 0); err == nil {
		t.Error("bad slave index must fail")
	}
	if _, err := NewMemorySlave(s.bus, 0, -1); err == nil {
		t.Error("negative waits must fail")
	}
}
