package asb

import "fmt"

// OpKind is the kind of a master operation.
type OpKind uint8

// Operation kinds.
const (
	OpWrite OpKind = iota
	OpRead
)

// Op is one ASB operation: a single transfer or an incrementing burst.
type Op struct {
	Kind OpKind
	Addr uint32
	Data []uint32 // write beats; length sets the burst length
	// Beats sets the read burst length (default 1).
	Beats int
}

func (o *Op) beats() int {
	if o.Kind == OpWrite {
		if len(o.Data) == 0 {
			return 1
		}
		return len(o.Data)
	}
	if o.Beats <= 0 {
		return 1
	}
	return o.Beats
}

// Sequence is a run of operations performed back-to-back with the bus
// request held, followed by idle cycles with the request released.
type Sequence struct {
	Ops       []Op
	IdleAfter int
}

// Result records one completed beat.
type Result struct {
	Write bool
	Addr  uint32
	Data  uint32
	Error bool
}

// Master is a script-driven ASB master.
type Master struct {
	bus   *Bus
	idx   int
	ports *masterPorts

	script  []Sequence
	seqIdx  int
	opIdx   int
	beat    int
	idleCnt int

	addrPhase *asbFlight
	dataPhase *asbFlight

	results []Result
	keepRes bool
	beats   uint64
	errors  uint64
}

type asbFlight struct {
	addr  uint32
	write bool
	data  uint32
	tran  uint8
}

// NewMaster attaches a master to bus port idx.
func NewMaster(b *Bus, idx int) (*Master, error) {
	if idx < 0 || idx >= b.Cfg.NumMasters {
		return nil, fmt.Errorf("asb: master index %d out of range", idx)
	}
	m := &Master{bus: b, idx: idx, ports: &b.M[idx]}
	b.K.MethodNoInit(fmt.Sprintf("%s.master%d", b.Cfg.Name, idx), m.tick, b.Clk.Posedge())
	return m, nil
}

// Enqueue appends sequences to the script.
func (m *Master) Enqueue(seqs ...Sequence) { m.script = append(m.script, seqs...) }

// KeepResults records completed beats for verification.
func (m *Master) KeepResults(keep bool) { m.keepRes = keep }

// Results returns recorded beats.
func (m *Master) Results() []Result { return m.results }

// Beats returns the number of completed data beats.
func (m *Master) Beats() uint64 { return m.beats }

// Done reports whether the script has fully executed.
func (m *Master) Done() bool {
	return m.seqIdx >= len(m.script) && m.addrPhase == nil && m.dataPhase == nil
}

func (m *Master) tick() {
	if m.bus.BWait.Read() {
		return // everything frozen during wait states
	}
	granted := m.bus.AGnt[m.idx].Read()

	// Complete the data phase.
	if m.dataPhase != nil {
		f := m.dataPhase
		m.dataPhase = nil
		m.beats++
		r := Result{Write: f.write, Addr: f.addr, Error: m.bus.BError.Read()}
		if r.Error {
			m.errors++
		}
		if f.write {
			r.Data = f.data
		} else {
			r.Data = m.bus.BD.Read()
		}
		if m.keepRes {
			m.results = append(m.results, r)
		}
	}

	// Promote the sampled address phase.
	if m.addrPhase != nil {
		if m.addrPhase.tran == TranNonSeq || m.addrPhase.tran == TranSeq {
			m.dataPhase = m.addrPhase
			if m.dataPhase.write {
				m.ports.BDOut.Write(m.dataPhase.data)
			}
		}
		m.addrPhase = nil
	}

	m.driveNext(granted)
}

func (m *Master) currentOp() *Op {
	if m.seqIdx >= len(m.script) {
		return nil
	}
	seq := &m.script[m.seqIdx]
	if m.opIdx >= len(seq.Ops) {
		return nil
	}
	return &seq.Ops[m.opIdx]
}

func (m *Master) driveNext(granted bool) {
	wantBus := m.idleCnt == 0 && m.currentOp() != nil
	m.ports.AReq.Write(wantBus)
	if !granted || !wantBus {
		m.ports.BTran.Write(TranAddressOnly)
		if !wantBus && m.idleCnt > 0 {
			m.idleCnt--
		}
		return
	}
	op := m.currentOp()
	f := &asbFlight{write: op.Kind == OpWrite}
	if m.beat == 0 {
		f.addr = op.Addr
		f.tran = TranNonSeq
	} else {
		f.addr = op.Addr + uint32(m.beat)*4
		f.tran = TranSeq
	}
	if f.write && m.beat < len(op.Data) {
		f.data = op.Data[m.beat] & m.bus.DataMask()
	}
	m.addrPhase = f
	m.ports.BTran.Write(f.tran)
	m.ports.BA.Write(f.addr)
	m.ports.BWr.Write(f.write)

	m.beat++
	if m.beat >= op.beats() {
		m.beat = 0
		m.opIdx++
		if m.opIdx >= len(m.script[m.seqIdx].Ops) {
			m.opIdx = 0
			m.idleCnt = m.script[m.seqIdx].IdleAfter
			m.seqIdx++
		}
	}
}

// MemorySlave is a word-addressable ASB memory with configurable wait
// states.
type MemorySlave struct {
	bus   *Bus
	idx   int
	ports *slavePorts
	Waits int

	mem      map[uint32]uint32
	pending  *asbLatched
	waitLeft int
}

type asbLatched struct {
	addr  uint32
	write bool
}

// NewMemorySlave attaches a memory slave to bus port idx.
func NewMemorySlave(b *Bus, idx, waits int) (*MemorySlave, error) {
	if idx < 0 || idx >= b.Cfg.NumSlaves {
		return nil, fmt.Errorf("asb: slave index %d out of range", idx)
	}
	if waits < 0 {
		return nil, fmt.Errorf("asb: negative wait states")
	}
	s := &MemorySlave{bus: b, idx: idx, ports: &b.S[idx], Waits: waits, mem: map[uint32]uint32{}}
	b.K.MethodNoInit(fmt.Sprintf("%s.memslave%d", b.Cfg.Name, idx), s.tick, b.Clk.Posedge())
	return s, nil
}

// Poke writes directly into the backing memory.
func (s *MemorySlave) Poke(addr, val uint32) { s.mem[addr>>2] = val }

// Peek reads directly from the backing memory.
func (s *MemorySlave) Peek(addr uint32) uint32 { return s.mem[addr>>2] }

func (s *MemorySlave) tick() {
	if s.pending != nil {
		if s.waitLeft > 0 {
			s.waitLeft--
			if s.waitLeft == 0 {
				s.finish()
			}
			return
		}
		// Data phase completed at this edge.
		if s.pending.write {
			s.mem[s.pending.addr>>2] = s.bus.BD.Read()
		}
		s.pending = nil
	}
	if s.bus.BWait.Read() {
		return
	}
	t := s.bus.BTran.Read()
	if s.bus.Sel[s.idx].Read() && (t == TranNonSeq || t == TranSeq) {
		s.pending = &asbLatched{addr: s.bus.BA.Read(), write: s.bus.BWrite.Read()}
		if s.Waits > 0 {
			s.waitLeft = s.Waits
			s.ports.BWait.Write(true)
		} else {
			s.finish()
		}
	} else {
		s.ports.BWait.Write(false)
	}
}

func (s *MemorySlave) finish() {
	s.ports.BWait.Write(false)
	if !s.pending.write {
		s.ports.BDOut.Write(s.mem[s.pending.addr>>2])
	}
}
