// Package fault is the deterministic protocol-fault-injection layer: a
// declarative, seed-reproducible Plan is compiled onto a built AHB system
// (Attach) and perturbs it at the protocol level — forced ERROR/RETRY/SPLIT
// responses, extra wait states, and address/data bit-flips. The flips
// directly disturb the Hamming-distance terms of the paper's E_DEC/E_MUX
// macromodels, so injected faults produce measurable, assertable energy
// deltas while every stream-order conservation invariant must keep holding.
//
// Determinism is the load-bearing property: every interceptor draws from
// its own PRNG derived from Plan.Seed, and the simulation kernel executes
// processes in a fixed registration order, so two runs of the same plan on
// the same scenario are byte-identical — which is what lets fault plans
// participate in engine.Scenario.CanonicalKey and lets the chaos harness
// (tools/chaos) assert replay identity.
package fault

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"strings"
)

// Kind enumerates the injectable fault kinds.
type Kind uint8

// Fault kinds. The first four act on the slave side (response forcing),
// the last two on the master side (bus-value corruption).
const (
	// KindError forces a two-cycle ERROR response on a latched transfer.
	KindError Kind = iota
	// KindRetry forces two-cycle RETRY responses; Rule.Retries sets how
	// many consecutive re-attempts are retried per firing.
	KindRetry
	// KindSplit forces a two-cycle SPLIT response, masks the master from
	// arbitration, and resumes it after Rule.Hold cycles.
	KindSplit
	// KindWaits inserts Rule.Waits extra wait states into a data phase.
	KindWaits
	// KindAddrFlip XORs Rule.Mask into the address of a driven beat.
	KindAddrFlip
	// KindDataFlip XORs Rule.Mask into the write data of a driven beat.
	KindDataFlip
)

var kindNames = [...]string{"error", "retry", "split", "waits", "addr-flip", "data-flip"}

// String returns the wire name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKind maps a wire name to its Kind.
func ParseKind(s string) (Kind, error) {
	for i, n := range kindNames {
		if n == strings.ToLower(strings.TrimSpace(s)) {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("fault: unknown kind %q (want error|retry|split|waits|addr-flip|data-flip)", s)
}

// slaveSide reports whether the kind is injected at a slave's response
// ports (as opposed to a master's address/data drive).
func (k Kind) slaveSide() bool { return k <= KindWaits }

// MarshalJSON encodes the kind as its wire name.
func (k Kind) MarshalJSON() ([]byte, error) {
	if int(k) >= len(kindNames) {
		return nil, fmt.Errorf("fault: cannot marshal %s", k)
	}
	return json.Marshal(k.String())
}

// UnmarshalJSON decodes a wire name.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := ParseKind(s)
	if err != nil {
		return err
	}
	*k = v
	return nil
}

// Rule is one fault source. Targets default to "any" (-1): a slave-side
// rule with Slave -1 fires on every slave, a master-side rule with Master
// -1 on every active master.
type Rule struct {
	Kind Kind `json:"kind"`
	// Slave restricts slave-side kinds to one slave index; -1 (or an
	// omitted JSON field) means any slave. Ignored by flip kinds.
	Slave int `json:"slave"`
	// Master restricts flip kinds to one active-master index; -1 (or an
	// omitted JSON field) means any. Slave-side kinds fire on whichever
	// master owns the faulted transfer, regardless of this field.
	Master int `json:"master"`
	// Prob is the per-opportunity firing probability in (0,1]; 0 means 1
	// (fire at every opportunity, budget permitting).
	Prob float64 `json:"prob,omitempty"`
	// Count bounds the total firings of this rule; 0 means unlimited.
	Count int `json:"count,omitempty"`
	// Retries is how many consecutive RETRY responses one KindRetry firing
	// forces onto the re-attempted transfer (default 1).
	Retries int `json:"retries,omitempty"`
	// Waits is the number of extra wait states per KindWaits firing
	// (default 1).
	Waits int `json:"waits,omitempty"`
	// Hold is the number of cycles a KindSplit firing keeps the master
	// masked before pulsing the split-resume line (default 4).
	Hold int `json:"hold,omitempty"`
	// Mask is the XOR mask of flip kinds; 0 means bit 4 for addresses
	// (stays word-aligned) and bit 0 for data.
	Mask uint32 `json:"mask,omitempty"`
}

// ruleAlias gives Rule's UnmarshalJSON a layer where absent targets are
// distinguishable from explicit zeros.
type ruleAlias struct {
	Kind    Kind    `json:"kind"`
	Slave   *int    `json:"slave"`
	Master  *int    `json:"master"`
	Prob    float64 `json:"prob"`
	Count   int     `json:"count"`
	Retries int     `json:"retries"`
	Waits   int     `json:"waits"`
	Hold    int     `json:"hold"`
	Mask    uint32  `json:"mask"`
}

// UnmarshalJSON decodes a rule, defaulting omitted Slave/Master to -1
// ("any") — an explicit 0 still targets index 0.
func (r *Rule) UnmarshalJSON(b []byte) error {
	var a ruleAlias
	if err := json.Unmarshal(b, &a); err != nil {
		return err
	}
	*r = Rule{Kind: a.Kind, Slave: -1, Master: -1, Prob: a.Prob, Count: a.Count,
		Retries: a.Retries, Waits: a.Waits, Hold: a.Hold, Mask: a.Mask}
	if a.Slave != nil {
		r.Slave = *a.Slave
	}
	if a.Master != nil {
		r.Master = *a.Master
	}
	return nil
}

// validate checks one rule against a plan-independent schema.
func (r *Rule) validate(i int) error {
	if int(r.Kind) >= len(kindNames) {
		return fmt.Errorf("fault: rule %d: unknown kind %d", i, r.Kind)
	}
	if r.Prob < 0 || r.Prob > 1 {
		return fmt.Errorf("fault: rule %d (%s): prob %g outside [0,1]", i, r.Kind, r.Prob)
	}
	if r.Count < 0 || r.Retries < 0 || r.Waits < 0 || r.Hold < 0 {
		return fmt.Errorf("fault: rule %d (%s): negative budget/parameter", i, r.Kind)
	}
	if r.Slave < -1 || r.Master < -1 {
		return fmt.Errorf("fault: rule %d (%s): target below -1", i, r.Kind)
	}
	if (r.Kind == KindAddrFlip || r.Kind == KindDataFlip) && r.Slave > -1 {
		return fmt.Errorf("fault: rule %d (%s): flip rules target masters, not slaves", i, r.Kind)
	}
	return nil
}

// prob returns the effective firing probability (0 → always).
func (r *Rule) prob() float64 {
	if r.Prob == 0 {
		return 1
	}
	return r.Prob
}

// mask returns the effective XOR mask of a flip rule.
func (r *Rule) mask() uint32 {
	if r.Mask != 0 {
		return r.Mask
	}
	if r.Kind == KindAddrFlip {
		return 1 << 4 // word-aligned single-bit address disturbance
	}
	return 1
}

// Plan is a declarative, seed-reproducible fault-injection plan.
type Plan struct {
	// Seed drives every injection decision; identical seeds replay
	// byte-identically on the same scenario.
	Seed int64 `json:"seed"`
	// FailFirst makes the scenario's first N execution attempts fail with
	// a transient InjectedFault before the simulation is even built — the
	// knob that exercises (and tests) the engine's retry path.
	FailFirst int `json:"fail_first,omitempty"`
	// Rules are the fault sources; an empty list (with FailFirst 0) is a
	// no-op plan.
	Rules []Rule `json:"rules,omitempty"`
}

// Active reports whether the plan injects any protocol-level faults.
func (p *Plan) Active() bool { return p != nil && len(p.Rules) > 0 }

// Validate checks the plan's schema. Target indices are range-checked at
// Attach time against the actual system shape.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	if p.FailFirst < 0 {
		return fmt.Errorf("fault: fail_first %d is negative", p.FailFirst)
	}
	for i := range p.Rules {
		if err := p.Rules[i].validate(i); err != nil {
			return err
		}
	}
	return nil
}

// Parse decodes and validates a JSON plan.
func Parse(b []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(b, &p); err != nil {
		return nil, fmt.Errorf("fault: parsing plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// LoadFile reads and parses a JSON plan file.
func LoadFile(path string) (*Plan, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(b)
}

// RandomPlan derives a randomized but fully seed-determined plan: the same
// seed always yields the same rules. The chaos harness and soak tests use
// it to cover the fault space without hand-writing plans.
func RandomPlan(seed int64) *Plan {
	rng := rand.New(rand.NewSource(subSeed(seed, 0x706c616e, 0))) // "plan"
	p := &Plan{Seed: seed}
	if rng.Intn(7) == 0 {
		p.FailFirst = 1 // occasionally exercise the engine retry path
	}
	masks := []uint32{1, 1 << 3, 1 << 4, 1 << 9, 0x11, 0x80000001}
	for n := 1 + rng.Intn(3); n > 0; n-- {
		r := Rule{
			Kind:   Kind(rng.Intn(len(kindNames))),
			Slave:  -1,
			Master: -1,
			Prob:   0.05 + 0.4*rng.Float64(),
			Count:  rng.Intn(12), // 0 = unlimited
		}
		switch r.Kind {
		case KindRetry:
			r.Retries = 1 + rng.Intn(2)
		case KindWaits:
			r.Waits = 1 + rng.Intn(3)
		case KindSplit:
			r.Hold = 2 + rng.Intn(6)
		case KindAddrFlip, KindDataFlip:
			r.Mask = masks[rng.Intn(len(masks))]
		}
		p.Rules = append(p.Rules, r)
	}
	return p
}

// InjectedFault is the transient error a Plan.FailFirst attempt fails
// with. The engine's failure classifier recognizes its Transient marker
// and retries.
type InjectedFault struct {
	// Attempt is the zero-based execution attempt that was failed.
	Attempt int
}

// Error implements error.
func (f *InjectedFault) Error() string {
	return fmt.Sprintf("fault: injected transient failure (attempt %d)", f.Attempt)
}

// Transient marks the fault as retryable.
func (f *InjectedFault) Transient() bool { return true }

// subSeed derives an independent PRNG seed from a plan seed and an
// interceptor identity, splitmix64-style, so adding one interceptor never
// shifts another's random stream.
func subSeed(seed int64, tag, idx uint64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(tag*1000003+idx+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
