package fault

import (
	"fmt"
	"math/rand"

	"ahbpower/internal/amba/ahb"
)

// PRNG derivation tags, one per interceptor family (see subSeed).
const (
	tagSlave  = 0x736c6176 // "slav"
	tagMaster = 0x6d617374 // "mast"
)

// Stats counts the faults an Injector actually fired. All counters are
// deterministic functions of (plan, scenario), so they participate in the
// chaos harness's replay-identity check.
type Stats struct {
	Errors     uint64 `json:"errors,omitempty"`
	Retries    uint64 `json:"retries,omitempty"`
	Splits     uint64 `json:"splits,omitempty"`
	WaitStates uint64 `json:"wait_states,omitempty"`
	AddrFlips  uint64 `json:"addr_flips,omitempty"`
	DataFlips  uint64 `json:"data_flips,omitempty"`
}

// Total returns the total number of injected fault events.
func (s *Stats) Total() uint64 {
	return s.Errors + s.Retries + s.Splits + s.WaitStates + s.AddrFlips + s.DataFlips
}

// Injector is a Plan compiled onto one built system. Create with Attach;
// read Stats after the run.
type Injector struct {
	bus   *ahb.Bus
	plan  *Plan
	stats Stats

	// The compiled parts are retained for snapshot capture/restore (see
	// snapshot.go); construction is deterministic, so index-aligned
	// restore onto an identically attached plan is sound.
	states  []*ruleState
	slaves  []*slaveInjector
	masters []*masterInjector
}

// countingRNG wraps a PRNG stream and counts the draws taken from it, so
// a snapshot can record the stream position and a restore can replay the
// same number of draws from a re-seeded source.
type countingRNG struct {
	*rand.Rand
	draws uint64
}

func (c *countingRNG) Float64() float64 {
	c.draws++
	return c.Rand.Float64()
}

func newCountingRNG(seed int64) *countingRNG {
	return &countingRNG{Rand: rand.New(rand.NewSource(seed))}
}

// Stats returns the injection counters accumulated so far.
func (in *Injector) Stats() Stats { return in.stats }

// ruleState is the runtime of one rule, shared across every interceptor
// the rule targets so Count budgets are plan-global.
type ruleState struct {
	r     Rule
	fired int
}

// tryFire consumes one firing opportunity: budget check first (no PRNG
// draw once exhausted, keeping streams stable), then the probability draw.
func (rs *ruleState) tryFire(rng *countingRNG) bool {
	if rs.r.Count > 0 && rs.fired >= rs.r.Count {
		return false
	}
	if p := rs.r.prob(); p < 1 && rng.Float64() >= p {
		return false
	}
	rs.fired++
	return true
}

// Attach compiles the plan onto a built system: one response interceptor
// per targeted slave and one drive hook per targeted active master. It
// must run after the system is fully built (masters and slaves attached)
// and before the simulation starts — interceptor processes registered
// after the slaves are what lets their signal writes deterministically
// override the slaves' in the same evaluation phase.
func Attach(bus *ahb.Bus, masters []*ahb.Master, plan *Plan) (*Injector, error) {
	if plan == nil {
		return nil, fmt.Errorf("fault: nil plan")
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	for i, r := range plan.Rules {
		if r.Kind.slaveSide() && r.Slave >= bus.Cfg.NumSlaves {
			return nil, fmt.Errorf("fault: rule %d (%s): slave %d out of range (have %d)", i, r.Kind, r.Slave, bus.Cfg.NumSlaves)
		}
		if !r.Kind.slaveSide() && r.Master >= len(masters) {
			return nil, fmt.Errorf("fault: rule %d (%s): master %d out of range (have %d)", i, r.Kind, r.Master, len(masters))
		}
	}
	in := &Injector{bus: bus, plan: plan}
	states := make([]*ruleState, len(plan.Rules))
	for i := range plan.Rules {
		states[i] = &ruleState{r: plan.Rules[i]}
	}
	in.states = states
	for s := 0; s < bus.Cfg.NumSlaves; s++ {
		var rules []*ruleState
		split := false
		for i, r := range plan.Rules {
			if r.Kind.slaveSide() && (r.Slave == -1 || r.Slave == s) {
				rules = append(rules, states[i])
				split = split || r.Kind == KindSplit
			}
		}
		if len(rules) == 0 {
			continue
		}
		si := &slaveInjector{
			in: in, bus: bus, idx: s, rules: rules,
			rng: newCountingRNG(subSeed(plan.Seed, tagSlave, uint64(s))),
		}
		in.slaves = append(in.slaves, si)
		if split {
			bus.WatchSplitResume(s)
		}
		bus.K.MethodNoInit(fmt.Sprintf("%s.fault.s%d", bus.Cfg.Name, s), si.tick, bus.Clk.Posedge())
	}
	for mIdx, m := range masters {
		var rules []*ruleState
		for i, r := range plan.Rules {
			if !r.Kind.slaveSide() && (r.Master == -1 || r.Master == mIdx) {
				rules = append(rules, states[i])
			}
		}
		if len(rules) == 0 {
			continue
		}
		mi := &masterInjector{
			in: in, idx: mIdx, rules: rules,
			rng: newCountingRNG(subSeed(plan.Seed, tagMaster, uint64(mIdx))),
		}
		in.masters = append(in.masters, mi)
		m.OnDrive(mi.hook)
	}
	return in, nil
}

// slaveInjector forces responses on one slave's output ports. Its process
// runs after the slave's own tick in the same evaluation phase (later
// registration id), so "last write wins" makes its ReadyOut/Resp writes
// authoritative. Every forced window is self-terminating: the injector
// itself drives the release cycle (HREADY high), so a wait-state-free
// memory slave underneath can never deadlock waiting for ready.
type slaveInjector struct {
	in    *Injector
	bus   *ahb.Bus
	idx   int
	rng   *countingRNG
	rules []*ruleState

	// Forced-response window: lowLeft more not-ready cycles, then one
	// release cycle driving resp with HREADY high.
	active  bool
	lowLeft int
	resp    uint8

	// pendingRetries continues a KindRetry firing across the master's
	// re-attempts without fresh probability draws.
	pendingRetries int

	// Split-resume bookkeeping: after resumeIn cycles, pulse SplitRes
	// with resumeMask for one cycle.
	resumeIn   int
	resumeMask uint16
	clearRes   bool
}

func (si *slaveInjector) tick() {
	b := si.bus
	ports := &b.S[si.idx]

	// Split-resume countdown runs independently of the response window.
	if si.resumeIn > 0 {
		si.resumeIn--
		if si.resumeIn == 0 {
			ports.SplitRes.Write(si.resumeMask)
			si.resumeMask = 0
			si.clearRes = true
		}
	} else if si.clearRes {
		ports.SplitRes.Write(0)
		si.clearRes = false
	}

	if si.active {
		if si.lowLeft > 0 {
			si.lowLeft--
			ports.ReadyOut.Write(false)
			ports.Resp.Write(si.resp)
			return
		}
		// Release: second cycle of a two-cycle response (resp held) or the
		// end of a wait stretch (resp OKAY).
		ports.ReadyOut.Write(true)
		ports.Resp.Write(si.resp)
		si.active = false
		return
	}

	// A new transfer is latched by the slave at this edge exactly when the
	// bus was ready and the slave is selected with an active HTRANS —
	// mirror that condition to decide whether there is anything to fault.
	if !b.HReady.Read() {
		return
	}
	t := b.HTrans.Read()
	if !b.Sel[si.idx].Read() || (t != ahb.TransNonseq && t != ahb.TransSeq) {
		return
	}
	if si.pendingRetries > 0 {
		si.pendingRetries--
		si.begin(ahb.RespRetry, 0)
		si.in.stats.Retries++
		return
	}
	m := b.HMaster.Read()
	for _, rs := range si.rules {
		if !rs.tryFire(si.rng) {
			continue
		}
		switch rs.r.Kind {
		case KindError:
			si.begin(ahb.RespError, 0)
			si.in.stats.Errors++
		case KindRetry:
			si.begin(ahb.RespRetry, 0)
			si.pendingRetries = rs.retries() - 1
			si.in.stats.Retries++
		case KindSplit:
			si.begin(ahb.RespSplit, 0)
			b.MaskSplit(m)
			si.resumeMask |= 1 << uint(m)
			si.resumeIn = rs.hold()
			si.in.stats.Splits++
		case KindWaits:
			w := rs.waits()
			si.begin(ahb.RespOkay, w-1)
			si.in.stats.WaitStates += uint64(w)
		}
		return // at most one firing per latched transfer
	}
}

// begin opens a forced-response window: ready low with resp now, lowExtra
// more low cycles, then the release cycle.
func (si *slaveInjector) begin(resp uint8, lowExtra int) {
	ports := &si.bus.S[si.idx]
	ports.ReadyOut.Write(false)
	ports.Resp.Write(resp)
	si.resp = resp
	si.lowLeft = lowExtra
	si.active = true
}

// retries returns the effective per-firing retry count of a KindRetry rule.
func (rs *ruleState) retries() int {
	if rs.r.Retries < 1 {
		return 1
	}
	return rs.r.Retries
}

// waits returns the effective wait-state count of a KindWaits rule.
func (rs *ruleState) waits() int {
	if rs.r.Waits < 1 {
		return 1
	}
	return rs.r.Waits
}

// hold returns the effective mask window of a KindSplit rule.
func (rs *ruleState) hold() int {
	if rs.r.Hold < 1 {
		return 4
	}
	return rs.r.Hold
}

// masterInjector corrupts beats at the master's drive hook: address and
// write-data XOR flips that perturb the HD terms of the decoder and mux
// macromodels.
type masterInjector struct {
	in    *Injector
	idx   int
	rng   *countingRNG
	rules []*ruleState
}

func (mi *masterInjector) hook(bd *ahb.BeatDrive) {
	for _, rs := range mi.rules {
		switch rs.r.Kind {
		case KindAddrFlip:
			if rs.tryFire(mi.rng) {
				bd.Addr ^= rs.r.mask()
				mi.in.stats.AddrFlips++
			}
		case KindDataFlip:
			if bd.Write && rs.tryFire(mi.rng) {
				bd.Data ^= rs.r.mask()
				mi.in.stats.DataFlips++
			}
		}
	}
}
