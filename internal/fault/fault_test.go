package fault_test

import (
	"context"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"ahbpower/internal/core"
	"ahbpower/internal/engine"
	"ahbpower/internal/fault"
)

// scenario builds a paper-system scenario carrying the given plan.
func scenario(name string, plan *fault.Plan, cycles uint64, keep bool) engine.Scenario {
	return engine.Scenario{
		Name:       name,
		System:     core.PaperSystem(),
		Cycles:     cycles,
		KeepSystem: keep,
		Faults:     plan,
	}
}

// mustRun executes the scenario and fails the test on any error.
func mustRun(t *testing.T, sc engine.Scenario) engine.Result {
	t.Helper()
	res := engine.RunOne(context.Background(), sc)
	if res.Err != nil {
		t.Fatalf("scenario %q failed: %v", sc.Name, res.Err)
	}
	return res
}

// checkConservation asserts the two stream-order energy invariants that
// must survive any fault plan: instruction energies and block energies
// each sum to the report total.
func checkConservation(t *testing.T, r *core.Report) {
	t.Helper()
	if r == nil {
		t.Fatal("nil report")
	}
	var sum float64
	for _, row := range r.Table {
		sum += row.TotalEnergy
	}
	if math.Abs(sum-r.TotalEnergy) > 1e-9*r.TotalEnergy+1e-12 {
		t.Errorf("table sum %g != total %g", sum, r.TotalEnergy)
	}
	var bsum float64
	for _, e := range r.BlockEnergy {
		bsum += e
	}
	if math.Abs(bsum-r.TotalEnergy) > 1e-9*r.TotalEnergy+1e-12 {
		t.Errorf("block sum %g != total %g", bsum, r.TotalEnergy)
	}
}

func TestKindWireNames(t *testing.T) {
	kinds := []fault.Kind{fault.KindError, fault.KindRetry, fault.KindSplit,
		fault.KindWaits, fault.KindAddrFlip, fault.KindDataFlip}
	for _, k := range kinds {
		got, err := fault.ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", k.String(), got, err, k)
		}
	}
	if _, err := fault.ParseKind("bitrot"); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	p := &fault.Plan{
		Seed:      42,
		FailFirst: 1,
		Rules: []fault.Rule{
			{Kind: fault.KindSplit, Slave: 0, Master: -1, Prob: 0.25, Count: 3, Hold: 6},
			{Kind: fault.KindDataFlip, Slave: -1, Master: 1, Mask: 0x11},
		},
	}
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fault.Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
}

func TestRuleTargetDefaults(t *testing.T) {
	// Omitted targets mean "any" (-1); an explicit 0 targets index 0.
	p, err := fault.Parse([]byte(`{"seed":1,"rules":[
		{"kind":"error"},
		{"kind":"error","slave":0},
		{"kind":"addr-flip","master":0}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Rules[0].Slave != -1 || p.Rules[0].Master != -1 {
		t.Errorf("omitted targets = %d/%d, want -1/-1", p.Rules[0].Slave, p.Rules[0].Master)
	}
	if p.Rules[1].Slave != 0 {
		t.Errorf("explicit slave 0 parsed as %d", p.Rules[1].Slave)
	}
	if p.Rules[2].Master != 0 {
		t.Errorf("explicit master 0 parsed as %d", p.Rules[2].Master)
	}
}

func TestPlanValidation(t *testing.T) {
	bad := []string{
		`{"rules":[{"kind":"nope"}]}`,
		`{"rules":[{"kind":"error","prob":1.5}]}`,
		`{"rules":[{"kind":"error","prob":-0.1}]}`,
		`{"rules":[{"kind":"retry","count":-1}]}`,
		`{"rules":[{"kind":"error","slave":-2}]}`,
		`{"rules":[{"kind":"addr-flip","slave":1}]}`,
		`{"fail_first":-1}`,
	}
	for i, s := range bad {
		if _, err := fault.Parse([]byte(s)); err == nil {
			t.Errorf("bad plan %d accepted: %s", i, s)
		}
	}
}

func TestRandomPlanDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a, b := fault.RandomPlan(seed), fault.RandomPlan(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: RandomPlan not deterministic:\n%+v\n%+v", seed, a, b)
		}
		if len(a.Rules) == 0 {
			t.Errorf("seed %d: empty rule set", seed)
		}
		if err := a.Validate(); err != nil {
			t.Errorf("seed %d: invalid random plan: %v", seed, err)
		}
	}
	if reflect.DeepEqual(fault.RandomPlan(1), fault.RandomPlan(2)) {
		t.Error("distinct seeds produced identical plans")
	}
}

func TestAttachRangeChecks(t *testing.T) {
	sys, err := core.NewSystem(core.PaperSystem())
	if err != nil {
		t.Fatal(err)
	}
	bad := []*fault.Plan{
		{Seed: 1, Rules: []fault.Rule{{Kind: fault.KindError, Slave: 9, Master: -1}}},
		{Seed: 1, Rules: []fault.Rule{{Kind: fault.KindAddrFlip, Slave: -1, Master: 9}}},
	}
	for i, p := range bad {
		if _, err := fault.Attach(sys.Bus, sys.Masters, p); err == nil {
			t.Errorf("out-of-range plan %d attached", i)
		}
	}
	if _, err := fault.Attach(sys.Bus, sys.Masters, nil); err == nil {
		t.Error("nil plan attached")
	}
}

func TestForcedErrors(t *testing.T) {
	plan := &fault.Plan{Seed: 7, Rules: []fault.Rule{
		{Kind: fault.KindError, Slave: -1, Master: -1, Count: 3},
	}}
	res := mustRun(t, scenario("errors", plan, 2000, true))
	if res.Faults == nil || res.Faults.Errors != 3 {
		t.Fatalf("injector stats = %+v, want 3 errors", res.Faults)
	}
	var seen uint64
	for _, m := range res.System.Masters {
		seen += m.Stats().Errors
	}
	if seen < 3 {
		t.Errorf("masters observed %d ERROR responses, want >= 3", seen)
	}
	if len(res.Violations) != 0 {
		t.Errorf("forced ERROR must stay protocol-legal: %v", res.Violations[0])
	}
	checkConservation(t, res.Report)
}

func TestForcedRetries(t *testing.T) {
	plan := &fault.Plan{Seed: 7, Rules: []fault.Rule{
		{Kind: fault.KindRetry, Slave: -1, Master: -1, Count: 2, Retries: 2},
	}}
	res := mustRun(t, scenario("retries", plan, 2000, true))
	// Each of the 2 firings forces 2 consecutive RETRY responses.
	if res.Faults == nil || res.Faults.Retries != 4 {
		t.Fatalf("injector stats = %+v, want 4 retries", res.Faults)
	}
	var seen uint64
	for _, m := range res.System.Masters {
		seen += m.Stats().Retries
	}
	if seen < 4 {
		t.Errorf("masters observed %d RETRY responses, want >= 4", seen)
	}
	if len(res.Violations) != 0 {
		t.Errorf("forced RETRY must stay protocol-legal: %v", res.Violations[0])
	}
	checkConservation(t, res.Report)
}

func TestForcedSplits(t *testing.T) {
	plan := &fault.Plan{Seed: 11, Rules: []fault.Rule{
		{Kind: fault.KindSplit, Slave: -1, Master: -1, Count: 2, Hold: 6},
	}}
	res := mustRun(t, scenario("splits", plan, 3000, true))
	if res.Faults == nil || res.Faults.Splits != 2 {
		t.Fatalf("injector stats = %+v, want 2 splits", res.Faults)
	}
	var seen uint64
	for _, m := range res.System.Masters {
		seen += m.Stats().Splits
	}
	if seen < 2 {
		t.Errorf("masters observed %d SPLIT responses, want >= 2", seen)
	}
	if got := res.System.Bus.SplitMask(); got != 0 {
		t.Errorf("split mask=%#x after run, want 0 (every split resumed)", got)
	}
	if len(res.Violations) != 0 {
		t.Errorf("forced SPLIT must stay protocol-legal: %v", res.Violations[0])
	}
	checkConservation(t, res.Report)
}

func TestForcedWaitStates(t *testing.T) {
	base := mustRun(t, scenario("waits-base", nil, 2000, true))
	plan := &fault.Plan{Seed: 13, Rules: []fault.Rule{
		{Kind: fault.KindWaits, Slave: -1, Master: -1, Count: 2, Waits: 3},
	}}
	res := mustRun(t, scenario("waits", plan, 2000, true))
	if res.Faults == nil || res.Faults.WaitStates != 6 {
		t.Fatalf("injector stats = %+v, want 6 wait states", res.Faults)
	}
	waitSum := func(r engine.Result) uint64 {
		var w uint64
		for _, m := range r.System.Masters {
			w += m.Stats().WaitCycle
		}
		return w
	}
	if bw, fw := waitSum(base), waitSum(res); fw <= bw {
		t.Errorf("faulted run waits=%d, want more than baseline %d", fw, bw)
	}
	if len(res.Violations) != 0 {
		t.Errorf("forced wait states must stay protocol-legal: %v", res.Violations[0])
	}
	checkConservation(t, res.Report)
}

// TestFlipsPerturbEnergy is the macromodel link: address and data flips
// change the Hamming-distance terms of E_DEC/E_MUX, so total energy must
// move — while both conservation invariants keep holding.
func TestFlipsPerturbEnergy(t *testing.T) {
	const cycles = 2000
	base := mustRun(t, scenario("flip-base", nil, cycles, false))
	for _, tc := range []struct {
		name string
		kind fault.Kind
	}{
		{"addr", fault.KindAddrFlip},
		{"data", fault.KindDataFlip},
	} {
		plan := &fault.Plan{Seed: 5, Rules: []fault.Rule{
			{Kind: tc.kind, Slave: -1, Master: -1},
		}}
		res := mustRun(t, scenario("flip-"+tc.name, plan, cycles, false))
		if res.Faults == nil || res.Faults.Total() == 0 {
			t.Fatalf("%s: no flips fired: %+v", tc.name, res.Faults)
		}
		if math.Float64bits(res.Report.TotalEnergy) == math.Float64bits(base.Report.TotalEnergy) {
			t.Errorf("%s flips left total energy bit-identical (%g)", tc.name, base.Report.TotalEnergy)
		}
		checkConservation(t, res.Report)
	}
}

// TestReplayDeterminism is the core guarantee: the same (scenario, plan)
// pair replays byte-identically — energies compared as raw float bits,
// injector counters and monitor counts exactly equal.
func TestReplayDeterminism(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		plan := fault.RandomPlan(seed)
		plan.FailFirst = 0 // single-attempt runs here; retries are engine tests
		sc := scenario("replay", plan, 2500, false)
		a := mustRun(t, sc)
		b := mustRun(t, sc)
		if math.Float64bits(a.Report.TotalEnergy) != math.Float64bits(b.Report.TotalEnergy) {
			t.Errorf("seed %d: energy %g != %g (not bit-identical)",
				seed, a.Report.TotalEnergy, b.Report.TotalEnergy)
		}
		if a.Beats != b.Beats {
			t.Errorf("seed %d: beats %d != %d", seed, a.Beats, b.Beats)
		}
		if !reflect.DeepEqual(a.Faults, b.Faults) {
			t.Errorf("seed %d: fault stats %+v != %+v", seed, a.Faults, b.Faults)
		}
		if !reflect.DeepEqual(a.Counts, b.Counts) {
			t.Errorf("seed %d: monitor counts diverged", seed)
		}
		checkConservation(t, a.Report)
	}
}

// TestSplitEnergyBalance soaks the arbiter FSM through repeated mask
// windows and checks the energy accounting still balances to the total.
func TestSplitEnergyBalance(t *testing.T) {
	plan := &fault.Plan{Seed: 3, Rules: []fault.Rule{
		{Kind: fault.KindSplit, Slave: -1, Master: -1, Prob: 0.2, Hold: 5},
	}}
	res := mustRun(t, scenario("split-energy", plan, 4000, true))
	if res.Faults == nil || res.Faults.Splits == 0 {
		t.Fatal("no splits fired")
	}
	if got := res.System.Bus.SplitMask(); got != 0 {
		t.Errorf("split mask=%#x after run, want 0", got)
	}
	checkConservation(t, res.Report)
}
