package fault

import (
	"encoding/json"
	"fmt"
)

// Snapshot state for a compiled Injector. PRNG streams are captured as
// their draw counts: restore re-seeds each interceptor's source from the
// plan (derivation is deterministic) and replays the recorded number of
// draws, which reproduces the stream position exactly. Rule budgets are
// captured as fired counts. Restore is index-aligned — the plan compiled
// onto the rebuilt system yields the same interceptors in the same
// order, so positional identity is sound and checked by shape.

// CaptureSnapshot implements the core.Snapshotter seam (structurally —
// this package does not import core): the injector's state as JSON.
func (in *Injector) CaptureSnapshot() (json.RawMessage, error) {
	return json.Marshal(in.CaptureState())
}

// RestoreSnapshot implements the core.Snapshotter seam.
func (in *Injector) RestoreSnapshot(blob json.RawMessage) error {
	var st InjectorState
	if err := json.Unmarshal(blob, &st); err != nil {
		return fmt.Errorf("fault: decoding injector snapshot: %w", err)
	}
	return in.RestoreState(st)
}

// SlaveInjectorState is the runtime of one slave-side interceptor.
type SlaveInjectorState struct {
	Idx            int    `json:"idx"`
	Active         bool   `json:"active,omitempty"`
	LowLeft        int    `json:"low_left,omitempty"`
	Resp           uint8  `json:"resp,omitempty"`
	PendingRetries int    `json:"pending_retries,omitempty"`
	ResumeIn       int    `json:"resume_in,omitempty"`
	ResumeMask     uint16 `json:"resume_mask,omitempty"`
	ClearRes       bool   `json:"clear_res,omitempty"`
	Draws          uint64 `json:"draws"`
}

// MasterInjectorState is the runtime of one master-side interceptor.
type MasterInjectorState struct {
	Idx   int    `json:"idx"`
	Draws uint64 `json:"draws"`
}

// InjectorState is the full dynamic state of a compiled Injector.
type InjectorState struct {
	Stats     Stats                 `json:"stats"`
	RuleFired []int                 `json:"rule_fired,omitempty"`
	Slaves    []SlaveInjectorState  `json:"slaves,omitempty"`
	Masters   []MasterInjectorState `json:"masters,omitempty"`
}

// CaptureState serializes the injector's dynamic state.
func (in *Injector) CaptureState() InjectorState {
	st := InjectorState{Stats: in.stats}
	for _, rs := range in.states {
		st.RuleFired = append(st.RuleFired, rs.fired)
	}
	for _, si := range in.slaves {
		st.Slaves = append(st.Slaves, SlaveInjectorState{
			Idx:            si.idx,
			Active:         si.active,
			LowLeft:        si.lowLeft,
			Resp:           si.resp,
			PendingRetries: si.pendingRetries,
			ResumeIn:       si.resumeIn,
			ResumeMask:     si.resumeMask,
			ClearRes:       si.clearRes,
			Draws:          si.rng.draws,
		})
	}
	for _, mi := range in.masters {
		st.Masters = append(st.Masters, MasterInjectorState{Idx: mi.idx, Draws: mi.rng.draws})
	}
	return st
}

// RestoreState writes a captured injector state back onto an injector
// compiled from the same plan on an identically shaped system.
func (in *Injector) RestoreState(st InjectorState) error {
	if len(st.RuleFired) != len(in.states) {
		return fmt.Errorf("fault: snapshot has %d rule states, injector has %d", len(st.RuleFired), len(in.states))
	}
	if len(st.Slaves) != len(in.slaves) || len(st.Masters) != len(in.masters) {
		return fmt.Errorf("fault: snapshot interceptor shape (%d slaves, %d masters) does not match injector (%d, %d)",
			len(st.Slaves), len(st.Masters), len(in.slaves), len(in.masters))
	}
	in.stats = st.Stats
	for i, fired := range st.RuleFired {
		in.states[i].fired = fired
	}
	for i, ss := range st.Slaves {
		si := in.slaves[i]
		if si.idx != ss.Idx {
			return fmt.Errorf("fault: slave interceptor %d targets slave %d, snapshot has %d", i, si.idx, ss.Idx)
		}
		si.active = ss.Active
		si.lowLeft = ss.LowLeft
		si.resp = ss.Resp
		si.pendingRetries = ss.PendingRetries
		si.resumeIn = ss.ResumeIn
		si.resumeMask = ss.ResumeMask
		si.clearRes = ss.ClearRes
		si.rng = newCountingRNG(subSeed(in.plan.Seed, tagSlave, uint64(si.idx)))
		for si.rng.draws < ss.Draws {
			si.rng.Float64()
		}
	}
	for i, ms := range st.Masters {
		mi := in.masters[i]
		if mi.idx != ms.Idx {
			return fmt.Errorf("fault: master interceptor %d targets master %d, snapshot has %d", i, mi.idx, ms.Idx)
		}
		mi.rng = newCountingRNG(subSeed(in.plan.Seed, tagMaster, uint64(mi.idx)))
		for mi.rng.draws < ms.Draws {
			mi.rng.Float64()
		}
	}
	return nil
}
