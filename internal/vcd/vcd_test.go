package vcd

import (
	"strings"
	"testing"

	"ahbpower/internal/sim"
)

func TestIDFor(t *testing.T) {
	if idFor(0) != "!" {
		t.Errorf("idFor(0)=%q", idFor(0))
	}
	if idFor(93) != "~" {
		t.Errorf("idFor(93)=%q", idFor(93))
	}
	if len(idFor(94)) != 2 {
		t.Errorf("idFor(94)=%q, want two chars", idFor(94))
	}
	// All ids must be unique over a reasonable range.
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		id := idFor(i)
		if seen[id] {
			t.Fatalf("duplicate id %q at %d", id, i)
		}
		seen[id] = true
	}
}

func TestVCDBasicDump(t *testing.T) {
	k := sim.NewKernel()
	clk := sim.NewClock(k, "top.clk", 10*sim.Nanosecond)
	data := sim.NewSignal[uint32](k, "top.data", 0)
	count := uint32(0)
	k.MethodNoInit("drv", func() {
		count++
		data.Write(count)
	}, clk.Posedge())

	var sb strings.Builder
	w := NewWriter(&sb, k)
	w.AddBool("top.clk", clk.Signal())
	w.AddU32("top.data", data, 32)
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(50 * sim.Nanosecond); err != nil {
		t.Fatal(err)
	}
	if w.Err() != nil {
		t.Fatal(w.Err())
	}
	out := sb.String()
	for _, want := range []string{
		"$timescale 1ps $end",
		"$scope module top $end",
		"$var wire 1 ! clk $end",
		"$var wire 32 \" data $end",
		"$enddefinitions $end",
		"$dumpvars",
		"#5000\n1!", // first clock rise at 5 ns = 5000 ps
		"b1 \"",     // first data value
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q\n%s", want, out)
		}
	}
}

func TestVCDStartTwiceFails(t *testing.T) {
	k := sim.NewKernel()
	var sb strings.Builder
	w := NewWriter(&sb, k)
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	if err := w.Start(); err == nil {
		t.Error("second Start must fail")
	}
}

func TestVCDTimestampsMonotone(t *testing.T) {
	k := sim.NewKernel()
	s := sim.NewSignal(k, "top.x", 0)
	var sb strings.Builder
	w := NewWriter(&sb, k)
	w.add("top.x", 8, func() uint64 { return uint64(s.Read()) }, func(emit func(uint64)) {
		s.Watch(func(_, now int) { emit(uint64(now)) })
	})
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		i := i
		k.Schedule(sim.Time(i)*10, func() { s.Write(i) })
	}
	if err := k.Run(100); err != nil {
		t.Fatal(err)
	}
	last := int64(-1)
	for _, line := range strings.Split(sb.String(), "\n") {
		if strings.HasPrefix(line, "#") {
			var ts int64
			if _, err := fmtSscan(line[1:], &ts); err != nil {
				t.Fatalf("bad timestamp line %q", line)
			}
			if ts <= last {
				t.Fatalf("timestamps not increasing: %d after %d", ts, last)
			}
			last = ts
		}
	}
	if last < 0 {
		t.Fatal("no timestamps emitted")
	}
}

// fmtSscan avoids importing fmt in multiple spots of the test.
func fmtSscan(s string, v *int64) (int, error) {
	var n int64
	for _, r := range s {
		if r < '0' || r > '9' {
			break
		}
		n = n*10 + int64(r-'0')
	}
	*v = n
	return 1, nil
}

func TestVCDBoolEncoding(t *testing.T) {
	k := sim.NewKernel()
	b := sim.NewBool(k, "top.b", false)
	var sb strings.Builder
	w := NewWriter(&sb, k)
	w.AddBool("top.b", b)
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	k.Schedule(10, func() { b.Write(true) })
	k.Schedule(20, func() { b.Write(false) })
	if err := k.Run(30); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "#10\n1!") || !strings.Contains(out, "#20\n0!") {
		t.Errorf("bool transitions missing:\n%s", out)
	}
}

func TestVCDScopeGrouping(t *testing.T) {
	k := sim.NewKernel()
	a := sim.NewBool(k, "ahb.m0.req", false)
	b := sim.NewBool(k, "ahb.m1.req", false)
	var sb strings.Builder
	w := NewWriter(&sb, k)
	w.AddBool("ahb.m0.req", a)
	w.AddBool("ahb.m1.req", b)
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "$scope module ahb.m0 $end") ||
		!strings.Contains(out, "$scope module ahb.m1 $end") {
		t.Errorf("scopes missing:\n%s", out)
	}
}

func TestVCDSettledModeSuppressesGlitches(t *testing.T) {
	k := sim.NewKernel()
	s := sim.NewSignal(k, "top.x", 0)
	var sb strings.Builder
	w := NewSettledWriter(&sb, k)
	w.add("top.x", 8, func() uint64 { return uint64(s.Read()) }, func(emit func(uint64)) {
		s.Watch(func(_, now int) { emit(uint64(now)) })
	})
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	// At t=10 the signal glitches through 1 before settling back to 0 on a
	// second delta; at t=20 it settles to 5 after passing through 3.
	k.Schedule(10, func() {
		s.Write(1)
		k.Schedule(0, func() { s.Write(0) })
	})
	k.Schedule(20, func() {
		s.Write(3)
		k.Schedule(0, func() { s.Write(5) })
	})
	if err := k.Run(30); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	body := out[strings.LastIndex(out, "$end\n")+5:] // skip header+dumpvars
	if strings.Contains(body, "b1 !") || strings.Contains(body, "b11 !") {
		t.Errorf("settled VCD must not contain intermediate values:\n%s", body)
	}
	if !strings.Contains(body, "b101 !") {
		t.Errorf("settled VCD missing final value 5:\n%s", body)
	}
	if strings.Contains(body, "#10\n") {
		t.Errorf("glitch timestep 10 settled back to the dumped value; no record expected:\n%s", body)
	}
}

func TestVCDSettledModeDumpsOncePerTimestep(t *testing.T) {
	// A signal written on several deltas of the same timestep must produce
	// exactly one record, carrying the settled value.
	k := sim.NewKernel()
	s := sim.NewSignal(k, "top.x", 0)
	var sb strings.Builder
	w := NewSettledWriter(&sb, k)
	w.add("top.x", 8, func() uint64 { return uint64(s.Read()) }, func(emit func(uint64)) {
		s.Watch(func(_, now int) { emit(uint64(now)) })
	})
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	k.Schedule(10, func() {
		s.Write(1)
		k.Schedule(0, func() {
			s.Write(2)
			k.Schedule(0, func() { s.Write(7) })
		})
	})
	if err := k.Run(20); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	body := out[strings.LastIndex(out, "$end\n")+5:]
	records := 0
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "b") {
			records++
			if line != "b111 !" {
				t.Errorf("unexpected record %q, want settled value 7", line)
			}
		}
	}
	if records != 1 {
		t.Errorf("settled mode produced %d records, want 1:\n%s", records, body)
	}
}
