package vcd

import (
	"bytes"
	"strings"
	"testing"

	"ahbpower/internal/sim"
)

func TestAnalogWriter(t *testing.T) {
	var buf bytes.Buffer
	w := NewAnalogWriter(&buf)
	total := w.AddReal("power.total")
	m2s := w.AddReal("power.M2S")
	other := w.AddReal("loose")
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	w.Emit(0, total, 1.5)
	w.Emit(0, m2s, 0.25)
	w.Emit(100*sim.Nanosecond, total, 2.5)
	w.Emit(100*sim.Nanosecond, other, -1)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}

	out := buf.String()
	// Dotted names become scoped variables; bare names land in "top".
	for _, want := range []string{
		"$timescale 1ps $end",
		"$scope module power $end",
		"$var real 64 ! total $end",
		"$scope module top $end",
		"$enddefinitions $end",
		"$dumpvars",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("header lacks %q:\n%s", want, out)
		}
	}
	// Timestamps are emitted once per distinct time, values as r<val> <id>.
	if strings.Count(out, "#0\n") != 1 || strings.Count(out, "#100000\n") != 1 {
		t.Errorf("timestamp emission wrong:\n%s", out)
	}
	if !strings.Contains(out, "r1.5 !") || !strings.Contains(out, "r2.5 !") {
		t.Errorf("real emissions missing:\n%s", out)
	}
	if !strings.Contains(out, "r-1 ") {
		t.Errorf("negative real emission missing:\n%s", out)
	}

	if err := w.Start(); err == nil {
		t.Error("second Start must fail")
	}
}

func TestAnalogWriterEmitBeforeStart(t *testing.T) {
	var buf bytes.Buffer
	w := NewAnalogWriter(&buf)
	v := w.AddReal("x")
	w.Emit(0, v, 1) // ignored: not started
	if buf.Len() != 0 {
		t.Errorf("Emit before Start must write nothing, got %q", buf.String())
	}
}
