package vcd

import (
	"bufio"
	"bytes"
	"errors"
	"strings"
	"testing"

	"ahbpower/internal/sim"
)

// failAfter is an io.Writer that accepts n bytes and then fails every
// write with errBoom, modelling a disk that fills mid-dump.
type failAfter struct {
	n int
}

var errBoom = errors.New("boom: device full")

func (w *failAfter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errBoom
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, errBoom
	}
	w.n -= len(p)
	return len(p), nil
}

// flushFail is a buffered-looking writer whose Flush fails — the shape of
// a bufio.Writer over a full disk that only errors when drained.
type flushFail struct{}

func (flushFail) Write(p []byte) (int, error) { return len(p), nil }
func (flushFail) Flush() error                { return errBoom }

func TestVCDStartPropagatesHeaderError(t *testing.T) {
	// Fail on the very first header byte and midway through the header:
	// Start must return the error either way, not swallow it.
	for _, budget := range []int{0, 40} {
		k := sim.NewKernel()
		w := NewWriter(&failAfter{n: budget}, k)
		w.AddBool("top.x", sim.NewBool(k, "top.x", false))
		if err := w.Start(); !errors.Is(err, errBoom) {
			t.Errorf("budget=%d: Start err = %v, want errBoom", budget, err)
		}
		if err := w.Err(); !errors.Is(err, errBoom) {
			t.Errorf("budget=%d: Err() = %v, want errBoom", budget, err)
		}
	}
}

func TestVCDStreamWriteErrorSurfacesViaErr(t *testing.T) {
	k := sim.NewKernel()
	s := sim.NewSignal(k, "top.x", 0)
	// Enough budget for the whole header, so the failure lands on a
	// streamed change record during the run.
	w := NewWriter(&failAfter{n: 4096}, k)
	w.add("top.x", 8, func() uint64 { return uint64(s.Read()) }, func(emit func(uint64)) {
		s.Watch(func(_, now int) { emit(uint64(now)) })
	})
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2000; i++ {
		i := i
		k.Schedule(sim.Time(i)*10, func() { s.Write(i) })
	}
	if err := k.Run(25000); err != nil {
		t.Fatal(err)
	}
	if err := w.Err(); !errors.Is(err, errBoom) {
		t.Fatalf("Err() = %v, want errBoom after mid-stream write failure", err)
	}
	if err := w.Flush(); !errors.Is(err, errBoom) {
		t.Fatalf("Flush() = %v, want the recorded write error", err)
	}
}

func TestVCDFlushDrainsBufferAndPropagates(t *testing.T) {
	k := sim.NewKernel()
	var buf bytes.Buffer
	bw := bufio.NewWriterSize(&buf, 1<<16)
	w := NewWriter(bw, k)
	w.AddBool("top.x", sim.NewBool(k, "top.x", false))
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	// Nothing reached the underlying buffer yet; Flush must drain it.
	if buf.Len() != 0 {
		t.Fatalf("expected buffered output before Flush, got %d bytes", buf.Len())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "$enddefinitions $end") {
		t.Errorf("flushed output incomplete:\n%s", buf.String())
	}

	// And a failing flush must surface its error.
	w2 := NewWriter(flushFail{}, k)
	if err := w2.Start(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Flush(); !errors.Is(err, errBoom) {
		t.Errorf("Flush() = %v, want errBoom from the buffered layer", err)
	}
	if err := w2.Err(); !errors.Is(err, errBoom) {
		t.Errorf("Err() = %v, want the flush error recorded", err)
	}
}

func TestAnalogStartPropagatesHeaderError(t *testing.T) {
	for _, budget := range []int{0, 40} {
		w := NewAnalogWriter(&failAfter{n: budget})
		w.AddReal("power.total")
		if err := w.Start(); !errors.Is(err, errBoom) {
			t.Errorf("budget=%d: Start err = %v, want errBoom", budget, err)
		}
	}
}

func TestAnalogEmitErrorSurfacesViaErr(t *testing.T) {
	// Budget covers the header but not many emissions.
	w := NewAnalogWriter(&failAfter{n: 300})
	v := w.AddReal("power.total")
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		w.Emit(sim.Time(i)*10, v, float64(i))
	}
	if err := w.Err(); !errors.Is(err, errBoom) {
		t.Fatalf("Err() = %v, want errBoom after emission failure", err)
	}
	if err := w.Flush(); !errors.Is(err, errBoom) {
		t.Fatalf("Flush() = %v, want the recorded write error", err)
	}
}

func TestAnalogFlushDrainsBufferAndPropagates(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriterSize(&buf, 1<<16)
	w := NewAnalogWriter(bw)
	v := w.AddReal("power.total")
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	w.Emit(10, v, 1.25)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "r1.25 !") {
		t.Errorf("flushed output missing emission:\n%s", buf.String())
	}

	w2 := NewAnalogWriter(flushFail{})
	w2.AddReal("x")
	if err := w2.Start(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Flush(); !errors.Is(err, errBoom) {
		t.Errorf("Flush() = %v, want errBoom from the buffered layer", err)
	}
}

func TestErrorsAreFirstWriteWins(t *testing.T) {
	// After the first failure every later write is a no-op and the first
	// error is retained, so callers see the root cause, not a cascade.
	w := NewAnalogWriter(&failAfter{n: 0})
	v := w.AddReal("x")
	if err := w.Start(); !errors.Is(err, errBoom) {
		t.Fatal(err)
	}
	first := w.Err()
	w.Emit(10, v, 1)
	w.Emit(20, v, 2)
	if w.Err() != first {
		t.Errorf("later writes replaced the first error: %v -> %v", first, w.Err())
	}
}
