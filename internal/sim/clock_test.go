package sim

import "testing"

func TestClockEdges(t *testing.T) {
	k := NewKernel()
	clk := NewClock(k, "clk", 10*Nanosecond)
	rises, falls := 0, 0
	k.MethodNoInit("rise", func() { rises++ }, clk.Posedge())
	k.MethodNoInit("fall", func() { falls++ }, clk.Negedge())
	if err := k.Run(100 * Nanosecond); err != nil {
		t.Fatal(err)
	}
	if rises != 10 {
		t.Errorf("rises=%d, want 10", rises)
	}
	if falls != 10 {
		t.Errorf("falls=%d, want 10 (Run is inclusive of events at the boundary)", falls)
	}
	if clk.Cycles() != 10 {
		t.Errorf("Cycles=%d, want 10", clk.Cycles())
	}
}

func TestClockFrequency(t *testing.T) {
	k := NewKernel()
	clk := NewClock(k, "clk", 10*Nanosecond)
	if f := clk.FrequencyHz(); f < 99e6 || f > 101e6 {
		t.Errorf("FrequencyHz=%v, want ~100e6", f)
	}
	if clk.Period() != 10*Nanosecond {
		t.Errorf("Period=%v", clk.Period())
	}
}

func TestClockMinimumPeriodClamp(t *testing.T) {
	k := NewKernel()
	clk := NewClock(k, "clk", 0)
	if clk.Period() < 2 {
		t.Errorf("period must be clamped to >=2ps, got %v", clk.Period())
	}
}

func TestRunCycles(t *testing.T) {
	k := NewKernel()
	clk := NewClock(k, "clk", 10*Nanosecond)
	if err := k.RunCycles(clk, 25); err != nil {
		t.Fatal(err)
	}
	if clk.Cycles() != 25 {
		t.Errorf("Cycles=%d, want 25", clk.Cycles())
	}
}

func TestClockedRegisterPipeline(t *testing.T) {
	// A 2-stage register pipeline: q1 <= d, q2 <= q1 on each posedge.
	k := NewKernel()
	clk := NewClock(k, "clk", 10*Nanosecond)
	d := NewSignal(k, "d", 0)
	q1 := NewSignal(k, "q1", 0)
	q2 := NewSignal(k, "q2", 0)
	k.MethodNoInit("regs", func() {
		q1.Write(d.Read())
		q2.Write(q1.Read())
	}, clk.Posedge())
	// Drive d with the cycle index just after each posedge.
	cycle := 0
	k.MethodNoInit("drive", func() {
		cycle++
		d.Write(cycle)
	}, clk.Posedge())
	if err := k.RunCycles(clk, 5); err != nil {
		t.Fatal(err)
	}
	// After 5 posedges: d=5 was written at edge 5; q1 sampled d before that
	// write (two-phase), so q1 holds 4, q2 holds 3.
	if q1.Read() != 4 || q2.Read() != 3 {
		t.Errorf("q1=%d q2=%d, want 4 3", q1.Read(), q2.Read())
	}
}
