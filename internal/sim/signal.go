package sim

// Signal is a typed simulation signal with SystemC sc_signal semantics:
// Read returns the current (settled) value; Write schedules a new value
// that becomes visible in the next delta cycle. A write of the value the
// signal already holds produces no value-change event.
//
// Signals are not safe for concurrent use; the kernel is single-threaded.
type Signal[T comparable] struct {
	k       *Kernel
	name    string
	cur     T
	next    T
	pending bool

	onChange []*Process
	onRise   []*Process // fires when the new value equals riseVal
	onFall   []*Process
	hasEdge  bool // edge semantics enabled (bool signals)
	riseVal  T

	watchers []func(old, new T)

	// snapSkip excludes the signal from kernel snapshots; set for clock
	// signals, whose level is derived from the restored cycle count.
	snapSkip bool
}

// NewSignal creates a named signal with the given initial value.
func NewSignal[T comparable](k *Kernel, name string, init T) *Signal[T] {
	s := &Signal[T]{k: k, name: name, cur: init, next: init}
	k.registerSignal(s)
	return s
}

// NewBool creates a boolean signal with edge (posedge/negedge) sensitivity
// support.
func NewBool(k *Kernel, name string, init bool) *Signal[bool] {
	s := NewSignal(k, name, init)
	s.hasEdge = true
	s.riseVal = true
	return s
}

// Name returns the signal's hierarchical name.
func (s *Signal[T]) Name() string { return s.name }

// Read returns the current settled value.
func (s *Signal[T]) Read() T { return s.cur }

// Write schedules v to become the signal's value in the next delta cycle.
// The last write in an evaluate phase wins. Rewriting the value the signal
// already holds is a no-op (no value-change event, and no pending update
// either — synchronous processes re-drive unchanged outputs every cycle,
// so this fast path carries most writes); when an update is already
// staged, the write must land so last-write-wins ordering is preserved.
func (s *Signal[T]) Write(v T) {
	if !s.pending {
		if v == s.cur {
			return // invariant: next == cur while no update is pending
		}
		s.pending = true
		s.k.addPending(s)
	}
	s.next = v
}

// SetInit forces the current value without generating events; it may only
// be used during model construction, before the simulation starts.
func (s *Signal[T]) SetInit(v T) {
	s.cur = v
	s.next = v
}

// Watch registers a callback invoked during the update phase whenever the
// signal's value actually changes. Watchers must not write signals.
func (s *Signal[T]) Watch(fn func(old, new T)) {
	s.watchers = append(s.watchers, fn)
}

// apply implements the update phase for this signal.
func (s *Signal[T]) apply(k *Kernel) {
	s.pending = false
	if s.next == s.cur {
		return
	}
	old := s.cur
	s.cur = s.next
	if !k.flat {
		for _, p := range s.onChange {
			k.markRunnable(p)
		}
		if s.hasEdge {
			if s.cur == s.riseVal {
				for _, p := range s.onRise {
					k.markRunnable(p)
				}
			} else {
				for _, p := range s.onFall {
					k.markRunnable(p)
				}
			}
		}
	}
	for _, w := range s.watchers {
		w(old, s.cur)
	}
}

// snapName, snapExcluded, snapCapture and snapRestore implement the
// kernel's snapshot protocol (see snapshot.go). Values are widened to 64
// bits; restore is silent — it neither fires watchers nor wakes
// processes, matching SetInit semantics.
func (s *Signal[T]) snapName() string   { return s.name }
func (s *Signal[T]) snapExcluded() bool { return s.snapSkip }

func (s *Signal[T]) snapCapture() (uint64, bool) {
	switch v := any(s.cur).(type) {
	case bool:
		if v {
			return 1, true
		}
		return 0, true
	case uint8:
		return uint64(v), true
	case uint16:
		return uint64(v), true
	case uint32:
		return uint64(v), true
	case uint64:
		return v, true
	case int:
		return uint64(int64(v)), true
	case int64:
		return uint64(v), true
	}
	return 0, false
}

func (s *Signal[T]) snapRestore(bits uint64) bool {
	var v T
	switch p := any(&v).(type) {
	case *bool:
		*p = bits != 0
	case *uint8:
		*p = uint8(bits)
	case *uint16:
		*p = uint16(bits)
	case *uint32:
		*p = uint32(bits)
	case *uint64:
		*p = bits
	case *int:
		*p = int(int64(bits))
	case *int64:
		*p = int64(bits)
	default:
		return false
	}
	s.cur = v
	s.next = v
	s.pending = false
	return true
}

// changeTrigger makes the signal usable in sensitivity lists.
type changeTrigger[T comparable] struct{ s *Signal[T] }

func (t changeTrigger[T]) register(p *Process) {
	t.s.onChange = append(t.s.onChange, p)
}

// Changed returns a trigger that fires on any value change of the signal.
func (s *Signal[T]) Changed() Trigger { return changeTrigger[T]{s} }

type edgeTrigger struct {
	s    *Signal[bool]
	rise bool
}

func (t edgeTrigger) register(p *Process) {
	if t.rise {
		t.s.onRise = append(t.s.onRise, p)
	} else {
		t.s.onFall = append(t.s.onFall, p)
	}
}

// Posedge returns a trigger firing when the boolean signal rises to true.
func Posedge(s *Signal[bool]) Trigger {
	s.hasEdge = true
	s.riseVal = true
	return edgeTrigger{s: s, rise: true}
}

// Negedge returns a trigger firing when the boolean signal falls to false.
func Negedge(s *Signal[bool]) Trigger {
	s.hasEdge = true
	s.riseVal = true
	return edgeTrigger{s: s, rise: false}
}
