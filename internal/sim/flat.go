package sim

import "fmt"

// Flat is a straight-line cycle stepper over a built model: instead of
// driving the event heap and sensitivity-based delta scheduling, it
// executes a static per-cycle schedule — the clock's posedge processes in
// registration order, then the supplied combinational waves in topological
// order — and fires the settled-timestep observers once per cycle.
//
// The schedule reuses the exact process closures the event kernel would
// run, and signal writes keep their staged (evaluate/update) semantics, so
// every process still reads pre-edge values and last-write-wins ordering
// is preserved. A model stepped flat therefore settles to bit-identical
// per-cycle state; only delta-cycle accounting (and any delta-level
// instrumentation such as signal-watcher glitch counting installed after
// construction) can differ.
//
// Flat makes three structural assumptions, all validated by NewFlat:
// the clock is the only source of timed events, no process is sensitive to
// the falling clock edge, and every registered process is either
// posedge-sensitive or listed in a combinational wave. A kernel handed to
// a Flat must not be advanced with Run afterwards.
type Flat struct {
	k     *Kernel
	clk   *Clock
	waves [][]*Process
	half  Time
}

// NewFlat validates the model against the flat-execution contract and
// returns a stepper positioned at time zero with initialization settled
// (Method processes have run once, exactly as under the event kernel).
// combWaves lists the combinational processes to settle after each clock
// edge, in topological order: every process in wave i may depend on edge
// outputs and on waves < i, never on later waves.
func NewFlat(k *Kernel, clk *Clock, combWaves [][]*Process) (*Flat, error) {
	period := clk.Period()
	half := period / 2
	if 2*half != period {
		return nil, fmt.Errorf("sim: flat stepper needs an even clock period, got %d", period)
	}
	// Settle initialization at time zero exactly as Run would: Method
	// processes run once and their deltas drain. The clock's first toggle
	// (scheduled at half a period) stays queued and is never popped.
	if err := k.Run(0); err != nil {
		return nil, err
	}
	if len(k.queue) != 1 {
		return nil, fmt.Errorf("sim: flat stepper supports models whose only timed events are the clock's (found %d queued events)", len(k.queue))
	}
	if len(clk.sig.onFall) != 0 {
		return nil, fmt.Errorf("sim: flat stepper does not support negedge-sensitive processes (found %d)", len(clk.sig.onFall))
	}
	covered := make(map[int]bool, len(k.procs))
	for _, p := range clk.sig.onRise {
		covered[p.id] = true
	}
	for _, wave := range combWaves {
		for _, p := range wave {
			if covered[p.id] {
				return nil, fmt.Errorf("sim: flat schedule lists process %q twice", p.name)
			}
			covered[p.id] = true
		}
	}
	for _, p := range k.procs {
		if !covered[p.id] {
			return nil, fmt.Errorf("sim: process %q is neither posedge-sensitive nor in a combinational wave", p.name)
		}
	}
	// The clock line is held high permanently: posedge processes are called
	// directly, and settled-timestep observers that gate on the high phase
	// (the bus cycle probe) see every flat cycle as a settled posedge.
	clk.sig.SetInit(true)
	return &Flat{k: k, clk: clk, waves: combWaves, half: half}, nil
}

// RunCycles advances the model by n settled clock cycles. Simulated time
// and the clock's cycle counter advance exactly as under the event kernel
// (posedge i settles at half + (i-1)*period), so time-stamped observations
// are identical across execution models. It may be called repeatedly;
// each call resumes from the cycle the previous one reached.
func (f *Flat) RunCycles(n uint64) error {
	k := f.k
	k.flat = true
	defer func() { k.flat = false }()
	posedge := f.clk.sig.onRise
	period := f.clk.period
	for ; n > 0; n-- {
		// The event kernel's clock toggle increments the cycle counter
		// before the edge's processes run; mirror that so any process
		// reading Clock.Cycles sees the same 1-based cycle number.
		f.clk.cycles++
		for _, p := range posedge {
			p.fn()
		}
		// Quiescent edge: no synchronous process staged an update, so the
		// combinational nets are still settled from the previous cycle and
		// the waves can be skipped — the same work the event kernel avoids
		// through sensitivity, recovered here without any bookkeeping.
		quiet := len(k.pending) == 0
		k.applyFlat()
		if !quiet {
			for _, wave := range f.waves {
				for _, p := range wave {
					p.fn()
				}
				k.applyFlat()
			}
		}
		k.now = f.half + Time(f.clk.cycles-1)*period
		k.probe()
	}
	return nil
}
