package sim

import "fmt"

// Snapshot support: the kernel can serialize the settled values of every
// registered signal and later restore them onto a freshly constructed,
// structurally identical kernel. Restores are silent — no value-change
// events, no watcher callbacks, no process wakeups — because the caller
// restores component-level state (FSM cursors, accumulators, masks)
// explicitly alongside the signals; firing watchers during restore would
// double-apply those side effects.
//
// The protocol assumes deterministic construction: capture and restore
// walk the signal registry in registration order, and names are checked
// pairwise as an integrity guard. Clock signals are excluded (snapSkip):
// the two execution backends hold the clock at different levels between
// cycles (event: low at a cycle boundary; flat: pinned high), and the
// clock's position is fully determined by the cycle count, which the
// caller restores through Clock.RestoreCycles.

// SignalValue is the serialized settled value of one kernel signal. Bits
// holds the value widened to 64 bits with the signal's native encoding
// (bool as 0/1, signed ints sign-extended).
type SignalValue struct {
	Name string `json:"name"`
	Bits uint64 `json:"bits"`
}

// snapshottable is the non-generic handle the kernel keeps for capturing
// and restoring a signal's settled value.
type snapshottable interface {
	snapName() string
	snapExcluded() bool
	snapCapture() (uint64, bool)
	snapRestore(bits uint64) bool
}

// registerSignal records a signal in the kernel's snapshot registry, in
// construction order.
func (k *Kernel) registerSignal(s snapshottable) {
	k.signals = append(k.signals, s)
}

// CaptureSignals serializes the settled value of every registered signal
// (excluding snapshot-excluded ones, i.e. clocks), in registration
// order. The kernel must be settled: capturing with staged writes or
// runnable processes would freeze a half-applied delta.
func (k *Kernel) CaptureSignals() ([]SignalValue, error) {
	if k.nRunnable > 0 || len(k.pending) > 0 {
		return nil, fmt.Errorf("sim: capture on unsettled kernel (%d runnable, %d pending)", k.nRunnable, len(k.pending))
	}
	vals := make([]SignalValue, 0, len(k.signals))
	for _, s := range k.signals {
		if s.snapExcluded() {
			continue
		}
		bits, ok := s.snapCapture()
		if !ok {
			return nil, fmt.Errorf("sim: signal %q has a non-serializable value type", s.snapName())
		}
		vals = append(vals, SignalValue{Name: s.snapName(), Bits: bits})
	}
	return vals, nil
}

// RestoreSignals writes the captured values back onto this kernel's
// signals, silently (no events, watchers, or wakeups). The kernel must
// be structurally identical to the one captured: same signals in the
// same registration order.
func (k *Kernel) RestoreSignals(vals []SignalValue) error {
	i := 0
	for _, s := range k.signals {
		if s.snapExcluded() {
			continue
		}
		if i >= len(vals) {
			return fmt.Errorf("sim: restore underflow: %d captured values for more signals", len(vals))
		}
		v := vals[i]
		i++
		if v.Name != s.snapName() {
			return fmt.Errorf("sim: restore mismatch at %d: captured %q, kernel has %q", i-1, v.Name, s.snapName())
		}
		if !s.snapRestore(v.Bits) {
			return fmt.Errorf("sim: signal %q has a non-serializable value type", v.Name)
		}
	}
	if i != len(vals) {
		return fmt.Errorf("sim: restore overflow: %d captured values, kernel consumed %d", len(vals), i)
	}
	return nil
}

// RestoreTime moves a settled, initialized kernel to an absolute
// simulated time without running anything: queued events are shifted by
// the same offset (preserving their relative phase — for a bus kernel
// that is the single self-rescheduling clock toggle), and the
// settled-probe latch is set so observers are not re-fired for the
// restored boundary. Callers restore signal and component state
// separately; this only relocates the timeline.
func (k *Kernel) RestoreTime(now Time) error {
	if !k.initialized {
		return fmt.Errorf("sim: RestoreTime before initialization")
	}
	if k.nRunnable > 0 || len(k.pending) > 0 {
		return fmt.Errorf("sim: RestoreTime on unsettled kernel")
	}
	offset := now - k.now
	for i := range k.queue {
		k.queue[i].at += offset
	}
	k.now = now
	k.probedAny = true
	k.probedAt = now
	return nil
}
