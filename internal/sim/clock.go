package sim

// Clock drives a boolean signal with a fixed period. The signal starts low
// at time zero; the first rising edge occurs after half a period, so that
// combinational logic initialized at time zero has settled before the first
// active edge.
type Clock struct {
	sig    *Signal[bool]
	period Time
	cycles uint64
}

// NewClock creates a clock with the given period and starts it.
func NewClock(k *Kernel, name string, period Time) *Clock {
	if period < 2 {
		period = 2
	}
	c := &Clock{
		sig:    NewBool(k, name, false),
		period: period,
	}
	// The clock's level is derived state (cycle count + execution model),
	// not snapshot payload; see RestoreCycles.
	c.sig.snapSkip = true
	half := period / 2
	var toggle func()
	toggle = func() {
		v := !c.sig.Read()
		c.sig.Write(v)
		if v {
			c.cycles++
		}
		k.Schedule(half, toggle)
	}
	k.Schedule(half, toggle)
	return c
}

// Signal returns the clock's boolean signal, for use in sensitivity lists.
func (c *Clock) Signal() *Signal[bool] { return c.sig }

// Period returns the clock period.
func (c *Clock) Period() Time { return c.period }

// FrequencyHz returns the clock frequency in hertz.
func (c *Clock) FrequencyHz() float64 {
	return 1.0 / c.period.Seconds()
}

// Cycles returns the number of rising edges produced so far.
func (c *Clock) Cycles() uint64 { return c.cycles }

// RestoreCycles sets the rising-edge count during snapshot restore. The
// signal itself is left at its constructed level: the event kernel's
// queued toggle (relocated by Kernel.RestoreTime) reproduces the right
// waveform, and a flat stepper pins the level itself.
func (c *Clock) RestoreCycles(n uint64) { c.cycles = n }

// Posedge returns a trigger for the clock's rising edge.
func (c *Clock) Posedge() Trigger { return Posedge(c.sig) }

// Negedge returns a trigger for the clock's falling edge.
func (c *Clock) Negedge() Trigger { return Negedge(c.sig) }
