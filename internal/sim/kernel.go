package sim

import (
	"fmt"
	"math/bits"
)

// maxDeltasPerTimestep bounds the number of delta cycles executed at a
// single simulated time before the kernel declares a combinational loop.
const maxDeltasPerTimestep = 100000

// timedEvent is a callback scheduled at an absolute simulated time.
type timedEvent struct {
	at  Time
	seq uint64 // tie-break for determinism
	fn  func()
}

// before orders events by time, then by scheduling sequence so that
// same-time events fire in the order they were scheduled.
func (e timedEvent) before(o timedEvent) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventHeap is a hand-rolled binary min-heap of timed events. Unlike
// container/heap it moves concrete values, so pushing and popping never
// box events into interfaces — the event queue is allocation-free in
// steady state.
type eventHeap []timedEvent

func (h *eventHeap) push(e timedEvent) {
	q := append(*h, e)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q[i].before(q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	*h = q
}

func (h *eventHeap) pop() timedEvent {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = timedEvent{} // release the callback for GC
	q = q[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && q[l].before(q[min]) {
			min = l
		}
		if r < n && q[r].before(q[min]) {
			min = r
		}
		if min == i {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	*h = q
	return top
}

// updater is the non-generic handle the kernel keeps for signals with a
// pending write; apply performs the update phase for one signal.
type updater interface {
	apply(k *Kernel)
}

// CycleObserver consumes the settled-timestep event stream: EndOfTimestep
// is invoked once per distinct simulated time, after every delta cycle at
// that time has settled. It is the typed form of AtEndOfTimestep and the
// root of the observation stack — bus models sample their signals from it
// and republish typed per-cycle records to their own observers.
type CycleObserver interface {
	EndOfTimestep(t Time)
}

// observerFunc adapts a plain function to a CycleObserver.
type observerFunc func(Time)

func (f observerFunc) EndOfTimestep(t Time) { f(t) }

// Kernel is a single-threaded deterministic discrete-event simulator.
// Create one with NewKernel, build modules (signals + processes) against
// it, then call Run.
type Kernel struct {
	now        Time
	deltaCount uint64
	seq        uint64

	queue eventHeap
	procs []*Process

	// The runnable set is a bitset over process ids: marking is a single
	// bit set, and the evaluate phase walks set bits in increasing id
	// order, which is exactly the registration order the kernel's
	// determinism contract requires — no per-delta sorting.
	runnableBits []uint64
	runnableSnap []uint64 // evaluate-phase snapshot buffer
	nRunnable    int

	pending []updater
	pendBuf []updater // double buffer for the update phase

	initialized bool
	stopped     bool

	// flat suppresses sensitivity-driven process wakeups during signal
	// updates: a Flat stepper replaces them with its own static schedule.
	// Watchers still fire, so update-phase side effects (split-resume
	// masking) behave identically under both execution models.
	flat bool

	// observers run once per simulated timestep after all delta cycles at
	// that time have settled; used by monitors that want a settled view of
	// all signals.
	observers []CycleObserver
	probedAny bool
	probedAt  Time

	// signals is the snapshot registry: every signal constructed against
	// this kernel, in construction order (see snapshot.go).
	signals []snapshottable
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// DeltaCycles returns the total number of delta cycles executed so far; it
// is a measure of simulation work, used by the instrumentation-overhead
// experiment.
func (k *Kernel) DeltaCycles() uint64 { return k.deltaCount }

// Stop requests that the Run in progress return as soon as the current
// delta completes. The stop flag is cleared when Run is next entered, so a
// stopped kernel can be resumed by calling Run again.
func (k *Kernel) Stop() { k.stopped = true }

// Stopped reports whether Stop has been called since the last Run entry.
func (k *Kernel) Stopped() bool { return k.stopped }

// Schedule runs fn after the given delay. A zero delay runs the callback in
// the next timestep processing at the current time (before further delta
// cycles at a later time).
func (k *Kernel) Schedule(delay Time, fn func()) {
	k.seq++
	k.queue.push(timedEvent{at: k.now + delay, seq: k.seq, fn: fn})
}

// Observe registers a typed settled-timestep observer. Observers fire in
// registration order, once per distinct simulated time, after all delta
// cycles at that time have settled. This is the natural probing point for
// cycle-level power monitors.
func (k *Kernel) Observe(o CycleObserver) {
	k.observers = append(k.observers, o)
}

// AtEndOfTimestep registers a plain-function settled-timestep observer; it
// is the untyped convenience form of Observe.
func (k *Kernel) AtEndOfTimestep(fn func(Time)) {
	k.Observe(observerFunc(fn))
}

func (k *Kernel) markRunnable(p *Process) {
	if p.queued {
		return
	}
	p.queued = true
	w := p.id >> 6
	if w >= len(k.runnableBits) {
		grown := make([]uint64, (len(k.procs)+63)>>6)
		copy(grown, k.runnableBits)
		k.runnableBits = grown
	}
	k.runnableBits[w] |= 1 << (uint(p.id) & 63)
	k.nRunnable++
}

func (k *Kernel) addPending(u updater) {
	k.pending = append(k.pending, u)
}

// runDeltas executes delta cycles until the current time settles.
func (k *Kernel) runDeltas() error {
	deltas := 0
	for k.nRunnable > 0 || len(k.pending) > 0 {
		deltas++
		if deltas > maxDeltasPerTimestep {
			return fmt.Errorf("sim: combinational loop detected at %v (%d delta cycles without settling)", k.now, deltas)
		}
		k.deltaCount++

		// Evaluate phase: run the snapshot of runnable processes in id
		// (registration) order; processes marked while it runs land in the
		// live bitset and execute in the next delta.
		if k.nRunnable > 0 {
			live := k.runnableBits
			snap := k.runnableSnap
			if cap(snap) < len(live) {
				snap = make([]uint64, len(live))
			}
			snap = snap[:len(live)]
			copy(snap, live)
			for i := range live {
				live[i] = 0
			}
			k.nRunnable = 0
			k.runnableSnap = snap
			for wi, w := range snap {
				base := wi << 6
				for w != 0 {
					b := bits.TrailingZeros64(w)
					w &= w - 1
					p := k.procs[base+b]
					p.queued = false
					p.fn()
				}
			}
		}

		// Update phase: apply pending signal writes; changed signals mark
		// their sensitive processes runnable for the next delta. The two
		// pending slices are swapped, not reallocated.
		pend := k.pending
		k.pending = k.pendBuf[:0]
		for _, u := range pend {
			u.apply(k)
		}
		k.pendBuf = pend[:0]
	}
	return nil
}

// applyFlat performs one update phase without scheduling follow-up work:
// every staged write is applied (firing watchers on change), but sensitive
// processes are not marked runnable — the flat stepper's static schedule
// decides what runs next. Only meaningful while k.flat is set.
func (k *Kernel) applyFlat() {
	pend := k.pending
	k.pending = k.pendBuf[:0]
	for _, u := range pend {
		u.apply(k)
	}
	k.pendBuf = pend[:0]
}

// initialize runs every registered process once at time zero, as SystemC
// does for SC_METHOD processes, then settles the resulting deltas.
func (k *Kernel) initialize() error {
	if k.initialized {
		return nil
	}
	k.initialized = true
	for _, p := range k.procs {
		if !p.noInit {
			k.markRunnable(p)
		}
	}
	return k.runDeltas()
}

// Run advances simulation until the given absolute time (inclusive of
// events scheduled exactly at it), until no events remain, or until Stop is
// called. It may be called repeatedly to advance further; a Stop from a
// previous Run is cleared on entry, so re-running resumes the simulation
// instead of silently doing nothing.
func (k *Kernel) Run(until Time) error {
	k.stopped = false
	if err := k.initialize(); err != nil {
		return err
	}
	if err := k.runDeltas(); err != nil {
		return err
	}
	for !k.stopped && len(k.queue) > 0 && k.queue[0].at <= until {
		t := k.queue[0].at
		if t > k.now {
			// The previous timestep fully settled.
			k.probe()
			k.now = t
		}
		for len(k.queue) > 0 && k.queue[0].at == t {
			ev := k.queue.pop()
			ev.fn()
		}
		if err := k.runDeltas(); err != nil {
			return err
		}
	}
	if !k.stopped {
		k.probe()
		if until > k.now {
			k.now = until
		}
	}
	return nil
}

// probe fires the settled-timestep observers for the current time, at most
// once per distinct simulated time.
func (k *Kernel) probe() {
	if k.probedAny && k.probedAt == k.now {
		return
	}
	k.probedAny = true
	k.probedAt = k.now
	for _, o := range k.observers {
		o.EndOfTimestep(k.now)
	}
}

// RunCycles is a convenience wrapper advancing the simulation by the given
// number of periods of the supplied clock.
func (k *Kernel) RunCycles(c *Clock, n uint64) error {
	return k.Run(k.now + Time(n)*c.Period())
}
