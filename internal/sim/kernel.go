package sim

import (
	"container/heap"
	"fmt"
	"sort"
)

// maxDeltasPerTimestep bounds the number of delta cycles executed at a
// single simulated time before the kernel declares a combinational loop.
const maxDeltasPerTimestep = 100000

// timedEvent is a callback scheduled at an absolute simulated time.
type timedEvent struct {
	at  Time
	seq uint64 // tie-break for determinism
	fn  func()
}

type eventHeap []timedEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(timedEvent)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// updater is the non-generic handle the kernel keeps for signals with a
// pending write; apply performs the update phase for one signal.
type updater interface {
	apply(k *Kernel)
}

// CycleObserver consumes the settled-timestep event stream: EndOfTimestep
// is invoked once per distinct simulated time, after every delta cycle at
// that time has settled. It is the typed form of AtEndOfTimestep and the
// root of the observation stack — bus models sample their signals from it
// and republish typed per-cycle records to their own observers.
type CycleObserver interface {
	EndOfTimestep(t Time)
}

// observerFunc adapts a plain function to a CycleObserver.
type observerFunc func(Time)

func (f observerFunc) EndOfTimestep(t Time) { f(t) }

// Kernel is a single-threaded deterministic discrete-event simulator.
// Create one with NewKernel, build modules (signals + processes) against
// it, then call Run.
type Kernel struct {
	now        Time
	deltaCount uint64
	seq        uint64

	queue    eventHeap
	procs    []*Process
	runnable []*Process
	pending  []updater

	initialized bool
	stopped     bool

	// observers run once per simulated timestep after all delta cycles at
	// that time have settled; used by monitors that want a settled view of
	// all signals.
	observers []CycleObserver
	probedAny bool
	probedAt  Time
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// DeltaCycles returns the total number of delta cycles executed so far; it
// is a measure of simulation work, used by the instrumentation-overhead
// experiment.
func (k *Kernel) DeltaCycles() uint64 { return k.deltaCount }

// Stop requests that the Run in progress return as soon as the current
// delta completes. The stop flag is cleared when Run is next entered, so a
// stopped kernel can be resumed by calling Run again.
func (k *Kernel) Stop() { k.stopped = true }

// Stopped reports whether Stop has been called since the last Run entry.
func (k *Kernel) Stopped() bool { return k.stopped }

// Schedule runs fn after the given delay. A zero delay runs the callback in
// the next timestep processing at the current time (before further delta
// cycles at a later time).
func (k *Kernel) Schedule(delay Time, fn func()) {
	k.seq++
	heap.Push(&k.queue, timedEvent{at: k.now + delay, seq: k.seq, fn: fn})
}

// Observe registers a typed settled-timestep observer. Observers fire in
// registration order, once per distinct simulated time, after all delta
// cycles at that time have settled. This is the natural probing point for
// cycle-level power monitors.
func (k *Kernel) Observe(o CycleObserver) {
	k.observers = append(k.observers, o)
}

// AtEndOfTimestep registers a plain-function settled-timestep observer; it
// is the untyped convenience form of Observe.
func (k *Kernel) AtEndOfTimestep(fn func(Time)) {
	k.Observe(observerFunc(fn))
}

func (k *Kernel) markRunnable(p *Process) {
	if p.queued {
		return
	}
	p.queued = true
	k.runnable = append(k.runnable, p)
}

func (k *Kernel) addPending(u updater) {
	k.pending = append(k.pending, u)
}

// runDeltas executes delta cycles until the current time settles.
func (k *Kernel) runDeltas() error {
	deltas := 0
	for len(k.runnable) > 0 || len(k.pending) > 0 {
		deltas++
		if deltas > maxDeltasPerTimestep {
			return fmt.Errorf("sim: combinational loop detected at %v (%d delta cycles without settling)", k.now, deltas)
		}
		k.deltaCount++

		// Evaluate phase: run all runnable processes in registration order.
		run := k.runnable
		k.runnable = nil
		sort.Slice(run, func(i, j int) bool { return run[i].id < run[j].id })
		for _, p := range run {
			p.queued = false
			p.fn()
		}

		// Update phase: apply pending signal writes; changed signals mark
		// their sensitive processes runnable for the next delta.
		pend := k.pending
		k.pending = nil
		for _, u := range pend {
			u.apply(k)
		}
	}
	return nil
}

// initialize runs every registered process once at time zero, as SystemC
// does for SC_METHOD processes, then settles the resulting deltas.
func (k *Kernel) initialize() error {
	if k.initialized {
		return nil
	}
	k.initialized = true
	for _, p := range k.procs {
		if !p.noInit {
			k.markRunnable(p)
		}
	}
	return k.runDeltas()
}

// Run advances simulation until the given absolute time (inclusive of
// events scheduled exactly at it), until no events remain, or until Stop is
// called. It may be called repeatedly to advance further; a Stop from a
// previous Run is cleared on entry, so re-running resumes the simulation
// instead of silently doing nothing.
func (k *Kernel) Run(until Time) error {
	k.stopped = false
	if err := k.initialize(); err != nil {
		return err
	}
	if err := k.runDeltas(); err != nil {
		return err
	}
	for !k.stopped && len(k.queue) > 0 && k.queue[0].at <= until {
		t := k.queue[0].at
		if t > k.now {
			// The previous timestep fully settled.
			k.probe()
			k.now = t
		}
		for len(k.queue) > 0 && k.queue[0].at == t {
			ev := heap.Pop(&k.queue).(timedEvent)
			ev.fn()
		}
		if err := k.runDeltas(); err != nil {
			return err
		}
	}
	if !k.stopped {
		k.probe()
		if until > k.now {
			k.now = until
		}
	}
	return nil
}

// probe fires the settled-timestep observers for the current time, at most
// once per distinct simulated time.
func (k *Kernel) probe() {
	if k.probedAny && k.probedAt == k.now {
		return
	}
	k.probedAny = true
	k.probedAt = k.now
	for _, o := range k.observers {
		o.EndOfTimestep(k.now)
	}
}

// RunCycles is a convenience wrapper advancing the simulation by the given
// number of periods of the supplied clock.
func (k *Kernel) RunCycles(c *Clock, n uint64) error {
	return k.Run(k.now + Time(n)*c.Period())
}
