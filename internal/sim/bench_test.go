package sim

import (
	"fmt"
	"testing"
)

// BenchmarkKernel measures the discrete-event kernel's hot loops in
// isolation: timed-event scheduling, clock fan-out to many synchronous
// processes, combinational delta cascades and signal-update throughput.
// These are the per-cycle costs every simulation pays, so the CI
// bench-regression job gates on them.
func BenchmarkKernel(b *testing.B) {
	b.Run("events", benchKernelEvents)
	b.Run("clock-fanout-16", func(b *testing.B) { benchKernelClockFanout(b, 16) })
	b.Run("clock-fanout-64", func(b *testing.B) { benchKernelClockFanout(b, 64) })
	b.Run("delta-chain-32", func(b *testing.B) { benchKernelDeltaChain(b, 32) })
	b.Run("signal-writes", benchKernelSignalWrites)
}

// benchKernelEvents measures raw timed-event throughput: one scheduled
// callback per iteration, each writing a signal watched by one process.
func benchKernelEvents(b *testing.B) {
	k := NewKernel()
	s := NewSignal(k, "s", 0)
	n := 0
	k.Method("p", func() { n++ }, s.Changed())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Schedule(1, func() { s.Write(i) })
		if err := k.Run(k.Now() + 1); err != nil {
			b.Fatal(err)
		}
	}
}

// benchKernelClockFanout is the shape of a bus cycle: one clock whose
// rising edge wakes fanout synchronous processes, each writing its own
// signal. Reported per simulated clock cycle.
func benchKernelClockFanout(b *testing.B, fanout int) {
	k := NewKernel()
	clk := NewClock(k, "clk", 10)
	outs := make([]*Signal[int], fanout)
	for i := 0; i < fanout; i++ {
		i := i
		outs[i] = NewSignal(k, fmt.Sprintf("q%d", i), 0)
		cnt := 0
		k.MethodNoInit(fmt.Sprintf("ff%d", i), func() {
			cnt++
			outs[i].Write(cnt)
		}, clk.Posedge())
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := k.RunCycles(clk, uint64(b.N)); err != nil {
		b.Fatal(err)
	}
}

// benchKernelDeltaChain measures delta-cycle propagation through a
// combinational chain of depth signals: one write at the head ripples to
// the tail, costing depth delta cycles.
func benchKernelDeltaChain(b *testing.B, depth int) {
	k := NewKernel()
	sigs := make([]*Signal[int], depth+1)
	for i := range sigs {
		sigs[i] = NewSignal(k, fmt.Sprintf("c%d", i), 0)
	}
	for i := 0; i < depth; i++ {
		i := i
		k.Method(fmt.Sprintf("buf%d", i), func() {
			sigs[i+1].Write(sigs[i].Read() + 1)
		}, sigs[i].Changed())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Schedule(1, func() { sigs[0].Write(i + 1) })
		if err := k.Run(k.Now() + 1); err != nil {
			b.Fatal(err)
		}
	}
	if got := sigs[depth].Read(); got != b.N+depth {
		b.Fatalf("chain tail = %d, want %d", got, b.N+depth)
	}
}

// benchKernelSignalWrites measures the update phase alone: many signals
// written in one delta, no downstream sensitivity.
func benchKernelSignalWrites(b *testing.B) {
	k := NewKernel()
	const width = 32
	sigs := make([]*Signal[uint32], width)
	for i := range sigs {
		sigs[i] = NewSignal(k, fmt.Sprintf("w%d", i), uint32(0))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Schedule(1, func() {
			for _, s := range sigs {
				s.Write(uint32(i))
			}
		})
		if err := k.Run(k.Now() + 1); err != nil {
			b.Fatal(err)
		}
	}
}
