// Package sim implements a deterministic discrete-event simulation kernel
// with SystemC-like semantics: simulated time in picoseconds, delta cycles,
// typed signals with two-phase (evaluate/update) write semantics,
// statically sensitive method processes, and clocks.
//
// The paper builds its executable AHB model on SystemC 2.0 and the
// proprietary IPsim library; this package is the from-scratch substitute.
// It provides exactly the facilities the methodology needs: an event-driven
// executable model whose signal changes can be probed by power monitors.
package sim

import "fmt"

// Time is simulated time in picoseconds. The zero value is the start of
// simulation.
type Time uint64

// Convenient time units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts a simulated time to floating-point seconds.
func (t Time) Seconds() float64 {
	return float64(t) / float64(Second)
}

// String formats the time with an appropriate engineering unit.
func (t Time) String() string {
	switch {
	case t == 0:
		return "0s"
	case t%Second == 0:
		return fmt.Sprintf("%ds", t/Second)
	case t%Millisecond == 0:
		return fmt.Sprintf("%dms", t/Millisecond)
	case t%Microsecond == 0:
		return fmt.Sprintf("%dus", t/Microsecond)
	case t%Nanosecond == 0:
		return fmt.Sprintf("%dns", t/Nanosecond)
	default:
		return fmt.Sprintf("%dps", uint64(t))
	}
}

// FromSeconds converts floating-point seconds to simulated Time, rounding
// to the nearest picosecond.
func FromSeconds(s float64) Time {
	if s <= 0 {
		return 0
	}
	return Time(s*float64(Second) + 0.5)
}
