package sim

// Process is a method process: a callback executed during the evaluate
// phase whenever one of its sensitivity triggers fires. Processes have no
// implicit state; modules keep state in their own structs and in signals.
type Process struct {
	id     int
	name   string
	fn     func()
	queued bool
	noInit bool
}

// Name returns the process's diagnostic name.
func (p *Process) Name() string { return p.name }

// Trigger is anything a process can be made sensitive to: a signal value
// change, or a clock edge.
type Trigger interface {
	register(p *Process)
}

// Method registers a new process with the given static sensitivity list.
// Like a SystemC SC_METHOD it also runs once during initialization.
func (k *Kernel) Method(name string, fn func(), sens ...Trigger) *Process {
	p := &Process{id: len(k.procs), name: name, fn: fn}
	k.procs = append(k.procs, p)
	for _, s := range sens {
		s.register(p)
	}
	if k.initialized {
		// Late registration after initialization: schedule a first run so
		// the process still observes the current state.
		k.markRunnable(p)
	}
	return p
}

// MethodNoInit registers a process that is NOT run during initialization;
// it only runs when a sensitivity trigger fires (SystemC dont_initialize).
func (k *Kernel) MethodNoInit(name string, fn func(), sens ...Trigger) *Process {
	p := &Process{id: len(k.procs), name: name, fn: fn, noInit: true}
	k.procs = append(k.procs, p)
	for _, s := range sens {
		s.register(p)
	}
	return p
}
