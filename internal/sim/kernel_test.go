package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "0s"},
		{5 * Picosecond, "5ps"},
		{3 * Nanosecond, "3ns"},
		{7 * Microsecond, "7us"},
		{2 * Millisecond, "2ms"},
		{1 * Second, "1s"},
		{1500 * Picosecond, "1500ps"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", uint64(c.t), got, c.want)
		}
	}
}

func TestTimeSecondsRoundTrip(t *testing.T) {
	f := func(ps uint32) bool {
		tt := Time(ps)
		return FromSeconds(tt.Seconds()) == tt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if FromSeconds(-1) != 0 {
		t.Error("negative seconds must clamp to 0")
	}
}

func TestScheduleOrdering(t *testing.T) {
	k := NewKernel()
	var order []int
	k.Schedule(30, func() { order = append(order, 3) })
	k.Schedule(10, func() { order = append(order, 1) })
	k.Schedule(20, func() { order = append(order, 2) })
	k.Schedule(10, func() { order = append(order, 11) }) // same time: FIFO
	if err := k.Run(100); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 11, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("order=%v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order=%v, want %v", order, want)
		}
	}
	if k.Now() != 100 {
		t.Errorf("Now=%v, want 100", k.Now())
	}
}

func TestRunDoesNotExecuteEventsBeyondUntil(t *testing.T) {
	k := NewKernel()
	ran := false
	k.Schedule(200, func() { ran = true })
	if err := k.Run(100); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("event at 200 must not run when Run(100)")
	}
	if err := k.Run(300); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("event must run on subsequent Run")
	}
}

func TestSignalTwoPhaseSemantics(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k, "s", 0)
	observed := -1
	k.Schedule(10, func() {
		s.Write(42)
		observed = s.Read() // must still see the old value
	})
	if err := k.Run(20); err != nil {
		t.Fatal(err)
	}
	if observed != 0 {
		t.Errorf("Read during evaluate = %d, want old value 0", observed)
	}
	if s.Read() != 42 {
		t.Errorf("settled value = %d, want 42", s.Read())
	}
}

func TestSignalLastWriteWins(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k, "s", 0)
	k.Schedule(10, func() {
		s.Write(1)
		s.Write(2)
		s.Write(3)
	})
	if err := k.Run(20); err != nil {
		t.Fatal(err)
	}
	if s.Read() != 3 {
		t.Errorf("value=%d, want 3", s.Read())
	}
}

func TestSignalNoEventOnSameValueWrite(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k, "s", 7)
	changes := 0
	s.Watch(func(old, new int) { changes++ })
	k.Schedule(10, func() { s.Write(7) })
	k.Schedule(20, func() { s.Write(8) })
	if err := k.Run(30); err != nil {
		t.Fatal(err)
	}
	if changes != 1 {
		t.Errorf("changes=%d, want 1 (write of identical value is not an event)", changes)
	}
}

func TestMethodSensitivityChain(t *testing.T) {
	// b follows a through a combinational process; c follows b.
	k := NewKernel()
	a := NewSignal(k, "a", 0)
	b := NewSignal(k, "b", 0)
	c := NewSignal(k, "c", 0)
	k.Method("pb", func() { b.Write(a.Read() + 1) }, a.Changed())
	k.Method("pc", func() { c.Write(b.Read() * 2) }, b.Changed())
	k.Schedule(10, func() { a.Write(5) })
	if err := k.Run(20); err != nil {
		t.Fatal(err)
	}
	if b.Read() != 6 || c.Read() != 12 {
		t.Errorf("b=%d c=%d, want 6 12", b.Read(), c.Read())
	}
}

func TestMethodRunsAtInitialization(t *testing.T) {
	k := NewKernel()
	a := NewSignal(k, "a", 3)
	b := NewSignal(k, "b", 0)
	k.Method("p", func() { b.Write(a.Read() + 1) }, a.Changed())
	if err := k.Run(1); err != nil {
		t.Fatal(err)
	}
	if b.Read() != 4 {
		t.Errorf("b=%d, want 4 (process must run at init)", b.Read())
	}
}

func TestMethodNoInit(t *testing.T) {
	k := NewKernel()
	a := NewSignal(k, "a", 3)
	runs := 0
	k.MethodNoInit("p", func() { runs++ }, a.Changed())
	if err := k.Run(1); err != nil {
		t.Fatal(err)
	}
	if runs != 0 {
		t.Errorf("no-init process ran %d times at init", runs)
	}
	k.Schedule(1, func() { a.Write(9) })
	if err := k.Run(10); err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Errorf("runs=%d, want 1", runs)
	}
}

func TestCombinationalLoopDetected(t *testing.T) {
	k := NewKernel()
	a := NewSignal(k, "a", 0)
	// A process that re-triggers itself forever: a <- a+1 sensitive to a.
	k.Method("osc", func() { a.Write(a.Read() + 1) }, a.Changed())
	err := k.Run(10)
	if err == nil {
		t.Fatal("expected combinational-loop error")
	}
}

func TestStop(t *testing.T) {
	k := NewKernel()
	count := 0
	var again func()
	again = func() {
		count++
		if count == 5 {
			k.Stop()
		}
		k.Schedule(10, again)
	}
	k.Schedule(10, again)
	if err := k.Run(1000); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Errorf("count=%d, want 5", count)
	}
	if !k.Stopped() {
		t.Error("kernel must report stopped")
	}
}

func TestRunAfterStopResumes(t *testing.T) {
	// Regression: Stop used to latch forever, so a subsequent Run silently
	// no-oped. Run must clear the stop flag on entry and resume.
	k := NewKernel()
	count := 0
	var again func()
	again = func() {
		count++
		if count == 5 {
			k.Stop()
		}
		if count < 12 {
			k.Schedule(10, again)
		}
	}
	k.Schedule(10, again)
	if err := k.Run(1000); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("first run: count=%d, want 5", count)
	}
	if !k.Stopped() {
		t.Fatal("kernel must report stopped after Stop")
	}
	if err := k.Run(1000); err != nil {
		t.Fatal(err)
	}
	if count != 12 {
		t.Errorf("second run must resume: count=%d, want 12", count)
	}
	if k.Stopped() {
		t.Error("stop flag must be cleared by re-entering Run")
	}
}

// recordingObserver is a typed CycleObserver for tests.
type recordingObserver struct {
	times []Time
}

func (r *recordingObserver) EndOfTimestep(t Time) { r.times = append(r.times, t) }

func TestTypedObserverMatchesCallback(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k, "s", 0)
	obs := &recordingObserver{}
	var cb []Time
	k.Observe(obs)
	k.AtEndOfTimestep(func(tm Time) { cb = append(cb, tm) })
	k.Schedule(10, func() { s.Write(1) })
	k.Schedule(20, func() { s.Write(2) })
	if err := k.Run(20); err != nil {
		t.Fatal(err)
	}
	if len(obs.times) == 0 {
		t.Fatal("typed observer never fired")
	}
	if len(obs.times) != len(cb) {
		t.Fatalf("observer saw %d timesteps, callback %d", len(obs.times), len(cb))
	}
	for i := range cb {
		if obs.times[i] != cb[i] {
			t.Fatalf("observer/callback diverge at %d: %v vs %v", i, obs.times, cb)
		}
	}
}

func TestDeterminismSameSeedSameTrace(t *testing.T) {
	run := func() []int {
		k := NewKernel()
		a := NewSignal(k, "a", 0)
		var trace []int
		for i := 0; i < 5; i++ {
			i := i
			k.Method("p", func() { trace = append(trace, i*10+a.Read()) }, a.Changed())
		}
		k.Schedule(10, func() { a.Write(1) })
		k.Schedule(20, func() { a.Write(2) })
		if err := k.Run(30); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	t1, t2 := run(), run()
	if len(t1) != len(t2) {
		t.Fatalf("nondeterministic lengths %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, t1, t2)
		}
	}
}

func TestAtEndOfTimestepFiresOncePerTime(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k, "s", 0)
	var times []Time
	k.AtEndOfTimestep(func(tm Time) { times = append(times, tm) })
	k.Schedule(10, func() { s.Write(1) })
	k.Schedule(10, func() { s.Write(2) }) // same time, multiple deltas
	k.Schedule(20, func() { s.Write(3) })
	if err := k.Run(20); err != nil {
		t.Fatal(err)
	}
	// Expect probes at t=0 (init), t=10, t=20 — exactly once each.
	seen := map[Time]int{}
	for _, tm := range times {
		seen[tm]++
	}
	for tm, n := range seen {
		if n != 1 {
			t.Errorf("timestep %v probed %d times", tm, n)
		}
	}
	if seen[10] != 1 || seen[20] != 1 {
		t.Errorf("missing probes: %v", times)
	}
}

func TestLateMethodRegistrationRuns(t *testing.T) {
	k := NewKernel()
	if err := k.Run(5); err != nil {
		t.Fatal(err)
	}
	ran := false
	s := NewSignal(k, "s", 0)
	k.Method("late", func() { ran = true }, s.Changed())
	if err := k.Run(10); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("late-registered method must run once")
	}
}

func TestSignalSetInitDoesNotTrigger(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k, "s", 0)
	fired := 0
	s.Watch(func(_, _ int) { fired++ })
	s.SetInit(42)
	if err := k.Run(10); err != nil {
		t.Fatal(err)
	}
	if s.Read() != 42 {
		t.Errorf("value=%d, want 42", s.Read())
	}
	if fired != 0 {
		t.Errorf("SetInit fired %d watch callbacks, want 0", fired)
	}
}

func TestMultipleWatchersAllFire(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k, "s", 0)
	var order []int
	s.Watch(func(_, _ int) { order = append(order, 1) })
	s.Watch(func(_, _ int) { order = append(order, 2) })
	k.Schedule(5, func() { s.Write(7) })
	if err := k.Run(10); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Errorf("watcher order=%v, want [1 2]", order)
	}
}

func TestScheduleFromWithinEvent(t *testing.T) {
	k := NewKernel()
	var times []Time
	k.Schedule(10, func() {
		times = append(times, k.Now())
		k.Schedule(5, func() { times = append(times, k.Now()) })
		k.Schedule(0, func() { times = append(times, k.Now()) })
	})
	if err := k.Run(30); err != nil {
		t.Fatal(err)
	}
	if len(times) != 3 {
		t.Fatalf("times=%v", times)
	}
	if times[0] != 10 || times[1] != 10 || times[2] != 15 {
		t.Errorf("times=%v, want [10 10 15]", times)
	}
}

func TestNegedgeOnlyOnFall(t *testing.T) {
	k := NewKernel()
	b := NewBool(k, "b", false)
	falls := 0
	k.MethodNoInit("f", func() { falls++ }, Negedge(b))
	k.Schedule(10, func() { b.Write(true) })
	k.Schedule(20, func() { b.Write(false) })
	k.Schedule(30, func() { b.Write(true) })
	if err := k.Run(40); err != nil {
		t.Fatal(err)
	}
	if falls != 1 {
		t.Errorf("falls=%d, want 1", falls)
	}
}

func TestKernelDeltaCountAdvances(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k, "s", 0)
	k.Schedule(1, func() { s.Write(1) })
	before := k.DeltaCycles()
	if err := k.Run(5); err != nil {
		t.Fatal(err)
	}
	if k.DeltaCycles() <= before {
		t.Error("delta count must advance")
	}
}
