package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"ahbpower/internal/amba/ahb"
)

// SaveScript serializes a master script to a plain-text trace so generated
// workloads can be recorded once and replayed deterministically (or
// hand-edited). Format, one record per line:
//
//	SEQ <idleAfter>          starts a sequence
//	W <addr> <data> [...]    write burst (hex addr, hex data beats)
//	R <addr> <beats>         read burst
//	I <cycles>               idle op
func SaveScript(w io.Writer, seqs []ahb.Sequence) error {
	bw := bufio.NewWriter(w)
	for _, s := range seqs {
		if _, err := fmt.Fprintf(bw, "SEQ %d\n", s.IdleAfter); err != nil {
			return err
		}
		for _, op := range s.Ops {
			switch op.Kind {
			case ahb.OpWrite:
				if _, err := fmt.Fprintf(bw, "W %#x", op.Addr); err != nil {
					return err
				}
				for _, d := range op.Data {
					if _, err := fmt.Fprintf(bw, " %#x", d); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintln(bw); err != nil {
					return err
				}
			case ahb.OpRead:
				beats := op.Beats
				if beats <= 0 {
					beats = 1
				}
				if _, err := fmt.Fprintf(bw, "R %#x %d\n", op.Addr, beats); err != nil {
					return err
				}
			case ahb.OpIdle:
				if _, err := fmt.Fprintf(bw, "I %d\n", op.IdleCycles); err != nil {
					return err
				}
			default:
				return fmt.Errorf("workload: cannot serialize op kind %d", op.Kind)
			}
		}
	}
	return bw.Flush()
}

// LoadScript parses a trace written by SaveScript. Blank lines and lines
// starting with '#' are ignored.
func LoadScript(r io.Reader) ([]ahb.Sequence, error) {
	var seqs []ahb.Sequence
	var cur *ahb.Sequence
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		fail := func(msg string) error {
			return fmt.Errorf("workload: line %d: %s: %q", lineNo, msg, line)
		}
		switch fields[0] {
		case "SEQ":
			if len(fields) != 2 {
				return nil, fail("SEQ wants one argument")
			}
			idle, err := strconv.Atoi(fields[1])
			if err != nil || idle < 0 {
				return nil, fail("bad idle count")
			}
			seqs = append(seqs, ahb.Sequence{IdleAfter: idle})
			cur = &seqs[len(seqs)-1]
		case "W":
			if cur == nil {
				return nil, fail("op before SEQ")
			}
			if len(fields) < 3 {
				return nil, fail("W wants addr and at least one beat")
			}
			addr, err := parseHex32(fields[1])
			if err != nil {
				return nil, fail("bad address")
			}
			var data []uint32
			for _, f := range fields[2:] {
				d, err := parseHex32(f)
				if err != nil {
					return nil, fail("bad data")
				}
				data = append(data, d)
			}
			cur.Ops = append(cur.Ops, ahb.Op{Kind: ahb.OpWrite, Addr: addr, Data: data, Size: ahb.Size32})
		case "R":
			if cur == nil {
				return nil, fail("op before SEQ")
			}
			if len(fields) != 3 {
				return nil, fail("R wants addr and beats")
			}
			addr, err := parseHex32(fields[1])
			if err != nil {
				return nil, fail("bad address")
			}
			beats, err := strconv.Atoi(fields[2])
			if err != nil || beats < 1 {
				return nil, fail("bad beat count")
			}
			cur.Ops = append(cur.Ops, ahb.Op{Kind: ahb.OpRead, Addr: addr, Beats: beats, Size: ahb.Size32})
		case "I":
			if cur == nil {
				return nil, fail("op before SEQ")
			}
			if len(fields) != 2 {
				return nil, fail("I wants a cycle count")
			}
			cycles, err := strconv.Atoi(fields[1])
			if err != nil || cycles < 0 {
				return nil, fail("bad cycle count")
			}
			cur.Ops = append(cur.Ops, ahb.Op{Kind: ahb.OpIdle, IdleCycles: cycles})
		default:
			return nil, fail("unknown record")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return seqs, nil
}

func parseHex32(s string) (uint32, error) {
	v, err := strconv.ParseUint(strings.TrimPrefix(s, "0x"), 16, 32)
	return uint32(v), err
}
