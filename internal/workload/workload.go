// Package workload generates the bus traffic of the paper's testbench:
// masters executing "WRITE-READ non-interruptible sequences and IDLE
// commands, for a random number of times", plus generic address/data
// pattern generators for design-space exploration.
package workload

import (
	"fmt"
	"math/rand"

	"ahbpower/internal/amba/ahb"
)

// Pattern selects how write data is generated; data activity directly
// drives the Hamming-distance terms of the energy macromodels.
type Pattern uint8

// Data patterns.
const (
	// PatternRandom draws uniform random words (average HD = w/2).
	PatternRandom Pattern = iota
	// PatternLowActivity flips a small random number of bits per step
	// (average HD ≈ 2), modeling correlated data streams.
	PatternLowActivity
	// PatternCounter produces an incrementing counter (average HD ≈ 2).
	PatternCounter
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case PatternRandom:
		return "random"
	case PatternLowActivity:
		return "low-activity"
	case PatternCounter:
		return "counter"
	}
	return fmt.Sprintf("pattern(%d)", uint8(p))
}

// ParsePattern parses a pattern name as produced by Pattern.String. The
// empty string parses as PatternRandom, the paper's default.
func ParsePattern(s string) (Pattern, error) {
	switch s {
	case "", "random":
		return PatternRandom, nil
	case "low-activity":
		return PatternLowActivity, nil
	case "counter":
		return PatternCounter, nil
	}
	return PatternRandom, fmt.Errorf("workload: unknown pattern %q (want random, low-activity or counter)", s)
}

// Config parameterizes a master's traffic.
type Config struct {
	Seed         int64
	NumSequences int
	// Each sequence contains PairsMin..PairsMax WRITE-READ pairs.
	PairsMin, PairsMax int
	// After each sequence the master idles (bus released) for
	// IdleMin..IdleMax cycles.
	IdleMin, IdleMax int
	// Addresses are drawn word-aligned from [AddrBase, AddrBase+AddrSize).
	AddrBase, AddrSize uint32
	// LocalityWindow, when nonzero, confines each sequence to one
	// LocalityWindow-sized aligned window inside the address range —
	// modeling a master working on a buffer in one slave, so that the
	// slave mux re-selects per sequence rather than per transfer.
	LocalityWindow uint32
	Pattern        Pattern
	// BurstBeats > 1 turns each WRITE/READ into a fixed burst of that
	// length (1, 4, 8 or 16). The paper's testbench uses single transfers.
	BurstBeats int
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.NumSequences < 1 {
		return fmt.Errorf("workload: NumSequences=%d, want >=1", c.NumSequences)
	}
	if c.PairsMin < 1 || c.PairsMax < c.PairsMin {
		return fmt.Errorf("workload: bad pairs range [%d,%d]", c.PairsMin, c.PairsMax)
	}
	if c.IdleMin < 0 || c.IdleMax < c.IdleMin {
		return fmt.Errorf("workload: bad idle range [%d,%d]", c.IdleMin, c.IdleMax)
	}
	if c.AddrSize < 4 {
		return fmt.Errorf("workload: AddrSize=%d, want >=4", c.AddrSize)
	}
	switch c.BurstBeats {
	case 0, 1, 4, 8, 16:
	default:
		return fmt.Errorf("workload: BurstBeats=%d, want 1/4/8/16", c.BurstBeats)
	}
	return nil
}

// PaperTestbench returns the configuration of the paper's testbench master
// m: single-word WRITE-READ pairs over a 3-slave address map, with
// sequence lengths and idle gaps chosen to reproduce the Table 1
// instruction mix (long data sequences, idle-handover gaps of a dozen or
// so cycles).
func PaperTestbench(m int, numSequences int) Config {
	return Config{
		Seed:           0x5EED + int64(m)*7919,
		NumSequences:   numSequences,
		PairsMin:       15,
		PairsMax:       35,
		IdleMin:        35,
		IdleMax:        70,
		AddrBase:       0,
		AddrSize:       3 * 0x1000, // spans all three slaves
		LocalityWindow: 0x1000,     // each sequence works within one slave
		Pattern:        PatternRandom,
		BurstBeats:     1,
	}
}

// Generate produces the master script described by the configuration.
func Generate(cfg Config) ([]ahb.Sequence, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	beats := cfg.BurstBeats
	if beats == 0 {
		beats = 1
	}
	gen := newDataGen(cfg.Pattern, rng)
	seqs := make([]ahb.Sequence, 0, cfg.NumSequences)
	for s := 0; s < cfg.NumSequences; s++ {
		window := cfg
		if cfg.LocalityWindow > 0 && cfg.LocalityWindow < cfg.AddrSize {
			nWin := cfg.AddrSize / cfg.LocalityWindow
			w := uint32(rng.Int63n(int64(nWin)))
			window.AddrBase = cfg.AddrBase + w*cfg.LocalityWindow
			window.AddrSize = cfg.LocalityWindow
		}
		pairs := cfg.PairsMin + rng.Intn(cfg.PairsMax-cfg.PairsMin+1)
		ops := make([]ahb.Op, 0, 2*pairs)
		for p := 0; p < pairs; p++ {
			addr := window.randAddr(rng, beats)
			data := make([]uint32, beats)
			for b := range data {
				data[b] = gen.next()
			}
			ops = append(ops,
				ahb.Op{Kind: ahb.OpWrite, Addr: addr, Data: data, Size: ahb.Size32},
				ahb.Op{Kind: ahb.OpRead, Addr: addr, Beats: beats, Size: ahb.Size32},
			)
		}
		idle := cfg.IdleMin
		if cfg.IdleMax > cfg.IdleMin {
			idle += rng.Intn(cfg.IdleMax - cfg.IdleMin + 1)
		}
		seqs = append(seqs, ahb.Sequence{Ops: ops, IdleAfter: idle})
	}
	return seqs, nil
}

// randAddr draws a word-aligned address such that a burst of the given
// length neither leaves the window nor crosses a 1 KB boundary.
func (c *Config) randAddr(rng *rand.Rand, beats int) uint32 {
	span := uint32(beats) * 4
	for {
		off := uint32(rng.Int63n(int64(c.AddrSize))) &^ 3
		if off+span > c.AddrSize {
			continue
		}
		addr := c.AddrBase + off
		if ahb.CrossesKB(addr, beats, ahb.Size32) {
			continue
		}
		return addr
	}
}

// dataGen produces write data under a pattern.
type dataGen struct {
	pattern Pattern
	rng     *rand.Rand
	state   uint32
}

func newDataGen(p Pattern, rng *rand.Rand) *dataGen {
	return &dataGen{pattern: p, rng: rng, state: rng.Uint32()}
}

func (g *dataGen) next() uint32 {
	switch g.pattern {
	case PatternLowActivity:
		flips := 1 + g.rng.Intn(3)
		for i := 0; i < flips; i++ {
			g.state ^= 1 << uint(g.rng.Intn(32))
		}
		return g.state
	case PatternCounter:
		g.state++
		return g.state
	default:
		g.state = g.rng.Uint32()
		return g.state
	}
}

// TotalBeats returns the number of data beats in a script (both
// directions), for sizing simulations.
func TotalBeats(seqs []ahb.Sequence) int {
	n := 0
	for _, s := range seqs {
		for _, op := range s.Ops {
			switch op.Kind {
			case ahb.OpWrite:
				if len(op.Data) == 0 {
					n++
				} else {
					n += len(op.Data)
				}
			case ahb.OpRead:
				if op.Beats <= 0 {
					n++
				} else {
					n += op.Beats
				}
			}
		}
	}
	return n
}
