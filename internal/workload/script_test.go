package workload

import (
	"strings"
	"testing"

	"ahbpower/internal/amba/ahb"
)

func TestScriptRoundTrip(t *testing.T) {
	seqs, err := Generate(validCfg())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := SaveScript(&sb, seqs); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadScript(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(seqs) {
		t.Fatalf("sequences %d != %d", len(loaded), len(seqs))
	}
	for i := range seqs {
		if loaded[i].IdleAfter != seqs[i].IdleAfter {
			t.Fatalf("seq %d idle differs", i)
		}
		if len(loaded[i].Ops) != len(seqs[i].Ops) {
			t.Fatalf("seq %d op count differs", i)
		}
		for j := range seqs[i].Ops {
			a, b := seqs[i].Ops[j], loaded[i].Ops[j]
			if a.Kind != b.Kind || a.Addr != b.Addr {
				t.Fatalf("seq %d op %d differs: %+v vs %+v", i, j, a, b)
			}
			if a.Kind == ahb.OpWrite {
				for k := range a.Data {
					if a.Data[k] != b.Data[k] {
						t.Fatalf("write data differs at %d.%d.%d", i, j, k)
					}
				}
			}
		}
	}
}

func TestScriptRoundTripWithBurstsAndIdle(t *testing.T) {
	seqs := []ahb.Sequence{{
		Ops: []ahb.Op{
			{Kind: ahb.OpWrite, Addr: 0x40, Data: []uint32{1, 2, 3, 4}},
			{Kind: ahb.OpIdle, IdleCycles: 7},
			{Kind: ahb.OpRead, Addr: 0x40, Beats: 4},
		},
		IdleAfter: 3,
	}}
	var sb strings.Builder
	if err := SaveScript(&sb, seqs); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadScript(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 1 || len(loaded[0].Ops) != 3 {
		t.Fatalf("loaded %+v", loaded)
	}
	if loaded[0].Ops[1].Kind != ahb.OpIdle || loaded[0].Ops[1].IdleCycles != 7 {
		t.Error("idle op lost")
	}
	if loaded[0].Ops[2].Beats != 4 {
		t.Error("read beats lost")
	}
}

func TestLoadScriptCommentsAndBlanks(t *testing.T) {
	src := `
# a comment
SEQ 5

W 0x100 0xdeadbeef
# another
R 0x100 1
`
	seqs, err := LoadScript(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 1 || len(seqs[0].Ops) != 2 || seqs[0].IdleAfter != 5 {
		t.Fatalf("parsed %+v", seqs)
	}
	if seqs[0].Ops[0].Data[0] != 0xdeadbeef {
		t.Errorf("data=%#x", seqs[0].Ops[0].Data[0])
	}
}

func TestLoadScriptErrors(t *testing.T) {
	bad := []string{
		"W 0x10 0x1",       // op before SEQ
		"SEQ x",            // bad idle
		"SEQ 1\nW 0x10",    // missing data
		"SEQ 1\nW zz 0x1",  // bad addr
		"SEQ 1\nR 0x10",    // missing beats
		"SEQ 1\nR 0x10 0",  // zero beats
		"SEQ 1\nI",         // missing cycles
		"SEQ 1\nQ 1",       // unknown record
		"SEQ 1\nW 0x10 gg", // bad data
	}
	for i, src := range bad {
		if _, err := LoadScript(strings.NewReader(src)); err == nil {
			t.Errorf("bad script %d accepted: %q", i, src)
		}
	}
}

func TestSaveScriptRejectsUnknownKind(t *testing.T) {
	seqs := []ahb.Sequence{{Ops: []ahb.Op{{Kind: ahb.OpKind(9)}}}}
	var sb strings.Builder
	if err := SaveScript(&sb, seqs); err == nil {
		t.Error("unknown kind must fail")
	}
}
