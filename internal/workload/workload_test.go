package workload

import (
	"testing"
	"testing/quick"

	"ahbpower/internal/amba/ahb"
	"ahbpower/internal/stats"
)

func validCfg() Config {
	return Config{
		Seed:         1,
		NumSequences: 5,
		PairsMin:     2,
		PairsMax:     6,
		IdleMin:      3,
		IdleMax:      9,
		AddrBase:     0,
		AddrSize:     0x3000,
		Pattern:      PatternRandom,
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mods := []func(*Config){
		func(c *Config) { c.NumSequences = 0 },
		func(c *Config) { c.PairsMin = 0 },
		func(c *Config) { c.PairsMax = 1; c.PairsMin = 3 },
		func(c *Config) { c.IdleMin = -1 },
		func(c *Config) { c.IdleMax = 1; c.IdleMin = 5 },
		func(c *Config) { c.AddrSize = 2 },
		func(c *Config) { c.BurstBeats = 3 },
	}
	for i, mod := range mods {
		c := validCfg()
		mod(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	c := validCfg()
	if err := c.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(validCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(validCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i].Ops) != len(b[i].Ops) || a[i].IdleAfter != b[i].IdleAfter {
			t.Fatalf("sequence %d differs", i)
		}
		for j := range a[i].Ops {
			if a[i].Ops[j].Addr != b[i].Ops[j].Addr {
				t.Fatalf("op %d.%d addr differs", i, j)
			}
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	c1 := validCfg()
	c2 := validCfg()
	c2.Seed = 2
	a, _ := Generate(c1)
	b, _ := Generate(c2)
	same := true
	for i := range a {
		if i >= len(b) || len(a[i].Ops) != len(b[i].Ops) {
			same = false
			break
		}
		for j := range a[i].Ops {
			if a[i].Ops[j].Addr != b[i].Ops[j].Addr {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := validCfg()
	seqs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != cfg.NumSequences {
		t.Fatalf("sequences=%d, want %d", len(seqs), cfg.NumSequences)
	}
	for i, s := range seqs {
		pairs := len(s.Ops) / 2
		if len(s.Ops)%2 != 0 {
			t.Fatalf("sequence %d has odd op count", i)
		}
		if pairs < cfg.PairsMin || pairs > cfg.PairsMax {
			t.Errorf("sequence %d pairs=%d outside [%d,%d]", i, pairs, cfg.PairsMin, cfg.PairsMax)
		}
		if s.IdleAfter < cfg.IdleMin || s.IdleAfter > cfg.IdleMax {
			t.Errorf("sequence %d idle=%d outside range", i, s.IdleAfter)
		}
		for j := 0; j < len(s.Ops); j += 2 {
			w, r := s.Ops[j], s.Ops[j+1]
			if w.Kind != ahb.OpWrite || r.Kind != ahb.OpRead {
				t.Fatalf("sequence %d ops %d must be WRITE,READ pair", i, j)
			}
			if w.Addr != r.Addr {
				t.Errorf("pair addresses differ: %#x vs %#x", w.Addr, r.Addr)
			}
		}
	}
}

func TestGenerateAddressesInWindowAndAligned(t *testing.T) {
	f := func(seed int64, sizeKB uint8) bool {
		cfg := validCfg()
		cfg.Seed = seed
		cfg.AddrBase = 0x2000
		cfg.AddrSize = uint32(sizeKB%8+1) * 1024
		seqs, err := Generate(cfg)
		if err != nil {
			return false
		}
		for _, s := range seqs {
			for _, op := range s.Ops {
				if op.Addr%4 != 0 {
					return false
				}
				if op.Addr < cfg.AddrBase || op.Addr >= cfg.AddrBase+cfg.AddrSize {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestGenerateBurstsAvoidKBCrossing(t *testing.T) {
	cfg := validCfg()
	cfg.BurstBeats = 16
	cfg.AddrSize = 0x4000
	seqs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range seqs {
		for _, op := range s.Ops {
			if ahb.CrossesKB(op.Addr, 16, ahb.Size32) {
				t.Fatalf("burst at %#x crosses 1KB", op.Addr)
			}
			if op.Kind == ahb.OpWrite && len(op.Data) != 16 {
				t.Fatalf("write burst has %d beats", len(op.Data))
			}
		}
	}
}

func TestDataPatternsActivity(t *testing.T) {
	activity := func(p Pattern) float64 {
		cfg := validCfg()
		cfg.Pattern = p
		cfg.NumSequences = 20
		cfg.PairsMin, cfg.PairsMax = 50, 50
		seqs, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ba := stats.NewBitActivity(32)
		for _, s := range seqs {
			for _, op := range s.Ops {
				if op.Kind == ahb.OpWrite {
					ba.Store(uint64(op.Data[0]))
				}
			}
		}
		return ba.SwitchingActivity()
	}
	rnd := activity(PatternRandom)
	low := activity(PatternLowActivity)
	cnt := activity(PatternCounter)
	if rnd < 12 || rnd > 20 {
		t.Errorf("random activity=%v, want ~16", rnd)
	}
	if low >= rnd/2 {
		t.Errorf("low-activity %v must be well below random %v", low, rnd)
	}
	if cnt >= rnd/2 {
		t.Errorf("counter %v must be well below random %v", cnt, rnd)
	}
}

func TestPatternString(t *testing.T) {
	if PatternRandom.String() != "random" || PatternLowActivity.String() != "low-activity" ||
		PatternCounter.String() != "counter" {
		t.Error("pattern names")
	}
	if Pattern(9).String() == "" {
		t.Error("unknown pattern must format")
	}
}

func TestPaperTestbenchConfig(t *testing.T) {
	c := PaperTestbench(0, 10)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.BurstBeats != 1 {
		t.Error("paper testbench uses single transfers")
	}
	d := PaperTestbench(1, 10)
	if c.Seed == d.Seed {
		t.Error("masters must get distinct seeds")
	}
}

func TestTotalBeats(t *testing.T) {
	seqs := []ahb.Sequence{{Ops: []ahb.Op{
		{Kind: ahb.OpWrite, Data: []uint32{1, 2, 3, 4}},
		{Kind: ahb.OpRead, Beats: 4},
		{Kind: ahb.OpWrite},
		{Kind: ahb.OpRead},
		{Kind: ahb.OpIdle, IdleCycles: 5},
	}}}
	if got := TotalBeats(seqs); got != 10 {
		t.Errorf("TotalBeats=%d, want 10", got)
	}
}
