package power

import (
	"encoding/json"
	"fmt"
	"io"
)

// Models bundles the four sub-block macromodels of one bus configuration.
// A Models value is the reusable "power model of the IP" the paper's §2
// motivates: produced once by characterization, serialized alongside the
// core, and loaded by anyone integrating it — no re-characterization.
type Models struct {
	Dec *DecoderModel `json:"decoder"`
	M2S *MuxModel     `json:"m2s"`
	S2M *MuxModel     `json:"s2m"`
	Arb *ArbiterModel `json:"arbiter"`
}

// DefaultModels builds the structural-default models for a bus shape.
func DefaultModels(numMasters, numSlaves, dataWidth int, tech Tech) (*Models, error) {
	if numMasters < 2 {
		numMasters = 2
	}
	if numSlaves < 2 {
		numSlaves = 2
	}
	dec, err := NewDecoderModel(numSlaves, tech)
	if err != nil {
		return nil, err
	}
	m2s, err := NewMuxModel(32+8+dataWidth, numMasters, tech)
	if err != nil {
		return nil, err
	}
	s2m, err := NewMuxModel(dataWidth+3, numSlaves, tech)
	if err != nil {
		return nil, err
	}
	arb, err := NewArbiterModel(numMasters, tech)
	if err != nil {
		return nil, err
	}
	return &Models{Dec: dec, M2S: m2s, S2M: s2m, Arb: arb}, nil
}

// Clone returns a deep copy of the model set. The macromodels carry
// per-instance memoization state that Energy fills in place, so a shared
// Models value must be cloned before being attached to concurrent runs;
// core.Attach does this automatically.
func (m *Models) Clone() *Models {
	c := &Models{}
	if m.Dec != nil {
		d := *m.Dec
		c.Dec = &d
	}
	if m.M2S != nil {
		x := *m.M2S
		c.M2S = &x
	}
	if m.S2M != nil {
		x := *m.S2M
		c.S2M = &x
	}
	if m.Arb != nil {
		a := *m.Arb
		c.Arb = &a
	}
	return c
}

// Validate checks that a loaded model set is complete and plausible.
func (m *Models) Validate() error {
	if m.Dec == nil || m.M2S == nil || m.S2M == nil || m.Arb == nil {
		return fmt.Errorf("power: model set incomplete")
	}
	if m.Dec.NO < 2 || m.Dec.Tech.VDD <= 0 {
		return fmt.Errorf("power: bad decoder model")
	}
	if m.M2S.W < 1 || m.M2S.N < 2 || m.S2M.W < 1 || m.S2M.N < 2 {
		return fmt.Errorf("power: bad mux model dimensions")
	}
	if m.Arb.N < 1 {
		return fmt.Errorf("power: bad arbiter model")
	}
	return nil
}

// modelFile is the on-disk representation with a format version.
type modelFile struct {
	Format int     `json:"format"`
	Models *Models `json:"models"`
}

// currentModelFormat is the serialization version.
const currentModelFormat = 1

// SaveModels writes a model set as JSON.
func SaveModels(w io.Writer, m *Models) error {
	if err := m.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(modelFile{Format: currentModelFormat, Models: m})
}

// LoadModels reads a model set written by SaveModels.
func LoadModels(r io.Reader) (*Models, error) {
	var f modelFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("power: parsing model file: %w", err)
	}
	if f.Format != currentModelFormat {
		return nil, fmt.Errorf("power: unsupported model format %d", f.Format)
	}
	if f.Models == nil {
		return nil, fmt.Errorf("power: model file has no models")
	}
	if err := f.Models.Validate(); err != nil {
		return nil, err
	}
	return f.Models, nil
}
