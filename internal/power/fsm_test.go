package power

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestStateNames(t *testing.T) {
	if Idle.String() != "IDLE" || IdleHO.String() != "IDLE_HO" ||
		Read.String() != "READ" || Write.String() != "WRITE" {
		t.Error("state names must match the paper")
	}
	if State(9).String() != "STATE(9)" {
		t.Error("unknown state formatting")
	}
}

func TestInstructionNames(t *testing.T) {
	cases := []struct {
		in   Instruction
		want string
	}{
		{Instruction{Write, Read}, "WRITE_READ"},
		{Instruction{Read, Write}, "READ_WRITE"},
		{Instruction{IdleHO, IdleHO}, "IDLE_HO_IDLE_HO"},
		{Instruction{Read, IdleHO}, "READ_IDLE_HO"},
		{Instruction{IdleHO, Write}, "IDLE_HO_WRITE"},
		{Instruction{Idle, Idle}, "IDLE_IDLE"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("instruction = %q, want %q", got, c.want)
		}
	}
}

func TestFSMFirstStepEstablishesState(t *testing.T) {
	f := NewFSM()
	_, ok := f.Step(Write, 1e-12)
	if ok {
		t.Error("first step must not execute an instruction")
	}
	if f.Current() != Write {
		t.Errorf("Current=%v, want WRITE", f.Current())
	}
	if f.TotalEnergy() != 1e-12 {
		t.Error("first-cycle energy still counts toward the total")
	}
}

func TestFSMClassifiesTransitions(t *testing.T) {
	f := NewFSM()
	f.Step(Write, 0)
	in, ok := f.Step(Read, 2e-12)
	if !ok || in.String() != "WRITE_READ" {
		t.Fatalf("got %v ok=%v", in, ok)
	}
	in, _ = f.Step(Write, 3e-12)
	if in.String() != "READ_WRITE" {
		t.Fatalf("got %v", in)
	}
	st := f.Stat(Instruction{Write, Read})
	if st.Count != 1 || st.Energy != 2e-12 {
		t.Errorf("WRITE_READ stat = %+v", st)
	}
	if f.Cycles() != 3 {
		t.Errorf("Cycles=%d, want 3", f.Cycles())
	}
}

func TestFSMAverageEnergy(t *testing.T) {
	f := NewFSM()
	f.Step(Write, 0)
	f.Step(Read, 2e-12)
	f.Step(Write, 0)
	f.Step(Read, 4e-12)
	st := f.Stat(Instruction{Write, Read})
	if st.Count != 2 {
		t.Fatalf("Count=%d, want 2", st.Count)
	}
	if math.Abs(st.AverageEnergy()-3e-12) > 1e-24 {
		t.Errorf("AverageEnergy=%g, want 3e-12", st.AverageEnergy())
	}
	var zero InstructionStat
	if zero.AverageEnergy() != 0 {
		t.Error("zero-count average must be 0")
	}
}

func TestFSMEnergyConservation(t *testing.T) {
	// Property: total energy equals the sum over instructions plus the
	// first establishing cycle.
	f := func(seq []uint8) bool {
		fsm := NewFSM()
		first := 0.0
		sum := 0.0
		for i, v := range seq {
			st := State(v % 4)
			e := float64(v) * 1e-13
			if i == 0 {
				first = e
			} else {
				sum += e
			}
			fsm.Step(st, e)
		}
		var agg float64
		for _, s := range fsm.Stats() {
			agg += s.Energy
		}
		return math.Abs(fsm.TotalEnergy()-(first+sum)) < 1e-18 &&
			math.Abs(agg-sum) < 1e-18
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFSMCountConservation(t *testing.T) {
	// Property: instruction executions = cycles - 1.
	f := func(seq []uint8) bool {
		if len(seq) == 0 {
			return true
		}
		fsm := NewFSM()
		for _, v := range seq {
			fsm.Step(State(v%4), 0)
		}
		var n uint64
		for _, s := range fsm.Stats() {
			n += s.Count
		}
		return n == fsm.Cycles()-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFSMStatsSortedByEnergy(t *testing.T) {
	f := NewFSM()
	f.Step(Idle, 0)
	f.Step(Write, 1e-12)
	f.Step(Read, 9e-12)
	f.Step(Write, 4e-12)
	st := f.Stats()
	for i := 1; i < len(st); i++ {
		if st[i].Energy > st[i-1].Energy {
			t.Errorf("stats not sorted: %v", st)
		}
	}
}

func TestPermissibleInstructionsMatchPaper(t *testing.T) {
	ins := PermissibleInstructions()
	if len(ins) != 10 {
		t.Fatalf("len=%d, want 10", len(ins))
	}
	want := map[string]bool{
		"IDLE_IDLE": true, "IDLE_IDLE_HO": true, "IDLE_WRITE": true,
		"IDLE_HO_IDLE_HO": true, "IDLE_HO_IDLE": true, "IDLE_HO_WRITE": true,
		"READ_WRITE": true, "READ_IDLE": true, "READ_IDLE_HO": true,
		"WRITE_READ": true,
	}
	for _, in := range ins {
		if !want[in.String()] {
			t.Errorf("unexpected instruction %v", in)
		}
		delete(want, in.String())
	}
	if len(want) != 0 {
		t.Errorf("missing instructions: %v", want)
	}
}

func TestWriteDOT(t *testing.T) {
	f := NewFSM()
	f.Step(Write, 0)
	f.Step(Read, 2e-12)
	f.Step(Write, 3e-12)
	var sb strings.Builder
	if err := f.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"digraph power_fsm",
		"WRITE -> READ",
		"READ -> WRITE",
		"IDLE [style=dashed]",
		"1 x 2 pJ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTEmptyFSM(t *testing.T) {
	var sb strings.Builder
	if err := NewFSM().WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "digraph") {
		t.Error("empty FSM must still render")
	}
}
