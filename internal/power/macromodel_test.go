package power

import (
	"math"
	"testing"
	"testing/quick"
)

func testTech() Tech { return Tech{VDD: 1.8, CPD: 20e-15, CO: 50e-15} }

func TestDecoderModelMatchesPaperFormula(t *testing.T) {
	tech := testTech()
	m, err := NewDecoderModel(3, tech) // the paper's testbench: 3 slaves
	if err != nil {
		t.Fatal(err)
	}
	if m.NI != 2 {
		t.Fatalf("NI=%d, want 2 for n_O=3", m.NI)
	}
	// E = VDD²/4 (nI·nO·CPD·HD + 2·1·CO)
	for hd := 1; hd <= 2; hd++ {
		want := tech.VDD * tech.VDD / 4 * (2*3*tech.CPD*float64(hd) + 2*tech.CO)
		if got := m.Energy(hd); math.Abs(got-want) > 1e-24 {
			t.Errorf("Energy(%d)=%g, want %g", hd, got, want)
		}
	}
}

func TestDecoderModelZeroHD(t *testing.T) {
	m, err := NewDecoderModel(4, testTech())
	if err != nil {
		t.Fatal(err)
	}
	if m.Energy(0) != 0 {
		t.Error("no input change must cost no energy")
	}
	if m.Energy(-1) != 0 {
		t.Error("negative HD must cost no energy")
	}
}

func TestDecoderModelMonotoneInHD(t *testing.T) {
	m, err := NewDecoderModel(8, testTech())
	if err != nil {
		t.Fatal(err)
	}
	f := func(hd uint8) bool {
		h := int(hd%7) + 1
		return m.Energy(h+1) > m.Energy(h)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecoderModelScalesWithSlaves(t *testing.T) {
	tech := testTech()
	small, _ := NewDecoderModel(2, tech)
	big, _ := NewDecoderModel(16, tech)
	if big.Energy(1) <= small.Energy(1) {
		t.Error("a wider decoder must cost more per transition")
	}
}

func TestDecoderModelRejectsBadSize(t *testing.T) {
	if _, err := NewDecoderModel(1, testTech()); err == nil {
		t.Error("nO=1 must fail")
	}
}

func TestMuxModelLinearity(t *testing.T) {
	m, err := NewMuxModel(32, 3, testTech())
	if err != nil {
		t.Fatal(err)
	}
	e000 := m.Energy(0, 0, 0)
	if e000 != 0 {
		t.Errorf("zero activity energy=%g, want 0", e000)
	}
	// Linearity in each term.
	if math.Abs(m.Energy(4, 0, 0)-2*m.Energy(2, 0, 0)) > 1e-24 {
		t.Error("not linear in HD_IN")
	}
	if math.Abs(m.Energy(0, 4, 0)-2*m.Energy(0, 2, 0)) > 1e-24 {
		t.Error("not linear in HD_SEL")
	}
	if math.Abs(m.Energy(0, 0, 4)-2*m.Energy(0, 0, 2)) > 1e-24 {
		t.Error("not linear in HD_OUT")
	}
	// Additivity.
	sum := m.Energy(3, 0, 0) + m.Energy(0, 2, 0) + m.Energy(0, 0, 5)
	if math.Abs(m.Energy(3, 2, 5)-sum) > 1e-24 {
		t.Error("terms must be additive")
	}
}

func TestMuxModelSelectMoreExpensiveThanData(t *testing.T) {
	// Re-steering the mux touches the whole datapath; a single select-bit
	// toggle must cost more than a single data-bit toggle.
	m, err := NewMuxModel(32, 3, testTech())
	if err != nil {
		t.Fatal(err)
	}
	if m.Energy(0, 1, 0) <= m.Energy(1, 0, 0) {
		t.Error("select toggles must dominate data toggles")
	}
}

func TestMuxModelWidthScaling(t *testing.T) {
	tech := testTech()
	narrow, _ := NewMuxModel(8, 4, tech)
	wide, _ := NewMuxModel(64, 4, tech)
	if wide.Energy(0, 1, 0) <= narrow.Energy(0, 1, 0) {
		t.Error("select cost must grow with datapath width")
	}
}

func TestMuxModelRejectsBadSizes(t *testing.T) {
	if _, err := NewMuxModel(0, 2, testTech()); err == nil {
		t.Error("w=0 must fail")
	}
	if _, err := NewMuxModel(8, 1, testTech()); err == nil {
		t.Error("n=1 must fail")
	}
}

func TestArbiterModelHandoverPremium(t *testing.T) {
	m, err := NewArbiterModel(3, testTech())
	if err != nil {
		t.Fatal(err)
	}
	if m.Energy(1, 2, true, false) <= m.Energy(1, 2, false, false) {
		t.Error("handover must add energy")
	}
	if m.Energy(0, 0, false, false) != 0 {
		t.Error("idle arbiter with no toggles must cost nothing")
	}
}

func TestArbiterModelActiveArbitrationCost(t *testing.T) {
	m, err := NewArbiterModel(3, testTech())
	if err != nil {
		t.Fatal(err)
	}
	quiet := m.Energy(0, 0, false, false)
	active := m.Energy(0, 0, false, true)
	if active <= quiet {
		t.Error("active arbitration must cost energy")
	}
	// The active-arbitration cost dominates line toggles: it is what puts
	// IDLE_HO instructions in the paper's 14.7 pJ band.
	if active <= m.Energy(2, 2, false, false) {
		t.Error("active-arbitration cost must dominate a couple of line toggles")
	}
}

func TestArbiterModelScalesWithMasters(t *testing.T) {
	tech := testTech()
	small, _ := NewArbiterModel(2, tech)
	big, _ := NewArbiterModel(16, tech)
	if big.Energy(1, 0, false, false) <= small.Energy(1, 0, false, false) {
		t.Error("request cost must grow with master count")
	}
	if big.Energy(0, 0, true, false) <= small.Energy(0, 0, true, false) {
		t.Error("handover cost must grow with master count")
	}
	if big.Energy(0, 0, false, true) <= small.Energy(0, 0, false, true) {
		t.Error("active-arbitration cost must grow with master count")
	}
}

func TestArbiterModelRejectsBadSize(t *testing.T) {
	if _, err := NewArbiterModel(0, testTech()); err == nil {
		t.Error("n=0 must fail")
	}
}

func TestRegisterModelClockGating(t *testing.T) {
	m, err := NewRegisterModel(32, testTech())
	if err != nil {
		t.Fatal(err)
	}
	if m.Energy(0, true) <= 0 {
		t.Error("clocked register must pay the clock tree even with no data change")
	}
	if m.Energy(0, false) != 0 {
		t.Error("gated register with no data change must cost nothing")
	}
	if m.Energy(5, true) <= m.Energy(5, false) {
		t.Error("clocked must cost more than gated at equal data activity")
	}
}

func TestRegisterModelRejectsBadWidth(t *testing.T) {
	if _, err := NewRegisterModel(0, testTech()); err == nil {
		t.Error("w=0 must fail")
	}
}

func TestDefaultTechCalibration(t *testing.T) {
	tech := DefaultTech()
	if tech.VDD != 1.8 {
		t.Errorf("VDD=%v, want 1.8", tech.VDD)
	}
	if tech.CPD <= 0 || tech.CO <= 0 {
		t.Error("capacitances must be positive")
	}
	if got := tech.EnergyPerCap(1e-12); math.Abs(got-0.81e-12) > 1e-18 {
		t.Errorf("EnergyPerCap(1pF)=%g, want 0.81pJ", got)
	}
}

func TestDecoderModelFittedOverride(t *testing.T) {
	tech := testTech()
	m, err := NewDecoderModel(4, tech)
	if err != nil {
		t.Fatal(err)
	}
	formula := m.Energy(2)
	m.CHD = 10e-15
	m.CEvent = 5e-15
	want := tech.EnergyPerCap(10e-15*2 + 5e-15)
	if got := m.Energy(2); math.Abs(got-want) > 1e-24 {
		t.Errorf("fitted Energy=%g, want %g", got, want)
	}
	if m.Energy(2) == formula {
		t.Error("override must change the result")
	}
	if m.Energy(0) != 0 {
		t.Error("zero HD still costs nothing")
	}
}
