package power

import (
	"strings"
	"testing"
)

func TestDefaultModelsShape(t *testing.T) {
	m, err := DefaultModels(3, 3, 32, testTech())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.M2S.W != 32+8+32 || m.M2S.N != 3 {
		t.Errorf("M2S shape w=%d n=%d", m.M2S.W, m.M2S.N)
	}
	if m.S2M.W != 35 || m.S2M.N != 3 {
		t.Errorf("S2M shape w=%d n=%d", m.S2M.W, m.S2M.N)
	}
	if m.Dec.NO != 3 || m.Arb.N != 3 {
		t.Errorf("dec NO=%d arb N=%d", m.Dec.NO, m.Arb.N)
	}
}

func TestDefaultModelsClampsSmallSystems(t *testing.T) {
	m, err := DefaultModels(1, 1, 32, testTech())
	if err != nil {
		t.Fatal(err)
	}
	if m.M2S.N < 2 || m.Dec.NO < 2 {
		t.Error("single-device systems must clamp model dimensions to 2")
	}
}

func TestModelsSaveLoadRoundTrip(t *testing.T) {
	m, err := DefaultModels(3, 3, 32, testTech())
	if err != nil {
		t.Fatal(err)
	}
	m.Dec.CHD = 123e-15
	m.Dec.CEvent = 45e-15
	m.M2S.CIn = 999e-15
	var sb strings.Builder
	if err := SaveModels(&sb, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModels(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Dec.CHD != m.Dec.CHD || loaded.Dec.CEvent != m.Dec.CEvent {
		t.Error("fitted decoder coefficients lost")
	}
	if loaded.M2S.CIn != m.M2S.CIn || loaded.M2S.W != m.M2S.W {
		t.Error("mux coefficients lost")
	}
	if loaded.Arb.CActive != m.Arb.CActive {
		t.Error("arbiter coefficients lost")
	}
	// Energies computed from the loaded models must match exactly.
	if loaded.Dec.Energy(2) != m.Dec.Energy(2) {
		t.Error("decoder energy differs after round trip")
	}
	if loaded.M2S.Energy(3, 1, 2) != m.M2S.Energy(3, 1, 2) {
		t.Error("mux energy differs after round trip")
	}
}

func TestLoadModelsRejectsGarbage(t *testing.T) {
	if _, err := LoadModels(strings.NewReader("not json")); err == nil {
		t.Error("garbage must fail")
	}
	if _, err := LoadModels(strings.NewReader(`{"format":99,"models":{}}`)); err == nil {
		t.Error("unknown format must fail")
	}
	if _, err := LoadModels(strings.NewReader(`{"format":1}`)); err == nil {
		t.Error("missing models must fail")
	}
	if _, err := LoadModels(strings.NewReader(`{"format":1,"models":{}}`)); err == nil {
		t.Error("incomplete models must fail")
	}
}

func TestSaveModelsValidates(t *testing.T) {
	var sb strings.Builder
	if err := SaveModels(&sb, &Models{}); err == nil {
		t.Error("incomplete model set must not serialize")
	}
}
