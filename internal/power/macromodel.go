package power

import (
	"fmt"
	"math"

	"ahbpower/internal/stats"
)

// DecoderModel is the paper's closed-form dynamic-energy macromodel for a
// parametric one-hot address decoder:
//
//	E_DEC = (VDD²/4) · (n_I · n_O · C_PD · HD_IN + 2 · HD_OUT · C_O)
//
// where n_O is the number of outputs (slaves), n_I the first integer
// greater than log2(n_O−1), HD_IN the Hamming distance between two
// consecutive inputs, and HD_OUT is 1 when HD_IN ≥ 1 (a one-hot decoder
// moves exactly two output lines whenever its input changes).
type DecoderModel struct {
	NO   int // number of outputs (slaves on the bus)
	NI   int // input width, derived from NO
	Tech Tech
	// CHD and CEvent, when positive, replace the closed-form coefficients
	// with characterized ones (switched capacitance per unit HD_IN and per
	// input-change event) — the result of a gate-level fit.
	CHD    float64 `json:",omitempty"`
	CEvent float64 `json:",omitempty"`

	// lut memoizes Energy for every input Hamming distance; each entry is
	// produced by the exact formula in energyCold, so a memoized lookup is
	// bit-identical to a cold evaluation. The coefficient snapshot detects
	// post-construction refits (internal/charact writes CHD/CEvent/Tech
	// directly) and rebuilds the table lazily.
	lut     [maxHD + 1]float64
	lutSnap decoderCoef
	lutOK   bool
}

// maxHD is the largest Hamming distance the memo tables cover: bus values
// are at most 64 bits wide, and the mux input term sums at most two 32-bit
// buses plus the packed control word.
const maxHD = 127

// decoderCoef snapshots every value Energy depends on, as bit patterns:
// the per-call refit check is then a handful of integer compares. A
// coefficient rewritten to a bit-identical value is treated as unchanged,
// which is exact — the rebuilt table would be identical.
type decoderCoef struct {
	no, ni      int
	tech        techBits
	chd, cevent uint64
}

// techBits is a Tech snapshot as bit patterns, comparable word-wise.
type techBits struct {
	vdd, cpd, co uint64
}

func (t Tech) bits() techBits {
	return techBits{
		vdd: math.Float64bits(t.VDD),
		cpd: math.Float64bits(t.CPD),
		co:  math.Float64bits(t.CO),
	}
}

func (m *DecoderModel) coef() decoderCoef {
	return decoderCoef{
		no: m.NO, ni: m.NI, tech: m.Tech.bits(),
		chd:    math.Float64bits(m.CHD),
		cevent: math.Float64bits(m.CEvent),
	}
}

// NewDecoderModel builds the model for a decoder with nO outputs.
func NewDecoderModel(nO int, tech Tech) (*DecoderModel, error) {
	if nO < 2 {
		return nil, fmt.Errorf("power: decoder model needs >=2 outputs, got %d", nO)
	}
	return &DecoderModel{NO: nO, NI: stats.PaperNI(nO), Tech: tech}, nil
}

// Energy returns the dynamic energy for one input transition with the
// given input Hamming distance. Characterized coefficients (CHD/CEvent)
// take precedence over the closed form when set. Results are memoized per
// Hamming distance; a memoized value is bit-identical to a cold
// evaluation because the table is filled by the same formula.
func (m *DecoderModel) Energy(hdIn int) float64 {
	if hdIn <= 0 {
		return 0
	}
	if hdIn > maxHD {
		return m.energyCold(hdIn)
	}
	if snap := m.coef(); !m.lutOK || m.lutSnap != snap {
		for hd := range m.lut {
			m.lut[hd] = m.energyCold(hd)
		}
		m.lutSnap = snap
		m.lutOK = true
	}
	return m.lut[hdIn]
}

// energyCold is the unmemoized closed-form evaluation.
func (m *DecoderModel) energyCold(hdIn int) float64 {
	if hdIn <= 0 {
		return 0
	}
	if m.CHD > 0 {
		return m.Tech.EnergyPerCap(m.CHD*float64(hdIn) + m.CEvent)
	}
	hdOut := 1.0
	c := float64(m.NI)*float64(m.NO)*m.Tech.CPD*float64(hdIn) + 2*hdOut*m.Tech.CO
	return m.Tech.EnergyPerCap(c)
}

// MuxModel is the dynamic-energy macromodel of a w-bit n:1 AND-OR
// multiplexer, the paper's E_MUX = f(w, n, HD_IN, HD_SEL). The concrete
// form used here is linear in the three activity terms:
//
//	E_MUX = (VDD²/4) · (C_in·HD_IN + C_sel·HD_SEL + C_out·HD_OUT)
//
// with structural default coefficients derived from the AND-OR topology;
// internal/charact can refit them against a gate-level netlist (the role
// SIS plays in the paper).
type MuxModel struct {
	W    int // data width in bits
	N    int // number of inputs
	Tech Tech

	// Switched capacitance per unit Hamming distance. Zero values are
	// replaced by structural defaults in NewMuxModel.
	CIn  float64 // per toggling data-input bit
	CSel float64 // per toggling select bit
	COut float64 // per toggling output bit
	// CClkCycle is the switched capacitance charged every clock cycle for
	// the mux's pipeline/select registers and bus keepers — the part of
	// the datapath a clock-gating controller can switch off while the bus
	// idles (the run-time power-management extension of §4).
	CClkCycle float64

	// cache is a direct-mapped memo over (HD_IN, HD_SEL, HD_OUT) triples:
	// bus traffic repeats a small set of activity patterns (idle cycles
	// are all zeros, bursts repeat stride-dependent distances), so the
	// same triples recur for thousands of cycles. Entries are filled by
	// the exact formula in energyCold, making hits bit-identical to cold
	// evaluations. The coefficient snapshot invalidates the cache when
	// internal/charact refits CIn/CSel/COut in place.
	cache     [muxCacheSize]muxCacheEntry
	cacheSnap muxCoef
	cacheOK   bool
	clkE      float64 // memoized ClockEnergy for cacheSnap
}

// muxCacheSize is the direct-mapped memo size; must be a power of two.
const muxCacheSize = 512

// muxCacheEntry is one memo slot; key < 0 marks an empty slot.
type muxCacheEntry struct {
	key int32
	e   float64
}

// muxCoef snapshots every value Energy depends on, as bit patterns (see
// decoderCoef).
type muxCoef struct {
	tech                  techBits
	cin, csel, cout, cclk uint64
}

// NewMuxModel builds a mux macromodel with structural default
// coefficients:
//
//   - a data-input toggle switches its input net and, with probability 1/n,
//     its AND mask and part of the OR tree: C_in = C_PD·(1 + depth/n);
//   - a select toggle re-steers the one-hot decode (2 lines × n_I nodes)
//     and re-masks on average w/2 internal AND nodes; the resulting output
//     transitions are charged separately through the C_out·HD_OUT term:
//     C_sel = C_PD·(2·n_I(n) + w/2);
//   - every output toggle drives a bus node: C_out = C_O.
//
// depth is the OR-tree depth ceil(log2 n).
func NewMuxModel(w, n int, tech Tech) (*MuxModel, error) {
	if w < 1 || n < 2 {
		return nil, fmt.Errorf("power: mux model needs w>=1 n>=2, got w=%d n=%d", w, n)
	}
	depth := float64(stats.CeilLog2(n))
	ni := float64(stats.PaperNI(n))
	return &MuxModel{
		W:         w,
		N:         n,
		Tech:      tech,
		CIn:       tech.CPD * (1 + depth/float64(n)),
		CSel:      tech.CPD * (2*ni + float64(w)/2),
		COut:      tech.CO,
		CClkCycle: tech.CPD * 0.05 * float64(w),
	}, nil
}

func (m *MuxModel) muxCoef() muxCoef {
	return muxCoef{
		tech: m.Tech.bits(),
		cin:  math.Float64bits(m.CIn),
		csel: math.Float64bits(m.CSel),
		cout: math.Float64bits(m.COut),
		cclk: math.Float64bits(m.CClkCycle),
	}
}

// revalidate resets the memo when the coefficients changed since it was
// filled; it returns false when any Energy argument is outside the memo
// range.
func (m *MuxModel) revalidate(hdIn, hdSel, hdOut int) bool {
	if snap := m.muxCoef(); !m.cacheOK || m.cacheSnap != snap {
		for i := range m.cache {
			m.cache[i].key = -1
		}
		m.cacheSnap = snap
		m.clkE = m.Tech.EnergyPerCap(m.CClkCycle)
		m.cacheOK = true
	}
	return hdIn >= 0 && hdSel >= 0 && hdOut >= 0 &&
		hdIn <= maxHD && hdSel <= maxHD && hdOut <= maxHD
}

// Energy returns the dynamic energy for one cycle given the Hamming
// distances of the data inputs, select inputs and outputs. Repeated
// activity triples hit a direct-mapped memo whose entries are computed by
// the exact cold formula, so memoized and cold results are bit-identical.
func (m *MuxModel) Energy(hdIn, hdSel, hdOut int) float64 {
	if !m.revalidate(hdIn, hdSel, hdOut) {
		return m.energyCold(hdIn, hdSel, hdOut)
	}
	key := int32(hdIn) | int32(hdSel)<<7 | int32(hdOut)<<14
	slot := &m.cache[(key^key>>5)&(muxCacheSize-1)]
	if slot.key == key {
		return slot.e
	}
	e := m.energyCold(hdIn, hdSel, hdOut)
	slot.key = key
	slot.e = e
	return e
}

// energyCold is the unmemoized evaluation.
func (m *MuxModel) energyCold(hdIn, hdSel, hdOut int) float64 {
	c := m.CIn*float64(hdIn) + m.CSel*float64(hdSel) + m.COut*float64(hdOut)
	return m.Tech.EnergyPerCap(c)
}

// ClockEnergy returns the per-cycle clocking energy of the mux's registers
// and keepers, paid whether or not data moves (unless gated).
func (m *MuxModel) ClockEnergy() float64 {
	if snap := m.muxCoef(); !m.cacheOK || m.cacheSnap != snap {
		m.revalidate(0, 0, 0)
	}
	return m.clkE
}

// ArbiterModel is the energy-annotated FSM macromodel of the bus arbiter
// (the paper's "simple FSM ... to model the energy requirement of a
// simplified version of the arbiter"). Requests toggle the priority
// network; grant changes toggle the grant register and its output lines,
// plus a fixed re-arbitration term per handover.
type ArbiterModel struct {
	N    int // number of masters
	Tech Tech

	CReq      float64 // switched capacitance per request-line toggle
	CGrant    float64 // per grant-line toggle
	CHandover float64 // extra switched capacitance per grant change event
	// CActive is charged for every cycle the arbiter FSM spends actively
	// re-arbitrating (the bus-handover window between sequences). The
	// paper's Table 1 assigns IDLE_HO instructions energies of the same
	// order as data transfers (14.7 pJ vs 14.7-19.8 pJ): the handover
	// window keeps the priority network, grant register and master-number
	// datapath churning even though no data moves. The default is
	// calibrated to land IDLE_HO instructions in that band.
	CActive float64

	// lut memoizes Energy over (hdReq, hdGrant, handover, arbitrating):
	// request and grant lines span at most 16 masters, so the full domain
	// is small enough to tabulate. Entries come from the exact formula in
	// energyCold; the snapshot invalidates the table on coefficient
	// refits.
	lut     [(arbMaxHD + 1) * (arbMaxHD + 1) * 4]float64
	lutSnap arbCoef
	lutOK   bool
}

// arbMaxHD bounds the tabulated request/grant Hamming distances: a bus
// carries at most 16 masters, so at most 16 request or grant lines can
// toggle. Private-style glitch counts can exceed it and fall back to the
// cold path.
const arbMaxHD = 16

// arbCoef snapshots every value Energy depends on, as bit patterns (see
// decoderCoef).
type arbCoef struct {
	tech                    techBits
	creq, cgrant, cho, cact uint64
}

// NewArbiterModel builds the arbiter macromodel with structural defaults:
// each request line feeds on the order of n/2 priority gates; each grant
// toggle moves a flop and an output line; a handover re-evaluates the
// whole priority chain.
func NewArbiterModel(n int, tech Tech) (*ArbiterModel, error) {
	if n < 1 {
		return nil, fmt.Errorf("power: arbiter model needs >=1 master, got %d", n)
	}
	return &ArbiterModel{
		N:         n,
		Tech:      tech,
		CReq:      tech.CPD * (1 + float64(n)/2),
		CGrant:    tech.CPD + tech.CO,
		CHandover: tech.CPD * float64(n),
		CActive:   tech.CPD*11*float64(n) + tech.CO*6,
	}, nil
}

func (m *ArbiterModel) arbCoef() arbCoef {
	return arbCoef{
		tech:   m.Tech.bits(),
		creq:   math.Float64bits(m.CReq),
		cgrant: math.Float64bits(m.CGrant),
		cho:    math.Float64bits(m.CHandover),
		cact:   math.Float64bits(m.CActive),
	}
}

// Energy returns the dynamic energy of one arbiter cycle: hdReq request
// line toggles, hdGrant grant line toggles, whether a bus handover (grant
// change) occurred, and whether the FSM spent the cycle actively
// re-arbitrating. The full (hdReq, hdGrant, flags) domain is memoized in
// a lookup table filled by the exact cold formula, so memoized results
// are bit-identical to cold ones.
func (m *ArbiterModel) Energy(hdReq, hdGrant int, handover, arbitrating bool) float64 {
	if hdReq < 0 || hdReq > arbMaxHD || hdGrant < 0 || hdGrant > arbMaxHD {
		return m.energyCold(hdReq, hdGrant, handover, arbitrating)
	}
	if snap := m.arbCoef(); !m.lutOK || m.lutSnap != snap {
		i := 0
		for r := 0; r <= arbMaxHD; r++ {
			for g := 0; g <= arbMaxHD; g++ {
				m.lut[i] = m.energyCold(r, g, false, false)
				m.lut[i+1] = m.energyCold(r, g, true, false)
				m.lut[i+2] = m.energyCold(r, g, false, true)
				m.lut[i+3] = m.energyCold(r, g, true, true)
				i += 4
			}
		}
		m.lutSnap = snap
		m.lutOK = true
	}
	idx := (hdReq*(arbMaxHD+1) + hdGrant) * 4
	if handover {
		idx++
	}
	if arbitrating {
		idx += 2
	}
	return m.lut[idx]
}

// energyCold is the unmemoized evaluation.
func (m *ArbiterModel) energyCold(hdReq, hdGrant int, handover, arbitrating bool) float64 {
	c := m.CReq*float64(hdReq) + m.CGrant*float64(hdGrant)
	if handover {
		c += m.CHandover
	}
	if arbitrating {
		c += m.CActive
	}
	return m.Tech.EnergyPerCap(c)
}

// RegisterModel is a macromodel for a w-bit clocked register bank: a fixed
// clock-tree term per active cycle plus a data-dependent term, used for
// the pipeline registers of slaves and for dynamic-power-management
// studies (an optional extension mentioned in the paper's §4).
type RegisterModel struct {
	W    int
	Tech Tech

	CClkPerBit float64 // clock-tree capacitance per bit per cycle
	CDataBit   float64 // per toggling data bit
}

// NewRegisterModel builds a register macromodel with structural defaults.
func NewRegisterModel(w int, tech Tech) (*RegisterModel, error) {
	if w < 1 {
		return nil, fmt.Errorf("power: register model needs w>=1, got %d", w)
	}
	return &RegisterModel{
		W:          w,
		Tech:       tech,
		CClkPerBit: tech.CPD * 0.2,
		CDataBit:   tech.CPD * 2, // master and slave latch nodes
	}, nil
}

// Energy returns the energy of one clocked cycle with hdIn input bits
// toggling; clocked=false models a gated clock (no clock-tree term).
func (m *RegisterModel) Energy(hdIn int, clocked bool) float64 {
	c := m.CDataBit * float64(hdIn)
	if clocked {
		c += m.CClkPerBit * float64(m.W)
	}
	return m.Tech.EnergyPerCap(c)
}
