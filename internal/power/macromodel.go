package power

import (
	"fmt"

	"ahbpower/internal/stats"
)

// DecoderModel is the paper's closed-form dynamic-energy macromodel for a
// parametric one-hot address decoder:
//
//	E_DEC = (VDD²/4) · (n_I · n_O · C_PD · HD_IN + 2 · HD_OUT · C_O)
//
// where n_O is the number of outputs (slaves), n_I the first integer
// greater than log2(n_O−1), HD_IN the Hamming distance between two
// consecutive inputs, and HD_OUT is 1 when HD_IN ≥ 1 (a one-hot decoder
// moves exactly two output lines whenever its input changes).
type DecoderModel struct {
	NO   int // number of outputs (slaves on the bus)
	NI   int // input width, derived from NO
	Tech Tech
	// CHD and CEvent, when positive, replace the closed-form coefficients
	// with characterized ones (switched capacitance per unit HD_IN and per
	// input-change event) — the result of a gate-level fit.
	CHD    float64 `json:",omitempty"`
	CEvent float64 `json:",omitempty"`
}

// NewDecoderModel builds the model for a decoder with nO outputs.
func NewDecoderModel(nO int, tech Tech) (*DecoderModel, error) {
	if nO < 2 {
		return nil, fmt.Errorf("power: decoder model needs >=2 outputs, got %d", nO)
	}
	return &DecoderModel{NO: nO, NI: stats.PaperNI(nO), Tech: tech}, nil
}

// Energy returns the dynamic energy for one input transition with the
// given input Hamming distance. Characterized coefficients (CHD/CEvent)
// take precedence over the closed form when set.
func (m *DecoderModel) Energy(hdIn int) float64 {
	if hdIn <= 0 {
		return 0
	}
	if m.CHD > 0 {
		return m.Tech.EnergyPerCap(m.CHD*float64(hdIn) + m.CEvent)
	}
	hdOut := 1.0
	c := float64(m.NI)*float64(m.NO)*m.Tech.CPD*float64(hdIn) + 2*hdOut*m.Tech.CO
	return m.Tech.EnergyPerCap(c)
}

// MuxModel is the dynamic-energy macromodel of a w-bit n:1 AND-OR
// multiplexer, the paper's E_MUX = f(w, n, HD_IN, HD_SEL). The concrete
// form used here is linear in the three activity terms:
//
//	E_MUX = (VDD²/4) · (C_in·HD_IN + C_sel·HD_SEL + C_out·HD_OUT)
//
// with structural default coefficients derived from the AND-OR topology;
// internal/charact can refit them against a gate-level netlist (the role
// SIS plays in the paper).
type MuxModel struct {
	W    int // data width in bits
	N    int // number of inputs
	Tech Tech

	// Switched capacitance per unit Hamming distance. Zero values are
	// replaced by structural defaults in NewMuxModel.
	CIn  float64 // per toggling data-input bit
	CSel float64 // per toggling select bit
	COut float64 // per toggling output bit
	// CClkCycle is the switched capacitance charged every clock cycle for
	// the mux's pipeline/select registers and bus keepers — the part of
	// the datapath a clock-gating controller can switch off while the bus
	// idles (the run-time power-management extension of §4).
	CClkCycle float64
}

// NewMuxModel builds a mux macromodel with structural default
// coefficients:
//
//   - a data-input toggle switches its input net and, with probability 1/n,
//     its AND mask and part of the OR tree: C_in = C_PD·(1 + depth/n);
//   - a select toggle re-steers the one-hot decode (2 lines × n_I nodes)
//     and re-masks on average w/2 internal AND nodes; the resulting output
//     transitions are charged separately through the C_out·HD_OUT term:
//     C_sel = C_PD·(2·n_I(n) + w/2);
//   - every output toggle drives a bus node: C_out = C_O.
//
// depth is the OR-tree depth ceil(log2 n).
func NewMuxModel(w, n int, tech Tech) (*MuxModel, error) {
	if w < 1 || n < 2 {
		return nil, fmt.Errorf("power: mux model needs w>=1 n>=2, got w=%d n=%d", w, n)
	}
	depth := float64(stats.CeilLog2(n))
	ni := float64(stats.PaperNI(n))
	return &MuxModel{
		W:         w,
		N:         n,
		Tech:      tech,
		CIn:       tech.CPD * (1 + depth/float64(n)),
		CSel:      tech.CPD * (2*ni + float64(w)/2),
		COut:      tech.CO,
		CClkCycle: tech.CPD * 0.05 * float64(w),
	}, nil
}

// Energy returns the dynamic energy for one cycle given the Hamming
// distances of the data inputs, select inputs and outputs.
func (m *MuxModel) Energy(hdIn, hdSel, hdOut int) float64 {
	c := m.CIn*float64(hdIn) + m.CSel*float64(hdSel) + m.COut*float64(hdOut)
	return m.Tech.EnergyPerCap(c)
}

// ClockEnergy returns the per-cycle clocking energy of the mux's registers
// and keepers, paid whether or not data moves (unless gated).
func (m *MuxModel) ClockEnergy() float64 {
	return m.Tech.EnergyPerCap(m.CClkCycle)
}

// ArbiterModel is the energy-annotated FSM macromodel of the bus arbiter
// (the paper's "simple FSM ... to model the energy requirement of a
// simplified version of the arbiter"). Requests toggle the priority
// network; grant changes toggle the grant register and its output lines,
// plus a fixed re-arbitration term per handover.
type ArbiterModel struct {
	N    int // number of masters
	Tech Tech

	CReq      float64 // switched capacitance per request-line toggle
	CGrant    float64 // per grant-line toggle
	CHandover float64 // extra switched capacitance per grant change event
	// CActive is charged for every cycle the arbiter FSM spends actively
	// re-arbitrating (the bus-handover window between sequences). The
	// paper's Table 1 assigns IDLE_HO instructions energies of the same
	// order as data transfers (14.7 pJ vs 14.7-19.8 pJ): the handover
	// window keeps the priority network, grant register and master-number
	// datapath churning even though no data moves. The default is
	// calibrated to land IDLE_HO instructions in that band.
	CActive float64
}

// NewArbiterModel builds the arbiter macromodel with structural defaults:
// each request line feeds on the order of n/2 priority gates; each grant
// toggle moves a flop and an output line; a handover re-evaluates the
// whole priority chain.
func NewArbiterModel(n int, tech Tech) (*ArbiterModel, error) {
	if n < 1 {
		return nil, fmt.Errorf("power: arbiter model needs >=1 master, got %d", n)
	}
	return &ArbiterModel{
		N:         n,
		Tech:      tech,
		CReq:      tech.CPD * (1 + float64(n)/2),
		CGrant:    tech.CPD + tech.CO,
		CHandover: tech.CPD * float64(n),
		CActive:   tech.CPD*11*float64(n) + tech.CO*6,
	}, nil
}

// Energy returns the dynamic energy of one arbiter cycle: hdReq request
// line toggles, hdGrant grant line toggles, whether a bus handover (grant
// change) occurred, and whether the FSM spent the cycle actively
// re-arbitrating.
func (m *ArbiterModel) Energy(hdReq, hdGrant int, handover, arbitrating bool) float64 {
	c := m.CReq*float64(hdReq) + m.CGrant*float64(hdGrant)
	if handover {
		c += m.CHandover
	}
	if arbitrating {
		c += m.CActive
	}
	return m.Tech.EnergyPerCap(c)
}

// RegisterModel is a macromodel for a w-bit clocked register bank: a fixed
// clock-tree term per active cycle plus a data-dependent term, used for
// the pipeline registers of slaves and for dynamic-power-management
// studies (an optional extension mentioned in the paper's §4).
type RegisterModel struct {
	W    int
	Tech Tech

	CClkPerBit float64 // clock-tree capacitance per bit per cycle
	CDataBit   float64 // per toggling data bit
}

// NewRegisterModel builds a register macromodel with structural defaults.
func NewRegisterModel(w int, tech Tech) (*RegisterModel, error) {
	if w < 1 {
		return nil, fmt.Errorf("power: register model needs w>=1, got %d", w)
	}
	return &RegisterModel{
		W:          w,
		Tech:       tech,
		CClkPerBit: tech.CPD * 0.2,
		CDataBit:   tech.CPD * 2, // master and slave latch nodes
	}, nil
}

// Energy returns the energy of one clocked cycle with hdIn input bits
// toggling; clocked=false models a gated clock (no clock-tree term).
func (m *RegisterModel) Energy(hdIn int, clocked bool) float64 {
	c := m.CDataBit * float64(hdIn)
	if clocked {
		c += m.CClkPerBit * float64(m.W)
	}
	return m.Tech.EnergyPerCap(c)
}
