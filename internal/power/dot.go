package power

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteDOT renders the power FSM in Graphviz DOT form: one node per
// activity mode, one edge per observed instruction annotated with its
// execution count and average energy — the executable equivalent of the
// paper's power_fsm sketch in §5.4.
func (f *FSM) WriteDOT(w io.Writer) error {
	var b strings.Builder
	b.WriteString("digraph power_fsm {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=ellipse, fontname=\"Helvetica\"];\n")
	states := []State{Idle, IdleHO, Read, Write}
	seen := map[State]bool{}
	for _, st := range f.Stats() {
		seen[st.Instruction.From] = true
		seen[st.Instruction.To] = true
	}
	for _, s := range states {
		attr := ""
		if !seen[s] && f.cycles > 0 {
			attr = " [style=dashed]" // never visited in this run
		}
		fmt.Fprintf(&b, "  %s%s;\n", dotName(s), attr)
	}
	stats := f.Stats()
	sort.Slice(stats, func(i, j int) bool {
		return stats[i].Instruction.String() < stats[j].Instruction.String()
	})
	for _, st := range stats {
		fmt.Fprintf(&b, "  %s -> %s [label=\"%d x %.3g pJ\"];\n",
			dotName(st.Instruction.From), dotName(st.Instruction.To),
			st.Count, st.AverageEnergy()*1e12)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func dotName(s State) string {
	return strings.ReplaceAll(s.String(), "-", "_")
}
