package power

import (
	"fmt"
	"sort"

	"ahbpower/internal/stats"
)

// Activity is the instrumentation object the paper adds during the
// "preliminary instrumentation" phase: it monitors the value of every bus
// signal at every bus event and updates per-signal switching statistics
// via bit_change_count / store_activity.
type Activity struct {
	signals map[string]*stats.BitActivity
	order   []string
}

// NewActivity creates an empty activity store.
func NewActivity() *Activity {
	return &Activity{signals: map[string]*stats.BitActivity{}}
}

// Declare registers a signal with its width. Declaring twice is an error.
func (a *Activity) Declare(name string, width int) error {
	if _, ok := a.signals[name]; ok {
		return fmt.Errorf("power: signal %q already declared", name)
	}
	a.signals[name] = stats.NewBitActivity(width)
	a.order = append(a.order, name)
	return nil
}

// StoreActivity records a new observation of a signal and returns the
// Hamming distance to the previous one (the paper's store_activity +
// bit_change_count). Unknown signals are auto-declared with 64-bit width.
func (a *Activity) StoreActivity(name string, value uint64) int {
	ba, ok := a.signals[name]
	if !ok {
		ba = stats.NewBitActivity(64)
		a.signals[name] = ba
		a.order = append(a.order, name)
	}
	return ba.Store(value)
}

// BitChangeCount returns the accumulated bit changes of a signal.
func (a *Activity) BitChangeCount(name string) uint64 {
	if ba, ok := a.signals[name]; ok {
		return ba.BitChanges
	}
	return 0
}

// Last returns the most recent stored value of a signal.
func (a *Activity) Last(name string) (uint64, bool) {
	if ba, ok := a.signals[name]; ok {
		return ba.Last()
	}
	return 0, false
}

// SwitchingActivity returns the mean bit changes per observation of a
// signal.
func (a *Activity) SwitchingActivity(name string) float64 {
	if ba, ok := a.signals[name]; ok {
		return ba.SwitchingActivity()
	}
	return 0
}

// Signals returns the declared signal names in declaration order.
func (a *Activity) Signals() []string {
	return append([]string(nil), a.order...)
}

// Report returns one line per signal: name, samples, total bit changes and
// mean switching activity, sorted by name for stable output.
func (a *Activity) Report() []ActivityLine {
	lines := make([]ActivityLine, 0, len(a.signals))
	for name, ba := range a.signals {
		lines = append(lines, ActivityLine{
			Signal:     name,
			Samples:    ba.Samples,
			BitChanges: ba.BitChanges,
			Activity:   ba.SwitchingActivity(),
		})
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i].Signal < lines[j].Signal })
	return lines
}

// ActivityLine is one row of an Activity report.
type ActivityLine struct {
	Signal     string
	Samples    uint64
	BitChanges uint64
	Activity   float64
}
