package power

import "testing"

func TestActivityDeclareAndStore(t *testing.T) {
	a := NewActivity()
	if err := a.Declare("HADDR", 32); err != nil {
		t.Fatal(err)
	}
	if err := a.Declare("HADDR", 32); err == nil {
		t.Error("duplicate declare must fail")
	}
	if hd := a.StoreActivity("HADDR", 0); hd != 0 {
		t.Errorf("first store hd=%d", hd)
	}
	if hd := a.StoreActivity("HADDR", 0xFF); hd != 8 {
		t.Errorf("hd=%d, want 8", hd)
	}
	if a.BitChangeCount("HADDR") != 8 {
		t.Errorf("BitChangeCount=%d, want 8", a.BitChangeCount("HADDR"))
	}
}

func TestActivityAutoDeclare(t *testing.T) {
	a := NewActivity()
	a.StoreActivity("HTRANS", 2)
	if v, ok := a.Last("HTRANS"); !ok || v != 2 {
		t.Errorf("Last=(%d,%v)", v, ok)
	}
	if len(a.Signals()) != 1 {
		t.Errorf("Signals=%v", a.Signals())
	}
}

func TestActivityUnknownSignalQueries(t *testing.T) {
	a := NewActivity()
	if a.BitChangeCount("nope") != 0 {
		t.Error("unknown signal count must be 0")
	}
	if _, ok := a.Last("nope"); ok {
		t.Error("unknown signal Last must be absent")
	}
	if a.SwitchingActivity("nope") != 0 {
		t.Error("unknown signal activity must be 0")
	}
}

func TestActivityReportSortedAndComplete(t *testing.T) {
	a := NewActivity()
	a.StoreActivity("b_sig", 1)
	a.StoreActivity("a_sig", 1)
	a.StoreActivity("a_sig", 2)
	lines := a.Report()
	if len(lines) != 2 {
		t.Fatalf("lines=%d, want 2", len(lines))
	}
	if lines[0].Signal != "a_sig" || lines[1].Signal != "b_sig" {
		t.Errorf("report not sorted: %v", lines)
	}
	if lines[0].Samples != 2 || lines[0].BitChanges != 2 {
		t.Errorf("a_sig line = %+v", lines[0])
	}
}

func TestActivityDeclaredWidthMasks(t *testing.T) {
	a := NewActivity()
	if err := a.Declare("HTRANS", 2); err != nil {
		t.Fatal(err)
	}
	a.StoreActivity("HTRANS", 0)
	if hd := a.StoreActivity("HTRANS", 0xF); hd != 2 {
		t.Errorf("hd=%d, want 2 (width-masked)", hd)
	}
}

func TestBlockBreakdown(t *testing.T) {
	var bd Breakdown
	bd.Add(BlockM2S, 6)
	bd.Add(BlockDEC, 1)
	bd.Add(BlockARB, 1)
	bd.Add(BlockS2M, 2)
	if bd.Total() != 10 {
		t.Errorf("Total=%v, want 10", bd.Total())
	}
	if bd.Share(BlockM2S) != 0.6 {
		t.Errorf("Share(M2S)=%v, want 0.6", bd.Share(BlockM2S))
	}
	if bd.Energy(BlockS2M) != 2 {
		t.Errorf("Energy(S2M)=%v, want 2", bd.Energy(BlockS2M))
	}
	if len(Blocks()) != int(NumBlocks) {
		t.Error("Blocks() incomplete")
	}
}

func TestBlockBreakdownEmptyAndBogus(t *testing.T) {
	var bd Breakdown
	if bd.Share(BlockARB) != 0 {
		t.Error("empty breakdown share must be 0")
	}
	bd.Add(Block(99), 5) // ignored
	if bd.Total() != 0 {
		t.Error("out-of-range block must be ignored")
	}
	if bd.Energy(Block(99)) != 0 || bd.Share(Block(99)) != 0 {
		t.Error("out-of-range queries must be 0")
	}
}

func TestBlockNames(t *testing.T) {
	if BlockM2S.String() != "M2S" || BlockDEC.String() != "DEC" ||
		BlockARB.String() != "ARB" || BlockS2M.String() != "S2M" {
		t.Error("block names must match Fig. 6")
	}
	if Block(42).String() != "BLOCK(42)" {
		t.Error("unknown block formatting")
	}
}
