// Package power implements the paper's system-level power-analysis
// methodology: parametric dynamic-energy macromodels for the AHB
// sub-blocks (decoder, multiplexers, arbiter), the Activity instrumentation
// class that probes bus signals, and the power finite-state machine whose
// state transitions form the instruction set characterized in Table 1.
//
// Energy convention: following the paper's decoder macromodel, the dynamic
// energy charged per node transition is E = (VDD²/4)·C_node.
package power

// Tech holds the technology constants shared by all macromodels.
//
// The paper does not disclose its capacitance values; DefaultTech is
// calibrated (see EXPERIMENTS.md) so that the per-instruction energies of
// the paper's testbench land in the published 14-23 pJ band at 100 MHz
// with a 32-bit bus and 3 slaves. On-chip bus nets are long wires, so the
// per-node equivalent capacitances are dominated by interconnect.
type Tech struct {
	VDD float64 // supply voltage, volts
	CPD float64 // equivalent capacitance of one internal node, farads
	CO  float64 // capacitance of an output/bus node, farads
}

// DefaultTech returns constants representative of a 0.18 µm process with
// long on-chip bus wires (the paper's 2003-era context): VDD = 1.8 V,
// C_PD = 320 fF, C_O = 530 fF. The values are calibrated so the paper's
// testbench yields per-instruction energies in Table 1's 14-23 pJ band
// (see EXPERIMENTS.md).
func DefaultTech() Tech {
	return Tech{VDD: 1.8, CPD: 320e-15, CO: 530e-15}
}

// EnergyPerCap returns (VDD²/4)·c — the energy charged for switching a
// total capacitance c once under the paper's convention.
func (t Tech) EnergyPerCap(c float64) float64 {
	return t.VDD * t.VDD / 4 * c
}
