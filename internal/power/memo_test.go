package power

import (
	"math"
	"math/rand"
	"testing"
)

// TestDecoderMemoMatchesColdPath drives the decoder model with randomized
// Hamming distances, interleaving coefficient refits (the in-place writes
// internal/charact performs), and requires every memoized result to be
// bit-identical to the unmemoized formula.
func TestDecoderMemoMatchesColdPath(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, err := NewDecoderModel(5, DefaultTech())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		switch rng.Intn(100) {
		case 0: // refit to characterized coefficients mid-run
			m.CHD = rng.Float64() * 1e-12
			m.CEvent = rng.Float64() * 1e-13
		case 1: // back to the structural closed form
			m.CHD, m.CEvent = 0, 0
		case 2: // technology change
			m.Tech.VDD = 1 + rng.Float64()
		}
		hd := rng.Intn(260) - 5 // covers negatives and beyond-LUT values
		got := m.Energy(hd)
		want := m.energyCold(hd)
		if hd <= 0 {
			want = 0
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("iter %d: DecoderModel.Energy(%d) = %x, cold = %x",
				i, hd, math.Float64bits(got), math.Float64bits(want))
		}
	}
}

// TestMuxMemoMatchesColdPath does the same for the mux model's
// direct-mapped (HD_IN, HD_SEL, HD_OUT) cache, including the ClockEnergy
// memo and arguments outside the cacheable range.
func TestMuxMemoMatchesColdPath(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, err := NewMuxModel(32, 4, DefaultTech())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		switch rng.Intn(100) {
		case 0:
			m.CIn = rng.Float64() * 1e-12
			m.CSel = rng.Float64() * 1e-12
			m.COut = rng.Float64() * 1e-12
		case 1:
			m.CClkCycle = rng.Float64() * 1e-13
		case 2:
			m.Tech.VDD = 1 + rng.Float64()
		}
		// Mostly in-range triples (bus traffic), occasionally out of range.
		span := 40
		if rng.Intn(10) == 0 {
			span = 400
		}
		hdIn, hdSel, hdOut := rng.Intn(span)-5, rng.Intn(span)-5, rng.Intn(span)-5
		got := m.Energy(hdIn, hdSel, hdOut)
		want := m.energyCold(hdIn, hdSel, hdOut)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("iter %d: MuxModel.Energy(%d,%d,%d) = %x, cold = %x",
				i, hdIn, hdSel, hdOut, math.Float64bits(got), math.Float64bits(want))
		}
		if ce, cold := m.ClockEnergy(), m.Tech.EnergyPerCap(m.CClkCycle); math.Float64bits(ce) != math.Float64bits(cold) {
			t.Fatalf("iter %d: ClockEnergy = %x, cold = %x",
				i, math.Float64bits(ce), math.Float64bits(cold))
		}
	}
}

// TestArbiterMemoMatchesColdPath covers the arbiter's full-domain LUT and
// its out-of-range fallback under coefficient refits.
func TestArbiterMemoMatchesColdPath(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, err := NewArbiterModel(4, DefaultTech())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		switch rng.Intn(100) {
		case 0:
			m.CReq = rng.Float64() * 1e-12
			m.CGrant = rng.Float64() * 1e-12
		case 1:
			m.CHandover = rng.Float64() * 1e-12
			m.CActive = rng.Float64() * 1e-12
		case 2:
			m.Tech.VDD = 1 + rng.Float64()
		}
		span := arbMaxHD + 2
		if rng.Intn(10) == 0 {
			span = 100 // private-style glitch counts exceed the LUT
		}
		hdReq, hdGrant := rng.Intn(span)-1, rng.Intn(span)-1
		ho, arb := rng.Intn(2) == 1, rng.Intn(2) == 1
		got := m.Energy(hdReq, hdGrant, ho, arb)
		want := m.energyCold(hdReq, hdGrant, ho, arb)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("iter %d: ArbiterModel.Energy(%d,%d,%v,%v) = %x, cold = %x",
				i, hdReq, hdGrant, ho, arb, math.Float64bits(got), math.Float64bits(want))
		}
	}
}

// TestModelsCloneIsolatesMemoState verifies that Clone gives each run its
// own memo tables and coefficients: mutating the clone must not leak into
// the original (parallel sweeps clone a shared characterized model set).
func TestModelsCloneIsolatesMemoState(t *testing.T) {
	orig, err := DefaultModels(2, 3, 32, DefaultTech())
	if err != nil {
		t.Fatal(err)
	}
	base := orig.M2S.Energy(3, 1, 2)
	cl := orig.Clone()
	cl.M2S.CIn *= 10
	cl.Dec.CHD = 1e-12
	if got := orig.M2S.Energy(3, 1, 2); math.Float64bits(got) != math.Float64bits(base) {
		t.Errorf("mutating the clone changed the original: %x -> %x",
			math.Float64bits(base), math.Float64bits(got))
	}
	if cl.M2S.Energy(3, 1, 2) == base {
		t.Error("clone did not pick up its own coefficients")
	}
}
