package power

import (
	"fmt"
	"sort"
)

// State is one of the four main activity modes identified in the paper's
// behavioral decomposition of the AHB (§5.2): IDLE, READ, WRITE, and IDLE
// with bus handover.
type State uint8

// The four activity modes.
const (
	Idle State = iota
	IdleHO
	Read
	Write
)

// NumStates is the number of activity modes; instruction indices fit in
// [0, NumStates*NumStates).
const NumStates = 4

var stateNames = [...]string{"IDLE", "IDLE_HO", "READ", "WRITE"}

// String returns the paper's name for the state.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("STATE(%d)", uint8(s))
}

// Instruction is one element of the paper's instruction set: a permissible
// transition between two activity modes. The instruction executed in a
// cycle is (previous state, current state).
type Instruction struct {
	From, To State
}

// String formats the instruction in the paper's naming convention, e.g.
// "WRITE_READ" or "IDLE_HO_IDLE_HO".
func (i Instruction) String() string {
	return i.From.String() + "_" + i.To.String()
}

// InstructionStat accumulates the executions of one instruction.
type InstructionStat struct {
	Instruction Instruction
	Count       uint64
	Energy      float64 // joules
}

// AverageEnergy returns energy per execution, or 0 when never executed.
func (s InstructionStat) AverageEnergy() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Energy / float64(s.Count)
}

// FSM is the paper's power_fsm: it tracks the current activity mode,
// classifies each simulated bus cycle into an instruction, and accumulates
// the energy attributed to that cycle against the instruction.
//
// The per-instruction accumulators live in a flat array indexed by
// (From, To) — the whole domain is NumStates² slots — so the per-cycle
// Step is a bounds-checked add instead of a map operation. States outside
// the canonical four (possible through the public API, never produced by
// the analyzers) accumulate in a lazily allocated overflow map.
type FSM struct {
	cur      State
	started  bool
	stats    [NumStates * NumStates]InstructionStat
	overflow map[Instruction]*InstructionStat
	total    float64
	cycles   uint64
}

// NewFSM creates a power FSM; the first observed cycle sets the initial
// state without executing an instruction.
func NewFSM() *FSM {
	return &FSM{}
}

// Step observes the activity mode of the cycle that just completed,
// attributes energy (joules) to the corresponding instruction, and returns
// that instruction. The first call only establishes the initial state and
// returns ok=false.
func (f *FSM) Step(next State, energy float64) (Instruction, bool) {
	f.cycles++
	if !f.started {
		f.started = true
		f.cur = next
		f.total += energy
		return Instruction{}, false
	}
	in := Instruction{From: f.cur, To: next}
	if int(in.From) < NumStates && int(in.To) < NumStates {
		st := &f.stats[int(in.From)*NumStates+int(in.To)]
		st.Instruction = in
		st.Count++
		st.Energy += energy
	} else {
		if f.overflow == nil {
			f.overflow = map[Instruction]*InstructionStat{}
		}
		st, ok := f.overflow[in]
		if !ok {
			st = &InstructionStat{Instruction: in}
			f.overflow[in] = st
		}
		st.Count++
		st.Energy += energy
	}
	f.total += energy
	f.cur = next
	return in, true
}

// Current returns the present activity mode.
func (f *FSM) Current() State { return f.cur }

// TotalEnergy returns the energy accumulated across all cycles, joules.
func (f *FSM) TotalEnergy() float64 { return f.total }

// Cycles returns the number of observed cycles.
func (f *FSM) Cycles() uint64 { return f.cycles }

// Stats returns the per-instruction statistics sorted by descending total
// energy (the layout of the paper's Table 1).
func (f *FSM) Stats() []InstructionStat {
	out := make([]InstructionStat, 0, len(f.stats))
	for i := range f.stats {
		if f.stats[i].Count > 0 {
			out = append(out, f.stats[i])
		}
	}
	for _, s := range f.overflow {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Energy != out[j].Energy {
			return out[i].Energy > out[j].Energy
		}
		return out[i].Instruction.String() < out[j].Instruction.String()
	})
	return out
}

// Stat returns the statistics of one instruction.
func (f *FSM) Stat(in Instruction) InstructionStat {
	if int(in.From) < NumStates && int(in.To) < NumStates {
		if st := f.stats[int(in.From)*NumStates+int(in.To)]; st.Count > 0 {
			return st
		}
		return InstructionStat{Instruction: in}
	}
	if s, ok := f.overflow[in]; ok {
		return *s
	}
	return InstructionStat{Instruction: in}
}

// PermissibleInstructions lists the transitions the paper's power_fsm
// enumerates in §5.4. Transitions into and out of plain IDLE exist in the
// FSM even though the published Table 1 run never exercised some of them.
func PermissibleInstructions() []Instruction {
	return []Instruction{
		{Idle, Idle}, {Idle, IdleHO}, {Idle, Write},
		{IdleHO, IdleHO}, {IdleHO, Idle}, {IdleHO, Write},
		{Read, Write}, {Read, Idle}, {Read, IdleHO},
		{Write, Read},
	}
}
