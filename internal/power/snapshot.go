package power

import (
	"fmt"
	"math"
)

// Snapshot state for the power accumulators. Energies are serialized as
// their IEEE-754 bit patterns (uint64), not as decimal floats: a
// checkpoint/resume run must reproduce the uninterrupted run's energies
// Float64bits-identically, and a decimal round-trip cannot guarantee
// that.

// FSMSlotState is one instruction accumulator of a captured FSM.
type FSMSlotState struct {
	From       State  `json:"from"`
	To         State  `json:"to"`
	Count      uint64 `json:"count"`
	EnergyBits uint64 `json:"energy_bits"`
}

// FSMState is the serialized dynamic state of an FSM.
type FSMState struct {
	Cur       State          `json:"cur"`
	Started   bool           `json:"started,omitempty"`
	Slots     []FSMSlotState `json:"slots,omitempty"`
	TotalBits uint64         `json:"total_bits"`
	Cycles    uint64         `json:"cycles"`
}

// CaptureState serializes the FSM's accumulators (non-empty slots only).
func (f *FSM) CaptureState() FSMState {
	st := FSMState{
		Cur:       f.cur,
		Started:   f.started,
		TotalBits: math.Float64bits(f.total),
		Cycles:    f.cycles,
	}
	for i := range f.stats {
		s := &f.stats[i]
		if s.Count == 0 && s.Energy == 0 {
			continue
		}
		st.Slots = append(st.Slots, FSMSlotState{
			From:       State(i / NumStates),
			To:         State(i % NumStates),
			Count:      s.Count,
			EnergyBits: math.Float64bits(s.Energy),
		})
	}
	for in, s := range f.overflow {
		st.Slots = append(st.Slots, FSMSlotState{
			From: in.From, To: in.To,
			Count:      s.Count,
			EnergyBits: math.Float64bits(s.Energy),
		})
	}
	return st
}

// RestoreState writes a captured FSM state back onto a fresh FSM.
func (f *FSM) RestoreState(st FSMState) error {
	f.cur = st.Cur
	f.started = st.Started
	f.total = math.Float64frombits(st.TotalBits)
	f.cycles = st.Cycles
	f.stats = [NumStates * NumStates]InstructionStat{}
	f.overflow = nil
	for _, s := range st.Slots {
		in := Instruction{From: s.From, To: s.To}
		if int(s.From) < NumStates && int(s.To) < NumStates {
			slot := &f.stats[int(s.From)*NumStates+int(s.To)]
			if slot.Count != 0 || slot.Energy != 0 {
				return fmt.Errorf("power: duplicate FSM slot %s in snapshot", in)
			}
			slot.Instruction = in
			slot.Count = s.Count
			slot.Energy = math.Float64frombits(s.EnergyBits)
			continue
		}
		if f.overflow == nil {
			f.overflow = map[Instruction]*InstructionStat{}
		}
		f.overflow[in] = &InstructionStat{
			Instruction: in,
			Count:       s.Count,
			Energy:      math.Float64frombits(s.EnergyBits),
		}
	}
	return nil
}

// BreakdownState is the serialized per-block energy breakdown, as bit
// patterns indexed by block.
type BreakdownState struct {
	EnergyBits []uint64 `json:"energy_bits"`
}

// CaptureState serializes the breakdown.
func (bd *Breakdown) CaptureState() BreakdownState {
	st := BreakdownState{EnergyBits: make([]uint64, NumBlocks)}
	for b := 0; b < int(NumBlocks); b++ {
		st.EnergyBits[b] = math.Float64bits(bd.energy[b])
	}
	return st
}

// RestoreState writes a captured breakdown back.
func (bd *Breakdown) RestoreState(st BreakdownState) error {
	if len(st.EnergyBits) != int(NumBlocks) {
		return fmt.Errorf("power: breakdown snapshot has %d blocks, want %d", len(st.EnergyBits), NumBlocks)
	}
	for b := range bd.energy {
		bd.energy[b] = math.Float64frombits(st.EnergyBits[b])
	}
	return nil
}
