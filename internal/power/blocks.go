package power

import "fmt"

// Block identifies one of the AHB sub-blocks of the paper's structural
// decomposition (Fig. 2 / Fig. 6): the masters-to-slaves data/control
// multiplexer, the address decoder, the arbiter, and the slaves-to-masters
// data/control multiplexer.
type Block uint8

// The AHB sub-blocks, in the order of the paper's Fig. 6.
const (
	BlockM2S Block = iota // masters-to-slaves mux (address/control/write data)
	BlockDEC              // address decoder
	BlockARB              // arbiter
	BlockS2M              // slaves-to-masters mux (read data/response)
	NumBlocks
)

var blockNames = [...]string{"M2S", "DEC", "ARB", "S2M"}

// String returns the paper's abbreviation for the block.
func (b Block) String() string {
	if int(b) < len(blockNames) {
		return blockNames[b]
	}
	return fmt.Sprintf("BLOCK(%d)", uint8(b))
}

// Breakdown accumulates energy per sub-block; it backs the paper's Fig. 6
// (sub-block power contribution) and Figs. 4-5 (per-block power traces).
type Breakdown struct {
	energy [NumBlocks]float64
}

// Add attributes energy (joules) to a block.
func (bd *Breakdown) Add(b Block, e float64) {
	if b < NumBlocks {
		bd.energy[b] += e
	}
}

// Energy returns the accumulated energy of one block, joules.
func (bd *Breakdown) Energy(b Block) float64 {
	if b < NumBlocks {
		return bd.energy[b]
	}
	return 0
}

// Total returns the energy across all blocks, joules.
func (bd *Breakdown) Total() float64 {
	t := 0.0
	for _, e := range bd.energy {
		t += e
	}
	return t
}

// Share returns the fraction of total energy attributed to a block, in
// [0,1]; 0 when nothing has been accumulated.
func (bd *Breakdown) Share(b Block) float64 {
	t := bd.Total()
	if t == 0 || b >= NumBlocks {
		return 0
	}
	return bd.energy[b] / t
}

// Blocks lists all sub-blocks in display order.
func Blocks() []Block {
	return []Block{BlockM2S, BlockDEC, BlockARB, BlockS2M}
}
