package metrics

import (
	"errors"
	"testing"

	"ahbpower/internal/sim"
)

// failAfter accepts n bytes then fails every write, modelling a full disk.
type failAfter struct {
	n int
}

var errBoom = errors.New("boom: device full")

func (w *failAfter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errBoom
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, errBoom
	}
	w.n -= len(p)
	return len(p), nil
}

// exportTrace builds a trace with a few windows of synthetic samples.
func exportTrace(t *testing.T) *Trace {
	t.Helper()
	tr, err := NewTrace(TraceConfig{Window: 100e-9, PerBlock: true, PerInstruction: true})
	if err != nil {
		t.Fatal(err)
	}
	for c := uint64(1); c <= 100; c++ {
		tr.ObserveCycle(Sample{
			Cycle:  c,
			Time:   sim.Time(c) * 10 * sim.Nanosecond,
			EM2S:   1e-12,
			EDEC:   2e-12,
			EARB:   3e-12,
			ES2M:   4e-12,
			ETotal: 10e-12,
		})
	}
	return tr
}

// TestExportersPropagateWriteErrors drives every exporter against writers
// failing at the first byte and mid-stream: a write failure must always
// surface as a returned error, never as a silently truncated file.
func TestExportersPropagateWriteErrors(t *testing.T) {
	exporters := map[string]func(*Trace) func(w *failAfter) error{
		"csv":   func(tr *Trace) func(w *failAfter) error { return func(w *failAfter) error { return tr.WriteCSV(w) } },
		"jsonl": func(tr *Trace) func(w *failAfter) error { return func(w *failAfter) error { return tr.WriteJSONL(w) } },
		"vcd":   func(tr *Trace) func(w *failAfter) error { return func(w *failAfter) error { return tr.WriteVCD(w) } },
	}
	for name, mk := range exporters {
		for _, budget := range []int{0, 64, 300} {
			tr := exportTrace(t)
			if err := mk(tr)(&failAfter{n: budget}); !errors.Is(err, errBoom) {
				t.Errorf("%s: budget=%d: err = %v, want errBoom", name, budget, err)
			}
		}
	}
}

// TestExportersSucceedOnHealthyWriter is the control: the same traces
// export cleanly when the writer does not fail.
func TestExportersSucceedOnHealthyWriter(t *testing.T) {
	tr := exportTrace(t)
	big := &failAfter{n: 1 << 20}
	if err := tr.WriteCSV(big); err != nil {
		t.Errorf("WriteCSV: %v", err)
	}
	tr2 := exportTrace(t)
	if err := tr2.WriteJSONL(&failAfter{n: 1 << 20}); err != nil {
		t.Errorf("WriteJSONL: %v", err)
	}
	tr3 := exportTrace(t)
	if err := tr3.WriteVCD(&failAfter{n: 1 << 20}); err != nil {
		t.Errorf("WriteVCD: %v", err)
	}
}
