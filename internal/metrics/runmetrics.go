package metrics

import (
	"fmt"
	"time"

	"ahbpower/internal/stats"
)

// RunMetrics are the engine-level performance figures of one scenario
// run: how long the simulation took, how fast it went, and how much
// kernel work it did. They are filled by the engine on every Result.
type RunMetrics struct {
	// Cycles is the number of bus cycles actually simulated.
	Cycles uint64
	// DeltaCycles is the number of kernel delta cycles executed — the
	// simulator's unit of work.
	DeltaCycles uint64
	// Build is the wall-clock time spent constructing the system,
	// generating workloads and attaching the analyzer.
	Build time.Duration
	// Run is the wall-clock time of the simulation loop alone.
	Run time.Duration
	// CyclesPerSec is the simulation throughput, bus cycles per
	// wall-clock second.
	CyclesPerSec float64
}

// NewRunMetrics computes the derived fields from the raw measurements.
func NewRunMetrics(cycles, deltas uint64, build, run time.Duration) RunMetrics {
	m := RunMetrics{Cycles: cycles, DeltaCycles: deltas, Build: build, Run: run}
	if s := run.Seconds(); s > 0 {
		m.CyclesPerSec = float64(cycles) / s
	}
	return m
}

// Format renders the metrics as one human-readable line.
func (m RunMetrics) Format() string {
	return fmt.Sprintf("cycles=%d deltas=%d build=%s run=%s throughput=%.3g cycles/s",
		m.Cycles, m.DeltaCycles, m.Build.Round(time.Microsecond), m.Run.Round(time.Microsecond),
		m.CyclesPerSec)
}

// BatchMetrics aggregates the run metrics of one scenario batch executed
// over a worker pool.
type BatchMetrics struct {
	// Scenarios is the batch size; Failed counts scenarios that ended
	// with an error (including cancellation).
	Scenarios, Failed int
	// Workers is the effective worker-pool size.
	Workers int
	// TotalCycles sums the bus cycles of every successful scenario.
	TotalCycles uint64
	// Wall is the batch's end-to-end wall-clock time.
	Wall time.Duration
	// Busy sums the per-scenario simulation-loop times: the total CPU
	// time the pool spent simulating.
	Busy time.Duration
	// Utilization is Busy/(Workers*Wall) in [0,1]: how much of the
	// pool's capacity the simulation loops used. Low values mean the
	// batch is dominated by construction, serialization or imbalance.
	Utilization float64
	// CyclesPerSec is the batch throughput, TotalCycles/Wall.
	CyclesPerSec float64
	// Latency summarizes the per-scenario simulation-loop times, in
	// seconds.
	Latency stats.Summary
}

// Aggregate folds per-scenario run metrics into batch metrics. failed is
// the number of scenarios not represented in runs; workers the pool
// size; wall the batch's end-to-end duration.
func Aggregate(runs []RunMetrics, failed, workers int, wall time.Duration) BatchMetrics {
	b := BatchMetrics{
		Scenarios: len(runs) + failed,
		Failed:    failed,
		Workers:   workers,
		Wall:      wall,
	}
	latencies := make([]float64, 0, len(runs))
	for _, m := range runs {
		b.TotalCycles += m.Cycles
		b.Busy += m.Run
		latencies = append(latencies, m.Run.Seconds())
	}
	b.Latency = stats.Summarize(latencies)
	if s := wall.Seconds(); s > 0 {
		b.CyclesPerSec = float64(b.TotalCycles) / s
		if workers > 0 {
			b.Utilization = b.Busy.Seconds() / (float64(workers) * s)
		}
	}
	return b
}

// Format renders the batch metrics as a short multi-line summary.
func (b BatchMetrics) Format() string {
	return fmt.Sprintf(
		"scenarios=%d failed=%d workers=%d wall=%s\n"+
			"cycles=%d throughput=%.3g cycles/s utilization=%.1f%%\n"+
			"latency min=%.3gs median=%.3gs max=%.3gs",
		b.Scenarios, b.Failed, b.Workers, b.Wall.Round(time.Millisecond),
		b.TotalCycles, b.CyclesPerSec, 100*b.Utilization,
		b.Latency.Min, b.Latency.Median, b.Latency.Max)
}
