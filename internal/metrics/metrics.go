// Package metrics is the streaming observability layer of the power
// simulator: it turns the per-cycle energy stream the analyzer computes
// into time-resolved artifacts — windowed power waveforms, per-sub-block
// and per-instruction energy time series — and into engine-level run
// metrics (latency, cycles/sec throughput, worker utilization). Both the
// power-emulation literature (Coburn et al.) and SystemC DPM studies
// (Conti et al.) show that time-resolved waveforms, not just end-of-run
// totals, are what make a bus power model usable for dynamic power
// management and architecture exploration.
//
// The layer is built on the probe/observer architecture of the
// simulation core: the analyzer publishes one Sample per settled bus
// cycle through a typed hub, and a Trace subscribes to that stream like
// any other observer. Nothing is published when no observer is attached,
// so a detached recorder costs zero simulation time.
package metrics

import (
	"fmt"
	"math"
	"math/bits"

	"ahbpower/internal/power"
	"ahbpower/internal/sim"
	"ahbpower/internal/stats"
)

// Sample is one settled bus cycle's energy decomposition, published by
// the power analyzer after it has classified the cycle and evaluated the
// sub-block macromodels. ETotal is exactly the energy the analyzer's
// power FSM accumulates for the cycle, so any consumer summing ETotal in
// stream order reproduces the report's total energy bit for bit.
type Sample struct {
	// Cycle is the bus cycle number (1-based).
	Cycle uint64
	// Time is the simulated time of the settled cycle.
	Time sim.Time
	// State is the activity mode the cycle was classified into.
	State power.State
	// Per-sub-block energies of the cycle, joules.
	EM2S, EDEC, EARB, ES2M float64
	// ETotal is the cycle's total energy, joules.
	ETotal float64
}

// TraceConfig parameterizes a Trace recorder.
type TraceConfig struct {
	// Window is the waveform window duration in seconds (required > 0).
	// Each window accumulates the energy of the cycles falling into it
	// and is emitted as one power point P = E/Window.
	Window float64
	// PerBlock additionally records per-sub-block energy per window (the
	// paper's Figs. 4-5 decomposition, time-resolved).
	PerBlock bool
	// PerInstruction additionally records per-instruction energy per
	// window: the energy of each power-FSM transition executed inside
	// the window.
	PerInstruction bool
}

// Window is one finished waveform window.
type Window struct {
	// Start and End bound the window, in simulated seconds.
	Start, End float64
	// Cycles is the number of bus cycles observed inside the window.
	Cycles uint64
	// Energy is the energy deposited inside the window, joules.
	Energy float64
	// CumEnergy is the trace's running total energy at the window's
	// close. It is accumulated sample by sample in stream order — the
	// same float path as the analyzer report's total — so the last
	// window's CumEnergy equals Report.TotalEnergy exactly.
	CumEnergy float64
	// Power is the window's mean power, Energy/(End-Start), watts.
	Power float64
	// Block holds per-sub-block window energy, joules (PerBlock only).
	Block [power.NumBlocks]float64
	// Instr maps instruction name to window energy, joules
	// (PerInstruction only; instructions not yet executed by the run are
	// omitted, already-seen ones appear with 0).
	Instr map[string]float64
}

// Trace is a streaming per-cycle power/energy recorder. Attach it to an
// analyzer's sample stream (core.AnalyzerConfig.Trace, the root
// WithTrace option, or Analyzer.ObserveSamples), run the simulation, and
// read the windows, series and summary statistics afterwards.
//
// A Trace is single-run: the first read accessor finalizes the
// in-progress window, after which further observed cycles are dropped
// and recorded as a sticky error (returned by Finish, Err and every
// exporter). Use one Trace per simulation.
type Trace struct {
	cfg      TraceConfig
	started  bool
	finished bool
	// err is the sticky misuse error: set the first time a cycle arrives
	// after finalization and never cleared. A mis-attached observer in a
	// long-lived process must not kill it, so the condition is reported
	// from Finish/the exporters instead of panicking; the offending
	// samples are dropped and every accumulator keeps its finalized value.
	err error

	// Current-window accumulators. Per-instruction energy is indexed by
	// From*NumStates+To — a flat array instead of a map, so the per-cycle
	// accumulation is two array writes; instrSeen tracks which
	// instructions have executed so far.
	winStart  float64
	winEnergy float64
	winCycles uint64
	winBlock  [power.NumBlocks]float64
	winInstr  [power.NumStates * power.NumStates]float64
	instrSeen uint32

	// Whole-run accumulators. cum is the running total energy, added in
	// stream order — the exact float path of the analyzer's power FSM.
	cum    float64
	cycles uint64

	prevState power.State
	haveState bool

	windows     []Window
	total       *stats.Series
	blockSeries [power.NumBlocks]*stats.Series
	instrSeries map[power.Instruction]*stats.Series
	online      stats.Online
}

// TraceStats summarizes a trace.
type TraceStats struct {
	// Cycles is the number of observed bus cycles.
	Cycles uint64
	// Windows is the number of finished waveform windows.
	Windows int
	// Energy is the total recorded energy, joules — bit-identical to the
	// analyzer report's TotalEnergy.
	Energy float64
	// MeanPower, PeakPower and RMSPower summarize the windowed power
	// waveform, watts (computed online; no samples are retained for
	// them).
	MeanPower, PeakPower, RMSPower float64
}

// NewTrace builds a trace recorder from the configuration.
func NewTrace(cfg TraceConfig) (*Trace, error) {
	if cfg.Window <= 0 || math.IsNaN(cfg.Window) || math.IsInf(cfg.Window, 0) {
		return nil, fmt.Errorf("metrics: TraceConfig.Window=%g, want > 0", cfg.Window)
	}
	t := &Trace{
		cfg:   cfg,
		total: &stats.Series{Name: "AHB total", XUnit: "time_s", YUnit: "power_W"},
	}
	if cfg.PerBlock {
		for _, b := range power.Blocks() {
			t.blockSeries[b] = &stats.Series{Name: b.String(), XUnit: "time_s", YUnit: "power_W"}
		}
	}
	if cfg.PerInstruction {
		t.instrSeries = map[power.Instruction]*stats.Series{}
	}
	return t, nil
}

// instrAt maps a flat winInstr index back to its instruction.
func instrAt(idx int) power.Instruction {
	return power.Instruction{
		From: power.State(idx / power.NumStates),
		To:   power.State(idx % power.NumStates),
	}
}

// instrNames caches the instruction name of every flat index so window
// flushes never rebuild the concatenated strings.
var instrNames = func() [power.NumStates * power.NumStates]string {
	var names [power.NumStates * power.NumStates]string
	for i := range names {
		names[i] = instrAt(i).String()
	}
	return names
}()

// Config returns the trace configuration.
func (t *Trace) Config() TraceConfig { return t.cfg }

// ObserveCycle implements the sample-stream observer: it deposits one
// cycle's energies into the current window, closing windows as simulated
// time crosses their boundaries. Samples must arrive in nondecreasing
// time order (the settled-cycle stream guarantees this).
func (t *Trace) ObserveCycle(s Sample) {
	if t.finished {
		if t.err == nil {
			t.err = fmt.Errorf("metrics: Trace observed cycle %d after finalization; use one Trace per run", s.Cycle)
		}
		return
	}
	tsec := s.Time.Seconds()
	if !t.started {
		t.started = true
		t.winStart = math.Floor(tsec/t.cfg.Window) * t.cfg.Window
	}
	for tsec >= t.winStart+t.cfg.Window {
		t.flush()
	}

	t.cycles++
	t.cum += s.ETotal
	t.winEnergy += s.ETotal
	t.winCycles++
	if t.cfg.PerBlock {
		t.winBlock[power.BlockM2S] += s.EM2S
		t.winBlock[power.BlockDEC] += s.EDEC
		t.winBlock[power.BlockARB] += s.EARB
		t.winBlock[power.BlockS2M] += s.ES2M
	}
	if t.cfg.PerInstruction {
		if t.haveState {
			idx := int(t.prevState)*power.NumStates + int(s.State)
			t.winInstr[idx] += s.ETotal
			t.instrSeen |= 1 << uint(idx)
		}
		t.prevState = s.State
		t.haveState = true
	}
}

// ObserveBatch implements probe.BatchObserver: it consumes a slice of
// in-order samples in one call, the delivery path used by the analyzer's
// batched sample stream.
func (t *Trace) ObserveBatch(recs []Sample) {
	for i := range recs {
		t.ObserveCycle(recs[i])
	}
}

// flush closes the current window and opens the next one.
func (t *Trace) flush() {
	end := t.winStart + t.cfg.Window
	mid := t.winStart + t.cfg.Window/2
	w := Window{
		Start:     t.winStart,
		End:       end,
		Cycles:    t.winCycles,
		Energy:    t.winEnergy,
		CumEnergy: t.cum,
		Power:     t.winEnergy / t.cfg.Window,
	}
	t.total.Add(mid, w.Power)
	t.online.Add(w.Power)
	if t.cfg.PerBlock {
		w.Block = t.winBlock
		for _, b := range power.Blocks() {
			t.blockSeries[b].Add(mid, t.winBlock[b]/t.cfg.Window)
			t.winBlock[b] = 0
		}
	}
	if t.cfg.PerInstruction && t.instrSeen != 0 {
		w.Instr = make(map[string]float64, bits.OnesCount32(t.instrSeen))
		for idx := range t.winInstr {
			if t.instrSeen&(1<<uint(idx)) == 0 {
				continue
			}
			in := instrAt(idx)
			e := t.winInstr[idx]
			w.Instr[instrNames[idx]] = e
			se := t.instrSeries[in]
			if se == nil {
				se = &stats.Series{Name: instrNames[idx], XUnit: "time_s", YUnit: "energy_J"}
				t.instrSeries[in] = se
			}
			se.Add(mid, e)
			t.winInstr[idx] = 0
		}
	}
	t.windows = append(t.windows, w)
	t.winStart = end
	t.winEnergy = 0
	t.winCycles = 0
}

// finalize closes the in-progress window (if any) and freezes the trace.
func (t *Trace) finalize() {
	if t.finished {
		return
	}
	t.finished = true
	if t.started {
		t.flush()
	}
}

// Finish finalizes the trace (closing the in-progress window) and
// returns the sticky misuse error, if any: non-nil when cycles were
// observed after an earlier finalization and dropped. Reading accessors
// never fail — the recorded data stays valid — but one-shot consumers
// (CLIs, exporters) should surface this error so a mis-attached observer
// is noticed.
func (t *Trace) Finish() error {
	t.finalize()
	return t.err
}

// Err returns the sticky misuse error without finalizing the trace.
func (t *Trace) Err() error { return t.err }

// Energy returns the total recorded energy, joules. It is accumulated
// sample by sample in stream order, so it matches the analyzer report's
// TotalEnergy bit for bit. Valid at any time, including mid-run.
func (t *Trace) Energy() float64 { return t.cum }

// Cycles returns the number of observed bus cycles.
func (t *Trace) Cycles() uint64 { return t.cycles }

// Windows finalizes the trace and returns every waveform window in time
// order.
func (t *Trace) Windows() []Window {
	t.finalize()
	return t.windows
}

// PowerSeries finalizes the trace and returns the total windowed power
// waveform (the paper's Fig. 3, streamed).
func (t *Trace) PowerSeries() *stats.Series {
	t.finalize()
	return t.total
}

// BlockPowerSeries finalizes the trace and returns the windowed power
// waveform of one sub-block, or nil when PerBlock was not enabled.
func (t *Trace) BlockPowerSeries(b power.Block) *stats.Series {
	t.finalize()
	if b >= power.NumBlocks {
		return nil
	}
	return t.blockSeries[b]
}

// InstructionSeries finalizes the trace and returns the windowed energy
// series of every instruction observed, keyed by instruction name. Each
// series has one point per window from the instruction's first execution
// onward. Nil when PerInstruction was not enabled.
func (t *Trace) InstructionSeries() map[string]*stats.Series {
	t.finalize()
	if t.instrSeries == nil {
		return nil
	}
	out := make(map[string]*stats.Series, len(t.instrSeries))
	for in, se := range t.instrSeries {
		out[in.String()] = se
	}
	return out
}

// Stats finalizes the trace and returns its summary.
func (t *Trace) Stats() TraceStats {
	t.finalize()
	return TraceStats{
		Cycles:    t.cycles,
		Windows:   len(t.windows),
		Energy:    t.cum,
		MeanPower: t.online.Mean(),
		PeakPower: t.online.Max(),
		RMSPower:  t.online.RMS(),
	}
}

// Format renders the trace summary as one human-readable line.
func (s TraceStats) Format() string {
	return fmt.Sprintf("cycles=%d windows=%d energy=%.4g J mean=%.4g W peak=%.4g W rms=%.4g W",
		s.Cycles, s.Windows, s.Energy, s.MeanPower, s.PeakPower, s.RMSPower)
}
