package metrics

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"math"
	"strings"
	"testing"

	"ahbpower/internal/power"
	"ahbpower/internal/sim"
	"ahbpower/internal/stats"
)

// sampleAt builds a sample at the given nanosecond with equal per-block
// energies summing to e.
func sampleAt(ns uint64, st power.State, e float64) Sample {
	return Sample{
		Cycle: ns / 10, Time: sim.Time(ns) * sim.Nanosecond, State: st,
		EM2S: e / 4, EDEC: e / 4, EARB: e / 4, ES2M: e / 4, ETotal: e,
	}
}

func TestNewTraceValidation(t *testing.T) {
	for _, w := range []float64{0, -1e-9, math.NaN(), math.Inf(1)} {
		if _, err := NewTrace(TraceConfig{Window: w}); err == nil {
			t.Errorf("Window=%g must be rejected", w)
		}
	}
	if _, err := NewTrace(TraceConfig{Window: 1e-9}); err != nil {
		t.Errorf("valid window rejected: %v", err)
	}
}

func TestWindowingAndConservation(t *testing.T) {
	tr, err := NewTrace(TraceConfig{Window: 100e-9, PerBlock: true, PerInstruction: true})
	if err != nil {
		t.Fatal(err)
	}
	// Three 100 ns windows: cycles at 10..90, then a gap spanning an
	// entire empty window, then one cycle at 250 ns.
	var want float64
	for ns := uint64(10); ns <= 90; ns += 10 {
		e := 1e-12 * float64(ns)
		want += e
		tr.ObserveCycle(sampleAt(ns, power.Write, e))
	}
	tr.ObserveCycle(sampleAt(250, power.Read, 5e-12))
	want += 5e-12

	wins := tr.Windows()
	if len(wins) != 3 {
		t.Fatalf("windows=%d, want 3 (one empty gap window)", len(wins))
	}
	if wins[0].Start != 0 || wins[1].Start != 100e-9 || wins[2].Start != 200e-9 {
		t.Errorf("window starts %g,%g,%g", wins[0].Start, wins[1].Start, wins[2].Start)
	}
	if wins[0].Cycles != 9 || wins[1].Cycles != 0 || wins[2].Cycles != 1 {
		t.Errorf("window cycles %d,%d,%d, want 9,0,1", wins[0].Cycles, wins[1].Cycles, wins[2].Cycles)
	}
	if wins[1].Energy != 0 || wins[1].Power != 0 {
		t.Errorf("empty window carries energy=%g power=%g", wins[1].Energy, wins[1].Power)
	}
	if got := tr.Energy(); got != want {
		t.Errorf("Energy()=%g, want %g (stream-order sum)", got, want)
	}
	if last := wins[len(wins)-1].CumEnergy; last != tr.Energy() {
		t.Errorf("last CumEnergy=%g, want Energy()=%g", last, tr.Energy())
	}
	// Per-block energies: each block got a quarter of each window.
	for _, b := range power.Blocks() {
		if got, want := wins[0].Block[b], wins[0].Energy/4; math.Abs(got-want) > 1e-18 {
			t.Errorf("window0 %s energy=%g, want %g", b, got, want)
		}
	}
	// Window power is E/W.
	if got, want := wins[0].Power, wins[0].Energy/100e-9; got != want {
		t.Errorf("window0 power=%g, want %g", got, want)
	}

	st := tr.Stats()
	if st.Cycles != 10 || st.Windows != 3 || st.Energy != tr.Energy() {
		t.Errorf("stats %+v inconsistent with trace", st)
	}
	peak := math.Max(wins[0].Power, wins[2].Power)
	if st.PeakPower != peak {
		t.Errorf("peak=%g, want %g", st.PeakPower, peak)
	}
}

func TestInstructionSeriesDense(t *testing.T) {
	tr, _ := NewTrace(TraceConfig{Window: 100e-9, PerInstruction: true})
	// WRITE appears in window 0 (transition Write->Write), READ only from
	// window 1 on.
	tr.ObserveCycle(sampleAt(10, power.Write, 1e-12))
	tr.ObserveCycle(sampleAt(20, power.Write, 1e-12))
	tr.ObserveCycle(sampleAt(110, power.Read, 2e-12))
	tr.ObserveCycle(sampleAt(210, power.Read, 3e-12))

	series := tr.InstructionSeries()
	ww := series[power.Instruction{From: power.Write, To: power.Write}.String()]
	wr := series[power.Instruction{From: power.Write, To: power.Read}.String()]
	rr := series[power.Instruction{From: power.Read, To: power.Read}.String()]
	if ww == nil || wr == nil || rr == nil {
		t.Fatalf("missing instruction series, have %v", keys(series))
	}
	// From first appearance onward every window contributes one point,
	// zero-filled when the instruction did not execute.
	if got := ww.Len(); got != 3 {
		t.Errorf("WRITE_WRITE series has %d points, want 3 (dense from window 0)", got)
	}
	if ww.Points[1].Y != 0 || ww.Points[2].Y != 0 {
		t.Errorf("WRITE_WRITE later windows %v, want zero-filled", ww.Points[1:])
	}
	if got := rr.Len(); got != 1 {
		t.Errorf("READ_READ series has %d points, want 1 (first executed in last window)", got)
	}
}

func keys(m map[string]*stats.Series) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestObserveAfterFinalizeStickyError(t *testing.T) {
	tr, _ := NewTrace(TraceConfig{Window: 100e-9})
	tr.ObserveCycle(sampleAt(10, power.Write, 1e-12))
	if err := tr.Finish(); err != nil {
		t.Fatalf("Finish on a well-used trace: %v", err)
	}
	wantEnergy := tr.Energy()
	wantWindows := len(tr.Windows())
	// A mis-attached observer delivering cycles after finalization must
	// not panic (it would kill a long-lived server); the cycles are
	// dropped and the condition surfaces as a sticky error.
	tr.ObserveCycle(sampleAt(20, power.Write, 1e-12))
	tr.ObserveBatch([]Sample{sampleAt(30, power.Read, 2e-12)})
	if tr.Err() == nil {
		t.Fatal("Err after post-finalization ObserveCycle = nil, want sticky error")
	}
	if err := tr.Finish(); err == nil {
		t.Error("Finish = nil, want the sticky error")
	}
	if got := tr.Energy(); got != wantEnergy {
		t.Errorf("dropped samples changed Energy: %g, want %g", got, wantEnergy)
	}
	if got := len(tr.Windows()); got != wantWindows {
		t.Errorf("dropped samples changed window count: %d, want %d", got, wantWindows)
	}
	// One-shot consumers observe the misuse through the exporters.
	if err := tr.WriteCSV(io.Discard); err == nil {
		t.Error("WriteCSV after misuse = nil, want the sticky error")
	}
	if err := tr.WriteJSONL(io.Discard); err == nil {
		t.Error("WriteJSONL after misuse = nil, want the sticky error")
	}
	if err := tr.WriteVCD(io.Discard); err == nil {
		t.Error("WriteVCD after misuse = nil, want the sticky error")
	}
}

func TestWriteCSV(t *testing.T) {
	tr, _ := NewTrace(TraceConfig{Window: 100e-9, PerBlock: true})
	tr.ObserveCycle(sampleAt(10, power.Write, 4e-12))
	tr.ObserveCycle(sampleAt(110, power.Read, 8e-12))
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header + 2 windows:\n%s", len(lines), buf.String())
	}
	if lines[0] != "t_s,power_W,energy_J,cum_energy_J,cycles,M2S_W,DEC_W,ARB_W,S2M_W" {
		t.Errorf("header %q", lines[0])
	}
	if cols := strings.Split(lines[1], ","); len(cols) != 9 {
		t.Errorf("row has %d columns, want 9", len(cols))
	}
}

func TestWriteJSONL(t *testing.T) {
	tr, _ := NewTrace(TraceConfig{Window: 100e-9, PerBlock: true, PerInstruction: true})
	tr.ObserveCycle(sampleAt(10, power.Write, 4e-12))
	tr.ObserveCycle(sampleAt(20, power.Read, 6e-12))
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var rows []map[string]any
	for sc.Scan() {
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("line %d is not JSON: %v", len(rows)+1, err)
		}
		rows = append(rows, obj)
	}
	if len(rows) != 2 {
		t.Fatalf("JSONL has %d rows, want 1 window + 1 summary", len(rows))
	}
	// Both cycles fall in the lone window, so its energy is the trace
	// total — compared exactly, since both take the same float path.
	if want := tr.Energy(); rows[0]["energy_J"].(float64) != want {
		t.Errorf("window energy %v, want %g", rows[0]["energy_J"], want)
	}
	if _, ok := rows[0]["instr_energy_J"]; !ok {
		t.Error("window row lacks instr_energy_J")
	}
	sum, ok := rows[len(rows)-1]["summary"].(map[string]any)
	if !ok {
		t.Fatal("last row is not the summary object")
	}
	if sum["energy_J"].(float64) != tr.Energy() {
		t.Errorf("summary energy %v, want %g", sum["energy_J"], tr.Energy())
	}
}

func TestWriteVCD(t *testing.T) {
	tr, _ := NewTrace(TraceConfig{Window: 100e-9, PerBlock: true})
	tr.ObserveCycle(sampleAt(10, power.Write, 4e-12))
	tr.ObserveCycle(sampleAt(110, power.Read, 8e-12))
	var buf bytes.Buffer
	if err := tr.WriteVCD(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"$timescale 1ps $end",
		"$var real 64",
		"total", "M2S", "S2M",
		"#0\n", "#100000\n", "#200000\n", // window boundaries in ps
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD lacks %q:\n%s", want, out)
		}
	}
	// Real-valued emission syntax.
	if !strings.Contains(out, "r0.0") && !strings.Contains(out, "r4") {
		t.Errorf("VCD has no real emissions:\n%s", out)
	}
}

func TestRunMetricsFormat(t *testing.T) {
	m := NewRunMetrics(1000, 4000, 0, 2_000_000 /* 2 ms */)
	if m.CyclesPerSec != 500e3 {
		t.Errorf("throughput=%g, want 5e5", m.CyclesPerSec)
	}
	if !strings.Contains(m.Format(), "cycles=1000") {
		t.Errorf("format %q", m.Format())
	}
}

func TestAggregate(t *testing.T) {
	runs := []RunMetrics{
		NewRunMetrics(1000, 0, 0, 10_000_000),
		NewRunMetrics(3000, 0, 0, 30_000_000),
	}
	b := Aggregate(runs, 1, 2, 40_000_000 /* 40 ms wall */)
	if b.Scenarios != 3 || b.Failed != 1 {
		t.Errorf("scenarios=%d failed=%d, want 3/1", b.Scenarios, b.Failed)
	}
	if b.TotalCycles != 4000 {
		t.Errorf("cycles=%d, want 4000", b.TotalCycles)
	}
	// Busy 40 ms over 2 workers * 40 ms wall = 50%.
	if math.Abs(b.Utilization-0.5) > 1e-9 {
		t.Errorf("utilization=%g, want 0.5", b.Utilization)
	}
	if math.Abs(b.CyclesPerSec-100e3) > 1e-6 {
		t.Errorf("throughput=%g, want 1e5", b.CyclesPerSec)
	}
	if b.Latency.Max != 0.03 {
		t.Errorf("latency max=%g, want 0.03", b.Latency.Max)
	}
}
