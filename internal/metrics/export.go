package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"ahbpower/internal/power"
	"ahbpower/internal/sim"
	"ahbpower/internal/vcd"
)

// WriteCSV emits the trace as CSV, one row per window: time (window
// midpoint), power, window energy, cumulative energy and cycle count,
// plus one power column per sub-block when PerBlock was enabled.
func (t *Trace) WriteCSV(w io.Writer) error {
	if err := t.Finish(); err != nil {
		return err
	}
	windows := t.Windows()
	header := "t_s,power_W,energy_J,cum_energy_J,cycles"
	if t.cfg.PerBlock {
		for _, b := range power.Blocks() {
			header += fmt.Sprintf(",%s_W", b)
		}
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for _, win := range windows {
		row := fmt.Sprintf("%g,%g,%g,%g,%d",
			win.Start+t.cfg.Window/2, win.Power, win.Energy, win.CumEnergy, win.Cycles)
		if t.cfg.PerBlock {
			for _, b := range power.Blocks() {
				row += fmt.Sprintf(",%g", win.Block[b]/t.cfg.Window)
			}
		}
		if _, err := fmt.Fprintln(w, row); err != nil {
			return err
		}
	}
	return nil
}

// windowJSON is the JSON-lines shape of one window.
type windowJSON struct {
	T      float64            `json:"t_s"`
	Power  float64            `json:"power_W"`
	Energy float64            `json:"energy_J"`
	Cum    float64            `json:"cum_energy_J"`
	Cycles uint64             `json:"cycles"`
	Blocks map[string]float64 `json:"block_energy_J,omitempty"`
	Instr  map[string]float64 `json:"instr_energy_J,omitempty"`
}

// WriteJSONL emits the trace as JSON lines: one object per window, with
// per-block and per-instruction window energies when recorded, followed
// by a final summary object {"summary": ...}.
func (t *Trace) WriteJSONL(w io.Writer) error {
	if err := t.Finish(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	for _, win := range t.Windows() {
		obj := windowJSON{
			T:      win.Start + t.cfg.Window/2,
			Power:  win.Power,
			Energy: win.Energy,
			Cum:    win.CumEnergy,
			Cycles: win.Cycles,
			Instr:  win.Instr,
		}
		if t.cfg.PerBlock {
			obj.Blocks = make(map[string]float64, int(power.NumBlocks))
			for _, b := range power.Blocks() {
				obj.Blocks[b.String()] = win.Block[b]
			}
		}
		if err := enc.Encode(obj); err != nil {
			return err
		}
	}
	s := t.Stats()
	return enc.Encode(map[string]any{"summary": map[string]any{
		"cycles":       s.Cycles,
		"windows":      s.Windows,
		"energy_J":     s.Energy,
		"mean_power_W": s.MeanPower,
		"peak_power_W": s.PeakPower,
		"rms_power_W":  s.RMSPower,
	}})
}

// WriteVCD emits the trace as an analog (real-valued) VCD: the total
// power waveform plus one trace per sub-block when PerBlock was enabled,
// stepping once per window. Any waveform viewer renders these as analog
// power plots.
func (t *Trace) WriteVCD(w io.Writer) error {
	if err := t.Finish(); err != nil {
		return err
	}
	windows := t.Windows()
	aw := vcd.NewAnalogWriter(w)
	total := aw.AddReal("power.total")
	var blocks [power.NumBlocks]*vcd.RealVar
	if t.cfg.PerBlock {
		for _, b := range power.Blocks() {
			blocks[b] = aw.AddReal("power." + b.String())
		}
	}
	if err := aw.Start(); err != nil {
		return err
	}
	toTime := func(sec float64) sim.Time { return sim.Time(math.Round(sec * 1e12)) }
	for _, win := range windows {
		at := toTime(win.Start)
		aw.Emit(at, total, win.Power)
		if t.cfg.PerBlock {
			for _, b := range power.Blocks() {
				aw.Emit(at, blocks[b], win.Block[b]/t.cfg.Window)
			}
		}
	}
	if n := len(windows); n > 0 {
		// Close the last step so viewers draw its full width.
		at := toTime(windows[n-1].End)
		aw.Emit(at, total, windows[n-1].Power)
	}
	return aw.Flush()
}

// FormatInstructionTotals renders the per-instruction energy totals of
// the trace's windows, sorted by descending energy — a time-series-side
// cross-check of the analyzer's Table 1.
func (t *Trace) FormatInstructionTotals() string {
	totals := map[string]float64{}
	for _, win := range t.Windows() {
		for name, e := range win.Instr {
			totals[name] += e
		}
	}
	names := make([]string, 0, len(totals))
	for name := range totals {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if totals[names[i]] != totals[names[j]] {
			return totals[names[i]] > totals[names[j]]
		}
		return names[i] < names[j]
	})
	out := ""
	for _, name := range names {
		out += fmt.Sprintf("%-18s %12.4g J\n", name, totals[name])
	}
	return out
}
