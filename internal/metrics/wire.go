package metrics

import "ahbpower/internal/stats"

// The wire types carry run and batch metrics across process boundaries
// (the serving daemon's JSON API). They flatten time.Duration into float
// seconds and tag every field, so the payload is self-describing and
// stable even if the in-memory structs evolve.

// RunMetricsWire is the JSON form of RunMetrics.
type RunMetricsWire struct {
	Cycles       uint64  `json:"cycles"`
	DeltaCycles  uint64  `json:"delta_cycles"`
	BuildSeconds float64 `json:"build_s"`
	RunSeconds   float64 `json:"run_s"`
	CyclesPerSec float64 `json:"cycles_per_s"`
}

// Wire converts the metrics to their JSON form.
func (m RunMetrics) Wire() RunMetricsWire {
	return RunMetricsWire{
		Cycles:       m.Cycles,
		DeltaCycles:  m.DeltaCycles,
		BuildSeconds: m.Build.Seconds(),
		RunSeconds:   m.Run.Seconds(),
		CyclesPerSec: m.CyclesPerSec,
	}
}

// SummaryWire is the JSON form of a stats.Summary.
type SummaryWire struct {
	N      int     `json:"n"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	Median float64 `json:"median"`
	Total  float64 `json:"total"`
}

func summaryWire(s stats.Summary) SummaryWire {
	return SummaryWire{N: s.N, Min: s.Min, Max: s.Max, Mean: s.Mean,
		Stddev: s.Stddev, Median: s.Median, Total: s.Total}
}

// BatchMetricsWire is the JSON form of BatchMetrics.
type BatchMetricsWire struct {
	Scenarios      int         `json:"scenarios"`
	Failed         int         `json:"failed"`
	Workers        int         `json:"workers"`
	TotalCycles    uint64      `json:"total_cycles"`
	WallSeconds    float64     `json:"wall_s"`
	BusySeconds    float64     `json:"busy_s"`
	Utilization    float64     `json:"utilization"`
	CyclesPerSec   float64     `json:"cycles_per_s"`
	LatencySeconds SummaryWire `json:"latency_s"`
}

// Wire converts the batch metrics to their JSON form.
func (b BatchMetrics) Wire() BatchMetricsWire {
	return BatchMetricsWire{
		Scenarios:      b.Scenarios,
		Failed:         b.Failed,
		Workers:        b.Workers,
		TotalCycles:    b.TotalCycles,
		WallSeconds:    b.Wall.Seconds(),
		BusySeconds:    b.Busy.Seconds(),
		Utilization:    b.Utilization,
		CyclesPerSec:   b.CyclesPerSec,
		LatencySeconds: summaryWire(b.Latency),
	}
}
