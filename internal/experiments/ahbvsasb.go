package experiments

import (
	"context"
	"fmt"
	"strings"

	"ahbpower/internal/amba/ahb"
	"ahbpower/internal/amba/asb"
	"ahbpower/internal/core"
	"ahbpower/internal/engine"
	"ahbpower/internal/power"
	"ahbpower/internal/sim"
	"ahbpower/internal/stats"
	"ahbpower/internal/workload"
)

// BusCompareRow is one architecture in the AHB-versus-ASB comparison.
type BusCompareRow struct {
	Bus       string
	Cycles    uint64
	Beats     uint64
	EnergyJ   float64
	PJPerBeat float64
}

// BusCompareResult compares the two high-performance AMBA topologies the
// paper names (§5) under the same traffic: the AHB with its separate
// multiplexed write/read data paths versus the older ASB with one shared
// tri-state data bus. The ASB saves the multiplexer steering and clocking
// energy but pays interleaving churn — writes and reads toggle the same
// wires — and its shared rail carries every master's and slave's load.
// This is the architecture-choice-under-power-constraints analysis the
// paper's introduction motivates.
type BusCompareResult struct {
	Rows []BusCompareRow
	Text string
}

// asbTechModel holds the ASB-side energy coefficients, built from the same
// technology constants as the AHB macromodels.
type asbTechModel struct {
	dec     *power.DecoderModel
	arb     *power.ArbiterModel
	cBusBit float64 // per toggling shared-bus bit (address or data rail)
	cCtlBit float64 // per toggling control bit
	cTurn   float64 // per data-bus direction change (tri-state turnaround)
}

func newASBModel(nMasters, nSlaves int, tech power.Tech) (*asbTechModel, error) {
	dec, err := power.NewDecoderModel(max(2, nSlaves), tech)
	if err != nil {
		return nil, err
	}
	arb, err := power.NewArbiterModel(nMasters, tech)
	if err != nil {
		return nil, err
	}
	loads := float64(nMasters+nSlaves) / 2
	return &asbTechModel{
		dec:     dec,
		arb:     arb,
		cBusBit: tech.CO + tech.CPD*loads,
		cCtlBit: tech.CPD + tech.CO,
		cTurn:   tech.CPD * float64(nMasters+nSlaves),
	}, nil
}

// CompareBuses runs the paper-style workload on an AHB and an ASB of the
// same shape and compares energy per transferred beat. Workload
// generation is deterministic per configuration, so handing the same
// configurations to the engine (AHB side) and generating locally (ASB
// side) yields identical traffic.
func CompareBuses(cycles uint64) (*BusCompareResult, error) {
	tech := power.DefaultTech()
	cfgs := make([]workload.Config, 2)
	seqs := make([][]ahb.Sequence, 2)
	for m := 0; m < 2; m++ {
		cfgs[m] = workload.PaperTestbench(m, int(cycles)/100+2)
		s, err := workload.Generate(cfgs[m])
		if err != nil {
			return nil, err
		}
		seqs[m] = s
	}

	ahbRow, err := runAHBCompare(cycles, cfgs)
	if err != nil {
		return nil, err
	}
	asbRow, err := runASBCompare(cycles, seqs, tech)
	if err != nil {
		return nil, err
	}

	res := &BusCompareResult{Rows: []BusCompareRow{*ahbRow, *asbRow}}
	var b strings.Builder
	b.WriteString("AHB versus ASB under identical traffic\n")
	fmt.Fprintf(&b, "  %-5s %-8s %-8s %-12s %-10s\n", "bus", "cycles", "beats", "energy", "pJ/beat")
	for _, r := range res.Rows {
		fmt.Fprintf(&b, "  %-5s %-8d %-8d %-12s %-10.2f\n",
			r.Bus, r.Cycles, r.Beats, core.FormatEnergy(r.EnergyJ), r.PJPerBeat)
	}
	res.Text = b.String()
	return res, nil
}

func runAHBCompare(cycles uint64, cfgs []workload.Config) (*BusCompareRow, error) {
	res := engine.RunOne(context.Background(), engine.Scenario{
		Name:      "ahb",
		System:    core.PaperSystem(),
		Analyzer:  core.AnalyzerConfig{Style: core.StyleGlobal},
		Workloads: cfgs,
		Cycles:    cycles,
	})
	if res.Err != nil {
		return nil, res.Err
	}
	row := &BusCompareRow{Bus: "AHB", Cycles: res.Report.Cycles, Beats: res.Beats, EnergyJ: res.Report.TotalEnergy}
	if res.Beats > 0 {
		row.PJPerBeat = res.Report.TotalEnergy / float64(res.Beats) * 1e12
	}
	return row, nil
}

func runASBCompare(cycles uint64, ahbSeqs [][]ahb.Sequence, tech power.Tech) (*BusCompareRow, error) {
	k := sim.NewKernel()
	bus, err := asb.New(k, asb.Config{
		NumMasters: 2,
		NumSlaves:  3,
		Regions: []asb.Region{
			{Start: 0, Size: 0x1000, Slave: 0},
			{Start: 0x1000, Size: 0x1000, Slave: 1},
			{Start: 0x2000, Size: 0x1000, Slave: 2},
		},
		ClockPeriod: 10 * sim.Nanosecond,
		DataWidth:   32,
	})
	if err != nil {
		return nil, err
	}
	var masters []*asb.Master
	for m := 0; m < 2; m++ {
		mm, err := asb.NewMaster(bus, m)
		if err != nil {
			return nil, err
		}
		mm.Enqueue(convertSeqs(ahbSeqs[m])...)
		masters = append(masters, mm)
	}
	for s := 0; s < 3; s++ {
		if _, err := asb.NewMemorySlave(bus, s, 0); err != nil {
			return nil, err
		}
	}

	model, err := newASBModel(2, 3, tech)
	if err != nil {
		return nil, err
	}
	var energy float64
	var prev asb.CycleInfo
	have := false
	var lastActive uint8
	haveActive := false
	bus.OnCycle(func(ci asb.CycleInfo) {
		active := ci.Tran == asb.TranNonSeq || ci.Tran == asb.TranSeq
		if have {
			hdAddr := stats.Hamming32(prev.Addr, ci.Addr)
			hdBD := stats.Hamming32(prev.BD, ci.BD)
			ctl := packASBCtl(ci)
			hdCtl := stats.Hamming(packASBCtl(prev), ctl)
			hdReq := stats.Hamming(uint64(prev.Requests), uint64(ci.Requests))
			idleHO := !active && haveActive &&
				(ci.Handover || ci.Requests&(1<<lastActive) == 0 || ci.Master != lastActive)
			c := model.cBusBit*float64(hdAddr+hdBD) + model.cCtlBit*float64(hdCtl)
			if prev.Write != ci.Write && active {
				c += model.cTurn // tri-state turnaround
			}
			energy += tech.EnergyPerCap(c)
			energy += model.dec.Energy(stats.Hamming(encodeASBSel(prev.SelIdx), encodeASBSel(ci.SelIdx)))
			energy += model.arb.Energy(hdReq, 0, ci.Handover, idleHO)
		}
		if active {
			lastActive = ci.Master
			haveActive = true
		}
		prev = ci
		have = true
	})

	if err := k.RunCycles(bus.Clk, cycles); err != nil {
		return nil, err
	}
	var beats uint64
	for _, m := range masters {
		beats += m.Beats()
	}
	row := &BusCompareRow{Bus: "ASB", Cycles: bus.Cycles(), Beats: beats, EnergyJ: energy}
	if beats > 0 {
		row.PJPerBeat = energy / float64(beats) * 1e12
	}
	return row, nil
}

func packASBCtl(ci asb.CycleInfo) uint64 {
	v := uint64(ci.Tran) & 3
	if ci.Write {
		v |= 4
	}
	if ci.Wait {
		v |= 8
	}
	return v
}

func encodeASBSel(idx int) uint64 {
	if idx >= 0 {
		return uint64(idx)
	}
	return 3 // spare code
}

// convertSeqs maps AHB workload sequences onto ASB operations (single
// transfers and incrementing bursts carry over directly).
func convertSeqs(in []ahb.Sequence) []asb.Sequence {
	out := make([]asb.Sequence, 0, len(in))
	for _, s := range in {
		var ops []asb.Op
		for _, op := range s.Ops {
			switch op.Kind {
			case ahb.OpWrite:
				ops = append(ops, asb.Op{Kind: asb.OpWrite, Addr: op.Addr, Data: op.Data})
			case ahb.OpRead:
				ops = append(ops, asb.Op{Kind: asb.OpRead, Addr: op.Addr, Beats: op.Beats})
			}
		}
		out = append(out, asb.Sequence{Ops: ops, IdleAfter: s.IdleAfter})
	}
	return out
}
