package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"ahbpower/internal/core"
	"ahbpower/internal/engine"
	"ahbpower/internal/power"
	"ahbpower/internal/workload"
)

// GranularityResult is the §3 ablation: instruction-set granularity versus
// prediction accuracy. A coarse model (energy per activity mode, 4
// "instructions") and the paper's fine model (energy per transition, 10
// instructions) are characterized on one workload and used to predict the
// energy of a different workload from instruction counts alone.
type GranularityResult struct {
	MeasuredJ float64
	CoarsePct float64 // prediction error of the per-state model
	FinePct   float64 // prediction error of the per-transition model
	Text      string
}

// Granularity runs the granularity ablation: characterize on seed A's
// traffic, predict seed B's measured energy. The train and test runs are
// independent scenarios and execute as one parallel batch.
func Granularity(cycles uint64) (*GranularityResult, error) {
	scenario := func(name string, seedOffset int64) engine.Scenario {
		var cfgs []workload.Config
		for m := 0; m < 2; m++ {
			cfg := workload.PaperTestbench(m, int(cycles)/100+2)
			cfg.Seed += seedOffset
			cfgs = append(cfgs, cfg)
		}
		return engine.Scenario{
			Name:      name,
			System:    core.PaperSystem(),
			Analyzer:  core.AnalyzerConfig{Style: core.StyleGlobal},
			Workloads: cfgs,
			Cycles:    cycles,
		}
	}
	results := engine.Run(context.Background(), []engine.Scenario{
		scenario("train", 0),
		scenario("test", 0x1000),
	})
	if err := engine.FirstError(results); err != nil {
		return nil, err
	}
	train, test := results[0], results[1]

	// Characterize on the training run.
	fineAvg := map[power.Instruction]float64{}
	coarseEnergy := map[power.State]float64{}
	coarseCount := map[power.State]uint64{}
	for _, st := range train.Stats {
		fineAvg[st.Instruction] = st.AverageEnergy()
		coarseEnergy[st.Instruction.To] += st.Energy
		coarseCount[st.Instruction.To] += st.Count
	}
	coarseAvg := map[power.State]float64{}
	for s, e := range coarseEnergy {
		if coarseCount[s] > 0 {
			coarseAvg[s] = e / float64(coarseCount[s])
		}
	}

	// Predict the test run from its instruction counts.
	var measured float64
	for _, st := range test.Stats {
		measured += st.Energy
	}
	var finePred, coarsePred float64
	for _, st := range test.Stats {
		if avg, ok := fineAvg[st.Instruction]; ok {
			finePred += avg * float64(st.Count)
		} else {
			// Unseen instruction: fall back to the coarse estimate.
			finePred += coarseAvg[st.Instruction.To] * float64(st.Count)
		}
		coarsePred += coarseAvg[st.Instruction.To] * float64(st.Count)
	}
	res := &GranularityResult{
		MeasuredJ: measured,
		CoarsePct: 100 * math.Abs(coarsePred-measured) / measured,
		FinePct:   100 * math.Abs(finePred-measured) / measured,
	}
	var b strings.Builder
	b.WriteString("Instruction-set granularity ablation (characterize on A, predict B)\n")
	fmt.Fprintf(&b, "  measured            %s\n", core.FormatEnergy(measured))
	fmt.Fprintf(&b, "  coarse (4 states)   %s  err %.2f%%\n", core.FormatEnergy(coarsePred), res.CoarsePct)
	fmt.Fprintf(&b, "  fine (transitions)  %s  err %.2f%%\n", core.FormatEnergy(finePred), res.FinePct)
	res.Text = b.String()
	return res, nil
}

// StyleResult is the Fig. 1 ablation: the three power-model integration
// styles compared on total energy and relative disagreement.
type StyleResult struct {
	EnergyJ map[string]float64
	Text    string
}

// ModelStyles runs the same simulation under each integration style, as
// one parallel batch (the runs are independent; results come back in
// style order regardless of completion order).
func ModelStyles(cycles uint64) (*StyleResult, error) {
	styles := []core.Style{core.StyleGlobal, core.StyleLocal, core.StylePrivate}
	scs := make([]engine.Scenario, len(styles))
	for i, style := range styles {
		scs[i] = engine.Scenario{
			Name:     style.String(),
			System:   core.PaperSystem(),
			Analyzer: core.AnalyzerConfig{Style: style},
			Cycles:   cycles,
		}
	}
	results := engine.Run(context.Background(), scs)
	if err := engine.FirstError(results); err != nil {
		return nil, err
	}
	res := &StyleResult{EnergyJ: map[string]float64{}}
	var b strings.Builder
	b.WriteString("Power-model style ablation (identical workload)\n")
	ref := results[0].Report.TotalEnergy
	for i, style := range styles {
		e := results[i].Report.TotalEnergy
		res.EnergyJ[style.String()] = e
		fmt.Fprintf(&b, "  %-8s %s (%.1f%% vs global)\n", style, core.FormatEnergy(e), 100*(e/ref-1))
	}
	res.Text = b.String()
	return res, nil
}

// ParametricResult is the A3 sweep: macromodel energy versus the number of
// slaves (decoder) and datapath width (mux), demonstrating that the models
// are parametric as §5.1 requires.
type ParametricResult struct {
	DecoderPJ map[int]float64 // per HD_IN=1 transition
	MuxPJ     map[int]float64 // per 1-bit select toggle
	Text      string
}

// Parametric evaluates the closed-form models over parameter sweeps.
func Parametric() (*ParametricResult, error) {
	tech := power.DefaultTech()
	res := &ParametricResult{DecoderPJ: map[int]float64{}, MuxPJ: map[int]float64{}}
	var b strings.Builder
	b.WriteString("Parametric macromodels\n  decoder E(HD_IN=1) by n_O:\n")
	for _, nO := range []int{2, 3, 4, 8, 16} {
		m, err := power.NewDecoderModel(nO, tech)
		if err != nil {
			return nil, err
		}
		pj := m.Energy(1) * 1e12
		res.DecoderPJ[nO] = pj
		fmt.Fprintf(&b, "    n_O=%-3d %7.2f pJ\n", nO, pj)
	}
	b.WriteString("  mux E(HD_SEL=1) by width (n=3):\n")
	for _, w := range []int{8, 16, 32, 64} {
		m, err := power.NewMuxModel(w, 3, tech)
		if err != nil {
			return nil, err
		}
		pj := m.Energy(0, 1, 0) * 1e12
		res.MuxPJ[w] = pj
		fmt.Fprintf(&b, "    w=%-4d %7.2f pJ\n", w, pj)
	}
	res.Text = b.String()
	return res, nil
}
