package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"ahbpower/internal/amba/ahb"
	"ahbpower/internal/charact"
	"ahbpower/internal/core"
	"ahbpower/internal/engine"
	"ahbpower/internal/gate"
	"ahbpower/internal/power"
	"ahbpower/internal/stats"
	"ahbpower/internal/synth"
)

// CoSimResult is the gate-level co-simulation validation: the decoder's
// real input sequence from a bus run, replayed through its synthesized
// gate netlist, compared against the system-level macromodels. This goes
// beyond the paper's random-vector SIS validation (V1): it checks the
// macromodels under the correlated activity of actual bus traffic.
type CoSimResult struct {
	Cycles       uint64
	GateJ        float64 // gate-level truth
	PaperJ       float64 // the paper's closed-form decoder model
	FittedJ      float64 // coefficients fitted by internal/charact
	PaperErrPct  float64
	FittedErrPct float64
	Text         string
}

// CoSimDecoder runs the paper testbench, records the decoder input
// sequence through the engine's Setup hook, replays it into the
// gate-level NOT/AND decoder and compares energies.
func CoSimDecoder(cycles uint64) (*CoSimResult, error) {
	tech := power.DefaultTech()
	cfg := core.PaperSystem()
	nSlaves := cfg.NumSlaves
	// Record the decoder input code per cycle (slave index; the spare
	// code for unmapped). The functional run needs no power analyzer.
	var seq []uint64
	run := engine.RunOne(context.Background(), engine.Scenario{
		Name:         "cosim",
		System:       cfg,
		Cycles:       cycles,
		SkipAnalyzer: true,
		Setup: func(sys *core.System) error {
			sys.Bus.OnCycle(func(ci ahb.CycleInfo) {
				code := uint64(nSlaves)
				if ci.SelIdx >= 0 {
					code = uint64(ci.SelIdx)
				}
				seq = append(seq, code)
			})
			return nil
		},
	})
	if run.Err != nil {
		return nil, run.Err
	}

	// Gate-level truth: a decoder with nSlaves+1 outputs so the spare
	// code is representable.
	dec, err := synth.BuildDecoder(nSlaves + 1)
	if err != nil {
		return nil, err
	}
	ev, err := gate.NewEval(dec.Netlist, gate.Tech{VDD: tech.VDD, CPD: tech.CPD, COut: tech.CO})
	if err != nil {
		return nil, err
	}
	// Models sized identically to the netlist.
	paperModel, err := power.NewDecoderModel(nSlaves+1, tech)
	if err != nil {
		return nil, err
	}
	fit, err := charact.CharacterizeDecoder(nSlaves+1, 2000, 7, tech)
	if err != nil {
		return nil, err
	}

	// Warm up to the first code without counting its transition.
	if len(seq) == 0 {
		return nil, fmt.Errorf("experiments: no cycles recorded")
	}
	ev.SetInputs(seq[0])
	ev.Settle()
	ev.ResetCounters()
	prev := seq[0]
	var paperJ, fittedJ float64
	for _, code := range seq[1:] {
		ev.SetInputs(code)
		ev.Settle()
		hd := stats.Hamming(prev, code)
		paperJ += paperModel.Energy(hd)
		if hd > 0 {
			fittedJ += fit.Coef[0]*float64(hd) + fit.Coef[1]
		}
		prev = code
	}
	gateJ := ev.Energy()

	res := &CoSimResult{
		Cycles:  uint64(len(seq)),
		GateJ:   gateJ,
		PaperJ:  paperJ,
		FittedJ: fittedJ,
	}
	if gateJ > 0 {
		res.PaperErrPct = 100 * math.Abs(paperJ-gateJ) / gateJ
		res.FittedErrPct = 100 * math.Abs(fittedJ-gateJ) / gateJ
	}
	var b strings.Builder
	b.WriteString("Decoder co-simulation on real bus traffic (gate netlist as truth)\n")
	fmt.Fprintf(&b, "  cycles            %d\n", res.Cycles)
	fmt.Fprintf(&b, "  gate-level truth  %s\n", core.FormatEnergy(gateJ))
	fmt.Fprintf(&b, "  paper formula     %s  (err %.1f%%)\n", core.FormatEnergy(paperJ), res.PaperErrPct)
	fmt.Fprintf(&b, "  fitted model      %s  (err %.1f%%)\n", core.FormatEnergy(fittedJ), res.FittedErrPct)
	res.Text = b.String()
	return res, nil
}
