package experiments

import (
	"context"
	"fmt"
	"strings"

	"ahbpower/internal/core"
	"ahbpower/internal/engine"
	"ahbpower/internal/workload"
)

// customScenario is the paper system with one workload configuration
// driving both masters (seed-shifted for the second, as in
// core.LoadWorkload).
func customScenario(name string, cycles uint64, cfg workload.Config, an core.AnalyzerConfig) engine.Scenario {
	return engine.Scenario{
		Name:      name,
		System:    core.PaperSystem(),
		Analyzer:  an,
		Workloads: []workload.Config{cfg},
		Cycles:    cycles,
	}
}

// BurstRow is one line of the burst-length ablation.
type BurstRow struct {
	Beats     int
	Energy    float64
	DataBeats uint64
	PJPerBeat float64
	// M2SPJPerBeat isolates the masters-to-slaves datapath — the block
	// whose address/control churn bursts amortize; the total per-beat
	// number also carries idle-gap and arbitration energy, which depends
	// on workload duty cycle rather than burst length.
	M2SPJPerBeat float64
}

// BurstResult is the burst-length ablation: fixed-length bursts amortize
// address/control churn and arbitration over more data beats, lowering
// energy per beat — the quantitative argument for burst-oriented traffic
// that the AHB's burst support exists to serve.
type BurstResult struct {
	Rows []BurstRow
	Text string
}

// BurstAblation sweeps the burst length of the paper workload. The data
// pattern is correlated (low-activity), as in the DMA-style streams bursts
// exist for: with random data the payload churn dominates and hides the
// address/control/arbitration overhead that bursts amortize.
func BurstAblation(cycles uint64) (*BurstResult, error) {
	lengths := []int{1, 4, 8, 16}
	scs := make([]engine.Scenario, len(lengths))
	for i, beats := range lengths {
		cfg := workload.PaperTestbench(0, int(cycles)/60+2)
		cfg.BurstBeats = beats
		cfg.Pattern = workload.PatternLowActivity
		// Keep roughly constant data volume per sequence.
		cfg.PairsMin = maxInt(1, cfg.PairsMin/beats)
		cfg.PairsMax = maxInt(cfg.PairsMin, cfg.PairsMax/beats)
		scs[i] = customScenario(fmt.Sprintf("burst%d", beats), cycles, cfg,
			core.AnalyzerConfig{Style: core.StyleGlobal})
	}
	results := engine.Run(context.Background(), scs)
	if err := engine.FirstError(results); err != nil {
		return nil, err
	}
	res := &BurstResult{}
	var b strings.Builder
	b.WriteString("Burst-length ablation (energy per transferred beat, low-activity data)\n")
	fmt.Fprintf(&b, "  %-6s %-12s %-10s %-10s %-12s\n", "beats", "energy", "xfers", "pJ/beat", "M2S pJ/beat")
	for i, beats := range lengths {
		r, moved := results[i].Report, results[i].Beats
		row := BurstRow{Beats: beats, Energy: r.TotalEnergy, DataBeats: moved}
		if moved > 0 {
			row.PJPerBeat = r.TotalEnergy / float64(moved) * 1e12
			row.M2SPJPerBeat = r.BlockEnergy["M2S"] / float64(moved) * 1e12
		}
		res.Rows = append(res.Rows, row)
		fmt.Fprintf(&b, "  %-6d %-12s %-10d %-10.2f %-12.2f\n",
			beats, core.FormatEnergy(row.Energy), moved, row.PJPerBeat, row.M2SPJPerBeat)
	}
	res.Text = b.String()
	return res, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// PatternRow is one line of the data-pattern ablation.
type PatternRow struct {
	Pattern   string
	Energy    float64
	PJPerBeat float64
}

// PatternResult is the data-pattern ablation: the macromodels are driven
// by Hamming distances, so correlated (low-activity) data must cost
// visibly less than random data — the effect the paper's input-parameter
// choice (switching activity, Hamming distance) exists to capture.
type PatternResult struct {
	Rows []PatternRow
	Text string
}

// PatternAblation compares data patterns under identical traffic shape.
func PatternAblation(cycles uint64) (*PatternResult, error) {
	patterns := []workload.Pattern{workload.PatternRandom, workload.PatternLowActivity, workload.PatternCounter}
	scs := make([]engine.Scenario, len(patterns))
	for i, p := range patterns {
		cfg := workload.PaperTestbench(0, int(cycles)/60+2)
		cfg.Pattern = p
		scs[i] = customScenario(p.String(), cycles, cfg, core.AnalyzerConfig{Style: core.StyleGlobal})
	}
	results := engine.Run(context.Background(), scs)
	if err := engine.FirstError(results); err != nil {
		return nil, err
	}
	res := &PatternResult{}
	var b strings.Builder
	b.WriteString("Data-pattern ablation (identical traffic shape)\n")
	fmt.Fprintf(&b, "  %-14s %-12s %-10s\n", "pattern", "energy", "pJ/beat")
	for i, p := range patterns {
		r, moved := results[i].Report, results[i].Beats
		row := PatternRow{Pattern: p.String(), Energy: r.TotalEnergy}
		if moved > 0 {
			row.PJPerBeat = r.TotalEnergy / float64(moved) * 1e12
		}
		res.Rows = append(res.Rows, row)
		fmt.Fprintf(&b, "  %-14s %-12s %-10.2f\n", row.Pattern, core.FormatEnergy(row.Energy), row.PJPerBeat)
	}
	res.Text = b.String()
	return res, nil
}

// DPMRow is one line of the dynamic-power-management sweep.
type DPMRow struct {
	Threshold  int
	GrossJ     float64
	NetSavedJ  float64
	SavingsPct float64
	Wakeups    uint64
}

// DPMResult is the run-time power-management extension (§4): what a
// clock-gating controller over the datapath blocks would save, as a
// function of its idle threshold.
type DPMResult struct {
	TotalJ float64
	Rows   []DPMRow
	Text   string
}

// DPMSweep evaluates gating thresholds against the paper workload, one
// scenario per threshold, run as a parallel batch.
func DPMSweep(cycles uint64, wakeEnergy float64) (*DPMResult, error) {
	thresholds := []int{1, 2, 4, 8, 16, 32}
	scs := make([]engine.Scenario, len(thresholds))
	for i, th := range thresholds {
		scs[i] = engine.Scenario{
			Name:   fmt.Sprintf("dpm%d", th),
			System: core.PaperSystem(),
			Analyzer: core.AnalyzerConfig{
				Style: core.StyleGlobal,
				DPM:   &core.DPMConfig{IdleThreshold: th, WakeEnergy: wakeEnergy},
			},
			Cycles: cycles,
		}
	}
	results := engine.Run(context.Background(), scs)
	if err := engine.FirstError(results); err != nil {
		return nil, err
	}
	res := &DPMResult{}
	var b strings.Builder
	b.WriteString("Dynamic power management sweep (gate the mux clock trees after N idle cycles)\n")
	fmt.Fprintf(&b, "  %-10s %-12s %-10s %-8s\n", "threshold", "net saved", "% of total", "wakeups")
	for i, th := range thresholds {
		r, est := results[i].Report, results[i].DPM
		res.TotalJ = r.TotalEnergy
		row := DPMRow{
			Threshold:  th,
			GrossJ:     est.GrossSaved,
			NetSavedJ:  est.NetSaved(),
			SavingsPct: est.SavingsPct(r.TotalEnergy),
			Wakeups:    est.Wakeups,
		}
		res.Rows = append(res.Rows, row)
		fmt.Fprintf(&b, "  %-10d %-12s %-10.2f %-8d\n", th, core.FormatEnergy(row.NetSavedJ), row.SavingsPct, row.Wakeups)
	}
	res.Text = b.String()
	return res, nil
}
