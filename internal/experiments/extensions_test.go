package experiments

import "testing"

func TestBurstAblationAmortizes(t *testing.T) {
	res, err := BurstAblation(6000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	single, burst16 := res.Rows[0], res.Rows[3]
	if single.Beats != 1 || burst16.Beats != 16 {
		t.Fatalf("unexpected row order: %+v", res.Rows)
	}
	if single.DataBeats == 0 || burst16.DataBeats == 0 {
		t.Fatal("no data moved")
	}
	// Long bursts amortize the address/control churn of the M2S datapath:
	// with correlated payloads its per-beat energy must drop visibly from
	// single transfers to 16-beat bursts. (The total per-beat number also
	// carries idle-gap and arbitration energy, which track workload duty
	// cycle, not burst length — so it is reported but not asserted.)
	if burst16.M2SPJPerBeat >= single.M2SPJPerBeat*0.9 {
		t.Errorf("16-beat bursts %.2f M2S pJ/beat must be well below singles %.2f",
			burst16.M2SPJPerBeat, single.M2SPJPerBeat)
	}
	if burst16.PJPerBeat > single.PJPerBeat*1.1 {
		t.Errorf("total per-beat energy should not grow with bursts: %.2f vs %.2f",
			burst16.PJPerBeat, single.PJPerBeat)
	}
}

func TestPatternAblationTracksActivity(t *testing.T) {
	res, err := PatternAblation(6000)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]PatternRow{}
	for _, r := range res.Rows {
		byName[r.Pattern] = r
	}
	rnd := byName["random"]
	low := byName["low-activity"]
	cnt := byName["counter"]
	if rnd.PJPerBeat == 0 || low.PJPerBeat == 0 || cnt.PJPerBeat == 0 {
		t.Fatalf("missing rows: %+v", res.Rows)
	}
	// Hamming-distance-driven models: random (HD~16) must cost clearly
	// more per beat than correlated data (HD~2).
	if low.PJPerBeat >= rnd.PJPerBeat*0.85 {
		t.Errorf("low-activity %.2f pJ/beat must be well below random %.2f", low.PJPerBeat, rnd.PJPerBeat)
	}
	if cnt.PJPerBeat >= rnd.PJPerBeat*0.85 {
		t.Errorf("counter %.2f pJ/beat must be well below random %.2f", cnt.PJPerBeat, rnd.PJPerBeat)
	}
}

func TestDPMSweepShape(t *testing.T) {
	res, err := DPMSweep(8000, 5e-12)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	// Invariants: a later gate can never save more gross energy or wake
	// more often; net savings depend on the wake cost and need not be
	// monotone. At least one setting must save net energy on the
	// gap-heavy paper workload.
	anyPositive := false
	for i, r := range res.Rows {
		if i > 0 && r.GrossJ > res.Rows[i-1].GrossJ+1e-15 {
			t.Errorf("threshold %d gross-saves more than threshold %d", r.Threshold, res.Rows[i-1].Threshold)
		}
		if i > 0 && r.Wakeups > res.Rows[i-1].Wakeups {
			t.Errorf("threshold %d wakes more than threshold %d", r.Threshold, res.Rows[i-1].Threshold)
		}
		if r.NetSavedJ > 0 {
			anyPositive = true
		}
		if r.SavingsPct > 30 {
			t.Errorf("threshold %d: implausible savings %.1f%%", r.Threshold, r.SavingsPct)
		}
	}
	if !anyPositive {
		t.Error("no threshold saves energy on a gap-heavy workload")
	}
}

func TestDPMHighWakeCostCanGoNegative(t *testing.T) {
	// With an absurd wake cost, eager gating must lose energy — the
	// estimator must report that honestly.
	res, err := DPMSweep(4000, 5e-9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0].NetSavedJ >= 0 {
		t.Errorf("threshold 1 with 5 nJ wake cost should lose energy, saved %g", res.Rows[0].NetSavedJ)
	}
}

func TestCoSimDecoderFittedBeatsPaperFormula(t *testing.T) {
	res, err := CoSimDecoder(5000)
	if err != nil {
		t.Fatal(err)
	}
	if res.GateJ <= 0 {
		t.Fatal("gate-level truth must be positive")
	}
	// The characterized model must track real traffic far better than the
	// a-priori closed form — the reason the methodology has a
	// characterization stage.
	if res.FittedErrPct >= res.PaperErrPct {
		t.Errorf("fitted err %.1f%% must beat paper-formula err %.1f%%",
			res.FittedErrPct, res.PaperErrPct)
	}
	if res.FittedErrPct > 20 {
		t.Errorf("fitted model err %.1f%%, want <20%% on real traffic", res.FittedErrPct)
	}
}

func TestImplAblation(t *testing.T) {
	res, err := ImplAblation(8, 2000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.PJPerHD <= 0 || r.Gates == 0 {
			t.Errorf("variant %q: gates=%d pJ/HD=%v", r.Variant, r.Gates, r.PJPerHD)
		}
	}
	// The naive NAND mapping inflates the netlist; optimization must
	// recover some of it.
	if res.Rows[1].Gates <= res.Rows[0].Gates {
		t.Error("NAND mapping must use more gates than the NOT/AND structure")
	}
	if res.Rows[2].Gates >= res.Rows[1].Gates {
		t.Error("optimization must shrink the mapped netlist")
	}
	// Implementation choice must visibly shift the energy coefficient —
	// the effect the experiment exists to demonstrate.
	if res.Rows[1].PJPerHD <= res.Rows[0].PJPerHD {
		t.Error("the larger NAND netlist must switch more capacitance per HD")
	}
}

func TestCompareBusesShape(t *testing.T) {
	res, err := CompareBuses(8000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	a, s := res.Rows[0], res.Rows[1]
	if a.Bus != "AHB" || s.Bus != "ASB" {
		t.Fatalf("row order: %+v", res.Rows)
	}
	if a.Beats == 0 || s.Beats == 0 {
		t.Fatal("both buses must move data")
	}
	// Both buses carry the same traffic at zero wait states, so the beat
	// counts must be close.
	ratio := float64(a.Beats) / float64(s.Beats)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("beat counts diverge: AHB %d vs ASB %d", a.Beats, s.Beats)
	}
	// Energies must be the same order of magnitude: the architectures
	// trade mux steering (AHB) against shared-rail loading (ASB).
	eratio := a.PJPerBeat / s.PJPerBeat
	if eratio < 0.3 || eratio > 3.5 {
		t.Errorf("per-beat energies diverge beyond plausibility: AHB %.1f vs ASB %.1f pJ/beat",
			a.PJPerBeat, s.PJPerBeat)
	}
}
