package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"ahbpower/internal/core"
	"ahbpower/internal/engine"
	"ahbpower/internal/topo"
)

// TopoFamilyRow is one topology in the declarative-topology comparison.
type TopoFamilyRow struct {
	Name      string
	Slaves    int
	Cycles    uint64
	Beats     uint64
	EnergyJ   float64
	AvgPowerW float64
	PJPerBeat float64
	// MuxSharePct is the multiplexer block share of total energy — the
	// component the address-map shape moves, since slave re-selection is
	// what toggles the data-path muxes.
	MuxSharePct float64
}

// TopologyFamiliesResult compares scenario families only the declarative
// topology API can express — non-uniform address maps and per-slave
// wait-state mixes — against the paper's uniform baseline, under the
// same traffic. It also runs the paper system through both API
// generations (count-based and explicit topology) and checks the
// energies are bit-identical, exercising the canonicalization contract
// end to end.
type TopologyFamiliesResult struct {
	Rows []TopoFamilyRow
	// TwinIdentical reports whether the count-based paper system and its
	// explicit topology twin produced Float64bits-identical total energy.
	TwinIdentical bool
	Text          string
}

// paperTwinTopology is the explicit-topology form of core.PaperSystem():
// two active masters, a default master, three 4 KB slaves at 100 MHz.
func paperTwinTopology() topo.Topology {
	return topo.Topology{
		Masters: []topo.Master{{}, {}, {Default: true}},
		Slaves: []topo.Slave{
			{Regions: []topo.AddrRange{{Start: 0x0000, Size: 0x1000}}},
			{Regions: []topo.AddrRange{{Start: 0x1000, Size: 0x1000}}},
			{Regions: []topo.AddrRange{{Start: 0x2000, Size: 0x1000}}},
		},
	}
}

// nonUniformTopology keeps the paper's 12 KB span and three slaves but
// gives slave 0 an 8 KB region and squeezes the other two into 2 KB
// each, so two thirds of the uniformly drawn traffic lands on one slave
// and the data-path muxes re-select far less often.
func nonUniformTopology() topo.Topology {
	return topo.Topology{
		Name:    "nonuniform",
		Masters: []topo.Master{{}, {}, {Default: true}},
		Slaves: []topo.Slave{
			{Name: "big", Regions: []topo.AddrRange{{Start: 0x0000, Size: 0x2000}}},
			{Name: "smallA", Regions: []topo.AddrRange{{Start: 0x2000, Size: 0x800}}},
			{Name: "smallB", Regions: []topo.AddrRange{{Start: 0x2800, Size: 0x800}}},
		},
	}
}

// waitMixTopology keeps the paper's uniform 4 KB map but gives each
// slave a different wait-state count (0, 2, 4) — a per-slave mix the
// count-based API could only approximate with one uniform value.
func waitMixTopology() topo.Topology {
	return topo.Topology{
		Name:    "waitmix",
		Masters: []topo.Master{{}, {}, {Default: true}},
		Slaves: []topo.Slave{
			{Name: "fast", Waits: 0, Regions: []topo.AddrRange{{Start: 0x0000, Size: 0x1000}}},
			{Name: "mid", Waits: 2, Regions: []topo.AddrRange{{Start: 0x1000, Size: 0x1000}}},
			{Name: "slow", Waits: 4, Regions: []topo.AddrRange{{Start: 0x2000, Size: 0x1000}}},
		},
	}
}

// TopologyFamilies runs the paper baseline (through both API forms) and
// the two topology-only families under the paper workload and compares
// their bus power.
func TopologyFamilies(cycles uint64) (*TopologyFamiliesResult, error) {
	twin := paperTwinTopology()
	nonUniform := nonUniformTopology()
	waitMix := waitMixTopology()
	scens := []engine.Scenario{
		{Name: "paper-counts", System: core.PaperSystem(), Cycles: cycles},
		{Name: "paper-topology", Topo: &twin, Cycles: cycles},
		{Name: "nonuniform-map", Topo: &nonUniform, Cycles: cycles},
		{Name: "wait-mix", Topo: &waitMix, Cycles: cycles},
	}
	results := engine.Run(context.Background(), scens)
	out := &TopologyFamiliesResult{}
	for i := range results {
		res := &results[i]
		if res.Err != nil {
			return nil, res.Err
		}
		if len(res.Violations) > 0 {
			return nil, fmt.Errorf("experiments: %s: %d protocol violations (first: %v)",
				res.Scenario.Name, len(res.Violations), res.Violations[0])
		}
		muxPct := 100 * (res.Report.BlockShare["M2S"] + res.Report.BlockShare["S2M"])
		out.Rows = append(out.Rows, TopoFamilyRow{
			Name:        res.Scenario.Name,
			Slaves:      len(res.Scenario.Topology().Slaves),
			Cycles:      res.Report.Cycles,
			Beats:       res.Beats,
			EnergyJ:     res.Report.TotalEnergy,
			AvgPowerW:   res.Report.AvgPower,
			PJPerBeat:   res.PJPerBeat(),
			MuxSharePct: muxPct,
		})
	}
	out.TwinIdentical = math.Float64bits(out.Rows[0].EnergyJ) == math.Float64bits(out.Rows[1].EnergyJ)

	var b strings.Builder
	fmt.Fprintf(&b, "Declarative-topology scenario families (paper workload, %d cycles)\n\n", cycles)
	fmt.Fprintf(&b, "%-16s %7s %9s %8s %12s %12s %10s %8s\n",
		"topology", "slaves", "cycles", "beats", "energy_J", "avg_power_W", "pJ/beat", "mux_%")
	for _, r := range out.Rows {
		fmt.Fprintf(&b, "%-16s %7d %9d %8d %12.4e %12.4e %10.3f %8.2f\n",
			r.Name, r.Slaves, r.Cycles, r.Beats, r.EnergyJ, r.AvgPowerW, r.PJPerBeat, r.MuxSharePct)
	}
	b.WriteString("\n")
	if out.TwinIdentical {
		b.WriteString("canonicalization: count-based and explicit-topology paper systems are bit-identical in energy\n")
	} else {
		b.WriteString("canonicalization: WARNING — count-based and explicit-topology paper systems DIVERGED\n")
	}
	base, nu, wm := out.Rows[0], out.Rows[2], out.Rows[3]
	if base.EnergyJ > 0 {
		fmt.Fprintf(&b, "non-uniform map:  %+.2f%% energy vs paper (same traffic and beat count; the address-map shape alone moves decoder/mux select activity)\n",
			100*(nu.EnergyJ-base.EnergyJ)/base.EnergyJ)
		fmt.Fprintf(&b, "wait-state mix:   %+.2f%% energy vs paper (waits on 2 of 3 slaves stretch transfers; per-beat cost %+.2f%%)\n",
			100*(wm.EnergyJ-base.EnergyJ)/base.EnergyJ, 100*(wm.PJPerBeat-base.PJPerBeat)/base.PJPerBeat)
	}
	out.Text = b.String()
	if !out.TwinIdentical {
		return out, fmt.Errorf("experiments: count-based and topology-form paper systems diverged: %g vs %g J",
			out.Rows[0].EnergyJ, out.Rows[1].EnergyJ)
	}
	return out, nil
}
