// Package experiments contains one runner per artifact of the paper's
// evaluation — Table 1, Figures 3-6, the §6 instrumentation-overhead claim
// and the §5.1 macromodel validation — plus the ablations called out in
// DESIGN.md (instruction granularity, power-model style, parametric
// scaling). Each runner returns structured data and a formatted,
// paper-style text block.
package experiments

import (
	"context"
	"fmt"
	"strings"

	"ahbpower/internal/charact"
	"ahbpower/internal/core"
	"ahbpower/internal/engine"
	"ahbpower/internal/power"
	"ahbpower/internal/stats"
)

// PaperTable1 is the published Table 1, used for side-by-side reporting.
// Total energies are as printed (the paper's totals column is internally
// inconsistent with its averages; see DESIGN.md §5), so only the averages
// and percentage shares are meaningful reference points.
var PaperTable1 = []struct {
	Instruction string
	AvgPJ       float64
	SharePct    float64
}{
	{"IDLE_HO_IDLE_HO", 14.7, 11.49},
	{"IDLE_HO_WRITE", 16.7, 0.06},
	{"READ_WRITE", 19.8, 43.0}, // share reconstructed from the total
	{"WRITE_READ", 14.7, 43.0},
	{"READ_IDLE_HO", 22.4, 1.14},
}

// Table1Result is the reproduction of the paper's Table 1.
type Table1Result struct {
	Report *core.Report
	Text   string
}

// runPaper executes the paper testbench (paper system + paper workload)
// through the batch engine and returns the result. Protocol violations
// are treated as errors.
func runPaper(cycles uint64, cfg core.AnalyzerConfig) (engine.Result, error) {
	res := engine.RunOne(context.Background(), engine.Scenario{
		Name:     "paper",
		System:   core.PaperSystem(),
		Analyzer: cfg,
		Cycles:   cycles,
	})
	if res.Err != nil {
		return res, res.Err
	}
	if len(res.Violations) > 0 {
		return res, fmt.Errorf("experiments: %d protocol violations (first: %v)", len(res.Violations), res.Violations[0])
	}
	return res, nil
}

// Table1 reproduces the instruction energy analysis. The paper simulates
// 50 µs at 100 MHz (5000 cycles); pass a larger cycle count for more
// stable percentages.
func Table1(cycles uint64) (*Table1Result, error) {
	res, err := runPaper(cycles, core.AnalyzerConfig{Style: core.StyleGlobal})
	if err != nil {
		return nil, err
	}
	r := res.Report
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 — instruction energy analysis (%d cycles @100 MHz)\n\n", cycles)
	b.WriteString(r.FormatTable())
	b.WriteString("\nPaper reference (averages / shares):\n")
	for _, p := range PaperTable1 {
		fmt.Fprintf(&b, "  %-18s %6.1f pJ %8.2f%%\n", p.Instruction, p.AvgPJ, p.SharePct)
	}
	fmt.Fprintf(&b, "\nEnergy classes: data-transfer %.2f%% (paper ~87%%), arbitration %.2f%% (paper ~12.7%%)\n",
		100*r.DataTransferShare, 100*r.ArbitrationShare)
	return &Table1Result{Report: r, Text: b.String()}, nil
}

// FiguresResult bundles the reproduction of Figs. 3-6.
type FiguresResult struct {
	Report *core.Report
	Total  *stats.Series // Fig. 3
	ARB    *stats.Series // Fig. 4
	M2S    *stats.Series // Fig. 5
	DEC    *stats.Series
	S2M    *stats.Series
	Text   string
}

// Figures reproduces the power-versus-time plots (first 4 µs analyzed in
// the paper) and the sub-block contribution of Fig. 6. window is the
// power-averaging window in seconds.
func Figures(cycles uint64, window float64) (*FiguresResult, error) {
	if window <= 0 {
		// The analyzer silently drops trace collection for non-positive
		// windows, which would leave every series nil here.
		return nil, fmt.Errorf("experiments: figure window=%g s, want > 0", window)
	}
	res, err := runPaper(cycles, core.AnalyzerConfig{Style: core.StyleGlobal, TraceWindow: window})
	if err != nil {
		return nil, err
	}
	r := res.Report
	var b strings.Builder
	fmt.Fprintf(&b, "Figs. 3-5 — windowed power traces (%g ns windows)\n", window*1e9)
	for _, s := range []*stats.Series{r.TraceTotal, r.TraceARB, r.TraceM2S} {
		fmt.Fprintf(&b, "  %-10s points=%-5d mean=%-12s peak=%s\n",
			s.Name, s.Len(), core.FormatPower(s.MeanY()), core.FormatPower(s.MaxY()))
	}
	b.WriteString("\nFig. 6 — sub-block power contribution:\n")
	b.WriteString(r.FormatBreakdown())
	return &FiguresResult{
		Report: r,
		Total:  r.TraceTotal,
		ARB:    r.TraceARB,
		M2S:    r.TraceM2S,
		DEC:    r.TraceDEC,
		S2M:    r.TraceS2M,
		Text:   b.String(),
	}, nil
}

// OverheadResult reports the §6 claim that power instrumentation roughly
// doubles simulation time.
type OverheadResult struct {
	BaselineMS float64
	PerStyleMS map[string]float64
	Slowdown   map[string]float64
	Text       string
}

// Overhead measures wall-clock simulation time without power analysis and
// with each analyzer style, using the engine's RunDuration (simulation
// loop only, excluding construction and workload generation) on a
// single-worker runner so runs never contend for the CPU. Each
// configuration is run three times and the minimum is reported, to
// suppress scheduler and allocator noise.
func Overhead(cycles uint64) (*OverheadResult, error) {
	runner := engine.NewRunner(1)
	run := func(skipAnalyzer bool, style core.Style) (float64, error) {
		best := 0.0
		for rep := 0; rep < 3; rep++ {
			res := runner.Run(context.Background(), []engine.Scenario{{
				Name:         "overhead_" + style.String(),
				System:       core.PaperSystem(),
				Analyzer:     core.AnalyzerConfig{Style: style, RecordActivity: !skipAnalyzer && style != core.StyleGlobal},
				Cycles:       cycles,
				SkipAnalyzer: skipAnalyzer,
			}})[0]
			if res.Err != nil {
				return 0, res.Err
			}
			ms := float64(res.RunDuration.Microseconds()) / 1000
			if rep == 0 || ms < best {
				best = ms
			}
		}
		return best, nil
	}
	base, err := run(true, core.StyleGlobal)
	if err != nil {
		return nil, err
	}
	res := &OverheadResult{
		BaselineMS: base,
		PerStyleMS: map[string]float64{},
		Slowdown:   map[string]float64{},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Instrumentation overhead over %d cycles\n", cycles)
	fmt.Fprintf(&b, "  %-22s %8.2f ms\n", "functional only", base)
	for _, style := range []core.Style{core.StyleGlobal, core.StyleLocal, core.StylePrivate} {
		ms, err := run(false, style)
		if err != nil {
			return nil, err
		}
		res.PerStyleMS[style.String()] = ms
		if base > 0 {
			res.Slowdown[style.String()] = ms / base
		}
		fmt.Fprintf(&b, "  %-22s %8.2f ms  (x%.2f)\n", "power "+style.String(), ms, ms/base)
	}
	b.WriteString("Paper: \"the price to pay ... is a doubling in the simulation time\".\n")
	res.Text = b.String()
	return res, nil
}

// ValidationResult is the §5.1 macromodel-validation experiment: fits of
// the AHB-sized sub-blocks against their gate-level netlists.
type ValidationResult struct {
	Decoder *charact.Fit
	Mux     *charact.Fit
	Arbiter *charact.Fit
	Text    string
}

// Validation characterizes the paper's sub-blocks (3-slave decoder,
// masters mux, 3-master arbiter) at gate level and reports macromodel
// fidelity — the reproduction of "validated using the software SIS".
func Validation(vectors int, seed int64) (*ValidationResult, error) {
	tech := power.DefaultTech()
	dec, err := charact.CharacterizeDecoder(3, vectors, seed, tech)
	if err != nil {
		return nil, err
	}
	// A full 72-bit mux netlist is large; characterize a width-scaled
	// version (the macromodel is linear in w).
	mux, _, err := charact.CharacterizeMux(16, 3, vectors, seed+1, tech)
	if err != nil {
		return nil, err
	}
	arb, err := charact.CharacterizeArbiter(3, vectors, seed+2, tech)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	b.WriteString("Macromodel validation against gate-level netlists (SIS substitute)\n")
	for _, f := range []*charact.Fit{dec, mux, arb} {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	return &ValidationResult{Decoder: dec, Mux: mux, Arbiter: arb, Text: b.String()}, nil
}
