package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestTable1Shape(t *testing.T) {
	res, err := Table1(20000)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Report
	// The headline conclusion: data transfer dominates, arbitration is a
	// small-but-visible slice (paper: ~87% vs ~12.7%).
	if r.DataTransferShare < 0.7 || r.DataTransferShare > 0.95 {
		t.Errorf("data-transfer share=%.1f%%, want ~87%%", 100*r.DataTransferShare)
	}
	if r.ArbitrationShare < 0.05 || r.ArbitrationShare > 0.25 {
		t.Errorf("arbitration share=%.1f%%, want ~12%%", 100*r.ArbitrationShare)
	}
	// Per-instruction averages in the paper's band (14.7-22.4 pJ),
	// allowing a factor ~2 in calibration slack.
	byName := map[string]float64{}
	for _, row := range r.Table {
		if row.Count > 100 {
			byName[row.Instruction] = row.AvgEnergy * 1e12
		}
	}
	for _, name := range []string{"READ_WRITE", "WRITE_READ", "IDLE_HO_IDLE_HO"} {
		pj, ok := byName[name]
		if !ok {
			t.Fatalf("instruction %s missing from table", name)
		}
		if pj < 7 || pj > 45 {
			t.Errorf("%s avg=%.1f pJ, outside band [7,45]", name, pj)
		}
	}
	// Paper ordering: READ_WRITE costs more than WRITE_READ.
	if byName["READ_WRITE"] <= byName["WRITE_READ"] {
		t.Errorf("READ_WRITE (%.1f pJ) must exceed WRITE_READ (%.1f pJ)",
			byName["READ_WRITE"], byName["WRITE_READ"])
	}
	if !strings.Contains(res.Text, "Paper reference") {
		t.Error("text must include the paper reference block")
	}
}

func TestFiguresShape(t *testing.T) {
	// 4 us at 100 MHz = 400 cycles analyzed in the paper; run longer and
	// window at 100 ns as the plots do.
	res, err := Figures(4000, 100e-9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.Len() < 10 {
		t.Fatalf("total trace has %d points", res.Total.Len())
	}
	// Fig. 4 vs Fig. 5: the arbiter dissipates visibly less than the M2S
	// multiplexer.
	if res.ARB.MeanY() >= res.M2S.MeanY() {
		t.Errorf("arbiter mean %g W must be below M2S mean %g W", res.ARB.MeanY(), res.M2S.MeanY())
	}
	// Fig. 6 ordering: M2S dominates; DEC and ARB are minor.
	r := res.Report
	if r.BlockShare["M2S"] < r.BlockShare["S2M"] ||
		r.BlockShare["M2S"] < r.BlockShare["ARB"] ||
		r.BlockShare["M2S"] < r.BlockShare["DEC"] {
		t.Errorf("M2S must dominate the breakdown: %v", r.BlockShare)
	}
	// Traces decompose: total = sum of block traces, pointwise.
	for i, p := range res.Total.Points {
		sum := res.ARB.Points[i].Y + res.M2S.Points[i].Y + res.DEC.Points[i].Y + res.S2M.Points[i].Y
		if math.Abs(sum-p.Y) > 1e-9*math.Abs(p.Y)+1e-12 {
			t.Fatalf("point %d: block sum %g != total %g", i, sum, p.Y)
		}
	}
}

func TestFiguresRejectsNonPositiveWindow(t *testing.T) {
	// A non-positive window disables trace collection in the analyzer;
	// Figures must reject it up front instead of returning nil series.
	for _, w := range []float64{0, -1e-9} {
		if _, err := Figures(400, w); err == nil {
			t.Errorf("Figures(400, %g) = nil error, want window rejection", w)
		}
	}
}

func TestOverheadMeasurable(t *testing.T) {
	res, err := Overhead(4000)
	if err != nil {
		t.Fatal(err)
	}
	if res.BaselineMS <= 0 {
		t.Fatal("baseline time must be positive")
	}
	for style, x := range res.Slowdown {
		if x < 0.5 || x > 50 {
			t.Errorf("style %s slowdown x%.2f implausible", style, x)
		}
	}
	// The most intrusive style must cost at least as much as the least.
	if res.PerStyleMS["private"] < res.PerStyleMS["global"]*0.5 {
		t.Error("private style implausibly cheaper than global")
	}
}

func TestValidationFits(t *testing.T) {
	res, err := Validation(1500, 42)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decoder.R2 < 0.8 {
		t.Errorf("decoder fit R2=%v", res.Decoder.R2)
	}
	if res.Mux.R2 < 0.7 {
		t.Errorf("mux fit R2=%v", res.Mux.R2)
	}
	if res.Arbiter.R2 < 0.5 {
		t.Errorf("arbiter fit R2=%v", res.Arbiter.R2)
	}
	if !strings.Contains(res.Text, "decoder") {
		t.Error("text incomplete")
	}
}

func TestGranularityFineBeatsCoarse(t *testing.T) {
	res, err := Granularity(8000)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeasuredJ <= 0 {
		t.Fatal("measured energy must be positive")
	}
	// Both models predict within a loose bound; the fine model must not be
	// substantially worse than the coarse one (§3: finer granularity gives
	// better accuracy at higher characterization cost).
	if res.FinePct > 25 {
		t.Errorf("fine model error %.1f%%, want <25%%", res.FinePct)
	}
	if res.CoarsePct > 40 {
		t.Errorf("coarse model error %.1f%%, want <40%%", res.CoarsePct)
	}
	if res.FinePct > res.CoarsePct+5 {
		t.Errorf("fine (%.1f%%) should not be much worse than coarse (%.1f%%)", res.FinePct, res.CoarsePct)
	}
}

func TestModelStylesAgree(t *testing.T) {
	res, err := ModelStyles(4000)
	if err != nil {
		t.Fatal(err)
	}
	g := res.EnergyJ["global"]
	for style, e := range res.EnergyJ {
		if e <= 0 {
			t.Fatalf("style %s energy %g", style, e)
		}
		if ratio := e / g; ratio < 0.4 || ratio > 2.5 {
			t.Errorf("style %s diverges: %g vs global %g", style, e, g)
		}
	}
}

func TestParametricMonotone(t *testing.T) {
	res, err := Parametric()
	if err != nil {
		t.Fatal(err)
	}
	if res.DecoderPJ[16] <= res.DecoderPJ[2] {
		t.Error("decoder energy must grow with slave count")
	}
	if res.MuxPJ[64] <= res.MuxPJ[8] {
		t.Error("mux select energy must grow with width")
	}
}
