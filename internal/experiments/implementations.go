package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"ahbpower/internal/gate"
	"ahbpower/internal/power"
	"ahbpower/internal/stats"
	"ahbpower/internal/synth"
)

// ImplRow is one decoder implementation variant.
type ImplRow struct {
	Variant string
	Gates   int
	PJPerHD float64 // measured energy per unit input Hamming distance
}

// ImplResult quantifies how much the gate-level implementation choice
// shifts the macromodel coefficients: the same one-hot decoder function
// realized as (a) the paper's NOT/AND structure, (b) a NAND2+INV
// technology-mapped version, (c) the optimized NAND version, and (d) the
// NOT/AND structure under fanout-aware capacitances. §3 of the paper notes
// that macromodel accuracy "strongly depends ... on the way the system
// will be implemented" — this experiment measures that dependence.
type ImplResult struct {
	Rows []ImplRow
	Text string
}

// ImplAblation measures energy-per-HD for decoder implementation variants
// with nOut outputs over nVectors random transitions.
func ImplAblation(nOut, nVectors int, seed int64) (*ImplResult, error) {
	tech := power.DefaultTech()
	gt := gate.Tech{VDD: tech.VDD, CPD: tech.CPD, COut: tech.CO}

	base, err := synth.BuildDecoder(nOut)
	if err != nil {
		return nil, err
	}
	mapped, err := synth.TechMapNAND(base.Netlist)
	if err != nil {
		return nil, err
	}
	optimized, _, err := synth.Optimize(mapped)
	if err != nil {
		return nil, err
	}
	fanout, err := synth.BuildDecoder(nOut)
	if err != nil {
		return nil, err
	}
	fanout.Netlist.ApplyFanoutCaps(tech.CPD/2, tech.CPD/4, tech.CO)

	variants := []struct {
		name string
		nl   *gate.Netlist
	}{
		{"NOT/AND (paper)", base.Netlist},
		{"NAND2+INV mapped", mapped},
		{"NAND2+INV optimized", optimized},
		{"NOT/AND fanout caps", fanout.Netlist},
	}

	res := &ImplResult{}
	var b strings.Builder
	fmt.Fprintf(&b, "Decoder implementation ablation (n_O=%d, %d vectors)\n", nOut, nVectors)
	fmt.Fprintf(&b, "  %-22s %-7s %-10s\n", "variant", "gates", "pJ per HD")
	for _, v := range variants {
		ev, err := gate.NewEval(v.nl, gt)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed))
		ev.SetInputs(0)
		ev.Settle()
		ev.ResetCounters()
		prev := uint64(0)
		totalHD := 0
		for i := 0; i < nVectors; i++ {
			in := uint64(rng.Intn(nOut))
			ev.SetInputs(in)
			ev.Settle()
			totalHD += stats.Hamming(prev, in)
			prev = in
		}
		row := ImplRow{Variant: v.name, Gates: v.nl.NumGates()}
		if totalHD > 0 {
			row.PJPerHD = ev.Energy() / float64(totalHD) * 1e12
		}
		res.Rows = append(res.Rows, row)
		fmt.Fprintf(&b, "  %-22s %-7d %-10.3f\n", row.Variant, row.Gates, row.PJPerHD)
	}
	res.Text = b.String()
	return res, nil
}
