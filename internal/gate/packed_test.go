package gate

import (
	"math/rand"
	"testing"
)

// buildKitchenSink returns a netlist exercising every combinational gate
// kind plus a DFF, with a few shared intermediate nets so toggle counting
// sees fanout.
func buildKitchenSink(t *testing.T) *Netlist {
	t.Helper()
	nl := NewNetlist("kitchen-sink")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	c := nl.AddInput("c")
	d := nl.AddInput("d")

	na := nl.MustGate(Not, "na", a)
	ab := nl.MustGate(And, "ab", a, b)
	abc := nl.MustGate(And, "abc", a, b, c)
	obc := nl.MustGate(Or, "obc", b, c, d)
	nb := nl.MustGate(Nand, "nb", ab, obc)
	nr := nl.MustGate(Nor, "nr", na, abc)
	x := nl.MustGate(Xor, "x", nb, nr)
	xn := nl.MustGate(Xnor, "xn", x, ab)
	mx := nl.MustGate(Mux2, "mx", x, xn, c)
	q := nl.MustGate(Dff, "q", mx)
	fb := nl.MustGate(Xor, "fb", q, d)
	buf := nl.MustGate(Buf, "buf", fb)

	nl.MarkOutput(x)
	nl.MarkOutput(mx)
	nl.MarkOutput(q)
	nl.MarkOutput(buf)
	if err := nl.Err(); err != nil {
		t.Fatalf("build: %v", err)
	}
	return nl
}

// TestPackedEvalMatchesScalarLanes drives the same netlist through one
// PackedEval and 64 scalar Evals with per-lane input slices, and checks
// per-lane outputs every step plus aggregate toggle/energy accounting at
// the end. This is the packed backend's foundation: a lane must be
// indistinguishable from a scalar evaluation.
func TestPackedEvalMatchesScalarLanes(t *testing.T) {
	nl := buildKitchenSink(t)
	tech := Tech{VDD: 2.5, CPD: 90e-15, COut: 300e-15}

	packed, err := NewPackedEval(nl, tech)
	if err != nil {
		t.Fatalf("NewPackedEval: %v", err)
	}
	scalars := make([]*Eval, 64)
	for l := range scalars {
		if scalars[l], err = NewEval(nl, tech); err != nil {
			t.Fatalf("NewEval: %v", err)
		}
	}

	rng := rand.New(rand.NewSource(20260807))
	nIn := len(nl.Inputs())
	for step := 0; step < 200; step++ {
		laneIn := make([]uint64, 64)
		for l := range laneIn {
			laneIn[l] = rng.Uint64() & ((1 << uint(nIn)) - 1)
		}
		// Drive packed input planes (bit i of lane l's vector -> bit l of
		// input plane i) and each scalar lane.
		for i, id := range nl.Inputs() {
			var plane uint64
			for l, v := range laneIn {
				if v&(1<<uint(i)) != 0 {
					plane |= 1 << uint(l)
				}
			}
			packed.SetInput(id, plane)
		}
		packed.Settle()
		packed.ClockTick()
		for l, e := range scalars {
			e.SetInputs(laneIn[l])
			e.Settle()
			e.ClockTick()
			if got, want := packed.LaneOutputBits(l), e.OutputBits(); got != want {
				t.Fatalf("step %d lane %d: packed outputs %#x, scalar %#x", step, l, got, want)
			}
		}
	}

	var wantToggles uint64
	var wantCap float64
	for _, e := range scalars {
		wantToggles += e.TotalToggles()
		wantCap += e.SwitchedCap()
	}
	if got := packed.TotalToggles(); got != wantToggles {
		t.Fatalf("total toggles: packed %d, scalar sum %d", got, wantToggles)
	}
	// Capacitance sums accumulate in different orders (per-net versus
	// per-lane), so compare with a tight relative tolerance.
	if diff := packed.SwitchedCap() - wantCap; diff > 1e-6*wantCap || diff < -1e-6*wantCap {
		t.Fatalf("switched cap: packed %g, scalar sum %g", packed.SwitchedCap(), wantCap)
	}
	if packed.Energy() <= 0 {
		t.Fatalf("packed energy not accumulated")
	}
	for id := NetID(0); int(id) < nl.NumNets(); id++ {
		var want uint64
		for _, e := range scalars {
			want += e.Toggles(id)
		}
		if got := packed.Toggles(id); got != want {
			t.Fatalf("net %q toggles: packed %d, scalar sum %d", nl.NetName(id), got, want)
		}
	}
}

// TestPackedEvalLaneMask checks that transitions in masked-out lanes are
// not charged while masked lanes keep simulating.
func TestPackedEvalLaneMask(t *testing.T) {
	nl := NewNetlist("mask")
	a := nl.AddInput("a")
	o := nl.MustGate(Not, "o", a)
	nl.MarkOutput(o)
	if err := nl.Err(); err != nil {
		t.Fatalf("build: %v", err)
	}
	e, err := NewPackedEval(nl, Tech{VDD: 2, CPD: 1e-15, COut: 1e-15})
	if err != nil {
		t.Fatalf("NewPackedEval: %v", err)
	}
	e.Settle() // the NOT output rises in all 64 lanes
	base := e.TotalToggles()
	if base != 64 {
		t.Fatalf("settle toggles = %d, want 64", base)
	}
	e.SetLaneMask(0x3) // only lanes 0 and 1 charge
	e.SetInput(a, ^uint64(0))
	e.Settle()
	// Input plus output flipped in every lane; only 2 lanes x 2 nets count.
	if got := e.TotalToggles() - base; got != 4 {
		t.Fatalf("masked toggles = %d, want 4", got)
	}
	// Masked lanes still simulated: output is now low everywhere.
	if e.Output(o) != 0 {
		t.Fatalf("masked lanes did not propagate: output %#x", e.Output(o))
	}
}
