package gate

import (
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	if Not.String() != "NOT" || And.String() != "AND" || Dff.String() != "DFF" {
		t.Error("kind names wrong")
	}
	if !strings.HasPrefix(Kind(200).String(), "KIND(") {
		t.Error("unknown kind must format numerically")
	}
}

func TestNetlistConstruction(t *testing.T) {
	nl := NewNetlist("t")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	y := nl.MustGate(And, "y", a, b)
	nl.MarkOutput(y)
	if nl.NumGates() != 1 || nl.NumNets() != 3 {
		t.Errorf("gates=%d nets=%d", nl.NumGates(), nl.NumNets())
	}
	if len(nl.Inputs()) != 2 || len(nl.Outputs()) != 1 {
		t.Error("inputs/outputs wrong")
	}
	if nl.NetName(y) != "y" {
		t.Errorf("NetName=%q", nl.NetName(y))
	}
	if nl.CountKind(And) != 1 || nl.CountKind(Or) != 0 {
		t.Error("CountKind wrong")
	}
}

func TestNetlistArityErrors(t *testing.T) {
	nl := NewNetlist("t")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	if _, err := nl.AddGate(Not, "n", a, b); err == nil {
		t.Error("NOT with 2 inputs must fail")
	}
	if _, err := nl.AddGate(And, "n", a); err == nil {
		t.Error("AND with 1 input must fail")
	}
	if _, err := nl.AddGate(Mux2, "n", a, b); err == nil {
		t.Error("MUX2 with 2 inputs must fail")
	}
	if _, err := nl.AddGate(Xor, "n", a, b, a); err == nil {
		t.Error("XOR with 3 inputs must fail")
	}
}

func TestNetlistUnknownKindError(t *testing.T) {
	nl := NewNetlist("t")
	a := nl.AddInput("a")
	if _, err := nl.AddGate(Kind(200), "y", a); err == nil {
		t.Error("AddGate with an unknown kind must fail")
	}
	out := nl.AddNet("out")
	if err := nl.Drive(Kind(200), out, a); err == nil {
		t.Error("Drive with an unknown kind must fail")
	}
	// A netlist assembled behind Drive's back must still be caught before
	// the evaluator can reach the unknown kind.
	nl.gates = append(nl.gates, Gate{Kind: Kind(200), In: []NetID{a}, Out: out})
	nl.nets[out].driver = len(nl.gates) - 1
	if _, err := nl.Validate(); err == nil {
		t.Error("Validate must reject an unknown gate kind")
	}
	if _, err := NewEval(nl, Tech{VDD: 1, CPD: 1e-15, COut: 1e-15}); err == nil {
		t.Error("NewEval must reject a netlist with an unknown gate kind")
	}
}

func TestNetlistMultipleDriverError(t *testing.T) {
	nl := NewNetlist("t")
	a := nl.AddInput("a")
	y := nl.MustGate(Buf, "y", a)
	if err := nl.Drive(Buf, y, a); err == nil {
		t.Error("double drive must fail")
	}
}

func TestNetlistDriveInputError(t *testing.T) {
	nl := NewNetlist("t")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	if err := nl.Drive(Buf, b, a); err != nil {
		t.Fatal(err) // Drive itself allows it; Validate must reject.
	}
	if _, err := nl.Validate(); err == nil {
		t.Error("driven primary input must fail validation")
	}
}

func TestNetlistUndrivenNetError(t *testing.T) {
	nl := NewNetlist("t")
	a := nl.AddInput("a")
	float := nl.AddNet("float")
	nl.MustGate(And, "y", a, float)
	if _, err := nl.Validate(); err == nil {
		t.Error("undriven internal net must fail validation")
	}
}

func TestNetlistCycleDetection(t *testing.T) {
	nl := NewNetlist("t")
	a := nl.AddInput("a")
	x := nl.AddNet("x")
	y := nl.AddNet("y")
	if err := nl.Drive(And, x, a, y); err != nil {
		t.Fatal(err)
	}
	if err := nl.Drive(Buf, y, x); err != nil {
		t.Fatal(err)
	}
	if _, err := nl.Validate(); err == nil {
		t.Error("combinational cycle must fail validation")
	}
}

func TestNetlistDffBreaksCycle(t *testing.T) {
	// x = a XOR q; q = DFF(x): a classic toggle register; must validate.
	nl := NewNetlist("t")
	a := nl.AddInput("a")
	x := nl.AddNet("x")
	q := nl.AddNet("q")
	if err := nl.Drive(Xor, x, a, q); err != nil {
		t.Fatal(err)
	}
	if err := nl.Drive(Dff, q, x); err != nil {
		t.Fatal(err)
	}
	if _, err := nl.Validate(); err != nil {
		t.Errorf("DFF cycle must validate: %v", err)
	}
}

func TestNetlistBadNetIDs(t *testing.T) {
	nl := NewNetlist("t")
	a := nl.AddInput("a")
	if _, err := nl.AddGate(Buf, "y", NetID(99)); err == nil {
		t.Error("out-of-range input must fail")
	}
	if err := nl.Drive(Buf, NetID(99), a); err == nil {
		t.Error("out-of-range output must fail")
	}
}

func TestMustGateRecordsError(t *testing.T) {
	nl := NewNetlist("t")
	a := nl.AddInput("a")
	y := nl.MustGate(And, "y", a) // AND needs >= 2 inputs
	if int(y) >= nl.NumNets() {
		t.Errorf("MustGate returned out-of-range net %d", y)
	}
	if nl.Err() == nil {
		t.Fatal("structural error not recorded")
	}
	first := nl.Err()
	nl.MustGate(Mux2, "z", a) // wrong arity again; first error must stick
	if nl.Err() != first {
		t.Error("later error replaced the sticky first error")
	}
	if _, err := nl.Validate(); err == nil {
		t.Error("Validate must fail on a netlist with a recorded error")
	} else if !strings.Contains(err.Error(), "at least 2 inputs") {
		t.Errorf("Validate error %q does not carry the original cause", err)
	}
	// A clean build stays clean.
	ok := NewNetlist("ok")
	b, c := ok.AddInput("b"), ok.AddInput("c")
	ok.MarkOutput(ok.MustGate(And, "y", b, c))
	if ok.Err() != nil {
		t.Errorf("clean build recorded error: %v", ok.Err())
	}
	if _, err := ok.Validate(); err != nil {
		t.Errorf("clean build failed validation: %v", err)
	}
}
