package gate

import "fmt"

// Tech bundles the technology constants used for energy accounting.
// Following the paper's decoder macromodel, the dynamic energy charged per
// node transition is E = (VDD²/4)·C_node. CPD is the "equivalent
// capacitance of one node" for internal nets; COut the capacitance of
// primary-output nets (C_O in the paper).
type Tech struct {
	VDD  float64 // supply voltage, volts
	CPD  float64 // internal node capacitance, farads
	COut float64 // primary-output node capacitance, farads
}

// EnergyPerTransition returns (VDD²/4)·c, the paper's per-transition energy
// convention for a node of capacitance c.
func (t Tech) EnergyPerTransition(c float64) float64 {
	return t.VDD * t.VDD / 4 * c
}

// ApplyFanoutCaps replaces the uniform per-node capacitance with a
// fanout-aware model: each net carries a base wire capacitance plus one
// input-load capacitance per gate input it drives, and primary outputs
// additionally carry cOut. This refines the paper's single C_PD
// "equivalent capacitance of one node" for netlists where fanout varies
// widely (e.g. the select lines of a wide multiplexer).
func (n *Netlist) ApplyFanoutCaps(cWire, cInPerLoad, cOut float64) {
	fanout := make([]int, len(n.nets))
	for _, g := range n.gates {
		for _, in := range g.In {
			fanout[in]++
		}
	}
	isOut := make([]bool, len(n.nets))
	for _, o := range n.outputs {
		isOut[o] = true
	}
	for i := range n.nets {
		c := cWire + cInPerLoad*float64(fanout[i])
		if isOut[i] {
			c += cOut
		}
		n.nets[i].cap = c
	}
}

// Eval is a zero-delay cycle-accurate evaluator of a Netlist with per-net
// toggle counting. The evaluation model matches the macromodel convention:
// each net value change in a settle pass counts as one transition of that
// net's capacitance, with no glitch modeling.
type Eval struct {
	nl    *Netlist
	tech  Tech
	order []int // levelized combinational gate indices

	val     []bool
	toggles []uint64

	totalToggles uint64
	switchedCap  float64 // Σ C_net per transition, farads
	caps         []float64
	cycles       uint64
}

// NewEval validates the netlist and creates an evaluator. All nets start at
// logic 0 with no transition charged.
func NewEval(nl *Netlist, tech Tech) (*Eval, error) {
	order, err := nl.Validate()
	if err != nil {
		return nil, err
	}
	e := &Eval{
		nl:      nl,
		tech:    tech,
		order:   order,
		val:     make([]bool, len(nl.nets)),
		toggles: make([]uint64, len(nl.nets)),
		caps:    make([]float64, len(nl.nets)),
	}
	isOut := make([]bool, len(nl.nets))
	for _, o := range nl.outputs {
		isOut[o] = true
	}
	for i, nt := range nl.nets {
		switch {
		case nt.cap >= 0:
			e.caps[i] = nt.cap
		case isOut[i]:
			e.caps[i] = tech.COut
		default:
			e.caps[i] = tech.CPD
		}
	}
	return e, nil
}

// setNet assigns a net value, charging a transition if it changes.
func (e *Eval) setNet(id NetID, v bool) {
	if e.val[id] == v {
		return
	}
	e.val[id] = v
	e.toggles[id]++
	e.totalToggles++
	e.switchedCap += e.caps[id]
}

// SetInput assigns a primary input. Call Settle afterwards to propagate.
func (e *Eval) SetInput(id NetID, v bool) {
	e.setNet(id, v)
}

// SetInputs assigns the value's low bits to the primary inputs in creation
// order (bit 0 to the first input).
func (e *Eval) SetInputs(v uint64) {
	for i, id := range e.nl.inputs {
		e.SetInput(id, v&(1<<uint(i)) != 0)
	}
}

func (e *Eval) evalGate(g *Gate) bool {
	switch g.Kind {
	case Buf:
		return e.val[g.In[0]]
	case Not:
		return !e.val[g.In[0]]
	case And, Nand:
		v := true
		for _, in := range g.In {
			v = v && e.val[in]
		}
		if g.Kind == Nand {
			return !v
		}
		return v
	case Or, Nor:
		v := false
		for _, in := range g.In {
			v = v || e.val[in]
		}
		if g.Kind == Nor {
			return !v
		}
		return v
	case Xor:
		return e.val[g.In[0]] != e.val[g.In[1]]
	case Xnor:
		return e.val[g.In[0]] == e.val[g.In[1]]
	case Mux2:
		if e.val[g.In[2]] {
			return e.val[g.In[1]]
		}
		return e.val[g.In[0]]
	}
	// Unreachable: Drive rejects unknown kinds at construction and
	// Validate re-checks every gate before an Eval is created.
	panic(fmt.Sprintf("gate: evalGate on %v", g.Kind))
}

// Settle propagates the combinational logic to a fixpoint (a single
// levelized pass, since the netlist is acyclic).
func (e *Eval) Settle() {
	for _, gi := range e.order {
		g := &e.nl.gates[gi]
		e.setNet(g.Out, e.evalGate(g))
	}
}

// ClockTick captures every DFF's D input into its Q output simultaneously,
// then settles the combinational logic. It models one rising clock edge.
func (e *Eval) ClockTick() {
	type upd struct {
		out NetID
		v   bool
	}
	var ups []upd
	for i := range e.nl.gates {
		g := &e.nl.gates[i]
		if g.Kind == Dff {
			ups = append(ups, upd{g.Out, e.val[g.In[0]]})
		}
	}
	for _, u := range ups {
		e.setNet(u.out, u.v)
	}
	e.Settle()
	e.cycles++
}

// Cycle applies an input vector, settles, and ticks the clock: the
// standard per-clock-cycle stimulus step used during characterization.
func (e *Eval) Cycle(inputs uint64) {
	e.SetInputs(inputs)
	e.Settle()
	e.ClockTick()
}

// Output reads the settled value of a net.
func (e *Eval) Output(id NetID) bool { return e.val[id] }

// OutputBits packs the primary outputs into a uint64 (first output at bit 0).
func (e *Eval) OutputBits() uint64 {
	var v uint64
	for i, id := range e.nl.outputs {
		if e.val[id] {
			v |= 1 << uint(i)
		}
	}
	return v
}

// Toggles returns the transition count of one net.
func (e *Eval) Toggles(id NetID) uint64 { return e.toggles[id] }

// TotalToggles returns the total transitions across all nets.
func (e *Eval) TotalToggles() uint64 { return e.totalToggles }

// SwitchedCap returns the accumulated switched capacitance in farads.
func (e *Eval) SwitchedCap() float64 { return e.switchedCap }

// Energy returns the accumulated dynamic energy in joules under the
// paper's E = (VDD²/4)·C-per-transition convention.
func (e *Eval) Energy() float64 {
	return e.tech.EnergyPerTransition(e.switchedCap)
}

// Cycles returns the number of ClockTicks executed.
func (e *Eval) Cycles() uint64 { return e.cycles }

// ResetCounters zeroes the energy/toggle accounting without touching the
// logic state; used to discard warm-up transients during characterization.
func (e *Eval) ResetCounters() {
	for i := range e.toggles {
		e.toggles[i] = 0
	}
	e.totalToggles = 0
	e.switchedCap = 0
	e.cycles = 0
}
