package gate

import (
	"strings"
	"testing"
)

func TestBLIFCombinational(t *testing.T) {
	nl := NewNetlist("blif test")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	y := nl.MustGate(And, "y", a, b)
	ny := nl.MustGate(Not, "ny", y)
	nl.MarkOutput(ny)
	var sb strings.Builder
	if err := nl.WriteBLIF(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		".model blif_test",
		".inputs a_n0 b_n1",
		".outputs ny_n3",
		".names a_n0 b_n1 y_n2",
		"11 1",
		".names y_n2 ny_n3",
		"0 1",
		".end",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("BLIF missing %q:\n%s", want, out)
		}
	}
}

func TestBLIFLatch(t *testing.T) {
	nl := NewNetlist("seq")
	d := nl.AddInput("d")
	q := nl.AddNet("q")
	if err := nl.Drive(Dff, q, d); err != nil {
		t.Fatal(err)
	}
	nl.MarkOutput(q)
	var sb strings.Builder
	if err := nl.WriteBLIF(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), ".latch d_n0 q_n1 re clk 0") {
		t.Errorf("latch line missing:\n%s", sb.String())
	}
}

func TestBLIFOrNandNorXorMux(t *testing.T) {
	nl := NewNetlist("mix")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	s := nl.AddInput("s")
	o1 := nl.MustGate(Or, "o1", a, b)
	o2 := nl.MustGate(Nand, "o2", a, b)
	o3 := nl.MustGate(Nor, "o3", a, b)
	o4 := nl.MustGate(Xor, "o4", a, b)
	o5 := nl.MustGate(Xnor, "o5", a, b)
	o6 := nl.MustGate(Mux2, "o6", a, b, s)
	o7 := nl.MustGate(Buf, "o7", a)
	for _, o := range []NetID{o1, o2, o3, o4, o5, o6, o7} {
		nl.MarkOutput(o)
	}
	var sb strings.Builder
	if err := nl.WriteBLIF(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// OR: two one-hot rows; NAND: complemented one-hot rows; NOR: all-0;
	// XOR: 10/01; XNOR: 00/11; MUX2: 1-0 / -11; BUF: 1 1.
	for _, want := range []string{"1- 1", "-1 1", "0- 1", "-0 1", "00 1", "10 1", "01 1", "11 1", "1-0 1", "-11 1", "1 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("BLIF cover row %q missing:\n%s", want, out)
		}
	}
}

// TestBLIFCoverSemantics re-evaluates the BLIF cover rows against the
// gate evaluator: for every 2-input gate kind and input assignment, the
// emitted cover must assert the output exactly when the evaluator does.
func TestBLIFCoverSemantics(t *testing.T) {
	kinds := []Kind{And, Or, Nand, Nor, Xor, Xnor}
	for _, kind := range kinds {
		nl := NewNetlist("k")
		a := nl.AddInput("a")
		b := nl.AddInput("b")
		y := nl.MustGate(kind, "y", a, b)
		nl.MarkOutput(y)
		var sb strings.Builder
		if err := nl.WriteBLIF(&sb); err != nil {
			t.Fatal(err)
		}
		rows := coverRows(sb.String(), "y_n2")
		ev, err := NewEval(nl, Tech{VDD: 1, CPD: 1, COut: 1})
		if err != nil {
			t.Fatal(err)
		}
		for v := uint64(0); v < 4; v++ {
			ev.SetInputs(v)
			ev.Settle()
			want := ev.Output(y)
			got := coverMatches(rows, v, 2)
			if got != want {
				t.Errorf("%v(%02b): BLIF=%v eval=%v", kind, v, got, want)
			}
		}
	}
}

// coverRows extracts the cover rows following the .names line whose output
// is the given identifier.
func coverRows(blif, out string) []string {
	var rows []string
	lines := strings.Split(blif, "\n")
	in := false
	for _, l := range lines {
		if strings.HasPrefix(l, ".names ") && strings.HasSuffix(l, " "+out) {
			in = true
			continue
		}
		if in {
			if strings.HasPrefix(l, ".") {
				break
			}
			if l != "" {
				rows = append(rows, l)
			}
		}
	}
	return rows
}

// coverMatches evaluates a single-output cover over k inputs: input bit i
// of v corresponds to column i.
func coverMatches(rows []string, v uint64, k int) bool {
	for _, r := range rows {
		fields := strings.Fields(r)
		if len(fields) != 2 || fields[1] != "1" {
			continue
		}
		pat := fields[0]
		ok := true
		for i := 0; i < k; i++ {
			bit := v&(1<<uint(i)) != 0
			switch pat[i] {
			case '1':
				ok = ok && bit
			case '0':
				ok = ok && !bit
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestBLIFDecodersExportable(t *testing.T) {
	// Every generated netlist kind must export cleanly.
	nl := NewNetlist("empty-ish")
	a := nl.AddInput("a")
	nl.MarkOutput(nl.MustGate(Buf, "y", a))
	var sb strings.Builder
	if err := nl.WriteBLIF(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(strings.TrimSpace(sb.String()), ".end") {
		t.Error("BLIF must end with .end")
	}
}
