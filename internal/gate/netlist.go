// Package gate provides a gate-level netlist representation and a
// zero-delay cycle-accurate evaluator with per-net toggle counting and
// switched-capacitance energy accounting.
//
// The paper characterizes each AHB sub-block "using a low-level
// description" synthesized and validated with Berkeley SIS. This package,
// together with internal/synth, is the from-scratch substitute: structural
// netlists of the same blocks (a one-hot decoder built only from NOT and
// AND gates, AND-OR multiplexers, a priority-arbiter FSM) are simulated
// here to obtain reference dynamic energies against which the system-level
// macromodels are fitted and validated.
package gate

import (
	"fmt"
)

// NetID identifies a net within a Netlist.
type NetID int

// Kind enumerates the supported gate types.
type Kind uint8

// Supported gate kinds.
const (
	Buf Kind = iota
	Not
	And
	Or
	Nand
	Nor
	Xor
	Xnor
	Mux2 // inputs: a, b, sel; output: sel ? b : a
	Dff  // input: d; output: q (updated on ClockTick)
)

var kindNames = [...]string{"BUF", "NOT", "AND", "OR", "NAND", "NOR", "XOR", "XNOR", "MUX2", "DFF"}

// String returns the conventional gate name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("KIND(%d)", uint8(k))
}

// valid reports whether k is one of the declared gate kinds. Unknown
// kinds are rejected when the netlist is built (Drive/AddGate) and again
// in Validate, so the evaluator never sees one — a malformed
// characterization request must surface as an error, not a panic, in a
// long-lived process.
func (k Kind) valid() bool { return k <= Dff }

// arity returns the required input count, or -1 for variadic (>=2).
func (k Kind) arity() int {
	switch k {
	case Buf, Not, Dff:
		return 1
	case Mux2:
		return 3
	case And, Or, Nand, Nor:
		return -1
	case Xor, Xnor:
		return 2
	}
	return 0
}

// Gate is a single logic gate instance.
type Gate struct {
	Kind Kind
	In   []NetID
	Out  NetID
}

type net struct {
	name   string
	cap    float64 // node capacitance in farads; <0 means "use default"
	driver int     // index of driving gate, -1 if primary input / undriven
}

// Netlist is a mutable gate-level circuit description. Build it with the
// Add* methods, then create an Eval to simulate it.
type Netlist struct {
	Name    string
	nets    []net
	gates   []Gate
	inputs  []NetID
	outputs []NetID
	// err is the first structural error recorded by MustGate; it makes
	// Validate fail, so a malformed build cannot reach the evaluator.
	err error
}

// NewNetlist creates an empty netlist.
func NewNetlist(name string) *Netlist {
	return &Netlist{Name: name}
}

// AddNet creates an internal net with default capacitance and returns its id.
func (n *Netlist) AddNet(name string) NetID {
	n.nets = append(n.nets, net{name: name, cap: -1, driver: -1})
	return NetID(len(n.nets) - 1)
}

// AddInput creates a primary-input net.
func (n *Netlist) AddInput(name string) NetID {
	id := n.AddNet(name)
	n.inputs = append(n.inputs, id)
	return id
}

// MarkOutput declares an existing net to be a primary output. Output nets
// carry the (typically larger) output capacitance C_O unless overridden.
func (n *Netlist) MarkOutput(id NetID) {
	n.outputs = append(n.outputs, id)
}

// SetCap overrides the node capacitance of a net, in farads.
func (n *Netlist) SetCap(id NetID, c float64) {
	n.nets[id].cap = c
}

// NetName returns the diagnostic name of a net.
func (n *Netlist) NetName(id NetID) string { return n.nets[id].name }

// Inputs returns the primary-input nets in creation order.
func (n *Netlist) Inputs() []NetID { return n.inputs }

// Outputs returns the primary-output nets in declaration order.
func (n *Netlist) Outputs() []NetID { return n.outputs }

// NumGates returns the gate count.
func (n *Netlist) NumGates() int { return len(n.gates) }

// NumNets returns the net count.
func (n *Netlist) NumNets() int { return len(n.nets) }

// Gates returns the gate list (shared slice; do not mutate).
func (n *Netlist) Gates() []Gate { return n.gates }

// CountKind returns how many gates of the given kind the netlist contains.
func (n *Netlist) CountKind(k Kind) int {
	c := 0
	for _, g := range n.gates {
		if g.Kind == k {
			c++
		}
	}
	return c
}

// AddGate creates a gate driving a fresh net and returns the output net id.
func (n *Netlist) AddGate(kind Kind, name string, in ...NetID) (NetID, error) {
	out := n.AddNet(name)
	if err := n.Drive(kind, out, in...); err != nil {
		return 0, err
	}
	return out, nil
}

// MustGate is AddGate for generator code whose structure is correct by
// construction: it always returns the freshly created output net, and a
// structural error is recorded on the netlist instead of panicking — the
// first one sticks, Err exposes it, and Validate fails with it, so a
// malformed build surfaces as an error in a long-lived process rather
// than unwinding it.
func (n *Netlist) MustGate(kind Kind, name string, in ...NetID) NetID {
	out := n.AddNet(name)
	if err := n.Drive(kind, out, in...); err != nil && n.err == nil {
		n.err = fmt.Errorf("gate: netlist %q: %w", n.Name, err)
	}
	return out
}

// Err returns the first structural error recorded by MustGate, or nil.
func (n *Netlist) Err() error { return n.err }

// Drive attaches a gate to an existing output net.
func (n *Netlist) Drive(kind Kind, out NetID, in ...NetID) error {
	if !kind.valid() {
		return fmt.Errorf("gate: unknown gate kind %s", kind)
	}
	if int(out) >= len(n.nets) || out < 0 {
		return fmt.Errorf("gate: net %d out of range", out)
	}
	if n.nets[out].driver >= 0 {
		return fmt.Errorf("gate: net %q has multiple drivers", n.nets[out].name)
	}
	want := kind.arity()
	if want == -1 {
		if len(in) < 2 {
			return fmt.Errorf("gate: %s requires at least 2 inputs, got %d", kind, len(in))
		}
	} else if len(in) != want {
		return fmt.Errorf("gate: %s requires %d inputs, got %d", kind, want, len(in))
	}
	for _, i := range in {
		if int(i) >= len(n.nets) || i < 0 {
			return fmt.Errorf("gate: input net %d out of range", i)
		}
	}
	n.gates = append(n.gates, Gate{Kind: kind, In: append([]NetID(nil), in...), Out: out})
	n.nets[out].driver = len(n.gates) - 1
	return nil
}

// Validate checks structural integrity: every non-input net has exactly one
// driver and the combinational part is acyclic. It returns the levelized
// combinational gate order used by the evaluator.
func (n *Netlist) Validate() ([]int, error) {
	// A MustGate error invalidates the whole netlist; surface it first.
	if n.err != nil {
		return nil, n.err
	}
	// Re-check gate kinds: Drive already rejects unknown kinds, but a
	// netlist assembled through a decoder or future construction path must
	// not reach the evaluator with one.
	for _, g := range n.gates {
		if !g.Kind.valid() {
			return nil, fmt.Errorf("gate: unknown gate kind %s driving %q", g.Kind, n.nets[g.Out].name)
		}
	}
	isInput := make([]bool, len(n.nets))
	for _, id := range n.inputs {
		isInput[id] = true
	}
	for id, nt := range n.nets {
		if nt.driver < 0 && !isInput[id] {
			return nil, fmt.Errorf("gate: net %q is undriven and not a primary input", nt.name)
		}
		if nt.driver >= 0 && isInput[id] {
			return nil, fmt.Errorf("gate: primary input %q is driven by a gate", nt.name)
		}
	}
	// Kahn levelization over combinational gates. DFF outputs are sources.
	indeg := make([]int, len(n.gates))
	dependents := make([][]int, len(n.nets)) // net -> comb gates reading it
	for gi, g := range n.gates {
		if g.Kind == Dff {
			continue
		}
		for _, in := range g.In {
			dependents[in] = append(dependents[in], gi)
		}
	}
	for gi, g := range n.gates {
		if g.Kind == Dff {
			continue
		}
		for _, in := range g.In {
			d := n.nets[in].driver
			if d >= 0 && n.gates[d].Kind != Dff {
				indeg[gi]++
			}
		}
	}
	var queue []int
	for gi, g := range n.gates {
		if g.Kind != Dff && indeg[gi] == 0 {
			queue = append(queue, gi)
		}
	}
	var order []int
	for len(queue) > 0 {
		gi := queue[0]
		queue = queue[1:]
		order = append(order, gi)
		for _, dep := range dependents[n.gates[gi].Out] {
			indeg[dep]--
			if indeg[dep] == 0 {
				queue = append(queue, dep)
			}
		}
	}
	comb := 0
	for _, g := range n.gates {
		if g.Kind != Dff {
			comb++
		}
	}
	if len(order) != comb {
		return nil, fmt.Errorf("gate: combinational cycle detected (%d of %d gates levelized)", len(order), comb)
	}
	return order, nil
}
