package gate

import (
	"fmt"
	"io"
	"strings"
)

// WriteBLIF emits the netlist in Berkeley Logic Interchange Format — the
// input format of SIS, the synthesis tool the paper used for macromodel
// validation. The export makes every generated sub-block netlist directly
// loadable into SIS/ABC for independent cross-checking.
//
// Combinational gates become .names cover tables; DFFs become .latch lines
// with a rising-edge generic clock and initial value 0.
func (n *Netlist) WriteBLIF(w io.Writer) error {
	name := n.Name
	if name == "" {
		name = "netlist"
	}
	if _, err := fmt.Fprintf(w, ".model %s\n", blifToken(name)); err != nil {
		return err
	}
	var ins []string
	for _, id := range n.inputs {
		ins = append(ins, n.blifNet(id))
	}
	if _, err := fmt.Fprintf(w, ".inputs %s\n", strings.Join(ins, " ")); err != nil {
		return err
	}
	var outs []string
	for _, id := range n.outputs {
		outs = append(outs, n.blifNet(id))
	}
	if _, err := fmt.Fprintf(w, ".outputs %s\n", strings.Join(outs, " ")); err != nil {
		return err
	}
	for _, g := range n.gates {
		if err := n.writeGateBLIF(w, &g); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, ".end")
	return err
}

// blifNet returns a unique BLIF identifier for a net: its sanitized name
// suffixed with the net id to guarantee uniqueness.
func (n *Netlist) blifNet(id NetID) string {
	return fmt.Sprintf("%s_n%d", blifToken(n.nets[id].name), int(id))
}

func blifToken(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}

func (n *Netlist) writeGateBLIF(w io.Writer, g *Gate) error {
	if g.Kind == Dff {
		_, err := fmt.Fprintf(w, ".latch %s %s re clk 0\n", n.blifNet(g.In[0]), n.blifNet(g.Out))
		return err
	}
	var names []string
	for _, in := range g.In {
		names = append(names, n.blifNet(in))
	}
	names = append(names, n.blifNet(g.Out))
	if _, err := fmt.Fprintf(w, ".names %s\n", strings.Join(names, " ")); err != nil {
		return err
	}
	k := len(g.In)
	var rows []string
	switch g.Kind {
	case Buf:
		rows = []string{"1 1"}
	case Not:
		rows = []string{"0 1"}
	case And:
		rows = []string{strings.Repeat("1", k) + " 1"}
	case Nand:
		// NAND = OR of complemented literals.
		for i := 0; i < k; i++ {
			rows = append(rows, dontCareRow(k, i, '0')+" 1")
		}
	case Or:
		for i := 0; i < k; i++ {
			rows = append(rows, dontCareRow(k, i, '1')+" 1")
		}
	case Nor:
		rows = []string{strings.Repeat("0", k) + " 1"}
	case Xor:
		rows = []string{"10 1", "01 1"}
	case Xnor:
		rows = []string{"00 1", "11 1"}
	case Mux2:
		// inputs a, b, sel: out = sel ? b : a
		rows = []string{"1-0 1", "-11 1"}
	default:
		return fmt.Errorf("gate: cannot export %v to BLIF", g.Kind)
	}
	for _, r := range rows {
		if _, err := fmt.Fprintln(w, r); err != nil {
			return err
		}
	}
	return nil
}

// dontCareRow builds a k-wide cover row of '-' with v at position i.
func dontCareRow(k, i int, v byte) string {
	b := []byte(strings.Repeat("-", k))
	b[i] = v
	return string(b)
}
