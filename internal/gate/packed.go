package gate

import "math/bits"

// PackedEval is the bit-parallel sibling of Eval: it evaluates a Netlist
// across up to 64 independent lanes at once, one lane per bit of a uint64
// word. Every net holds a packed word (bit l is the net's value in lane
// l), and every gate evaluation is a handful of word operations — an AND
// gate over N inputs costs N-1 machine ANDs for all 64 lanes together,
// which is the whole point: a sweep of 64 scenarios prices the shared
// netlist roughly once instead of 64 times.
//
// Lane semantics are exactly Eval's, applied per bit: all nets start at
// logic 0, a settle pass is one levelized sweep, and a per-lane value
// change counts one transition of the net's capacitance in that lane
// (popcount over the change word). The packed evaluator is therefore
// bit-identical, lane by lane, to 64 scalar Evals fed the per-lane input
// slices — the cross-check test in packed_test.go enforces it.
//
// Toggle and energy accounting aggregates across active lanes (the sum of
// the per-lane scalar accounts); per-lane energy attribution, when
// needed, belongs to the caller, which knows which output planes it reads
// per lane.
type PackedEval struct {
	nl    *Netlist
	tech  Tech
	order []int // levelized combinational gate indices

	val     []uint64 // packed net values, bit l = lane l
	toggles []uint64 // per-net transitions summed over active lanes

	totalToggles uint64
	switchedCap  float64 // Σ C_net per transition, farads
	caps         []float64
	cycles       uint64
	mask         uint64 // active-lane mask; transitions outside it are free
}

// NewPackedEval validates the netlist and creates a packed evaluator with
// every lane active. All nets start at logic 0 in every lane with no
// transition charged.
func NewPackedEval(nl *Netlist, tech Tech) (*PackedEval, error) {
	order, err := nl.Validate()
	if err != nil {
		return nil, err
	}
	e := &PackedEval{
		nl:      nl,
		tech:    tech,
		order:   order,
		val:     make([]uint64, len(nl.nets)),
		toggles: make([]uint64, len(nl.nets)),
		caps:    make([]float64, len(nl.nets)),
		mask:    ^uint64(0),
	}
	isOut := make([]bool, len(nl.nets))
	for _, o := range nl.outputs {
		isOut[o] = true
	}
	for i, nt := range nl.nets {
		switch {
		case nt.cap >= 0:
			e.caps[i] = nt.cap
		case isOut[i]:
			e.caps[i] = tech.COut
		default:
			e.caps[i] = tech.CPD
		}
	}
	return e, nil
}

// SetLaneMask restricts transition accounting to the lanes set in m.
// Values still propagate in every lane (a masked lane keeps simulating,
// its transitions are just not charged), so re-enabling a lane later
// resumes exact accounting from its current state.
func (e *PackedEval) SetLaneMask(m uint64) { e.mask = m }

// LaneMask returns the active-lane mask.
func (e *PackedEval) LaneMask() uint64 { return e.mask }

// setNet assigns a packed net value, charging one transition per active
// lane whose bit changed.
func (e *PackedEval) setNet(id NetID, v uint64) {
	changed := (e.val[id] ^ v) & e.mask
	if e.val[id] == v {
		return
	}
	e.val[id] = v
	if changed != 0 {
		n := uint64(bits.OnesCount64(changed))
		e.toggles[id] += n
		e.totalToggles += n
		e.switchedCap += e.caps[id] * float64(n)
	}
}

// SetInput assigns a packed primary-input word (bit l drives lane l).
// Call Settle afterwards to propagate.
func (e *PackedEval) SetInput(id NetID, v uint64) {
	e.setNet(id, v)
}

// SetLaneInputs assigns the low bits of v to the primary inputs in
// creation order, in lane l only — the packed analog of Eval.SetInputs
// for a single lane.
func (e *PackedEval) SetLaneInputs(lane int, v uint64) {
	bit := uint64(1) << uint(lane)
	for i, id := range e.nl.inputs {
		w := e.val[id] &^ bit
		if v&(1<<uint(i)) != 0 {
			w |= bit
		}
		e.setNet(id, w)
	}
}

func (e *PackedEval) evalGate(g *Gate) uint64 {
	switch g.Kind {
	case Buf:
		return e.val[g.In[0]]
	case Not:
		return ^e.val[g.In[0]]
	case And, Nand:
		v := e.val[g.In[0]]
		for _, in := range g.In[1:] {
			v &= e.val[in]
		}
		if g.Kind == Nand {
			return ^v
		}
		return v
	case Or, Nor:
		v := e.val[g.In[0]]
		for _, in := range g.In[1:] {
			v |= e.val[in]
		}
		if g.Kind == Nor {
			return ^v
		}
		return v
	case Xor:
		return e.val[g.In[0]] ^ e.val[g.In[1]]
	case Xnor:
		return ^(e.val[g.In[0]] ^ e.val[g.In[1]])
	case Mux2:
		sel := e.val[g.In[2]]
		return (e.val[g.In[0]] &^ sel) | (e.val[g.In[1]] & sel)
	}
	// Unreachable: Drive rejects unknown kinds at construction and
	// Validate re-checks every gate before a PackedEval is created.
	panic("gate: packed evalGate on " + g.Kind.String())
}

// Settle propagates the combinational logic across every lane at once (a
// single levelized pass, since the netlist is acyclic).
func (e *PackedEval) Settle() {
	for _, gi := range e.order {
		g := &e.nl.gates[gi]
		e.setNet(g.Out, e.evalGate(g))
	}
}

// ClockTick captures every DFF's packed D input into its Q output
// simultaneously, then settles the combinational logic — one rising clock
// edge in all lanes.
func (e *PackedEval) ClockTick() {
	type upd struct {
		out NetID
		v   uint64
	}
	var ups []upd
	for i := range e.nl.gates {
		g := &e.nl.gates[i]
		if g.Kind == Dff {
			ups = append(ups, upd{g.Out, e.val[g.In[0]]})
		}
	}
	for _, u := range ups {
		e.setNet(u.out, u.v)
	}
	e.Settle()
	e.cycles++
}

// Output reads the settled packed value of a net (bit l = lane l).
func (e *PackedEval) Output(id NetID) uint64 { return e.val[id] }

// LaneOutputBits packs the primary outputs of one lane into a uint64
// (first output at bit 0) — the per-lane analog of Eval.OutputBits.
func (e *PackedEval) LaneOutputBits(lane int) uint64 {
	bit := uint64(1) << uint(lane)
	var v uint64
	for i, id := range e.nl.outputs {
		if e.val[id]&bit != 0 {
			v |= 1 << uint(i)
		}
	}
	return v
}

// Toggles returns the transition count of one net summed over active
// lanes.
func (e *PackedEval) Toggles(id NetID) uint64 { return e.toggles[id] }

// TotalToggles returns the total transitions across all nets and active
// lanes.
func (e *PackedEval) TotalToggles() uint64 { return e.totalToggles }

// SwitchedCap returns the accumulated switched capacitance in farads,
// summed over active lanes.
func (e *PackedEval) SwitchedCap() float64 { return e.switchedCap }

// Energy returns the accumulated dynamic energy in joules under the
// paper's E = (VDD²/4)·C-per-transition convention, summed over active
// lanes.
func (e *PackedEval) Energy() float64 {
	return e.tech.EnergyPerTransition(e.switchedCap)
}

// Cycles returns the number of ClockTicks executed.
func (e *PackedEval) Cycles() uint64 { return e.cycles }

// ResetCounters zeroes the energy/toggle accounting without touching the
// logic state.
func (e *PackedEval) ResetCounters() {
	for i := range e.toggles {
		e.toggles[i] = 0
	}
	e.totalToggles = 0
	e.switchedCap = 0
	e.cycles = 0
}
