package gate

import (
	"math"
	"testing"
	"testing/quick"
)

var testTech = Tech{VDD: 1.8, CPD: 20e-15, COut: 50e-15}

// buildComb constructs a netlist computing one gate over two inputs.
func buildComb(t *testing.T, k Kind) (*Netlist, *Eval) {
	t.Helper()
	nl := NewNetlist("comb")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	y := nl.MustGate(k, "y", a, b)
	nl.MarkOutput(y)
	e, err := NewEval(nl, testTech)
	if err != nil {
		t.Fatal(err)
	}
	return nl, e
}

func TestGateTruthTables(t *testing.T) {
	cases := []struct {
		kind Kind
		tt   [4]bool // outputs for ab = 00,01,10,11 (a is bit0)
	}{
		{And, [4]bool{false, false, false, true}},
		{Or, [4]bool{false, true, true, true}},
		{Nand, [4]bool{true, true, true, false}},
		{Nor, [4]bool{true, false, false, false}},
		{Xor, [4]bool{false, true, true, false}},
		{Xnor, [4]bool{true, false, false, true}},
	}
	for _, c := range cases {
		_, e := buildComb(t, c.kind)
		for v := uint64(0); v < 4; v++ {
			e.SetInputs(v)
			e.Settle()
			want := c.tt[v]
			if got := e.OutputBits() == 1; got != want {
				t.Errorf("%v(%02b) = %v, want %v", c.kind, v, got, want)
			}
		}
	}
}

func TestNotBufMux(t *testing.T) {
	nl := NewNetlist("t")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	s := nl.AddInput("s")
	nb := nl.MustGate(Not, "nb", a)
	bf := nl.MustGate(Buf, "bf", a)
	mx := nl.MustGate(Mux2, "mx", a, b, s)
	nl.MarkOutput(nb)
	nl.MarkOutput(bf)
	nl.MarkOutput(mx)
	e, err := NewEval(nl, testTech)
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(0); v < 8; v++ {
		e.SetInputs(v)
		e.Settle()
		av := v&1 != 0
		bv := v&2 != 0
		sv := v&4 != 0
		if e.Output(nb) != !av {
			t.Errorf("NOT wrong at %03b", v)
		}
		if e.Output(bf) != av {
			t.Errorf("BUF wrong at %03b", v)
		}
		want := av
		if sv {
			want = bv
		}
		if e.Output(mx) != want {
			t.Errorf("MUX2 wrong at %03b", v)
		}
	}
}

func TestWideAnd(t *testing.T) {
	nl := NewNetlist("t")
	var ins []NetID
	for i := 0; i < 5; i++ {
		ins = append(ins, nl.AddInput("i"))
	}
	y := nl.MustGate(And, "y", ins...)
	nl.MarkOutput(y)
	e, err := NewEval(nl, testTech)
	if err != nil {
		t.Fatal(err)
	}
	e.SetInputs(0x1F)
	e.Settle()
	if !e.Output(y) {
		t.Error("AND of all-ones must be 1")
	}
	e.SetInputs(0x1D)
	e.Settle()
	if e.Output(y) {
		t.Error("AND with a zero input must be 0")
	}
}

func TestToggleCounting(t *testing.T) {
	nl := NewNetlist("t")
	a := nl.AddInput("a")
	y := nl.MustGate(Not, "y", a)
	nl.MarkOutput(y)
	e, err := NewEval(nl, testTech)
	if err != nil {
		t.Fatal(err)
	}
	e.Settle() // y rises to 1: one toggle on y
	if e.Toggles(y) != 1 || e.Toggles(a) != 0 {
		t.Fatalf("after init: toggles(y)=%d toggles(a)=%d", e.Toggles(y), e.Toggles(a))
	}
	e.SetInputs(1)
	e.Settle() // a rises, y falls
	if e.Toggles(a) != 1 || e.Toggles(y) != 2 {
		t.Errorf("toggles a=%d y=%d, want 1 2", e.Toggles(a), e.Toggles(y))
	}
	if e.TotalToggles() != 3 {
		t.Errorf("TotalToggles=%d, want 3", e.TotalToggles())
	}
}

func TestEnergyConvention(t *testing.T) {
	nl := NewNetlist("t")
	a := nl.AddInput("a")
	y := nl.MustGate(Buf, "y", a)
	nl.MarkOutput(y)
	e, err := NewEval(nl, testTech)
	if err != nil {
		t.Fatal(err)
	}
	e.SetInputs(1)
	e.Settle()
	// a toggled once (CPD, input default), y toggled once (COut).
	wantCap := testTech.CPD + testTech.COut
	if math.Abs(e.SwitchedCap()-wantCap) > 1e-21 {
		t.Errorf("SwitchedCap=%g, want %g", e.SwitchedCap(), wantCap)
	}
	wantE := testTech.VDD * testTech.VDD / 4 * wantCap
	if math.Abs(e.Energy()-wantE) > 1e-21 {
		t.Errorf("Energy=%g, want %g", e.Energy(), wantE)
	}
}

func TestSetCapOverride(t *testing.T) {
	nl := NewNetlist("t")
	a := nl.AddInput("a")
	y := nl.MustGate(Buf, "y", a)
	nl.MarkOutput(y)
	nl.SetCap(a, 0) // free input transitions
	nl.SetCap(y, 1e-12)
	e, err := NewEval(nl, testTech)
	if err != nil {
		t.Fatal(err)
	}
	e.SetInputs(1)
	e.Settle()
	if math.Abs(e.SwitchedCap()-1e-12) > 1e-21 {
		t.Errorf("SwitchedCap=%g, want 1e-12", e.SwitchedCap())
	}
}

func TestDffCapturesOnTick(t *testing.T) {
	nl := NewNetlist("t")
	d := nl.AddInput("d")
	q := nl.AddNet("q")
	if err := nl.Drive(Dff, q, d); err != nil {
		t.Fatal(err)
	}
	nl.MarkOutput(q)
	e, err := NewEval(nl, testTech)
	if err != nil {
		t.Fatal(err)
	}
	e.SetInputs(1)
	e.Settle()
	if e.Output(q) {
		t.Error("DFF must not propagate before the clock edge")
	}
	e.ClockTick()
	if !e.Output(q) {
		t.Error("DFF must capture D on the clock edge")
	}
	if e.Cycles() != 1 {
		t.Errorf("Cycles=%d, want 1", e.Cycles())
	}
}

func TestDffToggleRegister(t *testing.T) {
	// q' = NOT q through a DFF: divides the clock by two.
	nl := NewNetlist("t")
	q := nl.AddNet("q")
	nq := nl.AddNet("nq")
	if err := nl.Drive(Not, nq, q); err != nil {
		t.Fatal(err)
	}
	if err := nl.Drive(Dff, q, nq); err != nil {
		t.Fatal(err)
	}
	nl.MarkOutput(q)
	e, err := NewEval(nl, testTech)
	if err != nil {
		t.Fatal(err)
	}
	e.Settle()
	vals := make([]bool, 0, 4)
	for i := 0; i < 4; i++ {
		e.ClockTick()
		vals = append(vals, e.Output(q))
	}
	want := []bool{true, false, true, false}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("toggle sequence %v, want %v", vals, want)
		}
	}
}

func TestResetCounters(t *testing.T) {
	_, e := buildComb(t, Xor)
	e.Cycle(1)
	e.Cycle(2)
	if e.TotalToggles() == 0 {
		t.Fatal("expected some toggles")
	}
	e.ResetCounters()
	if e.TotalToggles() != 0 || e.SwitchedCap() != 0 || e.Cycles() != 0 {
		t.Error("ResetCounters must zero all accounting")
	}
	// Logic state preserved: inputs still 10 -> XOR=1.
	if e.OutputBits() != 1 {
		t.Error("ResetCounters must not disturb logic state")
	}
}

func TestXorChainParity(t *testing.T) {
	// Property: a chain of XORs computes parity for random inputs.
	nl := NewNetlist("parity")
	const w = 8
	var ins []NetID
	for i := 0; i < w; i++ {
		ins = append(ins, nl.AddInput("i"))
	}
	acc := ins[0]
	for i := 1; i < w; i++ {
		acc = nl.MustGate(Xor, "x", acc, ins[i])
	}
	nl.MarkOutput(acc)
	e, err := NewEval(nl, testTech)
	if err != nil {
		t.Fatal(err)
	}
	f := func(v uint8) bool {
		e.SetInputs(uint64(v))
		e.Settle()
		parity := false
		for b := 0; b < 8; b++ {
			if v&(1<<uint(b)) != 0 {
				parity = !parity
			}
		}
		return e.Output(acc) == parity
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEnergyMonotoneNondecreasing(t *testing.T) {
	_, e := buildComb(t, Xor)
	prev := 0.0
	f := func(v uint8) bool {
		e.Cycle(uint64(v % 4))
		cur := e.Energy()
		ok := cur >= prev
		prev = cur
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestApplyFanoutCaps(t *testing.T) {
	nl := NewNetlist("fan")
	a := nl.AddInput("a") // drives 3 gate inputs
	b := nl.AddInput("b") // drives 1
	x := nl.MustGate(And, "x", a, b)
	y := nl.MustGate(Or, "y", a, x)
	z := nl.MustGate(Not, "z", a)
	nl.MarkOutput(y)
	nl.MarkOutput(z)
	nl.ApplyFanoutCaps(10e-15, 5e-15, 40e-15)
	e, err := NewEval(nl, testTech)
	if err != nil {
		t.Fatal(err)
	}
	// a: wire 10 + 3 loads x5 = 25 fF; toggle it and check switched cap.
	e.SetInput(a, true)
	if got, want := e.caps[a], 25e-15; math.Abs(got-want) > 1e-21 {
		t.Errorf("cap(a)=%g, want %g", got, want)
	}
	// b: 10 + 5 = 15 fF.
	if got, want := e.caps[b], 15e-15; math.Abs(got-want) > 1e-21 {
		t.Errorf("cap(b)=%g, want %g", got, want)
	}
	// y: output, fanout 0: 10 + 0 + 40 = 50 fF.
	if got, want := e.caps[y], 50e-15; math.Abs(got-want) > 1e-21 {
		t.Errorf("cap(y)=%g, want %g", got, want)
	}
	_ = x
	_ = z
}

func TestFanoutCapsChangeEnergyDistribution(t *testing.T) {
	// Under fanout-aware caps, toggling a high-fanout select line must
	// cost more than under uniform caps relative to a data line.
	build := func() *Netlist {
		nl := NewNetlist("m")
		sel := nl.AddInput("sel")
		var outs []NetID
		for i := 0; i < 8; i++ {
			d := nl.AddInput("d")
			outs = append(outs, nl.MustGate(And, "o", d, sel))
		}
		for _, o := range outs {
			nl.MarkOutput(o)
		}
		return nl
	}
	uniform := build()
	eu, err := NewEval(uniform, testTech)
	if err != nil {
		t.Fatal(err)
	}
	fanout := build()
	fanout.ApplyFanoutCaps(testTech.CPD, testTech.CPD/2, testTech.COut)
	ef, err := NewEval(fanout, testTech)
	if err != nil {
		t.Fatal(err)
	}
	// Toggle only the select input on both.
	eu.SetInput(uniform.Inputs()[0], true)
	ef.SetInput(fanout.Inputs()[0], true)
	// Select drives 8 loads: fanout-aware must charge more for this toggle.
	if ef.SwitchedCap() <= eu.SwitchedCap() {
		t.Errorf("fanout-aware select toggle %g must exceed uniform %g",
			ef.SwitchedCap(), eu.SwitchedCap())
	}
}
