// Package tlm is the transaction-level fast path: it estimates the energy
// of a scenario from whole bursts/transactions instead of stepping every
// HCLK cycle, trading exactness for an order of magnitude of throughput.
//
// The estimator is a calibrated hybrid, after the TLM methodology of
// "Fast and Accurate Transaction Level Modeling of an Extended AMBA2.0
// Bus Architecture" (PAPERS.md):
//
//  1. a short cycle-accurate calibration prefix (1/16 of the run, clamped
//     to [512, 8192] cycles) executes on the exact kernel and measures the
//     true per-block energies of the workload's stationary mix;
//  2. a transaction-granularity walk over the generated workload scripts
//     counts power-FSM instructions for the full run without simulating
//     the bus — each burst beat contributes its (1 + wait-states) transfer
//     cycles, inter-sequence idle gaps and the post-script tail classify
//     as IDLE_HO exactly like the analyzer's classifier, and ownership
//     changes insert one handover cycle;
//  3. analytic expected per-instruction energies, derived from the fitted
//     macromodel coefficients and the workload's data-pattern mix, turn
//     the instruction counts into per-block energies; and
//  4. per-block calibration factors (measured prefix energy over
//     walk-estimated prefix energy) rescale the analytic expectations so
//     any stationary modeling bias — including arbitration effects the
//     preemption-free walk does not replay — cancels out. The post-script
//     dead tail is the exception: a drained bus has no switching for the
//     prefix to correct, so tail idle cycles keep the exact analytic
//     clock-plus-idle-arbitration price instead of a busy-region factor.
//
// The contract is therefore approximate-by-construction: when the
// workload mix is stationary the residual error is the prefix sampling
// noise, measured (not assumed) by tools/tlmcheck and gated in CI against
// the budget recorded in EXPERIMENTS.md. When the run is no longer than
// the calibration prefix the estimate degenerates to the measured
// cycle-accurate result. Results are deterministic: the same Spec always
// yields the same Outcome, so TLM results are cacheable — under their own
// CanonicalKey accuracy class, never the cycle-accurate one.
package tlm

import (
	"context"
	"fmt"

	"ahbpower/internal/amba/ahb"
	"ahbpower/internal/core"
	"ahbpower/internal/exec"
	"ahbpower/internal/power"
	"ahbpower/internal/topo"
	"ahbpower/internal/workload"
)

// Name identifies the transaction-level estimator in results, metrics and
// logs, alongside the exec backend names.
const Name = "tlm"

// Calibration prefix sizing: prefixDivisor of the run is simulated
// cycle-accurately, clamped to [prefixMin, prefixMax] cycles. The divisor
// bounds the speedup from above (≈ prefixDivisor for long runs); the
// minimum keeps the measured mix statistically meaningful; the maximum
// bounds the absolute calibration cost of very long runs.
const (
	prefixDivisor = 16
	prefixMin     = 512
	prefixMax     = 8192
)

// Spec describes one estimation request — the projection of an
// engine.Scenario onto what the transaction-level estimator needs,
// mirroring lane.Spec for the packed backend.
type Spec struct {
	// Name labels errors.
	Name string
	// Topo is the canonical topology to estimate; the prefix system is
	// built from it exactly like the cycle-accurate path.
	Topo topo.Topology
	// Analyzer configures the power analyzer of the calibration prefix and
	// supplies the macromodels (characterized Models or structural
	// defaults) the analytic expectations are derived from.
	Analyzer core.AnalyzerConfig
	// Workloads are the explicit per-master traffic configurations; when
	// empty the topology's workload hints and then the paper testbench
	// (sized to Cycles) apply, mirroring the engine's traffic resolution.
	Workloads []workload.Config
	// Cycles is the bus-cycle horizon of the estimate.
	Cycles uint64
}

// Traits captures the scenario features that decide transaction-level
// eligibility, the TLM analog of exec.Traits/lane.Traits. The engine
// fills it from a Scenario; anything the estimator cannot honor shows up
// here and surfaces as a conservative fallback to cycle accuracy.
type Traits struct {
	// HasFaults marks an active fault-injection plan. Fault effects are
	// per-cycle kernel interventions a transaction walk cannot model;
	// the ISSUE contract is a conservative fallback to cycle accuracy.
	HasFaults bool
	// HasSetup marks a custom Setup hook (arbitrary kernel-level code).
	HasSetup bool
	// KeepSystem asks for the built core.System in the result; the
	// estimator only builds a short-lived prefix system.
	KeepSystem bool
	// SkipAnalyzer disables power analysis — with no analyzer there is no
	// energy to estimate and the exact path is strictly cheaper.
	SkipAnalyzer bool
	// HasDPM marks an attached dynamic-power-management estimator, which
	// needs the full per-cycle power trace.
	HasDPM bool
	// HasTraceWindow marks windowed power traces (per-cycle samples).
	HasTraceWindow bool
	// RecordActivity marks per-signal switching statistics.
	RecordActivity bool
	// HasTraceRecorder marks a streaming metrics.Trace subscriber.
	HasTraceRecorder bool
}

// Unsupported returns the reason the transaction-level estimator cannot
// honor a scenario with these traits, or "" when it can. Reason strings
// shared with the other backends match their Unsupported wording.
func (t Traits) Unsupported() string {
	switch {
	case t.HasFaults:
		return "active fault-injection plan"
	case t.HasSetup:
		return "custom Setup hook"
	case t.KeepSystem:
		return "KeepSystem retains the kernel-backed system"
	case t.SkipAnalyzer:
		return "no analyzer attached, nothing to estimate"
	case t.HasDPM:
		return "DPM estimator needs the per-cycle power trace"
	case t.HasTraceWindow:
		return "windowed power traces need per-cycle samples"
	case t.RecordActivity:
		return "per-signal activity recording needs per-cycle samples"
	case t.HasTraceRecorder:
		return "streaming trace recorder attached"
	}
	return ""
}

// Outcome is the result of one estimation: the approximate analogs of the
// cycle-accurate Report/Stats plus the calibration telemetry that lets
// callers judge how much of the run was actually measured.
type Outcome struct {
	// Report is the estimated analysis outcome, structurally identical to
	// the cycle-accurate core.Report (shares, table, block breakdown).
	Report *core.Report
	// Stats is the estimated per-instruction energy table, sorted like
	// power.FSM.Stats (descending energy, then instruction name).
	Stats []power.InstructionStat
	// Beats is the estimated number of data beats within the horizon.
	Beats uint64
	// Counts are estimated protocol-event counters in the bus monitor's
	// key space (nonseq/seq/wait/handover/idle); only nonzero entries.
	Counts map[string]uint64
	// Cycles echoes the estimation horizon.
	Cycles uint64
	// CalibrationCycles is the length of the cycle-accurate prefix.
	CalibrationCycles uint64
	// CalibrationBackend is the exec backend that ran the prefix.
	CalibrationBackend string
	// CalibrationFactor is the overall measured/estimated energy ratio
	// over the prefix window (1 means the analytic expectations were
	// already exact for this mix).
	CalibrationFactor float64
}

// CalibrationPrefix returns the cycle-accurate prefix length for a run of
// the given horizon: cycles/prefixDivisor clamped to [prefixMin,
// prefixMax], and never longer than the run itself.
func CalibrationPrefix(cycles uint64) uint64 {
	p := cycles / prefixDivisor
	if p < prefixMin {
		p = prefixMin
	}
	if p > prefixMax {
		p = prefixMax
	}
	if p > cycles {
		p = cycles
	}
	return p
}

// Prepared is a Spec with its traffic resolved and scripts generated —
// the estimation-ready form. The generated scripts are shared read-only
// between the calibration prefix (the masters enqueue but never mutate
// them) and the transaction walk, so each spec pays workload generation
// exactly once, like the cycle-accurate path does.
type Prepared struct {
	spec    Spec
	ct      topo.Topology
	cfgs    []workload.Config
	scripts [][]ahb.Sequence
}

// Prepare validates a spec, resolves its traffic into one configuration
// per active master and generates the workload scripts. Preparation is
// the allocation-heavy half of an estimate; Estimate on the result runs
// the calibration prefix and the walk.
func Prepare(spec Spec) (*Prepared, error) {
	if spec.Cycles == 0 {
		return nil, fmt.Errorf("tlm: spec %q: Cycles must be positive", spec.Name)
	}
	ct := spec.Topo.Canonical()
	if err := topo.Check(ct); err != nil {
		return nil, fmt.Errorf("tlm: spec %q: %w", spec.Name, err)
	}
	cfgs, err := resolveConfigs(&ct, spec.Workloads, spec.Cycles)
	if err != nil {
		return nil, fmt.Errorf("tlm: spec %q: %w", spec.Name, err)
	}
	scripts := make([][]ahb.Sequence, 0, len(cfgs))
	for _, cfg := range cfgs {
		seqs, gerr := workload.Generate(cfg)
		if gerr != nil {
			return nil, fmt.Errorf("tlm: spec %q: %w", spec.Name, gerr)
		}
		scripts = append(scripts, seqs)
	}
	return &Prepared{spec: spec, ct: ct, cfgs: cfgs, scripts: scripts}, nil
}

// Estimate runs the calibrated transaction-level estimation for a
// prepared spec. The context cancels the cycle-accurate calibration
// prefix exactly like core.System.RunContext; the walk itself is not
// cancellable (it is a few milliseconds even for very long horizons).
func (p *Prepared) Estimate(ctx context.Context) (*Outcome, error) {
	prefix := CalibrationPrefix(p.spec.Cycles)
	measured, backendName, err := runPrefix(ctx, p.ct, p.spec.Analyzer, p.scripts, prefix)
	if err != nil {
		return nil, fmt.Errorf("tlm: spec %q: calibration prefix: %w", p.spec.Name, err)
	}

	w := runWalk(&p.ct, p.scripts, p.spec.Cycles, prefix)
	exp := newExpecter(&p.ct, p.spec.Analyzer, p.cfgs)
	cal := calibrate(exp, w, measured)

	rep, sts := cal.report(&p.ct, p.spec.Analyzer, w, p.spec.Cycles)
	return &Outcome{
		Report:             rep,
		Stats:              sts,
		Beats:              w.beats,
		Counts:             w.monitorCounts(),
		Cycles:             p.spec.Cycles,
		CalibrationCycles:  prefix,
		CalibrationBackend: backendName,
		CalibrationFactor:  cal.overall,
	}, nil
}

// Estimate prepares and estimates one spec in a single call.
func Estimate(ctx context.Context, spec Spec) (*Outcome, error) {
	p, err := Prepare(spec)
	if err != nil {
		return nil, err
	}
	return p.Estimate(ctx)
}

// measuredPrefix is what the calibration run yields: the true per-block
// energies and the total over the prefix window.
type measuredPrefix struct {
	block [power.NumBlocks]float64
	total float64
}

// runPrefix builds the scenario's system, enqueues the already-generated
// walk scripts (one per active master, the exact traffic LoadWorkload
// would have generated from the same configurations), attaches the
// analyzer and runs the cycle-accurate kernel for the prefix window.
func runPrefix(ctx context.Context, ct topo.Topology, az core.AnalyzerConfig,
	scripts [][]ahb.Sequence, prefix uint64) (measuredPrefix, string, error) {
	var m measuredPrefix
	sys, err := core.NewSystemTopo(ct)
	if err != nil {
		return m, "", err
	}
	if len(sys.Masters) != len(scripts) {
		return m, "", fmt.Errorf("tlm: %d active masters but %d scripts", len(sys.Masters), len(scripts))
	}
	for i, mm := range sys.Masters {
		mm.Enqueue(scripts[i]...)
	}
	an, err := core.Attach(sys, az)
	if err != nil {
		return m, "", err
	}
	traits := exec.Traits{
		DeltaInstrumented: az.Style == core.StylePrivate,
		HasDPM:            az.DPM != nil,
		ClockPeriod:       ct.ClockPeriod(),
	}
	backend, _, err := exec.Select(exec.NameAuto, traits)
	if err != nil {
		return m, "", err
	}
	if err := backend.Run(ctx, sys, prefix); err != nil {
		return m, backend.Name(), err
	}
	bd := an.Breakdown()
	for _, b := range power.Blocks() {
		m.block[b] = bd.Energy(b)
	}
	m.total = an.FSM().TotalEnergy()
	return m, backend.Name(), nil
}

// resolveConfigs expands a scenario's traffic sources into one
// workload.Config per active master, mirroring the engine's resolution
// order (explicit Workloads, then topology hints, then the paper
// testbench sized to the horizon) and core.System.LoadWorkload's
// fill-with-shifted-seed semantics, so the walk scripts describe exactly
// the traffic the cycle-accurate path would drive.
func resolveConfigs(ct *topo.Topology, explicit []workload.Config, cycles uint64) ([]workload.Config, error) {
	n := ct.ActiveMasters()
	if n == 0 {
		return nil, fmt.Errorf("topology has no active masters")
	}
	src := explicit
	if len(src) == 0 {
		hints, err := ct.Workloads()
		if err != nil {
			return nil, err
		}
		src = hints
	}
	out := make([]workload.Config, n)
	if len(src) == 0 {
		// Paper testbench sized to the horizon, as LoadPaperWorkload does.
		perMaster := int(cycles)/100 + 2
		base, size := ct.AddrSpan()
		for m := 0; m < n; m++ {
			cfg := workload.PaperTestbench(m, perMaster)
			cfg.AddrBase, cfg.AddrSize = base, size
			out[m] = cfg
		}
		return out, nil
	}
	for m := 0; m < n; m++ {
		cfg := src[len(src)-1]
		if m < len(src) {
			cfg = src[m]
		} else {
			cfg.Seed += int64(m) * 104729
		}
		out[m] = cfg
	}
	return out, nil
}
