package tlm

import (
	"sort"

	"ahbpower/internal/core"
	"ahbpower/internal/power"
	"ahbpower/internal/topo"
	"ahbpower/internal/workload"
)

// expecter holds the analytic expected energy of every power-FSM
// instruction, decomposed per sub-block. The expectations come from the
// same macromodel coefficients the cycle-accurate analyzer evaluates,
// applied to the workload's *expected* Hamming distances instead of the
// per-cycle observed ones: the macromodels are linear in the HD terms, so
// E[energy] = energy(E[hd]) holds exactly for each block.
type expecter struct {
	comp [power.NumStates * power.NumStates][power.NumBlocks]float64
}

// patternHD is the expected write-data Hamming distance per beat for a
// data pattern on a w-bit bus (see workload.Pattern docs: random averages
// w/2 flips, the correlated patterns average ~2).
func patternHD(p workload.Pattern, w int) float64 {
	if p == workload.PatternRandom {
		return float64(w) / 2
	}
	return 2
}

// Expected Hamming distances of the control-path signals during
// transfers: locality-windowed addresses mostly increment (hdAddr), the
// transfer-type/control bundle toggles a bit or two per cycle (hdCtrl),
// and a handover flips one select line off and one on (hdSel).
const (
	expHDAddr = 2
	expHDCtrl = 1
	expHDSel  = 2
)

// newExpecter derives the instruction-energy table from the analyzer
// configuration (characterized Models or the structural defaults, exactly
// as core.Attach resolves them) and the workload mix.
func newExpecter(ct *topo.Topology, az core.AnalyzerConfig, cfgs []workload.Config) *expecter {
	tech := az.Tech
	if tech.VDD == 0 {
		tech = power.DefaultTech()
	}
	models := az.Models
	if models == nil {
		// len(ct.Masters) mirrors bus construction: default master included.
		m, err := power.DefaultModels(len(ct.Masters), len(ct.Slaves), ct.DataWidth, tech)
		if err != nil {
			// Check(ct) validated the shape; defaults cannot fail for it.
			panic(err)
		}
		models = m
	} else {
		models = models.Clone()
	}
	hdData := 0.0
	if len(cfgs) > 0 {
		for _, c := range cfgs {
			hdData += patternHD(c.Pattern, ct.DataWidth)
		}
		hdData /= float64(len(cfgs))
	}

	// The models memoize integer HDs; round the expected values once.
	hdW := int(hdData + 0.5) // write-data flips per write beat
	dec, m2s, s2m, arb := models.Dec, models.M2S, models.S2M, models.Arb
	m2sClk, s2mClk := m2s.ClockEnergy(), s2m.ClockEnergy()

	e := &expecter{}
	isXfer := func(s power.State) bool { return s == power.Read || s == power.Write }
	for f := 0; f < power.NumStates; f++ {
		for t := 0; t < power.NumStates; t++ {
			from, to := power.State(f), power.State(t)
			var c [power.NumBlocks]float64
			c[power.BlockM2S] = m2sClk
			c[power.BlockS2M] = s2mClk
			switch {
			case to == power.Write:
				in := expHDAddr + expHDCtrl + hdW
				c[power.BlockDEC] = dec.Energy(expHDAddr)
				c[power.BlockM2S] += m2s.Energy(in, 0, in)
				c[power.BlockS2M] += s2m.Energy(1, 0, 1)
				c[power.BlockARB] = arbXferEnergy(arb, from)
			case to == power.Read:
				in := expHDAddr + expHDCtrl
				out := hdW + 1 // read data comes back with the written pattern
				c[power.BlockDEC] = dec.Energy(expHDAddr)
				c[power.BlockM2S] += m2s.Energy(in, 0, in)
				c[power.BlockS2M] += s2m.Energy(out, 0, out)
				c[power.BlockARB] = arbXferEnergy(arb, from)
			case to == power.IdleHO && isXfer(from):
				// Ownership is being released or handed over: the control
				// path goes idle, the mux selects and the arbiter's
				// request/grant lines switch.
				c[power.BlockM2S] += m2s.Energy(expHDCtrl, expHDSel, expHDCtrl)
				c[power.BlockARB] = arb.Energy(expHDSel, expHDSel, true, true)
			case to == power.IdleHO:
				c[power.BlockARB] = arb.Energy(0, 0, false, true)
			}
			e.comp[f*power.NumStates+t] = c
		}
	}
	return e
}

// arbXferEnergy is the expected arbiter energy of a transfer cycle: quiet
// while the same master keeps the bus, one request/grant toggle when the
// transfer (re)starts from an idle state.
func arbXferEnergy(arb *power.ArbiterModel, from power.State) float64 {
	if from == power.Read || from == power.Write {
		return arb.Energy(0, 0, false, false)
	}
	return arb.Energy(1, 1, false, false)
}

// calibration rescales the analytic expectations with per-block factors
// measured on the cycle-accurate prefix: factor_b = measured_b /
// walk-estimated_b over the same window. Any stationary bias in the
// expectations — approximate HDs, unmodeled glitching styles, arbitration
// effects the walk does not replay — divides out; what remains is the mix
// drift between the prefix and the rest of the run, which tools/tlmcheck
// measures against the documented budget.
type calibration struct {
	exp     *expecter
	factor  [power.NumBlocks]float64
	overall float64
}

func calibrate(exp *expecter, w *walkResult, m measuredPrefix) *calibration {
	var walkPre [power.NumBlocks]float64
	for idx, n := range w.pre {
		if n == 0 {
			continue
		}
		for b := 0; b < int(power.NumBlocks); b++ {
			walkPre[b] += float64(n) * exp.comp[idx][b]
		}
	}
	walkTotal := 0.0
	for _, e := range walkPre {
		walkTotal += e
	}
	cal := &calibration{exp: exp, overall: 1}
	if walkTotal > 0 && m.total > 0 {
		cal.overall = m.total / walkTotal
	}
	// The factors are busy-region ratios: any post-script tail inside the
	// prefix is subtracted from both sides first. Dead-tail idles cost
	// clock plus idle arbitration and nothing else — the analytic
	// expectation is already exact for them — while busy-region gap idles
	// carry request/grant switching that makes them severalfold more
	// expensive. Folding the tail into the ratio would let a busy prefix
	// inflate a dominant tail (or a tail-heavy prefix deflate busy
	// traffic); excluding it keeps the degenerate prefix==horizon case
	// exact, because the subtracted term is added back verbatim in report.
	tc := exp.comp[int(power.IdleHO)*power.NumStates+int(power.IdleHO)]
	for b := 0; b < int(power.NumBlocks); b++ {
		tail := float64(w.tailPre) * tc[b]
		meas, walk := m.block[b]-tail, walkPre[b]-tail
		if walk > 0 && meas > 0 {
			cal.factor[b] = meas / walk
		} else {
			cal.factor[b] = cal.overall
		}
	}
	return cal
}

// report assembles the estimated Report/Stats from the full-horizon
// instruction counts and the calibrated per-instruction energies, through
// the same core.BuildReport constructor the exact paths use. When the
// horizon equals the calibration prefix the sums telescope back to the
// measured per-block energies and the estimate is exact.
func (cal *calibration) report(ct *topo.Topology, az core.AnalyzerConfig,
	w *walkResult, cycles uint64) (*core.Report, []power.InstructionStat) {
	var bd power.Breakdown
	sts := make([]power.InstructionStat, 0, 8)
	total := 0.0
	idxHO := int(power.IdleHO)*power.NumStates + int(power.IdleHO)
	for idx, n := range w.full {
		if n == 0 {
			continue
		}
		// Dead-tail self-loop cycles are priced at the uncalibrated
		// analytic expectation; everything else gets the busy-region
		// calibration factor (see calibrate).
		var tail uint64
		if idx == idxHO {
			if tail = w.tailFull; tail > n {
				tail = n
			}
		}
		busy := n - tail
		energy := 0.0
		for b := 0; b < int(power.NumBlocks); b++ {
			c := cal.exp.comp[idx][b]
			e := float64(busy)*cal.factor[b]*c + float64(tail)*c
			energy += e
			bd.Add(power.Block(b), e)
		}
		in := power.Instruction{
			From: power.State(idx / power.NumStates),
			To:   power.State(idx % power.NumStates),
		}
		sts = append(sts, power.InstructionStat{
			Instruction: in,
			Count:       n,
			Energy:      energy,
		})
		total += energy
	}
	sort.Slice(sts, func(i, j int) bool {
		if sts[i].Energy != sts[j].Energy {
			return sts[i].Energy > sts[j].Energy
		}
		return sts[i].Instruction.String() < sts[j].Instruction.String()
	})
	rep := core.BuildReport(az.Style, ct.ClockPeriod(), cycles, total, sts, &bd, nil)
	return rep, sts
}
