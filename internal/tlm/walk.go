package tlm

import (
	"ahbpower/internal/amba/ahb"
	"ahbpower/internal/power"
	"ahbpower/internal/topo"
)

// instrCounts maps power-FSM instructions to cycle counts. The state
// space is tiny (4x4), so a flat array indexed From*NumStates+To is both
// the fastest and the simplest representation.
type instrCounts [power.NumStates * power.NumStates]uint64

func (c *instrCounts) add(from, to power.State, n uint64) {
	c[int(from)*power.NumStates+int(to)] += n
}

// emitter turns state runs into instruction counts with the power.FSM's
// exact attribution semantics: the first cycle only establishes the
// initial state; every later cycle contributes one (prev -> cur)
// instruction. Counts are kept for the full horizon and, separately, for
// the calibration-prefix window, by splitting runs at the boundary — the
// walk stays O(#runs), never O(#cycles).
type emitter struct {
	prefix, horizon uint64
	t               uint64 // cycles emitted so far
	havePrev        bool
	prev            power.State
	full            instrCounts
	pre             instrCounts
}

// run emits n consecutive cycles of state s, clamped to the horizon.
func (e *emitter) run(s power.State, n uint64) {
	if n == 0 || e.t >= e.horizon {
		return
	}
	if e.t+n > e.horizon {
		n = e.horizon - e.t
	}
	if !e.havePrev {
		e.havePrev, e.prev = true, s
		e.t++
		n--
		if n == 0 {
			return
		}
	}
	// The transition cycle, then the self-run.
	e.addRun(e.prev, s, 1)
	e.prev = s
	if n > 1 {
		e.addRun(s, s, n-1)
	}
}

// addRun counts n instruction cycles, splitting the count across the
// prefix boundary by the (1-based) index of each cycle.
func (e *emitter) addRun(from, to power.State, n uint64) {
	e.full.add(from, to, n)
	if e.t < e.prefix {
		inPre := e.prefix - e.t
		if inPre > n {
			inPre = n
		}
		e.pre.add(from, to, inPre)
	}
	e.t += n
}

// walkResult is everything the transaction walk derives from the scripts:
// instruction counts over both windows plus estimated protocol counters.
type walkResult struct {
	full   instrCounts
	pre    instrCounts
	cycles uint64

	// tailFull and tailPre count the dead-bus IDLE_HO self-loop cycles of
	// the post-script tail, over the full horizon and within the
	// calibration-prefix window. Once every script has drained nothing
	// switches — no requests, no grant churn — so those cycles cost clock
	// plus idle arbitration only, unlike the busy-region gap idles the
	// prefix measures; calibrate prices them analytically instead of
	// letting a busy prefix inflate them.
	tailFull uint64
	tailPre  uint64

	beats     uint64
	nonseq    uint64
	seq       uint64
	waits     uint64
	handovers uint64
	idle      uint64
}

// monitorCounts projects the walk's protocol estimates onto the bus
// monitor's counter key space, keeping the only-nonzero convention.
func (w *walkResult) monitorCounts() map[string]uint64 {
	m := make(map[string]uint64, 5)
	for k, v := range map[string]uint64{
		"nonseq":   w.nonseq,
		"seq":      w.seq,
		"wait":     w.waits,
		"handover": w.handovers,
		"idle":     w.idle,
	} {
		if v > 0 {
			m[k] = v
		}
	}
	return m
}

// waitTable resolves wait states by address from the topology's flattened
// region map (the same table the bus decoder is built from).
type waitTable struct {
	regions []ahb.Region
	waits   []int
}

func newWaitTable(ct *topo.Topology) waitTable {
	wt := waitTable{regions: ct.Regions(), waits: make([]int, len(ct.Slaves))}
	for i, s := range ct.Slaves {
		wt.waits[i] = s.Waits
	}
	return wt
}

func (wt waitTable) at(addr uint32) int {
	for _, r := range wt.regions {
		if r.Contains(addr) {
			return wt.waits[r.Slave]
		}
	}
	return 0
}

// startupLatency approximates the request -> grant -> address-phase
// pipeline delay before the first transfer of a run reaches the bus.
const startupLatency = 2

// runWalk serves the generated scripts at transaction granularity and
// counts power-FSM instructions over the horizon. The model is
// deliberately preemption-free: whole sequences are served atomically in
// round-robin order among masters with pending work, each beat costs
// (1 + wait-states) transfer cycles, per-sequence idle budgets elapse
// concurrently with other masters' transfers, ownership changes insert
// one handover cycle, and windows where no master is ready — plus the
// post-script tail — classify as IDLE_HO, matching the analyzer's
// classifier for released-request idle cycles. Arbitration-policy
// effects the walk does not replay (fixed/rr mid-sequence preemption)
// are stationary mix shifts the prefix calibration cancels.
func runWalk(ct *topo.Topology, scripts [][]ahb.Sequence, horizon, prefix uint64) *walkResult {
	type mstate struct {
		seqs  []ahb.Sequence
		next  int
		ready uint64
	}
	ms := make([]mstate, len(scripts))
	for i, s := range scripts {
		ms[i] = mstate{seqs: s}
	}
	wt := newWaitTable(ct)
	em := &emitter{prefix: prefix, horizon: horizon}
	w := &walkResult{cycles: horizon}

	em.run(power.Idle, startupLatency)
	last := -1
	for em.t < horizon {
		// Round-robin pick among ready masters, starting after the last
		// served one.
		pick := -1
		for i := 1; i <= len(ms); i++ {
			c := ((last+i)%len(ms) + len(ms)) % len(ms)
			if ms[c].next < len(ms[c].seqs) && ms[c].ready <= em.t {
				pick = c
				break
			}
		}
		if pick < 0 {
			// Nobody ready: idle until the earliest pending master wakes,
			// or break to the tail when every script is drained.
			var nextReady uint64
			pending := false
			for i := range ms {
				if ms[i].next < len(ms[i].seqs) {
					if !pending || ms[i].ready < nextReady {
						nextReady = ms[i].ready
					}
					pending = true
				}
			}
			if !pending {
				break
			}
			gap := uint64(1)
			if nextReady > em.t {
				gap = nextReady - em.t
			}
			em.run(power.IdleHO, gap)
			continue
		}
		if last >= 0 && last != pick {
			em.run(power.IdleHO, 1)
			w.handovers++
		}
		st := &ms[pick]
		seq := st.seqs[st.next]
		for _, op := range seq.Ops {
			if em.t >= horizon {
				break
			}
			switch op.Kind {
			case ahb.OpIdle:
				em.run(power.Idle, uint64(op.IdleCycles))
			case ahb.OpWrite, ahb.OpRead:
				state := power.Read
				if op.Kind == ahb.OpWrite {
					state = power.Write
				}
				beats := uint64(op.Beats)
				if op.Kind == ahb.OpWrite && len(op.Data) > 0 {
					beats = uint64(len(op.Data))
				}
				if beats == 0 {
					beats = 1
				}
				waits := uint64(wt.at(op.Addr))
				t0 := em.t
				em.run(state, beats*(1+waits))
				served := em.t - t0
				fit := served / (1 + waits)
				w.beats += fit
				if fit > 0 {
					w.nonseq++
					w.seq += fit - 1
				}
				w.waits += served - fit
			}
		}
		st.next++
		st.ready = em.t + uint64(seq.IdleAfter)
		last = pick
	}
	if em.t < horizon {
		tail := power.Idle
		if em.havePrev && last >= 0 {
			tail = power.IdleHO
		}
		tailStart := em.t
		em.run(tail, horizon-em.t)
		if run := horizon - tailStart; tail == power.IdleHO && run > 1 {
			// The first tail cycle is the (prev -> IDLE_HO) transition;
			// the rest are the dead-bus self-loop that calibrate prices
			// analytically rather than against the busy prefix.
			w.tailFull = run - 1
			if s := tailStart + 1; s < prefix {
				w.tailPre = prefix - s
			}
		}
	}
	w.full = em.full
	w.pre = em.pre
	transfer := w.beats + w.waits
	if horizon > transfer {
		w.idle = horizon - transfer
	}
	return w
}
