package tlm

import (
	"context"
	"math"
	"testing"

	"ahbpower/internal/core"
	"ahbpower/internal/exec"
	"ahbpower/internal/power"
	"ahbpower/internal/topo"
	"ahbpower/internal/workload"
)

// cycleAccurate runs the exact reference for a spec-equivalent scenario
// and returns the analyzer report.
func cycleAccurate(t *testing.T, ct topo.Topology, az core.AnalyzerConfig,
	cfgs []workload.Config, cycles uint64) *core.Report {
	t.Helper()
	sys, err := core.NewSystemTopo(ct)
	if err != nil {
		t.Fatalf("NewSystemTopo: %v", err)
	}
	if len(cfgs) > 0 {
		err = sys.LoadWorkload(cfgs...)
	} else {
		err = sys.LoadPaperWorkload(cycles)
	}
	if err != nil {
		t.Fatalf("load workload: %v", err)
	}
	an, err := core.Attach(sys, az)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	backend, _, err := exec.Select(exec.NameAuto, exec.Traits{ClockPeriod: ct.ClockPeriod()})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if err := backend.Run(context.Background(), sys, cycles); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return an.Report()
}

func paperTopo(t *testing.T, policy string) topo.Topology {
	t.Helper()
	ct := core.PaperSystem().Topology()
	if policy != "" {
		ct.Policy = policy
	}
	ct = ct.Canonical()
	if err := topo.Check(ct); err != nil {
		t.Fatalf("paper topology invalid: %v", err)
	}
	return ct
}

func divergence(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

// TestEstimatePolicies checks the energy divergence of the calibrated
// estimate against the cycle-accurate reference for the paper's three
// arbitration policies. The bound here is deliberately looser than the
// CI budget (tools/tlmcheck measures the real distribution over many
// scenarios); this pins that the estimator is in the right ballpark for
// every policy, including the preempting ones the walk does not replay.
func TestEstimatePolicies(t *testing.T) {
	const cycles = 20_000
	for _, policy := range []string{"sticky", "fixed", "rr"} {
		t.Run(policy, func(t *testing.T) {
			ct := paperTopo(t, policy)
			az := core.AnalyzerConfig{Style: core.StyleGlobal}
			out, err := Estimate(context.Background(), Spec{
				Name: "paper-" + policy, Topo: ct, Analyzer: az, Cycles: cycles,
			})
			if err != nil {
				t.Fatalf("Estimate: %v", err)
			}
			ref := cycleAccurate(t, ct, az, nil, cycles)
			d := divergence(out.Report.TotalEnergy, ref.TotalEnergy)
			t.Logf("policy %s: est %.4g J, ref %.4g J, divergence %.2f%%, factor %.3f",
				policy, out.Report.TotalEnergy, ref.TotalEnergy, 100*d, out.CalibrationFactor)
			if d > 0.15 {
				t.Errorf("policy %s: energy divergence %.1f%% exceeds 15%%", policy, 100*d)
			}
			if out.Report.Cycles != cycles {
				t.Errorf("Report.Cycles = %d, want %d", out.Report.Cycles, cycles)
			}
			if out.CalibrationCycles != CalibrationPrefix(cycles) {
				t.Errorf("CalibrationCycles = %d, want %d", out.CalibrationCycles, CalibrationPrefix(cycles))
			}
		})
	}
}

// TestEstimateDegeneratesToMeasured pins the exactness contract: when the
// horizon is no longer than the calibration prefix, the estimate is the
// measured cycle-accurate energy (the calibration telescopes).
func TestEstimateDegeneratesToMeasured(t *testing.T) {
	const cycles = 400 // < prefixMin, so prefix == cycles
	ct := paperTopo(t, "")
	az := core.AnalyzerConfig{Style: core.StyleGlobal}
	out, err := Estimate(context.Background(), Spec{Name: "tiny", Topo: ct, Analyzer: az, Cycles: cycles})
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if out.CalibrationCycles != cycles {
		t.Fatalf("CalibrationCycles = %d, want %d", out.CalibrationCycles, cycles)
	}
	ref := cycleAccurate(t, ct, az, nil, cycles)
	if d := divergence(out.Report.TotalEnergy, ref.TotalEnergy); d > 1e-9 {
		t.Errorf("degenerate estimate diverges from measured: est %.6g ref %.6g (%.3g)",
			out.Report.TotalEnergy, ref.TotalEnergy, d)
	}
}

// TestEstimateDeterministic pins cacheability: same spec, same outcome.
func TestEstimateDeterministic(t *testing.T) {
	ct := paperTopo(t, "")
	spec := Spec{Name: "det", Topo: ct, Analyzer: core.AnalyzerConfig{Style: core.StyleGlobal}, Cycles: 10_000}
	a, err := Estimate(context.Background(), spec)
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	b, err := Estimate(context.Background(), spec)
	if err != nil {
		t.Fatalf("Estimate (2nd): %v", err)
	}
	if math.Float64bits(a.Report.TotalEnergy) != math.Float64bits(b.Report.TotalEnergy) {
		t.Errorf("estimate not deterministic: %x vs %x",
			math.Float64bits(a.Report.TotalEnergy), math.Float64bits(b.Report.TotalEnergy))
	}
	if a.Beats != b.Beats {
		t.Errorf("beats not deterministic: %d vs %d", a.Beats, b.Beats)
	}
}

// TestEstimateWorkloadPatterns covers the explicit-workload path and the
// correlated data patterns whose expected Hamming distances differ from
// the random default.
func TestEstimateWorkloadPatterns(t *testing.T) {
	const cycles = 16_000
	for _, pat := range []workload.Pattern{workload.PatternRandom, workload.PatternLowActivity, workload.PatternCounter} {
		t.Run(pat.String(), func(t *testing.T) {
			ct := paperTopo(t, "")
			cfg := workload.PaperTestbench(0, int(cycles)/100+2)
			cfg.Pattern = pat
			cfgs := []workload.Config{cfg}
			az := core.AnalyzerConfig{Style: core.StyleGlobal}
			out, err := Estimate(context.Background(), Spec{
				Name: "pat-" + pat.String(), Topo: ct, Analyzer: az, Workloads: cfgs, Cycles: cycles,
			})
			if err != nil {
				t.Fatalf("Estimate: %v", err)
			}
			ref := cycleAccurate(t, ct, az, cfgs, cycles)
			d := divergence(out.Report.TotalEnergy, ref.TotalEnergy)
			t.Logf("pattern %s: divergence %.2f%%", pat, 100*d)
			if d > 0.15 {
				t.Errorf("pattern %s: divergence %.1f%% exceeds 15%%", pat, 100*d)
			}
		})
	}
}

// TestTraitsUnsupported enumerates the conservative-fallback reasons.
func TestTraitsUnsupported(t *testing.T) {
	if r := (Traits{}).Unsupported(); r != "" {
		t.Errorf("zero traits unsupported: %q", r)
	}
	cases := []struct {
		name string
		tr   Traits
	}{
		{"faults", Traits{HasFaults: true}},
		{"setup", Traits{HasSetup: true}},
		{"keep-system", Traits{KeepSystem: true}},
		{"skip-analyzer", Traits{SkipAnalyzer: true}},
		{"dpm", Traits{HasDPM: true}},
		{"trace-window", Traits{HasTraceWindow: true}},
		{"activity", Traits{RecordActivity: true}},
		{"trace-recorder", Traits{HasTraceRecorder: true}},
	}
	for _, c := range cases {
		if r := c.tr.Unsupported(); r == "" {
			t.Errorf("%s: Unsupported() = \"\", want a reason", c.name)
		}
	}
}

// TestReportSharesConsistent checks the estimated report's structural
// invariants: shares sum to ~1 and the block breakdown matches the total.
func TestReportSharesConsistent(t *testing.T) {
	ct := paperTopo(t, "")
	out, err := Estimate(context.Background(), Spec{
		Name: "shares", Topo: ct, Analyzer: core.AnalyzerConfig{Style: core.StyleGlobal}, Cycles: 30_000,
	})
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	rep := out.Report
	shares := rep.DataTransferShare + rep.ArbitrationShare + rep.IdleShare
	if math.Abs(shares-1) > 1e-6 {
		t.Errorf("class shares sum to %.6f, want 1", shares)
	}
	blockSum := 0.0
	for _, b := range power.Blocks() {
		blockSum += rep.BlockEnergy[b.String()]
	}
	if divergence(blockSum, rep.TotalEnergy) > 1e-9 {
		t.Errorf("block energies sum to %.6g, total %.6g", blockSum, rep.TotalEnergy)
	}
	if out.Beats == 0 || out.Counts["nonseq"] == 0 {
		t.Errorf("walk produced no traffic estimates: beats=%d counts=%v", out.Beats, out.Counts)
	}
}
