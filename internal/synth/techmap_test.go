package synth

import (
	"math/rand"
	"testing"

	"ahbpower/internal/gate"
)

// onlyNandAndDff asserts the mapped netlist uses the target library only.
func onlyNandAndDff(t *testing.T, nl *gate.Netlist) {
	t.Helper()
	for _, g := range nl.Gates() {
		if g.Kind != gate.Nand && g.Kind != gate.Dff {
			t.Fatalf("tech-mapped netlist contains %v", g.Kind)
		}
	}
}

func TestTechMapEveryKind(t *testing.T) {
	nl := gate.NewNetlist("all")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	s := nl.AddInput("s")
	outs := []gate.NetID{
		nl.MustGate(gate.Buf, "o0", a),
		nl.MustGate(gate.Not, "o1", a),
		nl.MustGate(gate.And, "o2", a, b, s),
		nl.MustGate(gate.Or, "o3", a, b, s),
		nl.MustGate(gate.Nand, "o4", a, b),
		nl.MustGate(gate.Nor, "o5", a, b),
		nl.MustGate(gate.Xor, "o6", a, b),
		nl.MustGate(gate.Xnor, "o7", a, b),
		nl.MustGate(gate.Mux2, "o8", a, b, s),
	}
	for _, o := range outs {
		nl.MarkOutput(o)
	}
	mapped, err := TechMapNAND(nl)
	if err != nil {
		t.Fatal(err)
	}
	onlyNandAndDff(t, mapped)
	exhaustiveEquiv(t, nl, mapped)
}

func TestTechMapDecoder(t *testing.T) {
	d, err := BuildDecoder(8)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := TechMapNAND(d.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	onlyNandAndDff(t, mapped)
	exhaustiveEquiv(t, d.Netlist, mapped)
}

func TestTechMapMux(t *testing.T) {
	m, err := BuildMux(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := TechMapNAND(m.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	onlyNandAndDff(t, mapped)
	exhaustiveEquiv(t, m.Netlist, mapped)
}

func TestTechMapArbiterSequential(t *testing.T) {
	a, err := BuildArbiter(3)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := TechMapNAND(a.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	onlyNandAndDff(t, mapped)
	// Behavioral comparison over random request sequences.
	eo, err := gate.NewEval(a.Netlist, tech)
	if err != nil {
		t.Fatal(err)
	}
	em, err := gate.NewEval(mapped, tech)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		req := uint64(rng.Intn(8))
		eo.SetInputs(req)
		eo.Settle()
		eo.ClockTick()
		em.SetInputs(req)
		em.Settle()
		em.ClockTick()
		if eo.OutputBits() != em.OutputBits() {
			t.Fatalf("step %d req=%03b: %03b vs %03b", i, req, eo.OutputBits(), em.OutputBits())
		}
	}
}

func TestTechMapRandomSOP(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		nIn := 2 + rng.Intn(3)
		table := make([]uint64, 1<<uint(nIn))
		for i := range table {
			table[i] = uint64(rng.Intn(4))
		}
		s, err := SynthesizeSOP("rnd", nIn, 2, func(v uint64) uint64 { return table[v] })
		if err != nil {
			t.Fatal(err)
		}
		mapped, err := TechMapNAND(s.Netlist)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		onlyNandAndDff(t, mapped)
		exhaustiveEquiv(t, s.Netlist, mapped)
	}
}

func TestTechMapThenOptimize(t *testing.T) {
	// The optimizer must be able to clean up a tech-mapped netlist
	// (duplicate inverters from the naive mapping) without changing its
	// function.
	d, err := BuildDecoder(4)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := TechMapNAND(d.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	opt, st, err := Optimize(mapped)
	if err != nil {
		t.Fatal(err)
	}
	if st.Removed == 0 {
		t.Error("naive mapping must leave something for CSE to merge")
	}
	exhaustiveEquiv(t, d.Netlist, opt)
	onlyNandAndDff(t, opt)
}
