package synth

import (
	"fmt"

	"ahbpower/internal/gate"
)

// TechMapNAND rewrites a netlist into the classic NAND2+NOT target
// library: every AND, OR, NAND, NOR, XOR, XNOR, BUF and MUX2 is expressed
// with 2-input NAND gates and inverters; DFFs pass through. The result is
// functionally identical and lets the characterization flow compare the
// energy of different gate-level implementations of the same block — the
// kind of implementation sensitivity the paper's macromodels must absorb.
func TechMapNAND(nl *gate.Netlist) (*gate.Netlist, error) {
	out := gate.NewNetlist(nl.Name + "_nand")
	newID := map[gate.NetID]gate.NetID{}
	for _, in := range nl.Inputs() {
		newID[in] = out.AddInput(nl.NetName(in))
	}
	// Pre-create the output nets of every gate so forward references
	// (DFF loops) resolve.
	for _, g := range nl.Gates() {
		if _, ok := newID[g.Out]; !ok {
			newID[g.Out] = out.AddNet(nl.NetName(g.Out))
		}
	}
	nand := func(a, b gate.NetID) gate.NetID {
		return out.MustGate(gate.Nand, "tm", a, b)
	}
	inv := func(a gate.NetID) gate.NetID {
		return nand(a, a)
	}
	// driveAs produces the value of net v onto pre-created net dst via a
	// final gate (the mapped cone's root must drive exactly dst).
	for _, g := range nl.Gates() {
		dst := newID[g.Out]
		ins := make([]gate.NetID, len(g.In))
		for i, in := range g.In {
			ins[i] = newID[in]
		}
		var err error
		switch g.Kind {
		case gate.Dff:
			err = out.Drive(gate.Dff, dst, ins[0])
		case gate.Buf:
			// BUF = NOT(NOT(a)) — two inverters keep the library pure.
			na := inv(ins[0])
			err = out.Drive(gate.Nand, dst, na, na)
		case gate.Not:
			err = out.Drive(gate.Nand, dst, ins[0], ins[0])
		case gate.And:
			err = mapAnd(out, dst, ins, nand, inv)
		case gate.Nand:
			err = mapNand(out, dst, ins, nand, inv)
		case gate.Or:
			err = mapOr(out, dst, ins, nand, inv)
		case gate.Nor:
			// NOR = NOT(OR): OR(ins) then invert at dst.
			t := orNand(out, ins, nand, inv)
			err = out.Drive(gate.Nand, dst, t, t)
		case gate.Xor:
			// XOR(a,b) = NAND(NAND(a,nb), NAND(na,b)) with shared inverters.
			na, nb := inv(ins[0]), inv(ins[1])
			t1 := nand(ins[0], nb)
			t2 := nand(na, ins[1])
			err = out.Drive(gate.Nand, dst, t1, t2)
		case gate.Xnor:
			na, nb := inv(ins[0]), inv(ins[1])
			t1 := nand(ins[0], ins[1])
			t2 := nand(na, nb)
			err = out.Drive(gate.Nand, dst, t1, t2)
		case gate.Mux2:
			// MUX(a,b,s) = NAND(NAND(a,ns), NAND(b,s)).
			ns := inv(ins[2])
			t1 := nand(ins[0], ns)
			t2 := nand(ins[1], ins[2])
			err = out.Drive(gate.Nand, dst, t1, t2)
		default:
			err = fmt.Errorf("synth: cannot tech-map %v", g.Kind)
		}
		if err != nil {
			return nil, err
		}
	}
	for _, o := range nl.Outputs() {
		out.MarkOutput(newID[o])
	}
	if _, err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// mapAnd drives dst = AND(ins) with NAND2+INV.
func mapAnd(out *gate.Netlist, dst gate.NetID, ins []gate.NetID,
	nand func(a, b gate.NetID) gate.NetID, inv func(a gate.NetID) gate.NetID) error {
	t := andNand(out, ins, nand, inv)
	// dst = BUF(t) in pure NAND: double inversion.
	return out.Drive(gate.Nand, dst, inv(t), inv(t))
}

// mapNand drives dst = NAND(ins).
func mapNand(out *gate.Netlist, dst gate.NetID, ins []gate.NetID,
	nand func(a, b gate.NetID) gate.NetID, inv func(a gate.NetID) gate.NetID) error {
	if len(ins) == 2 {
		return out.Drive(gate.Nand, dst, ins[0], ins[1])
	}
	t := andNand(out, ins, nand, inv)
	return out.Drive(gate.Nand, dst, t, t)
}

// mapOr drives dst = OR(ins).
func mapOr(out *gate.Netlist, dst gate.NetID, ins []gate.NetID,
	nand func(a, b gate.NetID) gate.NetID, inv func(a gate.NetID) gate.NetID) error {
	t := orNand(out, ins, nand, inv)
	return out.Drive(gate.Nand, dst, inv(t), inv(t))
}

// andNand returns a net computing AND(ins) using NAND2+INV.
func andNand(out *gate.Netlist, ins []gate.NetID,
	nand func(a, b gate.NetID) gate.NetID, inv func(a gate.NetID) gate.NetID) gate.NetID {
	acc := ins[0]
	for i := 1; i < len(ins); i++ {
		acc = inv(nand(acc, ins[i]))
	}
	return acc
}

// orNand returns a net computing OR(ins): OR(a,b) = NAND(na, nb).
func orNand(out *gate.Netlist, ins []gate.NetID,
	nand func(a, b gate.NetID) gate.NetID, inv func(a gate.NetID) gate.NetID) gate.NetID {
	acc := ins[0]
	for i := 1; i < len(ins); i++ {
		acc = nand(inv(acc), inv(ins[i]))
	}
	return acc
}
