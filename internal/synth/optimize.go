package synth

import (
	"fmt"
	"sort"
	"strings"

	"ahbpower/internal/gate"
)

// OptimizeStats reports what an optimization pass removed.
type OptimizeStats struct {
	GatesBefore int
	GatesAfter  int
	Removed     int // total gates removed (buffers, duplicates, dead logic)
}

// Optimize rebuilds a netlist applying three logic-synthesis cleanup
// passes: buffer collapsing, common-subexpression sharing (structural
// hashing) and dead-gate elimination. The result is functionally identical
// — same primary inputs and outputs in the same order — with potentially
// fewer gates. Primary-output nets always keep their own driver.
func Optimize(nl *gate.Netlist) (*gate.Netlist, OptimizeStats, error) {
	var st OptimizeStats
	st.GatesBefore = nl.NumGates()

	gates := nl.Gates()
	numNets := nl.NumNets()

	isOutput := make([]bool, numNets)
	for _, o := range nl.Outputs() {
		isOutput[o] = true
	}

	// alias[n] != n means net n has been replaced by an equivalent net.
	alias := make([]gate.NetID, numNets)
	for i := range alias {
		alias[i] = gate.NetID(i)
	}
	var resolve func(n gate.NetID) gate.NetID
	resolve = func(n gate.NetID) gate.NetID {
		for alias[n] != n {
			alias[n] = alias[alias[n]] // path compression
			n = alias[n]
		}
		return n
	}

	// Buffer collapsing + structural hashing, iterated to a fixpoint.
	for changed := true; changed; {
		changed = false
		seen := map[string]gate.NetID{}
		for _, g := range gates {
			if alias[g.Out] != g.Out {
				continue // gate already merged away
			}
			ins := make([]gate.NetID, len(g.In))
			for i, in := range g.In {
				ins[i] = resolve(in)
			}
			if g.Kind == gate.Buf && !isOutput[g.Out] {
				alias[g.Out] = ins[0]
				changed = true
				continue
			}
			key := hashKey(g.Kind, ins)
			if prev, ok := seen[key]; ok && prev != g.Out {
				if !isOutput[g.Out] {
					alias[g.Out] = prev
					changed = true
				}
				continue
			}
			seen[key] = g.Out
		}
	}

	// canonical[n] = index of the surviving gate driving net n.
	canonical := map[gate.NetID]int{}
	for gi, g := range gates {
		if alias[g.Out] == g.Out {
			canonical[g.Out] = gi
		}
	}

	// Dead-gate elimination: mark nets reachable from primary outputs.
	live := make([]bool, numNets)
	var stack []gate.NetID
	for _, o := range nl.Outputs() {
		r := resolve(o)
		if !live[r] {
			live[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		gi, ok := canonical[n]
		if !ok {
			continue // primary input or undriven
		}
		for _, in := range gates[gi].In {
			r := resolve(in)
			if !live[r] {
				live[r] = true
				stack = append(stack, r)
			}
		}
	}

	// Rebuild the netlist with only live canonical gates.
	out := gate.NewNetlist(strings.TrimSuffix(nl.Name, "_opt") + "_opt")
	newID := map[gate.NetID]gate.NetID{}
	for _, in := range nl.Inputs() {
		newID[in] = out.AddInput(nl.NetName(in))
	}
	var liveGates []int
	for n, gi := range canonical {
		if live[n] {
			liveGates = append(liveGates, gi)
		}
	}
	sort.Ints(liveGates)
	for _, gi := range liveGates {
		o := gates[gi].Out
		if _, exists := newID[o]; !exists {
			newID[o] = out.AddNet(nl.NetName(o))
		}
	}
	for _, gi := range liveGates {
		g := gates[gi]
		ins := make([]gate.NetID, len(g.In))
		for i, in := range g.In {
			r := resolve(in)
			id, ok := newID[r]
			if !ok {
				return nil, st, fmt.Errorf("synth: optimize lost net %q", nl.NetName(r))
			}
			ins[i] = id
		}
		if err := out.Drive(g.Kind, newID[g.Out], ins...); err != nil {
			return nil, st, err
		}
	}
	for _, o := range nl.Outputs() {
		id, ok := newID[resolve(o)]
		if !ok {
			return nil, st, fmt.Errorf("synth: optimize lost output %q", nl.NetName(o))
		}
		out.MarkOutput(id)
	}
	if _, err := out.Validate(); err != nil {
		return nil, st, err
	}
	st.GatesAfter = out.NumGates()
	st.Removed = st.GatesBefore - st.GatesAfter
	return out, st, nil
}

// hashKey produces a structural key for common-subexpression sharing;
// commutative gates sort their inputs so a AND b matches b AND a.
func hashKey(k gate.Kind, ins []gate.NetID) string {
	sorted := ins
	switch k {
	case gate.And, gate.Or, gate.Nand, gate.Nor, gate.Xor, gate.Xnor:
		sorted = append([]gate.NetID(nil), ins...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d:", k)
	for _, in := range sorted {
		fmt.Fprintf(&b, "%d,", in)
	}
	return b.String()
}
