package synth

import (
	"fmt"
	"math/bits"
	"sort"

	"ahbpower/internal/gate"
)

// implicant is a cube over nIn variables: bit positions set in mask are
// don't-cares; the remaining positions must match value.
type implicant struct {
	value uint64
	mask  uint64
}

func (im implicant) covers(minterm uint64) bool {
	return (minterm &^ im.mask) == (im.value &^ im.mask)
}

// SOP is a synthesized two-level sum-of-products netlist.
type SOP struct {
	Netlist *gate.Netlist
	In      []gate.NetID
	Out     []gate.NetID
	// Cubes[o] holds the implicants chosen for output o (diagnostics).
	Cubes [][]implicant
}

// SynthesizeSOP builds a NOT/AND/OR two-level implementation of the
// boolean functions given by f: for every input assignment v in
// [0, 2^nIn), output bit o of f(v) defines the truth table of output o.
// Prime implicants are computed by iterative cube combining
// (Quine-McCluskey) and a greedy cover is selected — the same class of
// two-level minimization SIS performs for small blocks. nIn is limited to
// 16 inputs.
func SynthesizeSOP(name string, nIn, nOut int, f func(uint64) uint64) (*SOP, error) {
	if nIn < 1 || nIn > 16 {
		return nil, fmt.Errorf("synth: SOP supports 1..16 inputs, got %d", nIn)
	}
	if nOut < 1 || nOut > 64 {
		return nil, fmt.Errorf("synth: SOP supports 1..64 outputs, got %d", nOut)
	}
	nl := gate.NewNetlist(name)
	s := &SOP{Netlist: nl}
	for i := 0; i < nIn; i++ {
		s.In = append(s.In, nl.AddInput(fmt.Sprintf("x%d", i)))
	}
	inv := make([]gate.NetID, nIn)
	invBuilt := make([]bool, nIn)
	literal := func(bit int, positive bool) gate.NetID {
		if positive {
			return s.In[bit]
		}
		if !invBuilt[bit] {
			inv[bit] = nl.MustGate(gate.Not, fmt.Sprintf("nx%d", bit), s.In[bit])
			invBuilt[bit] = true
		}
		return inv[bit]
	}
	// Share identical product terms across outputs.
	products := map[implicant]gate.NetID{}
	productNet := func(im implicant) gate.NetID {
		if net, ok := products[im]; ok {
			return net
		}
		var lits []gate.NetID
		for b := 0; b < nIn; b++ {
			bit := uint64(1) << uint(b)
			if im.mask&bit != 0 {
				continue
			}
			lits = append(lits, literal(b, im.value&bit != 0))
		}
		var net gate.NetID
		if len(lits) == 0 {
			// Tautology cube: constant 1 = x0 OR NOT x0.
			net = nl.MustGate(gate.Or, "const1", literal(0, true), literal(0, false))
		} else {
			net = andTree(nl, fmt.Sprintf("p%x_%x", im.value, im.mask), lits)
		}
		products[im] = net
		return net
	}

	total := uint64(1) << uint(nIn)
	for o := 0; o < nOut; o++ {
		var minterms []uint64
		for v := uint64(0); v < total; v++ {
			if f(v)&(1<<uint(o)) != 0 {
				minterms = append(minterms, v)
			}
		}
		var outNet gate.NetID
		switch {
		case len(minterms) == 0:
			// Constant 0 = x0 AND NOT x0.
			outNet = nl.MustGate(gate.And, fmt.Sprintf("y%d", o), literal(0, true), literal(0, false))
		default:
			primes := primeImplicants(minterms, nIn)
			cover := greedyCover(primes, minterms)
			s.Cubes = append(s.Cubes, cover)
			terms := make([]gate.NetID, len(cover))
			for i, im := range cover {
				terms[i] = productNet(im)
			}
			outNet = orTree(nl, fmt.Sprintf("y%d", o), terms)
		}
		nl.MarkOutput(outNet)
		s.Out = append(s.Out, outNet)
	}
	return s, nil
}

// primeImplicants computes all prime implicants of the given minterms by
// iterative pairwise combining.
func primeImplicants(minterms []uint64, nIn int) []implicant {
	cur := map[implicant]bool{}
	for _, m := range minterms {
		cur[implicant{value: m, mask: 0}] = true
	}
	var primes []implicant
	for len(cur) > 0 {
		next := map[implicant]bool{}
		combined := map[implicant]bool{}
		keys := make([]implicant, 0, len(cur))
		for im := range cur {
			keys = append(keys, im)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].mask != keys[j].mask {
				return keys[i].mask < keys[j].mask
			}
			return keys[i].value < keys[j].value
		})
		for i := 0; i < len(keys); i++ {
			for j := i + 1; j < len(keys); j++ {
				a, b := keys[i], keys[j]
				if a.mask != b.mask {
					continue
				}
				diff := (a.value ^ b.value) &^ a.mask
				if bits.OnesCount64(diff) != 1 {
					continue
				}
				merged := implicant{value: a.value &^ diff, mask: a.mask | diff}
				merged.value &^= merged.mask
				next[merged] = true
				combined[a] = true
				combined[b] = true
			}
		}
		for _, im := range keys {
			if !combined[im] {
				primes = append(primes, im)
			}
		}
		cur = next
	}
	return primes
}

// greedyCover selects a subset of primes covering all minterms, repeatedly
// taking the prime covering the most uncovered minterms.
func greedyCover(primes []implicant, minterms []uint64) []implicant {
	uncovered := map[uint64]bool{}
	for _, m := range minterms {
		uncovered[m] = true
	}
	var cover []implicant
	for len(uncovered) > 0 {
		bestIdx, bestCount := -1, 0
		for i, p := range primes {
			c := 0
			for m := range uncovered {
				if p.covers(m) {
					c++
				}
			}
			if c > bestCount || (c == bestCount && c > 0 && bestIdx >= 0 && lessImplicant(p, primes[bestIdx])) {
				bestIdx, bestCount = i, c
			}
		}
		if bestIdx < 0 {
			break // cannot happen: primes cover all minterms by construction
		}
		p := primes[bestIdx]
		cover = append(cover, p)
		for m := range uncovered {
			if p.covers(m) {
				delete(uncovered, m)
			}
		}
	}
	sort.Slice(cover, func(i, j int) bool { return lessImplicant(cover[i], cover[j]) })
	return cover
}

func lessImplicant(a, b implicant) bool {
	if a.mask != b.mask {
		return a.mask < b.mask
	}
	return a.value < b.value
}
