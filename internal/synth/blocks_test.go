package synth

import (
	"math/bits"
	"testing"
	"testing/quick"

	"ahbpower/internal/gate"
)

var tech = gate.Tech{VDD: 1.8, CPD: 20e-15, COut: 50e-15}

func TestBuildDecoderRejectsBadSizes(t *testing.T) {
	if _, err := BuildDecoder(1); err == nil {
		t.Error("decoder with 1 output must fail")
	}
	if _, err := BuildDecoder(0); err == nil {
		t.Error("decoder with 0 outputs must fail")
	}
}

func TestDecoderFunctional(t *testing.T) {
	for _, nOut := range []int{2, 3, 4, 5, 8, 16} {
		d, err := BuildDecoder(nOut)
		if err != nil {
			t.Fatal(err)
		}
		e, err := gate.NewEval(d.Netlist, tech)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < nOut; v++ {
			e.SetInputs(uint64(v))
			e.Settle()
			got := e.OutputBits()
			want := uint64(1) << uint(v)
			if got != want {
				t.Errorf("decoder%d(%d): outputs=%0*b, want %0*b", nOut, v, nOut, got, nOut, want)
			}
		}
	}
}

func TestDecoderOneHotInvariant(t *testing.T) {
	d, err := BuildDecoder(8)
	if err != nil {
		t.Fatal(err)
	}
	e, err := gate.NewEval(d.Netlist, tech)
	if err != nil {
		t.Fatal(err)
	}
	f := func(v uint8) bool {
		e.SetInputs(uint64(v) & 7)
		e.Settle()
		return bits.OnesCount64(e.OutputBits()) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecoderUsesOnlyNotAndGates(t *testing.T) {
	// The paper synthesizes the decoder "only with NOT and AND gates".
	d, err := BuildDecoder(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range d.Netlist.Gates() {
		if g.Kind != gate.Not && g.Kind != gate.And {
			t.Errorf("decoder contains %v gate", g.Kind)
		}
	}
}

func TestDecoderNIMatchesPaper(t *testing.T) {
	for _, c := range []struct{ nOut, nI int }{{2, 1}, {3, 2}, {4, 2}, {5, 3}, {9, 4}} {
		d, err := BuildDecoder(c.nOut)
		if err != nil {
			t.Fatal(err)
		}
		if d.NI != c.nI {
			t.Errorf("decoder%d: NI=%d, want %d", c.nOut, d.NI, c.nI)
		}
		if len(d.In) != c.nI || len(d.Out) != c.nOut {
			t.Errorf("decoder%d: ports %d/%d", c.nOut, len(d.In), len(d.Out))
		}
	}
}

func TestBuildMuxRejectsBadSizes(t *testing.T) {
	if _, err := BuildMux(0, 2); err == nil {
		t.Error("w=0 must fail")
	}
	if _, err := BuildMux(8, 1); err == nil {
		t.Error("n=1 must fail")
	}
}

func TestMuxFunctional(t *testing.T) {
	for _, cfg := range []struct{ w, n int }{{1, 2}, {4, 2}, {8, 3}, {8, 4}, {16, 5}} {
		m, err := BuildMux(cfg.w, cfg.n)
		if err != nil {
			t.Fatal(err)
		}
		e, err := gate.NewEval(m.Netlist, tech)
		if err != nil {
			t.Fatal(err)
		}
		// Load distinct data words, then select each in turn.
		words := make([]uint64, cfg.n)
		for i := range words {
			words[i] = uint64(i*37+11) & ((1 << uint(cfg.w)) - 1)
		}
		apply := func(sel int) {
			for i, word := range words {
				for b := 0; b < cfg.w; b++ {
					e.SetInput(m.Data[i][b], word&(1<<uint(b)) != 0)
				}
			}
			for b := range m.Sel {
				e.SetInput(m.Sel[b], sel&(1<<uint(b)) != 0)
			}
			e.Settle()
		}
		for sel := 0; sel < cfg.n; sel++ {
			apply(sel)
			got := uint64(0)
			for b, o := range m.Out {
				if e.Output(o) {
					got |= 1 << uint(b)
				}
			}
			if got != words[sel] {
				t.Errorf("mux %dx%d sel=%d: got %#x, want %#x", cfg.n, cfg.w, sel, got, words[sel])
			}
		}
	}
}

func TestMuxRandomProperty(t *testing.T) {
	m, err := BuildMux(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	e, err := gate.NewEval(m.Netlist, tech)
	if err != nil {
		t.Fatal(err)
	}
	f := func(d0, d1, d2, d3 uint8, sel uint8) bool {
		words := []uint8{d0, d1, d2, d3}
		s := int(sel % 4)
		for i, word := range words {
			for b := 0; b < 8; b++ {
				e.SetInput(m.Data[i][b], word&(1<<uint(b)) != 0)
			}
		}
		for b := range m.Sel {
			e.SetInput(m.Sel[b], s&(1<<uint(b)) != 0)
		}
		e.Settle()
		got := uint8(0)
		for b, o := range m.Out {
			if e.Output(o) {
				got |= 1 << uint(b)
			}
		}
		return got == words[s]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArbiterRejectsBadSizes(t *testing.T) {
	if _, err := BuildArbiter(1); err == nil {
		t.Error("n=1 must fail")
	}
}

func TestArbiterPriorityAndDefault(t *testing.T) {
	a, err := BuildArbiter(3)
	if err != nil {
		t.Fatal(err)
	}
	e, err := gate.NewEval(a.Netlist, tech)
	if err != nil {
		t.Fatal(err)
	}
	grants := func() uint64 {
		var v uint64
		for i, g := range a.Grant {
			if e.Output(g) {
				v |= 1 << uint(i)
			}
		}
		return v
	}
	step := func(req uint64) {
		for i, r := range a.Req {
			e.SetInput(r, req&(1<<uint(i)) != 0)
		}
		e.Settle()
		e.ClockTick()
	}
	step(0b000)
	if grants() != 0b001 {
		t.Errorf("idle grant=%03b, want default master 0", grants())
	}
	step(0b110)
	if grants() != 0b010 {
		t.Errorf("req={1,2} grant=%03b, want master 1 (priority)", grants())
	}
	step(0b100)
	if grants() != 0b100 {
		t.Errorf("req={2} grant=%03b, want master 2", grants())
	}
	step(0b111)
	if grants() != 0b001 {
		t.Errorf("req=all grant=%03b, want master 0 (highest priority)", grants())
	}
}

func TestArbiterGrantAlwaysOneHot(t *testing.T) {
	a, err := BuildArbiter(4)
	if err != nil {
		t.Fatal(err)
	}
	e, err := gate.NewEval(a.Netlist, tech)
	if err != nil {
		t.Fatal(err)
	}
	f := func(req uint8) bool {
		for i, r := range a.Req {
			e.SetInput(r, req&(1<<uint(i)) != 0)
		}
		e.Settle()
		e.ClockTick()
		var cnt int
		for _, g := range a.Grant {
			if e.Output(g) {
				cnt++
			}
		}
		return cnt == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecoderEnergyGrowsWithHammingDistance(t *testing.T) {
	// Alternating between inputs at HD=2 must switch more capacitance than
	// alternating between inputs at HD=1: the core of the macromodel.
	energyFor := func(a, b uint64) float64 {
		d, err := BuildDecoder(8)
		if err != nil {
			t.Fatal(err)
		}
		e, err := gate.NewEval(d.Netlist, tech)
		if err != nil {
			t.Fatal(err)
		}
		e.SetInputs(a)
		e.Settle()
		e.ResetCounters()
		for i := 0; i < 100; i++ {
			if i%2 == 0 {
				e.SetInputs(b)
			} else {
				e.SetInputs(a)
			}
			e.Settle()
		}
		return e.Energy()
	}
	e1 := energyFor(0b000, 0b001) // HD 1
	e3 := energyFor(0b000, 0b111) // HD 3
	if e3 <= e1 {
		t.Errorf("HD3 energy %g must exceed HD1 energy %g", e3, e1)
	}
}
