package synth

import (
	"math/rand"
	"testing"

	"ahbpower/internal/gate"
)

// checkEquivalent exhaustively compares a synthesized netlist against its
// specification function over all input assignments.
func checkEquivalent(t *testing.T, s *SOP, nIn int, f func(uint64) uint64) {
	t.Helper()
	e, err := gate.NewEval(s.Netlist, tech)
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(0); v < 1<<uint(nIn); v++ {
		e.SetInputs(v)
		e.Settle()
		want := f(v)
		if got := e.OutputBits(); got != want {
			t.Fatalf("%s(%b) = %b, want %b", s.Netlist.Name, v, got, want)
		}
	}
}

func TestSOPXor(t *testing.T) {
	f := func(v uint64) uint64 {
		if (v&1 != 0) != (v&2 != 0) {
			return 1
		}
		return 0
	}
	s, err := SynthesizeSOP("xor", 2, 1, f)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, s, 2, f)
}

func TestSOPConstants(t *testing.T) {
	zero := func(uint64) uint64 { return 0 }
	one := func(uint64) uint64 { return 1 }
	s0, err := SynthesizeSOP("zero", 2, 1, zero)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, s0, 2, zero)
	s1, err := SynthesizeSOP("one", 2, 1, one)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, s1, 2, one)
}

func TestSOPMultiOutput(t *testing.T) {
	// A 2-bit adder: out = a + b where a = bits 0-1, b = bits 2-3.
	f := func(v uint64) uint64 {
		a := v & 3
		b := (v >> 2) & 3
		return (a + b) & 7
	}
	s, err := SynthesizeSOP("add2", 4, 3, f)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, s, 4, f)
}

func TestSOPMinimizesFullCube(t *testing.T) {
	// f = x0 regardless of x1,x2: QM must collapse to a single literal.
	f := func(v uint64) uint64 { return v & 1 }
	s, err := SynthesizeSOP("lit", 3, 1, f)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, s, 3, f)
	if len(s.Cubes) != 1 || len(s.Cubes[0]) != 1 {
		t.Fatalf("expected a single cube, got %v", s.Cubes)
	}
	if s.Cubes[0][0].mask != 0b110 {
		t.Errorf("cube mask=%03b, want 110 (x1,x2 don't-care)", s.Cubes[0][0].mask)
	}
}

func TestSOPRandomFunctionsEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		nIn := 1 + rng.Intn(5)
		nOut := 1 + rng.Intn(3)
		table := make([]uint64, 1<<uint(nIn))
		for i := range table {
			table[i] = uint64(rng.Intn(1 << uint(nOut)))
		}
		f := func(v uint64) uint64 { return table[v] }
		s, err := SynthesizeSOP("rnd", nIn, nOut, f)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkEquivalent(t, s, nIn, f)
	}
}

func TestSOPInvalidSizes(t *testing.T) {
	f := func(uint64) uint64 { return 0 }
	if _, err := SynthesizeSOP("x", 0, 1, f); err == nil {
		t.Error("nIn=0 must fail")
	}
	if _, err := SynthesizeSOP("x", 17, 1, f); err == nil {
		t.Error("nIn=17 must fail")
	}
	if _, err := SynthesizeSOP("x", 2, 0, f); err == nil {
		t.Error("nOut=0 must fail")
	}
	if _, err := SynthesizeSOP("x", 2, 65, f); err == nil {
		t.Error("nOut=65 must fail")
	}
}

func TestImplicantCovers(t *testing.T) {
	im := implicant{value: 0b0100, mask: 0b0011}
	for _, m := range []uint64{0b0100, 0b0101, 0b0110, 0b0111} {
		if !im.covers(m) {
			t.Errorf("cube must cover %04b", m)
		}
	}
	for _, m := range []uint64{0b0000, 0b1100, 0b1000} {
		if im.covers(m) {
			t.Errorf("cube must not cover %04b", m)
		}
	}
}
