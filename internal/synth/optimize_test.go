package synth

import (
	"math/rand"
	"testing"

	"ahbpower/internal/gate"
)

// exhaustiveEquiv checks two netlists with identical input/output ports
// compute the same function over all input assignments.
func exhaustiveEquiv(t *testing.T, a, b *gate.Netlist) {
	t.Helper()
	nIn := len(a.Inputs())
	if nIn != len(b.Inputs()) || len(a.Outputs()) != len(b.Outputs()) {
		t.Fatalf("port mismatch: %d/%d inputs, %d/%d outputs",
			nIn, len(b.Inputs()), len(a.Outputs()), len(b.Outputs()))
	}
	ea, err := gate.NewEval(a, tech)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := gate.NewEval(b, tech)
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(0); v < 1<<uint(nIn); v++ {
		ea.SetInputs(v)
		ea.Settle()
		eb.SetInputs(v)
		eb.Settle()
		if ea.OutputBits() != eb.OutputBits() {
			t.Fatalf("mismatch at input %b: %b vs %b", v, ea.OutputBits(), eb.OutputBits())
		}
	}
}

func TestOptimizeMergesDuplicates(t *testing.T) {
	nl := gate.NewNetlist("dup")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	x1 := nl.MustGate(gate.And, "x1", a, b)
	x2 := nl.MustGate(gate.And, "x2", b, a) // commutative duplicate
	y := nl.MustGate(gate.Or, "y", x1, x2)
	nl.MarkOutput(y)
	opt, st, err := Optimize(nl)
	if err != nil {
		t.Fatal(err)
	}
	// OR(x,x) remains, but the duplicate AND must merge: 2 gates total.
	if opt.NumGates() != 2 {
		t.Errorf("gates=%d, want 2 (one AND merged)", opt.NumGates())
	}
	if st.Removed != 1 {
		t.Errorf("Removed=%d, want 1", st.Removed)
	}
	exhaustiveEquiv(t, nl, opt)
}

func TestOptimizeRemovesDeadLogic(t *testing.T) {
	nl := gate.NewNetlist("dead")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	y := nl.MustGate(gate.And, "y", a, b)
	nl.MustGate(gate.Or, "unused", a, b)
	nl.MarkOutput(y)
	opt, _, err := Optimize(nl)
	if err != nil {
		t.Fatal(err)
	}
	if opt.NumGates() != 1 {
		t.Errorf("gates=%d, want 1 (dead OR removed)", opt.NumGates())
	}
	exhaustiveEquiv(t, nl, opt)
}

func TestOptimizeCollapsesBuffers(t *testing.T) {
	nl := gate.NewNetlist("bufs")
	a := nl.AddInput("a")
	b1 := nl.MustGate(gate.Buf, "b1", a)
	b2 := nl.MustGate(gate.Buf, "b2", b1)
	y := nl.MustGate(gate.Not, "y", b2)
	nl.MarkOutput(y)
	opt, _, err := Optimize(nl)
	if err != nil {
		t.Fatal(err)
	}
	if opt.NumGates() != 1 {
		t.Errorf("gates=%d, want 1 (buffer chain collapsed)", opt.NumGates())
	}
	exhaustiveEquiv(t, nl, opt)
}

func TestOptimizeKeepsOutputBuffer(t *testing.T) {
	// A buffer driving a primary output must survive so the output net
	// keeps a driver.
	nl := gate.NewNetlist("outbuf")
	a := nl.AddInput("a")
	y := nl.MustGate(gate.Buf, "y", a)
	nl.MarkOutput(y)
	opt, _, err := Optimize(nl)
	if err != nil {
		t.Fatal(err)
	}
	if opt.NumGates() != 1 {
		t.Errorf("gates=%d, want 1", opt.NumGates())
	}
	exhaustiveEquiv(t, nl, opt)
}

func TestOptimizePreservesDffState(t *testing.T) {
	// Toggle register with a redundant duplicated inverter.
	nl := gate.NewNetlist("dff")
	q := nl.AddNet("q")
	n1 := nl.MustGate(gate.Not, "n1", q)
	n2 := nl.MustGate(gate.Not, "n2", q) // duplicate
	sum := nl.MustGate(gate.And, "sum", n1, n2)
	if err := nl.Drive(gate.Dff, q, sum); err != nil {
		t.Fatal(err)
	}
	nl.MarkOutput(q)
	opt, _, err := Optimize(nl)
	if err != nil {
		t.Fatal(err)
	}
	if got := opt.CountKind(gate.Not); got != 1 {
		t.Errorf("NOT count=%d, want 1 after CSE", got)
	}
	// Behavioral check over a few cycles.
	eo, err := gate.NewEval(opt, tech)
	if err != nil {
		t.Fatal(err)
	}
	en, err := gate.NewEval(nl, tech)
	if err != nil {
		t.Fatal(err)
	}
	eo.Settle()
	en.Settle()
	for i := 0; i < 6; i++ {
		eo.ClockTick()
		en.ClockTick()
		if eo.OutputBits() != en.OutputBits() {
			t.Fatalf("cycle %d: %b vs %b", i, eo.OutputBits(), en.OutputBits())
		}
	}
}

func TestOptimizeDecoderSharesInverters(t *testing.T) {
	d, err := BuildDecoder(8)
	if err != nil {
		t.Fatal(err)
	}
	opt, st, err := Optimize(d.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	if st.GatesAfter > st.GatesBefore {
		t.Errorf("optimization grew the netlist: %d -> %d", st.GatesBefore, st.GatesAfter)
	}
	exhaustiveEquiv(t, d.Netlist, opt)
}

func TestOptimizeRandomSOPEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		nIn := 2 + rng.Intn(4)
		nOut := 1 + rng.Intn(3)
		table := make([]uint64, 1<<uint(nIn))
		for i := range table {
			table[i] = uint64(rng.Intn(1 << uint(nOut)))
		}
		s, err := SynthesizeSOP("rnd", nIn, nOut, func(v uint64) uint64 { return table[v] })
		if err != nil {
			t.Fatal(err)
		}
		opt, _, err := Optimize(s.Netlist)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		exhaustiveEquiv(t, s.Netlist, opt)
	}
}

func TestOptimizeMuxEquivalent(t *testing.T) {
	m, err := BuildMux(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	opt, _, err := Optimize(m.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	exhaustiveEquiv(t, m.Netlist, opt)
}
