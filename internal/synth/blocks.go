// Package synth generates gate-level netlists for the AHB sub-blocks the
// paper characterizes — a one-hot address decoder built only from NOT and
// AND gates (exactly as in §5.1), a w-bit n:1 AND-OR multiplexer, and a
// fixed-priority arbiter FSM — and provides a small logic-synthesis layer
// (two-level SOP from truth tables plus netlist optimization passes).
//
// Together with internal/gate it plays the role Berkeley SIS plays in the
// paper: producing "an easy synthesizable version" of each block whose
// gate-level switched-capacitance energy grounds the system-level
// macromodels.
package synth

import (
	"fmt"

	"ahbpower/internal/gate"
	"ahbpower/internal/stats"
)

// Decoder describes a generated one-hot decoder netlist.
type Decoder struct {
	Netlist *gate.Netlist
	In      []gate.NetID // binary-encoded input, LSB first (width n_I)
	Out     []gate.NetID // one-hot outputs (n_O of them)
	NI      int          // input width (the paper's n_I)
	NO      int          // output count (the paper's n_O)
}

// BuildDecoder generates a one-hot decoder with nOut outputs using only NOT
// and AND gates, matching the paper: "a simple one-hot decoding behavior
// ... synthesized only with NOT and AND gates". Output j asserts when the
// binary input equals j. The input width is the paper's n_I (the first
// integer greater than log2(n_O−1)).
func BuildDecoder(nOut int) (*Decoder, error) {
	if nOut < 2 {
		return nil, fmt.Errorf("synth: decoder needs at least 2 outputs, got %d", nOut)
	}
	nI := stats.PaperNI(nOut)
	nl := gate.NewNetlist(fmt.Sprintf("decoder%d", nOut))
	d := &Decoder{Netlist: nl, NI: nI, NO: nOut}
	inv := make([]gate.NetID, nI)
	for i := 0; i < nI; i++ {
		in := nl.AddInput(fmt.Sprintf("a%d", i))
		d.In = append(d.In, in)
		inv[i] = nl.MustGate(gate.Not, fmt.Sprintf("na%d", i), in)
	}
	for j := 0; j < nOut; j++ {
		lits := make([]gate.NetID, nI)
		for b := 0; b < nI; b++ {
			if j&(1<<uint(b)) != 0 {
				lits[b] = d.In[b]
			} else {
				lits[b] = inv[b]
			}
		}
		out := andTree(nl, fmt.Sprintf("sel%d", j), lits)
		nl.MarkOutput(out)
		d.Out = append(d.Out, out)
	}
	return d, nil
}

// andTree reduces literals with a balanced tree of 2-input AND gates. A
// single literal is buffered so that every output has a dedicated driver.
func andTree(nl *gate.Netlist, name string, lits []gate.NetID) gate.NetID {
	if len(lits) == 1 {
		return nl.MustGate(gate.Buf, name, lits[0])
	}
	for len(lits) > 2 {
		var next []gate.NetID
		for i := 0; i+1 < len(lits); i += 2 {
			next = append(next, nl.MustGate(gate.And, name+"_t", lits[i], lits[i+1]))
		}
		if len(lits)%2 == 1 {
			next = append(next, lits[len(lits)-1])
		}
		lits = next
	}
	return nl.MustGate(gate.And, name, lits[0], lits[1])
}

// orTree reduces nets with a balanced tree of 2-input OR gates.
func orTree(nl *gate.Netlist, name string, ins []gate.NetID) gate.NetID {
	if len(ins) == 1 {
		return nl.MustGate(gate.Buf, name, ins[0])
	}
	for len(ins) > 2 {
		var next []gate.NetID
		for i := 0; i+1 < len(ins); i += 2 {
			next = append(next, nl.MustGate(gate.Or, name+"_t", ins[i], ins[i+1]))
		}
		if len(ins)%2 == 1 {
			next = append(next, ins[len(ins)-1])
		}
		ins = next
	}
	return nl.MustGate(gate.Or, name, ins[0], ins[1])
}

// Mux describes a generated w-bit n:1 AND-OR multiplexer netlist.
type Mux struct {
	Netlist *gate.Netlist
	Sel     []gate.NetID   // binary select, LSB first (width ceil(log2 n))
	Data    [][]gate.NetID // Data[i][b] = bit b of input word i
	Out     []gate.NetID   // w output bits
	W       int
	N       int
}

// BuildMux generates a w-bit n-input multiplexer in AND-OR form: a one-hot
// select decoder (NOT/AND), per-bit AND masking and an OR reduction tree.
// This is the structure assumed by the paper's E_MUX = f(w, n, HD_IN,
// HD_SEL) macromodel.
func BuildMux(w, n int) (*Mux, error) {
	if w < 1 || n < 2 {
		return nil, fmt.Errorf("synth: mux needs w>=1 and n>=2, got w=%d n=%d", w, n)
	}
	nl := gate.NewNetlist(fmt.Sprintf("mux%dx%d", n, w))
	m := &Mux{Netlist: nl, W: w, N: n}
	s := stats.CeilLog2(n)
	if s == 0 {
		s = 1
	}
	for i := 0; i < s; i++ {
		m.Sel = append(m.Sel, nl.AddInput(fmt.Sprintf("s%d", i)))
	}
	for i := 0; i < n; i++ {
		word := make([]gate.NetID, w)
		for b := 0; b < w; b++ {
			word[b] = nl.AddInput(fmt.Sprintf("d%d_%d", i, b))
		}
		m.Data = append(m.Data, word)
	}
	// One-hot select decode from NOT/AND.
	inv := make([]gate.NetID, s)
	for i := 0; i < s; i++ {
		inv[i] = nl.MustGate(gate.Not, fmt.Sprintf("ns%d", i), m.Sel[i])
	}
	onehot := make([]gate.NetID, n)
	for i := 0; i < n; i++ {
		lits := make([]gate.NetID, s)
		for b := 0; b < s; b++ {
			if i&(1<<uint(b)) != 0 {
				lits[b] = m.Sel[b]
			} else {
				lits[b] = inv[b]
			}
		}
		onehot[i] = andTree(nl, fmt.Sprintf("oh%d", i), lits)
	}
	// Per output bit: mask each word with its one-hot line, OR-reduce.
	for b := 0; b < w; b++ {
		masked := make([]gate.NetID, n)
		for i := 0; i < n; i++ {
			masked[i] = nl.MustGate(gate.And, fmt.Sprintf("m%d_%d", i, b), m.Data[i][b], onehot[i])
		}
		out := orTree(nl, fmt.Sprintf("y%d", b), masked)
		nl.MarkOutput(out)
		m.Out = append(m.Out, out)
	}
	return m, nil
}

// Arbiter describes a generated fixed-priority arbiter FSM netlist: the
// simplified arbiter of the paper's §5.1, with registered one-hot grants
// and master 0 as the default master (granted when nobody requests).
type Arbiter struct {
	Netlist *gate.Netlist
	Req     []gate.NetID // request inputs
	Grant   []gate.NetID // registered one-hot grant outputs
	N       int
}

// BuildArbiter generates an n-master fixed-priority arbiter with a one-hot
// grant register: grant_i <= req_i AND NOT(req_0..req_{i-1}); when no master
// requests, the default master (index 0) is granted.
func BuildArbiter(n int) (*Arbiter, error) {
	if n < 2 {
		return nil, fmt.Errorf("synth: arbiter needs at least 2 masters, got %d", n)
	}
	nl := gate.NewNetlist(fmt.Sprintf("arbiter%d", n))
	a := &Arbiter{Netlist: nl, N: n}
	for i := 0; i < n; i++ {
		a.Req = append(a.Req, nl.AddInput(fmt.Sprintf("req%d", i)))
	}
	// noneReq = NOT(OR of all requests)
	anyReq := orTree(nl, "anyreq", a.Req)
	noneReq := nl.MustGate(gate.Not, "nonereq", anyReq)
	for i := 0; i < n; i++ {
		var next gate.NetID
		if i == 0 {
			// Default master: granted on its own request or when idle.
			next = nl.MustGate(gate.Or, "g0next", a.Req[0], noneReq)
		} else {
			lits := []gate.NetID{a.Req[i]}
			for j := 0; j < i; j++ {
				lits = append(lits, nl.MustGate(gate.Not, fmt.Sprintf("nr%d_%d", i, j), a.Req[j]))
			}
			next = andTree(nl, fmt.Sprintf("g%dnext", i), lits)
		}
		q := nl.AddNet(fmt.Sprintf("grant%d", i))
		if err := nl.Drive(gate.Dff, q, next); err != nil {
			return nil, err
		}
		nl.MarkOutput(q)
		a.Grant = append(a.Grant, q)
	}
	return a, nil
}
