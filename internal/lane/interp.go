package lane

import (
	"ahbpower/internal/amba/ahb"
	"ahbpower/internal/sim"
	"ahbpower/internal/topo"
	"ahbpower/internal/workload"
)

// The lane interpreter replays the register/combinational semantics of the
// kernel-backed ahb model on plain struct fields. The event kernel's
// delta-deferred Signal writes mean every posedge process reads pre-edge
// values; with immediate field writes the same contract needs exactly two
// provisions, both taken in laneState.edge:
//
//   - masters read their grant line as it was before the arbiter
//     re-arbitrated this edge, so grants are snapshotted first;
//   - the arbiter's DataMaster register captures the PREVIOUS HMaster (in
//     the kernel it writes HMaster and then reads the not-yet-committed
//     old value), so the old value is saved before the write.
//
// Everything else is naturally pre-edge: the arbiter runs before the
// masters touch their ports, the combinational values (HREADY, HTRANS,
// HADDR, ...) are only rewritten by the post-edge settle, and no edge
// process reads another's registered outputs.

// laneMasterPorts mirrors ahb's masterPorts as plain fields (HPROT is
// constant zero on the modeled bus and not observed; it is omitted).
type laneMasterPorts struct {
	busReq bool
	lock   bool
	trans  uint8
	addr   uint32
	write  bool
	size   uint8
	burst  uint8
	wdata  uint32
}

// laneSlavePorts mirrors ahb's slavePorts (the split-resume line is never
// driven by a memory slave and is omitted).
type laneSlavePorts struct {
	readyOut bool
	resp     uint8
	rdata    uint32
}

// laneState is one lane's complete bus state: ports, muxed/registered
// signals, the master and slave state machines, the detached protocol
// monitor and the per-lane analyzer.
type laneState struct {
	idx  int
	spec Spec

	nMasters  int
	nSlaves   int
	defaultM  int
	policy    ahb.ArbPolicy
	dataWidth int
	dataMask  uint32

	mp    []laneMasterPorts
	sp    []laneSlavePorts
	grant []bool

	// reqMask mirrors the mp[*].busReq lines as a bitmask, maintained at
	// the single write site (driveNext) so endOfCycle does not rescan the
	// ports every cycle.
	reqMask uint16

	grantIdx uint8

	// Muxed address/control and decode (combinational).
	hTrans uint8
	hAddr  uint32
	hWrite bool
	hSize  uint8
	hBurst uint8
	hWdata uint32
	selIdx int

	// Registered bookkeeping.
	hMaster    uint8
	hMastlock  bool
	dataMaster uint8
	dataSlave  int

	// S2M mux output (combinational).
	hRdata uint32
	hResp  uint8
	hReady bool

	// Default-slave registers.
	defReady    bool
	defResp     uint8
	defErrCycle bool

	masters []laneMaster // active (scripted) masters in port order
	slaves  []laneSlave  // one per slave port

	grantSnap []bool

	monitor    *ahb.Monitor
	an         *laneAnalyzer
	cycles     uint64
	lastMaster uint8
}

// newLaneState builds one lane from its spec and the shared canonical
// topology, mirroring core.NewSystemTopo plus the engine's workload
// resolution (explicit configs, then topology hints, then the paper
// workload sized to Cycles).
func newLaneState(idx int, spec Spec, ct topo.Topology, mc *modelCache) (*laneState, error) {
	policy, err := ct.ArbPolicy()
	if err != nil {
		return nil, err
	}
	l := &laneState{
		idx:       idx,
		spec:      spec,
		nMasters:  len(ct.Masters),
		nSlaves:   len(ct.Slaves),
		defaultM:  ct.DefaultMasterIndex(),
		policy:    policy,
		dataWidth: ct.DataWidth,
	}
	if ct.DataWidth >= 32 {
		l.dataMask = ^uint32(0)
	} else {
		l.dataMask = (uint32(1) << uint(ct.DataWidth)) - 1
	}

	// Port and register reset values, exactly as ahb.New initializes them.
	l.mp = make([]laneMasterPorts, l.nMasters)
	for m := range l.mp {
		l.mp[m] = laneMasterPorts{trans: ahb.TransIdle, size: ahb.Size32, burst: ahb.BurstSingle}
	}
	l.sp = make([]laneSlavePorts, l.nSlaves)
	for s := range l.sp {
		l.sp[s] = laneSlavePorts{readyOut: true, resp: ahb.RespOkay}
	}
	l.grant = make([]bool, l.nMasters)
	l.grant[l.defaultM] = true
	l.grantSnap = make([]bool, l.nMasters)
	l.grantIdx = uint8(l.defaultM)
	l.hMaster = uint8(l.defaultM)
	l.dataMaster = uint8(l.defaultM)
	l.lastMaster = uint8(l.defaultM)
	l.hTrans = ahb.TransIdle
	l.hSize = ahb.Size32
	l.hBurst = ahb.BurstSingle
	l.selIdx = -1
	l.dataSlave = -1
	l.hResp = ahb.RespOkay
	l.hReady = true
	l.defReady = true
	l.defResp = ahb.RespOkay

	for port, m := range ct.Masters {
		if m.Default {
			// The default master never requests and drives IDLE whenever
			// granted: a complete no-op on bus state, so it has no state
			// machine here.
			continue
		}
		l.masters = append(l.masters, laneMaster{l: l, port: port})
	}
	for port, s := range ct.Slaves {
		l.slaves = append(l.slaves, newLaneSlave(l, port, s))
	}
	if err := l.loadWorkloads(ct); err != nil {
		return nil, err
	}
	l.monitor = ahb.NewDetachedMonitor()
	if !spec.SkipAnalyzer {
		l.an, err = newLaneAnalyzer(spec.Analyzer, l.nMasters, l.nSlaves, ct.DataWidth, mc)
		if err != nil {
			return nil, err
		}
	}
	return l, nil
}

// loadWorkloads resolves the lane's traffic the way the engine does:
// explicit Workloads win, then the topology's per-master hints, then the
// paper workload sized to Cycles; missing explicit entries reuse the last
// configuration with the same shifted seed as core.System.LoadWorkload.
func (l *laneState) loadWorkloads(ct topo.Topology) error {
	cfgs := l.spec.Workloads
	if len(cfgs) == 0 {
		hints, err := ct.Workloads()
		if err != nil {
			return err
		}
		cfgs = hints
	}
	if len(cfgs) > 0 {
		for m := range l.masters {
			lm := &l.masters[m]
			cfg := cfgs[len(cfgs)-1]
			if m < len(cfgs) {
				cfg = cfgs[m]
			} else {
				cfg.Seed += int64(m) * 104729
			}
			seqs, err := workload.Generate(cfg)
			if err != nil {
				return err
			}
			lm.lowerScript(seqs)
			lm.reloadCur()
		}
		return nil
	}
	perMaster := int(l.spec.Cycles)/100 + 2
	base, size := ct.AddrSpan()
	for m := range l.masters {
		lm := &l.masters[m]
		cfg := workload.PaperTestbench(m, perMaster)
		cfg.AddrBase, cfg.AddrSize = base, size
		seqs, err := workload.Generate(cfg)
		if err != nil {
			return err
		}
		lm.lowerScript(seqs)
		lm.reloadCur()
	}
	return nil
}

// edge advances the lane by one rising clock edge: arbiter, default
// slave, masters, then slaves, with the pre-edge reads described at the
// top of the file.
func (l *laneState) edge() {
	copy(l.grantSnap, l.grant)
	l.arbiterEdge()
	l.defslaveEdge()
	for i := range l.masters {
		m := &l.masters[i]
		m.tick(l.grantSnap[m.port])
	}
	for i := range l.slaves {
		l.slaves[i].tick()
	}
}

// arbiterEdge is ahb's registered arbitration process.
func (l *laneState) arbiterEdge() {
	if !l.hReady {
		return
	}
	cur := int(l.grantIdx)
	old := l.hMaster
	l.hMaster = uint8(cur)
	l.hMastlock = l.mp[cur].lock
	// DataMaster captures the pre-edge HMaster (delta-deferred read in
	// the kernel).
	l.dataMaster = old
	if l.hTrans == ahb.TransNonseq || l.hTrans == ahb.TransSeq {
		l.dataSlave = l.selIdx
	} else {
		l.dataSlave = -1
	}
	next := l.arbitrate(cur)
	if next != cur {
		for m := range l.grant {
			l.grant[m] = m == next
		}
		l.grantIdx = uint8(next)
	}
}

// arbitrate mirrors ahb's policy selection. The split mask is always zero
// in a lane pack (memory slaves never SPLIT), so requests are unmasked.
func (l *laneState) arbitrate(cur int) int {
	if l.mp[cur].lock && l.mp[cur].busReq {
		return cur
	}
	switch l.policy {
	case ahb.PolicySticky:
		if l.mp[cur].busReq {
			return cur
		}
		for m := 0; m < l.nMasters; m++ {
			if l.mp[m].busReq {
				return m
			}
		}
	case ahb.PolicyFixed:
		for m := 0; m < l.nMasters; m++ {
			if l.mp[m].busReq {
				return m
			}
		}
	case ahb.PolicyRoundRobin:
		for i := 1; i <= l.nMasters; i++ {
			m := (cur + i) % l.nMasters
			if l.mp[m].busReq {
				return m
			}
		}
	}
	return l.defaultM
}

// defslaveEdge is ahb's internal default slave: a two-cycle ERROR to any
// active transfer decoding to unmapped space.
func (l *laneState) defslaveEdge() {
	if !l.hReady {
		if l.defErrCycle {
			l.defReady = true
			l.defErrCycle = false
		}
		return
	}
	t := l.hTrans
	if l.selIdx == -2 && (t == ahb.TransNonseq || t == ahb.TransSeq) {
		l.defReady = false
		l.defResp = ahb.RespError
		l.defErrCycle = true
	} else {
		l.defReady = true
		l.defResp = ahb.RespOkay
	}
}

// comb settles the lane's combinational fabric: the M2S address and write
// data muxes and the S2M response mux. The address decoder (SelIdx) is
// settled separately, lane-packed, by the shared gate netlist.
func (l *laneState) comb() {
	mi := int(l.hMaster)
	if mi >= l.nMasters {
		mi = 0
	}
	p := &l.mp[mi]
	l.hTrans = p.trans
	l.hAddr = p.addr
	l.hWrite = p.write
	l.hSize = p.size
	l.hBurst = p.burst

	di := int(l.dataMaster)
	if di >= l.nMasters {
		di = 0
	}
	l.hWdata = l.mp[di].wdata & l.dataMask

	ds := l.dataSlave
	switch {
	case ds >= 0 && ds < l.nSlaves:
		sp := &l.sp[ds]
		l.hRdata = sp.rdata & l.dataMask
		l.hResp = sp.resp
		l.hReady = sp.readyOut
	case ds == -2:
		// Default slave: response lines only; HRDATA parks.
		l.hResp = l.defResp
		l.hReady = l.defReady
	default:
		l.hResp = ahb.RespOkay
		l.hReady = true
	}
}

// endOfCycle snapshots the settled cycle into a CycleInfo record and
// feeds it to the monitor and the analyzer, in the bus hub's attach order
// (monitor first, analyzer second).
func (l *laneState) endOfCycle(period sim.Time) {
	l.cycles++
	ci := ahb.CycleInfo{
		Cycle:      l.cycles,
		Time:       period/2 + sim.Time(l.cycles-1)*period,
		Trans:      l.hTrans,
		Addr:       l.hAddr,
		Write:      l.hWrite,
		Size:       l.hSize,
		Burst:      l.hBurst,
		Wdata:      l.hWdata,
		Master:     l.hMaster,
		Lock:       l.hMastlock,
		SelIdx:     l.selIdx,
		Rdata:      l.hRdata,
		Resp:       l.hResp,
		Ready:      l.hReady,
		DataMaster: l.dataMaster,
		DataSlave:  l.dataSlave,
		GrantIdx:   l.grantIdx,
		Requests:   l.reqMask,
	}
	ci.Handover = ci.Master != l.lastMaster
	l.lastMaster = ci.Master
	l.monitor.ObserveCycle(ci)
	if l.an != nil {
		l.an.observe(ci, l)
	}
}

// laneFlight is one beat in the bus pipeline (ahb's flight), reduced to
// the fields the lane bus actually consumes.
type laneFlight struct {
	addr  uint32
	data  uint32
	write bool
	lock  bool
	size  uint8
	burst uint8
	trans uint8
}

// laneOp is one pre-lowered script op on a master's flat tape: the hot
// per-beat fields of ahb.Op with every per-op derivation (beat count,
// burst code, size default, masked write data, sequence idle) folded in at
// build time. The interpreter streams one dense array per master instead
// of chasing Sequence/Op/Data indirections every cycle.
type laneOp struct {
	kind  ahb.OpKind
	size  uint8
	burst uint8
	lock  bool
	// beats is the burst length, or the idle length for OpIdle.
	beats int32
	addr  uint32
	// dataOff indexes the master's flat pre-masked write-data tape; -1
	// when the op carries no data.
	dataOff int32
	// idleAfter is Sequence.IdleAfter when this op ends its sequence.
	idleAfter int32
	// busy points at the original op when it carries BusyBefore state,
	// which the replay decrements in place exactly like ahb.Master.
	busy *ahb.Op
}

// laneMaster is the script-driven master state machine, a transcription of
// ahb.Master without the kernel plumbing. RETRY/SPLIT rewind handling is
// kept even though a lane pack's memory slaves only ever answer OKAY (the
// default slave adds ERROR), so the state machines stay comparable.
// Flights are embedded values (hasAddr/hasData mark occupancy), the script
// is the pre-lowered tape, and the tape cursor's current op is memoized in
// cur, so the per-edge hot path reads only this struct and one dense tape
// entry.
type laneMaster struct {
	l    *laneState
	port int

	tape     []laneOp
	dataTape []uint32
	tapeIdx  int
	beat     int
	idleCnt  int

	// Current-op memo, maintained by reloadCur (curKind is laneOpNone past
	// the tape's end).
	cur     *laneOp
	curKind ahb.OpKind

	// Last driven beat of the current op, for incremental burst-address
	// stepping (lastBeat is -1 when no beat of this op was driven yet).
	lastBeat int
	lastAddr uint32

	addrPhase  laneFlight
	dataPhase  laneFlight
	hasAddr    bool
	hasData    bool
	rewind     []laneFlight
	mustNonseq bool

	beats uint64
}

// laneOpNone marks an exhausted tape in the curKind memo.
const laneOpNone = ^ahb.OpKind(0)

// lowerScript appends the generated sequences to the master's tape. A
// sequence with no ops wedges ahb.Master's cursor for the rest of the run,
// so lowering stops there to replicate the permanent idle.
func (m *laneMaster) lowerScript(seqs []ahb.Sequence) {
	for si := range seqs {
		seq := &seqs[si]
		if len(seq.Ops) == 0 {
			return
		}
		for oi := range seq.Ops {
			op := &seq.Ops[oi]
			t := laneOp{kind: op.Kind, lock: op.Lock, dataOff: -1}
			if op.Kind == ahb.OpIdle {
				t.beats = int32(op.IdleCycles)
			} else {
				t.beats = int32(opBeats(op))
				t.addr = op.Addr
				t.size = m.sizeOf(op)
				t.burst = opBurstCode(op)
				if op.Kind == ahb.OpWrite && len(op.Data) > 0 {
					t.dataOff = int32(len(m.dataTape))
					for _, d := range op.Data {
						m.dataTape = append(m.dataTape, d&m.l.dataMask)
					}
				}
				if len(op.BusyBefore) > 0 {
					t.busy = op
				}
			}
			if oi == len(seq.Ops)-1 {
				t.idleAfter = int32(seq.IdleAfter)
			}
			m.tape = append(m.tape, t)
		}
	}
}

// reloadCur re-derives the current-op memo after any cursor movement.
func (m *laneMaster) reloadCur() {
	m.cur = nil
	m.curKind = laneOpNone
	m.lastBeat = -1
	if m.tapeIdx < len(m.tape) {
		m.cur = &m.tape[m.tapeIdx]
		m.curKind = m.cur.kind
	}
}

// advanceOp moves the tape cursor past the current op (both the burst and
// the idle paths end an op the same way). idleCnt is always zero here —
// the cursor cannot move during a sequence gap — so assigning the op's
// idleAfter reproduces ahb.Master's end-of-sequence idle exactly.
func (m *laneMaster) advanceOp() {
	m.beat = 0
	m.idleCnt = int(m.cur.idleAfter)
	m.tapeIdx++
	m.reloadCur()
}

// opBeats transcribes ahb.Op's unexported beats method.
func opBeats(o *ahb.Op) int {
	if o.Kind == ahb.OpWrite {
		if len(o.Data) == 0 {
			return 1
		}
		return len(o.Data)
	}
	if o.Beats <= 0 {
		return 1
	}
	return o.Beats
}

// opBurstCode transcribes ahb.Op's unexported burstCode method.
func opBurstCode(o *ahb.Op) uint8 {
	if o.Burst != 0 {
		return o.Burst
	}
	switch opBeats(o) {
	case 1:
		return ahb.BurstSingle
	case 4:
		return ahb.BurstIncr4
	case 8:
		return ahb.BurstIncr8
	case 16:
		return ahb.BurstIncr16
	default:
		return ahb.BurstIncr
	}
}

// tick advances the master by one clock edge (ahb.Master.tick). granted
// is the pre-edge grant line.
func (m *laneMaster) tick(granted bool) {
	hready := m.l.hReady
	resp := m.l.hResp

	// 1. Data-phase completion / error handling.
	if m.hasData {
		if !hready {
			switch resp {
			case ahb.RespRetry, ahb.RespSplit:
				m.rewind = append(m.rewind, m.dataPhase)
				if m.hasAddr && (m.addrPhase.trans == ahb.TransNonseq || m.addrPhase.trans == ahb.TransSeq) {
					m.rewind = append(m.rewind, m.addrPhase)
				}
				m.hasData = false
				m.hasAddr = false
				m.mustNonseq = true
				m.driveIdle()
			default:
				// First ERROR cycle / plain wait state: stats only.
			}
		} else {
			m.hasData = false
			switch resp {
			case ahb.RespOkay, ahb.RespError:
				m.beats++ // completeBeat counts both outcomes
			default:
				m.rewind = append(m.rewind, m.dataPhase)
			}
		}
	}

	if !hready {
		// Address phase is frozen during wait states.
		return
	}

	// 2. The address phase just got sampled: promote it to data phase.
	if m.hasAddr {
		if m.addrPhase.trans == ahb.TransNonseq || m.addrPhase.trans == ahb.TransSeq {
			m.dataPhase = m.addrPhase
			m.hasData = true
			if m.dataPhase.write {
				m.l.mp[m.port].wdata = m.dataPhase.data
			}
		}
		m.hasAddr = false
	}

	// 3. Drive the next address phase.
	m.driveNext(granted)
}

func (m *laneMaster) driveIdle() {
	m.l.mp[m.port].trans = ahb.TransIdle
	m.l.mp[m.port].lock = false
}

func (m *laneMaster) driveNext(granted bool) {
	wantBus := m.hasWork()
	if p := &m.l.mp[m.port]; p.busReq != wantBus {
		p.busReq = wantBus
		m.l.reqMask ^= 1 << uint(m.port)
	}

	if !granted || !wantBus {
		m.driveIdle()
		if wantBus {
			m.mustNonseq = true
		} else {
			m.advanceIdle()
		}
		return
	}

	if len(m.rewind) > 0 {
		f := m.rewind[0]
		m.rewind = m.rewind[1:]
		f.burst, f.trans = ahb.BurstIncr, ahb.TransNonseq
		m.driveFlight(f)
		return
	}

	if m.curKind == laneOpNone || m.curKind == ahb.OpIdle {
		m.driveIdle()
		m.advanceIdle()
		return
	}

	op := m.cur
	if op.busy != nil && m.beat > 0 {
		if left := op.busy.BusyBefore[m.beat]; left > 0 {
			op.busy.BusyBefore[m.beat] = left - 1
			m.l.mp[m.port].trans = ahb.TransBusy
			return
		}
	}

	m.driveFlight(m.flightFor(op))
	m.beat++
	if m.beat >= int(op.beats) {
		m.advanceOp()
	}
}

func (m *laneMaster) hasWork() bool {
	if len(m.rewind) > 0 || m.hasAddr {
		return true
	}
	if m.idleCnt > 0 {
		return false
	}
	return m.curKind != laneOpNone && m.curKind != ahb.OpIdle
}

func (m *laneMaster) advanceIdle() {
	if m.idleCnt > 0 {
		m.idleCnt--
		return
	}
	if m.curKind == ahb.OpIdle {
		if m.beat == 0 {
			m.beat = int(m.cur.beats)
		}
		m.beat--
		if m.beat <= 0 {
			m.advanceOp()
		}
	}
}

func (m *laneMaster) flightFor(op *laneOp) laneFlight {
	var f laneFlight
	f.write, f.size, f.burst, f.lock = op.kind == ahb.OpWrite, op.size, op.burst, op.lock
	if m.beat == 0 {
		f.addr = op.addr
		f.trans = ahb.TransNonseq
	} else if m.mustNonseq {
		f.trans = ahb.TransNonseq
		f.burst = ahb.BurstIncr
		f.addr = m.nextAddr(op)
	} else {
		f.trans = ahb.TransSeq
		f.addr = m.nextAddr(op)
	}
	m.mustNonseq = false
	if f.write && op.dataOff >= 0 {
		f.data = m.dataTape[int(op.dataOff)+m.beat]
	}
	m.lastBeat, m.lastAddr = m.beat, f.addr
	return f
}

// nextAddr returns the burst address of the current beat. Consecutive
// beats step the last driven address forward once (the loop below applied
// to lastAddr's own value), so the common path is one NextBurstAddr call;
// the full fold from op.addr remains for beats driven out of sequence.
func (m *laneMaster) nextAddr(op *laneOp) uint32 {
	if m.beat == m.lastBeat+1 {
		return ahb.NextBurstAddr(m.lastAddr, op.burst, op.size)
	}
	addr := op.addr
	for i := 0; i < m.beat; i++ {
		addr = ahb.NextBurstAddr(addr, op.burst, op.size)
	}
	return addr
}

func (m *laneMaster) sizeOf(op *ahb.Op) uint8 {
	if op.Size == 0 && m.l.dataWidth == 32 {
		return ahb.Size32
	}
	return op.Size
}

func (m *laneMaster) driveFlight(f laneFlight) {
	m.addrPhase = f
	m.hasAddr = true
	p := &m.l.mp[m.port]
	p.trans = f.trans
	p.addr = f.addr
	p.write = f.write
	p.size = f.size
	p.burst = f.burst
	p.lock = f.lock
}

// laneSlave is ahb.MemorySlave without the kernel plumbing.
type laneSlave struct {
	l     *laneState
	port  int
	waits int

	pending  bool
	pAddr    uint32
	pWrite   bool
	waitLeft int

	mem laneMem
}

func newLaneSlave(l *laneState, port int, s topo.Slave) laneSlave {
	return laneSlave{l: l, port: port, waits: s.Waits, mem: newLaneMem(s.Regions)}
}

func (s *laneSlave) tick() {
	hready := s.l.hReady

	if s.pending {
		if s.waitLeft > 0 {
			s.waitLeft--
			if s.waitLeft == 0 {
				s.finishPhase()
			}
			return
		}
		if hready {
			if s.pWrite {
				s.mem.store(s.pAddr>>2, s.l.hWdata)
			}
			s.pending = false
		}
	}

	if !hready {
		return
	}

	t := s.l.hTrans
	if s.l.selIdx == s.port && (t == ahb.TransNonseq || t == ahb.TransSeq) {
		s.pending = true
		s.pAddr = s.l.hAddr
		s.pWrite = s.l.hWrite
		s.l.sp[s.port].resp = ahb.RespOkay
		if s.waits > 0 {
			s.waitLeft = s.waits
			s.l.sp[s.port].readyOut = false
		} else {
			s.finishPhase()
		}
	} else {
		s.l.sp[s.port].readyOut = true
		s.l.sp[s.port].resp = ahb.RespOkay
	}
}

func (s *laneSlave) finishPhase() {
	s.l.sp[s.port].readyOut = true
	if !s.pWrite {
		s.l.sp[s.port].rdata = s.mem.load(s.pAddr >> 2)
	}
}

// denseMemLimit bounds the dense backing-store size: slaves whose mapped
// region span fits in this many bytes get a flat slice (no hashing on the
// hot path); sparser maps fall back to ahb.MemorySlave's map layout.
const denseMemLimit = 4 << 20

// laneMem is a word-addressed, zero-default memory, dense when the
// slave's address span allows it.
type laneMem struct {
	base  uint32 // word index of the dense window's first entry
	dense []uint32
	m     map[uint32]uint32
}

func newLaneMem(regions []topo.AddrRange) laneMem {
	lo, hi := uint64(1)<<32, uint64(0)
	for _, r := range regions {
		if r.Size == 0 {
			continue
		}
		if uint64(r.Start) < lo {
			lo = uint64(r.Start)
		}
		if r.End() > hi {
			hi = r.End()
		}
	}
	if hi > lo && hi-lo <= denseMemLimit {
		return laneMem{base: uint32(lo >> 2), dense: make([]uint32, (hi+3)/4-lo/4)}
	}
	return laneMem{m: map[uint32]uint32{}}
}

func (mm *laneMem) load(word uint32) uint32 {
	if mm.dense != nil {
		if i := word - mm.base; i < uint32(len(mm.dense)) {
			return mm.dense[i]
		}
		return 0
	}
	return mm.m[word]
}

func (mm *laneMem) store(word, v uint32) {
	if mm.dense != nil {
		if i := word - mm.base; i < uint32(len(mm.dense)) {
			mm.dense[i] = v
		}
		return
	}
	mm.m[word] = v
}
