// Package lane is the bit-parallel execution backend: it evaluates up to
// 64 compatible scenarios ("lanes") per step, one lane per bit of the
// uint64 words the shared address-decoder netlist is evaluated over (see
// internal/gate.PackedEval). Scenarios that share a canonical bus
// structure — same address map, clock, width, policy — but differ in
// workload, seed or run length are packed into one execution whose
// per-lane results are bit-identical to the event backend's: the lane
// interpreter replays the exact register/combinational semantics of the
// ahb model with plain struct state instead of kernel signals, feeds each
// lane's settled cycle stream through a detached protocol monitor and a
// transcription of the core analyzer's energy math (same Hamming
// distances, same macromodel calls, same accumulation order), and the
// golden paired suite plus FuzzLaneEquivalence in internal/exec enforce
// Float64bits equality against the event kernel.
package lane

import (
	"context"
	"fmt"
	"math/bits"
	"strings"

	"ahbpower/internal/amba/ahb"
	"ahbpower/internal/core"
	"ahbpower/internal/power"
	"ahbpower/internal/sim"
	"ahbpower/internal/topo"
	"ahbpower/internal/workload"
)

// MaxLanes is the pack width: one scenario per bit of a uint64.
const MaxLanes = 64

// Name is the backend name threaded through -backend flags, results and
// the serve wire format.
const Name = "lanes"

// Spec describes one lane of a pack: the scenario fields the lane backend
// supports. The engine builds Specs from eligible engine.Scenarios; the
// topology must be canonical and all specs of one pack must share Key.
type Spec struct {
	// Name labels the lane in errors.
	Name string
	// Topo is the canonical topology the lane simulates.
	Topo topo.Topology
	// Analyzer parameterizes the power analyzer (ignored under
	// SkipAnalyzer). DPM, private style and streaming traces are not
	// supported — Traits.Unsupported gates them out before packing.
	Analyzer core.AnalyzerConfig
	// Workloads supplies per-master traffic exactly like
	// engine.Scenario.Workloads; empty means topology hints, then the
	// paper workload sized to Cycles.
	Workloads []workload.Config
	// Cycles is the lane's run length; lanes of one pack may differ and
	// retire individually.
	Cycles uint64
	// SkipAnalyzer runs the lane without power instrumentation.
	SkipAnalyzer bool
}

// Outcome is the per-lane result scattered back out of a pack, carrying
// exactly the fields engine.Result derives from a simulation.
type Outcome struct {
	// Report is the full analysis outcome (nil under SkipAnalyzer or Err).
	Report *core.Report
	// Stats is the per-instruction energy table (nil under SkipAnalyzer).
	Stats []power.InstructionStat
	// Beats counts data beats completed by the active masters.
	Beats uint64
	// Counts is the protocol monitor's event counters.
	Counts map[string]uint64
	// Violations holds protocol errors detected by the monitor.
	Violations []ahb.ProtocolError
	// Cycles is the number of bus cycles the lane actually simulated.
	Cycles uint64
	// Err captures a per-lane failure: workload generation, or pack
	// cancellation before the lane retired.
	Err error
}

// Traits captures the execution-relevant features of a scenario for lane
// eligibility, the packed analog of exec.Traits. The engine fills it from
// a Scenario (see engine.Scenario.LaneTraits).
type Traits struct {
	// HasSetup marks a custom Setup hook (arbitrary kernel-level code the
	// lane interpreter cannot replay).
	HasSetup bool
	// KeepSystem asks for the built core.System in the result; a lane has
	// no kernel-backed system to retain.
	KeepSystem bool
	// HasTimeout marks a per-scenario wall-clock timeout; pack members
	// share one execution and cannot be timed out individually.
	HasTimeout bool
	// HasFaults marks an active fault-injection plan (injectors hook the
	// kernel's signal fabric).
	HasFaults bool
	// HasDPM marks an attached dynamic-power-management estimator.
	HasDPM bool
	// DeltaInstrumented marks private-style (per-delta glitch counting)
	// instrumentation; a one-update-per-cycle interpreter undercounts it.
	DeltaInstrumented bool
	// HasTraceRecorder marks a streaming metrics.Trace subscriber on the
	// analyzer's sample stream.
	HasTraceRecorder bool
	// ClockPeriod is the bus clock period (the lane stepper shares the
	// compiled backend's even-period contract).
	ClockPeriod sim.Time
}

// Unsupported returns the reason the lane backend cannot honor a scenario
// with these traits, or "" when it can. Reason strings shared with the
// compiled backend match exec.Traits.Unsupported verbatim.
func (t Traits) Unsupported() string {
	period := t.ClockPeriod
	if period < 2 {
		period = 2 // sim.NewClock clamps sub-minimum periods the same way
	}
	switch {
	case t.HasSetup:
		return "custom Setup hook"
	case t.KeepSystem:
		return "KeepSystem retains the kernel-backed system"
	case t.HasTimeout:
		return "per-scenario timeout"
	case t.HasFaults:
		return "active fault-injection plan"
	case t.HasDPM:
		return "DPM estimator attached"
	case t.DeltaInstrumented:
		return "delta-level (private-style) instrumentation"
	case t.HasTraceRecorder:
		return "streaming trace recorder attached"
	case period%2 != 0:
		return fmt.Sprintf("odd clock period %d", t.ClockPeriod)
	}
	return ""
}

// Key returns the structural grouping key of a topology: two scenarios
// may share a pack exactly when their canonical topologies agree on
// everything that shapes the bus — width, clock, policy, master ports
// (default flags) and the per-slave wait states and address regions.
// Names, workload hints and run lengths are per-lane and excluded.
func Key(t topo.Topology) string {
	ct := t.Canonical()
	var b strings.Builder
	fmt.Fprintf(&b, "w%d|c%d|%s|m:", ct.DataWidth, ct.ClockPeriodPS, ct.Policy)
	for _, m := range ct.Masters {
		if m.Default {
			b.WriteByte('D')
		} else {
			b.WriteByte('a')
		}
	}
	b.WriteString("|s:")
	for _, s := range ct.Slaves {
		fmt.Fprintf(&b, "(%d", s.Waits)
		for _, r := range s.Regions {
			fmt.Fprintf(&b, ",%x+%x", r.Start, r.Size)
		}
		b.WriteByte(')')
	}
	return b.String()
}

// Pack is a built lane-packed execution: up to 64 lanes over one shared
// bus structure, ready to Run. Construction (BuildPack) and execution
// (Run) are split so callers can exclude build time from run metrics.
type Pack struct {
	key    string
	period sim.Time
	lanes  []*laneState
	dec    *packedDecoder
	outs   []Outcome
}

// Lanes returns the pack occupancy (including lanes that failed to
// build).
func (p *Pack) Lanes() int { return len(p.lanes) }

// BuildPack constructs a pack from up to MaxLanes specs sharing one
// structural Key. A per-lane build failure (bad workload configuration)
// is recorded in that lane's Outcome and does not fail the pack; an
// empty, oversized or structurally mixed pack is an error.
func BuildPack(specs []Spec) (*Pack, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("lane: empty pack")
	}
	if len(specs) > MaxLanes {
		return nil, fmt.Errorf("lane: %d specs exceed the %d-lane pack width", len(specs), MaxLanes)
	}
	p := &Pack{outs: make([]Outcome, len(specs))}
	mc := &modelCache{}
	for i := range specs {
		ct := specs[i].Topo.Canonical()
		k := Key(ct)
		if i == 0 {
			if err := topo.Check(ct); err != nil {
				return nil, fmt.Errorf("lane: %s: %w", specs[i].Name, err)
			}
			p.key = k
			p.period = ct.ClockPeriod()
			if p.period < 2 {
				p.period = 2
			}
			var err error
			p.dec, err = newPackedDecoder(ct.Regions())
			if err != nil {
				return nil, fmt.Errorf("lane: decoder netlist: %w", err)
			}
		} else if k != p.key {
			return nil, fmt.Errorf("lane: %s: structural key mismatch within pack", specs[i].Name)
		}
		l, err := newLaneState(i, specs[i], ct, mc)
		if err != nil {
			p.outs[i].Err = fmt.Errorf("lane: %s: %w", specs[i].Name, err)
			p.lanes = append(p.lanes, nil)
			continue
		}
		p.lanes = append(p.lanes, l)
	}
	return p, nil
}

// ctxChunk bounds how many bus cycles Run simulates between cancellation
// checks, mirroring core.System.RunContext's runChunk so cancellation
// latency matches the other backends.
const ctxChunk = 512

// Run executes the pack to completion (or cancellation) and returns one
// Outcome per lane, in spec order. Lanes retire individually at their own
// Cycles; on cancellation, lanes already retired keep their results and
// unfinished lanes fail with the context's error.
func (p *Pack) Run(ctx context.Context) []Outcome {
	var active uint64
	for i, l := range p.lanes {
		if l != nil && l.spec.Cycles > 0 {
			active |= 1 << uint(i)
		} else if l != nil {
			p.outs[i].Err = fmt.Errorf("lane: %s: Cycles must be positive", l.spec.Name)
		}
	}
	// Settle the combinational fabric once before the first clock edge,
	// exactly like the kernel's init-time Method evaluation.
	for m := active; m != 0; m &= m - 1 {
		p.lanes[trailing(m)].comb()
	}
	p.dec.update(p.lanes, active)

	canceled := ctx != nil && ctx.Done() != nil
	sinceCheck := 0
	for active != 0 {
		if canceled {
			if sinceCheck == 0 {
				if err := ctx.Err(); err != nil {
					for m := active; m != 0; m &= m - 1 {
						i := trailing(m)
						p.outs[i].Cycles = p.lanes[i].cycles
						p.outs[i].Err = err
					}
					return p.outs
				}
				sinceCheck = ctxChunk
			}
			sinceCheck--
		}
		for m := active; m != 0; m &= m - 1 {
			p.lanes[trailing(m)].edge()
		}
		for m := active; m != 0; m &= m - 1 {
			p.lanes[trailing(m)].comb()
		}
		p.dec.update(p.lanes, active)
		for m := active; m != 0; m &= m - 1 {
			i := trailing(m)
			l := p.lanes[i]
			l.endOfCycle(p.period)
			if l.cycles >= l.spec.Cycles {
				active &^= 1 << uint(i)
				p.finish(i)
			}
		}
	}
	return p.outs
}

// finish scatters one retired lane's state into its Outcome.
func (p *Pack) finish(i int) {
	l := p.lanes[i]
	o := &p.outs[i]
	o.Cycles = l.cycles
	for i := range l.masters {
		o.Beats += l.masters[i].beats
	}
	o.Counts = l.monitor.Counts()
	o.Violations = l.monitor.Errors()
	if l.an != nil {
		sts := l.an.fsm.Stats()
		o.Stats = sts
		o.Report = core.BuildReport(l.an.style, p.period, l.an.fsm.Cycles(), l.an.fsm.TotalEnergy(),
			sts, &l.an.bd, l.an.traces())
	}
}

// trailing returns the index of the lowest set bit of a nonzero mask.
func trailing(m uint64) int { return bits.TrailingZeros64(m) }
