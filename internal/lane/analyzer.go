package lane

import (
	"fmt"
	"math"

	"ahbpower/internal/amba/ahb"
	"ahbpower/internal/core"
	"ahbpower/internal/power"
	"ahbpower/internal/stats"
)

// modelKey identifies one resolved macromodel set: the resolved technology
// point (as bit patterns, so ±0/NaN coincidences never alias) and the
// config's explicit model set, if any. The bus shape is pack-invariant, so
// it is not part of the key.
type modelKey struct {
	vdd, cpd, co uint64
	models       *power.Models
}

// modelCache shares one resolved macromodel set among the lanes of a pack
// whose analyzer configs resolve to the same coefficients. The models'
// only mutable state is memoization filled by exact, deterministic
// formulas of the coefficients, and a pack runs its lanes sequentially in
// one goroutine — so sharing cannot change any lane's energies, while it
// shrinks the pack's per-cycle memo working set from one table set per
// lane to one per distinct configuration.
type modelCache struct {
	keys []modelKey
	sets []*power.Models
}

func (c *modelCache) get(k modelKey) *power.Models {
	for i := range c.keys {
		if c.keys[i] == k {
			return c.sets[i]
		}
	}
	return nil
}

func (c *modelCache) put(k modelKey, m *power.Models) {
	c.keys = append(c.keys, k)
	c.sets = append(c.sets, m)
}

// laneAnalyzer is the per-lane transcription of core.Analyzer's cycle
// hook: the same activity words, the same Hamming distances against the
// same previous-cycle snapshot, the same macromodel calls in the same
// order, feeding the same power.FSM accumulator — so a lane's report is
// Float64bits-identical to the event backend's. Features whose observable
// effect lives outside the engine result (sample streaming, activity
// recording, DPM) are gated out by Traits before a pack is built; the
// constructor rejects them again defensively.
type laneAnalyzer struct {
	style   core.Style
	nSlaves int

	dec *power.DecoderModel
	m2s *power.MuxModel
	s2m *power.MuxModel
	arb *power.ArbiterModel

	fsm *power.FSM
	bd  power.Breakdown

	tTotal, tM2S, tDEC, tARB, tS2M *stats.Windower

	// Previous-cycle snapshot for Hamming distances.
	havePrev   bool
	prevDecIn  uint64
	prevAddr   uint32
	prevCtrl   uint64
	prevWdata  uint32
	prevRdata  uint32
	prevS2MCtl uint64
	prevM2SSel uint64
	prevS2MSel uint64
	prevReq    uint16
	prevGrant  uint16

	lastActiveMaster uint8
	haveActive       bool

	// Local-style per-port history (previous sampled values).
	localPrev  []uint64
	localFirst bool
}

// newLaneAnalyzer mirrors core.Attach's model resolution: explicit
// characterized models are validated and cloned (the macromodels memoize
// in place), otherwise the structural defaults are built for this bus
// shape. Lanes whose configs resolve identically share one set through
// the pack's modelCache.
func newLaneAnalyzer(cfg core.AnalyzerConfig, nMasters, nSlaves, dataWidth int, mc *modelCache) (*laneAnalyzer, error) {
	switch {
	case cfg.Style == core.StylePrivate:
		return nil, fmt.Errorf("lane: private-style instrumentation is not lane-executable")
	case cfg.DPM != nil:
		return nil, fmt.Errorf("lane: DPM estimator is not lane-executable")
	case cfg.Trace != nil:
		return nil, fmt.Errorf("lane: streaming trace recorder is not lane-executable")
	}
	tech := cfg.Tech
	if tech.VDD == 0 {
		tech = power.DefaultTech()
	}
	key := modelKey{
		vdd:    math.Float64bits(tech.VDD),
		cpd:    math.Float64bits(tech.CPD),
		co:     math.Float64bits(tech.CO),
		models: cfg.Models,
	}
	models := mc.get(key)
	if models == nil {
		var err error
		if cfg.Models == nil {
			models, err = power.DefaultModels(nMasters, nSlaves, dataWidth, tech)
			if err != nil {
				return nil, err
			}
		} else if err = cfg.Models.Validate(); err != nil {
			return nil, err
		} else {
			models = cfg.Models.Clone()
		}
		mc.put(key, models)
	}
	a := &laneAnalyzer{
		style:   cfg.Style,
		nSlaves: nSlaves,
		dec:     models.Dec,
		m2s:     models.M2S,
		s2m:     models.S2M,
		arb:     models.Arb,
		fsm:     power.NewFSM(),
	}
	if cfg.TraceWindow > 0 {
		a.tTotal = stats.NewWindower("AHB total", cfg.TraceWindow)
		a.tM2S = stats.NewWindower("M2S mux", cfg.TraceWindow)
		a.tDEC = stats.NewWindower("decoder", cfg.TraceWindow)
		a.tARB = stats.NewWindower("arbiter", cfg.TraceWindow)
		a.tS2M = stats.NewWindower("S2M mux", cfg.TraceWindow)
	}
	if cfg.Style == core.StyleLocal {
		a.localPrev = make([]uint64, 3*nMasters+2*nSlaves)
	}
	return a, nil
}

// traces bundles the windowers for core.BuildReport (nil when tracing is
// off).
func (a *laneAnalyzer) traces() *core.ReportTraces {
	if a.tTotal == nil {
		return nil
	}
	return &core.ReportTraces{Total: a.tTotal, M2S: a.tM2S, DEC: a.tDEC, ARB: a.tARB, S2M: a.tS2M}
}

// encodeSel maps a decoded slave index to the decoder-input binary code.
func (a *laneAnalyzer) encodeSel(idx int) uint64 {
	if idx >= 0 {
		return uint64(idx)
	}
	return uint64(a.nSlaves) // default-slave code
}

// packCtrl packs the muxed control lines into one activity word.
func packCtrl(ci ahb.CycleInfo) uint64 {
	v := uint64(ci.Trans) & 3
	if ci.Write {
		v |= 1 << 2
	}
	v |= uint64(ci.Size&7) << 3
	v |= uint64(ci.Burst&7) << 6
	return v
}

// observe is the per-cycle analysis hook (core.Analyzer.ObserveCycle with
// the lane's plain-field ports in place of the kernel signals).
func (a *laneAnalyzer) observe(ci ahb.CycleInfo, l *laneState) {
	state := a.classify(ci)

	if a.style == core.StyleLocal && !a.havePrev {
		// Prime the per-port history so the first measured cycle does not
		// count transitions from the zero state.
		a.localFirst = true
		a.localM2SInputHD(l)
		a.localS2MInputHD(l)
		a.localFirst = false
	}

	decIn := a.encodeSel(ci.SelIdx)
	ctrl := packCtrl(ci)
	s2mCtl := uint64(ci.Resp) & 3
	if ci.Ready {
		s2mCtl |= 4
	}
	m2sSel := uint64(ci.Master) | uint64(ci.DataMaster)<<4
	s2mSel := a.encodeSel(ci.DataSlave) // -1 and -2 fold to the spare code

	grant := uint16(1) << ci.GrantIdx

	var eDEC, eM2S, eS2M, eARB float64
	if a.havePrev {
		hdDec := stats.Hamming(a.prevDecIn, decIn)
		hdAddr := stats.Hamming32(a.prevAddr, ci.Addr)
		hdCtrl := stats.Hamming(a.prevCtrl, ctrl)
		hdWdata := stats.Hamming32(a.prevWdata, ci.Wdata)
		hdRdata := stats.Hamming32(a.prevRdata, ci.Rdata)
		hdS2MCtl := stats.Hamming(a.prevS2MCtl, s2mCtl)
		hdM2SSel := stats.Hamming(a.prevM2SSel, m2sSel)
		hdS2MSel := stats.Hamming(a.prevS2MSel, s2mSel)
		hdReq := stats.Hamming(uint64(a.prevReq), uint64(ci.Requests))
		hdGrant := stats.Hamming(uint64(a.prevGrant), uint64(grant))

		m2sOut := hdAddr + hdCtrl + hdWdata
		s2mOut := hdRdata + hdS2MCtl

		// Global-style input estimate: output activity stands in for input
		// activity, except in re-steer cycles where output churn comes
		// from the select change, not from the inputs.
		m2sIn, s2mIn := m2sOut, s2mOut
		if hdM2SSel > 0 {
			m2sIn = 0
		}
		if hdS2MSel > 0 {
			s2mIn = 0
		}
		if a.style == core.StyleLocal {
			// The local monitor reads every master port: input activity is
			// measured, not approximated from the muxed outputs.
			m2sIn = a.localM2SInputHD(l)
			s2mIn = a.localS2MInputHD(l)
		}

		eDEC = a.dec.Energy(hdDec)
		eM2S = a.m2s.Energy(m2sIn, hdM2SSel, m2sOut) + a.m2s.ClockEnergy()
		eS2M = a.s2m.Energy(s2mIn, hdS2MSel, s2mOut) + a.s2m.ClockEnergy()
		eARB = a.arb.Energy(hdReq, hdGrant, ci.Handover, state == power.IdleHO)
	}

	a.prevDecIn = decIn
	a.prevAddr = ci.Addr
	a.prevCtrl = ctrl
	a.prevWdata = ci.Wdata
	a.prevRdata = ci.Rdata
	a.prevS2MCtl = s2mCtl
	a.prevM2SSel = m2sSel
	a.prevS2MSel = s2mSel
	a.prevReq = ci.Requests
	a.prevGrant = grant
	a.havePrev = true

	total := eDEC + eM2S + eS2M + eARB
	a.bd.Add(power.BlockDEC, eDEC)
	a.bd.Add(power.BlockM2S, eM2S)
	a.bd.Add(power.BlockS2M, eS2M)
	a.bd.Add(power.BlockARB, eARB)

	a.fsm.Step(state, total)

	if a.tTotal != nil {
		t := ci.Time.Seconds()
		a.tTotal.Deposit(t, total)
		a.tM2S.Deposit(t, eM2S)
		a.tDEC.Deposit(t, eDEC)
		a.tARB.Deposit(t, eARB)
		a.tS2M.Deposit(t, eS2M)
	}
}

// localHD updates one slot of the per-port history and returns the
// Hamming distance to the previous sample.
func (a *laneAnalyzer) localHD(slot int, v uint64) int {
	hd := 0
	if !a.localFirst {
		hd = stats.Hamming(a.localPrev[slot], v)
	}
	a.localPrev[slot] = v
	return hd
}

// localM2SInputHD measures per-master input activity (local style).
func (a *laneAnalyzer) localM2SInputHD(l *laneState) int {
	hd := 0
	for m := range l.mp {
		p := &l.mp[m]
		base := 3 * m
		hd += a.localHD(base, uint64(p.addr))
		hd += a.localHD(base+1, uint64(p.wdata))
		hd += a.localHD(base+2, uint64(p.trans))
	}
	return hd
}

// localS2MInputHD measures per-slave output activity (local style).
func (a *laneAnalyzer) localS2MInputHD(l *laneState) int {
	hd := 0
	off := 3 * len(l.mp)
	for s := range l.sp {
		p := &l.sp[s]
		base := off + 2*s
		hd += a.localHD(base, uint64(p.rdata))
		hd += a.localHD(base+1, uint64(p.resp))
	}
	return hd
}

// classify maps a settled bus cycle to one of the paper's four activity
// modes (core.Analyzer.classify).
func (a *laneAnalyzer) classify(ci ahb.CycleInfo) power.State {
	if ci.Trans == ahb.TransNonseq || ci.Trans == ahb.TransSeq {
		a.lastActiveMaster = ci.Master
		a.haveActive = true
		if ci.Write {
			return power.Write
		}
		return power.Read
	}
	if !a.haveActive {
		return power.Idle
	}
	released := ci.Requests&(1<<a.lastActiveMaster) == 0
	if ci.Handover || released || ci.Master != a.lastActiveMaster {
		return power.IdleHO
	}
	return power.Idle
}
