package lane_test

import (
	"context"
	"math"
	"reflect"
	"testing"

	"ahbpower/internal/amba/ahb"
	"ahbpower/internal/core"
	"ahbpower/internal/engine"
	"ahbpower/internal/exec"
	"ahbpower/internal/lane"
	"ahbpower/internal/topo"
	"ahbpower/internal/workload"
)

// runEvent executes the scenario on the event backend (the reference
// semantics) and returns its result.
func runEvent(t *testing.T, sc engine.Scenario) engine.Result {
	t.Helper()
	sc.Backend = exec.NameEvent
	res := engine.RunOne(context.Background(), sc)
	if res.Err != nil {
		t.Fatalf("event backend: %v", res.Err)
	}
	return res
}

// specOf converts a scenario into its lane spec.
func specOf(sc engine.Scenario) lane.Spec {
	return lane.Spec{
		Name:         sc.Name,
		Topo:         sc.Topology(),
		Analyzer:     sc.Analyzer,
		Workloads:    sc.Workloads,
		Cycles:       sc.Cycles,
		SkipAnalyzer: sc.SkipAnalyzer,
	}
}

// assertOutcome compares a lane outcome against the event result
// bit-for-bit: beats, monitor counters, violations, instruction stats and
// the full report including Float64bits-identical energies.
func assertOutcome(t *testing.T, ev engine.Result, o lane.Outcome) {
	t.Helper()
	if o.Err != nil {
		t.Fatalf("lane outcome error: %v", o.Err)
	}
	if o.Cycles != ev.Scenario.Cycles {
		t.Errorf("Cycles: lane=%d want=%d", o.Cycles, ev.Scenario.Cycles)
	}
	if o.Beats != ev.Beats {
		t.Errorf("Beats: lane=%d event=%d", o.Beats, ev.Beats)
	}
	if !reflect.DeepEqual(o.Counts, ev.Counts) {
		t.Errorf("Counts diverge:\nlane:  %v\nevent: %v", o.Counts, ev.Counts)
	}
	if !reflect.DeepEqual(o.Violations, ev.Violations) {
		t.Errorf("Violations diverge:\nlane:  %v\nevent: %v", o.Violations, ev.Violations)
	}
	if !reflect.DeepEqual(o.Stats, ev.Stats) {
		t.Errorf("instruction Stats diverge:\nlane:  %+v\nevent: %+v", o.Stats, ev.Stats)
	}
	if (o.Report == nil) != (ev.Report == nil) {
		t.Fatalf("Report presence: lane=%v event=%v", o.Report != nil, ev.Report != nil)
	}
	if o.Report == nil {
		return
	}
	if lb, eb := math.Float64bits(o.Report.TotalEnergy), math.Float64bits(ev.Report.TotalEnergy); lb != eb {
		t.Errorf("TotalEnergy bits: lane=%#x (%g) event=%#x (%g)",
			lb, o.Report.TotalEnergy, eb, ev.Report.TotalEnergy)
	}
	if !reflect.DeepEqual(o.Report, ev.Report) {
		t.Errorf("Report diverges:\nlane:  %+v\nevent: %+v", o.Report, ev.Report)
	}
}

// runLaneSingle packs one scenario alone and returns its outcome.
func runLaneSingle(t *testing.T, sc engine.Scenario) lane.Outcome {
	t.Helper()
	p, err := lane.BuildPack([]lane.Spec{specOf(sc)})
	if err != nil {
		t.Fatalf("BuildPack: %v", err)
	}
	return p.Run(context.Background())[0]
}

// TestLaneGoldenEquivalence pairs single-lane packs against the event
// backend across bus shapes, policies, analyzer styles, wait states and
// data widths.
func TestLaneGoldenEquivalence(t *testing.T) {
	type variant struct {
		name string
		sys  core.SystemConfig
		an   core.AnalyzerConfig
	}
	base := core.PaperSystem()
	variants := []variant{
		{name: "paper_sticky_global", sys: base,
			an: core.AnalyzerConfig{Style: core.StyleGlobal, TraceWindow: 1e-7}},
		{name: "paper_sticky_local", sys: base,
			an: core.AnalyzerConfig{Style: core.StyleLocal, TraceWindow: 1e-7}},
	}
	fixed := base
	fixed.Policy = ahb.PolicyFixed
	variants = append(variants, variant{name: "fixed_global", sys: fixed,
		an: core.AnalyzerConfig{Style: core.StyleGlobal}})
	rr := base
	rr.Policy = ahb.PolicyRoundRobin
	rr.NumActiveMasters = 3
	variants = append(variants, variant{name: "rr_3masters", sys: rr,
		an: core.AnalyzerConfig{Style: core.StyleGlobal}})
	waits := base
	waits.SlaveWaits = 2
	variants = append(variants, variant{name: "waits2_local", sys: waits,
		an: core.AnalyzerConfig{Style: core.StyleLocal}})
	wide := base
	wide.DataWidth = 16
	wide.NumSlaves = 4
	variants = append(variants, variant{name: "w16_4slaves", sys: wide,
		an: core.AnalyzerConfig{Style: core.StyleGlobal}})
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			sc := engine.Scenario{Name: v.name, System: v.sys, Analyzer: v.an, Cycles: 3000}
			assertOutcome(t, runEvent(t, sc), runLaneSingle(t, sc))
		})
	}
}

// TestLaneGoldenWorkloads pairs the backends across workload patterns and
// explicit per-master traffic.
func TestLaneGoldenWorkloads(t *testing.T) {
	for _, p := range []workload.Pattern{workload.PatternRandom, workload.PatternLowActivity, workload.PatternCounter} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			t.Parallel()
			sc := engine.Scenario{
				Name:     "wl",
				System:   core.PaperSystem(),
				Analyzer: core.AnalyzerConfig{Style: core.StyleGlobal},
				Workloads: []workload.Config{{
					Seed: 17, NumSequences: 40, PairsMin: 1, PairsMax: 6,
					IdleMin: 0, IdleMax: 8, AddrSize: 0x3000,
					Pattern: p, BurstBeats: 4,
				}},
				Cycles: 2500,
			}
			assertOutcome(t, runEvent(t, sc), runLaneSingle(t, sc))
		})
	}
}

// TestLaneGoldenTopology pairs the backends on an explicit declarative
// topology with non-uniform regions (a non-power-of-two range exercises
// the decoder's general comparator path) and mixed wait states.
func TestLaneGoldenTopology(t *testing.T) {
	tp := &topo.Topology{
		Name:   "mixed-map",
		Policy: "rr",
		Masters: []topo.Master{
			{Name: "cpu"}, {Name: "dma"}, {Name: "park", Default: true},
		},
		Slaves: []topo.Slave{
			{Name: "rom", Regions: []topo.AddrRange{{Start: 0x0000, Size: 0x0800}}},
			{Name: "ram", Waits: 1, Regions: []topo.AddrRange{
				{Start: 0x0800, Size: 0x0400},
				{Start: 0x2000, Size: 0x1000},
			}},
			{Name: "io", Waits: 3, Regions: []topo.AddrRange{{Start: 0x1000, Size: 0x0c00}}},
		},
	}
	sc := engine.Scenario{
		Name:     "mixed-map",
		Topo:     tp,
		Analyzer: core.AnalyzerConfig{Style: core.StyleLocal},
		Workloads: []workload.Config{
			{Seed: 3, NumSequences: 30, PairsMin: 1, PairsMax: 5, IdleMax: 6, AddrBase: 0, AddrSize: 0x3000},
			{Seed: 4, NumSequences: 30, PairsMin: 1, PairsMax: 5, IdleMax: 6, AddrBase: 0, AddrSize: 0x3000},
		},
		Cycles: 2000,
	}
	assertOutcome(t, runEvent(t, sc), runLaneSingle(t, sc))
}

// TestLaneSkipAnalyzer checks the uninstrumented path: no report, but
// functional results still match the event backend.
func TestLaneSkipAnalyzer(t *testing.T) {
	sc := engine.Scenario{Name: "bare", System: core.PaperSystem(), Cycles: 1500, SkipAnalyzer: true}
	o := runLaneSingle(t, sc)
	assertOutcome(t, runEvent(t, sc), o)
	if o.Report != nil || o.Stats != nil {
		t.Fatalf("SkipAnalyzer outcome carries analysis: report=%v stats=%v", o.Report, o.Stats)
	}
}

// TestLaneFullPack packs 64 scenarios differing in workload seed and run
// length into one execution and checks every lane against its own event
// run — the scatter contract at full occupancy with staggered retirement.
func TestLaneFullPack(t *testing.T) {
	specs := make([]lane.Spec, lane.MaxLanes)
	evs := make([]engine.Result, lane.MaxLanes)
	for i := range specs {
		sc := engine.Scenario{
			Name:     "lane",
			System:   core.PaperSystem(),
			Analyzer: core.AnalyzerConfig{Style: core.StyleGlobal},
			Workloads: []workload.Config{{
				Seed: int64(100 + i), NumSequences: 20, PairsMin: 1, PairsMax: 4,
				IdleMax: 5, AddrSize: 0x3000,
			}},
			Cycles: uint64(600 + 13*i), // staggered retirement
		}
		specs[i] = specOf(sc)
		evs[i] = runEvent(t, sc)
	}
	p, err := lane.BuildPack(specs)
	if err != nil {
		t.Fatalf("BuildPack: %v", err)
	}
	if p.Lanes() != lane.MaxLanes {
		t.Fatalf("Lanes() = %d, want %d", p.Lanes(), lane.MaxLanes)
	}
	outs := p.Run(context.Background())
	for i := range outs {
		i := i
		if !t.Run("lane", func(t *testing.T) { assertOutcome(t, evs[i], outs[i]) }) {
			break // one diverging lane is enough output
		}
	}
}

// TestPackKeyMismatch checks that structurally different scenarios cannot
// share a pack.
func TestPackKeyMismatch(t *testing.T) {
	a := engine.Scenario{Name: "a", System: core.PaperSystem(), Cycles: 100}
	bSys := core.PaperSystem()
	bSys.NumSlaves = 4
	b := engine.Scenario{Name: "b", System: bSys, Cycles: 100}
	if _, err := lane.BuildPack([]lane.Spec{specOf(a), specOf(b)}); err == nil {
		t.Fatal("BuildPack accepted mixed structural keys")
	}
}

// TestPackCancellation cancels a pack mid-run: lanes already retired keep
// their results, unfinished lanes surface the context error with their
// progress.
func TestPackCancellation(t *testing.T) {
	short := engine.Scenario{Name: "short", System: core.PaperSystem(),
		Analyzer:  core.AnalyzerConfig{Style: core.StyleGlobal},
		Workloads: []workload.Config{{Seed: 1, NumSequences: 10, PairsMin: 1, PairsMax: 3, AddrSize: 0x3000}},
		Cycles:    100}
	long := short
	long.Name = "long"
	long.Cycles = 1 << 40 // would run effectively forever
	p, err := lane.BuildPack([]lane.Spec{specOf(short), specOf(long)})
	if err != nil {
		t.Fatalf("BuildPack: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() { cancel() }()
	outs := p.Run(ctx)
	// The cancellation goroutine may fire at any chunk boundary; the short
	// lane either completed or was cancelled, but the long lane can never
	// complete.
	if outs[1].Err == nil {
		t.Fatal("long lane completed despite cancellation")
	}
	if outs[0].Err == nil {
		ev := runEvent(t, short)
		assertOutcome(t, ev, outs[0])
	}
}

// TestLaneTraitsUnsupported enumerates the gating reasons.
func TestLaneTraitsUnsupported(t *testing.T) {
	cases := []struct {
		name   string
		traits lane.Traits
		want   string
	}{
		{"ok", lane.Traits{ClockPeriod: 10000}, ""},
		{"setup", lane.Traits{HasSetup: true, ClockPeriod: 10000}, "custom Setup hook"},
		{"keep", lane.Traits{KeepSystem: true, ClockPeriod: 10000}, "KeepSystem retains the kernel-backed system"},
		{"timeout", lane.Traits{HasTimeout: true, ClockPeriod: 10000}, "per-scenario timeout"},
		{"faults", lane.Traits{HasFaults: true, ClockPeriod: 10000}, "active fault-injection plan"},
		{"dpm", lane.Traits{HasDPM: true, ClockPeriod: 10000}, "DPM estimator attached"},
		{"private", lane.Traits{DeltaInstrumented: true, ClockPeriod: 10000}, "delta-level (private-style) instrumentation"},
		{"trace", lane.Traits{HasTraceRecorder: true, ClockPeriod: 10000}, "streaming trace recorder attached"},
		{"odd", lane.Traits{ClockPeriod: 10001}, "odd clock period 10001"},
	}
	for _, tc := range cases {
		if got := tc.traits.Unsupported(); got != tc.want {
			t.Errorf("%s: Unsupported() = %q, want %q", tc.name, got, tc.want)
		}
	}
}
