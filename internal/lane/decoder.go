package lane

import (
	"fmt"
	"math/bits"

	"ahbpower/internal/amba/ahb"
	"ahbpower/internal/gate"
)

// The packed decoder is the lane backend's shared combinational block: the
// bus address decoder (first matching region wins, unmapped selects the
// internal default slave) lowered to a gate netlist over 32 address
// bitplanes and evaluated across all 64 lanes at once by gate.PackedEval —
// bit i of input plane b is lane i's HADDR bit b, and bit i of a slave's
// output plane is lane i's HSEL line. Per cycle it only re-settles when
// some active lane's address actually changed, updating the bitplanes
// incrementally from the per-lane address diffs.

// sym is a symbolic logic value during netlist construction: a known
// constant or a driven net. Constant folding keeps the region comparators
// from emitting degenerate gates (the builder rejects 1-input variadic
// gates, and constants have no net to wire).
type sym struct {
	isConst bool
	c       bool
	id      gate.NetID
}

func symConst(c bool) sym      { return sym{isConst: true, c: c} }
func symNet(id gate.NetID) sym { return sym{id: id} }

// decBuilder wraps the netlist under construction with folding helpers
// and a NOT-net cache (address-bit complements are shared across every
// region comparator).
type decBuilder struct {
	nl    *gate.Netlist
	seq   int
	notOf map[gate.NetID]gate.NetID
}

func (b *decBuilder) fresh(prefix string) string {
	b.seq++
	return fmt.Sprintf("%s%d", prefix, b.seq)
}

func (b *decBuilder) not(x sym) sym {
	if x.isConst {
		return symConst(!x.c)
	}
	if id, ok := b.notOf[x.id]; ok {
		return symNet(id)
	}
	id := b.nl.MustGate(gate.Not, b.fresh("n"), x.id)
	b.notOf[x.id] = id
	return symNet(id)
}

func (b *decBuilder) and(x, y sym) sym {
	if x.isConst {
		if !x.c {
			return symConst(false)
		}
		return y
	}
	if y.isConst {
		if !y.c {
			return symConst(false)
		}
		return x
	}
	return symNet(b.nl.MustGate(gate.And, b.fresh("a"), x.id, y.id))
}

func (b *decBuilder) or(x, y sym) sym {
	if x.isConst {
		if x.c {
			return symConst(true)
		}
		return y
	}
	if y.isConst {
		if y.c {
			return symConst(true)
		}
		return x
	}
	return symNet(b.nl.MustGate(gate.Or, b.fresh("o"), x.id, y.id))
}

// Slave-plane classification after construction.
const (
	decConstFalse = iota
	decConstTrue
	decNet
)

type decPlane struct {
	kind int
	id   gate.NetID
}

// packedDecoder evaluates the address decoder for every lane of a pack.
type packedDecoder struct {
	eval   *gate.PackedEval
	planes []decPlane
	ain    [32]gate.NetID

	// Incremental input state: per-lane last-decoded address, per-bit
	// input plane words, and which lanes have been decoded at least once.
	addrs      [MaxLanes]uint32
	planeWords [32]uint64
	seen       uint64

	// outWords caches each net plane's output word after a settle.
	outWords []uint64

	// constSel is the universal selection when every plane folded to a
	// constant (eval == nil): the region map decodes every address the
	// same way.
	constSel int
}

// newPackedDecoder lowers the region list to the packed netlist. The
// region list is the bus decoder's: slaves in port order, each slave's
// regions start-sorted, first match wins.
func newPackedDecoder(regions []ahb.Region) (*packedDecoder, error) {
	d := &packedDecoder{constSel: -2}
	nSlaves := 0
	for _, r := range regions {
		if r.Slave >= nSlaves {
			nSlaves = r.Slave + 1
		}
	}
	b := &decBuilder{nl: gate.NewNetlist("lane-decoder"), notOf: map[gate.NetID]gate.NetID{}}
	abit := make([]sym, 32)
	for i := 0; i < 32; i++ {
		d.ain[i] = b.nl.AddInput(fmt.Sprintf("a%d", i))
		abit[i] = symNet(d.ain[i])
	}

	// ge returns the symbolic predicate HADDR >= k, MSB-first: at each bit
	// the address is greater iff it is 1 where k is 0 with all higher bits
	// equal, and equal overall iff every bit matches.
	ge := func(k uint32) sym {
		if k == 0 {
			return symConst(true)
		}
		g, eq := symConst(false), symConst(true)
		for i := 31; i >= 0; i-- {
			bitSet := k&(1<<uint(i)) != 0
			if !bitSet {
				g = b.or(g, b.and(eq, abit[i]))
			}
			if bitSet {
				eq = b.and(eq, abit[i])
			} else {
				eq = b.and(eq, b.not(abit[i]))
			}
		}
		return b.or(g, eq)
	}

	// inside returns the symbolic predicate HADDR in [Start, Start+Size).
	inside := func(r ahb.Region) sym {
		if r.Size == 0 {
			return symConst(false)
		}
		if r.Start%r.Size == 0 && r.Size&(r.Size-1) == 0 {
			// Aligned power-of-two region: match the tag bits directly.
			k := bits.TrailingZeros32(r.Size)
			m := symConst(true)
			for i := 31; i >= k; i-- {
				if r.Start&(1<<uint(i)) != 0 {
					m = b.and(m, abit[i])
				} else {
					m = b.and(m, b.not(abit[i]))
				}
			}
			return m
		}
		in := ge(r.Start)
		if end := uint64(r.Start) + uint64(r.Size); end <= uint64(^uint32(0)) {
			in = b.and(in, b.not(ge(uint32(end))))
		}
		return in
	}

	// First match wins: region r matches iff its range contains the
	// address and no earlier region's does. The matched planes are
	// therefore mutually exclusive, and each slave's HSEL plane is the OR
	// of its regions' matched planes.
	sel := make([]sym, nSlaves)
	for s := range sel {
		sel[s] = symConst(false)
	}
	prior := symConst(false)
	for _, r := range regions {
		in := inside(r)
		matched := b.and(in, b.not(prior))
		prior = b.or(prior, in)
		sel[r.Slave] = b.or(sel[r.Slave], matched)
	}

	d.planes = make([]decPlane, nSlaves)
	anyNet := false
	for s, v := range sel {
		switch {
		case v.isConst && v.c:
			d.planes[s] = decPlane{kind: decConstTrue}
			if d.constSel == -2 {
				d.constSel = s
			}
		case v.isConst:
			d.planes[s] = decPlane{kind: decConstFalse}
		default:
			d.planes[s] = decPlane{kind: decNet, id: v.id}
			b.nl.MarkOutput(v.id)
			anyNet = true
		}
	}
	if !anyNet {
		// Every plane folded: the decode is address-independent.
		return d, nil
	}
	// The tech only scales the (unused) energy accounting; logic values
	// are what the lanes consume.
	eval, err := gate.NewPackedEval(b.nl, gate.Tech{VDD: 1, CPD: 1e-15, COut: 1e-15})
	if err != nil {
		return nil, err
	}
	d.eval = eval
	d.outWords = make([]uint64, nSlaves)
	return d, nil
}

// update re-decodes SelIdx for every active lane whose settled HADDR
// changed since the last call (every active lane on first contact). The
// bitplanes are maintained incrementally: only the planes of address bits
// that actually differ are rewritten, and when no active lane's address
// moved the netlist is not re-settled at all.
func (d *packedDecoder) update(lanes []*laneState, active uint64) {
	if d.eval == nil {
		for m := active &^ d.seen; m != 0; m &= m - 1 {
			lanes[trailing(m)].selIdx = d.constSel
		}
		d.seen |= active
		return
	}
	var changed uint64
	var touched uint32
	for m := active; m != 0; m &= m - 1 {
		i := trailing(m)
		laneBit := uint64(1) << uint(i)
		a := lanes[i].hAddr
		if d.seen&laneBit != 0 && a == d.addrs[i] {
			continue
		}
		for diff := a ^ d.addrs[i]; diff != 0; diff &= diff - 1 {
			bb := bits.TrailingZeros32(diff)
			d.planeWords[bb] ^= laneBit
			touched |= 1 << uint(bb)
		}
		d.addrs[i] = a
		d.seen |= laneBit
		changed |= laneBit
	}
	if changed == 0 {
		return
	}
	for pt := touched; pt != 0; pt &= pt - 1 {
		bb := bits.TrailingZeros32(pt)
		d.eval.SetInput(d.ain[bb], d.planeWords[bb])
	}
	d.eval.Settle()
	for s := range d.planes {
		if d.planes[s].kind == decNet {
			d.outWords[s] = d.eval.Output(d.planes[s].id)
		}
	}
	for m := changed; m != 0; m &= m - 1 {
		i := trailing(m)
		laneBit := uint64(1) << uint(i)
		selIdx := -2
		for s := range d.planes {
			p := d.planes[s]
			if p.kind == decConstTrue || (p.kind == decNet && d.outWords[s]&laneBit != 0) {
				selIdx = s
				break
			}
		}
		lanes[i].selIdx = selIdx
	}
}
