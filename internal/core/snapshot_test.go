package core_test

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"ahbpower/internal/amba/ahb"
	"ahbpower/internal/core"
	"ahbpower/internal/fault"
)

// snapFP is the bit-exact fingerprint compared between an uninterrupted
// run and a checkpoint+resume run.
type snapFP struct {
	totalBits  uint64
	blockBits  [4]uint64
	counts     map[string]uint64
	beats      uint64
	cycles     uint64
	violations int
	faults     fault.Stats
}

type snapRig struct {
	sys *core.System
	an  *core.Analyzer
	inj *fault.Injector
}

func buildSnapRig(t *testing.T, style core.Style, policy ahb.ArbPolicy, plan *fault.Plan, cycles uint64) *snapRig {
	t.Helper()
	cfg := core.PaperSystem()
	cfg.Policy = policy
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if err := sys.LoadPaperWorkload(cycles); err != nil {
		t.Fatalf("LoadPaperWorkload: %v", err)
	}
	an, err := core.Attach(sys, core.AnalyzerConfig{Style: style})
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	r := &snapRig{sys: sys, an: an}
	if plan.Active() {
		inj, err := fault.Attach(sys.Bus, sys.Masters, plan)
		if err != nil {
			t.Fatalf("fault.Attach: %v", err)
		}
		r.inj = inj
		sys.AddSnapshotter("faults", inj)
	}
	sys.AddSnapshotter("analyzer", an)
	return r
}

// step returns the cycle stepper for the named backend ("event" or
// "compiled"); for compiled it builds the flat stepper, which must
// happen after any restore.
func (r *snapRig) step(t *testing.T, backend string) func(uint64) error {
	t.Helper()
	if backend == "compiled" {
		flat, err := r.sys.Bus.NewFlat()
		if err != nil {
			t.Fatalf("NewFlat: %v", err)
		}
		return flat.RunCycles
	}
	return func(c uint64) error { return r.sys.K.RunCycles(r.sys.Bus.Clk, c) }
}

func (r *snapRig) fingerprint() snapFP {
	fp := snapFP{
		totalBits:  math.Float64bits(r.an.FSM().TotalEnergy()),
		counts:     r.sys.Monitor.Counts(),
		cycles:     r.sys.Bus.Cycles(),
		violations: len(r.sys.Monitor.Errors()),
	}
	bd := r.an.Breakdown()
	fp.blockBits[0] = math.Float64bits(bd.Energy(0))
	fp.blockBits[1] = math.Float64bits(bd.Energy(1))
	fp.blockBits[2] = math.Float64bits(bd.Energy(2))
	fp.blockBits[3] = math.Float64bits(bd.Energy(3))
	for _, m := range r.sys.Masters {
		fp.beats += m.Stats().Beats
	}
	if r.inj != nil {
		fp.faults = r.inj.Stats()
	}
	return fp
}

// TestSnapshotResumeEquivalence is the golden suite: for every
// style x policy x fault-plan combination, a run checkpointed at cycle N
// and resumed on every backend pairing must be Float64bits-identical to
// the uninterrupted run.
func TestSnapshotResumeEquivalence(t *testing.T) {
	const cycles, ckptAt = 3000, 1200
	styles := []core.Style{core.StyleGlobal, core.StyleLocal, core.StylePrivate}
	policies := []ahb.ArbPolicy{ahb.PolicySticky, ahb.PolicyRoundRobin}
	plans := []*fault.Plan{nil, fault.RandomPlan(7), fault.RandomPlan(20260807)}

	for _, style := range styles {
		for _, policy := range policies {
			for pi, plan := range plans {
				name := fmt.Sprintf("%s/%s/plan%d", style, policy, pi)
				t.Run(name, func(t *testing.T) {
					backends := []string{"event", "compiled"}
					if style == core.StylePrivate {
						// Private-style delta instrumentation is event-only,
						// matching the exec traits gate.
						backends = []string{"event"}
					}
					// Uninterrupted control run per backend.
					control := map[string]snapFP{}
					for _, be := range backends {
						rig := buildSnapRig(t, style, policy, plan, cycles)
						if err := rig.sys.RunContextStepped(nil, cycles, rig.step(t, be)); err != nil {
							t.Fatalf("control %s: %v", be, err)
						}
						control[be] = rig.fingerprint()
					}
					for _, capBE := range backends {
						for _, resBE := range backends {
							// Capture at cycle ckptAt on capBE.
							rig := buildSnapRig(t, style, policy, plan, cycles)
							if err := rig.sys.RunContextStepped(nil, ckptAt, rig.step(t, capBE)); err != nil {
								t.Fatalf("prefix on %s: %v", capBE, err)
							}
							sn, err := rig.sys.CaptureSnapshot()
							if err != nil {
								t.Fatalf("capture on %s: %v", capBE, err)
							}
							if sn.Cycle != ckptAt {
								t.Fatalf("snapshot at cycle %d, want %d", sn.Cycle, ckptAt)
							}
							blob, err := sn.Encode()
							if err != nil {
								t.Fatalf("encode: %v", err)
							}
							dec, err := core.DecodeSnapshot(blob)
							if err != nil {
								t.Fatalf("decode: %v", err)
							}
							// Resume on resBE in a fresh twin.
							twin := buildSnapRig(t, style, policy, plan, cycles)
							if err := twin.sys.RestoreSnapshot(dec); err != nil {
								t.Fatalf("restore: %v", err)
							}
							if err := twin.sys.RunContextStepped(nil, cycles-ckptAt, twin.step(t, resBE)); err != nil {
								t.Fatalf("resume on %s: %v", resBE, err)
							}
							got, want := twin.fingerprint(), control[resBE]
							if !reflect.DeepEqual(got, want) {
								t.Errorf("capture=%s resume=%s: resumed run diverged:\n got %+v\nwant %+v", capBE, resBE, got, want)
							}
						}
					}
				})
			}
		}
	}
}

// TestSnapshotCheckpointHook proves the RunContextStepped hook fires at
// chunk boundaries and that resuming from the last hook-captured
// snapshot reproduces the uninterrupted run.
func TestSnapshotCheckpointHook(t *testing.T) {
	const cycles = 4000
	control := buildSnapRig(t, core.StyleGlobal, ahb.PolicySticky, nil, cycles)
	if err := control.sys.Run(cycles); err != nil {
		t.Fatalf("control: %v", err)
	}

	rig := buildSnapRig(t, core.StyleGlobal, ahb.PolicySticky, nil, cycles)
	var snaps []*core.Snapshot
	rig.sys.SetCheckpointHook(1024, func(done uint64) error {
		sn, err := rig.sys.CaptureSnapshot()
		if err != nil {
			return err
		}
		if sn.Cycle != done {
			return fmt.Errorf("hook at done=%d captured cycle %d", done, sn.Cycle)
		}
		snaps = append(snaps, sn)
		return nil
	})
	if err := rig.sys.Run(cycles); err != nil {
		t.Fatalf("checkpointed run: %v", err)
	}
	if len(snaps) == 0 {
		t.Fatal("checkpoint hook never fired")
	}
	last := snaps[len(snaps)-1]
	if last.Cycle == 0 || last.Cycle >= cycles {
		t.Fatalf("last checkpoint at cycle %d, want inside (0,%d)", last.Cycle, cycles)
	}
	// The checkpointed run itself must match the control bit-exactly.
	if got, want := rig.fingerprint(), control.fingerprint(); !reflect.DeepEqual(got, want) {
		t.Errorf("checkpointed run diverged from control:\n got %+v\nwant %+v", got, want)
	}

	twin := buildSnapRig(t, core.StyleGlobal, ahb.PolicySticky, nil, cycles)
	if err := twin.sys.RestoreSnapshot(last); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if err := twin.sys.Run(cycles - last.Cycle); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if got, want := twin.fingerprint(), control.fingerprint(); !reflect.DeepEqual(got, want) {
		t.Errorf("hook-resumed run diverged from control:\n got %+v\nwant %+v", got, want)
	}
}
