package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"ahbpower/internal/metrics"
	"ahbpower/internal/power"
)

// runTraced runs the paper workload with a trace recorder attached and
// returns the report and the trace.
func runTraced(t *testing.T, style Style, cycles uint64, window float64) (*Report, *metrics.Trace) {
	t.Helper()
	sys, err := NewSystem(PaperSystem())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadPaperWorkload(cycles); err != nil {
		t.Fatal(err)
	}
	tr, err := metrics.NewTrace(metrics.TraceConfig{
		Window: window, PerBlock: true, PerInstruction: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	an, err := Attach(sys, AnalyzerConfig{Style: style, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(cycles); err != nil {
		t.Fatal(err)
	}
	return an.Report(), tr
}

// TestTraceConservation is the golden conservation check: the streaming
// trace and the analyzer report consume the identical per-cycle energy
// stream, so the trace total must equal the report total EXACTLY — the
// same float addition path, not merely within tolerance — for all three
// integration styles.
func TestTraceConservation(t *testing.T) {
	const cycles = 4000
	for _, style := range []Style{StyleGlobal, StyleLocal, StylePrivate} {
		t.Run(style.String(), func(t *testing.T) {
			r, tr := runTraced(t, style, cycles, 100e-9)

			if tr.Energy() != r.TotalEnergy {
				t.Errorf("trace energy %.17g J != report energy %.17g J (must be bit-identical)",
					tr.Energy(), r.TotalEnergy)
			}
			if tr.Cycles() != r.Cycles {
				t.Errorf("trace cycles=%d, report cycles=%d", tr.Cycles(), r.Cycles)
			}

			wins := tr.Windows()
			if len(wins) == 0 {
				t.Fatal("trace recorded no windows")
			}
			// CumEnergy telescopes: the last window's running total is the
			// report total, again exactly.
			if last := wins[len(wins)-1].CumEnergy; last != r.TotalEnergy {
				t.Errorf("last window CumEnergy %.17g != report %.17g", last, r.TotalEnergy)
			}
			// Re-summing window energies reorders the additions, so only a
			// tight relative tolerance can be asked of it.
			var sum float64
			for _, w := range wins {
				sum += w.Energy
			}
			if rel := math.Abs(sum-r.TotalEnergy) / r.TotalEnergy; rel > 1e-12 {
				t.Errorf("sum of window energies off by %.3g relative", rel)
			}

			// Per-block window sums must reproduce the report's Fig. 6
			// decomposition.
			for _, b := range power.Blocks() {
				var be float64
				for _, w := range wins {
					be += w.Block[b]
				}
				want := r.BlockEnergy[b.String()]
				if math.Abs(be-want) > 1e-12*math.Max(want, 1e-30)+1e-30 {
					t.Errorf("block %s: trace %.17g J, report %.17g J", b, be, want)
				}
			}

			// Per-instruction window totals must reproduce Table 1.
			totals := map[string]float64{}
			for _, w := range wins {
				for name, e := range w.Instr {
					totals[name] += e
				}
			}
			for _, row := range r.Table {
				got := totals[row.Instruction]
				if math.Abs(got-row.TotalEnergy) > 1e-12*math.Max(row.TotalEnergy, 1e-30)+1e-30 {
					t.Errorf("instruction %s: trace %.17g J, table %.17g J",
						row.Instruction, got, row.TotalEnergy)
				}
			}
		})
	}
}

// TestTraceCoexistsWithLegacyTraceWindow checks the new streaming trace
// and the report's legacy windowed series can run side by side and agree.
func TestTraceCoexistsWithLegacyTraceWindow(t *testing.T) {
	const cycles, window = 2000, 100e-9
	sys, err := NewSystem(PaperSystem())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadPaperWorkload(cycles); err != nil {
		t.Fatal(err)
	}
	tr, err := metrics.NewTrace(metrics.TraceConfig{Window: window})
	if err != nil {
		t.Fatal(err)
	}
	an, err := Attach(sys, AnalyzerConfig{Style: StyleGlobal, TraceWindow: window, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(cycles); err != nil {
		t.Fatal(err)
	}
	r := an.Report()
	if r.TraceTotal == nil {
		t.Fatal("legacy TraceWindow series missing")
	}
	ps := tr.PowerSeries()
	if ps.Len() == 0 || r.TraceTotal.Len() == 0 {
		t.Fatal("empty power series")
	}
	// Both views of the same run must agree on mean power.
	if got, want := ps.MeanY(), r.TraceTotal.MeanY(); math.Abs(got-want) > 1e-9*math.Max(want, 1) {
		t.Errorf("streaming mean power %g, legacy mean power %g", got, want)
	}
}

// TestRunContextCancellation checks a single long run stops at a chunk
// boundary once the context is cancelled, keeps everything simulated so
// far, and stays resumable.
func TestRunContextCancellation(t *testing.T) {
	const cycles = 200000
	sys, err := NewSystem(PaperSystem())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadPaperWorkload(cycles); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	// Cancel from inside the simulation, a few hundred cycles in.
	sys.K.Schedule(300*sys.Cfg.ClockPeriod, func() { cancel() })

	err = sys.RunContext(ctx, cycles)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	reached := sys.Bus.Cycles()
	if reached == 0 || reached >= cycles/2 {
		t.Fatalf("cancelled run simulated %d of %d cycles", reached, cycles)
	}

	// The system must remain resumable: finish the remaining cycles and
	// match an uncancelled reference run cycle for cycle.
	if err := sys.RunContext(context.Background(), cycles-reached); err != nil {
		t.Fatal(err)
	}
	if got := sys.Bus.Cycles(); got != cycles {
		t.Errorf("resumed run reached %d cycles, want %d", got, cycles)
	}
}

// TestRunContextNilAndBackground checks the fast path: contexts that can
// never be cancelled must not chunk differently from a plain Run.
func TestRunContextChunkingIsInvisible(t *testing.T) {
	const cycles = 3000
	run := func(chunked bool) *Report {
		sys, err := NewSystem(PaperSystem())
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.LoadPaperWorkload(cycles); err != nil {
			t.Fatal(err)
		}
		an, err := Attach(sys, AnalyzerConfig{Style: StyleGlobal})
		if err != nil {
			t.Fatal(err)
		}
		if chunked {
			// A cancellable context forces the chunked path.
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			err = sys.RunContext(ctx, cycles)
		} else {
			err = sys.Run(cycles)
		}
		if err != nil {
			t.Fatal(err)
		}
		return an.Report()
	}
	plain, chunked := run(false), run(true)
	if plain.TotalEnergy != chunked.TotalEnergy || plain.Cycles != chunked.Cycles {
		t.Errorf("chunked run diverges: energy %.17g vs %.17g, cycles %d vs %d",
			chunked.TotalEnergy, plain.TotalEnergy, chunked.Cycles, plain.Cycles)
	}
}
