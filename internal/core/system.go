// Package core is the executable form of the paper's methodology: it
// builds the instrumented AHB system (the testbench of §5 — two masters, a
// simple default master and three slaves), runs system-level simulations,
// and produces the paper's outputs: the per-instruction energy table
// (Table 1), per-sub-block power traces (Figs. 3-5) and the sub-block
// contribution breakdown (Fig. 6).
package core

import (
	"context"
	"fmt"

	"ahbpower/internal/amba/ahb"
	"ahbpower/internal/power"
	"ahbpower/internal/sim"
	"ahbpower/internal/topo"
	"ahbpower/internal/workload"
)

// SystemConfig is the count-based legacy description of an AHB system:
// N equal slaves in equal contiguous regions, the default master on the
// last port. It remains fully supported as a thin canonicalization into
// the declarative topo.Topology (see Topology) — new code and new
// capabilities (explicit address maps, per-slave wait states, per-master
// workload hints) should describe systems as a topo.Topology and build
// through NewSystemTopo instead.
type SystemConfig struct {
	// NumActiveMasters is the number of workload-driven masters.
	NumActiveMasters int
	// WithDefaultMaster adds the paper's "simple default master": an extra
	// port that never requests and drives IDLE whenever granted.
	WithDefaultMaster bool
	NumSlaves         int
	SlaveWaits        int
	ClockPeriod       sim.Time
	DataWidth         int
	Policy            ahb.ArbPolicy
	SlaveRegionSize   uint32 // bytes per slave region (default 4 KB)
}

// PaperSystem returns the configuration of the paper's testbench: two
// masters, a simple default master and three slaves on a 100 MHz AHB.
func PaperSystem() SystemConfig {
	return SystemConfig{
		NumActiveMasters:  2,
		WithDefaultMaster: true,
		NumSlaves:         3,
		SlaveWaits:        0,
		ClockPeriod:       10 * sim.Nanosecond, // 100 MHz
		DataWidth:         32,
		Policy:            ahb.PolicySticky,
	}
}

// Topology expands the count-based configuration into its canonical
// declarative topology. This is the compatibility contract: NewSystem is
// NewSystemTopo over this expansion, so a count-based system and its
// explicit topology twin build byte-identical simulations and share one
// canonical cache key.
func (cfg SystemConfig) Topology() topo.Topology {
	return topo.Canonicalize(topo.Counts{
		Masters:       cfg.NumActiveMasters,
		DefaultMaster: cfg.WithDefaultMaster,
		Slaves:        cfg.NumSlaves,
		SlaveWaits:    cfg.SlaveWaits,
		ClockPeriod:   cfg.ClockPeriod,
		DataWidth:     cfg.DataWidth,
		Policy:        cfg.Policy,
		RegionSize:    cfg.SlaveRegionSize,
	})
}

// System is a fully built simulation: kernel, bus, masters and slaves.
type System struct {
	Cfg SystemConfig
	// Topo is the canonical topology the system was built from; for
	// count-based construction it is Cfg.Topology().
	Topo    topo.Topology
	K       *sim.Kernel
	Bus     *ahb.Bus
	Masters []*ahb.Master // active masters only
	Default *ahb.Master   // the default master, if configured
	Slaves  []*ahb.MemorySlave
	Monitor *ahb.Monitor

	// runEndHooks run after every Run/RunContext returns, even on error,
	// so batching consumers (the analyzer's sample stream) are flushed
	// before anyone reads their downstream state.
	runEndHooks []func()

	// snapshotters is the registered extra-component state captured into
	// system snapshots (see snapshot.go).
	snapshotters []namedSnapshotter

	// Checkpoint hook: when set, RunContextStepped always takes the
	// chunked path and invokes ckptFn at settled chunk boundaries at
	// least ckptEvery cycles apart.
	ckptEvery uint64
	ckptFn    func(done uint64) error
}

// onRunEnd registers a hook invoked after every Run/RunContext returns.
func (s *System) onRunEnd(fn func()) {
	s.runEndHooks = append(s.runEndHooks, fn)
}

// NewSystem builds a system from the count-based configuration by
// canonicalizing it into a topology and building that: each slave owns a
// contiguous region of SlaveRegionSize bytes starting at slave*size, and
// the default master (when configured) sits on the last port. Prefer
// NewSystemTopo for anything the counts cannot express.
func NewSystem(cfg SystemConfig) (*System, error) {
	sys, err := NewSystemTopo(cfg.Topology())
	if err != nil {
		return nil, err
	}
	if cfg.SlaveRegionSize == 0 {
		cfg.SlaveRegionSize = 0x1000
	}
	if cfg.ClockPeriod == 0 {
		cfg.ClockPeriod = sys.Topo.ClockPeriod()
	}
	if cfg.DataWidth == 0 {
		cfg.DataWidth = sys.Topo.DataWidth
	}
	sys.Cfg = cfg
	return sys, nil
}

// NewSystemTopo builds a system from a declarative topology. The
// topology is canonicalized and passed through the ERC compliance pass
// first; invalid topologies are rejected with a *topo.ValidationError
// carrying every rule violation, and a topology that validates cleanly
// is guaranteed to build. Masters are constructed in port order (actives
// first, then the default master), then slaves in port order — the
// process registration order the simulation schedule, and therefore
// byte-identical reproducibility, depends on.
func NewSystemTopo(t topo.Topology) (*System, error) {
	ct := t.Canonical()
	if err := topo.Check(ct); err != nil {
		return nil, err
	}
	policy, err := ct.ArbPolicy()
	if err != nil {
		return nil, err // unreachable: Check validated the policy
	}
	k := sim.NewKernel()
	bus, err := ahb.New(k, ahb.Config{
		NumMasters:    len(ct.Masters),
		NumSlaves:     len(ct.Slaves),
		Regions:       ct.Regions(),
		ClockPeriod:   ct.ClockPeriod(),
		DataWidth:     ct.DataWidth,
		Policy:        policy,
		DefaultMaster: ct.DefaultMasterIndex(),
	})
	if err != nil {
		return nil, err
	}
	sys := &System{
		Cfg: SystemConfig{
			NumActiveMasters:  ct.ActiveMasters(),
			WithDefaultMaster: ct.HasDefaultMaster(),
			NumSlaves:         len(ct.Slaves),
			SlaveWaits:        ct.MaxWaits(),
			ClockPeriod:       ct.ClockPeriod(),
			DataWidth:         ct.DataWidth,
			Policy:            policy,
			SlaveRegionSize:   0x1000,
		},
		Topo:    ct,
		K:       k,
		Bus:     bus,
		Monitor: ahb.NewMonitor(bus),
	}
	for i, m := range ct.Masters {
		if m.Default {
			continue
		}
		mm, err := ahb.NewMaster(bus, i)
		if err != nil {
			return nil, err
		}
		sys.Masters = append(sys.Masters, mm)
	}
	for i, m := range ct.Masters {
		if !m.Default {
			continue
		}
		dm, err := ahb.NewMaster(bus, i)
		if err != nil {
			return nil, err
		}
		sys.Default = dm // empty script: drives IDLE forever
	}
	for i, s := range ct.Slaves {
		sl, err := ahb.NewMemorySlave(bus, i, s.Waits)
		if err != nil {
			return nil, err
		}
		sys.Slaves = append(sys.Slaves, sl)
	}
	return sys, nil
}

// LoadPaperWorkload loads every active master with the paper's testbench
// traffic sized to roughly the requested total cycle count.
func (s *System) LoadPaperWorkload(targetCycles uint64) error {
	// Each sequence occupies ~50 transfer cycles plus tens of idle cycles;
	// size the sequence count so the masters stay busy for the whole run.
	perMaster := int(targetCycles)/100 + 2
	base, size := s.Topo.AddrSpan()
	for m, mm := range s.Masters {
		cfg := workload.PaperTestbench(m, perMaster)
		cfg.AddrBase, cfg.AddrSize = base, size
		seqs, err := workload.Generate(cfg)
		if err != nil {
			return err
		}
		mm.Enqueue(seqs...)
	}
	return nil
}

// LoadWorkload generates traffic from one configuration per active master
// (missing entries reuse the last configuration with a shifted seed).
func (s *System) LoadWorkload(cfgs ...workload.Config) error {
	if len(cfgs) == 0 {
		return fmt.Errorf("core: no workload configurations")
	}
	for m, mm := range s.Masters {
		cfg := cfgs[len(cfgs)-1]
		if m < len(cfgs) {
			cfg = cfgs[m]
		} else {
			cfg.Seed += int64(m) * 104729
		}
		seqs, err := workload.Generate(cfg)
		if err != nil {
			return err
		}
		mm.Enqueue(seqs...)
	}
	return nil
}

// runChunk bounds how many bus cycles RunContext simulates between
// cancellation checks. Small enough that Ctrl-C feels immediate, large
// enough that the per-chunk overhead (one context check and one kernel
// re-entry) is unmeasurable.
const runChunk = 512

// Run advances the simulation by n bus clock cycles.
func (s *System) Run(n uint64) error {
	return s.RunContext(context.Background(), n)
}

// RunContext advances the simulation by n bus clock cycles, checking ctx
// between slices of cycles so that even a single long run can be
// cancelled mid-flight. A chunked run is event-for-event identical to a
// single Run call: the kernel resumes exactly where the previous slice
// settled and settled-timestep observers fire at most once per distinct
// simulated time. On cancellation the context's error is returned and
// the system stays resumable from the cycle it reached.
func (s *System) RunContext(ctx context.Context, n uint64) error {
	return s.RunContextStepped(ctx, n, func(c uint64) error {
		return s.K.RunCycles(s.Bus.Clk, c)
	})
}

// RunContextStepped is the execution seam RunContext is built on: it
// advances the simulation by n bus cycles using step to execute each slice
// of cycles, with the same chunking, cancellation and end-of-run hook
// semantics regardless of which execution backend supplies step. Backends
// (internal/exec) plug their cycle steppers in here, so observers flush
// and cancellation boundaries are identical across backends — a
// prerequisite for bit-identical partial results under mid-run
// cancellation.
func (s *System) RunContextStepped(ctx context.Context, n uint64, step func(uint64) error) error {
	defer func() {
		for _, fn := range s.runEndHooks {
			fn()
		}
	}()
	if (ctx == nil || ctx.Done() == nil) && s.ckptFn == nil {
		return step(n)
	}
	var done, sinceCkpt uint64
	for n > 0 {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		c := uint64(runChunk)
		if n < c {
			c = n
		}
		if err := step(c); err != nil {
			return err
		}
		n -= c
		done += c
		sinceCkpt += c
		// Checkpoint at the settled boundary; the final boundary is skipped
		// (the finished result supersedes any checkpoint).
		if s.ckptFn != nil && sinceCkpt >= s.ckptEvery && n > 0 {
			if err := s.ckptFn(done); err != nil {
				return err
			}
			sinceCkpt = 0
		}
	}
	return nil
}

// Tech is re-exported for convenience.
type Tech = power.Tech
