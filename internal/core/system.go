// Package core is the executable form of the paper's methodology: it
// builds the instrumented AHB system (the testbench of §5 — two masters, a
// simple default master and three slaves), runs system-level simulations,
// and produces the paper's outputs: the per-instruction energy table
// (Table 1), per-sub-block power traces (Figs. 3-5) and the sub-block
// contribution breakdown (Fig. 6).
package core

import (
	"context"
	"fmt"

	"ahbpower/internal/amba/ahb"
	"ahbpower/internal/power"
	"ahbpower/internal/sim"
	"ahbpower/internal/workload"
)

// SystemConfig describes an AHB system under power analysis.
type SystemConfig struct {
	// NumActiveMasters is the number of workload-driven masters.
	NumActiveMasters int
	// WithDefaultMaster adds the paper's "simple default master": an extra
	// port that never requests and drives IDLE whenever granted.
	WithDefaultMaster bool
	NumSlaves         int
	SlaveWaits        int
	ClockPeriod       sim.Time
	DataWidth         int
	Policy            ahb.ArbPolicy
	SlaveRegionSize   uint32 // bytes per slave region (default 4 KB)
}

// PaperSystem returns the configuration of the paper's testbench: two
// masters, a simple default master and three slaves on a 100 MHz AHB.
func PaperSystem() SystemConfig {
	return SystemConfig{
		NumActiveMasters:  2,
		WithDefaultMaster: true,
		NumSlaves:         3,
		SlaveWaits:        0,
		ClockPeriod:       10 * sim.Nanosecond, // 100 MHz
		DataWidth:         32,
		Policy:            ahb.PolicySticky,
	}
}

// System is a fully built simulation: kernel, bus, masters and slaves.
type System struct {
	Cfg     SystemConfig
	K       *sim.Kernel
	Bus     *ahb.Bus
	Masters []*ahb.Master // active masters only
	Default *ahb.Master   // the default master, if configured
	Slaves  []*ahb.MemorySlave
	Monitor *ahb.Monitor

	// runEndHooks run after every Run/RunContext returns, even on error,
	// so batching consumers (the analyzer's sample stream) are flushed
	// before anyone reads their downstream state.
	runEndHooks []func()
}

// onRunEnd registers a hook invoked after every Run/RunContext returns.
func (s *System) onRunEnd(fn func()) {
	s.runEndHooks = append(s.runEndHooks, fn)
}

// NewSystem builds a system from the configuration. Each slave owns a
// contiguous region of SlaveRegionSize bytes starting at slave*size.
func NewSystem(cfg SystemConfig) (*System, error) {
	if cfg.NumActiveMasters < 1 {
		return nil, fmt.Errorf("core: NumActiveMasters=%d, want >=1", cfg.NumActiveMasters)
	}
	if cfg.SlaveRegionSize == 0 {
		cfg.SlaveRegionSize = 0x1000
	}
	nm := cfg.NumActiveMasters
	if cfg.WithDefaultMaster {
		nm++
	}
	var regions []ahb.Region
	for s := 0; s < cfg.NumSlaves; s++ {
		regions = append(regions, ahb.Region{
			Start: uint32(s) * cfg.SlaveRegionSize,
			Size:  cfg.SlaveRegionSize,
			Slave: s,
		})
	}
	k := sim.NewKernel()
	bus, err := ahb.New(k, ahb.Config{
		NumMasters:    nm,
		NumSlaves:     cfg.NumSlaves,
		Regions:       regions,
		ClockPeriod:   cfg.ClockPeriod,
		DataWidth:     cfg.DataWidth,
		Policy:        cfg.Policy,
		DefaultMaster: nm - 1, // the default master sits on the last port
	})
	if err != nil {
		return nil, err
	}
	sys := &System{Cfg: cfg, K: k, Bus: bus, Monitor: ahb.NewMonitor(bus)}
	for m := 0; m < cfg.NumActiveMasters; m++ {
		mm, err := ahb.NewMaster(bus, m)
		if err != nil {
			return nil, err
		}
		sys.Masters = append(sys.Masters, mm)
	}
	if cfg.WithDefaultMaster {
		dm, err := ahb.NewMaster(bus, nm-1)
		if err != nil {
			return nil, err
		}
		sys.Default = dm // empty script: drives IDLE forever
	}
	for s := 0; s < cfg.NumSlaves; s++ {
		sl, err := ahb.NewMemorySlave(bus, s, cfg.SlaveWaits)
		if err != nil {
			return nil, err
		}
		sys.Slaves = append(sys.Slaves, sl)
	}
	return sys, nil
}

// LoadPaperWorkload loads every active master with the paper's testbench
// traffic sized to roughly the requested total cycle count.
func (s *System) LoadPaperWorkload(targetCycles uint64) error {
	// Each sequence occupies ~50 transfer cycles plus tens of idle cycles;
	// size the sequence count so the masters stay busy for the whole run.
	perMaster := int(targetCycles)/100 + 2
	for m, mm := range s.Masters {
		cfg := workload.PaperTestbench(m, perMaster)
		cfg.AddrSize = uint32(s.Cfg.NumSlaves) * s.Cfg.SlaveRegionSize
		seqs, err := workload.Generate(cfg)
		if err != nil {
			return err
		}
		mm.Enqueue(seqs...)
	}
	return nil
}

// LoadWorkload generates traffic from one configuration per active master
// (missing entries reuse the last configuration with a shifted seed).
func (s *System) LoadWorkload(cfgs ...workload.Config) error {
	if len(cfgs) == 0 {
		return fmt.Errorf("core: no workload configurations")
	}
	for m, mm := range s.Masters {
		cfg := cfgs[len(cfgs)-1]
		if m < len(cfgs) {
			cfg = cfgs[m]
		} else {
			cfg.Seed += int64(m) * 104729
		}
		seqs, err := workload.Generate(cfg)
		if err != nil {
			return err
		}
		mm.Enqueue(seqs...)
	}
	return nil
}

// runChunk bounds how many bus cycles RunContext simulates between
// cancellation checks. Small enough that Ctrl-C feels immediate, large
// enough that the per-chunk overhead (one context check and one kernel
// re-entry) is unmeasurable.
const runChunk = 512

// Run advances the simulation by n bus clock cycles.
func (s *System) Run(n uint64) error {
	return s.RunContext(context.Background(), n)
}

// RunContext advances the simulation by n bus clock cycles, checking ctx
// between slices of cycles so that even a single long run can be
// cancelled mid-flight. A chunked run is event-for-event identical to a
// single Run call: the kernel resumes exactly where the previous slice
// settled and settled-timestep observers fire at most once per distinct
// simulated time. On cancellation the context's error is returned and
// the system stays resumable from the cycle it reached.
func (s *System) RunContext(ctx context.Context, n uint64) error {
	return s.RunContextStepped(ctx, n, func(c uint64) error {
		return s.K.RunCycles(s.Bus.Clk, c)
	})
}

// RunContextStepped is the execution seam RunContext is built on: it
// advances the simulation by n bus cycles using step to execute each slice
// of cycles, with the same chunking, cancellation and end-of-run hook
// semantics regardless of which execution backend supplies step. Backends
// (internal/exec) plug their cycle steppers in here, so observers flush
// and cancellation boundaries are identical across backends — a
// prerequisite for bit-identical partial results under mid-run
// cancellation.
func (s *System) RunContextStepped(ctx context.Context, n uint64, step func(uint64) error) error {
	defer func() {
		for _, fn := range s.runEndHooks {
			fn()
		}
	}()
	if ctx == nil || ctx.Done() == nil {
		return step(n)
	}
	for n > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		c := uint64(runChunk)
		if n < c {
			c = n
		}
		if err := step(c); err != nil {
			return err
		}
		n -= c
	}
	return nil
}

// Tech is re-exported for convenience.
type Tech = power.Tech
