package core

import (
	"encoding/json"
	"fmt"

	"ahbpower/internal/amba/ahb"
	"ahbpower/internal/power"
	"ahbpower/internal/sim"
)

// SnapshotVersion is bumped whenever the snapshot layout changes; a
// restored snapshot must carry the running binary's version.
const SnapshotVersion = 1

// Snapshotter is the seam for component state that lives outside the
// System proper (the power analyzer, a compiled fault injector): anything
// registered via System.AddSnapshotter is captured into — and restored
// from — the system snapshot under its registration name. Capture and
// restore pair across processes: restore runs on a freshly constructed
// component in a new binary, with only the serialized blob carried over.
type Snapshotter interface {
	CaptureSnapshot() (json.RawMessage, error)
	RestoreSnapshot(json.RawMessage) error
}

// Snapshot is the serialized state of a mid-run system at a settled
// cycle boundary. Restoring it onto a deterministically rebuilt twin
// (same topology, same workloads, same attachments) continues the run
// bit-exactly: energies are carried as Float64bits and PRNG streams as
// draw counts, so a resumed run is indistinguishable from one that never
// stopped.
type Snapshot struct {
	Version int `json:"version"`
	// Cycle is the number of bus clock cycles completed at capture.
	Cycle   uint64                 `json:"cycle"`
	Signals []sim.SignalValue      `json:"signals"`
	Bus     ahb.BusState           `json:"bus"`
	Masters []ahb.MasterState      `json:"masters"`
	Default *ahb.MasterState       `json:"default,omitempty"`
	Slaves  []ahb.MemorySlaveState `json:"slaves"`
	Monitor ahb.MonitorState       `json:"monitor"`
	// Extra holds the registered Snapshotters' blobs by name.
	Extra map[string]json.RawMessage `json:"extra,omitempty"`
}

// Encode serializes the snapshot to its canonical JSON form.
func (sn *Snapshot) Encode() ([]byte, error) { return json.Marshal(sn) }

// DecodeSnapshot parses a serialized snapshot and checks its version.
func DecodeSnapshot(b []byte) (*Snapshot, error) {
	var sn Snapshot
	if err := json.Unmarshal(b, &sn); err != nil {
		return nil, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	if sn.Version != SnapshotVersion {
		return nil, fmt.Errorf("core: snapshot version %d, this binary writes %d", sn.Version, SnapshotVersion)
	}
	return &sn, nil
}

// AddSnapshotter registers extra component state under name. Names must
// be unique; capture and restore match registrations by name, and a
// restore fails when the snapshot's name set differs from the rebuilt
// system's.
func (s *System) AddSnapshotter(name string, sn Snapshotter) {
	s.snapshotters = append(s.snapshotters, namedSnapshotter{name: name, s: sn})
}

type namedSnapshotter struct {
	name string
	s    Snapshotter
}

// CaptureSnapshot serializes the full dynamic state of the system at the
// current settled cycle boundary.
func (s *System) CaptureSnapshot() (*Snapshot, error) {
	sigs, err := s.K.CaptureSignals()
	if err != nil {
		return nil, err
	}
	sn := &Snapshot{
		Version: SnapshotVersion,
		Cycle:   s.Bus.Clk.Cycles(),
		Signals: sigs,
		Bus:     s.Bus.CaptureState(),
		Monitor: s.Monitor.CaptureState(),
	}
	for _, m := range s.Masters {
		ms, err := m.CaptureState()
		if err != nil {
			return nil, err
		}
		sn.Masters = append(sn.Masters, ms)
	}
	if s.Default != nil {
		ds, err := s.Default.CaptureState()
		if err != nil {
			return nil, err
		}
		sn.Default = &ds
	}
	for _, sl := range s.Slaves {
		sn.Slaves = append(sn.Slaves, sl.CaptureState())
	}
	for _, ns := range s.snapshotters {
		blob, err := ns.s.CaptureSnapshot()
		if err != nil {
			return nil, fmt.Errorf("core: capturing %q: %w", ns.name, err)
		}
		if sn.Extra == nil {
			sn.Extra = map[string]json.RawMessage{}
		}
		if _, dup := sn.Extra[ns.name]; dup {
			return nil, fmt.Errorf("core: duplicate snapshotter %q", ns.name)
		}
		sn.Extra[ns.name] = blob
	}
	return sn, nil
}

// RestoreSnapshot writes a captured snapshot onto this freshly built
// system. The system must be a deterministic twin of the captured one —
// same topology, same loaded workloads, same analyzer/injector
// attachments — and must not have been run yet. After restore the next
// simulated cycle is Cycle+1, on either execution backend.
func (s *System) RestoreSnapshot(sn *Snapshot) error {
	if sn.Version != SnapshotVersion {
		return fmt.Errorf("core: snapshot version %d, this binary restores %d", sn.Version, SnapshotVersion)
	}
	if got, want := len(sn.Masters), len(s.Masters); got != want {
		return fmt.Errorf("core: snapshot has %d masters, system has %d", got, want)
	}
	if (sn.Default != nil) != (s.Default != nil) {
		return fmt.Errorf("core: snapshot and system disagree on the default master")
	}
	if got, want := len(sn.Slaves), len(s.Slaves); got != want {
		return fmt.Errorf("core: snapshot has %d slaves, system has %d", got, want)
	}
	// Settle initialization at time zero first: the init deltas run every
	// process once and must not clobber restored values.
	if err := s.K.Run(0); err != nil {
		return err
	}
	if err := s.K.RestoreSignals(sn.Signals); err != nil {
		return err
	}
	if err := s.K.RestoreTime(sim.Time(sn.Cycle) * s.Bus.Clk.Period()); err != nil {
		return err
	}
	s.Bus.Clk.RestoreCycles(sn.Cycle)
	s.Bus.RestoreState(sn.Bus)
	s.Monitor.RestoreState(sn.Monitor)
	for i, m := range s.Masters {
		if err := m.RestoreState(sn.Masters[i]); err != nil {
			return err
		}
	}
	if s.Default != nil {
		if err := s.Default.RestoreState(*sn.Default); err != nil {
			return err
		}
	}
	for i, sl := range s.Slaves {
		sl.RestoreState(sn.Slaves[i])
	}
	seen := 0
	for _, ns := range s.snapshotters {
		blob, ok := sn.Extra[ns.name]
		if !ok {
			return fmt.Errorf("core: snapshot is missing component %q", ns.name)
		}
		seen++
		if err := ns.s.RestoreSnapshot(blob); err != nil {
			return fmt.Errorf("core: restoring %q: %w", ns.name, err)
		}
	}
	if seen != len(sn.Extra) {
		return fmt.Errorf("core: snapshot carries %d extra components, system registered %d", len(sn.Extra), seen)
	}
	return nil
}

// SetCheckpointHook registers fn to run at settled chunk boundaries of
// RunContextStepped, at least every cycles apart (clamped up to the
// chunk size). The hook sees the number of cycles completed in this run;
// a typical hook captures a snapshot and persists it. An error from the
// hook aborts the run. Setting a hook forces the chunked execution path
// even without a cancellable context.
func (s *System) SetCheckpointHook(every uint64, fn func(done uint64) error) {
	if every < runChunk {
		every = runChunk
	}
	s.ckptEvery = every
	s.ckptFn = fn
}

// analyzerState is the analyzer's serialized dynamic state. Energies are
// bit patterns; the per-port local history and private-style glitch
// accumulators ride along so every style restores exactly.
type analyzerState struct {
	FSM       power.FSMState       `json:"fsm"`
	Breakdown power.BreakdownState `json:"breakdown"`

	HavePrev   bool   `json:"have_prev,omitempty"`
	PrevDecIn  uint64 `json:"prev_dec_in,omitempty"`
	PrevAddr   uint32 `json:"prev_addr,omitempty"`
	PrevCtrl   uint64 `json:"prev_ctrl,omitempty"`
	PrevWdata  uint32 `json:"prev_wdata,omitempty"`
	PrevRdata  uint32 `json:"prev_rdata,omitempty"`
	PrevS2MCtl uint64 `json:"prev_s2m_ctl,omitempty"`
	PrevM2SSel uint64 `json:"prev_m2s_sel,omitempty"`
	PrevS2MSel uint64 `json:"prev_s2m_sel,omitempty"`
	PrevReq    uint16 `json:"prev_req,omitempty"`
	PrevGrant  uint16 `json:"prev_grant,omitempty"`

	LastActiveMaster uint8 `json:"last_active_master,omitempty"`
	HaveActive       bool  `json:"have_active,omitempty"`

	PrivM2S int `json:"priv_m2s,omitempty"`
	PrivS2M int `json:"priv_s2m,omitempty"`
	PrivDec int `json:"priv_dec,omitempty"`
	PrivArb int `json:"priv_arb,omitempty"`

	LocalPrev  []uint64 `json:"local_prev,omitempty"`
	LocalFirst bool     `json:"local_first,omitempty"`
}

// SnapshotUnsupported returns the reason this analyzer cannot join a
// checkpoint snapshot, or "" when it can. Streaming consumers (windowed
// traces, activity stores, DPM estimators, trace recorders) hold
// unserialized mid-run state, so scenarios using them run without
// checkpointing and the reason is surfaced like any other traits gate.
func (a *Analyzer) SnapshotUnsupported() string {
	return a.cfg.SnapshotUnsupported()
}

// SnapshotUnsupported is the config-level form of the analyzer's
// checkpoint-eligibility gate, so callers (the engine) can decide before
// the analyzer is even built.
func (cfg AnalyzerConfig) SnapshotUnsupported() string {
	switch {
	case cfg.TraceWindow > 0:
		return "windowed power trace attached"
	case cfg.RecordActivity:
		return "activity recording enabled"
	case cfg.DPM != nil:
		return "DPM estimator attached"
	case cfg.Trace != nil:
		return "trace recorder attached"
	}
	return ""
}

// CaptureSnapshot implements Snapshotter.
func (a *Analyzer) CaptureSnapshot() (json.RawMessage, error) {
	if reason := a.SnapshotUnsupported(); reason != "" {
		return nil, fmt.Errorf("core: analyzer not snapshottable: %s", reason)
	}
	st := analyzerState{
		FSM:       a.fsm.CaptureState(),
		Breakdown: a.bd.CaptureState(),

		HavePrev:   a.havePrev,
		PrevDecIn:  a.prevDecIn,
		PrevAddr:   a.prevAddr,
		PrevCtrl:   a.prevCtrl,
		PrevWdata:  a.prevWdata,
		PrevRdata:  a.prevRdata,
		PrevS2MCtl: a.prevS2MCtl,
		PrevM2SSel: a.prevM2SSel,
		PrevS2MSel: a.prevS2MSel,
		PrevReq:    a.prevReq,
		PrevGrant:  a.prevGrant,

		LastActiveMaster: a.lastActiveMaster,
		HaveActive:       a.haveActive,

		PrivM2S: a.privM2S,
		PrivS2M: a.privS2M,
		PrivDec: a.privDec,
		PrivArb: a.privArb,

		LocalPrev:  append([]uint64(nil), a.localPrev...),
		LocalFirst: a.localFirst,
	}
	return json.Marshal(st)
}

// RestoreSnapshot implements Snapshotter.
func (a *Analyzer) RestoreSnapshot(blob json.RawMessage) error {
	if reason := a.SnapshotUnsupported(); reason != "" {
		return fmt.Errorf("core: analyzer not snapshottable: %s", reason)
	}
	var st analyzerState
	if err := json.Unmarshal(blob, &st); err != nil {
		return fmt.Errorf("core: decoding analyzer snapshot: %w", err)
	}
	if len(st.LocalPrev) != len(a.localPrev) {
		return fmt.Errorf("core: analyzer snapshot has %d local-history slots, analyzer has %d", len(st.LocalPrev), len(a.localPrev))
	}
	if err := a.fsm.RestoreState(st.FSM); err != nil {
		return err
	}
	if err := a.bd.RestoreState(st.Breakdown); err != nil {
		return err
	}
	a.havePrev = st.HavePrev
	a.prevDecIn = st.PrevDecIn
	a.prevAddr = st.PrevAddr
	a.prevCtrl = st.PrevCtrl
	a.prevWdata = st.PrevWdata
	a.prevRdata = st.PrevRdata
	a.prevS2MCtl = st.PrevS2MCtl
	a.prevM2SSel = st.PrevM2SSel
	a.prevS2MSel = st.PrevS2MSel
	a.prevReq = st.PrevReq
	a.prevGrant = st.PrevGrant
	a.lastActiveMaster = st.LastActiveMaster
	a.haveActive = st.HaveActive
	a.privM2S = st.PrivM2S
	a.privS2M = st.PrivS2M
	a.privDec = st.PrivDec
	a.privArb = st.PrivArb
	copy(a.localPrev, st.LocalPrev)
	a.localFirst = st.LocalFirst
	return nil
}
