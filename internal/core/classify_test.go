package core

import (
	"testing"

	"ahbpower/internal/amba/ahb"
	"ahbpower/internal/power"
)

// newClassifier builds an analyzer wired to a minimal system, for direct
// classification testing.
func newClassifier(t *testing.T) *Analyzer {
	t.Helper()
	sys, err := NewSystem(PaperSystem())
	if err != nil {
		t.Fatal(err)
	}
	an, err := Attach(sys, AnalyzerConfig{Style: StyleGlobal})
	if err != nil {
		t.Fatal(err)
	}
	return an
}

func ci(trans uint8, write bool, master uint8, requests uint16, handover bool) ahb.CycleInfo {
	return ahb.CycleInfo{Trans: trans, Write: write, Master: master, Requests: requests, Handover: handover}
}

func TestClassifyActiveTransfers(t *testing.T) {
	a := newClassifier(t)
	if got := a.classify(ci(ahb.TransNonseq, true, 0, 1, false)); got != power.Write {
		t.Errorf("NONSEQ write -> %v, want WRITE", got)
	}
	if got := a.classify(ci(ahb.TransSeq, false, 0, 1, false)); got != power.Read {
		t.Errorf("SEQ read -> %v, want READ", got)
	}
}

func TestClassifyIdleBeforeAnyTransfer(t *testing.T) {
	a := newClassifier(t)
	// No transfer observed yet: idle cycles are plain IDLE even with
	// handovers (start-up arbitration noise).
	if got := a.classify(ci(ahb.TransIdle, false, 2, 0, true)); got != power.Idle {
		t.Errorf("startup idle -> %v, want IDLE", got)
	}
}

func TestClassifyIdleWhileOwnerHoldsBus(t *testing.T) {
	a := newClassifier(t)
	a.classify(ci(ahb.TransNonseq, true, 1, 1<<1, false)) // master 1 transfers
	// Master 1 idles but keeps requesting: plain IDLE.
	if got := a.classify(ci(ahb.TransIdle, false, 1, 1<<1, false)); got != power.Idle {
		t.Errorf("idle-with-request -> %v, want IDLE", got)
	}
	// BUSY counts as an idle datapath cycle too.
	if got := a.classify(ci(ahb.TransBusy, false, 1, 1<<1, false)); got != power.Idle {
		t.Errorf("BUSY -> %v, want IDLE", got)
	}
}

func TestClassifyIdleHOWhenOwnerReleases(t *testing.T) {
	a := newClassifier(t)
	a.classify(ci(ahb.TransNonseq, false, 1, 1<<1, false))
	// Master 1 released its request: the bus enters the handover window
	// even before HMASTER moves.
	if got := a.classify(ci(ahb.TransIdle, false, 1, 0, false)); got != power.IdleHO {
		t.Errorf("released idle -> %v, want IDLE_HO", got)
	}
	// Ownership moved to the default master: still handover idle.
	if got := a.classify(ci(ahb.TransIdle, false, 2, 0, false)); got != power.IdleHO {
		t.Errorf("parked idle -> %v, want IDLE_HO", got)
	}
}

func TestClassifyHandoverCycleIsIdleHO(t *testing.T) {
	a := newClassifier(t)
	a.classify(ci(ahb.TransNonseq, true, 0, 1, false))
	if got := a.classify(ci(ahb.TransIdle, false, 0, 1, true)); got != power.IdleHO {
		t.Errorf("handover cycle -> %v, want IDLE_HO", got)
	}
}

func TestClassifyNewOwnerTransferEndsHandover(t *testing.T) {
	a := newClassifier(t)
	a.classify(ci(ahb.TransNonseq, true, 0, 1, false))
	a.classify(ci(ahb.TransIdle, false, 0, 0, false)) // IDLE_HO
	a.classify(ci(ahb.TransIdle, false, 2, 2, true))  // IDLE_HO (moving)
	got := a.classify(ci(ahb.TransNonseq, true, 1, 2, true))
	if got != power.Write {
		t.Errorf("first transfer of new owner -> %v, want WRITE", got)
	}
	// Subsequent idle under the new owner with request held: plain IDLE.
	if got := a.classify(ci(ahb.TransIdle, false, 1, 2, false)); got != power.Idle {
		t.Errorf("post-takeover idle -> %v, want IDLE", got)
	}
}
