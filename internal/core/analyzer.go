package core

import (
	"fmt"

	"ahbpower/internal/amba/ahb"
	"ahbpower/internal/metrics"
	"ahbpower/internal/power"
	"ahbpower/internal/probe"
	"ahbpower/internal/stats"
)

// Style selects how the power model is integrated into the executable
// specification — the three alternatives of the paper's Fig. 1.
type Style uint8

// Power-model integration styles.
const (
	// StyleGlobal implements the power analysis "in a further specific
	// module": the analyzer observes only the shared (muxed) bus signals
	// once per settled cycle. Most reusable, least intrusive, slight
	// approximation of mux input activity.
	StyleGlobal Style = iota
	// StyleLocal adds a monitor FSM to the bus module itself: besides the
	// shared signals it reads every master/slave port, capturing input-side
	// activity the global analyzer cannot see.
	StyleLocal
	// StylePrivate instruments the components: signal watchers count every
	// transition, including multi-delta glitches, at the highest accuracy
	// and the highest simulation cost.
	StylePrivate
)

// String names the style.
func (s Style) String() string {
	switch s {
	case StyleGlobal:
		return "global"
	case StyleLocal:
		return "local"
	case StylePrivate:
		return "private"
	}
	return fmt.Sprintf("style(%d)", uint8(s))
}

// AnalyzerConfig parameterizes the power analyzer.
type AnalyzerConfig struct {
	Style Style
	Tech  power.Tech
	// TraceWindow enables windowed power traces with the given window
	// duration in seconds (0 disables tracing).
	TraceWindow float64
	// RecordActivity keeps per-signal switching statistics (the paper's
	// Activity object); adds memory and time cost.
	RecordActivity bool
	// DPM, when non-nil, enables the dynamic-power-management savings
	// estimator (see DPMConfig).
	DPM *DPMConfig
	// Models, when non-nil, supplies characterized macromodels (e.g.
	// loaded with power.LoadModels) instead of the structural defaults —
	// the IP-reuse flow of the paper's §2.
	Models *power.Models
	// Trace, when non-nil, subscribes a streaming power-trace recorder
	// to the analyzer's per-cycle sample stream (see internal/metrics).
	// Use one Trace per run. When nil and no other sample observer is
	// attached, no samples are published and the stream costs nothing.
	Trace *metrics.Trace
}

// Analyzer computes, cycle by cycle, the energy of each AHB sub-block from
// the energy macromodels, classifies the cycle in the power FSM, and
// accumulates Table 1 / Figs. 3-6 data. It corresponds to the paper's
// power_fsm plus get_activity instrumentation, compiled in only when
// requested (the POWERTEST switch is the decision to call Attach at all).
type Analyzer struct {
	cfg AnalyzerConfig
	sys *System

	dec *power.DecoderModel
	m2s *power.MuxModel
	s2m *power.MuxModel
	arb *power.ArbiterModel

	fsm      *power.FSM
	bd       power.Breakdown
	activity *power.Activity
	dpm      *dpmState

	// samples fans the per-cycle energy decomposition out to streaming
	// consumers (trace recorders, exporters). Publishing is skipped
	// entirely while no observer is attached. Samples are constructed
	// into sampleBuf and delivered in batches of sampleBatch records —
	// one dynamic dispatch per batch instead of per cycle — with a flush
	// at the end of every System run and before Report.
	samples   probe.Hub[metrics.Sample]
	sampleBuf []metrics.Sample

	tTotal, tM2S, tDEC, tARB, tS2M *stats.Windower

	// Previous-cycle snapshot for Hamming distances.
	havePrev   bool
	prevDecIn  uint64
	prevAddr   uint32
	prevCtrl   uint64
	prevWdata  uint32
	prevRdata  uint32
	prevS2MCtl uint64
	prevM2SSel uint64
	prevS2MSel uint64
	prevReq    uint16
	prevGrant  uint16

	lastActiveMaster uint8
	haveActive       bool

	// Private-style glitch accumulators, filled by signal watchers and
	// drained once per cycle.
	privM2S int
	privS2M int
	privDec int
	privArb int

	// Local-style per-port history (previous sampled values).
	localPrev  []uint64
	localFirst bool
}

// Attach builds an analyzer and hooks it into the system. It must be
// called before the simulation starts.
func Attach(sys *System, cfg AnalyzerConfig) (*Analyzer, error) {
	bus := sys.Bus
	tech := cfg.Tech
	if tech.VDD == 0 {
		tech = power.DefaultTech()
	}
	models := cfg.Models
	if models == nil {
		var err error
		models, err = power.DefaultModels(bus.Cfg.NumMasters, bus.Cfg.NumSlaves, bus.Cfg.DataWidth, tech)
		if err != nil {
			return nil, err
		}
	} else if err := models.Validate(); err != nil {
		return nil, err
	} else {
		// The macromodels memoize energies in place; clone user-supplied
		// models so concurrent runs sharing one characterized Models value
		// never share mutable memo state.
		models = models.Clone()
	}
	a := &Analyzer{
		cfg: cfg,
		sys: sys,
		dec: models.Dec,
		m2s: models.M2S,
		s2m: models.S2M,
		arb: models.Arb,
		fsm: power.NewFSM(),
	}
	a.cfg.Tech = tech
	if cfg.TraceWindow > 0 {
		a.tTotal = stats.NewWindower("AHB total", cfg.TraceWindow)
		a.tM2S = stats.NewWindower("M2S mux", cfg.TraceWindow)
		a.tDEC = stats.NewWindower("decoder", cfg.TraceWindow)
		a.tARB = stats.NewWindower("arbiter", cfg.TraceWindow)
		a.tS2M = stats.NewWindower("S2M mux", cfg.TraceWindow)
	}
	if cfg.RecordActivity {
		a.activity = power.NewActivity()
	}
	if cfg.DPM != nil {
		a.dpm = newDPMState(*cfg.DPM)
	}
	if cfg.Style == StylePrivate {
		a.attachWatchers()
	}
	if cfg.Style == StyleLocal {
		a.localPrev = make([]uint64, 3*len(bus.M)+2*len(bus.S))
	}
	if cfg.Trace != nil {
		a.samples.Attach(cfg.Trace)
	}
	bus.Observe(a)
	sys.onRunEnd(a.FlushSamples)
	return a, nil
}

// sampleBatch is the sample-stream batch size: large enough to amortize
// the per-batch dispatch, small enough that a flushed batch still fits in
// cache while the trace recorder folds it into windows.
const sampleBatch = 256

// FlushSamples delivers any buffered per-cycle samples to the attached
// sample observers. It runs automatically at the end of every System run
// (and before Report), so it only needs to be called explicitly when
// reading a streaming consumer mid-run.
func (a *Analyzer) FlushSamples() {
	if len(a.sampleBuf) == 0 {
		return
	}
	a.samples.PublishBatch(a.sampleBuf)
	a.sampleBuf = a.sampleBuf[:0]
}

// ObserveSamples attaches an observer to the analyzer's per-cycle sample
// stream. Call before the simulation starts.
func (a *Analyzer) ObserveSamples(o probe.Observer[metrics.Sample]) {
	a.samples.Attach(o)
}

// OnSample registers a plain function on the per-cycle sample stream; it
// is the convenience form of ObserveSamples.
func (a *Analyzer) OnSample(fn func(metrics.Sample)) {
	a.samples.AttachFunc(fn)
}

// attachWatchers installs the private-style transition counters directly
// on the component output signals.
func (a *Analyzer) attachWatchers() {
	bus := a.sys.Bus
	bus.HAddr.Watch(func(o, n uint32) { a.privM2S += stats.Hamming32(o, n) })
	bus.HWdata.Watch(func(o, n uint32) { a.privM2S += stats.Hamming32(o, n) })
	bus.HTrans.Watch(func(o, n uint8) { a.privM2S += stats.Hamming(uint64(o), uint64(n)) })
	bus.HWrite.Watch(func(o, n bool) { a.privM2S += stats.HammingBool(o, n) })
	bus.HSize.Watch(func(o, n uint8) { a.privM2S += stats.Hamming(uint64(o), uint64(n)) })
	bus.HBurst.Watch(func(o, n uint8) { a.privM2S += stats.Hamming(uint64(o), uint64(n)) })
	bus.HRdata.Watch(func(o, n uint32) { a.privS2M += stats.Hamming32(o, n) })
	bus.HResp.Watch(func(o, n uint8) { a.privS2M += stats.Hamming(uint64(o), uint64(n)) })
	bus.HReady.Watch(func(o, n bool) { a.privS2M += stats.HammingBool(o, n) })
	bus.SelIdx.Watch(func(o, n int) { a.privDec += stats.Hamming(a.encodeSel(o), a.encodeSel(n)) })
	for m := range bus.Grant {
		bus.Grant[m].Watch(func(o, n bool) { a.privArb += stats.HammingBool(o, n) })
		bus.M[m].BusReq.Watch(func(o, n bool) { a.privArb += stats.HammingBool(o, n) })
	}
}

// encodeSel maps a decoded slave index to the decoder-input binary code.
func (a *Analyzer) encodeSel(idx int) uint64 {
	if idx >= 0 {
		return uint64(idx)
	}
	return uint64(a.sys.Bus.Cfg.NumSlaves) // default-slave code
}

// packCtrl packs the muxed control lines into one activity word.
func packCtrl(ci ahb.CycleInfo) uint64 {
	v := uint64(ci.Trans) & 3
	if ci.Write {
		v |= 1 << 2
	}
	v |= uint64(ci.Size&7) << 3
	v |= uint64(ci.Burst&7) << 6
	return v
}

// ObserveCycle implements probe.Observer over the bus-cycle stream: it is
// the per-cycle analysis hook computing sub-block energies, classifying
// the cycle in the power FSM and accumulating the report data.
func (a *Analyzer) ObserveCycle(ci ahb.CycleInfo) {
	bus := a.sys.Bus
	state := a.classify(ci)

	if a.cfg.Style == StyleLocal && !a.havePrev {
		// Prime the per-port history so the first measured cycle does not
		// count transitions from the zero state.
		a.localFirst = true
		a.localM2SInputHD()
		a.localS2MInputHD()
		a.localFirst = false
	}

	decIn := a.encodeSel(ci.SelIdx)
	ctrl := packCtrl(ci)
	s2mCtl := uint64(ci.Resp) & 3
	if ci.Ready {
		s2mCtl |= 4
	}
	m2sSel := uint64(ci.Master) | uint64(ci.DataMaster)<<4
	s2mSel := a.encodeSel(ci.DataSlave) // -1 and -2 fold to the spare code
	if ci.DataSlave == -1 {
		s2mSel = uint64(bus.Cfg.NumSlaves)
	}
	grant := uint16(1) << ci.GrantIdx

	if a.activity != nil {
		a.activity.StoreActivity("HADDR", uint64(ci.Addr))
		a.activity.StoreActivity("HWDATA", uint64(ci.Wdata))
		a.activity.StoreActivity("HRDATA", uint64(ci.Rdata))
		a.activity.StoreActivity("HTRANS", uint64(ci.Trans))
		a.activity.StoreActivity("HMASTER", uint64(ci.Master))
		a.activity.StoreActivity("HBUSREQ", uint64(ci.Requests))
		a.activity.StoreActivity("HGRANT", uint64(grant))
		a.activity.StoreActivity("HSEL", decIn)
	}

	var eDEC, eM2S, eS2M, eARB float64
	if a.havePrev {
		hdDec := stats.Hamming(a.prevDecIn, decIn)
		hdAddr := stats.Hamming32(a.prevAddr, ci.Addr)
		hdCtrl := stats.Hamming(a.prevCtrl, ctrl)
		hdWdata := stats.Hamming32(a.prevWdata, ci.Wdata)
		hdRdata := stats.Hamming32(a.prevRdata, ci.Rdata)
		hdS2MCtl := stats.Hamming(a.prevS2MCtl, s2mCtl)
		hdM2SSel := stats.Hamming(a.prevM2SSel, m2sSel)
		hdS2MSel := stats.Hamming(a.prevS2MSel, s2mSel)
		hdReq := stats.Hamming(uint64(a.prevReq), uint64(ci.Requests))
		hdGrant := stats.Hamming(uint64(a.prevGrant), uint64(grant))

		m2sOut := hdAddr + hdCtrl + hdWdata
		s2mOut := hdRdata + hdS2MCtl

		// Global-style input estimate: output activity stands in for input
		// activity, except in re-steer cycles where output churn comes
		// from the select change, not from the inputs.
		m2sIn, s2mIn := m2sOut, s2mOut
		if hdM2SSel > 0 {
			m2sIn = 0
		}
		if hdS2MSel > 0 {
			s2mIn = 0
		}
		switch a.cfg.Style {
		case StyleLocal:
			// The local monitor reads every master port: input activity is
			// measured, not approximated from the muxed outputs.
			m2sIn = a.localM2SInputHD()
			s2mIn = a.localS2MInputHD()
		case StylePrivate:
			// Watchers counted every transition including glitches.
			m2sIn, m2sOut = a.privM2S, a.privM2S
			s2mIn, s2mOut = a.privS2M, a.privS2M
			hdDec = a.privDec
			hdReq = 0 // folded into privArb
			hdGrant = a.privArb
			a.privM2S, a.privS2M, a.privDec, a.privArb = 0, 0, 0, 0
		}

		eDEC = a.dec.Energy(hdDec)
		eM2S = a.m2s.Energy(m2sIn, hdM2SSel, m2sOut) + a.m2s.ClockEnergy()
		eS2M = a.s2m.Energy(s2mIn, hdS2MSel, s2mOut) + a.s2m.ClockEnergy()
		eARB = a.arb.Energy(hdReq, hdGrant, ci.Handover, state == power.IdleHO)
	}

	a.prevDecIn = decIn
	a.prevAddr = ci.Addr
	a.prevCtrl = ctrl
	a.prevWdata = ci.Wdata
	a.prevRdata = ci.Rdata
	a.prevS2MCtl = s2mCtl
	a.prevM2SSel = m2sSel
	a.prevS2MSel = s2mSel
	a.prevReq = ci.Requests
	a.prevGrant = grant
	a.havePrev = true

	total := eDEC + eM2S + eS2M + eARB
	a.bd.Add(power.BlockDEC, eDEC)
	a.bd.Add(power.BlockM2S, eM2S)
	a.bd.Add(power.BlockS2M, eS2M)
	a.bd.Add(power.BlockARB, eARB)

	a.fsm.Step(state, total)
	if a.dpm != nil {
		// Only the clock-tree component is gateable; see DPMConfig.
		a.dpm.observe(state, a.m2s.ClockEnergy()+a.s2m.ClockEnergy())
	}

	if a.tTotal != nil {
		t := ci.Time.Seconds()
		a.tTotal.Deposit(t, total)
		a.tM2S.Deposit(t, eM2S)
		a.tDEC.Deposit(t, eDEC)
		a.tARB.Deposit(t, eARB)
		a.tS2M.Deposit(t, eS2M)
	}

	if a.samples.Len() > 0 {
		a.sampleBuf = append(a.sampleBuf, metrics.Sample{
			Cycle:  ci.Cycle,
			Time:   ci.Time,
			State:  state,
			EM2S:   eM2S,
			EDEC:   eDEC,
			EARB:   eARB,
			ES2M:   eS2M,
			ETotal: total,
		})
		if len(a.sampleBuf) >= sampleBatch {
			a.FlushSamples()
		}
	}
}

// localHD updates one slot of the per-port history and returns the
// Hamming distance to the previous sample.
func (a *Analyzer) localHD(slot int, v uint64) int {
	hd := 0
	if !a.localFirst {
		hd = stats.Hamming(a.localPrev[slot], v)
	}
	a.localPrev[slot] = v
	return hd
}

// localM2SInputHD measures per-master input activity (local style): the
// monitor FSM inside the bus module reads every master port directly
// instead of approximating input activity from the muxed outputs.
func (a *Analyzer) localM2SInputHD() int {
	bus := a.sys.Bus
	hd := 0
	for m := range bus.M {
		p := &bus.M[m]
		base := 3 * m
		hd += a.localHD(base, uint64(p.Addr.Read()))
		hd += a.localHD(base+1, uint64(p.Wdata.Read()))
		hd += a.localHD(base+2, uint64(p.Trans.Read()))
	}
	return hd
}

// localS2MInputHD measures per-slave output activity (local style).
func (a *Analyzer) localS2MInputHD() int {
	bus := a.sys.Bus
	hd := 0
	off := 3 * len(bus.M)
	for s := range bus.S {
		p := &bus.S[s]
		base := off + 2*s
		hd += a.localHD(base, uint64(p.Rdata.Read()))
		hd += a.localHD(base+1, uint64(p.Resp.Read()))
	}
	return hd
}

// classify maps a settled bus cycle to one of the paper's four activity
// modes. BUSY cycles count as idle datapath cycles. An idle cycle belongs
// to IDLE_HO — "IDLE with bus handover" — when the bus is inside an
// arbitration window: the last master that actually transferred data has
// released its request (so ownership is being handed over), or ownership
// changed in this very cycle. An idle cycle while the transferring master
// still holds the bus (e.g. BUSY or an idle op with the request kept) is
// plain IDLE.
func (a *Analyzer) classify(ci ahb.CycleInfo) power.State {
	if ci.Trans == ahb.TransNonseq || ci.Trans == ahb.TransSeq {
		a.lastActiveMaster = ci.Master
		a.haveActive = true
		if ci.Write {
			return power.Write
		}
		return power.Read
	}
	if !a.haveActive {
		return power.Idle
	}
	released := ci.Requests&(1<<a.lastActiveMaster) == 0
	if ci.Handover || released || ci.Master != a.lastActiveMaster {
		return power.IdleHO
	}
	return power.Idle
}

// FSM exposes the instruction statistics.
func (a *Analyzer) FSM() *power.FSM { return a.fsm }

// Breakdown exposes the per-block energy accumulation.
func (a *Analyzer) Breakdown() *power.Breakdown { return &a.bd }

// Activity exposes the per-signal switching store (nil unless enabled).
func (a *Analyzer) Activity() *power.Activity { return a.activity }

// DPM returns the dynamic-power-management estimate, or nil when the
// estimator was not enabled.
func (a *Analyzer) DPM() *DPMEstimate {
	if a.dpm == nil {
		return nil
	}
	est := a.dpm.estimate()
	return &est
}
