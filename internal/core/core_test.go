package core

import (
	"math"
	"testing"

	"ahbpower/internal/power"
)

// buildAnalyzed creates the paper's system, loads the paper workload and
// attaches an analyzer of the given style.
func buildAnalyzed(t *testing.T, style Style, cycles uint64, window float64) (*System, *Analyzer) {
	t.Helper()
	sys, err := NewSystem(PaperSystem())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadPaperWorkload(cycles); err != nil {
		t.Fatal(err)
	}
	an, err := Attach(sys, AnalyzerConfig{Style: style, TraceWindow: window})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(cycles); err != nil {
		t.Fatal(err)
	}
	return sys, an
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(SystemConfig{}); err == nil {
		t.Error("empty config must fail")
	}
}

func TestPaperSystemShape(t *testing.T) {
	sys, err := NewSystem(PaperSystem())
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Masters) != 2 || sys.Default == nil || len(sys.Slaves) != 3 {
		t.Errorf("system shape: %d masters, default=%v, %d slaves",
			len(sys.Masters), sys.Default != nil, len(sys.Slaves))
	}
	if sys.Bus.Cfg.NumMasters != 3 {
		t.Errorf("bus masters=%d, want 3 (2 active + default)", sys.Bus.Cfg.NumMasters)
	}
	if got := sys.Bus.Clk.FrequencyHz(); math.Abs(got-100e6) > 1e3 {
		t.Errorf("clock=%v Hz, want 100 MHz", got)
	}
}

func TestPaperRunProtocolClean(t *testing.T) {
	sys, _ := buildAnalyzed(t, StyleGlobal, 3000, 0)
	for _, e := range sys.Monitor.Errors() {
		t.Errorf("protocol violation: %v", e)
	}
	if sys.Monitor.Counts()["nonseq"] == 0 {
		t.Error("workload produced no transfers")
	}
	if sys.Monitor.Counts()["handover"] == 0 {
		t.Error("workload produced no handovers")
	}
}

func TestTableOnlyPaperInstructions(t *testing.T) {
	_, an := buildAnalyzed(t, StyleGlobal, 5000, 0)
	r := an.Report()
	allowed := map[string]bool{}
	for _, in := range power.PermissibleInstructions() {
		allowed[in.String()] = true
	}
	for _, row := range r.Table {
		if !allowed[row.Instruction] {
			t.Errorf("instruction %s outside the paper's permissible set (count=%d)", row.Instruction, row.Count)
		}
	}
}

func TestReportConservation(t *testing.T) {
	_, an := buildAnalyzed(t, StyleGlobal, 4000, 0)
	r := an.Report()
	var sum float64
	for _, row := range r.Table {
		sum += row.TotalEnergy
	}
	// Instruction energies sum to the total (minus the establishing cycle).
	if math.Abs(sum-r.TotalEnergy) > 1e-9*r.TotalEnergy+1e-12 {
		t.Errorf("table sum %g != total %g", sum, r.TotalEnergy)
	}
	// Block energies sum to the total too.
	var bsum float64
	for _, e := range r.BlockEnergy {
		bsum += e
	}
	if math.Abs(bsum-r.TotalEnergy) > 1e-9*r.TotalEnergy+1e-12 {
		t.Errorf("block sum %g != total %g", bsum, r.TotalEnergy)
	}
	// Class shares sum to ~1.
	if s := r.DataTransferShare + r.ArbitrationShare + r.IdleShare; math.Abs(s-1) > 1e-6 {
		t.Errorf("class shares sum to %v", s)
	}
}

func TestPaperShapeDataTransferDominates(t *testing.T) {
	// The paper's headline: most energy in data transfer, ~11% in
	// arbitration; M2S dominates the sub-blocks and ARB is small.
	_, an := buildAnalyzed(t, StyleGlobal, 20000, 0)
	r := an.Report()
	if r.DataTransferShare < 0.6 {
		t.Errorf("data-transfer share=%.1f%%, want >60%%", 100*r.DataTransferShare)
	}
	if r.ArbitrationShare > 0.35 || r.ArbitrationShare < 0.01 {
		t.Errorf("arbitration share=%.1f%%, want a small-but-visible fraction", 100*r.ArbitrationShare)
	}
	if r.DataTransferShare < r.ArbitrationShare*3 {
		t.Error("data transfer must dominate arbitration")
	}
	if r.BlockShare["M2S"] <= r.BlockShare["ARB"] {
		t.Errorf("M2S (%.1f%%) must exceed ARB (%.1f%%)",
			100*r.BlockShare["M2S"], 100*r.BlockShare["ARB"])
	}
	if r.BlockShare["M2S"] <= r.BlockShare["DEC"] {
		t.Error("M2S must exceed DEC")
	}
}

func TestAvgInstructionEnergiesInPaperBand(t *testing.T) {
	// Table 1 reports 14.7-22.4 pJ per instruction; with the calibrated
	// default technology our averages must land in the same decade.
	_, an := buildAnalyzed(t, StyleGlobal, 20000, 0)
	r := an.Report()
	for _, row := range r.Table {
		if row.Count < 50 {
			continue // rare instructions have noisy averages
		}
		pj := row.AvgEnergy * 1e12
		if pj < 2 || pj > 100 {
			t.Errorf("%s avg=%.1f pJ, outside the plausible band [2,100]", row.Instruction, pj)
		}
	}
}

func TestTracesProduced(t *testing.T) {
	_, an := buildAnalyzed(t, StyleGlobal, 2000, 100e-9)
	r := an.Report()
	if r.TraceTotal == nil || r.TraceTotal.Len() == 0 {
		t.Fatal("total trace missing")
	}
	for _, s := range []interface{ Len() int }{r.TraceM2S, r.TraceDEC, r.TraceARB, r.TraceS2M} {
		if s.Len() == 0 {
			t.Error("per-block trace missing")
		}
	}
	// Trace integral equals total energy.
	integral := 0.0
	for _, p := range r.TraceTotal.Points {
		integral += p.Y * 100e-9
	}
	if math.Abs(integral-r.TotalEnergy) > 1e-6*r.TotalEnergy+1e-15 {
		t.Errorf("trace integral %g != total %g", integral, r.TotalEnergy)
	}
}

func TestStylesProduceSimilarTotals(t *testing.T) {
	// The three integration styles are approximations of each other; totals
	// must agree within a factor of ~2.
	_, g := buildAnalyzed(t, StyleGlobal, 5000, 0)
	_, l := buildAnalyzed(t, StyleLocal, 5000, 0)
	_, p := buildAnalyzed(t, StylePrivate, 5000, 0)
	eg := g.Report().TotalEnergy
	el := l.Report().TotalEnergy
	ep := p.Report().TotalEnergy
	if eg <= 0 || el <= 0 || ep <= 0 {
		t.Fatalf("non-positive energies: %g %g %g", eg, el, ep)
	}
	for _, pair := range [][2]float64{{eg, el}, {eg, ep}, {el, ep}} {
		ratio := pair[0] / pair[1]
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("style totals disagree: %g vs %g", pair[0], pair[1])
		}
	}
	// The global style reuses the muxed-output activity as its input-term
	// estimate, which double-counts select-induced churn; the measured
	// (local) input activity must therefore not exceed it by much.
	if el > eg*1.5 {
		t.Errorf("local (%g) implausibly above global (%g)", el, eg)
	}
}

func TestDeterministicReports(t *testing.T) {
	_, a1 := buildAnalyzed(t, StyleGlobal, 3000, 0)
	_, a2 := buildAnalyzed(t, StyleGlobal, 3000, 0)
	r1, r2 := a1.Report(), a2.Report()
	if r1.TotalEnergy != r2.TotalEnergy || r1.Cycles != r2.Cycles {
		t.Error("identical runs must produce identical reports")
	}
	if len(r1.Table) != len(r2.Table) {
		t.Fatal("table shapes differ")
	}
	for i := range r1.Table {
		if r1.Table[i] != r2.Table[i] {
			t.Errorf("row %d differs: %+v vs %+v", i, r1.Table[i], r2.Table[i])
		}
	}
}

func TestActivityRecording(t *testing.T) {
	sys, err := NewSystem(PaperSystem())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadPaperWorkload(1000); err != nil {
		t.Fatal(err)
	}
	an, err := Attach(sys, AnalyzerConfig{Style: StyleGlobal, RecordActivity: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(1000); err != nil {
		t.Fatal(err)
	}
	act := an.Activity()
	if act == nil {
		t.Fatal("activity store missing")
	}
	if act.BitChangeCount("HADDR") == 0 || act.BitChangeCount("HWDATA") == 0 {
		t.Error("bus signals recorded no activity")
	}
	if len(act.Report()) < 5 {
		t.Errorf("activity report too small: %d signals", len(act.Report()))
	}
}

func TestStyleNames(t *testing.T) {
	if StyleGlobal.String() != "global" || StyleLocal.String() != "local" || StylePrivate.String() != "private" {
		t.Error("style names")
	}
	if Style(7).String() == "" {
		t.Error("unknown style must format")
	}
}

func TestFormatters(t *testing.T) {
	if got := FormatEnergy(14.7e-12); got != "14.7 pJ" {
		t.Errorf("FormatEnergy=%q", got)
	}
	if got := FormatEnergy(839.6e-6); got != "840 uJ" {
		t.Errorf("FormatEnergy=%q", got)
	}
	if got := FormatPower(1.5e-3); got != "1.5 mW" {
		t.Errorf("FormatPower=%q", got)
	}
	if got := FormatEnergy(0); got != "0 J" {
		t.Errorf("FormatEnergy(0)=%q", got)
	}
	if got := FormatPower(2.5); got != "2.5 W" {
		t.Errorf("FormatPower=%q", got)
	}
	if got := FormatEnergy(3e-16); got != "0.3 fJ" {
		t.Errorf("FormatEnergy small=%q", got)
	}
	if got := FormatEnergy(5e-9); got != "5 nJ" {
		t.Errorf("FormatEnergy nano=%q", got)
	}
}

func TestReportFormattingSmoke(t *testing.T) {
	_, an := buildAnalyzed(t, StyleGlobal, 2000, 0)
	r := an.Report()
	if s := r.FormatTable(); len(s) == 0 || s[0] == 0 {
		t.Error("empty table")
	}
	if s := r.FormatBreakdown(); len(s) == 0 {
		t.Error("empty breakdown")
	}
	if s := r.FormatSummary(); len(s) == 0 {
		t.Error("empty summary")
	}
}
