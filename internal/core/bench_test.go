package core_test

import (
	"testing"

	"ahbpower/internal/core"
	"ahbpower/internal/metrics"
)

// benchAnalyzer runs the paper system for b.N bus cycles with the given
// analyzer integration style; the reported ns/op is the cost of one
// simulated bus cycle including the per-cycle power analysis.
func benchAnalyzer(b *testing.B, style core.Style, trace bool) {
	b.Helper()
	sys, err := core.NewSystem(core.PaperSystem())
	if err != nil {
		b.Fatal(err)
	}
	cycles := uint64(b.N)
	if err := sys.LoadPaperWorkload(cycles + 1000); err != nil {
		b.Fatal(err)
	}
	cfg := core.AnalyzerConfig{Style: style}
	var tr *metrics.Trace
	if trace {
		tr, err = metrics.NewTrace(metrics.TraceConfig{Window: 100e-9, PerBlock: true})
		if err != nil {
			b.Fatal(err)
		}
		cfg.Trace = tr
	}
	an, err := core.Attach(sys, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := sys.Run(cycles); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	rep := an.Report()
	if trace && tr.Energy() != rep.TotalEnergy {
		b.Fatalf("trace energy %g != report energy %g", tr.Energy(), rep.TotalEnergy)
	}
}

// BenchmarkAnalyzerGlobal measures the global-style per-cycle analysis
// cost (the default integration of the paper's Fig. 1).
func BenchmarkAnalyzerGlobal(b *testing.B) { benchAnalyzer(b, core.StyleGlobal, false) }

// BenchmarkAnalyzerLocal measures the local-style (per-port monitoring)
// per-cycle cost.
func BenchmarkAnalyzerLocal(b *testing.B) { benchAnalyzer(b, core.StyleLocal, false) }

// BenchmarkAnalyzerPrivate measures the private-style (signal watchers)
// per-cycle cost.
func BenchmarkAnalyzerPrivate(b *testing.B) { benchAnalyzer(b, core.StylePrivate, false) }

// BenchmarkAnalyzerTraced measures the global style with a streaming
// trace recorder attached to the sample stream — the batched publish
// path.
func BenchmarkAnalyzerTraced(b *testing.B) { benchAnalyzer(b, core.StyleGlobal, true) }
