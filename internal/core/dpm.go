package core

import (
	"fmt"

	"ahbpower/internal/power"
)

// DPMConfig enables the dynamic-power-management estimator — the run-time
// energy-optimization extension the paper's §4 anticipates ("unless it is
// necessary to develop a dynamic power management for a run-time energy
// optimization of the system"). The estimator is counterfactual: it does
// not change simulation behavior (the paper requires the power code
// "does not have to modify the system behavior"); instead it accounts the
// energy a clock-gating controller would have saved.
//
// Policy: after IdleThreshold consecutive idle (IDLE/IDLE_HO) cycles the
// datapath blocks (both multiplexers' registers and keepers) are gated;
// the arbiter stays awake to observe requests. Each wake-up costs
// WakeEnergy. Only the per-cycle clock-tree energy counts as saved:
// data-dependent switching observed during an idle window would still
// occur at wake-up, so crediting it would overstate savings.
type DPMConfig struct {
	IdleThreshold int
	WakeEnergy    float64 // joules per wake-up
}

// DPMEstimate is the accumulated what-if accounting.
type DPMEstimate struct {
	Config      DPMConfig
	GatedCycles uint64  // cycles the datapath would have spent gated
	Wakeups     uint64  // number of gating episodes that ended in a wake
	GrossSaved  float64 // datapath energy over gated cycles, joules
	WakeCost    float64 // total wake-up energy, joules
}

// NetSaved returns gross savings minus wake costs (may be negative for a
// too-eager policy).
func (d *DPMEstimate) NetSaved() float64 { return d.GrossSaved - d.WakeCost }

// SavingsPct returns the net savings as a percentage of total energy.
func (d *DPMEstimate) SavingsPct(total float64) float64 {
	if total <= 0 {
		return 0
	}
	return 100 * d.NetSaved() / total
}

// String summarizes the estimate.
func (d *DPMEstimate) String() string {
	return fmt.Sprintf("dpm(threshold=%d): gated=%d cycles, wakeups=%d, gross=%s, wake=%s, net=%s",
		d.Config.IdleThreshold, d.GatedCycles, d.Wakeups,
		FormatEnergy(d.GrossSaved), FormatEnergy(d.WakeCost), FormatEnergy(d.NetSaved()))
}

// dpmState is the per-analyzer streak tracker.
type dpmState struct {
	cfg    DPMConfig
	est    DPMEstimate
	streak int
	gated  bool
}

func newDPMState(cfg DPMConfig) *dpmState {
	if cfg.IdleThreshold < 1 {
		cfg.IdleThreshold = 1
	}
	return &dpmState{cfg: cfg, est: DPMEstimate{Config: cfg}}
}

// observe accounts one cycle: the activity state and the datapath energy
// (decoder + both muxes) of that cycle.
func (d *dpmState) observe(state power.State, datapathEnergy float64) {
	idle := state == power.Idle || state == power.IdleHO
	if idle {
		d.streak++
		if d.streak > d.cfg.IdleThreshold {
			// Gated from the cycle after the threshold is crossed.
			d.gated = true
			d.est.GatedCycles++
			d.est.GrossSaved += datapathEnergy
		}
		return
	}
	if d.gated {
		d.est.Wakeups++
		d.est.WakeCost += d.cfg.WakeEnergy
	}
	d.gated = false
	d.streak = 0
}

// estimate returns the accumulated estimate.
func (d *dpmState) estimate() DPMEstimate { return d.est }
