package core

import (
	"fmt"
	"sort"
	"strings"

	"ahbpower/internal/power"
	"ahbpower/internal/sim"
	"ahbpower/internal/stats"
)

// TableRow is one line of the paper's Table 1.
type TableRow struct {
	Instruction string
	Count       uint64
	AvgEnergy   float64 // joules per execution
	TotalEnergy float64 // joules
	Share       float64 // fraction of total simulation energy
}

// Report is the complete outcome of one analyzed simulation.
type Report struct {
	Style       Style
	Cycles      uint64
	SimSeconds  float64
	TotalEnergy float64 // joules
	AvgPower    float64 // watts

	Table []TableRow

	// Per-block energies and shares (Fig. 6).
	BlockEnergy map[string]float64
	BlockShare  map[string]float64

	// Energy class shares (the paper's §6 conclusion).
	DataTransferShare float64 // READ/WRITE <-> READ/WRITE instructions
	ArbitrationShare  float64 // instructions touching IDLE_HO
	IdleShare         float64 // everything else

	// Windowed power traces (Figs. 3-5), present when tracing was enabled.
	TraceTotal *stats.Series
	TraceM2S   *stats.Series
	TraceDEC   *stats.Series
	TraceARB   *stats.Series
	TraceS2M   *stats.Series
}

// Report finalizes and returns the analysis results.
func (a *Analyzer) Report() *Report {
	a.FlushSamples()
	var traces *ReportTraces
	if a.tTotal != nil {
		traces = &ReportTraces{Total: a.tTotal, M2S: a.tM2S, DEC: a.tDEC, ARB: a.tARB, S2M: a.tS2M}
	}
	return BuildReport(a.cfg.Style, a.sys.Bus.Clk.Period(), a.fsm.Cycles(), a.fsm.TotalEnergy(),
		a.fsm.Stats(), &a.bd, traces)
}

// ReportTraces bundles the per-block power windowers for BuildReport; nil
// means tracing was disabled.
type ReportTraces struct {
	Total, M2S, DEC, ARB, S2M *stats.Windower
}

// BuildReport assembles a Report from finalized accumulator state: the
// instruction-FSM stats, the block breakdown and the optional trace
// windowers. It is the single Report constructor shared by the analyzer
// and by the lane backend (which keeps its own FSM/breakdown accumulators
// but must produce structurally identical reports).
func BuildReport(style Style, period sim.Time, cycles uint64, totalEnergy float64,
	sts []power.InstructionStat, bd *power.Breakdown, traces *ReportTraces) *Report {
	r := &Report{
		Style:       style,
		Cycles:      cycles,
		TotalEnergy: totalEnergy,
		BlockEnergy: map[string]float64{},
		BlockShare:  map[string]float64{},
	}
	r.SimSeconds = float64(r.Cycles) * period.Seconds()
	if r.SimSeconds > 0 {
		r.AvgPower = r.TotalEnergy / r.SimSeconds
	}
	total := r.TotalEnergy
	for _, st := range sts {
		row := TableRow{
			Instruction: st.Instruction.String(),
			Count:       st.Count,
			AvgEnergy:   st.AverageEnergy(),
			TotalEnergy: st.Energy,
		}
		if total > 0 {
			row.Share = st.Energy / total
		}
		r.Table = append(r.Table, row)
		from, to := st.Instruction.From, st.Instruction.To
		isXfer := func(s power.State) bool { return s == power.Read || s == power.Write }
		switch {
		case from == power.IdleHO || to == power.IdleHO:
			r.ArbitrationShare += row.Share
		case isXfer(from) && isXfer(to):
			r.DataTransferShare += row.Share
		default:
			r.IdleShare += row.Share
		}
	}
	for _, b := range power.Blocks() {
		r.BlockEnergy[b.String()] = bd.Energy(b)
		r.BlockShare[b.String()] = bd.Share(b)
	}
	if traces != nil {
		r.TraceTotal = traces.Total.Series()
		r.TraceM2S = traces.M2S.Series()
		r.TraceDEC = traces.DEC.Series()
		r.TraceARB = traces.ARB.Series()
		r.TraceS2M = traces.S2M.Series()
	}
	return r
}

// FormatTable renders the report's instruction table in the layout of the
// paper's Table 1.
func (r *Report) FormatTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %10s %14s %14s %8s\n",
		"Instruction", "Count", "Avg energy", "Total energy", "%")
	for _, row := range r.Table {
		fmt.Fprintf(&b, "%-18s %10d %14s %14s %7.2f%%\n",
			row.Instruction, row.Count,
			FormatEnergy(row.AvgEnergy), FormatEnergy(row.TotalEnergy),
			100*row.Share)
	}
	fmt.Fprintf(&b, "%-18s %10d %14s %14s %7.2f%%\n",
		"Total", r.Cycles, "", FormatEnergy(r.TotalEnergy), 100.0)
	return b.String()
}

// FormatBreakdown renders the Fig. 6 sub-block contribution summary.
func (r *Report) FormatBreakdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %14s %8s\n", "Block", "Energy", "%")
	keys := make([]string, 0, len(r.BlockEnergy))
	for k := range r.BlockEnergy {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return r.BlockEnergy[keys[i]] > r.BlockEnergy[keys[j]] })
	for _, k := range keys {
		fmt.Fprintf(&b, "%-6s %14s %7.2f%%\n", k, FormatEnergy(r.BlockEnergy[k]), 100*r.BlockShare[k])
	}
	return b.String()
}

// FormatSummary renders the headline numbers.
func (r *Report) FormatSummary() string {
	return fmt.Sprintf(
		"style=%s cycles=%d sim=%.3gs energy=%s avg-power=%s\n"+
			"data-transfer=%.2f%% arbitration=%.2f%% idle=%.2f%%",
		r.Style, r.Cycles, r.SimSeconds, FormatEnergy(r.TotalEnergy), FormatPower(r.AvgPower),
		100*r.DataTransferShare, 100*r.ArbitrationShare, 100*r.IdleShare)
}

// FormatEnergy renders joules with an engineering prefix.
func FormatEnergy(j float64) string {
	return engFormat(j, "J")
}

// FormatPower renders watts with an engineering prefix.
func FormatPower(w float64) string {
	return engFormat(w, "W")
}

func engFormat(v float64, unit string) string {
	abs := v
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs == 0:
		return "0 " + unit
	case abs >= 1:
		return fmt.Sprintf("%.3g %s", v, unit)
	case abs >= 1e-3:
		return fmt.Sprintf("%.3g m%s", v*1e3, unit)
	case abs >= 1e-6:
		return fmt.Sprintf("%.3g u%s", v*1e6, unit)
	case abs >= 1e-9:
		return fmt.Sprintf("%.3g n%s", v*1e9, unit)
	case abs >= 1e-12:
		return fmt.Sprintf("%.3g p%s", v*1e12, unit)
	default:
		return fmt.Sprintf("%.3g f%s", v*1e15, unit)
	}
}
