package core

import (
	"math"
	"testing"

	"ahbpower/internal/topo"
)

// runPaperPath builds the paper system through one of the two API
// generations, loads the paper workload and returns the total energy.
func runPaperPath(t *testing.T, build func() (*System, error), cycles uint64) (float64, *System) {
	t.Helper()
	sys, err := build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := sys.LoadPaperWorkload(cycles); err != nil {
		t.Fatalf("workload: %v", err)
	}
	an, err := Attach(sys, AnalyzerConfig{Style: StyleGlobal})
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	if err := sys.Run(cycles); err != nil {
		t.Fatalf("run: %v", err)
	}
	return an.Report().TotalEnergy, sys
}

// TestGoldenCountVsTopologyPaperSystem is the canonicalization contract
// of the API redesign: the count-based paper configuration and its
// explicit declarative-topology twin must build byte-identical
// simulations — the total energies agree to the last bit, not within a
// tolerance.
func TestGoldenCountVsTopologyPaperSystem(t *testing.T) {
	const cycles = 2500
	twin := topo.Topology{
		Masters: []topo.Master{{}, {}, {Default: true}},
		Slaves: []topo.Slave{
			{Regions: []topo.AddrRange{{Start: 0x0000, Size: 0x1000}}},
			{Regions: []topo.AddrRange{{Start: 0x1000, Size: 0x1000}}},
			{Regions: []topo.AddrRange{{Start: 0x2000, Size: 0x1000}}},
		},
	}
	eCounts, sysCounts := runPaperPath(t, func() (*System, error) { return NewSystem(PaperSystem()) }, cycles)
	eTopo, sysTopo := runPaperPath(t, func() (*System, error) { return NewSystemTopo(twin) }, cycles)
	if math.Float64bits(eCounts) != math.Float64bits(eTopo) {
		t.Fatalf("energies diverge: counts=%.17g J topo=%.17g J", eCounts, eTopo)
	}
	if eCounts <= 0 {
		t.Fatal("paper run produced no energy")
	}
	// The canonical topologies themselves must agree, since CanonicalKey
	// hashes them.
	ct, tt := PaperSystem().Topology(), twin.Canonical()
	if len(ct.Masters) != len(tt.Masters) || len(ct.Slaves) != len(tt.Slaves) ||
		ct.ClockPeriodPS != tt.ClockPeriodPS || ct.Policy != tt.Policy {
		t.Errorf("canonical forms differ:\ncounts: %+v\ntopo:   %+v", ct, tt)
	}
	// And the monitors must have seen identical traffic.
	cc, tc := sysCounts.Monitor.Counts(), sysTopo.Monitor.Counts()
	for k, v := range cc {
		if tc[k] != v {
			t.Errorf("monitor %q: counts=%d topo=%d", k, v, tc[k])
		}
	}
}

// TestNewSystemTopoRejectsWithValidationError pins the builder's error
// contract: invalid topologies come back as *topo.ValidationError with
// typed codes, the value the serving layer turns into structured 400s.
func TestNewSystemTopoRejectsWithValidationError(t *testing.T) {
	bad := topo.Topology{
		Masters: []topo.Master{{}},
		Slaves: []topo.Slave{
			{Regions: []topo.AddrRange{{Start: 0, Size: 0x1000}}},
			{Regions: []topo.AddrRange{{Start: 0x0800, Size: 0x1000}}},
		},
	}
	_, err := NewSystemTopo(bad)
	ve, ok := err.(*topo.ValidationError)
	if !ok {
		t.Fatalf("want *topo.ValidationError, got %T (%v)", err, err)
	}
	found := false
	for _, e := range ve.Errors {
		if e.Code == topo.ErrAddrOverlap {
			found = true
		}
	}
	if !found {
		t.Errorf("want %s in %+v", topo.ErrAddrOverlap, ve.Errors)
	}
}

// TestNewSystemTopoNonUniform builds a shape the count-based API cannot
// express and checks the decoder honors the explicit map.
func TestNewSystemTopoNonUniform(t *testing.T) {
	tp := topo.Topology{
		Masters: []topo.Master{{}, {Default: true}},
		Slaves: []topo.Slave{
			{Waits: 0, Regions: []topo.AddrRange{{Start: 0x0000, Size: 0x2000}}},
			{Waits: 3, Regions: []topo.AddrRange{{Start: 0x2000, Size: 0x400}, {Start: 0x2800, Size: 0x400}}},
		},
	}
	sys, err := NewSystemTopo(tp)
	if err != nil {
		t.Fatalf("NewSystemTopo: %v", err)
	}
	if len(sys.Slaves) != 2 || len(sys.Masters) != 1 || sys.Default == nil {
		t.Fatalf("built shape: %d slaves, %d masters, default=%v", len(sys.Slaves), len(sys.Masters), sys.Default != nil)
	}
	regions := sys.Bus.Cfg.Regions
	if len(regions) != 3 {
		t.Fatalf("decoder regions=%d, want 3 (one slave owns two)", len(regions))
	}
	if regions[2].Slave != 1 || regions[2].Start != 0x2800 {
		t.Errorf("region 2 = %+v, want slave 1 at 0x2800", regions[2])
	}
}
