package core

import (
	"strings"
	"testing"

	"ahbpower/internal/workload"
)

func TestDPMDisabledByDefault(t *testing.T) {
	_, an := buildAnalyzed(t, StyleGlobal, 1000, 0)
	if an.DPM() != nil {
		t.Error("DPM estimate must be nil when not configured")
	}
}

func TestDPMObservesGapsAndWakes(t *testing.T) {
	sys, err := NewSystem(PaperSystem())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadPaperWorkload(8000); err != nil {
		t.Fatal(err)
	}
	an, err := Attach(sys, AnalyzerConfig{
		Style: StyleGlobal,
		DPM:   &DPMConfig{IdleThreshold: 4, WakeEnergy: 10e-12},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(8000); err != nil {
		t.Fatal(err)
	}
	est := an.DPM()
	if est == nil {
		t.Fatal("estimate missing")
	}
	if est.GatedCycles == 0 {
		t.Error("gap-heavy workload must produce gated cycles")
	}
	if est.Wakeups == 0 {
		t.Error("gating episodes must end in wakeups")
	}
	if est.GrossSaved <= 0 {
		t.Error("gated cycles must save gross energy")
	}
	if est.WakeCost != float64(est.Wakeups)*10e-12 {
		t.Errorf("wake cost %g inconsistent with %d wakeups", est.WakeCost, est.Wakeups)
	}
	if got := est.NetSaved(); got != est.GrossSaved-est.WakeCost {
		t.Errorf("NetSaved=%g", got)
	}
	total := an.Report().TotalEnergy
	if pct := est.SavingsPct(total); pct <= 0 || pct > 50 {
		t.Errorf("savings=%.2f%%, implausible", pct)
	}
	if !strings.Contains(est.String(), "threshold=4") {
		t.Error("String must mention the threshold")
	}
}

func TestDPMThresholdClamped(t *testing.T) {
	d := newDPMState(DPMConfig{IdleThreshold: 0})
	if d.cfg.IdleThreshold != 1 {
		t.Errorf("threshold clamped to %d, want 1", d.cfg.IdleThreshold)
	}
}

func TestDPMSavingsPctZeroTotal(t *testing.T) {
	est := DPMEstimate{GrossSaved: 1}
	if est.SavingsPct(0) != 0 {
		t.Error("zero total must yield zero percentage")
	}
}

func TestLoadWorkloadPerMaster(t *testing.T) {
	sys, err := NewSystem(PaperSystem())
	if err != nil {
		t.Fatal(err)
	}
	cfg0 := workload.PaperTestbench(0, 3)
	cfg1 := workload.PaperTestbench(1, 3)
	cfg1.Pattern = workload.PatternCounter
	if err := sys.LoadWorkload(cfg0, cfg1); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(3000); err != nil {
		t.Fatal(err)
	}
	if sys.Masters[0].Stats().Beats == 0 || sys.Masters[1].Stats().Beats == 0 {
		t.Error("both masters must transfer")
	}
}

func TestLoadWorkloadSingleConfigFansOut(t *testing.T) {
	sys, err := NewSystem(PaperSystem())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadWorkload(workload.PaperTestbench(0, 3)); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(2000); err != nil {
		t.Fatal(err)
	}
	// Both masters got traffic (the second with a shifted seed).
	if sys.Masters[0].Stats().Beats == 0 || sys.Masters[1].Stats().Beats == 0 {
		t.Error("single config must fan out to all masters")
	}
}

func TestLoadWorkloadEmptyFails(t *testing.T) {
	sys, err := NewSystem(PaperSystem())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadWorkload(); err == nil {
		t.Error("no configs must fail")
	}
}

func TestLoadWorkloadBadConfigFails(t *testing.T) {
	sys, err := NewSystem(PaperSystem())
	if err != nil {
		t.Fatal(err)
	}
	bad := workload.PaperTestbench(0, 3)
	bad.PairsMin = 0
	if err := sys.LoadWorkload(bad); err == nil {
		t.Error("invalid workload must fail")
	}
}
