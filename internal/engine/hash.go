package engine

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// hashVersion tags the canonical encoding. Bump it whenever a field is
// added to the encoding or its meaning changes, so stale cache entries
// keyed by an older scheme can never be returned for a new scenario.
// v2: fault plans and per-scenario timeouts joined the encoding.
// v3: the system shape is encoded as its canonical topology (masters,
// slaves, explicit address regions, per-master workload hints) instead
// of the raw count-based fields, so a count-based scenario and its
// declarative topology twin hash to the same key.
// v4: the normalized accuracy class joined the encoding — transaction
// estimates are approximate by contract and must never answer (or be
// answered by) a cycle-accurate cache entry. "" and "cycle" stay one key.
const hashVersion = "ahbpower/engine.Scenario/v4"

// CanonicalKey returns a content-addressed key for the scenario: the
// hex SHA-256 of a canonical binary encoding of every field that can
// affect the simulation outcome. Because batches are deterministic —
// each scenario builds an isolated kernel and system, workloads are
// seeded PRNG streams and parallel sweeps reproduce serial ones byte
// for byte — two scenarios with the same key produce identical Results,
// which is what makes the key usable as a result-cache address.
//
// ok is false when the scenario is not canonicalizable: a Setup hook,
// KeepSystem, caller-supplied Models or an attached Trace all inject
// state the encoding cannot see, so such scenarios must never be cached.
func (sc *Scenario) CanonicalKey() (key string, ok bool) {
	if sc.Setup != nil || sc.KeepSystem {
		return "", false
	}
	if !sc.SkipAnalyzer && (sc.Analyzer.Models != nil || sc.Analyzer.Trace != nil) {
		return "", false
	}
	h := sha256.New()
	e := hashEnc{h: h}
	e.str(hashVersion)
	e.str(sc.Name)
	// Normalized, so the "" and explicit-"cycle" spellings of the exact
	// class share one cache line; "transaction" separates. The backend
	// hint stays excluded: it never changes the computed result, the
	// accuracy class does.
	e.str(NormalizeAccuracy(sc.Accuracy))

	// The system shape is hashed in its canonical topology form — the
	// exact value NewSystemTopo builds — so the two API generations
	// (count-based System, declarative Topo) address the same cache line
	// whenever they describe the same system. Names are included: they
	// ride along in the Result echo, and cached responses must be
	// byte-identical to fresh ones.
	t := sc.Topology()
	e.str(t.Name)
	e.u64(t.ClockPeriodPS)
	e.i64(int64(t.DataWidth))
	e.str(t.Policy)
	e.u64(uint64(len(t.Masters)))
	for _, m := range t.Masters {
		e.str(m.Name)
		e.bool(m.Default)
		e.bool(m.Workload != nil)
		if m.Workload != nil {
			w := m.Workload
			e.i64(w.Seed)
			e.i64(int64(w.Sequences))
			e.i64(int64(w.PairsMin))
			e.i64(int64(w.PairsMax))
			e.i64(int64(w.IdleMin))
			e.i64(int64(w.IdleMax))
			e.u64(uint64(w.AddrBase))
			e.u64(uint64(w.AddrSize))
			e.u64(uint64(w.LocalityWindow))
			e.str(w.Pattern)
			e.i64(int64(w.BurstBeats))
		}
	}
	e.u64(uint64(len(t.Slaves)))
	for _, s := range t.Slaves {
		e.str(s.Name)
		e.i64(int64(s.Waits))
		e.u64(uint64(len(s.Regions)))
		for _, r := range s.Regions {
			e.u64(uint64(r.Start))
			e.u64(uint64(r.Size))
		}
	}

	e.bool(sc.SkipAnalyzer)
	if !sc.SkipAnalyzer {
		an := sc.Analyzer
		e.u64(uint64(an.Style))
		e.f64(an.Tech.VDD)
		e.f64(an.Tech.CPD)
		e.f64(an.Tech.CO)
		e.f64(an.TraceWindow)
		e.bool(an.RecordActivity)
		e.bool(an.DPM != nil)
		if an.DPM != nil {
			e.i64(int64(an.DPM.IdleThreshold))
			e.f64(an.DPM.WakeEnergy)
		}
	}

	e.u64(uint64(len(sc.Workloads)))
	for _, w := range sc.Workloads {
		e.i64(w.Seed)
		e.i64(int64(w.NumSequences))
		e.i64(int64(w.PairsMin))
		e.i64(int64(w.PairsMax))
		e.i64(int64(w.IdleMin))
		e.i64(int64(w.IdleMax))
		e.u64(uint64(w.AddrBase))
		e.u64(uint64(w.AddrSize))
		e.u64(uint64(w.LocalityWindow))
		e.u64(uint64(w.Pattern))
		e.i64(int64(w.BurstBeats))
	}
	e.u64(sc.Cycles)
	e.i64(int64(sc.Timeout))

	e.bool(sc.Faults != nil)
	if sc.Faults != nil {
		p := sc.Faults
		e.i64(p.Seed)
		e.i64(int64(p.FailFirst))
		e.u64(uint64(len(p.Rules)))
		for _, r := range p.Rules {
			e.u64(uint64(r.Kind))
			e.i64(int64(r.Slave))
			e.i64(int64(r.Master))
			e.f64(r.Prob)
			e.i64(int64(r.Count))
			e.i64(int64(r.Retries))
			e.i64(int64(r.Waits))
			e.i64(int64(r.Hold))
			e.u64(uint64(r.Mask))
		}
	}
	return hex.EncodeToString(h.Sum(nil)), true
}

// hashEnc writes fixed-width, tag-free values into a hash. Strings are
// length-prefixed so concatenations cannot collide.
type hashEnc struct {
	h   interface{ Write(p []byte) (int, error) }
	buf [8]byte
}

func (e *hashEnc) u64(v uint64) {
	binary.LittleEndian.PutUint64(e.buf[:], v)
	e.h.Write(e.buf[:])
}

func (e *hashEnc) i64(v int64) { e.u64(uint64(v)) }

func (e *hashEnc) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *hashEnc) bool(v bool) {
	if v {
		e.u64(1)
	} else {
		e.u64(0)
	}
}

func (e *hashEnc) str(s string) {
	e.u64(uint64(len(s)))
	e.h.Write([]byte(s))
}
