package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ahbpower/internal/core"
	"ahbpower/internal/exec"
	"ahbpower/internal/fault"
	"ahbpower/internal/workload"
)

// laneScenario builds a lane-eligible scenario on the paper system with a
// small explicit workload (implicit paper workloads are sized from Cycles
// and must not be combined with huge cycle counts).
func laneScenario(name string, seed int64) Scenario {
	return Scenario{
		Name:     name,
		System:   core.PaperSystem(),
		Analyzer: core.AnalyzerConfig{Style: core.StyleGlobal},
		Workloads: []workload.Config{
			{Seed: seed, NumSequences: 12, PairsMin: 2, PairsMax: 5, AddrSize: 0x4000},
		},
		Cycles:  1200,
		Backend: exec.NameLanes,
	}
}

// planString renders a job plan compactly: "s2" is a per-scenario job,
// "p[0 3 4]" a lane pack.
func planString(jobs []runJob) string {
	var b strings.Builder
	for _, j := range jobs {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		if j.pack == nil {
			fmt.Fprintf(&b, "s%d", j.index)
		} else {
			fmt.Fprintf(&b, "p%v", j.pack)
		}
	}
	return b.String()
}

// TestScheduleLanesIneligible drives every per-scenario eligibility gate:
// each mutated scenario must stay a per-scenario job next to a packed
// eligible one.
func TestScheduleLanesIneligible(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Scenario)
	}{
		{"other-backend", func(sc *Scenario) { sc.Backend = exec.NameCompiled }},
		{"default-backend", func(sc *Scenario) { sc.Backend = "" }},
		{"setup-hook", func(sc *Scenario) { sc.Setup = func(*core.System) error { return nil } }},
		{"keep-system", func(sc *Scenario) { sc.KeepSystem = true }},
		{"timeout", func(sc *Scenario) { sc.Timeout = time.Second }},
		{"fault-plan", func(sc *Scenario) { sc.Faults = &fault.Plan{FailFirst: 1} }},
		{"zero-cycles", func(sc *Scenario) { sc.Cycles = 0 }},
		{"private-style", func(sc *Scenario) { sc.Analyzer.Style = core.StylePrivate }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			other := laneScenario("other", 2)
			tc.mut(&other)
			plan := scheduleLanes([]Scenario{laneScenario("ok", 1), other})
			if got := planString(plan); got != "p[0] s1" {
				t.Fatalf("plan = %q, want %q", got, "p[0] s1")
			}
		})
	}
}

// TestScheduleLanesGrouping checks structural grouping: compatible
// eligible scenarios share a pack placed at their first member's slot,
// structurally different ones get their own pack, ineligible ones stay
// per-scenario jobs in input order.
func TestScheduleLanesGrouping(t *testing.T) {
	a0 := laneScenario("a0", 1)
	bad := laneScenario("bad", 2)
	bad.Setup = func(*core.System) error { return nil }
	a1 := laneScenario("a1", 3)
	wide := laneScenario("wide", 4)
	wide.System.NumSlaves = 4
	a2 := laneScenario("a2", 5)
	ev := laneScenario("ev", 6)
	ev.Backend = exec.NameEvent

	plan := scheduleLanes([]Scenario{a0, bad, a1, wide, a2, ev})
	want := "p[0 2 4] s1 p[3] s5"
	if got := planString(plan); got != want {
		t.Fatalf("plan = %q, want %q", got, want)
	}

	// A batch with no lanes hint keeps the trivial one-job-per-scenario plan.
	trivial := scheduleLanes([]Scenario{ev, ev})
	if got := planString(trivial); got != "s0 s1" {
		t.Fatalf("trivial plan = %q, want %q", got, "s0 s1")
	}
}

// TestScheduleLanesSpillover packs 65 compatible scenarios as a full
// 64-lane pack plus a spillover pack of one, with a trailing ineligible
// scenario kept per-scenario.
func TestScheduleLanesSpillover(t *testing.T) {
	var scs []Scenario
	for i := 0; i < 65; i++ {
		scs = append(scs, laneScenario(fmt.Sprintf("s%02d", i), int64(i)))
	}
	tail := laneScenario("tail", 99)
	tail.KeepSystem = true
	scs = append(scs, tail)

	plan := scheduleLanes(scs)
	if len(plan) != 3 {
		t.Fatalf("got %d jobs (%s), want 3", len(plan), planString(plan))
	}
	if len(plan[0].pack) != 64 || plan[0].pack[0] != 0 || plan[0].pack[63] != 63 {
		t.Errorf("first pack = %v, want lanes 0..63", plan[0].pack)
	}
	if len(plan[1].pack) != 1 || plan[1].pack[0] != 64 {
		t.Errorf("spillover pack = %v, want [64]", plan[1].pack)
	}
	if plan[2].pack != nil || plan[2].index != 65 {
		t.Errorf("tail job = %+v, want per-scenario job 65", plan[2])
	}
}

// assertLaneResult compares a lane-executed result against the event
// reference bit-for-bit.
func assertLaneResult(t *testing.T, name string, lr, ev Result) {
	t.Helper()
	if lr.Err != nil {
		t.Fatalf("%s: lane result error: %v", name, lr.Err)
	}
	if lr.Beats != ev.Beats {
		t.Errorf("%s: Beats lane=%d event=%d", name, lr.Beats, ev.Beats)
	}
	if !reflect.DeepEqual(lr.Counts, ev.Counts) {
		t.Errorf("%s: Counts diverge:\nlane:  %v\nevent: %v", name, lr.Counts, ev.Counts)
	}
	if !reflect.DeepEqual(lr.Violations, ev.Violations) {
		t.Errorf("%s: Violations diverge", name)
	}
	if !reflect.DeepEqual(lr.Stats, ev.Stats) {
		t.Errorf("%s: Stats diverge:\nlane:  %+v\nevent: %+v", name, lr.Stats, ev.Stats)
	}
	if (lr.Report == nil) != (ev.Report == nil) {
		t.Fatalf("%s: Report presence lane=%v event=%v", name, lr.Report != nil, ev.Report != nil)
	}
	if lr.Report != nil {
		lb, eb := math.Float64bits(lr.Report.TotalEnergy), math.Float64bits(ev.Report.TotalEnergy)
		if lb != eb {
			t.Errorf("%s: TotalEnergy bits lane=%#x event=%#x", name, lb, eb)
		}
		if !reflect.DeepEqual(lr.Report, ev.Report) {
			t.Errorf("%s: Report diverges", name)
		}
	}
}

// TestRunnerLanePacking runs a mixed batch — six pack-compatible lane
// scenarios, two structurally different ones, one ineligible fallback —
// and checks backend attribution, pack occupancy, hook accounting and
// bit-identity against per-scenario event runs.
func TestRunnerLanePacking(t *testing.T) {
	var scs []Scenario
	for i := 0; i < 6; i++ {
		scs = append(scs, laneScenario(fmt.Sprintf("a%d", i), int64(10+i)))
	}
	for i := 0; i < 2; i++ {
		w := laneScenario(fmt.Sprintf("w%d", i), int64(20+i))
		w.System.NumSlaves = 4
		scs = append(scs, w)
	}
	fb := laneScenario("fb", 30)
	fb.Setup = func(*core.System) error { return nil }
	scs = append(scs, fb)

	r := NewRunner(3)
	var started, done atomic.Int32
	r.OnStart = func(int) { started.Add(1) }
	r.OnDone = func(Result) { done.Add(1) }
	results := r.Run(context.Background(), scs)

	if s, d := started.Load(), done.Load(); s != int32(len(scs)) || d != int32(len(scs)) {
		t.Errorf("hooks: started=%d done=%d, want %d each", s, d, len(scs))
	}
	for i, res := range results {
		if res.Index != i || res.Err != nil {
			t.Fatalf("result %d (%s): index=%d err=%v", i, res.Scenario.Name, res.Index, res.Err)
		}
		wantLanes := 0
		switch {
		case i < 6:
			wantLanes = 6
		case i < 8:
			wantLanes = 2
		}
		if wantLanes > 0 {
			if res.Backend != exec.NameLanes || res.Lanes != wantLanes || res.BackendFallback != "" {
				t.Errorf("%s: backend=%q lanes=%d fallback=%q, want lanes backend with %d lanes",
					res.Scenario.Name, res.Backend, res.Lanes, res.BackendFallback, wantLanes)
			}
		} else {
			if res.Backend != exec.NameEvent || res.Lanes != 0 || res.BackendFallback != "custom Setup hook" {
				t.Errorf("%s: backend=%q lanes=%d fallback=%q, want event fallback for the Setup hook",
					res.Scenario.Name, res.Backend, res.Lanes, res.BackendFallback)
			}
		}
		ev := scs[i]
		ev.Backend = exec.NameEvent
		ev.Setup = nil
		evRes := RunOne(context.Background(), ev)
		if evRes.Err != nil {
			t.Fatalf("event reference %s: %v", ev.Name, evRes.Err)
		}
		assertLaneResult(t, res.Scenario.Name, res, evRes)
	}
}

// TestRunOneLaneBackend covers the single-scenario path: an eligible
// lanes hint runs as a one-lane pack, an ineligible one falls back to the
// event backend with the reason surfaced.
func TestRunOneLaneBackend(t *testing.T) {
	sc := laneScenario("solo", 7)
	res := RunOne(context.Background(), sc)
	if res.Err != nil {
		t.Fatalf("lane run: %v", res.Err)
	}
	if res.Backend != exec.NameLanes || res.Lanes != 1 {
		t.Fatalf("backend=%q lanes=%d, want single-lane pack", res.Backend, res.Lanes)
	}
	ev := sc
	ev.Backend = exec.NameEvent
	assertLaneResult(t, "solo", res, RunOne(context.Background(), ev))

	to := laneScenario("timeout", 8)
	to.Timeout = time.Minute
	fbRes := RunOne(context.Background(), to)
	if fbRes.Err != nil {
		t.Fatalf("fallback run: %v", fbRes.Err)
	}
	if fbRes.Backend != exec.NameEvent || fbRes.BackendFallback != "per-scenario timeout" {
		t.Fatalf("backend=%q fallback=%q, want event with surfaced timeout reason",
			fbRes.Backend, fbRes.BackendFallback)
	}
}

// TestRunnerLanePackCancellation cancels a two-lane pack after the short
// lane retired but long before the (practically unbounded) second lane
// could: the retired lane keeps its full result, the unfinished one fails
// with a canceled-classed ScenarioError.
func TestRunnerLanePackCancellation(t *testing.T) {
	short := laneScenario("short", 1)
	short.Cycles = 100
	long := laneScenario("long", 2)
	long.Cycles = 1 << 40

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r := NewRunner(1)
	var results []Result
	doneCh := make(chan struct{})
	go func() {
		results = r.Run(ctx, []Scenario{short, long})
		close(doneCh)
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	<-doneCh

	if results[0].Err != nil {
		t.Fatalf("short lane lost its result: %v", results[0].Err)
	}
	if results[0].Backend != exec.NameLanes || results[0].Lanes != 2 {
		t.Errorf("short lane: backend=%q lanes=%d, want lanes/2", results[0].Backend, results[0].Lanes)
	}
	ev := short
	ev.Backend = exec.NameEvent
	assertLaneResult(t, "short", results[0], RunOne(context.Background(), ev))

	var se *ScenarioError
	if !errors.As(results[1].Err, &se) || se.Class != ClassCanceled {
		t.Fatalf("long lane err = %v, want canceled-classed ScenarioError", results[1].Err)
	}
	if !errors.Is(results[1].Err, context.Canceled) {
		t.Errorf("long lane err should wrap context.Canceled, got %v", results[1].Err)
	}
}
