package engine

import (
	"context"
	"fmt"
	"time"

	"ahbpower/internal/metrics"
	"ahbpower/internal/tlm"
)

// Accuracy classes a Scenario can request. Unlike backend hints, the
// accuracy class changes what is computed, so it is part of the result
// identity (CanonicalKey).
const (
	// AccuracyCycle is the exact cycle-accurate simulation; "" means the
	// same thing (the default).
	AccuracyCycle = "cycle"
	// AccuracyTransaction is the calibrated transaction-level estimate
	// (internal/tlm): approximate by contract, an order of magnitude
	// faster.
	AccuracyTransaction = "transaction"
)

// ValidAccuracy reports whether a scenario accuracy value is known. The
// empty string is valid and means AccuracyCycle.
func ValidAccuracy(a string) bool {
	switch a {
	case "", AccuracyCycle, AccuracyTransaction:
		return true
	}
	return false
}

// NormalizeAccuracy folds the empty default onto AccuracyCycle, so the
// two spellings of the exact class compare (and hash) equal.
func NormalizeAccuracy(a string) string {
	if a == "" {
		return AccuracyCycle
	}
	return a
}

// TLMTraits derives the transaction-level eligibility traits of the
// scenario (see tlm.Traits), the estimator's analog of ExecTraits.
func (sc *Scenario) TLMTraits() tlm.Traits {
	return tlm.Traits{
		HasFaults:        sc.Faults != nil,
		HasSetup:         sc.Setup != nil,
		KeepSystem:       sc.KeepSystem,
		SkipAnalyzer:     sc.SkipAnalyzer,
		HasDPM:           !sc.SkipAnalyzer && sc.Analyzer.DPM != nil,
		HasTraceWindow:   !sc.SkipAnalyzer && sc.Analyzer.TraceWindow > 0,
		RecordActivity:   !sc.SkipAnalyzer && sc.Analyzer.RecordActivity,
		HasTraceRecorder: !sc.SkipAnalyzer && sc.Analyzer.Trace != nil,
	}
}

// executeTLMAttempt runs one scenario through the transaction-level
// estimator. The caller has already checked eligibility via TLMTraits.
func executeTLMAttempt(ctx context.Context, index int, sc Scenario, attempt int) (res Result) {
	res = Result{
		Index:    index,
		Scenario: sc,
		Attempts: attempt + 1,
		Backend:  tlm.Name,
		Accuracy: AccuracyTransaction,
	}
	defer func() {
		if p := recover(); p != nil {
			res.Err = fmt.Errorf("engine: scenario %q panicked: %v", sc.Name, p)
		}
	}()
	if sc.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, sc.Timeout)
		defer cancel()
	}
	buildStart := time.Now()
	spec := tlm.Spec{
		Name:      sc.Name,
		Topo:      sc.Topology(),
		Analyzer:  sc.Analyzer,
		Workloads: sc.Workloads,
		Cycles:    sc.Cycles,
	}
	out, err := tlm.Estimate(ctx, spec)
	if err != nil {
		res.Err = fmt.Errorf("engine: scenario %q: %w", sc.Name, err)
		return res
	}
	elapsed := time.Since(buildStart)
	res.RunDuration = elapsed
	// Only the calibration prefix actually turned the kernel over; the
	// rest of the horizon was estimated, which is the whole point — the
	// throughput figure reflects estimated cycles per wall-clock second.
	res.Metrics = metrics.NewRunMetrics(out.Cycles, 0, 0, elapsed)
	res.Report = out.Report
	res.Stats = out.Stats
	res.Beats = out.Beats
	res.Counts = out.Counts
	return res
}
