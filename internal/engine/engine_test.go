package engine

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"ahbpower/internal/amba/ahb"
	"ahbpower/internal/core"
)

// testScenarios builds a small mixed batch exercising several grid axes.
func testScenarios(cycles uint64) []Scenario {
	g := Grid{
		Base:     core.PaperSystem(),
		Analyzer: core.AnalyzerConfig{Style: core.StyleGlobal},
		Cycles:   cycles,
		Slaves:   []int{2, 3},
		Widths:   []int{16, 32},
		Policies: []ahb.ArbPolicy{ahb.PolicySticky, ahb.PolicyRoundRobin},
	}
	return g.Scenarios()
}

// renderBatch renders a batch of results to one canonical string, the way
// a sweep report would.
func renderBatch(t *testing.T, results []Result) string {
	t.Helper()
	var b strings.Builder
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("scenario %q failed: %v", r.Scenario.Name, r.Err)
		}
		b.WriteString(r.Scenario.Name)
		b.WriteString("\n")
		b.WriteString(r.Report.FormatTable())
		b.WriteString(r.Report.FormatBreakdown())
		b.WriteString(r.Report.FormatSummary())
		b.WriteString("\n")
	}
	return b.String()
}

func TestParallelMatchesSerialByteForByte(t *testing.T) {
	scs := testScenarios(1500)
	serial := NewRunner(1).Run(context.Background(), scs)
	parallel := NewRunner(4).Run(context.Background(), scs)
	if len(serial) != len(scs) || len(parallel) != len(scs) {
		t.Fatalf("result counts: serial=%d parallel=%d, want %d", len(serial), len(parallel), len(scs))
	}
	s, p := renderBatch(t, serial), renderBatch(t, parallel)
	if s != p {
		t.Errorf("parallel sweep diverges from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", s, p)
	}
	for i, r := range parallel {
		if r.Index != i {
			t.Errorf("result %d carries index %d: ordering must be deterministic", i, r.Index)
		}
	}
}

func TestScenarioErrorDoesNotKillSweep(t *testing.T) {
	good := core.PaperSystem()
	bad := core.PaperSystem()
	bad.NumActiveMasters = 0 // invalid: construction must fail
	scs := []Scenario{
		{Name: "ok-a", System: good, Cycles: 500},
		{Name: "broken", System: bad, Cycles: 500},
		{Name: "no-cycles", System: good, Cycles: 0},
		{Name: "ok-b", System: good, Cycles: 500},
	}
	results := NewRunner(2).Run(context.Background(), scs)
	if results[0].Err != nil || results[0].Report == nil {
		t.Errorf("ok-a must succeed: %v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Error("broken scenario must report its error")
	}
	if results[2].Err == nil {
		t.Error("zero-cycle scenario must report its error")
	}
	if results[3].Err != nil || results[3].Report == nil {
		t.Errorf("ok-b must succeed despite earlier failures: %v", results[3].Err)
	}
}

func TestPanicCapturedAsError(t *testing.T) {
	sc := Scenario{
		Name:   "panics",
		System: core.PaperSystem(),
		Cycles: 100,
		Setup:  func(*core.System) error { panic("boom") },
	}
	res := RunOne(context.Background(), sc)
	if res.Err == nil || !strings.Contains(res.Err.Error(), "panicked") {
		t.Fatalf("panic must surface as an error, got %v", res.Err)
	}
}

func TestCancellationAbandonsQueuedScenarios(t *testing.T) {
	// One worker, several scenarios, cancel while the first is being set
	// up: the in-flight scenario must stop mid-run (RunContext) and the
	// queued remainder must come back promptly with the context error.
	ctx, cancel := context.WithCancel(context.Background())
	scs := make([]Scenario, 6)
	for i := range scs {
		scs[i] = Scenario{Name: "sc", System: core.PaperSystem(), Cycles: 2000}
	}
	scs[0].Setup = func(*core.System) error {
		cancel() // fires while scenario 0 is running
		return nil
	}
	start := time.Now()
	results := NewRunner(1).Run(ctx, scs)
	elapsed := time.Since(start)
	if !errors.Is(results[0].Err, context.Canceled) {
		t.Errorf("in-flight scenario must be cancelled mid-run, got %v", results[0].Err)
	}
	abandoned := 0
	for _, r := range results[1:] {
		if r.Err == context.Canceled {
			abandoned++
		}
	}
	if abandoned == 0 {
		t.Error("cancellation must abandon queued scenarios with ctx.Err()")
	}
	// Generous bound: abandoning must not simulate the remaining scenarios.
	if elapsed > 30*time.Second {
		t.Errorf("cancellation took %v; queued scenarios were not abandoned promptly", elapsed)
	}
}

func TestCancellationStopsSingleScenarioMidRun(t *testing.T) {
	// A single long scenario cancelled from inside the simulation (a
	// kernel event stands in for Ctrl-C) must stop near the cancellation
	// point instead of running its full cycle count.
	ctx, cancel := context.WithCancel(context.Background())
	const cycles = 500000
	var reached uint64
	sc := Scenario{
		Name:   "long",
		System: core.PaperSystem(),
		Cycles: cycles,
		Setup: func(sys *core.System) error {
			sys.K.Schedule(100*sys.Cfg.ClockPeriod, func() { cancel() })
			sys.Bus.OnCycle(func(ahb.CycleInfo) { reached++ })
			return nil
		},
	}
	res := RunOne(ctx, sc)
	if !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", res.Err)
	}
	if reached == 0 || reached >= cycles/2 {
		t.Errorf("simulated %d cycles of %d; cancellation did not stop the run mid-flight", reached, cycles)
	}
}

func TestCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := Run(ctx, testScenarios(500))
	for _, r := range results {
		if r.Err != context.Canceled {
			t.Fatalf("scenario %q: err=%v, want context.Canceled", r.Scenario.Name, r.Err)
		}
	}
}

func TestRunMeteredAggregatesBatchMetrics(t *testing.T) {
	good := core.PaperSystem()
	bad := core.PaperSystem()
	bad.NumActiveMasters = 0
	scs := []Scenario{
		{Name: "a", System: good, Cycles: 800},
		{Name: "broken", System: bad, Cycles: 800},
		{Name: "b", System: good, Cycles: 1200},
	}
	results, batch := NewRunner(2).RunMetered(context.Background(), scs)
	if batch.Scenarios != 3 || batch.Failed != 1 {
		t.Errorf("scenarios=%d failed=%d, want 3/1", batch.Scenarios, batch.Failed)
	}
	if batch.Workers != 2 {
		t.Errorf("workers=%d, want 2", batch.Workers)
	}
	if batch.TotalCycles != 2000 {
		t.Errorf("cycles=%d, want 2000 (failed scenario excluded)", batch.TotalCycles)
	}
	if batch.Wall <= 0 || batch.CyclesPerSec <= 0 {
		t.Errorf("wall=%v throughput=%v, want positive", batch.Wall, batch.CyclesPerSec)
	}
	if batch.Utilization < 0 || batch.Utilization > 1 {
		t.Errorf("utilization=%v outside [0,1]", batch.Utilization)
	}
	if batch.Latency.N != 2 {
		t.Errorf("latency over %d scenarios, want 2", batch.Latency.N)
	}
	// Per-result metrics must be filled for successful scenarios.
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		if r.Metrics.Cycles != r.Scenario.Cycles {
			t.Errorf("%s: metrics cycles=%d, want %d", r.Scenario.Name, r.Metrics.Cycles, r.Scenario.Cycles)
		}
		if r.Metrics.DeltaCycles == 0 || r.Metrics.Run <= 0 || r.Metrics.CyclesPerSec <= 0 {
			t.Errorf("%s: incomplete run metrics %+v", r.Scenario.Name, r.Metrics)
		}
	}
}

func TestGridExpansion(t *testing.T) {
	g := Grid{
		Base:   core.PaperSystem(),
		Cycles: 100,
		Slaves: []int{2, 3, 8},
		Widths: []int{16, 32},
	}
	scs := g.Scenarios()
	if len(scs) != 6 {
		t.Fatalf("grid expanded to %d scenarios, want 6", len(scs))
	}
	if scs[0].Name != "s2_w16_ws0_sticky" {
		t.Errorf("first scenario name %q", scs[0].Name)
	}
	// Empty axes inherit the base configuration.
	for _, sc := range scs {
		if sc.System.SlaveWaits != g.Base.SlaveWaits || sc.System.Policy != g.Base.Policy {
			t.Errorf("scenario %q must inherit base waits/policy", sc.Name)
		}
	}
}

// TestStyleParity is the analyzer-style parity check: all three
// integration styles of the paper's Fig. 1, run through the observer
// layer on the identical paper workload, must agree on the relative
// per-instruction energy ordering even though absolute energies differ.
func TestStyleParity(t *testing.T) {
	const cycles = 4000
	styles := []core.Style{core.StyleGlobal, core.StyleLocal, core.StylePrivate}
	scs := make([]Scenario, len(styles))
	for i, st := range styles {
		scs[i] = Scenario{
			Name:     st.String(),
			System:   core.PaperSystem(),
			Analyzer: core.AnalyzerConfig{Style: st},
			Cycles:   cycles,
		}
	}
	results := NewRunner(len(scs)).Run(context.Background(), scs)
	if err := FirstError(results); err != nil {
		t.Fatal(err)
	}
	// The executed instruction streams must be identical: the analyzer
	// observes and must never perturb behavior.
	ordering := func(r Result) []string {
		var names []string
		for _, st := range r.Stats {
			if st.Count >= 50 { // rare instructions can tie-swap on noise
				names = append(names, st.Instruction.String())
			}
		}
		return names
	}
	counts := func(r Result) map[string]uint64 {
		m := map[string]uint64{}
		for _, st := range r.Stats {
			m[st.Instruction.String()] = st.Count
		}
		return m
	}
	ref, refCounts := ordering(results[0]), counts(results[0])
	for _, r := range results[1:] {
		got := ordering(r)
		if len(got) != len(ref) {
			t.Fatalf("style %s: instruction set %v, global saw %v", r.Scenario.Name, got, ref)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Errorf("style %s: energy ordering %v, global saw %v", r.Scenario.Name, got, ref)
				break
			}
		}
		for in, n := range counts(r) {
			if refCounts[in] != n {
				t.Errorf("style %s: instruction %s executed %d times, global saw %d — observation must not perturb behavior",
					r.Scenario.Name, in, n, refCounts[in])
			}
		}
	}
}
