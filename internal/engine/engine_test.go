package engine

import (
	"context"
	"strings"
	"testing"
	"time"

	"ahbpower/internal/amba/ahb"
	"ahbpower/internal/core"
)

// testScenarios builds a small mixed batch exercising several grid axes.
func testScenarios(cycles uint64) []Scenario {
	g := Grid{
		Base:     core.PaperSystem(),
		Analyzer: core.AnalyzerConfig{Style: core.StyleGlobal},
		Cycles:   cycles,
		Slaves:   []int{2, 3},
		Widths:   []int{16, 32},
		Policies: []ahb.ArbPolicy{ahb.PolicySticky, ahb.PolicyRoundRobin},
	}
	return g.Scenarios()
}

// renderBatch renders a batch of results to one canonical string, the way
// a sweep report would.
func renderBatch(t *testing.T, results []Result) string {
	t.Helper()
	var b strings.Builder
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("scenario %q failed: %v", r.Scenario.Name, r.Err)
		}
		b.WriteString(r.Scenario.Name)
		b.WriteString("\n")
		b.WriteString(r.Report.FormatTable())
		b.WriteString(r.Report.FormatBreakdown())
		b.WriteString(r.Report.FormatSummary())
		b.WriteString("\n")
	}
	return b.String()
}

func TestParallelMatchesSerialByteForByte(t *testing.T) {
	scs := testScenarios(1500)
	serial := NewRunner(1).Run(context.Background(), scs)
	parallel := NewRunner(4).Run(context.Background(), scs)
	if len(serial) != len(scs) || len(parallel) != len(scs) {
		t.Fatalf("result counts: serial=%d parallel=%d, want %d", len(serial), len(parallel), len(scs))
	}
	s, p := renderBatch(t, serial), renderBatch(t, parallel)
	if s != p {
		t.Errorf("parallel sweep diverges from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", s, p)
	}
	for i, r := range parallel {
		if r.Index != i {
			t.Errorf("result %d carries index %d: ordering must be deterministic", i, r.Index)
		}
	}
}

func TestScenarioErrorDoesNotKillSweep(t *testing.T) {
	good := core.PaperSystem()
	bad := core.PaperSystem()
	bad.NumActiveMasters = 0 // invalid: construction must fail
	scs := []Scenario{
		{Name: "ok-a", System: good, Cycles: 500},
		{Name: "broken", System: bad, Cycles: 500},
		{Name: "no-cycles", System: good, Cycles: 0},
		{Name: "ok-b", System: good, Cycles: 500},
	}
	results := NewRunner(2).Run(context.Background(), scs)
	if results[0].Err != nil || results[0].Report == nil {
		t.Errorf("ok-a must succeed: %v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Error("broken scenario must report its error")
	}
	if results[2].Err == nil {
		t.Error("zero-cycle scenario must report its error")
	}
	if results[3].Err != nil || results[3].Report == nil {
		t.Errorf("ok-b must succeed despite earlier failures: %v", results[3].Err)
	}
}

func TestPanicCapturedAsError(t *testing.T) {
	sc := Scenario{
		Name:   "panics",
		System: core.PaperSystem(),
		Cycles: 100,
		Setup:  func(*core.System) error { panic("boom") },
	}
	res := RunOne(context.Background(), sc)
	if res.Err == nil || !strings.Contains(res.Err.Error(), "panicked") {
		t.Fatalf("panic must surface as an error, got %v", res.Err)
	}
}

func TestCancellationAbandonsQueuedScenarios(t *testing.T) {
	// One worker, several scenarios, cancel after the first completes: the
	// queued remainder must come back promptly with the context error.
	ctx, cancel := context.WithCancel(context.Background())
	scs := make([]Scenario, 6)
	for i := range scs {
		scs[i] = Scenario{Name: "sc", System: core.PaperSystem(), Cycles: 2000}
	}
	scs[0].Setup = func(*core.System) error {
		cancel() // fires while scenario 0 is running
		return nil
	}
	start := time.Now()
	results := NewRunner(1).Run(ctx, scs)
	elapsed := time.Since(start)
	if results[0].Err != nil {
		t.Errorf("in-flight scenario must complete: %v", results[0].Err)
	}
	abandoned := 0
	for _, r := range results[1:] {
		if r.Err == context.Canceled {
			abandoned++
		}
	}
	if abandoned == 0 {
		t.Error("cancellation must abandon queued scenarios with ctx.Err()")
	}
	// Generous bound: abandoning must not simulate the remaining scenarios.
	if elapsed > 30*time.Second {
		t.Errorf("cancellation took %v; queued scenarios were not abandoned promptly", elapsed)
	}
}

func TestCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := Run(ctx, testScenarios(500))
	for _, r := range results {
		if r.Err != context.Canceled {
			t.Fatalf("scenario %q: err=%v, want context.Canceled", r.Scenario.Name, r.Err)
		}
	}
}

func TestGridExpansion(t *testing.T) {
	g := Grid{
		Base:   core.PaperSystem(),
		Cycles: 100,
		Slaves: []int{2, 3, 8},
		Widths: []int{16, 32},
	}
	scs := g.Scenarios()
	if len(scs) != 6 {
		t.Fatalf("grid expanded to %d scenarios, want 6", len(scs))
	}
	if scs[0].Name != "s2_w16_ws0_sticky" {
		t.Errorf("first scenario name %q", scs[0].Name)
	}
	// Empty axes inherit the base configuration.
	for _, sc := range scs {
		if sc.System.SlaveWaits != g.Base.SlaveWaits || sc.System.Policy != g.Base.Policy {
			t.Errorf("scenario %q must inherit base waits/policy", sc.Name)
		}
	}
}

// TestStyleParity is the analyzer-style parity check: all three
// integration styles of the paper's Fig. 1, run through the observer
// layer on the identical paper workload, must agree on the relative
// per-instruction energy ordering even though absolute energies differ.
func TestStyleParity(t *testing.T) {
	const cycles = 4000
	styles := []core.Style{core.StyleGlobal, core.StyleLocal, core.StylePrivate}
	scs := make([]Scenario, len(styles))
	for i, st := range styles {
		scs[i] = Scenario{
			Name:     st.String(),
			System:   core.PaperSystem(),
			Analyzer: core.AnalyzerConfig{Style: st},
			Cycles:   cycles,
		}
	}
	results := NewRunner(len(scs)).Run(context.Background(), scs)
	if err := FirstError(results); err != nil {
		t.Fatal(err)
	}
	// The executed instruction streams must be identical: the analyzer
	// observes and must never perturb behavior.
	ordering := func(r Result) []string {
		var names []string
		for _, st := range r.Stats {
			if st.Count >= 50 { // rare instructions can tie-swap on noise
				names = append(names, st.Instruction.String())
			}
		}
		return names
	}
	counts := func(r Result) map[string]uint64 {
		m := map[string]uint64{}
		for _, st := range r.Stats {
			m[st.Instruction.String()] = st.Count
		}
		return m
	}
	ref, refCounts := ordering(results[0]), counts(results[0])
	for _, r := range results[1:] {
		got := ordering(r)
		if len(got) != len(ref) {
			t.Fatalf("style %s: instruction set %v, global saw %v", r.Scenario.Name, got, ref)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Errorf("style %s: energy ordering %v, global saw %v", r.Scenario.Name, got, ref)
				break
			}
		}
		for in, n := range counts(r) {
			if refCounts[in] != n {
				t.Errorf("style %s: instruction %s executed %d times, global saw %d — observation must not perturb behavior",
					r.Scenario.Name, in, n, refCounts[in])
			}
		}
	}
}
