// Package engine is the batch run layer on top of internal/core: it turns
// the paper's methodology — many runs of the same instrumented model under
// varying configuration, workload, analyzer style and technology — into a
// first-class operation. A Scenario describes one self-contained run, a
// Runner executes batches of scenarios across a worker pool (each scenario
// gets its own kernel and system, so runs are fully isolated), and Results
// come back in scenario order regardless of completion order, so parallel
// sweeps are byte-for-byte reproducible against serial ones.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"ahbpower/internal/amba/ahb"
	"ahbpower/internal/core"
	"ahbpower/internal/exec"
	"ahbpower/internal/fault"
	"ahbpower/internal/metrics"
	"ahbpower/internal/power"
	"ahbpower/internal/sim"
	"ahbpower/internal/topo"
	"ahbpower/internal/workload"
)

// Scenario is one self-contained simulation: system shape, traffic,
// analyzer integration style and run length. The zero value of System and
// Cycles are invalid; use core.PaperSystem() and a positive cycle count.
type Scenario struct {
	// Name labels the scenario in results and reports.
	Name string
	// System is the count-based legacy description of the bus shape. It
	// remains fully supported — it canonicalizes into the same declarative
	// topology Topo carries — but new code should set Topo, which can also
	// express non-uniform address maps, per-slave wait mixes and
	// per-master workload hints. Ignored when Topo is non-nil.
	System core.SystemConfig
	// Topo, when non-nil, is the declarative topology to build (see
	// internal/topo). It takes precedence over System; both forms fold
	// into CanonicalKey through the same canonical encoding, so a
	// count-based scenario and its explicit topology twin share one cache
	// key.
	Topo *topo.Topology
	// Analyzer parameterizes the power analyzer attached to the run.
	Analyzer core.AnalyzerConfig
	// Workloads supplies per-master traffic configurations (missing
	// entries reuse the last one with a shifted seed, as in
	// core.LoadWorkload). When empty, the paper workload sized to Cycles
	// is loaded instead.
	Workloads []workload.Config
	// Cycles is the number of bus clock cycles to simulate.
	Cycles uint64
	// Setup, when non-nil, runs after the system is built and the analyzer
	// attached but before the simulation starts — the place to attach
	// extra observers (recorders, VCD writers) to the cycle stream.
	Setup func(*core.System) error
	// SkipAnalyzer runs the scenario without power instrumentation: no
	// analyzer is attached and Report/Stats/DPM stay nil. Used for
	// functional-only baselines (e.g. the instrumentation-overhead
	// experiment).
	SkipAnalyzer bool
	// KeepSystem retains the built System in the Result for post-run
	// inspection. Leave false in large sweeps so memory is reclaimed as
	// scenarios complete.
	KeepSystem bool
	// Faults, when non-nil, is the deterministic fault-injection plan
	// compiled onto the system after the workload is loaded (see
	// internal/fault). Plans participate in CanonicalKey, so faulty runs
	// cache correctly.
	Faults *fault.Plan
	// Timeout, when positive, bounds this scenario's wall-clock execution.
	// On expiry the run stops at the next cycle-slice boundary and the
	// scenario fails with a timeout-classed error; timeouts are never
	// retried (a deterministic simulation would only time out again).
	Timeout time.Duration
	// Backend is an execution hint: "", "event", "compiled", "auto" or
	// "lanes" (see internal/exec). It selects how cycles are advanced,
	// never what they compute — results are bit-identical across backends
	// — so it is deliberately excluded from CanonicalKey and a cached
	// result answers the scenario regardless of the backend that produced
	// it. A "compiled"/"auto" hint falls back to the event backend, with
	// the reason surfaced in Result.BackendFallback, when the scenario
	// uses features the compiled stepper cannot honor; a "lanes" hint
	// does the same, and additionally lets Runner batches pack the
	// scenario into a bit-parallel lane execution with other structurally
	// compatible lanes-hinted scenarios (see internal/lane).
	Backend string
	// Accuracy selects the result-accuracy class: "" or "cycle" for the
	// exact cycle-accurate simulation (the default), "transaction" for
	// the calibrated transaction-level estimate (see internal/tlm). Unlike
	// Backend, accuracy changes what is computed — estimated results are
	// approximate by contract — so it participates in CanonicalKey and
	// cycle and transaction results never share a cache entry. A
	// transaction-accuracy scenario that uses features the estimator
	// cannot honor (fault plans, Setup hooks, per-cycle traces, ...)
	// conservatively falls back to cycle accuracy, with the reason
	// surfaced in Result.BackendFallback.
	Accuracy string
	// Checkpoint, when non-nil, enables crash-safe periodic snapshots
	// and/or resume-from-snapshot for this scenario (see
	// CheckpointConfig). Like Backend it is an execution detail — a
	// resumed run is bit-identical to an uninterrupted one — so it is
	// excluded from CanonicalKey. Checkpointing needs per-scenario
	// kernel state, which the pack (lanes) and transaction-level
	// executors do not carry, so checkpoint-requesting scenarios route
	// to a cycle-accurate backend with the reason surfaced.
	Checkpoint *CheckpointConfig
}

// Topology returns the canonical topology the scenario builds: Topo when
// set, else the canonicalized count-based System. This is the form
// CanonicalKey hashes and NewSystemTopo constructs.
func (sc *Scenario) Topology() topo.Topology {
	if sc.Topo != nil {
		return sc.Topo.Canonical()
	}
	return sc.System.Topology()
}

// ExecTraits derives the backend-selection traits of the scenario (see
// exec.Traits). The clock period comes from the scenario's topology, so
// fallback decisions (the compiled backend's even-period contract) match
// the system that will actually be built.
func (sc *Scenario) ExecTraits() exec.Traits {
	period := sc.System.ClockPeriod
	if sc.Topo != nil {
		period = sc.Topo.ClockPeriod()
	} else if period == 0 {
		period = topo.DefaultClockPeriodPS * sim.Picosecond
	}
	return exec.Traits{
		HasSetup:          sc.Setup != nil,
		HasDPM:            !sc.SkipAnalyzer && sc.Analyzer.DPM != nil,
		DeltaInstrumented: !sc.SkipAnalyzer && sc.Analyzer.Style == core.StylePrivate,
		ClockPeriod:       period,
		Checkpoint:        sc.Checkpoint != nil,
	}
}

// Result is the outcome of one scenario. On success Report and the
// summary fields are populated (Report/Stats/DPM stay nil under
// Scenario.SkipAnalyzer); on failure only Err (and Index/Scenario) are.
type Result struct {
	// Index is the scenario's position in the submitted batch; results are
	// returned sorted by it.
	Index int
	// Scenario echoes the input.
	Scenario Scenario
	// Report is the full analysis outcome.
	Report *core.Report
	// Stats is the per-instruction energy table of the run's power FSM,
	// sorted by descending energy.
	Stats []power.InstructionStat
	// Beats is the total number of data beats transferred by the active
	// masters.
	Beats uint64
	// Counts is the protocol monitor's event counters (transfers, waits,
	// handovers, ...).
	Counts map[string]uint64
	// Violations holds protocol errors detected by the monitor. A
	// violation does not set Err; sweeps decide how to treat it.
	Violations []ahb.ProtocolError
	// DPM is the dynamic-power-management estimate, when enabled.
	DPM *core.DPMEstimate
	// RunDuration is the wall-clock time of the simulation loop alone
	// (excluding system construction and workload generation).
	RunDuration time.Duration
	// Metrics are the run's engine-level performance figures: cycles
	// simulated, kernel delta cycles, build and run wall times and the
	// resulting throughput. Populated on success.
	Metrics metrics.RunMetrics
	// System is the built system, retained only when Scenario.KeepSystem.
	System *core.System
	// Attempts is the number of execution attempts made (>1 when the
	// runner retried transient failures). Zero for scenarios abandoned
	// before starting.
	Attempts int
	// Backend is the execution backend that actually ran the scenario
	// ("event", "compiled" or "lanes"). Empty for scenarios that never
	// reached execution. An execution detail, not part of the result
	// identity: supported scenarios produce bit-identical results on
	// every backend.
	Backend string
	// BackendFallback is the surfaced reason the compiled or lane backend
	// was requested but the event backend ran instead, or the reason a
	// transaction-accuracy request conservatively ran cycle-accurate
	// (prefixed "transaction accuracy:"); empty when no fallback happened.
	BackendFallback string
	// Accuracy is the accuracy class that actually produced the result:
	// AccuracyCycle for the exact paths (including conservative fallbacks
	// from a transaction request), AccuracyTransaction for estimates.
	Accuracy string
	// Lanes is the occupancy of the lane pack that executed the scenario
	// (1 for a single-lane run); zero when another backend ran it.
	Lanes int
	// CheckpointFallback is the surfaced reason checkpointing was
	// requested but the scenario ran without it (Setup hook, DPM,
	// streaming analyzer consumers); empty when checkpointing ran or was
	// never requested.
	CheckpointFallback string
	// ResumedFrom is the absolute cycle the scenario resumed from when a
	// Checkpoint.Resume snapshot was restored; zero for fresh runs.
	ResumedFrom uint64
	// Faults holds the injector's per-kind counters when the scenario
	// carried an active fault plan.
	Faults *fault.Stats
	// Err captures any failure: construction, workload generation, attach,
	// simulation, or a panic inside the scenario. Runner batches wrap it
	// in a *ScenarioError carrying the failure class and attempt count;
	// scenarios abandoned before starting keep the raw context error. One
	// failed scenario never aborts the rest of a batch.
	Err error
}

// PJPerBeat returns the total energy per transferred beat in picojoules,
// or 0 when nothing moved.
func (r *Result) PJPerBeat() float64 {
	if r.Report == nil || r.Beats == 0 {
		return 0
	}
	return r.Report.TotalEnergy / float64(r.Beats) * 1e12
}

// Runner executes scenario batches over a fixed-size worker pool.
type Runner struct {
	// Workers is the pool size; NewRunner clamps it to at least 1.
	Workers int
	// OnStart, when non-nil, is invoked from a worker goroutine just
	// before a scenario begins executing, with its batch index. Hooks
	// must be safe for concurrent use; queue consumers (the serving
	// layer's job progress) use them to observe a batch mid-flight.
	OnStart func(index int)
	// OnDone, when non-nil, is invoked from a worker goroutine as each
	// scenario finishes, with its completed Result — including failed and
	// cancelled ones. Scenarios abandoned before starting (batch
	// cancellation) do not trigger it.
	OnDone func(Result)
	// Retry bounds how transiently failed scenarios are re-attempted.
	// The zero value runs each scenario exactly once.
	Retry RetryPolicy
}

// NewRunner returns a runner with the given pool size (minimum 1).
func NewRunner(workers int) *Runner {
	if workers < 1 {
		workers = 1
	}
	return &Runner{Workers: workers}
}

// DefaultRunner returns a runner sized to the machine. The pool follows
// runtime.GOMAXPROCS(0), not runtime.NumCPU(): under a container CPU
// quota (or an explicit GOMAXPROCS) the scheduler only runs that many
// goroutines in parallel, and sizing the pool to the raw core count
// would oversubscribe a quota-limited pod.
func DefaultRunner() *Runner { return NewRunner(runtime.GOMAXPROCS(0)) }

// Run executes every scenario and returns one Result per scenario, in
// input order. Each scenario is built and simulated in isolation (own
// kernel, bus, masters, slaves, analyzer), so scenarios run concurrently
// without shared state; per-scenario failures are captured in Result.Err
// and never abort the batch. Scenarios hinting the lane backend are
// pre-grouped by structural compatibility and executed as bit-parallel
// packs of up to 64 (see scheduleLanes); everything else is one job per
// scenario. When ctx is cancelled, scenarios not yet started are
// abandoned promptly with Err = ctx.Err(), and scenarios already running
// stop mid-simulation with the same error (see core.System.RunContext) —
// for a lane pack, lanes that already retired keep their results.
func (r *Runner) Run(ctx context.Context, scenarios []Scenario) []Result {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]Result, len(scenarios))
	executed := make([]bool, len(scenarios))
	plan := scheduleLanes(scenarios)
	jobs := make(chan runJob)
	var wg sync.WaitGroup
	workers := r.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(plan) {
		workers = len(plan)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobs {
				if job.pack != nil {
					r.runPack(ctx, scenarios, job.pack, results, executed)
					continue
				}
				i := job.index
				if r.OnStart != nil {
					r.OnStart(i)
				}
				results[i] = r.runScenario(ctx, i, scenarios[i])
				executed[i] = true
				if r.OnDone != nil {
					r.OnDone(results[i])
				}
			}
		}()
	}
	// Feed jobs until done or cancelled; abandoned scenarios are marked
	// below, after the channel closes.
	next := 0
feed:
	for ; next < len(plan); next++ {
		select {
		case jobs <- plan[next]:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		for i := range results {
			if !executed[i] {
				results[i] = Result{Index: i, Scenario: scenarios[i], Err: err}
			}
		}
	}
	for i := range results {
		results[i].Index = i
	}
	return results
}

// RunMetered executes a batch like Run and additionally aggregates
// engine-level batch metrics: total cycles, throughput, per-scenario
// latency and worker utilization.
func (r *Runner) RunMetered(ctx context.Context, scenarios []Scenario) ([]Result, metrics.BatchMetrics) {
	start := time.Now()
	results := r.Run(ctx, scenarios)
	workers := r.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}
	return results, AggregateMetrics(results, workers, time.Since(start))
}

// AggregateMetrics folds the per-scenario metrics of a finished batch
// into batch metrics. workers is the effective pool size and wall the
// batch's end-to-end duration.
func AggregateMetrics(results []Result, workers int, wall time.Duration) metrics.BatchMetrics {
	runs := make([]metrics.RunMetrics, 0, len(results))
	failed := 0
	for i := range results {
		if results[i].Err != nil {
			failed++
			continue
		}
		runs = append(runs, results[i].Metrics)
	}
	return metrics.Aggregate(runs, failed, workers, wall)
}

// Run executes a batch with a machine-sized worker pool.
func Run(ctx context.Context, scenarios []Scenario) []Result {
	return DefaultRunner().Run(ctx, scenarios)
}

// RunOne executes a single scenario synchronously.
func RunOne(ctx context.Context, sc Scenario) Result {
	return Execute(ctx, 0, sc)
}

// Execute builds and runs one scenario, capturing any failure — including
// a panic anywhere in the model stack — in Result.Err. It is a single
// attempt: fault-plan FailFirst failures and other transient errors come
// back as-is; retrying is the Runner's job.
func Execute(ctx context.Context, index int, sc Scenario) Result {
	return executeAttempt(ctx, index, sc, 0)
}

// executeAttempt is Execute with an attempt number, so a fault plan's
// FailFirst knob can fail early attempts and the retry loop can report
// attempt counts.
func executeAttempt(ctx context.Context, index int, sc Scenario, attempt int) (res Result) {
	res = Result{Index: index, Scenario: sc, Attempts: attempt + 1}
	defer func() {
		if p := recover(); p != nil {
			res.Err = fmt.Errorf("engine: scenario %q panicked: %v", sc.Name, p)
		}
	}()
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		res.Err = err
		return res
	}
	if sc.Cycles == 0 {
		res.Err = fmt.Errorf("engine: scenario %q: Cycles must be positive", sc.Name)
		return res
	}
	if !ValidAccuracy(sc.Accuracy) {
		res.Err = fmt.Errorf("engine: scenario %q: unknown accuracy %q (want %s|%s)",
			sc.Name, sc.Accuracy, AccuracyCycle, AccuracyTransaction)
		return res
	}
	if sc.Faults != nil && attempt < sc.Faults.FailFirst {
		res.Err = fmt.Errorf("engine: scenario %q: %w", sc.Name, &fault.InjectedFault{Attempt: attempt})
		return res
	}
	var tlmFallback string
	if NormalizeAccuracy(sc.Accuracy) == AccuracyTransaction {
		reason := sc.TLMTraits().Unsupported()
		if reason == "" && sc.Checkpoint != nil {
			// The estimator computes whole transactions, not cycles; it has
			// no kernel state to snapshot or resume.
			reason = "checkpointing requested"
		}
		if reason == "" {
			return executeTLMAttempt(ctx, index, sc, attempt)
		}
		// Estimator-ineligible: run exactly, with the conservative
		// fallback surfaced like a backend fallback.
		tlmFallback = "transaction accuracy: " + reason
	}
	hint := sc.Backend
	var laneFallback string
	if hint == exec.NameLanes {
		reason := sc.LaneTraits().Unsupported()
		if reason == "" && sc.Checkpoint != nil {
			// A lane pack interleaves up to 64 scenarios in one kernel;
			// there is no per-scenario state to snapshot.
			reason = "checkpointing requested"
		}
		if reason == "" && tlmFallback == "" {
			return executeLaneAttempt(ctx, index, sc, attempt)
		}
		// Lane-ineligible: run on the reference backend with the reason
		// surfaced, mirroring the compiled backend's fallback contract.
		laneFallback = reason
		hint = exec.NameEvent
	}
	// Checkpoint eligibility: ineligible scenarios run to completion
	// without snapshots (reason surfaced); resuming an ineligible
	// scenario would silently drop state, so that is an error instead.
	ckpt := sc.Checkpoint
	if reason := sc.CheckpointUnsupported(); reason != "" {
		if ckpt != nil && len(ckpt.Resume) > 0 {
			res.Err = fmt.Errorf("engine: scenario %q: cannot resume from snapshot: %s", sc.Name, reason)
			return res
		}
		res.CheckpointFallback = reason
		ckpt = nil
	}
	backend, fallback, err := exec.Select(hint, sc.ExecTraits())
	if err != nil {
		res.Err = fmt.Errorf("engine: scenario %q: %w", sc.Name, err)
		return res
	}
	res.Backend = backend.Name()
	res.Accuracy = AccuracyCycle
	res.BackendFallback = fallback
	if laneFallback != "" {
		res.BackendFallback = laneFallback
	}
	if tlmFallback != "" {
		res.BackendFallback = tlmFallback
	}
	if sc.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, sc.Timeout)
		defer cancel()
	}
	buildStart := time.Now()
	var sys *core.System
	if sc.Topo != nil {
		sys, err = core.NewSystemTopo(*sc.Topo)
	} else {
		sys, err = core.NewSystem(sc.System)
	}
	if err != nil {
		res.Err = fmt.Errorf("engine: scenario %q: %w", sc.Name, err)
		return res
	}
	// Traffic resolution: explicit Workloads win, then the topology's
	// per-master hints, then the paper workload sized to Cycles.
	if len(sc.Workloads) > 0 {
		err = sys.LoadWorkload(sc.Workloads...)
	} else if hints, herr := sys.Topo.Workloads(); herr != nil {
		err = herr
	} else if len(hints) > 0 {
		err = sys.LoadWorkload(hints...)
	} else {
		err = sys.LoadPaperWorkload(sc.Cycles)
	}
	if err != nil {
		res.Err = fmt.Errorf("engine: scenario %q: %w", sc.Name, err)
		return res
	}
	var an *core.Analyzer
	if !sc.SkipAnalyzer {
		an, err = core.Attach(sys, sc.Analyzer)
		if err != nil {
			res.Err = fmt.Errorf("engine: scenario %q: %w", sc.Name, err)
			return res
		}
	}
	if sc.Setup != nil {
		if err := sc.Setup(sys); err != nil {
			res.Err = fmt.Errorf("engine: scenario %q: setup: %w", sc.Name, err)
			return res
		}
	}
	var inj *fault.Injector
	if sc.Faults.Active() {
		inj, err = fault.Attach(sys.Bus, sys.Masters, sc.Faults)
		if err != nil {
			res.Err = fmt.Errorf("engine: scenario %q: %w", sc.Name, err)
			return res
		}
	}
	run := sc.Cycles
	if ckpt != nil {
		// Register the extra snapshot participants. Registration happens on
		// both the capture and the resume side, so the snapshot's component
		// sets always match.
		if an != nil {
			sys.AddSnapshotter("analyzer", an)
		}
		if inj != nil {
			sys.AddSnapshotter("faults", inj)
		}
		if len(ckpt.Resume) > 0 {
			snap, err := core.DecodeSnapshot(ckpt.Resume)
			if err != nil {
				res.Err = fmt.Errorf("engine: scenario %q: %w", sc.Name, err)
				return res
			}
			if snap.Cycle == 0 || snap.Cycle >= sc.Cycles {
				res.Err = fmt.Errorf("engine: scenario %q: snapshot at cycle %d cannot resume a %d-cycle run",
					sc.Name, snap.Cycle, sc.Cycles)
				return res
			}
			if err := sys.RestoreSnapshot(snap); err != nil {
				res.Err = fmt.Errorf("engine: scenario %q: %w", sc.Name, err)
				return res
			}
			res.ResumedFrom = snap.Cycle
			run = sc.Cycles - snap.Cycle
		}
		if ckpt.Save != nil {
			save := ckpt.Save
			sys.SetCheckpointHook(ckpt.Every, func(uint64) error {
				snap, err := sys.CaptureSnapshot()
				if err != nil {
					return err
				}
				blob, err := snap.Encode()
				if err != nil {
					return err
				}
				return save(snap.Cycle, blob)
			})
		}
	}
	build := time.Since(buildStart)
	start := time.Now()
	if err := backend.Run(ctx, sys, run); err != nil {
		res.Err = fmt.Errorf("engine: scenario %q: %w", sc.Name, err)
		return res
	}
	res.RunDuration = time.Since(start)
	res.Metrics = metrics.NewRunMetrics(sys.Bus.Cycles(), sys.K.DeltaCycles(), build, res.RunDuration)
	if an != nil {
		res.Report = an.Report()
		res.Stats = an.FSM().Stats()
		res.DPM = an.DPM()
	}
	res.Violations = sys.Monitor.Errors()
	res.Counts = sys.Monitor.Counts()
	for _, m := range sys.Masters {
		res.Beats += m.Stats().Beats
	}
	if inj != nil {
		st := inj.Stats()
		res.Faults = &st
	}
	if sc.KeepSystem {
		res.System = sys
	}
	return res
}

// FirstError returns the first scenario error in a batch, annotated with
// the scenario name, or nil when every scenario succeeded.
func FirstError(results []Result) error {
	for i := range results {
		if results[i].Err != nil {
			return results[i].Err
		}
	}
	return nil
}

// FirstViolation returns the first protocol violation across a batch, or
// nil when the runs were clean.
func FirstViolation(results []Result) error {
	for i := range results {
		if len(results[i].Violations) > 0 {
			return fmt.Errorf("engine: scenario %q: %d protocol violations (first: %v)",
				results[i].Scenario.Name, len(results[i].Violations), results[i].Violations[0])
		}
	}
	return nil
}
