package engine

import (
	"context"
	"strings"
	"testing"

	"ahbpower/internal/core"
	"ahbpower/internal/exec"
	"ahbpower/internal/fault"
	"ahbpower/internal/tlm"
)

func tlmScenario(name string) Scenario {
	return Scenario{
		Name:     name,
		System:   core.PaperSystem(),
		Analyzer: core.AnalyzerConfig{Style: core.StyleGlobal},
		Cycles:   6000,
		Accuracy: AccuracyTransaction,
	}
}

// TestTransactionAccuracyRuns checks the estimator dispatch: a
// transaction-accuracy scenario executes through internal/tlm and reports
// the estimator as its backend and accuracy class.
func TestTransactionAccuracyRuns(t *testing.T) {
	res := RunOne(context.Background(), tlmScenario("tlm-run"))
	if res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if res.Backend != tlm.Name {
		t.Errorf("Backend = %q, want %q", res.Backend, tlm.Name)
	}
	if res.Accuracy != AccuracyTransaction {
		t.Errorf("Accuracy = %q, want %q", res.Accuracy, AccuracyTransaction)
	}
	if res.Report == nil || res.Report.TotalEnergy <= 0 {
		t.Fatalf("estimate produced no report/energy: %+v", res.Report)
	}
	if res.Beats == 0 {
		t.Error("estimate reported zero beats")
	}
	if res.BackendFallback != "" {
		t.Errorf("unexpected fallback: %q", res.BackendFallback)
	}
}

// TestTransactionAccuracyFaultsFallBack pins the ISSUE contract: when a
// fault plan is set, TLM must conservatively fall back to cycle accuracy
// with the reason surfaced in Result.BackendFallback — for every
// arbitration policy.
func TestTransactionAccuracyFaultsFallBack(t *testing.T) {
	for _, policy := range []string{"sticky", "fixed", "rr"} {
		t.Run(policy, func(t *testing.T) {
			sc := tlmScenario("tlm-faults-" + policy)
			topo := sc.Topology()
			topo.Policy = policy
			sc.System = core.SystemConfig{}
			sc.Topo = &topo
			sc.Faults = &fault.Plan{Seed: 7, Rules: []fault.Rule{
				{Kind: fault.KindWaits, Slave: -1, Master: -1, Prob: 0.001},
			}}
			res := RunOne(context.Background(), sc)
			if res.Err != nil {
				t.Fatalf("run: %v", res.Err)
			}
			if res.Accuracy != AccuracyCycle {
				t.Errorf("Accuracy = %q, want conservative %q", res.Accuracy, AccuracyCycle)
			}
			if res.Backend == tlm.Name {
				t.Errorf("faulted scenario ran on the estimator")
			}
			if !strings.Contains(res.BackendFallback, "transaction accuracy:") ||
				!strings.Contains(res.BackendFallback, "fault") {
				t.Errorf("BackendFallback = %q, want a transaction-accuracy fault reason", res.BackendFallback)
			}
			if res.Faults == nil {
				t.Error("fallback run lost the fault stats")
			}
		})
	}
}

// TestTransactionAccuracyUnsupportedFeatures walks the other conservative
// fallbacks and checks each surfaces its reason.
func TestTransactionAccuracyUnsupportedFeatures(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"setup", func(sc *Scenario) { sc.Setup = func(*core.System) error { return nil } }, "Setup"},
		{"keep-system", func(sc *Scenario) { sc.KeepSystem = true }, "KeepSystem"},
		{"trace-window", func(sc *Scenario) { sc.Analyzer.TraceWindow = 1e-6 }, "windowed"},
		{"activity", func(sc *Scenario) { sc.Analyzer.RecordActivity = true }, "activity"},
		{"dpm", func(sc *Scenario) { sc.Analyzer.DPM = &core.DPMConfig{IdleThreshold: 8} }, "DPM"},
		{"skip-analyzer", func(sc *Scenario) { sc.SkipAnalyzer = true }, "analyzer"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sc := tlmScenario("tlm-" + c.name)
			c.mut(&sc)
			res := RunOne(context.Background(), sc)
			if res.Err != nil {
				t.Fatalf("run: %v", res.Err)
			}
			if res.Backend == tlm.Name {
				t.Fatalf("%s scenario ran on the estimator", c.name)
			}
			if res.Accuracy != AccuracyCycle {
				t.Errorf("Accuracy = %q, want %q", res.Accuracy, AccuracyCycle)
			}
			if !strings.Contains(res.BackendFallback, c.want) {
				t.Errorf("BackendFallback = %q, want it to mention %q", res.BackendFallback, c.want)
			}
		})
	}
}

// TestInvalidAccuracyRejected checks unknown accuracy values fail loudly.
func TestInvalidAccuracyRejected(t *testing.T) {
	sc := tlmScenario("bad-accuracy")
	sc.Accuracy = "burst"
	res := RunOne(context.Background(), sc)
	if res.Err == nil || !strings.Contains(res.Err.Error(), "accuracy") {
		t.Fatalf("Err = %v, want an unknown-accuracy error", res.Err)
	}
}

// TestTransactionAccuracyNotLanePacked checks the runner never packs
// transaction-accuracy scenarios into lane executions: the estimator (or
// its cycle fallback) owns them.
func TestTransactionAccuracyNotLanePacked(t *testing.T) {
	scs := make([]Scenario, 4)
	for i := range scs {
		scs[i] = tlmScenario("pack")
		scs[i].Backend = exec.NameLanes
	}
	r := &Runner{Workers: 2}
	results := r.Run(context.Background(), scs)
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("scenario %d: %v", i, res.Err)
		}
		if res.Lanes != 0 {
			t.Errorf("scenario %d ran in a lane pack (lanes=%d)", i, res.Lanes)
		}
		if res.Backend != tlm.Name {
			t.Errorf("scenario %d: Backend = %q, want %q", i, res.Backend, tlm.Name)
		}
	}
}

// TestTransactionMatchesCycleWithinBudget is the engine-level divergence
// smoke: the estimate lands near the exact result for the same scenario.
func TestTransactionMatchesCycleWithinBudget(t *testing.T) {
	tr := tlmScenario("paired")
	cy := tr
	cy.Accuracy = AccuracyCycle
	rt := RunOne(context.Background(), tr)
	rc := RunOne(context.Background(), cy)
	if rt.Err != nil || rc.Err != nil {
		t.Fatalf("runs failed: tlm=%v cycle=%v", rt.Err, rc.Err)
	}
	et, ec := rt.Report.TotalEnergy, rc.Report.TotalEnergy
	if ec <= 0 {
		t.Fatalf("cycle-accurate energy %v", ec)
	}
	if d := (et - ec) / ec; d > 0.15 || d < -0.15 {
		t.Errorf("estimate diverges %.1f%% from exact (est %.4g, exact %.4g)", 100*d, et, ec)
	}
}
