package engine_test

import (
	"context"
	"testing"

	"ahbpower/internal/core"
	"ahbpower/internal/engine"
)

// benchGrid is the sweep both engine benchmarks execute: a 8-point
// design-space grid at 1000 cycles per point.
func benchGrid() []engine.Scenario {
	g := engine.Grid{
		Base:     core.PaperSystem(),
		Analyzer: core.AnalyzerConfig{Style: core.StyleGlobal},
		Cycles:   1000,
		Slaves:   []int{2, 8},
		Widths:   []int{16, 32},
		Waits:    []int{0, 1},
	}
	return g.Scenarios()
}

func benchSweep(b *testing.B, workers int) {
	b.Helper()
	scs := benchGrid()
	r := engine.NewRunner(workers)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := r.Run(context.Background(), scs)
		if err := engine.FirstError(results); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineSweepSerial runs the reference grid one scenario at a
// time; it tracks end-to-end simulation throughput at sweep scale.
func BenchmarkEngineSweepSerial(b *testing.B) { benchSweep(b, 1) }

// BenchmarkEngineSweepParallel runs the same grid on four workers.
func BenchmarkEngineSweepParallel(b *testing.B) { benchSweep(b, 4) }
