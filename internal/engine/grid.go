package engine

import (
	"fmt"

	"ahbpower/internal/amba/ahb"
	"ahbpower/internal/core"
	"ahbpower/internal/topo"
)

// Grid describes a cartesian design-space sweep over the architectural
// parameters the paper's introduction motivates exploring — "hundreds of
// different configurations and architectures". Each axis left empty
// contributes the Base value only; Scenarios expands the product in a
// fixed axis order (slaves, widths, waits, policies), so the scenario
// list — and therefore any report generated from it — is deterministic.
type Grid struct {
	// Base is the count-based configuration every grid point starts from;
	// axis values override its fields. Ignored when BaseTopo is set.
	Base core.SystemConfig
	// BaseTopo, when non-nil, is the declarative topology every grid point
	// starts from. Axes that the explicit shape subsumes (Slaves) are
	// rejected; Widths, Waits and Policies override the topology's
	// corresponding fields per point (Waits uniformly across slaves).
	BaseTopo *topo.Topology
	// Analyzer is attached to every grid point.
	Analyzer core.AnalyzerConfig
	// Cycles is the run length per grid point.
	Cycles uint64

	Slaves   []int
	Widths   []int
	Waits    []int
	Policies []ahb.ArbPolicy
}

// Expand expands the grid into scenarios, supporting both base forms:
// with BaseTopo set the sweep starts from the declarative topology
// (Widths, Waits and Policies override per point, Waits uniformly across
// slaves; the Slaves axis is rejected because an explicit address map
// fixes the slave count), otherwise it is Scenarios over Base.
func (g Grid) Expand() ([]Scenario, error) {
	if g.BaseTopo == nil {
		return g.Scenarios(), nil
	}
	if len(g.Slaves) > 0 {
		return nil, fmt.Errorf("engine: the Slaves axis cannot apply to an explicit topology (its address map fixes the slave count)")
	}
	base := g.BaseTopo.Canonical()
	if _, err := base.ArbPolicy(); err != nil {
		return nil, err
	}
	label := base.Name
	if label == "" {
		label = "topo"
	}
	widths := g.Widths
	if len(widths) == 0 {
		widths = []int{base.DataWidth}
	}
	var policies []string
	for _, p := range g.Policies {
		policies = append(policies, p.String())
	}
	if len(policies) == 0 {
		policies = []string{base.Policy}
	}
	var out []Scenario
	for _, dw := range widths {
		nw := len(g.Waits)
		if nw == 0 {
			nw = 1 // one point keeping the topology's per-slave wait mix
		}
		for wi := 0; wi < nw; wi++ {
			wsLabel := "wsmix"
			for _, pol := range policies {
				pt := base.Canonical() // deep copy per point
				pt.DataWidth = dw
				pt.Policy = pol
				if len(g.Waits) > 0 {
					for si := range pt.Slaves {
						pt.Slaves[si].Waits = g.Waits[wi]
					}
					wsLabel = fmt.Sprintf("ws%d", g.Waits[wi])
				}
				out = append(out, Scenario{
					Name:     fmt.Sprintf("%s_w%d_%s_%s", label, dw, wsLabel, pol),
					Topo:     &pt,
					Analyzer: g.Analyzer,
					Cycles:   g.Cycles,
				})
			}
		}
	}
	return out, nil
}

// Scenarios expands the grid into one scenario per point, named
// "s<slaves>_w<width>_ws<waits>_<policy>".
func (g Grid) Scenarios() []Scenario {
	orInts := func(axis []int, base int) []int {
		if len(axis) == 0 {
			return []int{base}
		}
		return axis
	}
	slaves := orInts(g.Slaves, g.Base.NumSlaves)
	widths := orInts(g.Widths, g.Base.DataWidth)
	waits := orInts(g.Waits, g.Base.SlaveWaits)
	policies := g.Policies
	if len(policies) == 0 {
		policies = []ahb.ArbPolicy{g.Base.Policy}
	}
	var out []Scenario
	for _, ns := range slaves {
		for _, dw := range widths {
			for _, ws := range waits {
				for _, pol := range policies {
					cfg := g.Base
					cfg.NumSlaves = ns
					cfg.DataWidth = dw
					cfg.SlaveWaits = ws
					cfg.Policy = pol
					out = append(out, Scenario{
						Name:     fmt.Sprintf("s%d_w%d_ws%d_%s", ns, dw, ws, pol),
						System:   cfg,
						Analyzer: g.Analyzer,
						Cycles:   g.Cycles,
					})
				}
			}
		}
	}
	return out
}
