package engine

import (
	"fmt"

	"ahbpower/internal/amba/ahb"
	"ahbpower/internal/core"
)

// Grid describes a cartesian design-space sweep over the architectural
// parameters the paper's introduction motivates exploring — "hundreds of
// different configurations and architectures". Each axis left empty
// contributes the Base value only; Scenarios expands the product in a
// fixed axis order (slaves, widths, waits, policies), so the scenario
// list — and therefore any report generated from it — is deterministic.
type Grid struct {
	// Base is the configuration every grid point starts from; axis values
	// override its fields.
	Base core.SystemConfig
	// Analyzer is attached to every grid point.
	Analyzer core.AnalyzerConfig
	// Cycles is the run length per grid point.
	Cycles uint64

	Slaves   []int
	Widths   []int
	Waits    []int
	Policies []ahb.ArbPolicy
}

// Scenarios expands the grid into one scenario per point, named
// "s<slaves>_w<width>_ws<waits>_<policy>".
func (g Grid) Scenarios() []Scenario {
	orInts := func(axis []int, base int) []int {
		if len(axis) == 0 {
			return []int{base}
		}
		return axis
	}
	slaves := orInts(g.Slaves, g.Base.NumSlaves)
	widths := orInts(g.Widths, g.Base.DataWidth)
	waits := orInts(g.Waits, g.Base.SlaveWaits)
	policies := g.Policies
	if len(policies) == 0 {
		policies = []ahb.ArbPolicy{g.Base.Policy}
	}
	var out []Scenario
	for _, ns := range slaves {
		for _, dw := range widths {
			for _, ws := range waits {
				for _, pol := range policies {
					cfg := g.Base
					cfg.NumSlaves = ns
					cfg.DataWidth = dw
					cfg.SlaveWaits = ws
					cfg.Policy = pol
					out = append(out, Scenario{
						Name:     fmt.Sprintf("s%d_w%d_ws%d_%s", ns, dw, ws, pol),
						System:   cfg,
						Analyzer: g.Analyzer,
						Cycles:   g.Cycles,
					})
				}
			}
		}
	}
	return out
}
