package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"

	"ahbpower/internal/core"
	"ahbpower/internal/exec"
	"ahbpower/internal/fault"
)

// ckptFP is the bit-exact fingerprint of a Result used by the resume
// golden suite; wall-clock fields are deliberately excluded.
type ckptFP struct {
	totalBits  uint64
	stats      string
	counts     map[string]uint64
	beats      uint64
	violations int
	faults     *fault.Stats
}

func resultFP(t *testing.T, res Result) ckptFP {
	t.Helper()
	if res.Err != nil {
		t.Fatalf("scenario %q failed: %v", res.Scenario.Name, res.Err)
	}
	return ckptFP{
		totalBits:  math.Float64bits(res.Report.TotalEnergy),
		stats:      fmt.Sprintf("%+v", res.Stats),
		counts:     res.Counts,
		beats:      res.Beats,
		violations: len(res.Violations),
		faults:     res.Faults,
	}
}

// errCrash is the sentinel a Save hook returns to emulate a crash right
// after a checkpoint was persisted.
var errCrash = errors.New("simulated crash after checkpoint")

// TestCheckpointResumeEquivalence is the engine-level golden suite: a
// scenario "crashed" right after its first checkpoint and resumed from
// that snapshot must produce a Result Float64bits-identical to the
// uninterrupted run, for every eligible backend, analyzer style and
// fault-plan combination.
func TestCheckpointResumeEquivalence(t *testing.T) {
	type combo struct {
		backend string
		style   core.Style
		faults  *fault.Plan
	}
	var combos []combo
	for _, be := range []string{exec.NameEvent, exec.NameCompiled, exec.NameAuto} {
		for _, style := range []core.Style{core.StyleGlobal, core.StyleLocal, core.StylePrivate} {
			for _, plan := range []*fault.Plan{nil, fault.RandomPlan(11)} {
				combos = append(combos, combo{be, style, plan})
			}
		}
	}
	for _, c := range combos {
		pi := 0
		if c.faults != nil {
			pi = 1
		}
		t.Run(fmt.Sprintf("%s/%s/plan%d", c.backend, c.style, pi), func(t *testing.T) {
			base := Scenario{
				Name:     "ckpt-golden",
				System:   core.PaperSystem(),
				Analyzer: core.AnalyzerConfig{Style: c.style},
				Cycles:   2600,
				Backend:  c.backend,
				Faults:   c.faults,
			}
			control := RunOne(context.Background(), base)
			want := resultFP(t, control)

			// "Crash" after the first persisted checkpoint.
			var blob []byte
			var at uint64
			crashed := base
			crashed.Checkpoint = &CheckpointConfig{Every: 512, Save: func(cycle uint64, snapshot []byte) error {
				blob, at = snapshot, cycle
				return errCrash
			}}
			res := RunOne(context.Background(), crashed)
			if res.Err == nil || !errors.Is(res.Err, errCrash) {
				t.Fatalf("crashed run: err = %v, want %v", res.Err, errCrash)
			}
			if len(blob) == 0 || at == 0 || at >= base.Cycles {
				t.Fatalf("no usable checkpoint captured (cycle %d, %d bytes)", at, len(blob))
			}

			resumed := base
			resumed.Checkpoint = &CheckpointConfig{Resume: blob}
			got := RunOne(context.Background(), resumed)
			if got.ResumedFrom != at {
				t.Errorf("ResumedFrom = %d, want %d", got.ResumedFrom, at)
			}
			if fp := resultFP(t, got); !reflect.DeepEqual(fp, want) {
				t.Errorf("resumed result diverged:\n got %+v\nwant %+v", fp, want)
			}
			// The checkpoint option must never change the cache identity.
			ck, ok1 := base.CanonicalKey()
			rk, ok2 := resumed.CanonicalKey()
			if !ok1 || !ok2 || ck != rk {
				t.Errorf("CanonicalKey differs under Checkpoint: %q (ok=%v) vs %q (ok=%v)", ck, ok1, rk, ok2)
			}
		})
	}
}

// TestCheckpointFallbacks verifies the surfaced-reason contract for every
// route that cannot checkpoint: ineligible analyzers run without
// snapshots, and the lanes/TLM executors fall back to cycle-accurate
// backends.
func TestCheckpointFallbacks(t *testing.T) {
	base := Scenario{
		Name:     "ckpt-fallback",
		System:   core.PaperSystem(),
		Analyzer: core.AnalyzerConfig{Style: core.StyleGlobal},
		Cycles:   600,
	}
	noopSave := func(uint64, []byte) error { return nil }

	t.Run("dpm-ineligible", func(t *testing.T) {
		sc := base
		sc.Analyzer.DPM = &core.DPMConfig{IdleThreshold: 8}
		sc.Checkpoint = &CheckpointConfig{Save: func(uint64, []byte) error {
			t.Error("Save must not run for an ineligible scenario")
			return nil
		}}
		res := RunOne(context.Background(), sc)
		if res.Err != nil {
			t.Fatalf("run: %v", res.Err)
		}
		if res.CheckpointFallback == "" {
			t.Error("CheckpointFallback empty, want surfaced reason")
		}
	})
	t.Run("dpm-resume-error", func(t *testing.T) {
		sc := base
		sc.Analyzer.DPM = &core.DPMConfig{IdleThreshold: 8}
		sc.Checkpoint = &CheckpointConfig{Resume: []byte("{}")}
		if res := RunOne(context.Background(), sc); res.Err == nil {
			t.Error("resuming an ineligible scenario must fail")
		}
	})
	t.Run("lanes-fallback", func(t *testing.T) {
		sc := base
		sc.Backend = exec.NameLanes
		sc.Checkpoint = &CheckpointConfig{Save: noopSave}
		res := RunOne(context.Background(), sc)
		if res.Err != nil {
			t.Fatalf("run: %v", res.Err)
		}
		if res.Backend == "lanes" || res.BackendFallback == "" {
			t.Errorf("lanes + checkpoint: backend %q, fallback %q; want cycle backend with surfaced reason",
				res.Backend, res.BackendFallback)
		}
	})
	t.Run("tlm-fallback", func(t *testing.T) {
		sc := base
		sc.Accuracy = AccuracyTransaction
		sc.Checkpoint = &CheckpointConfig{Save: noopSave}
		res := RunOne(context.Background(), sc)
		if res.Err != nil {
			t.Fatalf("run: %v", res.Err)
		}
		if res.Accuracy != AccuracyCycle || res.BackendFallback == "" {
			t.Errorf("transaction + checkpoint: accuracy %q, fallback %q; want conservative cycle fallback",
				res.Accuracy, res.BackendFallback)
		}
	})
}

// TestRetryBackoffDeadline verifies the runner fails fast, classed as a
// timeout, when the computed backoff would outlive the context deadline —
// instead of sleeping out the delay just to report the stale transient
// class.
func TestRetryBackoffDeadline(t *testing.T) {
	r := NewRunner(1)
	r.Retry = RetryPolicy{MaxAttempts: 5, BaseBackoff: 30 * time.Second, MaxBackoff: 30 * time.Second}
	sc := Scenario{
		Name:     "backoff-deadline",
		System:   core.PaperSystem(),
		Analyzer: core.AnalyzerConfig{Style: core.StyleGlobal},
		Cycles:   200,
		Faults:   &fault.Plan{FailFirst: 3}, // transient failures invite retries
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	start := time.Now()
	res := r.runScenario(ctx, 0, sc)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("runScenario slept %v into a 30s backoff under a 2s deadline", elapsed)
	}
	if res.Err == nil {
		t.Fatal("expected a failure")
	}
	if c := Classify(res.Err); c != ClassTimeout {
		t.Errorf("failure class = %v, want %v (err: %v)", c, ClassTimeout, res.Err)
	}
}
