package engine

// Lane scheduling: the runner's integration with the bit-parallel lane
// backend (internal/lane). Scenarios that hint Backend "lanes" and pass
// the lane eligibility gate are grouped by structural key — same
// canonical bus shape, clock and policy — and executed as packs of up to
// lane.MaxLanes scenarios per simulation, one scenario per bit of the
// pack's uint64 words. Per-lane results are scattered back into ordinary
// Results that are bit-identical to the event backend's; ineligible or
// structurally lonely scenarios fall back to a per-scenario run with the
// reason surfaced in Result.BackendFallback.

import (
	"context"
	"fmt"
	"time"

	"ahbpower/internal/core"
	"ahbpower/internal/exec"
	"ahbpower/internal/lane"
	"ahbpower/internal/metrics"
	"ahbpower/internal/sim"
	"ahbpower/internal/topo"
)

// LaneTraits derives the lane-backend eligibility traits of the scenario
// (see lane.Traits), the packed analog of ExecTraits. The clock period
// comes from the scenario's topology exactly like ExecTraits.
func (sc *Scenario) LaneTraits() lane.Traits {
	period := sc.System.ClockPeriod
	if sc.Topo != nil {
		period = sc.Topo.ClockPeriod()
	} else if period == 0 {
		period = topo.DefaultClockPeriodPS * sim.Picosecond
	}
	return lane.Traits{
		HasSetup:          sc.Setup != nil,
		KeepSystem:        sc.KeepSystem,
		HasTimeout:        sc.Timeout > 0,
		HasFaults:         sc.Faults.Active(),
		HasDPM:            !sc.SkipAnalyzer && sc.Analyzer.DPM != nil,
		DeltaInstrumented: !sc.SkipAnalyzer && sc.Analyzer.Style == core.StylePrivate,
		HasTraceRecorder:  !sc.SkipAnalyzer && sc.Analyzer.Trace != nil,
		ClockPeriod:       period,
	}
}

// laneEligible reports whether the runner may pack this scenario into a
// lane execution. Beyond the trait gate, any fault plan (even an inactive
// one carrying only FailFirst) keeps the scenario on the per-scenario
// path, where the retry loop can honor it; Cycles == 0 stays there too so
// it fails with the engine's usual validation error, and
// transaction-accuracy scenarios belong to the estimator (or its
// conservative cycle fallback), never to a lane pack.
func laneEligible(sc *Scenario) bool {
	if sc.Backend != exec.NameLanes || sc.Cycles == 0 || sc.Faults != nil {
		return false
	}
	// Checkpointing needs per-scenario kernel state a pack cannot provide;
	// the scenario falls to the per-scenario path, which surfaces the
	// fallback reason.
	if sc.Checkpoint != nil {
		return false
	}
	if NormalizeAccuracy(sc.Accuracy) == AccuracyTransaction {
		return false
	}
	return sc.LaneTraits().Unsupported() == ""
}

// runJob is one unit of runner work: a single scenario index, or a lane
// pack of scenario indices (pack non-nil, led by index).
type runJob struct {
	index int
	pack  []int
}

// scheduleLanes partitions a batch into runner jobs. Eligible lane
// scenarios are grouped by structural key in first-seen order and chunked
// into packs of at most lane.MaxLanes; each pack becomes one job at the
// position of its first member, and everything else stays a per-scenario
// job in input order. Batches with no lanes hint keep the trivial plan.
func scheduleLanes(scenarios []Scenario) []runJob {
	anyLanes := false
	for i := range scenarios {
		if scenarios[i].Backend == exec.NameLanes {
			anyLanes = true
			break
		}
	}
	jobs := make([]runJob, 0, len(scenarios))
	if !anyLanes {
		for i := range scenarios {
			jobs = append(jobs, runJob{index: i})
		}
		return jobs
	}
	eligible := make([]bool, len(scenarios))
	packOf := make(map[int][]int) // first member index → full pack
	groups := make(map[string][]int)
	for i := range scenarios {
		if !laneEligible(&scenarios[i]) {
			continue
		}
		eligible[i] = true
		k := lane.Key(scenarios[i].Topology())
		g := append(groups[k], i)
		if len(g) == lane.MaxLanes {
			packOf[g[0]] = g
			g = nil
		}
		groups[k] = g
	}
	for _, g := range groups {
		if len(g) > 0 {
			packOf[g[0]] = g
		}
	}
	for i := range scenarios {
		switch {
		case !eligible[i]:
			jobs = append(jobs, runJob{index: i})
		case packOf[i] != nil:
			jobs = append(jobs, runJob{index: i, pack: packOf[i]})
		}
	}
	return jobs
}

// laneSpec projects a scenario into the lane backend's spec form.
func laneSpec(sc *Scenario) lane.Spec {
	return lane.Spec{
		Name:         sc.Name,
		Topo:         sc.Topology(),
		Analyzer:     sc.Analyzer,
		Workloads:    sc.Workloads,
		Cycles:       sc.Cycles,
		SkipAnalyzer: sc.SkipAnalyzer,
	}
}

// execLanePack builds and runs one pack, capturing a build failure or a
// panic as a per-lane error. Build time is kept separate from the packed
// simulation's wall time so run metrics stay comparable to the other
// backends.
func execLanePack(ctx context.Context, specs []lane.Spec) (outs []lane.Outcome, lanes int, build, run time.Duration) {
	lanes = len(specs)
	defer func() {
		if p := recover(); p != nil {
			err := fmt.Errorf("lane pack panicked: %v", p)
			outs = make([]lane.Outcome, len(specs))
			for i := range outs {
				outs[i].Err = err
			}
		}
	}()
	buildStart := time.Now()
	pack, err := lane.BuildPack(specs)
	if err != nil {
		outs = make([]lane.Outcome, len(specs))
		for i := range outs {
			outs[i].Err = err
		}
		return outs, lanes, time.Since(buildStart), 0
	}
	build = time.Since(buildStart)
	start := time.Now()
	outs = pack.Run(ctx)
	run = time.Since(start)
	return outs, pack.Lanes(), build, run
}

// scatterOutcome copies one lane Outcome into an engine Result, wrapping
// any lane error in the engine's per-scenario error format. All members
// of a pack share the pack's build and run wall times: the simulation
// advanced them together.
func scatterOutcome(res *Result, o lane.Outcome, build, run time.Duration) {
	if o.Err != nil {
		res.Err = fmt.Errorf("engine: scenario %q: %w", res.Scenario.Name, o.Err)
		return
	}
	res.Report = o.Report
	res.Stats = o.Stats
	res.Beats = o.Beats
	res.Counts = o.Counts
	res.Violations = o.Violations
	res.RunDuration = run
	res.Metrics = metrics.NewRunMetrics(o.Cycles, 0, build, run)
}

// executeLaneAttempt runs one scenario as a single-lane pack: the
// Execute/RunOne path for an eligible lanes hint. Runner batches pack
// compatible scenarios together instead of coming through here.
func executeLaneAttempt(ctx context.Context, index int, sc Scenario, attempt int) Result {
	res := Result{Index: index, Scenario: sc, Attempts: attempt + 1, Backend: lane.Name, Lanes: 1, Accuracy: AccuracyCycle}
	outs, _, build, run := execLanePack(ctx, []lane.Spec{laneSpec(&sc)})
	scatterOutcome(&res, outs[0], build, run)
	return res
}

// runPack executes one lane pack inside a runner batch: every member
// reports OnStart when the pack begins, the pack runs as one packed
// simulation, and each member's Result is scattered (and OnDone fired) in
// member order. Packs bypass the retry loop — lane-eligible scenarios
// carry no fault plan, so there is nothing transient to retry — and a
// cancellation mid-pack keeps the results of lanes that already retired.
func (r *Runner) runPack(ctx context.Context, scenarios []Scenario, members []int, results []Result, executed []bool) {
	if r.OnStart != nil {
		for _, i := range members {
			r.OnStart(i)
		}
	}
	specs := make([]lane.Spec, len(members))
	for j, i := range members {
		specs[j] = laneSpec(&scenarios[i])
	}
	outs, lanes, build, run := execLanePack(ctx, specs)
	for j, i := range members {
		res := Result{Index: i, Scenario: scenarios[i], Attempts: 1, Backend: lane.Name, Lanes: lanes, Accuracy: AccuracyCycle}
		scatterOutcome(&res, outs[j], build, run)
		if res.Err != nil {
			res.Err = &ScenarioError{Name: scenarios[i].Name, Index: i, Class: Classify(res.Err), Attempts: 1, Err: res.Err}
		}
		results[i] = res
		executed[i] = true
		if r.OnDone != nil {
			r.OnDone(res)
		}
	}
}
