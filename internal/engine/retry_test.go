package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"ahbpower/internal/core"
	"ahbpower/internal/fault"
	"ahbpower/internal/workload"
)

// fastRetry is a test policy with negligible wall-clock cost.
func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{MaxAttempts: attempts, BaseBackoff: time.Millisecond,
		MaxBackoff: 2 * time.Millisecond, Jitter: 0.2}
}

func TestTransientFailureRetriedToSuccess(t *testing.T) {
	sc := Scenario{
		Name:   "transient",
		System: core.PaperSystem(),
		Cycles: 400,
		Faults: &fault.Plan{Seed: 1, FailFirst: 1},
	}
	r := NewRunner(1)
	r.Retry = fastRetry(3)
	res := r.Run(context.Background(), []Scenario{sc})[0]
	if res.Err != nil {
		t.Fatalf("transient failure must succeed after retry: %v", res.Err)
	}
	if res.Attempts != 2 {
		t.Errorf("attempts=%d, want 2 (one injected failure, one success)", res.Attempts)
	}
	if res.Report == nil {
		t.Error("successful retry must carry a report")
	}
}

func TestTransientFailureExhaustsBudget(t *testing.T) {
	sc := Scenario{
		Name:   "stubborn",
		System: core.PaperSystem(),
		Cycles: 400,
		Faults: &fault.Plan{Seed: 1, FailFirst: 10},
	}
	r := NewRunner(1)
	r.Retry = fastRetry(2)
	res := r.Run(context.Background(), []Scenario{sc})[0]
	var se *ScenarioError
	if !errors.As(res.Err, &se) {
		t.Fatalf("want *ScenarioError, got %v", res.Err)
	}
	if se.Class != ClassTransient || se.Attempts != 2 {
		t.Errorf("class=%v attempts=%d, want transient/2", se.Class, se.Attempts)
	}
	var inj *fault.InjectedFault
	if !errors.As(res.Err, &inj) {
		t.Errorf("underlying injected fault not reachable via errors.As: %v", res.Err)
	}
}

func TestZeroPolicyRunsOnce(t *testing.T) {
	sc := Scenario{
		Name:   "once",
		System: core.PaperSystem(),
		Cycles: 400,
		Faults: &fault.Plan{Seed: 1, FailFirst: 1},
	}
	res := NewRunner(1).Run(context.Background(), []Scenario{sc})[0]
	var se *ScenarioError
	if !errors.As(res.Err, &se) {
		t.Fatalf("want *ScenarioError, got %v", res.Err)
	}
	if se.Attempts != 1 {
		t.Errorf("zero policy made %d attempts, want 1", se.Attempts)
	}
}

func TestPermanentFailureTypedAndIsolated(t *testing.T) {
	bad := core.PaperSystem()
	bad.NumActiveMasters = 0 // construction must fail deterministically
	scs := []Scenario{
		{Name: "ok-a", System: core.PaperSystem(), Cycles: 400},
		{Name: "broken", System: bad, Cycles: 400},
		{Name: "ok-b", System: core.PaperSystem(), Cycles: 400},
	}
	r := NewRunner(2)
	r.Retry = fastRetry(3)
	results := r.Run(context.Background(), scs)
	if results[0].Err != nil || results[2].Err != nil {
		t.Errorf("healthy scenarios failed: %v / %v", results[0].Err, results[2].Err)
	}
	var se *ScenarioError
	if !errors.As(results[1].Err, &se) {
		t.Fatalf("want *ScenarioError, got %v", results[1].Err)
	}
	if se.Class != ClassPermanent {
		t.Errorf("class=%v, want permanent", se.Class)
	}
	if se.Attempts != 1 {
		t.Errorf("permanent failure retried: %d attempts", se.Attempts)
	}
	if se.Name != "broken" || se.Index != 1 {
		t.Errorf("identity %q/%d, want broken/1", se.Name, se.Index)
	}
}

func TestScenarioTimeoutClassifiedNotRetried(t *testing.T) {
	// A tiny explicit workload keeps construction cheap; the huge cycle
	// count makes the simulation loop itself outlast the timeout.
	sc := Scenario{
		Name:   "slow",
		System: core.PaperSystem(),
		Workloads: []workload.Config{
			{Seed: 1, NumSequences: 2, PairsMin: 1, PairsMax: 2, AddrSize: 64},
		},
		Cycles:  200_000_000,
		Timeout: 50 * time.Millisecond,
	}
	r := NewRunner(1)
	r.Retry = fastRetry(3)
	start := time.Now()
	res := r.Run(context.Background(), []Scenario{sc})[0]
	if !errors.Is(res.Err, context.DeadlineExceeded) {
		t.Fatalf("want deadline error, got %v", res.Err)
	}
	var se *ScenarioError
	if !errors.As(res.Err, &se) {
		t.Fatalf("want *ScenarioError, got %v", res.Err)
	}
	if se.Class != ClassTimeout {
		t.Errorf("class=%v, want timeout", se.Class)
	}
	if se.Attempts != 1 {
		t.Errorf("timeout retried: %d attempts", se.Attempts)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timeout took %v to fire", elapsed)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want FailureClass
	}{
		{context.Canceled, ClassCanceled},
		{context.DeadlineExceeded, ClassTimeout},
		{fmt.Errorf("wrap: %w", context.DeadlineExceeded), ClassTimeout},
		{&fault.InjectedFault{}, ClassTransient},
		{fmt.Errorf("wrap: %w", &fault.InjectedFault{}), ClassTransient},
		{errors.New("boom"), ClassPermanent},
		{&ScenarioError{Class: ClassTransient, Err: errors.New("x")}, ClassTransient},
		// Context sentinels outrank the transient marker.
		{fmt.Errorf("%w after %w", context.Canceled, &fault.InjectedFault{}), ClassCanceled},
	}
	for i, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("case %d: Classify(%v) = %v, want %v", i, c.err, got, c.want)
		}
	}
}

func TestScenarioErrorMessage(t *testing.T) {
	se := &ScenarioError{Name: "x", Class: ClassTransient, Attempts: 3, Err: errors.New("boom")}
	msg := se.Error()
	for _, want := range []string{"boom", "transient", "3 attempt"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

func TestBackoffBoundsAndJitter(t *testing.T) {
	pol := RetryPolicy{MaxAttempts: 5, BaseBackoff: 10 * time.Millisecond,
		MaxBackoff: 40 * time.Millisecond, Jitter: 0}.normalized()
	wants := []time.Duration{10, 20, 40, 40}
	for i, w := range wants {
		if got := pol.backoff(i, nil); got != w*time.Millisecond {
			t.Errorf("backoff(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
}

// TestBackoffLargeAttemptsNoOverflow pins the overflow fix: with caps up
// to the int64 ceiling, deep attempt counts must clamp to the cap instead
// of doubling past it into a negative (then zero-sleep) delay.
func TestBackoffLargeAttemptsNoOverflow(t *testing.T) {
	const ceiling = time.Duration(math.MaxInt64)
	cases := []struct {
		name    string
		base    time.Duration
		max     time.Duration
		attempt int
		want    time.Duration
	}{
		{"attempt-40-huge-cap", time.Nanosecond, ceiling, 40, time.Nanosecond << 40},
		{"attempt-40-clamps", 10 * time.Millisecond, ceiling, 40, ceiling},
		{"attempt-63-huge-cap", 10 * time.Millisecond, ceiling, 63, ceiling},
		{"attempt-100-huge-cap", 10 * time.Millisecond, ceiling, 100, ceiling},
		{"attempt-100-half-ceiling", time.Second, ceiling / 2, 100, ceiling / 2},
		{"attempt-1000-normal-cap", time.Millisecond, time.Minute, 1000, time.Minute},
		{"base-at-ceiling", ceiling, ceiling, 50, ceiling},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			pol := RetryPolicy{MaxAttempts: 2, BaseBackoff: c.base, MaxBackoff: c.max}.normalized()
			got := pol.backoff(c.attempt, nil)
			if got != c.want {
				t.Errorf("backoff(%d) = %v, want %v", c.attempt, got, c.want)
			}
			if got <= 0 {
				t.Errorf("backoff(%d) = %v; the delay must stay positive", c.attempt, got)
			}
		})
	}
}

// TestBackoffJitterNeverOverflows checks the jittered path at the ceiling:
// the upward jitter excursion must clamp to the cap, not wrap negative.
func TestBackoffJitterNeverOverflows(t *testing.T) {
	pol := RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Second,
		MaxBackoff: time.Duration(math.MaxInt64), Jitter: 0.5}.normalized()
	rng := rand.New(rand.NewSource(1))
	for attempt := 38; attempt < 80; attempt++ {
		if got := pol.backoff(attempt, rng); got <= 0 {
			t.Fatalf("backoff(%d) = %v; jittered delay overflowed", attempt, got)
		}
	}
}
