package engine

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"time"
)

// FailureClass is the engine's failure taxonomy. Every executed scenario
// that fails is classified so batch consumers (the runner's retry loop,
// the serving layer, the chaos harness) can react per class instead of
// string-matching error text.
type FailureClass uint8

// Failure classes.
const (
	// ClassPermanent is a deterministic failure: invalid configuration,
	// construction or workload errors, panics. Retrying cannot help.
	ClassPermanent FailureClass = iota
	// ClassTransient is a failure marked retryable by its error (an
	// `interface{ Transient() bool }` in the chain, e.g. an injected
	// fault). The runner retries these under its RetryPolicy.
	ClassTransient
	// ClassTimeout means the scenario's own Timeout expired. A
	// deterministic simulation would time out again, so it is not retried.
	ClassTimeout
	// ClassCanceled means the batch context ended (drain, Ctrl-C, request
	// deadline) — an external decision, never retried.
	ClassCanceled
)

// String names the class.
func (c FailureClass) String() string {
	switch c {
	case ClassPermanent:
		return "permanent"
	case ClassTransient:
		return "transient"
	case ClassTimeout:
		return "timeout"
	case ClassCanceled:
		return "canceled"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// ScenarioError is the typed per-scenario failure a runner batch reports:
// the classified, attempt-annotated wrapper around the underlying error.
// One scenario failing this way never poisons its batch — every other
// scenario still completes and the batch returns normally.
type ScenarioError struct {
	// Name and Index identify the scenario within its batch.
	Name  string
	Index int
	// Class is the failure classification of the final attempt.
	Class FailureClass
	// Attempts is how many execution attempts were made.
	Attempts int
	// Err is the final attempt's underlying error.
	Err error
}

// Error implements error.
func (e *ScenarioError) Error() string {
	return fmt.Sprintf("%v (%s failure, %d attempt(s))", e.Err, e.Class, e.Attempts)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *ScenarioError) Unwrap() error { return e.Err }

// transient is the marker interface retryable errors implement (e.g.
// fault.InjectedFault).
type transient interface{ Transient() bool }

// Classify maps an error to its failure class. Context sentinels win over
// the transient marker: a run cancelled mid-retry is canceled, not
// transient.
func Classify(err error) FailureClass {
	var se *ScenarioError
	if errors.As(err, &se) {
		return se.Class
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return ClassTimeout
	case errors.Is(err, context.Canceled):
		return ClassCanceled
	}
	var t transient
	if errors.As(err, &t) && t.Transient() {
		return ClassTransient
	}
	return ClassPermanent
}

// RetryPolicy bounds how a Runner retries transiently failed scenarios.
// The zero value means a single attempt (no retries).
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget per scenario (first try
	// included); values below 1 mean 1.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; it doubles per
	// attempt up to MaxBackoff. Defaults (when MaxAttempts > 1): 10ms
	// base, 1s cap.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Jitter is the symmetric fractional randomization of each delay in
	// [0,1]: 0.2 means ±20%. Jitter draws come from a per-scenario seeded
	// PRNG, so batches stay deterministic in everything but wall time.
	Jitter float64
}

// DefaultRetryPolicy returns the policy CLIs and the serving layer start
// from: three attempts with 10ms → 500ms exponential backoff, ±20% jitter.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 500 * time.Millisecond, Jitter: 0.2}
}

// normalized fills the documented defaults.
func (p RetryPolicy) normalized() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 10 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = time.Second
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	return p
}

// backoff computes the (jittered) delay before retry number attempt
// (0-based: attempt 0 failed, delay precedes attempt 1). Doubling stops
// as soon as the next step would reach or overflow the cap: with a cap
// near the int64 ceiling, unbounded `d *= 2` wraps negative around
// attempt 40 and the final clamps would turn the longest waits into
// zero-sleep hot retry loops.
func (p RetryPolicy) backoff(attempt int, rng *rand.Rand) time.Duration {
	d := p.BaseBackoff
	for i := 0; i < attempt && d < p.MaxBackoff; i++ {
		if d > p.MaxBackoff/2 {
			d = p.MaxBackoff
			break
		}
		d *= 2
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	if p.Jitter > 0 {
		// Jitter in float space, clamped before the cast back: converting
		// an out-of-range float to time.Duration is not defined to
		// saturate, so a near-ceiling cap jittered upward must not wrap.
		f := float64(d) * (1 + p.Jitter*(2*rng.Float64()-1))
		if f >= float64(math.MaxInt64) {
			d = p.MaxBackoff
		} else {
			d = time.Duration(f)
		}
	}
	if d < 0 {
		d = 0
	}
	return d
}

// runScenario is the runner's per-scenario execution loop: attempts under
// the retry policy, classification, and wrapping into ScenarioError.
// Scenarios that never started because the batch context was already done
// keep the raw context error (matching the abandoned-scenario contract of
// Run); every other failure comes back typed.
func (r *Runner) runScenario(ctx context.Context, index int, sc Scenario) Result {
	pol := r.Retry.normalized()
	var rng *rand.Rand
	for attempt := 0; ; attempt++ {
		res := executeAttempt(ctx, index, sc, attempt)
		if res.Err == nil {
			return res
		}
		class := Classify(res.Err)
		// Raw context sentinels mean the scenario never ran (pre-start
		// check) — leave them untouched for the abandoned-path contract.
		if res.Err != context.Canceled && res.Err != context.DeadlineExceeded {
			res.Err = &ScenarioError{Name: sc.Name, Index: index, Class: class, Attempts: attempt + 1, Err: res.Err}
		}
		if class != ClassTransient || attempt+1 >= pol.MaxAttempts || ctx.Err() != nil {
			return res
		}
		if rng == nil {
			rng = rand.New(rand.NewSource(jitterSeed(sc.Name, index)))
		}
		delay := pol.backoff(attempt, rng)
		// Fail fast when the context deadline lands inside the backoff
		// window: sleeping out the delay just to observe the expiry would
		// report the scenario with the transient class of the last attempt
		// after burning the caller's remaining deadline doing nothing.
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= delay {
			res.Err = &ScenarioError{Name: sc.Name, Index: index, Class: ClassTimeout, Attempts: attempt + 1,
				Err: fmt.Errorf("engine: scenario %q: retry backoff %v outlives the context deadline: %w",
					sc.Name, delay, context.DeadlineExceeded)}
			return res
		}
		t := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return res
		case <-t.C:
		}
	}
}

// jitterSeed derives a deterministic backoff-jitter seed from the
// scenario's identity, so retry schedules are reproducible too.
func jitterSeed(name string, index int) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	var b [8]byte
	for i := range b {
		b[i] = byte(index >> (8 * i))
	}
	h.Write(b[:])
	return int64(h.Sum64())
}
