package engine

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"ahbpower/internal/core"
	"ahbpower/internal/metrics"
)

// TestCancellationMidBatchKeepsCompletedResults cancels a multi-worker
// batch partway through: scenarios that finished before the cancellation
// must keep complete, well-formed results; everything else must carry
// exactly context.Canceled; and the result slice must stay in input order.
func TestCancellationMidBatchKeepsCompletedResults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const n = 12
	const cycles = 1500
	scs := make([]Scenario, n)
	for i := range scs {
		scs[i] = Scenario{Name: fmt.Sprintf("sc%d", i), System: core.PaperSystem(), Cycles: cycles}
	}
	// With two workers feeding jobs in order, scenario 6 starts only after
	// at least five earlier scenarios completed — so the cancel fires with
	// a mix of finished, in-flight and queued work.
	scs[6].Setup = func(*core.System) error {
		cancel()
		return nil
	}
	results := NewRunner(2).Run(ctx, scs)
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	completed, cancelled := 0, 0
	for i, r := range results {
		if r.Index != i {
			t.Errorf("result %d has Index %d; batch order must be preserved", i, r.Index)
		}
		switch {
		case r.Err == nil:
			completed++
			if r.Report == nil || r.Report.Cycles != cycles || r.Report.TotalEnergy <= 0 {
				t.Errorf("scenario %d finished but its report is incomplete: %+v", i, r.Report)
			}
		case errors.Is(r.Err, context.Canceled):
			cancelled++
		default:
			t.Errorf("scenario %d: unexpected error %v", i, r.Err)
		}
	}
	if completed == 0 {
		t.Error("scenarios finished before the cancellation must keep their results")
	}
	if cancelled == 0 {
		t.Error("cancellation fired mid-batch but no scenario was cancelled")
	}
}

// TestCancelledRunFlushesTraceSamples cancels a single scenario
// mid-simulation with a trace attached: the analyzer's batched sample
// buffer must still be flushed on the cancelled exit path, so the trace
// holds every settled cycle simulated up to the cancellation, not just
// full 256-sample batches.
func TestCancelledRunFlushesTraceSamples(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	tr, err := metrics.NewTrace(metrics.TraceConfig{Window: 100e-9})
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{
		Name:     "cancelled-trace",
		System:   core.PaperSystem(),
		Cycles:   500000,
		Analyzer: core.AnalyzerConfig{Style: core.StyleGlobal, Trace: tr},
		Setup: func(sys *core.System) error {
			sys.K.Schedule(100*sys.Cfg.ClockPeriod, func() { cancel() })
			return nil
		},
	}
	res := RunOne(ctx, sc)
	if !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", res.Err)
	}
	got := tr.Cycles()
	if got == 0 {
		t.Fatal("trace saw no cycles; buffered samples were dropped on cancellation")
	}
	// The run stops at a chunk boundary shortly after the cancel at cycle
	// ~100; far fewer than one full 256-sample batch ever accumulated, so
	// a non-empty trace proves the partial buffer was flushed. It must
	// also be nowhere near the full requested run.
	if got >= 500000/2 {
		t.Errorf("trace saw %d cycles; cancellation did not stop the run mid-flight", got)
	}
}
