package engine

import (
	"context"
	"sync"
	"testing"
	"time"

	"ahbpower/internal/core"
	"ahbpower/internal/fault"
	"ahbpower/internal/metrics"
	"ahbpower/internal/power"
	"ahbpower/internal/topo"
	"ahbpower/internal/workload"
)

func hashableScenario() Scenario {
	return Scenario{
		Name:     "paper",
		System:   core.PaperSystem(),
		Analyzer: core.AnalyzerConfig{Style: core.StyleGlobal},
		Cycles:   500,
	}
}

func TestCanonicalKeyDeterministic(t *testing.T) {
	a, b := hashableScenario(), hashableScenario()
	ka, ok := a.CanonicalKey()
	if !ok || ka == "" {
		t.Fatalf("CanonicalKey = %q, %v; want non-empty, true", ka, ok)
	}
	kb, _ := b.CanonicalKey()
	if ka != kb {
		t.Errorf("identical scenarios hash differently: %s vs %s", ka, kb)
	}
	if k2, _ := a.CanonicalKey(); k2 != ka {
		t.Errorf("re-hashing the same scenario changed the key: %s vs %s", k2, ka)
	}
}

func TestCanonicalKeySensitivity(t *testing.T) {
	bsc := hashableScenario()
	base, _ := bsc.CanonicalKey()
	muts := map[string]func(*Scenario){
		"Name":         func(sc *Scenario) { sc.Name = "other" },
		"Cycles":       func(sc *Scenario) { sc.Cycles = 501 },
		"NumSlaves":    func(sc *Scenario) { sc.System.NumSlaves = 4 },
		"DataWidth":    func(sc *Scenario) { sc.System.DataWidth = 16 },
		"SlaveWaits":   func(sc *Scenario) { sc.System.SlaveWaits = 1 },
		"Policy":       func(sc *Scenario) { sc.System.Policy++ },
		"Style":        func(sc *Scenario) { sc.Analyzer.Style = core.StylePrivate },
		"Tech":         func(sc *Scenario) { sc.Analyzer.Tech = power.Tech{VDD: 1.2, CPD: 1e-15, CO: 2e-15} },
		"DPM":          func(sc *Scenario) { sc.Analyzer.DPM = &core.DPMConfig{IdleThreshold: 4} },
		"SkipAnalyzer": func(sc *Scenario) { sc.SkipAnalyzer = true },
		"Workloads": func(sc *Scenario) {
			sc.Workloads = []workload.Config{{Seed: 1, NumSequences: 2, PairsMin: 1, PairsMax: 2, AddrSize: 64}}
		},
		"RecordActivity":  func(sc *Scenario) { sc.Analyzer.RecordActivity = true },
		"ClockPeriod":     func(sc *Scenario) { sc.System.ClockPeriod *= 2 },
		"DefaultMaster":   func(sc *Scenario) { sc.System.WithDefaultMaster = false },
		"SlaveRegionSize": func(sc *Scenario) { sc.System.SlaveRegionSize = 0x2000 },
	}
	for name, mut := range muts {
		sc := hashableScenario()
		mut(&sc)
		k, ok := sc.CanonicalKey()
		if !ok {
			t.Errorf("%s: mutated scenario unexpectedly unhashable", name)
			continue
		}
		if k == base {
			t.Errorf("%s: mutation did not change the canonical key", name)
		}
	}
	// v2 fields: a fault plan and a per-scenario timeout are simulation
	// inputs and must separate keys.
	fmuts := map[string]func(*Scenario){
		"Faults":    func(sc *Scenario) { sc.Faults = &fault.Plan{Seed: 1} },
		"FaultSeed": func(sc *Scenario) { sc.Faults = &fault.Plan{Seed: 2} },
		"FaultRule": func(sc *Scenario) {
			sc.Faults = &fault.Plan{Seed: 1, Rules: []fault.Rule{{Kind: fault.KindError, Slave: -1, Master: -1, Count: 1}}}
		},
		"FaultRuleArg": func(sc *Scenario) {
			sc.Faults = &fault.Plan{Seed: 1, Rules: []fault.Rule{{Kind: fault.KindError, Slave: -1, Master: -1, Count: 2}}}
		},
		"FailFirst": func(sc *Scenario) { sc.Faults = &fault.Plan{Seed: 1, FailFirst: 1} },
		"Timeout":   func(sc *Scenario) { sc.Timeout = time.Second },
	}
	seen := map[string]string{"base": base}
	for name, mut := range fmuts {
		sc := hashableScenario()
		mut(&sc)
		k, ok := sc.CanonicalKey()
		if !ok {
			t.Errorf("%s: fault-carrying scenario must stay hashable", name)
			continue
		}
		for other, ko := range seen {
			if k == ko {
				t.Errorf("%s collides with %s", name, other)
			}
		}
		seen[name] = k
	}
	// Identical plans hash identically.
	fa, fb := hashableScenario(), hashableScenario()
	fa.Faults = &fault.Plan{Seed: 9, Rules: []fault.Rule{{Kind: fault.KindSplit, Slave: -1, Master: -1, Hold: 3}}}
	fb.Faults = &fault.Plan{Seed: 9, Rules: []fault.Rule{{Kind: fault.KindSplit, Slave: -1, Master: -1, Hold: 3}}}
	fka, _ := fa.CanonicalKey()
	fkb, _ := fb.CanonicalKey()
	if fka != fkb {
		t.Error("identical fault plans hash differently")
	}

	// Workload seed must separate otherwise identical traffic configs.
	wa, wb := hashableScenario(), hashableScenario()
	wa.Workloads = []workload.Config{{Seed: 1, NumSequences: 2, PairsMin: 1, PairsMax: 2, AddrSize: 64}}
	wb.Workloads = []workload.Config{{Seed: 2, NumSequences: 2, PairsMin: 1, PairsMax: 2, AddrSize: 64}}
	ka, _ := wa.CanonicalKey()
	kb, _ := wb.CanonicalKey()
	if ka == kb {
		t.Error("workload seed change did not change the canonical key")
	}
}

// TestCanonicalKeyIgnoresBackend pins the cache-sharing contract: the
// execution backend is a hint about *how* a scenario runs, never about
// *what* it computes, so it must not separate canonical keys. A result
// cached from an event run answers a compiled request and vice versa.
func TestCanonicalKeyIgnoresBackend(t *testing.T) {
	base := hashableScenario()
	bk, ok := base.CanonicalKey()
	if !ok {
		t.Fatal("base scenario unhashable")
	}
	for _, backend := range []string{"event", "compiled", "auto"} {
		sc := hashableScenario()
		sc.Backend = backend
		k, ok := sc.CanonicalKey()
		if !ok {
			t.Fatalf("backend %q: scenario unexpectedly unhashable", backend)
		}
		if k != bk {
			t.Errorf("backend %q changed the canonical key: %s vs %s", backend, k, bk)
		}
	}
}

func TestCanonicalKeyUnhashable(t *testing.T) {
	cases := map[string]func(*Scenario){
		"Setup":      func(sc *Scenario) { sc.Setup = func(*core.System) error { return nil } },
		"KeepSystem": func(sc *Scenario) { sc.KeepSystem = true },
		"Models":     func(sc *Scenario) { sc.Analyzer.Models = &power.Models{} },
		"Trace": func(sc *Scenario) {
			tr, _ := metrics.NewTrace(metrics.TraceConfig{Window: 1e-6})
			sc.Analyzer.Trace = tr
		},
	}
	for name, mut := range cases {
		sc := hashableScenario()
		mut(&sc)
		if k, ok := sc.CanonicalKey(); ok {
			t.Errorf("%s: scenario with out-of-band state hashed to %s, want unhashable", name, k)
		}
	}
	// SkipAnalyzer makes analyzer-side state irrelevant: a Trace on a
	// skipped analyzer does not block hashing.
	sc := hashableScenario()
	sc.SkipAnalyzer = true
	sc.Analyzer.Models = &power.Models{}
	if _, ok := sc.CanonicalKey(); !ok {
		t.Error("SkipAnalyzer scenario with Models set must still be hashable")
	}
}

// TestCanonicalKeyAddressesIdenticalResults is the property the serving
// result cache relies on: equal keys imply byte-identical results.
func TestCanonicalKeyAddressesIdenticalResults(t *testing.T) {
	a := RunOne(context.Background(), hashableScenario())
	b := RunOne(context.Background(), hashableScenario())
	if a.Err != nil || b.Err != nil {
		t.Fatalf("runs failed: %v / %v", a.Err, b.Err)
	}
	if a.Report.TotalEnergy != b.Report.TotalEnergy {
		t.Errorf("same canonical scenario, different energies: %g vs %g",
			a.Report.TotalEnergy, b.Report.TotalEnergy)
	}
	if a.Beats != b.Beats {
		t.Errorf("same canonical scenario, different beats: %d vs %d", a.Beats, b.Beats)
	}
}

func TestRunnerHooks(t *testing.T) {
	scs := make([]Scenario, 4)
	for i := range scs {
		scs[i] = hashableScenario()
		scs[i].Cycles = 200
	}
	var mu sync.Mutex
	started := map[int]bool{}
	var done []int
	r := NewRunner(2)
	r.OnStart = func(i int) {
		mu.Lock()
		started[i] = true
		mu.Unlock()
	}
	r.OnDone = func(res Result) {
		mu.Lock()
		done = append(done, res.Index)
		mu.Unlock()
	}
	results := r.Run(context.Background(), scs)
	if err := FirstError(results); err != nil {
		t.Fatal(err)
	}
	if len(started) != len(scs) || len(done) != len(scs) {
		t.Errorf("hooks fired for %d starts / %d dones, want %d each", len(started), len(done), len(scs))
	}
}

// TestCanonicalKeyCountVsTopologyTwins is the cache-sharing half of the
// API redesign contract: a count-based scenario and its explicit
// topology twin canonicalize to the same form, so they must share one
// cache key. A topology request on the serving daemon then hits a
// result cached from a legacy count-based request, and vice versa.
func TestCanonicalKeyCountVsTopologyTwins(t *testing.T) {
	counts := hashableScenario()
	twin := topo.Topology{
		Masters: []topo.Master{{}, {}, {Default: true}},
		Slaves: []topo.Slave{
			{Regions: []topo.AddrRange{{Start: 0x0000, Size: 0x1000}}},
			{Regions: []topo.AddrRange{{Start: 0x1000, Size: 0x1000}}},
			{Regions: []topo.AddrRange{{Start: 0x2000, Size: 0x1000}}},
		},
	}
	tsc := Scenario{
		Name:     "paper",
		Topo:     &twin,
		Analyzer: core.AnalyzerConfig{Style: core.StyleGlobal},
		Cycles:   500,
	}
	kc, ok := counts.CanonicalKey()
	if !ok {
		t.Fatal("count-based scenario unhashable")
	}
	kt, ok := tsc.CanonicalKey()
	if !ok {
		t.Fatal("topology scenario unhashable")
	}
	if kc != kt {
		t.Errorf("paper twins hash differently:\ncounts: %s\ntopo:   %s", kc, kt)
	}
}

// TestCanonicalKeyTopologySensitivity: every topology field a request
// can set is a simulation input and must separate keys.
func TestCanonicalKeyTopologySensitivity(t *testing.T) {
	baseTopo := func() topo.Topology {
		return topo.Topology{
			Masters: []topo.Master{{}, {}, {Default: true}},
			Slaves: []topo.Slave{
				{Regions: []topo.AddrRange{{Start: 0x0000, Size: 0x1000}}},
				{Regions: []topo.AddrRange{{Start: 0x1000, Size: 0x1000}}},
			},
		}
	}
	mkScen := func(tp topo.Topology) Scenario {
		return Scenario{Name: "t", Topo: &tp, Analyzer: core.AnalyzerConfig{Style: core.StyleGlobal}, Cycles: 500}
	}
	bsc := mkScen(baseTopo())
	base, ok := bsc.CanonicalKey()
	if !ok {
		t.Fatal("base topology scenario unhashable")
	}
	muts := map[string]func(*topo.Topology){
		"ClockPeriodPS": func(tp *topo.Topology) { tp.ClockPeriodPS = 8000 },
		"DataWidth":     func(tp *topo.Topology) { tp.DataWidth = 16 },
		"Policy":        func(tp *topo.Topology) { tp.Policy = "rr" },
		"MasterCount":   func(tp *topo.Topology) { tp.Masters = append(tp.Masters, topo.Master{}) },
		"MasterName":    func(tp *topo.Topology) { tp.Masters[0].Name = "cpu" },
		"DefaultMaster": func(tp *topo.Topology) { tp.Masters[2].Default = false },
		"SlaveWaits":    func(tp *topo.Topology) { tp.Slaves[1].Waits = 3 },
		"SlaveName":     func(tp *topo.Topology) { tp.Slaves[0].Name = "rom" },
		"RegionStart":   func(tp *topo.Topology) { tp.Slaves[1].Regions[0].Start = 0x4000 },
		"RegionSize":    func(tp *topo.Topology) { tp.Slaves[1].Regions[0].Size = 0x2000 },
		"RegionCount": func(tp *topo.Topology) {
			tp.Slaves[1].Regions = append(tp.Slaves[1].Regions, topo.AddrRange{Start: 0x4000, Size: 0x400})
		},
		"WorkloadHints": func(tp *topo.Topology) {
			w := &topo.Workload{Seed: 1, Sequences: 2, PairsMin: 1, PairsMax: 2}
			tp.Masters[0].Workload = w
			tp.Masters[1].Workload = w
		},
	}
	for name, mut := range muts {
		tp := baseTopo()
		mut(&tp)
		sc := mkScen(tp)
		k, ok := sc.CanonicalKey()
		if !ok {
			t.Errorf("%s: mutated topology scenario unexpectedly unhashable", name)
			continue
		}
		if k == base {
			t.Errorf("%s: topology mutation did not change the canonical key", name)
		}
	}
	// Canonically equivalent spellings must collide: explicit defaults
	// and region order are normalized away before hashing.
	spelled := baseTopo()
	spelled.ClockPeriodPS = topo.DefaultClockPeriodPS
	spelled.DataWidth = topo.DefaultDataWidth
	spelled.Policy = "sticky"
	spelled.Masters[0].Name = "m0"
	sc := mkScen(spelled)
	if k, _ := sc.CanonicalKey(); k != base {
		t.Error("explicitly spelled defaults must hash like omitted defaults")
	}
}

// TestCanonicalKeyAccuracy pins the v4 cache-isolation contract: the two
// spellings of the exact class ("" and "cycle") share one key, and the
// transaction class never shares a cache entry with either.
func TestCanonicalKeyAccuracy(t *testing.T) {
	def := hashableScenario()
	base, ok := def.CanonicalKey()
	if !ok {
		t.Fatal("base scenario not hashable")
	}
	cyc := hashableScenario()
	cyc.Accuracy = AccuracyCycle
	kc, ok := cyc.CanonicalKey()
	if !ok {
		t.Fatal("cycle scenario not hashable")
	}
	if kc != base {
		t.Errorf("explicit %q accuracy changed the key: %s vs %s", AccuracyCycle, kc, base)
	}
	tr := hashableScenario()
	tr.Accuracy = AccuracyTransaction
	kt, ok := tr.CanonicalKey()
	if !ok {
		t.Fatal("transaction scenario not hashable")
	}
	if kt == base {
		t.Errorf("%q accuracy shares the cycle-accurate key %s; estimates must be cache-isolated",
			AccuracyTransaction, base)
	}
}
