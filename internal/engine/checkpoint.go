package engine

// Checkpoint/resume: the engine-level face of the core snapshot protocol
// (internal/core/snapshot.go). A scenario that carries a CheckpointConfig
// periodically serializes its complete kernel-resident state — signal
// values, master/arbiter/decoder FSM state, analyzer energy accumulators
// and fault-PRNG stream positions — at the settled chunk boundaries of
// core.RunContextStepped, and can be restarted from the latest snapshot
// instead of cycle 0. The golden suites prove a resumed run is
// Float64bits-identical to an uninterrupted one on every eligible
// backend, which is what lets the serving layer treat "resume from
// checkpoint" and "run from scratch" as the same result.

// CheckpointConfig enables crash-safe snapshots for one scenario. It is
// an execution detail exactly like the Backend hint: it never changes
// what a scenario computes, so it is excluded from CanonicalKey and a
// cached result still answers a checkpoint-requesting scenario.
type CheckpointConfig struct {
	// Every is the minimum number of cycles between snapshots; the engine
	// clamps it up to the run-chunk size. Zero means "every chunk".
	Every uint64
	// Save, when non-nil, persists one serialized snapshot taken at the
	// given absolute cycle. A Save error aborts the run (callers that
	// want best-effort persistence swallow errors themselves and return
	// nil).
	Save func(cycle uint64, snapshot []byte) error
	// Resume, when non-empty, is a serialized snapshot (a prior Save
	// payload) to restore before running; the scenario then executes only
	// the cycles past the snapshot. The snapshot must come from the same
	// canonical scenario — restore verifies shape and fails otherwise.
	Resume []byte
}

// CheckpointUnsupported returns the reason this scenario cannot be
// checkpointed, or "" when it is eligible (or requests no
// checkpointing). Eligibility spans two layers: the execution traits
// (custom Setup hooks and DPM estimators hold state outside the
// snapshot) and the analyzer configuration (streaming consumers —
// windowed traces, activity stores, trace recorders — hold unserialized
// mid-run state). Ineligible scenarios run to completion without
// snapshots and the reason is surfaced in Result.CheckpointFallback;
// only an explicit Resume against an ineligible scenario is an error.
func (sc *Scenario) CheckpointUnsupported() string {
	if sc.Checkpoint == nil {
		return ""
	}
	if reason := sc.ExecTraits().CheckpointUnsupported(); reason != "" {
		return reason
	}
	if !sc.SkipAnalyzer {
		if reason := sc.Analyzer.SnapshotUnsupported(); reason != "" {
			return reason
		}
	}
	return ""
}
