package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ahbpower/internal/topo"
)

func postPath(h http.Handler, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

// paperTwinJSON is the explicit-topology spelling of the default
// (count-based) paper system.
const paperTwinJSON = `{"masters":[{},{},{"default":true}],"slaves":[
	{"regions":[{"start":0,"size":4096}]},
	{"regions":[{"start":4096,"size":4096}]},
	{"regions":[{"start":8192,"size":4096}]}]}`

// overlapTopoJSON fails the ERC pass: slave 1's region sits inside
// slave 0's.
const overlapTopoJSON = `{"masters":[{},{"default":true}],"slaves":[
	{"regions":[{"start":0,"size":4096}]},
	{"regions":[{"start":2048,"size":4096}]}]}`

func ercCodes(errs []topo.Error) []topo.Code {
	out := make([]topo.Code, len(errs))
	for i, e := range errs {
		out[i] = e.Code
	}
	return out
}

// TestTopologyRejectedBeforeAdmission posts a run whose topology fails
// the ERC pass and asserts the rejection is a structured 400 carrying
// typed rule codes — produced at decode time, before admission, so
// nothing was queued or executed.
func TestTopologyRejectedBeforeAdmission(t *testing.T) {
	s := New(Config{Workers: 1})
	h := s.Handler()

	rr := post(h, `{"scenarios":[{"name":"bad","cycles":1000,"topology":`+overlapTopoJSON+`}]}`)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400; body %s", rr.Code, rr.Body.String())
	}
	var ew ErrorWire
	if err := json.Unmarshal(rr.Body.Bytes(), &ew); err != nil {
		t.Fatalf("400 body is not structured: %v\n%s", err, rr.Body.String())
	}
	if ew.Error == "" || !strings.Contains(ew.Error, "bad") {
		t.Errorf("error message %q should name the scenario", ew.Error)
	}
	found := false
	for _, e := range ew.Erc {
		if e.Code == topo.ErrAddrOverlap {
			found = true
			if e.Path == "" || e.Detail == "" {
				t.Errorf("finding missing path/detail: %+v", e)
			}
		}
	}
	if !found {
		t.Errorf("400 body lacks %s: erc_errors=%v", topo.ErrAddrOverlap, ercCodes(ew.Erc))
	}
	if s.ctr.scenariosRun.Value() != 0 {
		t.Errorf("rejected request executed %d scenarios, want 0", s.ctr.scenariosRun.Value())
	}
	if s.ctr.badRequests.Value() != 1 {
		t.Errorf("bad_requests = %d, want 1", s.ctr.badRequests.Value())
	}

	// system and topology together are ambiguous and rejected (a plain
	// decode error: no ERC findings attached).
	rr = post(h, `{"scenarios":[{"name":"both","cycles":1000,"system":{"masters":2,"slaves":3},"topology":`+paperTwinJSON+`}]}`)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("system+topology: status %d, want 400", rr.Code)
	}
	var both ErrorWire
	if err := json.Unmarshal(rr.Body.Bytes(), &both); err != nil || len(both.Erc) != 0 {
		t.Errorf("mutual-exclusion rejection should carry no ERC findings: %v %s", err, rr.Body.String())
	}
}

// TestTopologyCountsShareCache posts the default count-based paper
// scenario and then its explicit topology twin: the twin must be a pure
// cache hit with byte-identical result payload, because both canonical-
// ize to the same topology and therefore the same key.
func TestTopologyCountsShareCache(t *testing.T) {
	s := New(Config{Workers: 1})
	h := s.Handler()

	first := post(h, `{"scenarios":[{"name":"twin","cycles":2000}]}`)
	if first.Code != http.StatusOK {
		t.Fatalf("count-based run: status %d, body %s", first.Code, first.Body.String())
	}
	r1 := decodeRun(t, first)
	if r1.Batch.CacheMisses != 1 {
		t.Fatalf("count-based run: misses=%d, want 1", r1.Batch.CacheMisses)
	}

	second := post(h, `{"scenarios":[{"name":"twin","cycles":2000,"topology":`+paperTwinJSON+`}]}`)
	if second.Code != http.StatusOK {
		t.Fatalf("topology run: status %d, body %s", second.Code, second.Body.String())
	}
	r2 := decodeRun(t, second)
	if r2.Batch.CacheHits != 1 || r2.Batch.CacheMisses != 0 {
		t.Fatalf("topology twin: hits=%d misses=%d, want a pure cache hit",
			r2.Batch.CacheHits, r2.Batch.CacheMisses)
	}
	if string(r1.Results[0]) != string(r2.Results[0]) {
		t.Errorf("twin forms produced different result bytes:\ncounts: %s\ntopo:   %s",
			r1.Results[0], r2.Results[0])
	}
}

// TestValidateEndpoint exercises POST /v1/validate: a dry-run report
// with typed findings per scenario, no execution, and the dedicated
// expvar counters.
func TestValidateEndpoint(t *testing.T) {
	s := New(Config{Workers: 1})
	h := s.Handler()

	// One valid-with-warning scenario (address-map gap) and one ERC
	// rejection in the same batch.
	gapTopo := `{"masters":[{},{"default":true}],"slaves":[
		{"regions":[{"start":0,"size":4096}]},
		{"regions":[{"start":16384,"size":4096}]}]}`
	rr := postPath(h, "/v1/validate", `{"scenarios":[
		{"name":"gappy","cycles":1000,"topology":`+gapTopo+`},
		{"name":"broken","cycles":1000,"topology":`+overlapTopoJSON+`}]}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("validate: status %d, want 200 (the report is the payload); body %s", rr.Code, rr.Body.String())
	}
	var resp ValidateResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding validate response: %v\n%s", err, rr.Body.String())
	}
	if resp.Valid || len(resp.Results) != 2 {
		t.Fatalf("valid=%v results=%d, want invalid batch with 2 results", resp.Valid, len(resp.Results))
	}
	gappy, broken := resp.Results[0], resp.Results[1]
	if !gappy.Valid || gappy.Key == "" || gappy.Error != "" {
		t.Errorf("gappy should validate with a canonical key: %+v", gappy)
	}
	foundGap := false
	for _, w := range gappy.Warnings {
		if w.Code == topo.WarnAddrGap {
			foundGap = true
		}
	}
	if !foundGap {
		t.Errorf("gappy warnings lack %s: %+v", topo.WarnAddrGap, gappy.Warnings)
	}
	if broken.Valid || broken.Key != "" {
		t.Errorf("broken must be invalid with no key: %+v", broken)
	}
	foundOverlap := false
	for _, e := range broken.Errors {
		if e.Code == topo.ErrAddrOverlap {
			foundOverlap = true
		}
	}
	if !foundOverlap {
		t.Errorf("broken errors lack %s: %v", topo.ErrAddrOverlap, ercCodes(broken.Errors))
	}

	// A clean batch reports valid and does not bump the reject counter.
	rr = postPath(h, "/v1/validate", `{"scenarios":[{"name":"ok","cycles":1000,"topology":`+paperTwinJSON+`}]}`)
	var clean ValidateResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &clean); err != nil || !clean.Valid {
		t.Errorf("clean validate: err=%v resp=%+v", err, clean)
	}
	if len(clean.Results) != 1 || len(clean.Results[0].Warnings) != 0 {
		t.Errorf("paper twin should be warning-free: %+v", clean.Results)
	}

	// Non-ERC decode failures surface per scenario as plain errors.
	rr = postPath(h, "/v1/validate", `{"scenarios":[{"name":"nocycles","topology":`+paperTwinJSON+`}]}`)
	var nc ValidateResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &nc); err != nil || nc.Valid {
		t.Fatalf("zero-cycles validate: err=%v resp=%+v", err, nc)
	}
	if nc.Results[0].Error == "" || len(nc.Results[0].Errors) != 0 {
		t.Errorf("non-ERC failure should use the plain error field: %+v", nc.Results[0])
	}

	// Nothing executed; counters tallied every call.
	if s.ctr.scenariosRun.Value() != 0 {
		t.Errorf("validate executed %d scenarios, want 0", s.ctr.scenariosRun.Value())
	}
	if got := s.ctr.validateRequests.Value(); got != 3 {
		t.Errorf("validate_requests = %d, want 3", got)
	}
	if got := s.ctr.validateRejects.Value(); got != 2 {
		t.Errorf("validate_rejects = %d, want 2", got)
	}

	// An undecodable body is still a 400.
	if rr := postPath(h, "/v1/validate", `not json`); rr.Code != http.StatusBadRequest {
		t.Errorf("garbage validate body: status %d, want 400", rr.Code)
	}
}

// TestRegionSizePropagation pins the count-based alias's slave_region_-
// size field: it shapes the canonical address map (and therefore the
// run), and non-1KB sizes are rejected with the typed ERC code.
func TestRegionSizePropagation(t *testing.T) {
	s := New(Config{Workers: 1})
	h := s.Handler()

	body := func(size int) string {
		return `{"scenarios":[{"name":"rs","cycles":1500,` +
			`"system":{"masters":2,"slaves":3,"slave_region_size":` +
			jsonInt(size) + `}}]}`
	}
	ok := post(h, body(2048))
	if ok.Code != http.StatusOK {
		t.Fatalf("2 KB regions: status %d, body %s", ok.Code, ok.Body.String())
	}
	r := decodeRun(t, ok)
	var res wireResult
	if err := json.Unmarshal(r.Results[0], &res); err != nil || res.Error != "" {
		t.Fatalf("2 KB region run failed: %v %s", err, r.Results[0])
	}

	// A non-1KB-multiple size flows into the canonical topology and is
	// rejected by the same ERC rule as explicit regions — at run time for
	// the legacy alias (wire-level validation is topology-only), with the
	// typed code in the message.
	bad := post(h, body(1536))
	if bad.Code != http.StatusOK {
		t.Fatalf("legacy alias rejections are per-scenario: status %d", bad.Code)
	}
	rb := decodeRun(t, bad)
	var resBad wireResult
	if err := json.Unmarshal(rb.Results[0], &resBad); err != nil || resBad.Error == "" {
		t.Fatalf("1536 B regions must fail the run: %v %s", err, rb.Results[0])
	}
	if !strings.Contains(resBad.Error, string(topo.ErrRegion1KB)) {
		t.Errorf("error %q should carry %s", resBad.Error, topo.ErrRegion1KB)
	}
}

func jsonInt(i int) string {
	b, _ := json.Marshal(i)
	return string(b)
}
