package serve

import (
	"container/list"
	"sync"
)

// cache is a bounded LRU result cache, content-addressed by the
// scenario's canonical key. Values are the marshaled ResultWire bytes of
// a successful run: storing the serialized form (rather than the struct)
// is what makes a cache hit byte-identical to the fresh response — the
// same bytes are embedded either way, with no second marshal involved.
//
// Only successful, canonicalizable results are stored; failures and
// cancellations must re-run (a deadline hit under load says nothing
// about the scenario itself).
type cache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
}

type cacheEntry struct {
	key   string
	value []byte
}

// newCache creates a cache holding at most max entries; max <= 0
// disables caching (every lookup misses, stores are dropped).
func newCache(max int) *cache {
	return &cache{max: max, entries: map[string]*list.Element{}, lru: list.New()}
}

// get returns the cached bytes for key and whether they were present.
func (c *cache) get(key string) ([]byte, bool) {
	if c.max <= 0 || key == "" {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).value, true
}

// put stores value under key, evicting the least recently used entry
// when full. Callers must not mutate value afterwards.
func (c *cache) put(key string, value []byte) {
	if c.max <= 0 || key == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// Deterministic runs make re-stores identical; keep the first.
		c.lru.MoveToFront(el)
		return
	}
	for c.lru.Len() >= c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, value: value})
}

// size returns the current entry count.
func (c *cache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
