package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

// Durable daemon state. A server configured with Config.StateDir keeps
// three kinds of on-disk state under it:
//
//   - journal.jsonl — an append-only write-ahead journal of the async
//     job lifecycle: one "accepted" entry (carrying the full RunRequest)
//     when a job is admitted, one "scenario" entry per cacheable
//     scenario completion, and one "retired" entry (terminal status plus
//     the marshaled response) when the job finishes — done or cancelled.
//   - results/<key>.json — the disk tier of the content-addressed result
//     cache: the exact marshaled ResultWire bytes the memory cache
//     holds, keyed by engine.Scenario.CanonicalKey. Because the stored
//     form is the serialized bytes, a result served from disk after a
//     restart is byte-identical to the response of the run that
//     produced it.
//   - checkpoints/<key>.ckpt — the latest engine checkpoint snapshot of
//     each in-progress scenario, replaced as the run advances and
//     deleted when the scenario completes.
//
// On startup the journal is replayed: retired jobs are restored
// queryable with their original responses, and accepted-but-unretired
// jobs (the ones a crash interrupted) are re-admitted — completed
// scenarios answer from the disk cache, interrupted long scenarios
// resume from their latest checkpoint, and only the genuinely
// unfinished remainder is re-simulated. Replay is idempotent: entries
// are folded by job id, so replaying the same journal any number of
// times yields the same job set.

// Journal entry types.
const (
	journalAccepted = "accepted"
	journalScenario = "scenario"
	journalRetired  = "retired"
)

// journalEntry is one JSONL line of the write-ahead journal.
type journalEntry struct {
	T   string      `json:"t"`
	Job string      `json:"job,omitempty"`
	// Req is the originally admitted request (accepted entries), the
	// replay source for re-admission.
	Req *RunRequest `json:"req,omitempty"`
	// Key is the completed scenario's canonical key (scenario entries).
	Key string `json:"key,omitempty"`
	// Status and Response are the terminal state (retired entries).
	Status   string          `json:"status,omitempty"`
	Response json.RawMessage `json:"response,omitempty"`
}

// stateStore is the durable state of one daemon: the journal plus the
// disk tiers of the result cache and the checkpoint store.
type stateStore struct {
	dir string

	mu sync.Mutex
	f  *os.File
}

// openState prepares the state directory and opens the journal for
// appending.
func openState(dir string) (*stateStore, error) {
	for _, d := range []string{dir, filepath.Join(dir, "results"), filepath.Join(dir, "checkpoints")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("serve: state dir: %w", err)
		}
	}
	f, err := os.OpenFile(filepath.Join(dir, "journal.jsonl"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: opening journal: %w", err)
	}
	return &stateStore{dir: dir, f: f}, nil
}

// append durably writes one journal entry: the line is flushed with
// fsync before append returns, so an entry observed by a later replay
// is always complete (a torn final line from a crash mid-write is
// skipped by the replay scanner).
func (st *stateStore) append(e journalEntry) error {
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, err := st.f.Write(append(b, '\n')); err != nil {
		return err
	}
	return st.f.Sync()
}

func (st *stateStore) close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.f.Close()
}

// validKey guards the content-addressed filenames: canonical keys are
// lowercase hex SHA-256 digests, and nothing else may touch the disk
// tiers (a tampered journal must not become a path traversal).
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// atomicWrite replaces path with data via a same-directory rename, so
// readers never observe a torn file.
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func (st *stateStore) resultPath(key string) string {
	return filepath.Join(st.dir, "results", key+".json")
}

// loadResult returns the disk-cached result bytes for key, if present.
func (st *stateStore) loadResult(key string) ([]byte, bool) {
	if !validKey(key) {
		return nil, false
	}
	b, err := os.ReadFile(st.resultPath(key))
	if err != nil || len(b) == 0 {
		return nil, false
	}
	return b, true
}

// storeResult persists the marshaled result bytes for key. First store
// wins, mirroring the memory cache's determinism contract.
func (st *stateStore) storeResult(key string, b []byte) error {
	if !validKey(key) {
		return nil
	}
	if _, err := os.Stat(st.resultPath(key)); err == nil {
		return nil
	}
	return atomicWrite(st.resultPath(key), b)
}

func (st *stateStore) checkpointPath(key string) string {
	return filepath.Join(st.dir, "checkpoints", key+".ckpt")
}

// loadCheckpoint returns the latest persisted snapshot of an
// in-progress scenario, or nil.
func (st *stateStore) loadCheckpoint(key string) []byte {
	if !validKey(key) {
		return nil
	}
	b, err := os.ReadFile(st.checkpointPath(key))
	if err != nil || len(b) == 0 {
		return nil
	}
	return b
}

// storeCheckpoint replaces the scenario's persisted snapshot.
func (st *stateStore) storeCheckpoint(key string, b []byte) error {
	if !validKey(key) {
		return nil
	}
	return atomicWrite(st.checkpointPath(key), b)
}

// dropCheckpoint removes the scenario's snapshot once the full result
// exists — the result supersedes it.
func (st *stateStore) dropCheckpoint(key string) {
	if validKey(key) {
		os.Remove(st.checkpointPath(key))
	}
}

// pendingJob is an accepted-but-unretired job found in the journal: the
// work a crash interrupted.
type pendingJob struct {
	id  string
	req *RunRequest
}

// finishedJob is a retired job found in the journal, restorable as a
// queryable terminal job.
type finishedJob struct {
	id       string
	status   string
	response []byte
	// total is the scenario count of the original request when the journal
	// recorded its acceptance, 0 otherwise.
	total int
}

// replayState is the folded outcome of reading the journal.
type replayState struct {
	// next is the highest job number seen, so restored registries never
	// reissue an id.
	next     uint64
	pending  []pendingJob
	finished []finishedJob
}

// replay folds the journal into its current job set. Entries are folded
// by job id — a retirement cancels its acceptance — so replaying a
// journal any number of times (or a journal that accumulated several
// daemon lifetimes) yields one entry per job. Unparseable lines (a torn
// final write from a crash) are skipped.
func (st *stateStore) replay() (replayState, error) {
	var rs replayState
	f, err := os.Open(filepath.Join(st.dir, "journal.jsonl"))
	if err != nil {
		if os.IsNotExist(err) {
			return rs, nil
		}
		return rs, fmt.Errorf("serve: reading journal: %w", err)
	}
	defer f.Close()

	type jobState struct {
		req      *RunRequest
		status   string
		response []byte
	}
	states := map[string]*jobState{}
	var order []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 64<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			continue // torn or corrupt line: skip, the fsync contract covers complete entries
		}
		if n, ok := jobNumber(e.Job); ok && n > rs.next {
			rs.next = n
		}
		switch e.T {
		case journalAccepted:
			if e.Job == "" || e.Req == nil {
				continue
			}
			if _, seen := states[e.Job]; !seen {
				order = append(order, e.Job)
			}
			states[e.Job] = &jobState{req: e.Req}
		case journalRetired:
			if e.Job == "" {
				continue
			}
			js, seen := states[e.Job]
			if !seen {
				js = &jobState{}
				states[e.Job] = js
				order = append(order, e.Job)
			}
			js.status = e.Status
			js.response = e.Response
		}
	}
	if err := sc.Err(); err != nil {
		return rs, fmt.Errorf("serve: scanning journal: %w", err)
	}
	for _, id := range order {
		js := states[id]
		switch {
		case js.status != "":
			fj := finishedJob{id: id, status: js.status, response: js.response}
			if js.req != nil {
				fj.total = len(js.req.Scenarios)
			}
			rs.finished = append(rs.finished, fj)
		case js.req != nil:
			rs.pending = append(rs.pending, pendingJob{id: id, req: js.req})
		}
	}
	return rs, nil
}

// jobNumber parses the numeric suffix of a "job-%06d" id.
func jobNumber(id string) (uint64, bool) {
	s, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}
